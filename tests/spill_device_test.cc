// FileSpillDevice: real file-backed spilling, proven by fault injection.
//
// The paper's product lesson is that the unglamorous failure paths — a
// disk filling up mid-spill, a short read, a corrupted block, an operator
// "cleaning" the temp directory under a live query — are exactly what
// separates a prototype from a system. Every injected fault here must
// surface as kIoError through the TaskGroup unwind with the memory
// tracker draining to zero: never a crash, never a wrong answer.
//
// Device units: round trips, block recycling (the backing file is sized
// by PEAK spill footprint, not total bytes spilled), checksum and
// unlink-behind-open detection. Engine end-to-end: out-of-core queries
// over the file device must match SimulatedDisk results exactly and
// leave neither live blocks nor temp files behind.
#include <dirent.h>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/config.h"
#include "engine/session.h"
#include "storage/file_spill_device.h"
#include "storage/spill_file.h"

namespace x100 {
namespace {

/// A per-test temp dir under the system temp root.
class SpillDirFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* base = std::getenv("TMPDIR");
    dir_ = std::string(base != nullptr ? base : "/tmp") +
           "/x100-spill-test-" + std::to_string(::getpid()) + "-" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ::mkdir(dir_.c_str(), 0700);
  }
  void TearDown() override { ::rmdir(dir_.c_str()); }

  /// Files left in the spill dir — must be zero once devices are gone.
  int LeftoverFiles() const {
    int n = 0;
    if (DIR* d = ::opendir(dir_.c_str())) {
      while (struct dirent* e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name != "." && name != "..") n++;
      }
      ::closedir(d);
    }
    return n;
  }

  std::string dir_;
};

TEST_F(SpillDirFixture, RoundTripAndRecycling) {
  auto dev = FileSpillDevice::Create(dir_);
  ASSERT_TRUE(dev.ok()) << dev.status().ToString();
  std::vector<uint8_t> a(100000, 0xAB), b(kDiskBlockBytes, 0xCD);
  {
    auto fa = SpillFile::Write(dev->get(), a);
    ASSERT_TRUE(fa.ok());
    auto fb = SpillFile::Write(dev->get(), b);
    ASSERT_TRUE(fb.ok());
    auto ra = fa->ReadAll();
    ASSERT_TRUE(ra.ok()) << ra.status().ToString();
    EXPECT_EQ(*ra, a);
    auto rb = fb->ReadAll();
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(*rb, b);
    EXPECT_EQ((*dev)->spill_bytes_in_use(),
              static_cast<int64_t>(a.size() + b.size()));
  }
  // Files died: blocks freed, slots recyclable, file NOT regrown by the
  // next writes (recycling bounds the file to peak footprint).
  EXPECT_EQ((*dev)->spill_bytes_in_use(), 0);
  const int64_t high_water = (*dev)->file_bytes();
  for (int round = 0; round < 5; round++) {
    auto f = SpillFile::Write(dev->get(), b);
    ASSERT_TRUE(f.ok());
    auto back = f->ReadAll();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, b);
  }
  EXPECT_EQ((*dev)->file_bytes(), high_water);
  EXPECT_GT((*dev)->slots_recycled(), 0);
  // Reading a freed block fails cleanly.
  BlockId freed_id;
  {
    auto w = (*dev)->WriteSpill(a);
    ASSERT_TRUE(w.ok());
    freed_id = *w;
    (*dev)->FreeSpill(freed_id);
  }
  auto gone = (*dev)->ReadSpill(freed_id, nullptr);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kIoError);

  const std::string path = (*dev)->path();
  struct stat st;
  EXPECT_EQ(::stat(path.c_str(), &st), 0);
  dev->reset();  // destruction unlinks the backing file
  EXPECT_NE(::stat(path.c_str(), &st), 0);
  EXPECT_EQ(LeftoverFiles(), 0);
}

TEST_F(SpillDirFixture, MissingDirectoryFailsLoudly) {
  auto dev = FileSpillDevice::Create(dir_ + "/definitely-not-here");
  ASSERT_FALSE(dev.ok());
  EXPECT_EQ(dev.status().code(), StatusCode::kIoError);
}

TEST_F(SpillDirFixture, InjectedWriteFailureSurfacesCleanly) {
  auto dev = FileSpillDevice::Create(dir_);
  ASSERT_TRUE(dev.ok());
  (*dev)->set_fault_hook(
      [](FileSpillDevice::Op op, BlockId, std::vector<uint8_t>*) {
        return op == FileSpillDevice::Op::kWrite
                   ? Status::IoError("injected ENOSPC")
                   : Status::OK();
      });
  std::vector<uint8_t> blob(3 * kDiskBlockBytes, 0x5A);
  auto f = SpillFile::Write(dev->get(), blob);
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kIoError);
  // The aborted multi-block write leaked nothing.
  EXPECT_EQ((*dev)->spill_bytes_in_use(), 0);
  (*dev)->set_fault_hook(nullptr);
  auto ok = SpillFile::Write(dev->get(), blob);
  ASSERT_TRUE(ok.ok());  // the device recovered
}

TEST_F(SpillDirFixture, ShortAndCorruptReadsAreDetected) {
  auto dev = FileSpillDevice::Create(dir_);
  ASSERT_TRUE(dev.ok());
  std::vector<uint8_t> blob(65536, 0x11);
  auto f = SpillFile::Write(dev->get(), blob);
  ASSERT_TRUE(f.ok());
  // Short read: the hook truncates the bytes after the pread.
  (*dev)->set_fault_hook(
      [](FileSpillDevice::Op op, BlockId, std::vector<uint8_t>* data) {
        if (op == FileSpillDevice::Op::kRead) data->resize(data->size() / 2);
        return Status::OK();
      });
  auto short_read = f->ReadAll();
  ASSERT_FALSE(short_read.ok());
  EXPECT_EQ(short_read.status().code(), StatusCode::kIoError);
  // Corrupt read: one flipped byte must trip the block checksum.
  (*dev)->set_fault_hook(
      [](FileSpillDevice::Op op, BlockId, std::vector<uint8_t>* data) {
        if (op == FileSpillDevice::Op::kRead && !data->empty()) {
          (*data)[data->size() / 3] ^= 0x40;
        }
        return Status::OK();
      });
  auto corrupt = f->ReadAll();
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kIoError);
  EXPECT_NE(corrupt.status().message().find("checksum"), std::string::npos)
      << corrupt.status().ToString();
  (*dev)->set_fault_hook(nullptr);
  auto good = f->ReadAll();
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, blob);
}

TEST_F(SpillDirFixture, UnlinkBehindOpenIsDetected) {
  auto dev = FileSpillDevice::Create(dir_);
  ASSERT_TRUE(dev.ok());
  std::vector<uint8_t> blob(4096, 0x77);
  auto f = SpillFile::Write(dev->get(), blob);
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(::unlink((*dev)->path().c_str()), 0);
  // POSIX would happily keep serving the orphaned inode through the open
  // fd; the device must refuse instead of depending on vanished state.
  auto r = f->ReadAll();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_NE(r.status().message().find("unlinked"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine end-to-end over the file device
// ---------------------------------------------------------------------------

class FileSpillQueryTest : public SpillDirFixture {
 protected:
  static constexpr int kDimRows = 20000;
  static constexpr int kFactRows = 40000;

  void SetUp() override {
    SpillDirFixture::SetUp();
    db_ = std::make_unique<Database>();
    db_->config().spill_path = dir_;
    {
      auto b = db_->CreateTable(
          "dim",
          Schema({Field("k", TypeId::kI64), Field("label", TypeId::kStr)}),
          Layout::kDsm, 1024);
      for (int i = 0; i < kDimRows; i++) {
        std::string n = std::to_string(i);
        ASSERT_TRUE(b->AppendRow({Value::I64(i),
                                  Value::Str("L" + std::string(5 - n.size(),
                                                               '0') + n)})
                        .ok());
      }
      auto t = b->Finish();
      ASSERT_TRUE(t.ok());
      ASSERT_TRUE(db_->RegisterTable(std::move(t).value()).ok());
    }
    {
      auto b = db_->CreateTable(
          "fact",
          Schema({Field("fk", TypeId::kI64), Field("val", TypeId::kI64)}),
          Layout::kDsm, 2048);
      for (int i = 0; i < kFactRows; i++) {
        ASSERT_TRUE(
            b->AppendRow({Value::I64(i % kDimRows), Value::I64(i)}).ok());
      }
      auto t = b->Finish();
      ASSERT_TRUE(t.ok());
      ASSERT_TRUE(db_->RegisterTable(std::move(t).value()).ok());
    }
    session_ = std::make_unique<Session>(db_.get());
  }

  void TearDown() override {
    session_.reset();
    db_.reset();
    SpillDirFixture::TearDown();
  }

  /// The every-breaker shape: group-by-join + sort (deterministic).
  AlgebraPtr GroupByJoinSortPlan() {
    AlgebraPtr join =
        JoinNode(ScanNode("dim"), ScanNode("fact"), JoinType::kInner,
                 {"k"}, {"fk"});
    AlgebraPtr aggr = AggrNode(std::move(join), {{"label", Col("label")}},
                               {{AggKind::kSum, Col("val"), "s"},
                                {AggKind::kCount, nullptr, "c"}});
    return OrderNode(std::move(aggr), {{"label", true}});
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> session_;
};

TEST_F(FileSpillQueryTest, OutOfCoreQueryOverFileDeviceMatchesAndCleansUp) {
  db_->config().max_parallelism = 4;
  db_->config().scheduler_workers = 4;
  db_->config().memory_limit = 0;
  db_->memory()->ResetPeak();
  auto reference = session_->Execute(GroupByJoinSortPlan());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const int64_t peak = db_->memory()->peak();
  ASSERT_GT(peak, 0);

  db_->config().memory_limit = peak / 24;
  auto res = session_->Execute(GroupByJoinSortPlan());
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(reference->rows.size(), res->rows.size());
  for (size_t i = 0; i < res->rows.size(); i++) {
    for (size_t c = 0; c < res->rows[i].size(); c++) {
      ASSERT_TRUE(reference->rows[i][c].SqlEquals(res->rows[i][c]))
          << "row " << i << " col " << c;
    }
  }
  // It really went through the file.
  FileSpillDevice* dev = db_->file_spill_device();
  ASSERT_NE(dev, nullptr);
  EXPECT_GT(dev->spill_bytes_written(), 0);
  EXPECT_GT(dev->spill_bytes_read(), 0);
  // Spill hygiene: the finished query holds no blocks, no charges.
  EXPECT_EQ(dev->spill_bytes_in_use(), 0);
  EXPECT_EQ(db_->memory()->used(), 0);
  // Database destruction removes the temp file itself.
  const std::string path = dev->path();
  session_.reset();
  db_.reset();
  struct stat st;
  EXPECT_NE(::stat(path.c_str(), &st), 0);
  EXPECT_EQ(LeftoverFiles(), 0);
}

TEST_F(FileSpillQueryTest, MidQueryIoFaultsUnwindWithoutLeaks) {
  db_->config().max_parallelism = 4;
  db_->config().scheduler_workers = 4;
  db_->config().memory_limit = 0;
  db_->memory()->ResetPeak();
  auto reference = session_->Execute(GroupByJoinSortPlan());
  ASSERT_TRUE(reference.ok());
  const int64_t peak = db_->memory()->peak();
  FileSpillDevice* dev = db_->file_spill_device();
  ASSERT_NE(dev, nullptr);

  db_->config().memory_limit = peak / 24;
  // Fault schedules: fail the Nth write / corrupt the Nth read, for
  // several N, so the error lands in different phases (drain spill,
  // merge reload, probe spill, pair reload, sort-run streaming). Every
  // one must unwind as kIoError with the tracker drained.
  int faults_fired = 0;
  for (const int nth : {1, 5, 25, 125}) {
    std::atomic<int> writes{0};
    dev->set_fault_hook([&writes, nth](FileSpillDevice::Op op, BlockId,
                                       std::vector<uint8_t>*) {
      if (op == FileSpillDevice::Op::kWrite &&
          writes.fetch_add(1) + 1 == nth) {
        return Status::IoError("injected ENOSPC on write " +
                               std::to_string(nth));
      }
      return Status::OK();
    });
    auto res = session_->Execute(GroupByJoinSortPlan());
    if (writes.load() >= nth) {
      faults_fired++;
      ASSERT_FALSE(res.ok()) << "write fault " << nth;
      EXPECT_EQ(res.status().code(), StatusCode::kIoError)
          << res.status().ToString();
    } else {
      // The query spilled fewer blocks than this schedule targets.
      ASSERT_TRUE(res.ok()) << res.status().ToString();
    }
    EXPECT_EQ(db_->memory()->used(), 0) << "write fault " << nth;
    EXPECT_EQ(dev->spill_bytes_in_use(), 0) << "write fault " << nth;
  }
  for (const int nth : {1, 3, 9, 27}) {
    std::atomic<int> reads{0};
    dev->set_fault_hook([&reads, nth](FileSpillDevice::Op op, BlockId,
                                      std::vector<uint8_t>* data) {
      if (op == FileSpillDevice::Op::kRead &&
          reads.fetch_add(1) + 1 == nth && !data->empty()) {
        (*data)[0] ^= 0xFF;  // checksum will catch it
      }
      return Status::OK();
    });
    auto res = session_->Execute(GroupByJoinSortPlan());
    if (reads.load() >= nth) {
      faults_fired++;
      ASSERT_FALSE(res.ok()) << "read fault " << nth;
      EXPECT_EQ(res.status().code(), StatusCode::kIoError)
          << res.status().ToString();
    } else {
      ASSERT_TRUE(res.ok()) << res.status().ToString();
    }
    EXPECT_EQ(db_->memory()->used(), 0) << "read fault " << nth;
    EXPECT_EQ(dev->spill_bytes_in_use(), 0) << "read fault " << nth;
  }
  // The schedules were chosen to actually land in the spill paths.
  EXPECT_GE(faults_fired, 6);
  dev->set_fault_hook(nullptr);
  // And after all that abuse, the engine still answers correctly.
  auto healed = session_->Execute(GroupByJoinSortPlan());
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  ASSERT_EQ(healed->rows.size(), reference->rows.size());
  EXPECT_EQ(db_->memory()->used(), 0);
  EXPECT_EQ(dev->spill_bytes_in_use(), 0);
}

}  // namespace
}  // namespace x100
