// Execution engine tests: expression programs, scans (with PDT merge and
// MinMax skipping), filters, projections, all join flavors (including the
// NULL-semantics anti joins of §"NULL intricacies"), aggregation, sort,
// exchange parallelism and cancellation.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <thread>

#include "exec/exchange.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/scan.h"
#include "exec/select_project.h"
#include "exec/sort.h"
#include "exec/values.h"
#include "common/task_scheduler.h"
#include "pdt/transaction.h"
#include "storage/morsel.h"
#include "storage/simulated_disk.h"

namespace x100 {
namespace {

// ---------------------------------------------------------------------------
// Expression programs
// ---------------------------------------------------------------------------

class ExprTest : public ::testing::Test {
 protected:
  Schema schema_{{Field("a", TypeId::kI64), Field("b", TypeId::kI64),
                  Field("f", TypeId::kF64), Field("s", TypeId::kStr),
                  Field("n", TypeId::kI64, /*nullable=*/true)}};

  std::unique_ptr<Batch> MakeBatch(int n) {
    auto b = std::make_unique<Batch>(schema_, 64);
    for (int i = 0; i < n; i++) {
      b->column(0)->Data<int64_t>()[i] = i;
      b->column(1)->Data<int64_t>()[i] = i * 10;
      b->column(2)->Data<double>()[i] = i * 0.5;
      b->column(3)->Data<StrRef>()[i] =
          b->column(3)->heap()->Add("row" + std::to_string(i));
      if (i % 3 == 0) {
        b->column(4)->SetNull(i);
      } else {
        b->column(4)->Data<int64_t>()[i] = i;
      }
    }
    b->set_rows(n);
    return b;
  }

  Result<const Vector*> Run(ExprPtr e, Batch& batch) {
    ExprPtr bound;
    X100_ASSIGN_OR_RETURN(bound, BindExpr(e, schema_));
    std::unique_ptr<ExprProgram> prog;
    X100_ASSIGN_OR_RETURN(prog, ExprProgram::Compile(bound, 64));
    program_keepalive_.push_back(std::move(prog));
    return program_keepalive_.back()->Eval(batch);
  }

  std::vector<std::unique_ptr<ExprProgram>> program_keepalive_;
};

TEST_F(ExprTest, ArithmeticChain) {
  auto b = MakeBatch(10);
  // (a + b) * 2
  auto r = Run(Mul(Add(Col("a"), Col("b")), Lit(Value::I64(2))), *b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->Data<int64_t>()[4], (4 + 40) * 2);
  EXPECT_EQ((*r)->Data<int64_t>()[9], (9 + 90) * 2);
}

TEST_F(ExprTest, MixedTypePromotion) {
  auto b = MakeBatch(4);
  // a (i64) + f (f64) -> f64
  auto r = Run(Add(Col("a"), Col("f")), *b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->type(), TypeId::kF64);
  EXPECT_DOUBLE_EQ((*r)->Data<double>()[3], 3 + 1.5);
}

TEST_F(ExprTest, ComparisonYieldsBool) {
  auto b = MakeBatch(6);
  auto r = Run(Ge(Col("a"), Lit(Value::I64(3))), *b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->type(), TypeId::kBool);
  EXPECT_EQ((*r)->Data<uint8_t>()[2], 0);
  EXPECT_EQ((*r)->Data<uint8_t>()[3], 1);
}

TEST_F(ExprTest, NullPropagationTwoColumn) {
  auto b = MakeBatch(6);
  // n + 1: NULL rows stay NULL via the indicator column; values computed
  // NULL-obliviously over safe values.
  auto r = Run(Add(Col("n"), Lit(Value::I64(1))), *b);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->has_nulls());
  EXPECT_TRUE((*r)->IsNull(0));
  EXPECT_TRUE((*r)->IsNull(3));
  EXPECT_FALSE((*r)->IsNull(1));
  EXPECT_EQ((*r)->Data<int64_t>()[1], 2);
}

TEST_F(ExprTest, IsNullMaterializesIndicator) {
  auto b = MakeBatch(6);
  auto r = Run(Call("isnull", {Col("n")}), *b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->Data<uint8_t>()[0], 1);
  EXPECT_EQ((*r)->Data<uint8_t>()[1], 0);
  auto r2 = Run(Call("isnotnull", {Col("n")}), *b);
  EXPECT_EQ((*r2)->Data<uint8_t>()[0], 0);
  EXPECT_EQ((*r2)->Data<uint8_t>()[1], 1);
}

TEST_F(ExprTest, DivisionByZeroSurfacesError) {
  auto b = MakeBatch(4);
  auto r = Run(Div(Col("b"), Col("a")), *b);  // a[0] == 0
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDivisionByZero());
}

TEST_F(ExprTest, OverflowSurfacesError) {
  auto b = MakeBatch(4);
  auto r = Run(Mul(Add(Col("a"), Lit(Value::I64(1ll << 62))),
                   Lit(Value::I64(4))),
               *b);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOverflow());
}

TEST_F(ExprTest, StringFunctions) {
  auto b = MakeBatch(3);
  auto r = Run(Call("upper", {Col("s")}), *b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->Data<StrRef>()[1].ToString(), "ROW1");
  auto r2 = Run(Call("concat", {Col("s"), Lit(Value::Str("!"))}), *b);
  EXPECT_EQ((*r2)->Data<StrRef>()[2].ToString(), "row2!");
}

TEST_F(ExprTest, SelectionVectorSparseEvaluation) {
  auto b = MakeBatch(8);
  sel_t* sel = b->MutableSel();
  sel[0] = 2;
  sel[1] = 5;
  b->SetSelCount(2);
  auto r = Run(Add(Col("a"), Col("b")), *b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->Data<int64_t>()[2], 22);
  EXPECT_EQ((*r)->Data<int64_t>()[5], 55);
}

TEST_F(ExprTest, UnknownColumnFailsBinding) {
  auto b = MakeBatch(1);
  auto r = Run(Col("zzz"), *b);
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Operators over in-memory values
// ---------------------------------------------------------------------------

Schema KV() {
  return Schema({Field("k", TypeId::kI64), Field("v", TypeId::kStr)});
}

std::vector<std::vector<Value>> KvRows(
    std::initializer_list<std::pair<int64_t, const char*>> rows) {
  std::vector<std::vector<Value>> out;
  for (const auto& [k, v] : rows) {
    out.push_back({Value::I64(k), Value::Str(v)});
  }
  return out;
}

TEST(ValuesOpTest, ProducesRows) {
  ExecContext ctx;
  ValuesOp op(KV(), KvRows({{1, "a"}, {2, "b"}, {3, "c"}}));
  auto res = CollectRows(&op, &ctx);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 3u);
  EXPECT_EQ(res->rows[1][0].AsI64(), 2);
  EXPECT_EQ(res->rows[2][1].AsStr(), "c");
}

TEST(SelectOpTest, FiltersWithSelectionVector) {
  ExecContext ctx;
  auto values = std::make_unique<ValuesOp>(
      KV(), KvRows({{1, "a"}, {5, "b"}, {3, "c"}, {9, "d"}, {2, "e"}}));
  SelectOp sel(std::move(values), Gt(Col("k"), Lit(Value::I64(2))));
  auto res = CollectRows(&sel, &ctx);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 3u);
  EXPECT_EQ(res->rows[0][1].AsStr(), "b");
  EXPECT_EQ(res->rows[1][1].AsStr(), "c");
  EXPECT_EQ(res->rows[2][1].AsStr(), "d");
}

TEST(SelectOpTest, NullPredicateRowsDoNotQualify) {
  ExecContext ctx;
  Schema s({Field("x", TypeId::kI64, true)});
  auto values = std::make_unique<ValuesOp>(
      s, std::vector<std::vector<Value>>{
             {Value::I64(1)}, {Value::Null(TypeId::kI64)}, {Value::I64(3)}});
  SelectOp sel(std::move(values), Gt(Col("x"), Lit(Value::I64(0))));
  auto res = CollectRows(&sel, &ctx);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->rows.size(), 2u);  // the NULL row is out
}

TEST(ProjectOpTest, ComputesExpressions) {
  ExecContext ctx;
  auto values = std::make_unique<ValuesOp>(
      KV(), KvRows({{2, "x"}, {7, "y"}}));
  std::vector<ProjectItem> items;
  items.push_back({"k2", Mul(Col("k"), Col("k"))});
  items.push_back({"tag", Call("upper", {Col("v")})});
  ProjectOp proj(std::move(values), std::move(items));
  auto res = CollectRows(&proj, &ctx);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->schema.field(0).name, "k2");
  EXPECT_EQ(res->rows[1][0].AsI64(), 49);
  EXPECT_EQ(res->rows[0][1].AsStr(), "X");
}

TEST(ProjectOpTest, PreservesSelectionFromFilter) {
  ExecContext ctx;
  auto values = std::make_unique<ValuesOp>(
      KV(), KvRows({{1, "a"}, {2, "b"}, {3, "c"}, {4, "d"}}));
  auto sel = std::make_unique<SelectOp>(std::move(values),
                                        Eq(Col("k"), Lit(Value::I64(3))));
  std::vector<ProjectItem> items;
  items.push_back({"kk", Add(Col("k"), Lit(Value::I64(100)))});
  ProjectOp proj(std::move(sel), std::move(items));
  auto res = CollectRows(&proj, &ctx);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0][0].AsI64(), 103);
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

struct JoinFixture {
  ExecContext ctx;
  Schema left{{Field("lk", TypeId::kI64, true), Field("lv", TypeId::kStr)}};
  Schema right{{Field("rk", TypeId::kI64, true), Field("rv", TypeId::kStr)}};

  std::unique_ptr<ValuesOp> Left(std::vector<std::vector<Value>> rows) {
    return std::make_unique<ValuesOp>(left, std::move(rows));
  }
  std::unique_ptr<ValuesOp> Right(std::vector<std::vector<Value>> rows) {
    return std::make_unique<ValuesOp>(right, std::move(rows));
  }
};

std::vector<Value> R(int64_t k, const char* v) {
  return {Value::I64(k), Value::Str(v)};
}
std::vector<Value> RN(const char* v) {
  return {Value::Null(TypeId::kI64), Value::Str(v)};
}

TEST(HashJoinTest, InnerJoinMatchesAndDuplicates) {
  JoinFixture f;
  // build: right, probe: left.
  HashJoinOp join(f.Right({R(1, "r1"), R(2, "r2"), R(2, "r2b")}),
                  f.Left({R(1, "l1"), R(2, "l2"), R(3, "l3")}),
                  {0}, {0}, JoinType::kInner);
  auto res = CollectRows(&join, &f.ctx);
  ASSERT_TRUE(res.ok());
  // 1 match for k=1, 2 for k=2, 0 for k=3.
  ASSERT_EQ(res->rows.size(), 3u);
  EXPECT_EQ(res->schema.num_fields(), 4);
}

TEST(HashJoinTest, InnerJoinNullKeysNeverMatch) {
  JoinFixture f;
  HashJoinOp join(f.Right({R(1, "r1"), RN("rnull")}),
                  f.Left({R(1, "l1"), RN("lnull")}), {0}, {0},
                  JoinType::kInner);
  auto res = CollectRows(&join, &f.ctx);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0][1].AsStr(), "l1");
}

TEST(HashJoinTest, LeftOuterEmitsNullPaddedRows) {
  JoinFixture f;
  HashJoinOp join(f.Right({R(1, "r1")}),
                  f.Left({R(1, "l1"), R(7, "l7")}), {0}, {0},
                  JoinType::kLeftOuter);
  auto res = CollectRows(&join, &f.ctx);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 2u);
  // Unmatched l7: build side NULL.
  bool found = false;
  for (const auto& row : res->rows) {
    if (row[1].AsStr() == "l7") {
      EXPECT_TRUE(row[2].is_null());
      EXPECT_TRUE(row[3].is_null());
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(HashJoinTest, SemiJoinEmitsEachProbeOnce) {
  JoinFixture f;
  HashJoinOp join(f.Right({R(2, "a"), R(2, "b")}),
                  f.Left({R(2, "l2"), R(3, "l3")}), {0}, {0},
                  JoinType::kSemi);
  auto res = CollectRows(&join, &f.ctx);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0][1].AsStr(), "l2");
  EXPECT_EQ(res->schema.num_fields(), 2);  // probe columns only
}

// The §"NULL intricacies" cases: NOT EXISTS vs NOT IN.
TEST(HashJoinTest, AntiJoinNotExistsSemantics) {
  JoinFixture f;
  // NOT EXISTS(rk = lk): NULL probe keys survive (no match possible).
  HashJoinOp join(f.Right({R(1, "r1"), RN("rnull")}),
                  f.Left({R(1, "l1"), R(5, "l5"), RN("lnull")}), {0}, {0},
                  JoinType::kAnti);
  auto res = CollectRows(&join, &f.ctx);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 2u);
  EXPECT_EQ(res->rows[0][1].AsStr(), "l5");
  EXPECT_EQ(res->rows[1][1].AsStr(), "lnull");
}

TEST(HashJoinTest, AntiJoinNotInNullProbeDropped) {
  JoinFixture f;
  // NOT IN over a build side *without* NULLs: NULL probe keys are dropped
  // (x NOT IN S is UNKNOWN when x is NULL).
  HashJoinOp join(f.Right({R(1, "r1")}),
                  f.Left({R(1, "l1"), R(5, "l5"), RN("lnull")}), {0}, {0},
                  JoinType::kAntiNullAware);
  auto res = CollectRows(&join, &f.ctx);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0][1].AsStr(), "l5");
}

TEST(HashJoinTest, AntiJoinNotInNullBuildPoisonsAll) {
  JoinFixture f;
  // NOT IN over a build side *with* a NULL: no probe row can qualify.
  HashJoinOp join(f.Right({R(1, "r1"), RN("rnull")}),
                  f.Left({R(1, "l1"), R(5, "l5")}), {0}, {0},
                  JoinType::kAntiNullAware);
  auto res = CollectRows(&join, &f.ctx);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->rows.size(), 0u);
}

TEST(HashJoinTest, MultiColumnKeys) {
  ExecContext ctx;
  Schema two{{Field("a", TypeId::kI64), Field("b", TypeId::kStr)}};
  auto build = std::make_unique<ValuesOp>(
      two, std::vector<std::vector<Value>>{
               {Value::I64(1), Value::Str("x")},
               {Value::I64(1), Value::Str("y")}});
  auto probe = std::make_unique<ValuesOp>(
      two, std::vector<std::vector<Value>>{
               {Value::I64(1), Value::Str("x")},
               {Value::I64(1), Value::Str("z")}});
  HashJoinOp join(std::move(build), std::move(probe), {0, 1}, {0, 1},
                  JoinType::kInner);
  auto res = CollectRows(&join, &ctx);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0][1].AsStr(), "x");
}

TEST(HashJoinTest, OutputOverflowResumesCorrectly) {
  // One probe row matching 5000 build rows must span multiple output
  // batches without loss.
  ExecContext ctx;
  ctx.vector_size = 128;
  Schema s({Field("k", TypeId::kI64), Field("i", TypeId::kI64)});
  std::vector<std::vector<Value>> build_rows;
  for (int i = 0; i < 5000; i++) {
    build_rows.push_back({Value::I64(42), Value::I64(i)});
  }
  auto build = std::make_unique<ValuesOp>(s, std::move(build_rows));
  auto probe = std::make_unique<ValuesOp>(
      s, std::vector<std::vector<Value>>{{Value::I64(42), Value::I64(-1)}});
  HashJoinOp join(std::move(build), std::move(probe), {0}, {0},
                  JoinType::kInner);
  auto res = CollectRows(&join, &ctx);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->rows.size(), 5000u);
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

TEST(HashAggTest, GroupByWithAllAggregates) {
  ExecContext ctx;
  Schema s({Field("g", TypeId::kStr), Field("x", TypeId::kI64)});
  auto values = std::make_unique<ValuesOp>(
      s, std::vector<std::vector<Value>>{
             {Value::Str("a"), Value::I64(1)},
             {Value::Str("b"), Value::I64(10)},
             {Value::Str("a"), Value::I64(3)},
             {Value::Str("b"), Value::I64(30)},
             {Value::Str("a"), Value::I64(5)}});
  std::vector<ProjectItem> keys;
  keys.push_back({"g", Col("g")});
  std::vector<AggItem> aggs;
  aggs.push_back({AggKind::kCount, nullptr, "cnt"});
  aggs.push_back({AggKind::kSum, Col("x"), "sum_x"});
  aggs.push_back({AggKind::kMin, Col("x"), "min_x"});
  aggs.push_back({AggKind::kMax, Col("x"), "max_x"});
  aggs.push_back({AggKind::kAvg, Col("x"), "avg_x"});
  HashAggOp agg(std::move(values), std::move(keys), std::move(aggs));
  auto res = CollectRows(&agg, &ctx);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 2u);
  for (const auto& row : res->rows) {
    if (row[0].AsStr() == "a") {
      EXPECT_EQ(row[1].AsI64(), 3);
      EXPECT_EQ(row[2].AsI64(), 9);
      EXPECT_EQ(row[3].AsI64(), 1);
      EXPECT_EQ(row[4].AsI64(), 5);
      EXPECT_DOUBLE_EQ(row[5].AsF64(), 3.0);
    } else {
      EXPECT_EQ(row[1].AsI64(), 2);
      EXPECT_EQ(row[2].AsI64(), 40);
    }
  }
}

TEST(HashAggTest, GlobalAggregateOnEmptyInput) {
  ExecContext ctx;
  Schema s({Field("x", TypeId::kI64)});
  auto values =
      std::make_unique<ValuesOp>(s, std::vector<std::vector<Value>>{});
  std::vector<AggItem> aggs;
  aggs.push_back({AggKind::kCount, nullptr, "cnt"});
  aggs.push_back({AggKind::kSum, Col("x"), "sum_x"});
  HashAggOp agg(std::move(values), {}, std::move(aggs));
  auto res = CollectRows(&agg, &ctx);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0][0].AsI64(), 0);
  EXPECT_TRUE(res->rows[0][1].is_null());  // SUM over nothing is NULL
}

TEST(HashAggTest, NullInputsSkipped) {
  ExecContext ctx;
  Schema s({Field("x", TypeId::kI64, true)});
  auto values = std::make_unique<ValuesOp>(
      s, std::vector<std::vector<Value>>{{Value::I64(5)},
                                         {Value::Null(TypeId::kI64)},
                                         {Value::I64(7)}});
  std::vector<AggItem> aggs;
  aggs.push_back({AggKind::kCount, Col("x"), "cnt_x"});
  aggs.push_back({AggKind::kAvg, Col("x"), "avg_x"});
  HashAggOp agg(std::move(values), {}, std::move(aggs));
  auto res = CollectRows(&agg, &ctx);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->rows[0][0].AsI64(), 2);  // COUNT(x) skips NULL
  EXPECT_DOUBLE_EQ(res->rows[0][1].AsF64(), 6.0);
}

TEST(HashAggTest, NullGroupKeysFormOneGroup) {
  ExecContext ctx;
  Schema s({Field("g", TypeId::kI64, true), Field("x", TypeId::kI64)});
  auto values = std::make_unique<ValuesOp>(
      s, std::vector<std::vector<Value>>{
             {Value::Null(TypeId::kI64), Value::I64(1)},
             {Value::I64(1), Value::I64(2)},
             {Value::Null(TypeId::kI64), Value::I64(3)}});
  std::vector<ProjectItem> keys;
  keys.push_back({"g", Col("g")});
  std::vector<AggItem> aggs;
  aggs.push_back({AggKind::kSum, Col("x"), "s"});
  HashAggOp agg(std::move(values), std::move(keys), std::move(aggs));
  auto res = CollectRows(&agg, &ctx);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 2u);  // NULL group + group 1
  for (const auto& row : res->rows) {
    if (row[0].is_null()) EXPECT_EQ(row[1].AsI64(), 4);
  }
}

TEST(HashAggTest, ManyGroupsTriggerRehash) {
  ExecContext ctx;
  Schema s({Field("g", TypeId::kI64)});
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 5000; i++) rows.push_back({Value::I64(i % 2000)});
  auto values = std::make_unique<ValuesOp>(s, std::move(rows));
  std::vector<ProjectItem> keys;
  keys.push_back({"g", Col("g")});
  std::vector<AggItem> aggs;
  aggs.push_back({AggKind::kCount, nullptr, "c"});
  HashAggOp agg(std::move(values), std::move(keys), std::move(aggs));
  auto res = CollectRows(&agg, &ctx);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->rows.size(), 2000u);
}

// ---------------------------------------------------------------------------
// Sort / TopN
// ---------------------------------------------------------------------------

TEST(SortOpTest, MultiKeyWithDirections) {
  ExecContext ctx;
  Schema s({Field("a", TypeId::kI64), Field("b", TypeId::kStr)});
  auto values = std::make_unique<ValuesOp>(
      s, std::vector<std::vector<Value>>{
             {Value::I64(2), Value::Str("x")},
             {Value::I64(1), Value::Str("b")},
             {Value::I64(2), Value::Str("a")},
             {Value::I64(1), Value::Str("a")}});
  SortOp sort(std::move(values), {{0, true}, {1, false}});
  auto res = CollectRows(&sort, &ctx);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 4u);
  EXPECT_EQ(res->rows[0][0].AsI64(), 1);
  EXPECT_EQ(res->rows[0][1].AsStr(), "b");  // desc within group
  EXPECT_EQ(res->rows[3][1].AsStr(), "a");
}

TEST(SortOpTest, NullsSortLastAscending) {
  ExecContext ctx;
  Schema s({Field("a", TypeId::kI64, true)});
  auto values = std::make_unique<ValuesOp>(
      s, std::vector<std::vector<Value>>{{Value::Null(TypeId::kI64)},
                                         {Value::I64(2)},
                                         {Value::I64(1)}});
  SortOp sort(std::move(values), {{0, true}});
  auto res = CollectRows(&sort, &ctx);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->rows[0][0].AsI64(), 1);
  EXPECT_TRUE(res->rows[2][0].is_null());
}

TEST(SortOpTest, TopNLimitsOutput) {
  ExecContext ctx;
  Schema s({Field("a", TypeId::kI64)});
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 1000; i++) rows.push_back({Value::I64((i * 37) % 997)});
  auto values = std::make_unique<ValuesOp>(s, std::move(rows));
  SortOp sort(std::move(values), {{0, false}}, 5);
  auto res = CollectRows(&sort, &ctx);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 5u);
  EXPECT_EQ(res->rows[0][0].AsI64(), 996);
  for (size_t i = 1; i < 5; i++) {
    EXPECT_LE(res->rows[i][0].AsI64(), res->rows[i - 1][0].AsI64());
  }
}

// ---------------------------------------------------------------------------
// Scan over stored tables (+ PDT)
// ---------------------------------------------------------------------------

class ScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableBuilder b("t",
                   Schema({Field("id", TypeId::kI64),
                           Field("val", TypeId::kI32),
                           Field("s", TypeId::kStr)}),
                   Layout::kDsm, &disk_, 256);
    for (int i = 0; i < 1000; i++) {
      ASSERT_TRUE(b.AppendRow({Value::I64(i), Value::I32(i % 100),
                               Value::Str("s" + std::to_string(i % 10))})
                      .ok());
    }
    auto t = b.Finish();
    ASSERT_TRUE(t.ok());
    table_ = std::make_unique<UpdatableTable>(std::move(t).value());
    buffers_ = std::make_unique<BufferManager>(&disk_, 64 << 20);
  }

  std::unique_ptr<ScanOp> MakeScan(std::vector<int> cols,
                                   std::vector<ScanPredicate> preds = {}) {
    ScanOptions opts;
    opts.columns = std::move(cols);
    opts.predicates = std::move(preds);
    return std::make_unique<ScanOp>(table_->View(), table_->SnapshotPdt(),
                                    buffers_.get(), std::move(opts));
  }

  SimulatedDisk disk_;
  std::unique_ptr<UpdatableTable> table_;
  std::unique_ptr<BufferManager> buffers_;
  TransactionManager tm_;
};

TEST_F(ScanTest, FullScanAllRows) {
  ExecContext ctx;
  auto scan = MakeScan({0, 1, 2});
  auto res = CollectRows(scan.get(), &ctx);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 1000u);
  EXPECT_EQ(res->rows[999][0].AsI64(), 999);
  EXPECT_EQ(res->rows[123][1].AsI64(), 23);
  EXPECT_EQ(res->rows[45][2].AsStr(), "s5");
}

TEST_F(ScanTest, ColumnSubsetAndOrder) {
  ExecContext ctx;
  auto scan = MakeScan({2, 0});
  auto res = CollectRows(scan.get(), &ctx);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->schema.field(0).name, "s");
  EXPECT_EQ(res->schema.field(1).name, "id");
  EXPECT_EQ(res->rows[7][1].AsI64(), 7);
}

TEST_F(ScanTest, MinMaxSkipsGroups) {
  ExecContext ctx;
  // id >= 900: only the last group (rows 768..1000, groups of 256) + part.
  auto scan =
      MakeScan({0}, {{0, RangeOp::kGe, Value::I64(900)}});
  ScanOp* raw = scan.get();
  auto res = CollectRows(raw, &ctx);
  ASSERT_TRUE(res.ok());
  EXPECT_GE(raw->groups_skipped(), 3);
  // Scan emits whole groups; exact filtering is SelectOp's job.
  EXPECT_EQ(res->rows.size(), 232u);  // rows 768..999
}

TEST_F(ScanTest, ScanMergesPdtDeltas) {
  ExecContext ctx;
  auto txn = tm_.Begin(table_.get());
  ASSERT_TRUE(txn->Delete(0).ok());
  ASSERT_TRUE(txn->Update(500, 1, Value::I32(-5)).ok());
  ASSERT_TRUE(txn->Append({Value::I64(5000), Value::I32(1),
                           Value::Str("tail")})
                  .ok());
  ASSERT_TRUE(tm_.Commit(txn.get()).ok());

  auto scan = MakeScan({0, 1, 2});
  auto res = CollectRows(scan.get(), &ctx);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 1000u);
  EXPECT_EQ(res->rows[0][0].AsI64(), 1);        // sid 0 deleted
  // Update(500) ran after Delete(0): it targeted sid 501, now at rid 500.
  EXPECT_EQ(res->rows[500][1].AsI64(), -5);
  EXPECT_EQ(res->rows[500][0].AsI64(), 501);
  EXPECT_EQ(res->rows[999][0].AsI64(), 5000);   // appended tail
  EXPECT_EQ(res->rows[999][2].AsStr(), "tail");
}

TEST_F(ScanTest, MinMaxNotSkippedWhenDeltasPresent) {
  ExecContext ctx;
  auto txn = tm_.Begin(table_.get());
  // Make a row in group 0 suddenly match id >= 900.
  ASSERT_TRUE(txn->Update(5, 0, Value::I64(950)).ok());
  ASSERT_TRUE(tm_.Commit(txn.get()).ok());
  auto scan = MakeScan({0}, {{0, RangeOp::kGe, Value::I64(900)}});
  auto res = CollectRows(scan.get(), &ctx);
  ASSERT_TRUE(res.ok());
  bool found = false;
  for (const auto& row : res->rows) found |= row[0].AsI64() == 950;
  EXPECT_TRUE(found);
}

TEST_F(ScanTest, PipelineScanSelectProjectAgg) {
  ExecContext ctx;
  auto scan = MakeScan({0, 1});
  auto sel = std::make_unique<SelectOp>(std::move(scan),
                                        Lt(Col("val"), Lit(Value::I32(10))));
  std::vector<AggItem> aggs;
  aggs.push_back({AggKind::kCount, nullptr, "cnt"});
  aggs.push_back({AggKind::kSum, Col("id"), "sum_id"});
  HashAggOp agg(std::move(sel), {}, std::move(aggs));
  auto res = CollectRows(&agg, &ctx);
  ASSERT_TRUE(res.ok());
  // val = id % 100 < 10 -> ids 0..9, 100..109, ... 10 per hundred.
  EXPECT_EQ(res->rows[0][0].AsI64(), 100);
  int64_t expect_sum = 0;
  for (int i = 0; i < 1000; i++) {
    if (i % 100 < 10) expect_sum += i;
  }
  EXPECT_EQ(res->rows[0][1].AsI64(), expect_sum);
}

// ---------------------------------------------------------------------------
// Exchange + cancellation
// ---------------------------------------------------------------------------

TEST_F(ScanTest, ExchangeUnionsPartitionedScans) {
  ExecContext ctx;
  std::vector<OperatorPtr> producers;
  const int workers = 2;
  for (int w = 0; w < workers; w++) {
    ScanOptions opts;
    opts.columns = {0};
    opts.use_subset = true;
    for (int g = 0; g < table_->base()->num_groups(); g++) {
      if (g % workers == w) opts.group_subset.push_back(g);
    }
    opts.include_tail = w == 0;
    producers.push_back(std::make_unique<ScanOp>(
        table_->View(), table_->SnapshotPdt(), buffers_.get(),
        std::move(opts)));
  }
  XchgOp xchg(std::move(producers));
  auto res = CollectRows(&xchg, &ctx);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->rows.size(), 1000u);
  int64_t sum = 0;
  for (const auto& row : res->rows) sum += row[0].AsI64();
  EXPECT_EQ(sum, 999ll * 1000 / 2);
}

TEST(CancellationTest, OperatorTreeStopsPromptly) {
  ExecContext ctx;
  CancellationToken token;
  ctx.cancel = &token;
  // An effectively infinite values source would run forever; cancel from
  // another thread must stop it.
  Schema s({Field("x", TypeId::kI64)});
  std::vector<std::vector<Value>> rows(10000, {Value::I64(1)});
  auto values = std::make_unique<ValuesOp>(s, std::move(rows));
  // Heavy cross join to keep it busy: join values with itself.
  std::vector<std::vector<Value>> rows2(10000, {Value::I64(1)});
  auto values2 = std::make_unique<ValuesOp>(s, std::move(rows2));
  HashJoinOp join(std::move(values), std::move(values2), {0}, {0},
                  JoinType::kInner);  // 10^8 output pairs
  ASSERT_TRUE(join.Open(&ctx).ok());
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.Cancel();
  });
  Status final_status = Status::OK();
  while (true) {
    auto b = join.Next();
    if (!b.ok()) {
      final_status = b.status();
      break;
    }
    if (*b == nullptr) break;
  }
  canceller.join();
  join.Close();
  EXPECT_TRUE(final_status.IsCancelled());
}

TEST(CancellationTest, ExchangeProducersJoinOnCancel) {
  ExecContext ctx;
  CancellationToken token;
  ctx.cancel = &token;
  Schema s({Field("x", TypeId::kI64)});
  std::vector<OperatorPtr> producers;
  for (int p = 0; p < 2; p++) {
    std::vector<std::vector<Value>> rows(200000, {Value::I64(p)});
    producers.push_back(std::make_unique<ValuesOp>(s, std::move(rows)));
  }
  XchgOp xchg(std::move(producers));
  ASSERT_TRUE(xchg.Open(&ctx).ok());
  auto first = xchg.Next();
  ASSERT_TRUE(first.ok());
  token.Cancel();
  // Drain until the cancel surfaces.
  while (true) {
    auto b = xchg.Next();
    if (!b.ok()) {
      EXPECT_TRUE(b.status().IsCancelled());
      break;
    }
    if (*b == nullptr) break;
  }
  xchg.Close();  // must join producer threads without deadlock
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Morsel-driven parallel scans
// ---------------------------------------------------------------------------

TEST(MorselSourceTest, HandsOutEachGroupExactlyOnce) {
  MorselSource src(64);
  std::mutex mu;
  std::vector<int> claimed;
  int tails = 0;
  std::vector<std::thread> pullers;
  for (int t = 0; t < 4; t++) {
    pullers.emplace_back([&] {
      std::vector<int> mine;
      while (true) {
        const int g = src.NextGroup();
        if (g < 0) break;
        mine.push_back(g);
      }
      const bool tail = src.ClaimTail();
      std::lock_guard<std::mutex> lock(mu);
      claimed.insert(claimed.end(), mine.begin(), mine.end());
      tails += tail ? 1 : 0;
    });
  }
  for (auto& t : pullers) t.join();
  EXPECT_EQ(tails, 1);  // exactly one consumer merges the PDT tail
  std::sort(claimed.begin(), claimed.end());
  ASSERT_EQ(claimed.size(), 64u);
  for (int g = 0; g < 64; g++) EXPECT_EQ(claimed[g], g);
  EXPECT_EQ(src.handed(), 64);
}

TEST_F(ScanTest, MorselExchangeDeterministicAcrossWorkerCounts) {
  for (int workers : {1, 2, 8}) {
    TaskScheduler pool(workers);
    ExecContext ctx;
    ctx.scheduler = &pool;
    auto morsels =
        std::make_shared<MorselSource>(table_->base()->num_groups());
    std::vector<OperatorPtr> producers;
    for (int w = 0; w < workers; w++) {
      ScanOptions opts;
      opts.columns = {0};
      opts.morsels = morsels;
      producers.push_back(std::make_unique<ScanOp>(
          table_->View(), table_->SnapshotPdt(), buffers_.get(),
          std::move(opts)));
    }
    XchgOp xchg(std::move(producers));
    auto res = CollectRows(&xchg, &ctx);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(res->rows.size(), 1000u) << "workers=" << workers;
    int64_t sum = 0;
    for (const auto& row : res->rows) sum += row[0].AsI64();
    EXPECT_EQ(sum, 999ll * 1000 / 2) << "workers=" << workers;
    EXPECT_EQ(morsels->handed(), table_->base()->num_groups());
  }
}

TEST_F(ScanTest, MorselExchangeCancellationJoinsInFlightTasks) {
  TaskScheduler pool(2);
  CancellationToken token;
  ExecContext ctx;
  ctx.scheduler = &pool;
  ctx.cancel = &token;
  auto morsels =
      std::make_shared<MorselSource>(table_->base()->num_groups());
  std::vector<OperatorPtr> producers;
  for (int w = 0; w < 2; w++) {
    ScanOptions opts;
    opts.columns = {0, 1, 2};
    opts.morsels = morsels;
    producers.push_back(std::make_unique<ScanOp>(
        table_->View(), table_->SnapshotPdt(), buffers_.get(),
        std::move(opts)));
  }
  XchgOp xchg(std::move(producers));
  ASSERT_TRUE(xchg.Open(&ctx).ok());
  token.Cancel();  // cancel with morsel tasks potentially in flight
  while (true) {
    auto b = xchg.Next();
    if (!b.ok()) {
      EXPECT_TRUE(b.status().IsCancelled());
      break;
    }
    if (*b == nullptr) break;
  }
  xchg.Close();  // must join every producer task without deadlock
  SUCCEED();
}

TEST_F(ScanTest, TwoExchangesOnOneWorkerDoNotDeadlock) {
  // Regression: a producer blocked on a full exchange queue must not hold
  // the pool's only worker hostage. Open two exchanges, then drain the
  // SECOND one first — the first exchange's producers saturate their
  // 1-slot queue and must yield the worker (by helping) so the second
  // exchange's producers can run at all.
  TaskScheduler pool(1);
  ExecContext ctx;
  ctx.scheduler = &pool;
  auto make_xchg = [&] {
    auto morsels =
        std::make_shared<MorselSource>(table_->base()->num_groups());
    std::vector<OperatorPtr> producers;
    for (int w = 0; w < 2; w++) {
      ScanOptions opts;
      opts.columns = {0};
      opts.morsels = morsels;
      producers.push_back(std::make_unique<ScanOp>(
          table_->View(), table_->SnapshotPdt(), buffers_.get(),
          std::move(opts)));
    }
    return std::make_unique<XchgOp>(std::move(producers),
                                    /*queue_capacity=*/1);
  };
  auto first = make_xchg();
  auto second = make_xchg();
  ASSERT_TRUE(first->Open(&ctx).ok());   // its producers queue first
  ASSERT_TRUE(second->Open(&ctx).ok());
  auto drain = [&](Operator* op) {
    int64_t rows = 0;
    while (true) {
      auto b = op->Next();
      if (!b.ok()) return int64_t{-1};
      if (*b == nullptr) return rows;
      rows += (*b)->ActiveRows();
    }
  };
  EXPECT_EQ(drain(second.get()), 1000);  // starved side without the fix
  EXPECT_EQ(drain(first.get()), 1000);
  second->Close();
  first->Close();
}

}  // namespace
}  // namespace x100
