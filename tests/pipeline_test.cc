// Pipeline-executor tests: parallel join build + probe, parallel sort,
// group-by-join pipelines, determinism across worker counts on skewed
// build sides, cancellation mid-pipeline, empty-input pipelines, and
// per-query admission control (TaskQuota).
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "common/config.h"
#include "common/task_scheduler.h"
#include "engine/physical_plan.h"
#include "engine/session.h"
#include "exec/sort.h"
#include "tpch/tpch.h"

namespace x100 {
namespace {

// ---------------------------------------------------------------------------
// TaskQuota (admission control)
// ---------------------------------------------------------------------------

TEST(TaskQuotaTest, GrantsAreBoundedAndNeverZero) {
  TaskQuota q(4);
  EXPECT_EQ(q.Acquire(3), 3);  // room
  EXPECT_EQ(q.Acquire(8), 1);  // only 1 slot left
  // Full: the escape valve still grants 1 so a query always progresses.
  EXPECT_EQ(q.Acquire(5), 1);
  q.Release(5);
  EXPECT_EQ(q.Acquire(8), 4);
  q.Release(4);
  EXPECT_EQ(q.in_use(), 0);
}

TEST(TaskQuotaTest, UnlimitedGrantsWhatIsAsked) {
  TaskQuota q(0);
  EXPECT_EQ(q.Acquire(64), 64);
  EXPECT_EQ(q.in_use(), 0);
  q.Release(64);  // no-op, must not underflow
  EXPECT_EQ(q.Acquire(1), 1);
}

// ---------------------------------------------------------------------------
// Fixture: a dimension table and a fact table with a skewed key column.
// Half the fact rows share ONE join key, so morsels are heavily skewed
// toward a single build-side group — the adversarial case for static
// partitioning that dynamic morsel handout must absorb.
// ---------------------------------------------------------------------------

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    {
      auto b = db_->CreateTable(
          "dim",
          Schema({Field("k", TypeId::kI64), Field("label", TypeId::kStr)}),
          Layout::kDsm, 32);
      for (int i = 0; i < 100; i++) {
        ASSERT_TRUE(
            b->AppendRow({Value::I64(i),
                          Value::Str("lab" + std::to_string(i % 7))})
                .ok());
      }
      auto t = b->Finish();
      ASSERT_TRUE(t.ok());
      ASSERT_TRUE(db_->RegisterTable(std::move(t).value()).ok());
    }
    {
      auto b = db_->CreateTable(
          "fact",
          Schema({Field("fk", TypeId::kI64), Field("val", TypeId::kI64)}),
          Layout::kDsm, 256);
      for (int i = 0; i < 5000; i++) {
        // Skew: rows 0..2499 all hit build key 7.
        const int64_t key = i < 2500 ? 7 : i % 100;
        ASSERT_TRUE(b->AppendRow({Value::I64(key), Value::I64(i)}).ok());
      }
      auto t = b->Finish();
      ASSERT_TRUE(t.ok());
      ASSERT_TRUE(db_->RegisterTable(std::move(t).value()).ok());
    }
    {
      // Every row carries ONE key value: with radix partitioning enabled
      // the whole build side lands in a single partition — the worst
      // case for the merge fan-out (all other merge tasks get nothing).
      auto b = db_->CreateTable(
          "mono",
          Schema({Field("k", TypeId::kI64), Field("tag", TypeId::kI64)}),
          Layout::kDsm, 64);
      for (int i = 0; i < 500; i++) {
        ASSERT_TRUE(b->AppendRow({Value::I64(42), Value::I64(i)}).ok());
      }
      auto t = b->Finish();
      ASSERT_TRUE(t.ok());
      ASSERT_TRUE(db_->RegisterTable(std::move(t).value()).ok());
    }
    session_ = std::make_unique<Session>(db_.get());
  }

  void SetWorkers(int workers) {
    db_->config().max_parallelism = workers;
    db_->config().scheduler_workers = workers;
  }

  void SetRadixBits(int bits) { db_->config().radix_bits = bits; }

  /// Join fact against dim, keep (val, label), order by unique val — the
  /// unique sort key makes the result fully deterministic.
  AlgebraPtr JoinPlan() {
    AlgebraPtr join =
        JoinNode(ScanNode("dim"), ScanNode("fact"), JoinType::kInner,
                 {"k"}, {"fk"});
    return OrderNode(std::move(join), {{"val", true}});
  }

  /// Group-by-join: join, aggregate per label, order by label.
  AlgebraPtr GroupByJoinPlan() {
    AlgebraPtr join =
        JoinNode(ScanNode("dim"), ScanNode("fact"), JoinType::kInner,
                 {"k"}, {"fk"});
    AlgebraPtr aggr = AggrNode(std::move(join), {{"label", Col("label")}},
                               {{AggKind::kSum, Col("val"), "s"},
                                {AggKind::kCount, nullptr, "c"},
                                {AggKind::kMin, Col("val"), "lo"},
                                {AggKind::kMax, Col("val"), "hi"}});
    return OrderNode(std::move(aggr), {{"label", true}});
  }

  static void ExpectSameRows(const QueryResult& a, const QueryResult& b,
                             const std::string& what) {
    ASSERT_EQ(a.rows.size(), b.rows.size()) << what;
    for (size_t i = 0; i < a.rows.size(); i++) {
      for (size_t c = 0; c < a.rows[i].size(); c++) {
        EXPECT_TRUE(a.rows[i][c].SqlEquals(b.rows[i][c]))
            << what << " row " << i << " col " << c;
      }
    }
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> session_;
};

// ---------------------------------------------------------------------------
// Parallel join probe
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, ParallelJoinProbeDeterministicAcrossWorkerCounts) {
  SetWorkers(1);
  auto reference = session_->Execute(JoinPlan());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_EQ(reference->rows.size(), 5000u);  // every fact row matches
  for (int workers : {2, 8}) {
    SetWorkers(workers);
    auto res = session_->Execute(JoinPlan());
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ExpectSameRows(*reference, *res,
                   "join probe workers=" + std::to_string(workers));
  }
  SetWorkers(0);
}

TEST_F(PipelineTest, JoinPhasesRunAsSchedulerTasks) {
  // Explicit radix_bits: dim (100 rows) is under the tiny-build cutoff,
  // so AUTO sizing would collapse to one merge task — the explicit
  // setting keeps the fan-out observable.
  SetWorkers(4);
  SetRadixBits(3);
  auto res = session_->Execute(JoinPlan());
  SetWorkers(0);
  SetRadixBits(-1);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  int probe_clones = 0, scans = 0, merge_tasks = 0;
  bool saw_parallel_sort = false;
  for (const OperatorProfile& p : res->profile.operators) {
    if (p.op == "JoinProbe[inner]") probe_clones++;
    if (p.op == "Scan") scans++;
    if (p.op == "JoinBuildMerge") merge_tasks++;
    saw_parallel_sort |= p.op.rfind("ParallelSort", 0) == 0;
  }
  // The build's barrier merge fans out one task per radix partition.
  EXPECT_EQ(merge_tasks, 1 << 3);
  EXPECT_EQ(probe_clones, 4);      // probe cloned per sort worker chain
  EXPECT_EQ(scans, 8);             // 4 build-side + 4 probe-side clones
  EXPECT_TRUE(saw_parallel_sort);  // the pipeline's sink
}

TEST_F(PipelineTest, TinyBuildCollapsesAutoPartitioning) {
  // ROADMAP-noted waste: a tiny build used to pay ~2^radix_bits empty
  // per-worker partition buffers. Under AUTO sizing the planner now
  // bounds the build by its scan spine (dim: 100 rows < kTinyBuildRows)
  // and keeps the single-table path — exactly one JoinBuildMerge task.
  SetWorkers(4);
  SetRadixBits(-1);
  auto auto_sized = session_->Execute(JoinPlan());
  ASSERT_TRUE(auto_sized.ok()) << auto_sized.status().ToString();
  int auto_merges = 0;
  for (const OperatorProfile& p : auto_sized->profile.operators) {
    if (p.op == "JoinBuildMerge") auto_merges++;
  }
  EXPECT_EQ(auto_merges, 1);
  SetWorkers(0);
}

TEST_F(PipelineTest, GroupByJoinDeterministicAcrossWorkerCounts) {
  SetWorkers(1);
  auto reference = session_->Execute(GroupByJoinPlan());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_EQ(reference->rows.size(), 7u);  // labels lab0..lab6
  for (int workers : {2, 8}) {
    SetWorkers(workers);
    auto res = session_->Execute(GroupByJoinPlan());
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ExpectSameRows(*reference, *res,
                   "group-by-join workers=" + std::to_string(workers));
  }
  SetWorkers(0);
}

TEST_F(PipelineTest, GroupByJoinAllPhasesProfiled) {
  // The acceptance shape: build, probe, aggregation and sort all visible
  // as pipeline phases in the query profile.
  SetWorkers(4);
  auto res = session_->Execute(GroupByJoinPlan());
  SetWorkers(0);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  bool build = false, probe = false, agg = false, agg_merge = false,
       sort = false;
  for (const OperatorProfile& p : res->profile.operators) {
    build |= p.op == "JoinBuildMerge";
    probe |= p.op == "JoinProbe[inner]";
    agg |= p.op == "ParallelHashAgg(4)";
    agg_merge |= p.op == "AggMerge";
    sort |= p.op.rfind("ParallelSort", 0) == 0;
  }
  EXPECT_TRUE(build);
  EXPECT_TRUE(probe);
  EXPECT_TRUE(agg);
  EXPECT_TRUE(agg_merge);
  EXPECT_TRUE(sort);
}

TEST_F(PipelineTest, LeftOuterAndSemiJoinParallelMatchSerial) {
  for (JoinType type : {JoinType::kLeftOuter, JoinType::kSemi,
                        JoinType::kAnti}) {
    // Probe dim against fact keys so some probe rows have no match
    // (fact keys cover 0..99 but dim probes against skewed fk values).
    auto make_plan = [&] {
      AlgebraPtr join =
          JoinNode(ScanNode("fact", {"fk"}), ScanNode("dim"), type, {"fk"},
                   {"k"});
      return OrderNode(std::move(join), {{"k", true}});
    };
    SetWorkers(1);
    auto serial = session_->Execute(make_plan());
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    SetWorkers(8);
    auto parallel = session_->Execute(make_plan());
    SetWorkers(0);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectSameRows(*serial, *parallel,
                   std::string("join type ") + JoinTypeName(type));
  }
}

// ---------------------------------------------------------------------------
// Radix-partitioned merge (join build + aggregation)
// ---------------------------------------------------------------------------

TEST(EffectiveRadixBitsTest, SizesFromPipelineWidth) {
  // Serial plans never partition; auto targets ~2x the worker count.
  EXPECT_EQ(EffectiveRadixBits(-1, 1), 0);
  EXPECT_EQ(EffectiveRadixBits(-1, 2), 2);   // 4 partitions
  EXPECT_EQ(EffectiveRadixBits(-1, 8), 4);   // 16 partitions
  EXPECT_EQ(EffectiveRadixBits(-1, 1024), kMaxRadixBits);  // capped
  // Explicit settings pass through (capped), 0 disables.
  EXPECT_EQ(EffectiveRadixBits(0, 8), 0);
  EXPECT_EQ(EffectiveRadixBits(4, 2), 4);
  EXPECT_EQ(EffectiveRadixBits(100, 8), kMaxRadixBits);
}

TEST(EffectiveRadixBitsTest, TinyBuildsSkipPartitioning) {
  // Builds bounded under kTinyBuildRows keep the single-table path (the
  // per-worker 2^bits empty partition buffers outweigh the merge they
  // parallelize); unknown cardinality (-1) keeps partitioning.
  EXPECT_EQ(RadixBitsForBuild(4, 0), 0);
  EXPECT_EQ(RadixBitsForBuild(4, kTinyBuildRows - 1), 0);
  EXPECT_EQ(RadixBitsForBuild(4, kTinyBuildRows), 4);
  EXPECT_EQ(RadixBitsForBuild(4, -1), 4);
  EXPECT_EQ(RadixBitsForBuild(0, kTinyBuildRows * 2), 0);
}

TEST_F(PipelineTest, RadixSweepDeterministicAcrossWorkersAndBits) {
  // The acceptance sweep: radix_bits in {0, 2, 4} x workers in {1, 2, 8}
  // must all produce the single-table serial reference, groups included.
  SetWorkers(1);
  SetRadixBits(0);
  auto reference = session_->Execute(GroupByJoinPlan());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_EQ(reference->rows.size(), 7u);
  for (int bits : {0, 2, 4}) {
    for (int workers : {1, 2, 8}) {
      SetWorkers(workers);
      SetRadixBits(bits);
      auto res = session_->Execute(GroupByJoinPlan());
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      ExpectSameRows(*reference, *res,
                     "radix_bits=" + std::to_string(bits) +
                         " workers=" + std::to_string(workers));
    }
  }
  SetWorkers(0);
  SetRadixBits(-1);
}

TEST_F(PipelineTest, SkewedKeysCollapseIntoOnePartition) {
  // Build side `mono` has a single distinct key: every row hashes into
  // ONE radix partition, so one merge task carries the entire table and
  // the other 2^bits - 1 merge empty partitions. Results must not care.
  auto plan = [] {
    AlgebraPtr join =
        JoinNode(ScanNode("mono"), ScanNode("fact"), JoinType::kInner,
                 {"k"}, {"fk"});
    AlgebraPtr aggr =
        AggrNode(std::move(join), {{"fk", Col("fk")}},
                 {{AggKind::kCount, nullptr, "n"},
                  {AggKind::kSum, Col("tag"), "s"}});
    return OrderNode(std::move(aggr), {{"fk", true}});
  };
  SetWorkers(1);
  SetRadixBits(0);
  auto reference = session_->Execute(plan());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  // fact rows with fk == 42: i in [2500, 5000) with i % 100 == 42.
  ASSERT_EQ(reference->rows.size(), 1u);
  EXPECT_EQ(reference->rows[0][1].AsI64(), 25 * 500);
  SetRadixBits(4);
  for (int workers : {1, 2, 8}) {
    SetWorkers(workers);
    auto res = session_->Execute(plan());
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ExpectSameRows(*reference, *res,
                   "skewed workers=" + std::to_string(workers));
  }
  SetWorkers(0);
  SetRadixBits(-1);
}

TEST_F(PipelineTest, PartitionCountVsWorkerCountMismatch) {
  // More partitions than workers (16 vs 2) and fewer partitions than
  // workers (2 vs 8): the merge fan-out must cover every partition
  // regardless of how many tasks the quota/scheduler actually grants.
  SetWorkers(1);
  SetRadixBits(0);
  auto reference = session_->Execute(GroupByJoinPlan());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  struct Case { int workers, bits; };
  for (const Case c : {Case{2, 4}, Case{8, 1}, Case{1, 4}}) {
    SetWorkers(c.workers);
    SetRadixBits(c.bits);
    auto res = session_->Execute(GroupByJoinPlan());
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ExpectSameRows(*reference, *res,
                   "workers=" + std::to_string(c.workers) +
                       " bits=" + std::to_string(c.bits));
  }
  // Keyless aggregation ignores radix_bits (one global group).
  SetWorkers(8);
  SetRadixBits(4);
  auto keyless = session_->Execute(AggrNode(
      ScanNode("fact"), {}, {{AggKind::kSum, Col("val"), "s"}}));
  ASSERT_TRUE(keyless.ok()) << keyless.status().ToString();
  ASSERT_EQ(keyless->rows.size(), 1u);
  EXPECT_EQ(keyless->rows[0][0].AsI64(), 4999LL * 5000 / 2);
  SetWorkers(0);
  SetRadixBits(-1);
}

TEST_F(PipelineTest, RootJoinProbeRunsParallel) {
  // A join at the plan ROOT (no Aggr/Order sink): the probe clones are
  // unioned by an exchange sink, so probe work is executed by more than
  // one worker — previously the root probe was serial.
  AlgebraPtr root_join = [this] {
    return JoinNode(ScanNode("dim"), ScanNode("fact"), JoinType::kInner,
                    {"k"}, {"fk"});
  }();
  SetWorkers(1);
  auto serial = session_->Execute(
      JoinNode(ScanNode("dim"), ScanNode("fact"), JoinType::kInner, {"k"},
               {"fk"}));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_EQ(serial->rows.size(), 5000u);
  SetWorkers(4);
  auto parallel = session_->Execute(std::move(root_join));
  SetWorkers(0);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  // Union order is nondeterministic; compare as sets keyed by the unique
  // probe column `val` (output column 1: probe fk,val then build k,label).
  auto sort_rows = [](QueryResult* r) {
    std::sort(r->rows.begin(), r->rows.end(),
              [](const std::vector<Value>& a, const std::vector<Value>& b) {
                return a[1].AsI64() < b[1].AsI64();
              });
  };
  sort_rows(&*serial);
  sort_rows(&*parallel);
  ExpectSameRows(*serial, *parallel, "root join");
  int probe_clones = 0;
  bool saw_union = false;
  for (const OperatorProfile& p : parallel->profile.operators) {
    if (p.op == "JoinProbe[inner]") probe_clones++;
    saw_union |= p.op.rfind("XchgUnion", 0) == 0;
  }
  EXPECT_EQ(probe_clones, 4);  // probe cloned per pipeline worker
  EXPECT_TRUE(saw_union);      // the root union sink
}

TEST_F(PipelineTest, RootProjectOverJoinProbeRunsParallel) {
  // Select/Project links over a root join parallelize the same way —
  // the union dispatch walks the streaming spine, not just a bare join.
  auto plan = [] {
    AlgebraPtr join =
        JoinNode(ScanNode("dim"), ScanNode("fact"), JoinType::kInner,
                 {"k"}, {"fk"});
    std::vector<ProjectItem> items;
    items.push_back({"val", Col("val")});
    items.push_back({"label", Col("label")});
    return ProjectNode(std::move(join), std::move(items));
  };
  SetWorkers(1);
  auto serial = session_->Execute(plan());
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_EQ(serial->rows.size(), 5000u);
  SetWorkers(4);
  auto parallel = session_->Execute(plan());
  SetWorkers(0);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  auto sort_rows = [](QueryResult* r) {
    std::sort(r->rows.begin(), r->rows.end(),
              [](const std::vector<Value>& a, const std::vector<Value>& b) {
                return a[0].AsI64() < b[0].AsI64();  // val is unique
              });
  };
  sort_rows(&*serial);
  sort_rows(&*parallel);
  ExpectSameRows(*serial, *parallel, "root project-over-join");
  int probe_clones = 0;
  bool saw_union = false;
  for (const OperatorProfile& p : parallel->profile.operators) {
    if (p.op == "JoinProbe[inner]") probe_clones++;
    saw_union |= p.op.rfind("XchgUnion", 0) == 0;
  }
  EXPECT_EQ(probe_clones, 4);
  EXPECT_TRUE(saw_union);
}

// ---------------------------------------------------------------------------
// Parallel sort
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, ParallelSortDeterministicAcrossWorkerCounts) {
  auto plan = [] {
    return OrderNode(ScanNode("fact"), {{"val", false}});  // descending
  };
  SetWorkers(1);
  auto reference = session_->Execute(plan());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_EQ(reference->rows.size(), 5000u);
  EXPECT_EQ(reference->rows[0][1].AsI64(), 4999);
  for (int workers : {2, 8}) {
    SetWorkers(workers);
    auto res = session_->Execute(plan());
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ExpectSameRows(*reference, *res,
                   "sort workers=" + std::to_string(workers));
  }
  SetWorkers(0);
}

TEST_F(PipelineTest, ParallelTopNDeterministicAcrossWorkerCounts) {
  auto plan = [] {
    return OrderNode(ScanNode("fact"), {{"val", true}}, /*limit=*/17);
  };
  SetWorkers(1);
  auto reference = session_->Execute(plan());
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(reference->rows.size(), 17u);
  for (int workers : {2, 8}) {
    SetWorkers(workers);
    auto res = session_->Execute(plan());
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ExpectSameRows(*reference, *res,
                   "topn workers=" + std::to_string(workers));
  }
  SetWorkers(0);
}

TEST_F(PipelineTest, ParallelSortOverAggregationUsesRangeSplit) {
  // ORDER BY over an aggregation: the input is not clonable, so the sort
  // drains it with one task and range-splits the sorting itself.
  auto plan = [] {
    AlgebraPtr aggr = AggrNode(ScanNode("fact"), {{"fk", Col("fk")}},
                               {{AggKind::kSum, Col("val"), "s"}});
    return OrderNode(std::move(aggr), {{"s", false}});
  };
  SetWorkers(1);
  auto reference = session_->Execute(plan());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  SetWorkers(8);
  auto res = session_->Execute(plan());
  SetWorkers(0);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ExpectSameRows(*reference, *res, "sort-over-agg");
  bool saw_parallel_sort = false;
  for (const OperatorProfile& p : res->profile.operators) {
    saw_parallel_sort |= p.op.rfind("ParallelSort", 0) == 0;
  }
  EXPECT_TRUE(saw_parallel_sort);
}

// ---------------------------------------------------------------------------
// Cancellation mid-pipeline
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, CancellationMidPipelineJoinsAllTasks) {
  // A self-join on a heavily duplicated key explodes quadratically
  // (2500^2 pairs through the skewed key alone), so the pipeline cannot
  // finish before the cancel lands. All worker tasks must observe the
  // token and the query must unwind without deadlock.
  SetWorkers(4);
  CancellationToken token;
  AlgebraPtr join =
      JoinNode(ScanNode("fact"), ScanNode("fact"), JoinType::kInner,
               {"fk"}, {"fk"});
  AlgebraPtr plan = AggrNode(std::move(join), {},
                             {{AggKind::kCount, nullptr, "n"}});
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.Cancel();
  });
  auto res = session_->Execute(std::move(plan), &token);
  canceller.join();
  SetWorkers(0);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsCancelled()) << res.status().ToString();
}

TEST_F(PipelineTest, PreCancelledPipelineAbortsPromptly) {
  SetWorkers(8);
  CancellationToken token;
  token.Cancel();
  auto res = session_->Execute(GroupByJoinPlan(), &token);
  SetWorkers(0);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsCancelled());
}

// ---------------------------------------------------------------------------
// Empty-input pipelines
// ---------------------------------------------------------------------------

class EmptyPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    auto empty = db_->CreateTable(
        "nothing",
        Schema({Field("k", TypeId::kI64), Field("v", TypeId::kI64)}),
        Layout::kDsm, 64);
    auto t = empty->Finish();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(db_->RegisterTable(std::move(t).value()).ok());

    auto some = db_->CreateTable(
        "some",
        Schema({Field("k", TypeId::kI64), Field("v", TypeId::kI64)}),
        Layout::kDsm, 64);
    for (int i = 0; i < 200; i++) {
      ASSERT_TRUE(
          some->AppendRow({Value::I64(i % 10), Value::I64(i)}).ok());
    }
    auto t2 = some->Finish();
    ASSERT_TRUE(t2.ok());
    ASSERT_TRUE(db_->RegisterTable(std::move(t2).value()).ok());

    db_->config().max_parallelism = 4;
    db_->config().scheduler_workers = 4;
    session_ = std::make_unique<Session>(db_.get());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> session_;
};

TEST_F(EmptyPipelineTest, EmptyProbeSide) {
  AlgebraPtr join = JoinNode(ScanNode("some"), ScanNode("nothing"),
                             JoinType::kInner, {"k"}, {"k"});
  auto res = session_->Execute(OrderNode(std::move(join), {{"v", true}}));
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows.size(), 0u);
}

TEST_F(EmptyPipelineTest, EmptyBuildSideInnerAndOuter) {
  AlgebraPtr inner = JoinNode(ScanNode("nothing"), ScanNode("some"),
                              JoinType::kInner, {"k"}, {"k"});
  auto r1 = session_->Execute(OrderNode(std::move(inner), {{"v", true}}));
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->rows.size(), 0u);

  AlgebraPtr outer = JoinNode(ScanNode("nothing"), ScanNode("some"),
                              JoinType::kLeftOuter, {"k"}, {"k"});
  auto r2 = session_->Execute(OrderNode(std::move(outer), {{"v", true}}));
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_EQ(r2->rows.size(), 200u);  // every probe row null-padded
  EXPECT_TRUE(r2->rows[0][2].is_null());
  EXPECT_TRUE(r2->rows[0][3].is_null());
}

TEST_F(EmptyPipelineTest, EmptyAggregationAndSort) {
  // Keyless aggregate over nothing: one row, COUNT 0, SUM NULL.
  auto agg = session_->Execute(AggrNode(
      ScanNode("nothing"), {},
      {{AggKind::kCount, nullptr, "n"}, {AggKind::kSum, Col("v"), "s"}}));
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  ASSERT_EQ(agg->rows.size(), 1u);
  EXPECT_EQ(agg->rows[0][0].AsI64(), 0);
  EXPECT_TRUE(agg->rows[0][1].is_null());

  // Keyed aggregate over nothing: zero groups.
  auto keyed = session_->Execute(AggrNode(
      ScanNode("nothing"), {{"k", Col("k")}},
      {{AggKind::kCount, nullptr, "n"}}));
  ASSERT_TRUE(keyed.ok());
  EXPECT_EQ(keyed->rows.size(), 0u);

  // Parallel sort over nothing.
  auto sorted =
      session_->Execute(OrderNode(ScanNode("nothing"), {{"v", true}}));
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted->rows.size(), 0u);
}

// ---------------------------------------------------------------------------
// Admission control end-to-end + exclusive profile time
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, QuotaConstrainedQueryStillCorrect) {
  // A quota of 1 degrades the pipelines to sequential task execution but
  // must not change results (tasks cover all worker chains in turn).
  SetWorkers(1);
  auto reference = session_->Execute(GroupByJoinPlan());
  ASSERT_TRUE(reference.ok());
  SetWorkers(8);
  db_->config().query_task_quota = 1;
  auto res = session_->Execute(GroupByJoinPlan());
  db_->config().query_task_quota = 0;
  SetWorkers(0);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ExpectSameRows(*reference, *res, "quota=1");
}

TEST_F(PipelineTest, ExclusiveTimeSubtractsChildTime) {
  // Serial plan: Sort pulls Scan inside its own Next, so the sort's
  // child_ns must be populated and exclusive <= inclusive.
  SetWorkers(0);
  auto res = session_->Execute(
      OrderNode(ScanNode("fact"), {{"val", true}}));
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  bool checked_sort = false;
  for (const OperatorProfile& p : res->profile.operators) {
    EXPECT_GE(p.exclusive_ns(), 0);
    EXPECT_LE(p.exclusive_ns(), p.open_ns + p.next_ns);
    if (p.op == "Sort") {
      checked_sort = true;
      EXPECT_GT(p.child_ns, 0);  // the scan ran inside the sort's Next
    }
  }
  EXPECT_TRUE(checked_sort);
  EXPECT_NE(res->profile.ToString().find("self(us)"), std::string::npos);
}

// The planner helpers drive the decomposition; pin their contract.
TEST(ClonablePipelineTest, RecognizesStreamingChains) {
  AlgebraPtr scan = ScanNode("t");
  EXPECT_TRUE(IsClonablePipeline(scan));
  EXPECT_TRUE(IsClonablePipeline(
      SelectNode(ScanNode("t"), Gt(Col("x"), Lit(Value::I64(0))))));
  // A join is clonable along its probe side.
  EXPECT_TRUE(IsClonablePipeline(JoinNode(
      AggrNode(ScanNode("b"), {}, {{AggKind::kCount, nullptr, "n"}}),
      ScanNode("p"), JoinType::kInner, {"n"}, {"x"})));
  // Breakers are not.
  EXPECT_FALSE(IsClonablePipeline(
      AggrNode(ScanNode("t"), {}, {{AggKind::kCount, nullptr, "n"}})));
  EXPECT_FALSE(IsClonablePipeline(
      OrderNode(ScanNode("t"), {{"x", true}})));
  // Rewriter-parallelized scans keep the legacy exchange path.
  AlgebraPtr morsel_scan = ScanNode("t");
  morsel_scan->morsel_group = 0;
  EXPECT_FALSE(IsClonablePipeline(morsel_scan));
}

}  // namespace
}  // namespace x100
