// Property tests: vectorized operators checked against naive reference
// implementations over randomized inputs (parameterized sweeps).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/select_project.h"
#include "exec/sort.h"
#include "exec/values.h"

namespace x100 {
namespace {

struct SweepCase {
  const char* name;
  int n_left;
  int n_right;
  int64_t domain;       // key domain size (controls match density)
  double null_frac;
  uint64_t seed;
};

std::vector<std::vector<Value>> RandomKv(int n, int64_t domain,
                                         double null_frac, Rng* rng) {
  std::vector<std::vector<Value>> rows;
  rows.reserve(n);
  for (int i = 0; i < n; i++) {
    rows.push_back({rng->Bernoulli(null_frac)
                        ? Value::Null(TypeId::kI64)
                        : Value::I64(rng->Uniform(0, domain - 1)),
                    Value::I64(i)});
  }
  return rows;
}

Schema KvSchema() {
  return Schema(
      {Field("k", TypeId::kI64, true), Field("tag", TypeId::kI64)});
}

class JoinPropertyTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(JoinPropertyTest, InnerJoinMatchesNestedLoop) {
  const SweepCase& c = GetParam();
  Rng rng(c.seed);
  auto left = RandomKv(c.n_left, c.domain, c.null_frac, &rng);
  auto right = RandomKv(c.n_right, c.domain, c.null_frac, &rng);

  // Reference: nested loop, SQL NULL semantics.
  std::multiset<std::pair<int64_t, int64_t>> expect;
  for (const auto& l : left) {
    if (l[0].is_null()) continue;
    for (const auto& r : right) {
      if (r[0].is_null()) continue;
      if (l[0].AsI64() == r[0].AsI64()) {
        expect.insert({l[1].AsI64(), r[1].AsI64()});
      }
    }
  }

  ExecContext ctx;
  ctx.vector_size = 64;  // force multi-batch paths
  HashJoinOp join(std::make_unique<ValuesOp>(KvSchema(), right),
                  std::make_unique<ValuesOp>(KvSchema(), left), {0}, {0},
                  JoinType::kInner);
  auto res = CollectRows(&join, &ctx);
  ASSERT_TRUE(res.ok());
  std::multiset<std::pair<int64_t, int64_t>> got;
  for (const auto& row : res->rows) {
    got.insert({row[1].AsI64(), row[3].AsI64()});  // probe tag, build tag
  }
  EXPECT_EQ(expect, got) << c.name;
}

TEST_P(JoinPropertyTest, SemiAntiPartitionProbeSide) {
  // For every probe row: semi-join keeps it XOR (plain) anti-join keeps it.
  const SweepCase& c = GetParam();
  Rng rng(c.seed + 1);
  auto left = RandomKv(c.n_left, c.domain, c.null_frac, &rng);
  auto right = RandomKv(c.n_right, c.domain, c.null_frac, &rng);

  auto run = [&](JoinType t) {
    ExecContext ctx;
    ctx.vector_size = 64;
    HashJoinOp join(std::make_unique<ValuesOp>(KvSchema(), right),
                    std::make_unique<ValuesOp>(KvSchema(), left), {0}, {0},
                    t);
    auto res = CollectRows(&join, &ctx);
    EXPECT_TRUE(res.ok());
    std::multiset<int64_t> tags;
    for (const auto& row : res->rows) tags.insert(row[1].AsI64());
    return tags;
  };
  auto semi = run(JoinType::kSemi);
  auto anti = run(JoinType::kAnti);
  EXPECT_EQ(semi.size() + anti.size(), left.size()) << c.name;
  for (int64_t tag : semi) EXPECT_EQ(anti.count(tag), 0u);
}

TEST_P(JoinPropertyTest, LeftOuterCoversAllProbeRows) {
  const SweepCase& c = GetParam();
  Rng rng(c.seed + 2);
  auto left = RandomKv(c.n_left, c.domain, c.null_frac, &rng);
  auto right = RandomKv(c.n_right, c.domain, c.null_frac, &rng);
  // match count per probe row; outer join emits max(1, matches) rows.
  std::map<int64_t, int64_t> matches;
  for (const auto& l : left) matches[l[1].AsI64()] = 0;
  for (const auto& l : left) {
    if (l[0].is_null()) continue;
    for (const auto& r : right) {
      if (!r[0].is_null() && l[0].AsI64() == r[0].AsI64()) {
        matches[l[1].AsI64()]++;
      }
    }
  }
  int64_t expect_rows = 0;
  for (const auto& [tag, m] : matches) expect_rows += std::max<int64_t>(1, m);

  ExecContext ctx;
  ctx.vector_size = 64;
  HashJoinOp join(std::make_unique<ValuesOp>(KvSchema(), right),
                  std::make_unique<ValuesOp>(KvSchema(), left), {0}, {0},
                  JoinType::kLeftOuter);
  auto res = CollectRows(&join, &ctx);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(static_cast<int64_t>(res->rows.size()), expect_rows) << c.name;
  // Unmatched rows have NULL build columns.
  for (const auto& row : res->rows) {
    const bool unmatched = row[2].is_null();
    if (unmatched) {
      EXPECT_EQ(matches[row[1].AsI64()], 0);
      EXPECT_TRUE(row[3].is_null());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JoinPropertyTest,
    ::testing::Values(
        SweepCase{"dense_small", 200, 100, 20, 0.0, 1001},
        SweepCase{"dense_nulls", 200, 100, 20, 0.15, 1002},
        SweepCase{"sparse", 500, 300, 5000, 0.0, 1003},
        SweepCase{"sparse_nulls", 500, 300, 5000, 0.1, 1004},
        SweepCase{"skewed_one_key", 300, 300, 2, 0.0, 1005},
        SweepCase{"empty_build", 100, 0, 10, 0.0, 1006},
        SweepCase{"empty_probe", 0, 100, 10, 0.0, 1007},
        SweepCase{"all_null_keys", 100, 100, 10, 1.0, 1008}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Aggregation vs naive reference
// ---------------------------------------------------------------------------

class AggPropertyTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(AggPropertyTest, GroupSumCountMinMaxMatchReference) {
  const SweepCase& c = GetParam();
  Rng rng(c.seed + 10);
  const int n = c.n_left;
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < n; i++) {
    rows.push_back({Value::I64(rng.Uniform(0, c.domain - 1)),
                    rng.Bernoulli(c.null_frac)
                        ? Value::Null(TypeId::kI64)
                        : Value::I64(rng.Uniform(-1000, 1000))});
  }
  struct Ref {
    int64_t cnt_star = 0, cnt = 0, sum = 0;
    int64_t mn = INT64_MAX, mx = INT64_MIN;
  };
  std::map<int64_t, Ref> ref;
  for (const auto& row : rows) {
    Ref& r = ref[row[0].AsI64()];
    r.cnt_star++;
    if (row[1].is_null()) continue;
    r.cnt++;
    r.sum += row[1].AsI64();
    r.mn = std::min(r.mn, row[1].AsI64());
    r.mx = std::max(r.mx, row[1].AsI64());
  }

  ExecContext ctx;
  ctx.vector_size = 37;  // odd size: exercise partial batches
  Schema s({Field("g", TypeId::kI64), Field("x", TypeId::kI64, true)});
  std::vector<ProjectItem> keys;
  keys.push_back({"g", Col("g")});
  std::vector<AggItem> aggs;
  aggs.push_back({AggKind::kCount, nullptr, "cnt_star"});
  aggs.push_back({AggKind::kCount, Col("x"), "cnt"});
  aggs.push_back({AggKind::kSum, Col("x"), "sum"});
  aggs.push_back({AggKind::kMin, Col("x"), "mn"});
  aggs.push_back({AggKind::kMax, Col("x"), "mx"});
  HashAggOp agg(std::make_unique<ValuesOp>(s, rows), std::move(keys),
                std::move(aggs));
  auto res = CollectRows(&agg, &ctx);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), ref.size()) << c.name;
  for (const auto& row : res->rows) {
    const Ref& r = ref.at(row[0].AsI64());
    EXPECT_EQ(row[1].AsI64(), r.cnt_star);
    EXPECT_EQ(row[2].AsI64(), r.cnt);
    if (r.cnt == 0) {
      EXPECT_TRUE(row[3].is_null());
      EXPECT_TRUE(row[4].is_null());
      EXPECT_TRUE(row[5].is_null());
    } else {
      EXPECT_EQ(row[3].AsI64(), r.sum);
      EXPECT_EQ(row[4].AsI64(), r.mn);
      EXPECT_EQ(row[5].AsI64(), r.mx);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AggPropertyTest,
    ::testing::Values(
        SweepCase{"few_groups", 2000, 0, 5, 0.0, 2001},
        SweepCase{"many_groups", 2000, 0, 1500, 0.0, 2002},
        SweepCase{"nulls_30pct", 2000, 0, 50, 0.3, 2003},
        SweepCase{"all_null_measures", 500, 0, 10, 1.0, 2004},
        SweepCase{"single_group", 1000, 0, 1, 0.1, 2005}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Sort vs std::sort reference
// ---------------------------------------------------------------------------

TEST(SortPropertyTest, MatchesStdSortAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 5; seed++) {
    Rng rng(seed * 31);
    const int n = 777;
    std::vector<std::vector<Value>> rows;
    std::vector<std::pair<int64_t, int64_t>> ref;
    for (int i = 0; i < n; i++) {
      const int64_t k = rng.Uniform(0, 50);
      rows.push_back({Value::I64(k), Value::I64(i)});
      ref.push_back({k, i});
    }
    std::stable_sort(ref.begin(), ref.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    ExecContext ctx;
    ctx.vector_size = 64;
    Schema s({Field("k", TypeId::kI64), Field("i", TypeId::kI64)});
    SortOp sort(std::make_unique<ValuesOp>(s, rows), {{0, true}});
    auto res = CollectRows(&sort, &ctx);
    ASSERT_TRUE(res.ok());
    ASSERT_EQ(res->rows.size(), ref.size());
    for (size_t i = 0; i < ref.size(); i++) {
      EXPECT_EQ(res->rows[i][0].AsI64(), ref[i].first) << "seed " << seed;
    }
    // TopN prefix agrees with the full sort's key prefix.
    SortOp topn(std::make_unique<ValuesOp>(s, rows), {{0, true}}, 25);
    auto top = CollectRows(&topn, &ctx);
    ASSERT_TRUE(top.ok());
    ASSERT_EQ(top->rows.size(), 25u);
    for (size_t i = 0; i < 25; i++) {
      EXPECT_EQ(top->rows[i][0].AsI64(), ref[i].first);
    }
  }
}

// ---------------------------------------------------------------------------
// Filter vs reference across selectivities
// ---------------------------------------------------------------------------

TEST(SelectPropertyTest, SelectivitySweepMatchesReference) {
  for (int64_t threshold : {-1, 0, 100, 500, 900, 1000}) {
    Rng rng(99);
    const int n = 3000;
    std::vector<std::vector<Value>> rows;
    int64_t expect = 0;
    for (int i = 0; i < n; i++) {
      const int64_t v = rng.Uniform(0, 999);
      rows.push_back({Value::I64(v)});
      expect += v < threshold;
    }
    ExecContext ctx;
    ctx.vector_size = 128;
    Schema s({Field("x", TypeId::kI64)});
    SelectOp sel(std::make_unique<ValuesOp>(s, rows),
                 Lt(Col("x"), Lit(Value::I64(threshold))));
    auto res = CollectRows(&sel, &ctx);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(static_cast<int64_t>(res->rows.size()), expect)
        << "threshold " << threshold;
  }
}

}  // namespace
}  // namespace x100
