// PDT tests: Fenwick arithmetic, RID/SID mapping, insert/delete/modify
// semantics, merge walks, stacked views, transactions (snapshot isolation,
// conflicts), checkpoint, and a randomized property test against a naive
// reference model.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "pdt/fenwick.h"
#include "pdt/pdt.h"
#include "pdt/transaction.h"
#include "pdt/view.h"
#include "storage/simulated_disk.h"

namespace x100 {
namespace {

TEST(FenwickTest, PrefixSums) {
  Fenwick f(10);
  f.Add(0, 5);
  f.Add(3, 2);
  f.Add(9, 1);
  EXPECT_EQ(f.Prefix(-1), 0);
  EXPECT_EQ(f.Prefix(0), 5);
  EXPECT_EQ(f.Prefix(2), 5);
  EXPECT_EQ(f.Prefix(3), 7);
  EXPECT_EQ(f.Prefix(9), 8);
  EXPECT_EQ(f.Total(), 8);
  f.Add(3, -2);
  EXPECT_EQ(f.Prefix(3), 5);
}

std::vector<Value> Row(int64_t v) { return {Value::I64(v)}; }

TEST(PdtTest, EmptyPdtIsIdentity) {
  Pdt pdt(100);
  EXPECT_EQ(pdt.visible_rows(), 100);
  EXPECT_TRUE(pdt.empty());
  auto loc = pdt.Locate(42);
  ASSERT_TRUE(loc.ok());
  EXPECT_FALSE(loc->is_insert);
  EXPECT_EQ(loc->sid, 42);
  EXPECT_EQ(pdt.RidOfStable(42), 42);
}

TEST(PdtTest, AppendGrowsVisibleImage) {
  Pdt pdt(10);
  ASSERT_TRUE(pdt.InsertAt(10, Row(1000)).ok());
  ASSERT_TRUE(pdt.InsertAt(11, Row(1001)).ok());
  EXPECT_EQ(pdt.visible_rows(), 12);
  auto loc = pdt.Locate(11);
  ASSERT_TRUE(loc.ok());
  EXPECT_TRUE(loc->is_insert);
  EXPECT_EQ(loc->sid, 10);
  EXPECT_EQ(loc->index, 1);
}

TEST(PdtTest, InsertShiftsFollowingRids) {
  Pdt pdt(10);
  ASSERT_TRUE(pdt.InsertAt(5, Row(-1)).ok());  // before stable 5
  EXPECT_EQ(pdt.visible_rows(), 11);
  EXPECT_EQ(pdt.RidOfStable(4), 4);
  EXPECT_EQ(pdt.RidOfStable(5), 6);  // displaced by the insert
  auto loc = pdt.Locate(5);
  ASSERT_TRUE(loc.ok());
  EXPECT_TRUE(loc->is_insert);
}

TEST(PdtTest, DeleteStableHidesRow) {
  Pdt pdt(10);
  ASSERT_TRUE(pdt.DeleteAt(3).ok());
  EXPECT_EQ(pdt.visible_rows(), 9);
  EXPECT_EQ(pdt.RidOfStable(3), -1);
  EXPECT_EQ(pdt.RidOfStable(4), 3);  // shifted up
  auto loc = pdt.Locate(3);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->sid, 4);
}

TEST(PdtTest, DeleteOwnInsertRemovesIt) {
  Pdt pdt(10);
  ASSERT_TRUE(pdt.InsertAt(5, Row(-1)).ok());
  ASSERT_TRUE(pdt.DeleteAt(5).ok());  // deletes the freshly inserted row
  EXPECT_EQ(pdt.visible_rows(), 10);
  EXPECT_TRUE(pdt.empty());  // delta fully cancelled
}

TEST(PdtTest, ModifyRecordsPerColumnValues) {
  Pdt pdt(10);
  ASSERT_TRUE(pdt.ModifyAt(7, 0, Value::I64(999)).ok());
  const PdtDelta* d = pdt.FindDelta(7);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->mods.at(0).AsI64(), 999);
  // Modify again: overwrite.
  ASSERT_TRUE(pdt.ModifyAt(7, 0, Value::I64(111)).ok());
  EXPECT_EQ(pdt.FindDelta(7)->mods.at(0).AsI64(), 111);
}

TEST(PdtTest, ModifyDeletedRowFails) {
  Pdt pdt(10);
  ASSERT_TRUE(pdt.DeleteStable(4).ok());
  EXPECT_FALSE(pdt.ModifyStable(4, 0, Value::I64(1)).ok());
  EXPECT_FALSE(pdt.DeleteStable(4).ok());  // double delete
}

TEST(PdtTest, OutOfRangeRids) {
  Pdt pdt(10);
  EXPECT_EQ(pdt.Locate(10).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(pdt.Locate(-1).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(pdt.DeleteAt(10).code(), StatusCode::kOutOfRange);
}

TEST(PdtTest, HasDeltaInAgreesWithForEachDelta) {
  // The scan-side MinMax gate asks "any delta in this group's SID range?"
  // once per group; HasDeltaIn must answer exactly what a full
  // ForEachDelta walk would, on empty PDTs, boundaries, and interior hits.
  Pdt pdt(100);
  EXPECT_FALSE(pdt.HasDeltaIn(0, 100));
  ASSERT_TRUE(pdt.InsertAt(50, Row(7)).ok());
  ASSERT_TRUE(pdt.DeleteAt(10).ok());
  ASSERT_TRUE(pdt.ModifyAt(90, 0, Value::I64(-1)).ok());
  const int64_t windows[][2] = {{0, 100}, {0, 10},   {0, 11},  {10, 11},
                                {11, 50}, {50, 51},  {51, 90}, {90, 91},
                                {91, 100}, {0, 0},   {50, 50}, {100, 200}};
  for (const auto& w : windows) {
    int walked = 0;
    pdt.ForEachDelta(w[0], w[1],
                     [&](int64_t, const PdtDelta&) { walked++; });
    EXPECT_EQ(pdt.HasDeltaIn(w[0], w[1]), walked > 0)
        << "[" << w[0] << ", " << w[1] << ")";
  }
}

TEST(PdtTest, MixedOpsKeepRidArithmeticConsistent) {
  // Interleave inserts and deletes and verify against a naive model.
  Pdt pdt(20);
  std::vector<int64_t> model(20);
  for (int i = 0; i < 20; i++) model[i] = i;  // stable sids
  Rng rng(31);
  int64_t next_val = 1000;
  for (int step = 0; step < 200; step++) {
    const bool do_insert =
        model.empty() || rng.Bernoulli(0.55);
    if (do_insert) {
      const int64_t rid = rng.Uniform(0, static_cast<int64_t>(model.size()));
      ASSERT_TRUE(pdt.InsertAt(rid, Row(next_val)).ok());
      model.insert(model.begin() + rid, next_val++);
    } else {
      const int64_t rid =
          rng.Uniform(0, static_cast<int64_t>(model.size()) - 1);
      ASSERT_TRUE(pdt.DeleteAt(rid).ok());
      model.erase(model.begin() + rid);
    }
    ASSERT_EQ(pdt.visible_rows(), static_cast<int64_t>(model.size()));
  }
  // Verify every visible position resolves to the right row.
  for (int64_t rid = 0; rid < pdt.visible_rows(); rid++) {
    auto loc = pdt.Locate(rid);
    ASSERT_TRUE(loc.ok());
    if (loc->is_insert) {
      const PdtDelta* d = pdt.FindDelta(loc->sid);
      ASSERT_NE(d, nullptr);
      EXPECT_EQ(d->inserts[loc->index].values[0].AsI64(), model[rid]);
    } else {
      EXPECT_EQ(loc->sid, model[rid]) << "rid " << rid;
    }
  }
}

// ---------------------------------------------------------------------------
// TableView merge walk
// ---------------------------------------------------------------------------

TEST(TableViewTest, CleanRunsCoverUntouchedRanges) {
  Pdt pdt(100);
  ASSERT_TRUE(pdt.DeleteStable(50).ok());
  ASSERT_TRUE(pdt.ModifyStable(70, 0, Value::I64(-1)).ok());
  TableView view;
  view.layers = {&pdt};
  std::vector<std::pair<int64_t, int64_t>> runs;
  std::vector<VisibleSlot> slots;
  view.ForEachVisible(
      0, 100, true,
      [&](int64_t a, int64_t b) { runs.emplace_back(a, b); },
      [&](const VisibleSlot& s) { slots.push_back(s); });
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], std::make_pair(int64_t{0}, int64_t{50}));
  EXPECT_EQ(runs[1], std::make_pair(int64_t{51}, int64_t{70}));
  EXPECT_EQ(runs[2], std::make_pair(int64_t{71}, int64_t{100}));
  ASSERT_EQ(slots.size(), 1u);  // only the modified row is a slot
  EXPECT_EQ(slots[0].sid, 70);
  ASSERT_EQ(slots[0].mods.size(), 1u);
  EXPECT_EQ(slots[0].mods[0].second->AsI64(), -1);
}

TEST(TableViewTest, InsertOnlyAnchorKeepsStableInRun) {
  Pdt pdt(100);
  ASSERT_TRUE(pdt.InsertAt(30, Row(7)).ok());
  TableView view;
  view.layers = {&pdt};
  std::vector<std::pair<int64_t, int64_t>> runs;
  int inserts = 0;
  view.ForEachVisible(
      0, 100, true,
      [&](int64_t a, int64_t b) { runs.emplace_back(a, b); },
      [&](const VisibleSlot& s) {
        EXPECT_TRUE(s.is_insert);
        inserts++;
      });
  EXPECT_EQ(inserts, 1);
  // Stable row 30 stays inside a clean run: [0,30) and [30,100).
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].second, 30);
  EXPECT_EQ(runs[1].first, 30);
}

TEST(TableViewTest, StackedLayersCombine) {
  Pdt read(10);
  auto iid = read.InsertAt(5, Row(500));
  ASSERT_TRUE(iid.ok());
  ASSERT_TRUE(read.ModifyStable(2, 0, Value::I64(222)).ok());

  Pdt write(10);
  ASSERT_TRUE(write.DeleteStable(7).ok());
  write.ModifyLowerInsert(*iid, 0, Value::I64(501));  // patch read's insert

  TableView view;
  view.layers = {&read, &write};
  EXPECT_EQ(view.visible_rows(), 10);  // +1 insert, -1 delete

  // The read-layer insert must surface with the write-layer's mod applied.
  bool saw_insert = false;
  view.ForEachVisible(
      0, 10, true, [](int64_t, int64_t) {},
      [&](const VisibleSlot& s) {
        if (s.is_insert) {
          saw_insert = true;
          EXPECT_EQ(s.row->values[0].AsI64(), 500);
          ASSERT_EQ(s.mods.size(), 1u);
          EXPECT_EQ(s.mods[0].second->AsI64(), 501);
        }
      });
  EXPECT_TRUE(saw_insert);
}

TEST(TableViewTest, UpperLayerDeletesLowerInsert) {
  Pdt read(10);
  auto iid = read.InsertAt(3, Row(42));
  ASSERT_TRUE(iid.ok());
  Pdt write(10);
  write.DeleteLowerInsert(*iid);
  TableView view;
  view.layers = {&read, &write};
  EXPECT_EQ(view.visible_rows(), 10);
  int insert_count = 0;
  view.ForEachVisible(
      0, 10, true, [](int64_t, int64_t) {},
      [&](const VisibleSlot& s) { insert_count += s.is_insert; });
  EXPECT_EQ(insert_count, 0);
}

TEST(TableViewTest, StackedLocate) {
  Pdt read(10);
  ASSERT_TRUE(read.DeleteStable(0).ok());
  Pdt write(10);
  ASSERT_TRUE(write.InsertAt(2, Row(9)).ok());  // note: write's own rid space
  TableView view;
  view.layers = {&read, &write};
  // Visible: stable 1, stable 2 (insert anchored at 2 comes first)…
  auto l0 = view.Locate(0);
  ASSERT_TRUE(l0.ok());
  EXPECT_EQ(l0->layer, -1);
  EXPECT_EQ(l0->loc.sid, 1);
  auto l1 = view.Locate(1);
  ASSERT_TRUE(l1.ok());
  EXPECT_TRUE(l1->loc.is_insert);
  EXPECT_EQ(l1->layer, 1);
}

// ---------------------------------------------------------------------------
// Transactions over a real stored table
// ---------------------------------------------------------------------------

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableBuilder b("t",
                   Schema({Field("k", TypeId::kI64), Field("v", TypeId::kStr)}),
                   Layout::kDsm, &disk_, 64);
    for (int i = 0; i < 200; i++) {
      ASSERT_TRUE(
          b.AppendRow({Value::I64(i), Value::Str("v" + std::to_string(i))})
              .ok());
    }
    auto t = b.Finish();
    ASSERT_TRUE(t.ok());
    table_ = std::make_unique<UpdatableTable>(std::move(t).value());
    buffers_ = std::make_unique<BufferManager>(&disk_, 64 << 20);
  }

  Result<std::vector<Value>> ReadCommitted(int64_t rid) {
    TableView v = table_->View();
    auto pdt = table_->SnapshotPdt();  // keep alive
    TableReader reader(table_->base(), buffers_.get());
    return v.ReadRow(rid, &reader);
  }

  SimulatedDisk disk_;
  std::unique_ptr<UpdatableTable> table_;
  std::unique_ptr<BufferManager> buffers_;
  TransactionManager tm_;
};

TEST_F(TxnTest, CommitMakesChangesVisible) {
  auto txn = tm_.Begin(table_.get());
  ASSERT_TRUE(txn->Update(10, 1, Value::Str("patched")).ok());
  ASSERT_TRUE(txn->Delete(0).ok());
  ASSERT_TRUE(txn->Append({Value::I64(1000), Value::Str("new")}).ok());
  ASSERT_TRUE(tm_.Commit(txn.get()).ok());

  EXPECT_EQ(table_->visible_rows(), 200);  // -1 delete +1 append
  // Row 0 deleted -> old row 1 is now rid 0.
  auto r0 = ReadCommitted(0);
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ((*r0)[0].AsI64(), 1);
  // The update ran before the delete, so it targeted stable sid 10 — which
  // sits at rid 9 once sid 0 is gone.
  auto r9 = ReadCommitted(9);
  ASSERT_TRUE(r9.ok());
  EXPECT_EQ((*r9)[1].AsStr(), "patched");
  auto r10 = ReadCommitted(10);
  ASSERT_TRUE(r10.ok());
  EXPECT_EQ((*r10)[1].AsStr(), "v11");
  auto last = ReadCommitted(199);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ((*last)[0].AsI64(), 1000);
}

TEST_F(TxnTest, SnapshotIsolation) {
  auto reader_txn = tm_.Begin(table_.get());
  auto writer_txn = tm_.Begin(table_.get());
  ASSERT_TRUE(writer_txn->Update(5, 1, Value::Str("w")).ok());
  ASSERT_TRUE(tm_.Commit(writer_txn.get()).ok());
  // The reader's snapshot predates the commit.
  TableView v = reader_txn->View();
  TableReader reader(table_->base(), buffers_.get());
  auto row = v.ReadRow(5, &reader);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsStr(), "v5");
}

TEST_F(TxnTest, WriteWriteConflictDetected) {
  auto t1 = tm_.Begin(table_.get());
  auto t2 = tm_.Begin(table_.get());
  ASSERT_TRUE(t1->Update(7, 1, Value::Str("a")).ok());
  ASSERT_TRUE(t2->Update(7, 1, Value::Str("b")).ok());
  ASSERT_TRUE(tm_.Commit(t1.get()).ok());
  EXPECT_EQ(tm_.Commit(t2.get()).code(), StatusCode::kTxnConflict);
}

TEST_F(TxnTest, DisjointWritesBothCommit) {
  auto t1 = tm_.Begin(table_.get());
  auto t2 = tm_.Begin(table_.get());
  ASSERT_TRUE(t1->Update(7, 1, Value::Str("a")).ok());
  ASSERT_TRUE(t2->Update(8, 1, Value::Str("b")).ok());
  ASSERT_TRUE(tm_.Commit(t1.get()).ok());
  ASSERT_TRUE(tm_.Commit(t2.get()).ok());
  auto r7 = ReadCommitted(7);
  auto r8 = ReadCommitted(8);
  EXPECT_EQ((*r7)[1].AsStr(), "a");
  EXPECT_EQ((*r8)[1].AsStr(), "b");
}

TEST_F(TxnTest, InsertsNeverConflict) {
  auto t1 = tm_.Begin(table_.get());
  auto t2 = tm_.Begin(table_.get());
  ASSERT_TRUE(t1->Append({Value::I64(500), Value::Str("x")}).ok());
  ASSERT_TRUE(t2->Append({Value::I64(501), Value::Str("y")}).ok());
  ASSERT_TRUE(tm_.Commit(t1.get()).ok());
  ASSERT_TRUE(tm_.Commit(t2.get()).ok());
  EXPECT_EQ(table_->visible_rows(), 202);
}

TEST_F(TxnTest, AbortDiscardsChanges) {
  auto txn = tm_.Begin(table_.get());
  ASSERT_TRUE(txn->Delete(0).ok());
  tm_.Abort(txn.get());
  EXPECT_EQ(tm_.Commit(txn.get()).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(table_->visible_rows(), 200);
}

TEST_F(TxnTest, TxnDeletesCommittedInsert) {
  auto t1 = tm_.Begin(table_.get());
  ASSERT_TRUE(t1->Append({Value::I64(999), Value::Str("temp")}).ok());
  ASSERT_TRUE(tm_.Commit(t1.get()).ok());
  ASSERT_EQ(table_->visible_rows(), 201);
  auto t2 = tm_.Begin(table_.get());
  ASSERT_TRUE(t2->Delete(200).ok());  // the committed insert
  ASSERT_TRUE(tm_.Commit(t2.get()).ok());
  EXPECT_EQ(table_->visible_rows(), 200);
}

TEST_F(TxnTest, CheckpointRewritesBaseAndEmptiesPdt) {
  auto txn = tm_.Begin(table_.get());
  ASSERT_TRUE(txn->Delete(0).ok());
  ASSERT_TRUE(txn->Update(10, 1, Value::Str("ckpt")).ok());
  ASSERT_TRUE(txn->Append({Value::I64(777), Value::Str("tail")}).ok());
  ASSERT_TRUE(tm_.Commit(txn.get()).ok());

  const int64_t rows_before = table_->visible_rows();
  ASSERT_TRUE(tm_.Checkpoint(table_.get(), buffers_.get()).ok());
  EXPECT_EQ(table_->visible_rows(), rows_before);
  EXPECT_TRUE(table_->read_pdt()->empty());
  EXPECT_EQ(table_->base()->num_rows(), rows_before);

  // Content preserved post-rewrite.
  auto r0 = ReadCommitted(0);
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ((*r0)[0].AsI64(), 1);
  auto r10 = ReadCommitted(10);
  EXPECT_EQ((*r10)[1].AsStr(), "ckpt");
  auto tail = ReadCommitted(rows_before - 1);
  EXPECT_EQ((*tail)[0].AsI64(), 777);
}

TEST_F(TxnTest, CheckpointDefersRetiredBlockFreesToCaller) {
  auto txn = tm_.Begin(table_.get());
  ASSERT_TRUE(txn->Update(0, 1, Value::Str("dirty")).ok());
  ASSERT_TRUE(tm_.Commit(txn.get()).ok());

  std::vector<BlockId> retired;
  ASSERT_TRUE(tm_.Checkpoint(table_.get(), buffers_.get(), &retired).ok());
  ASSERT_FALSE(retired.empty());
  // Cached copies are dropped immediately, but the device slots must stay
  // allocated until the caller has persisted the new block map — freeing
  // them earlier would let a recycled slot shadow a block the durable
  // catalog still references.
  EXPECT_EQ(disk_.bytes_freed(), 0);
  for (BlockId id : retired) {
    EXPECT_FALSE(buffers_->Contains(id));
    disk_.FreeBlock(id);
  }
  EXPECT_GT(disk_.bytes_freed(), 0);
}

TEST_F(TxnTest, CheckpointWithoutRetiredOutFreesImmediately) {
  auto txn = tm_.Begin(table_.get());
  ASSERT_TRUE(txn->Update(0, 1, Value::Str("dirty")).ok());
  ASSERT_TRUE(tm_.Commit(txn.get()).ok());
  ASSERT_TRUE(tm_.Checkpoint(table_.get(), buffers_.get()).ok());
  // No durable catalog to protect: the legacy path frees on the spot.
  EXPECT_GT(disk_.bytes_freed(), 0);
}

// ---------------------------------------------------------------------------
// Randomized property test: PDT stack vs naive model over a stored table
// ---------------------------------------------------------------------------

TEST(PdtPropertyTest, RandomOpsMatchNaiveModel) {
  SimulatedDisk disk;
  TableBuilder b("t", Schema({Field("x", TypeId::kI64)}), Layout::kDsm,
                 &disk, 32);
  std::vector<int64_t> model;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(b.AppendRow({Value::I64(i)}).ok());
    model.push_back(i);
  }
  auto t = b.Finish();
  ASSERT_TRUE(t.ok());
  UpdatableTable table(std::move(t).value());
  BufferManager buffers(&disk, 64 << 20);
  TransactionManager tm;

  Rng rng(77);
  int64_t next = 10000;
  for (int round = 0; round < 20; round++) {
    auto txn = tm.Begin(&table);
    for (int op = 0; op < 10; op++) {
      const int64_t n = static_cast<int64_t>(model.size());
      const double dice = rng.NextDouble();
      if (dice < 0.4 || n == 0) {
        const int64_t rid = rng.Uniform(0, n);
        ASSERT_TRUE(txn->Insert(rid, {Value::I64(next)}).ok());
        model.insert(model.begin() + rid, next++);
      } else if (dice < 0.7) {
        const int64_t rid = rng.Uniform(0, n - 1);
        ASSERT_TRUE(txn->Delete(rid).ok());
        model.erase(model.begin() + rid);
      } else {
        const int64_t rid = rng.Uniform(0, n - 1);
        ASSERT_TRUE(txn->Update(rid, 0, Value::I64(next)).ok());
        model[rid] = next++;
      }
    }
    ASSERT_TRUE(tm.Commit(txn.get()).ok());
    ASSERT_EQ(table.visible_rows(), static_cast<int64_t>(model.size()));
  }
  // Full image comparison.
  TableView view = table.View();
  auto keep = table.SnapshotPdt();
  TableReader reader(table.base(), &buffers);
  for (int64_t rid = 0; rid < view.visible_rows(); rid++) {
    auto row = view.ReadRow(rid, &reader);
    ASSERT_TRUE(row.ok()) << rid;
    ASSERT_EQ((*row)[0].AsI64(), model[rid]) << "rid " << rid;
  }
}

}  // namespace
}  // namespace x100
