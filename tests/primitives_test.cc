// Tests for the primitive kernels and the registry: signatures, map/select
// semantics, NULL-oblivious execution, overflow "special algorithms",
// string and date functions.
#include <gtest/gtest.h>

#include <limits>

#include "primitives/checked_kernels.h"
#include "primitives/kernel_templates.h"
#include "primitives/primitive_registry.h"

namespace x100 {
namespace {

class PrimitivesTest : public ::testing::Test {
 protected:
  void SetUp() override { EnsureKernelsRegistered(); }
  PrimitiveRegistry* reg() { return PrimitiveRegistry::Get(); }
};

TEST_F(PrimitivesTest, SignatureFormat) {
  EXPECT_EQ(BuildSignature("map", "add",
                           {{TypeId::kI32, false}, {TypeId::kI32, true}}),
            "map_add_i32_vec_i32_val");
  EXPECT_EQ(BuildSignature("select", "lt", {{TypeId::kF64, false},
                                            {TypeId::kF64, true}}),
            "select_lt_f64_vec_f64_val");
}

TEST_F(PrimitivesTest, RegistryIsPopulated) {
  // The paper: "dozens of new functions added to the system".
  EXPECT_GT(reg()->num_map_primitives(), 150);
  EXPECT_GT(reg()->num_select_primitives(), 100);
}

TEST_F(PrimitivesTest, MapAddVecVec) {
  auto e = reg()->FindMap("map", "add",
                          {{TypeId::kI64, false}, {TypeId::kI64, false}});
  ASSERT_NE(e.fn, nullptr);
  EXPECT_EQ(e.out_type, TypeId::kI64);
  int64_t a[4] = {1, 2, 3, 4}, b[4] = {10, 20, 30, 40}, out[4];
  const void* args[2] = {a, b};
  ASSERT_TRUE(e.fn(4, nullptr, args, out, nullptr).ok());
  EXPECT_EQ(out[0], 11);
  EXPECT_EQ(out[3], 44);
}

TEST_F(PrimitivesTest, MapAddVecVal) {
  auto e = reg()->FindMap("map", "add",
                          {{TypeId::kI32, false}, {TypeId::kI32, true}});
  ASSERT_NE(e.fn, nullptr);
  int32_t a[3] = {1, 2, 3}, c = 100, out[3];
  const void* args[2] = {a, &c};
  ASSERT_TRUE(e.fn(3, nullptr, args, out, nullptr).ok());
  EXPECT_EQ(out[2], 103);
}

TEST_F(PrimitivesTest, MapRespectsSelectionSparseWrites) {
  auto e = reg()->FindMap("map", "mul",
                          {{TypeId::kI64, false}, {TypeId::kI64, true}});
  ASSERT_NE(e.fn, nullptr);
  int64_t a[5] = {1, 2, 3, 4, 5}, c = 2;
  int64_t out[5] = {-1, -1, -1, -1, -1};
  sel_t sel[2] = {1, 3};
  const void* args[2] = {a, &c};
  ASSERT_TRUE(e.fn(2, sel, args, out, nullptr).ok());
  EXPECT_EQ(out[1], 4);
  EXPECT_EQ(out[3], 8);
  EXPECT_EQ(out[0], -1);  // untouched outside the selection
  EXPECT_EQ(out[4], -1);
}

TEST_F(PrimitivesTest, DefaultIntAddIsOverflowChecked) {
  auto e = reg()->FindMap("map", "add",
                          {{TypeId::kI32, false}, {TypeId::kI32, false}});
  ASSERT_NE(e.fn, nullptr);
  int32_t a[2] = {std::numeric_limits<int32_t>::max(), 1};
  int32_t b[2] = {1, 1};
  int32_t out[2];
  const void* args[2] = {a, b};
  Status s = e.fn(2, nullptr, args, out, nullptr);
  EXPECT_TRUE(s.IsOverflow());
  EXPECT_NE(s.message().find("row 0"), std::string::npos);
}

TEST_F(PrimitivesTest, CheckedDivDetectsZero) {
  auto e = reg()->FindMap("map", "div",
                          {{TypeId::kI64, false}, {TypeId::kI64, false}});
  ASSERT_NE(e.fn, nullptr);
  int64_t a[3] = {10, 20, 30}, b[3] = {2, 0, 3}, out[3];
  const void* args[2] = {a, b};
  Status s = e.fn(3, nullptr, args, out, nullptr);
  EXPECT_TRUE(s.IsDivisionByZero());
  b[1] = 5;
  ASSERT_TRUE(e.fn(3, nullptr, args, out, nullptr).ok());
  EXPECT_EQ(out[0], 5);
  EXPECT_EQ(out[1], 4);
  EXPECT_EQ(out[2], 10);
}

TEST_F(PrimitivesTest, CheckedDivDetectsIntMinOverflow) {
  auto e = reg()->FindMap("map", "div",
                          {{TypeId::kI32, false}, {TypeId::kI32, false}});
  int32_t a[1] = {std::numeric_limits<int32_t>::min()}, b[1] = {-1}, out[1];
  const void* args[2] = {a, b};
  EXPECT_TRUE(e.fn(1, nullptr, args, out, nullptr).IsOverflow());
}

TEST_F(PrimitivesTest, F64DivByZeroIsError) {
  auto e = reg()->FindMap("map", "div",
                          {{TypeId::kF64, false}, {TypeId::kF64, true}});
  ASSERT_NE(e.fn, nullptr);
  double a[2] = {1.0, 2.0}, c = 0.0, out[2];
  const void* args[2] = {a, &c};
  EXPECT_TRUE(e.fn(2, nullptr, args, out, nullptr).IsDivisionByZero());
}

TEST_F(PrimitivesTest, ModuloSemantics) {
  auto e = reg()->FindMap("map", "mod",
                          {{TypeId::kI64, false}, {TypeId::kI64, true}});
  ASSERT_NE(e.fn, nullptr);
  int64_t a[3] = {7, -7, 6}, c = 3, out[3];
  const void* args[2] = {a, &c};
  ASSERT_TRUE(e.fn(3, nullptr, args, out, nullptr).ok());
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], -1);
  EXPECT_EQ(out[2], 0);
}

TEST_F(PrimitivesTest, CompareProducesBool) {
  auto e = reg()->FindMap("map", "lt",
                          {{TypeId::kF64, false}, {TypeId::kF64, true}});
  ASSERT_NE(e.fn, nullptr);
  EXPECT_EQ(e.out_type, TypeId::kBool);
  double a[4] = {1.0, 5.0, 2.0, 9.0}, c = 3.0;
  uint8_t out[4];
  const void* args[2] = {a, &c};
  ASSERT_TRUE(e.fn(4, nullptr, args, out, nullptr).ok());
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 1);
  EXPECT_EQ(out[3], 0);
}

TEST_F(PrimitivesTest, StringCompare) {
  auto e = reg()->FindMap("map", "eq",
                          {{TypeId::kStr, false}, {TypeId::kStr, true}});
  ASSERT_NE(e.fn, nullptr);
  StrRef a[2] = {StrRef("BUILDING", 8), StrRef("MACHINERY", 9)};
  StrRef c("BUILDING", 8);
  uint8_t out[2];
  const void* args[2] = {a, &c};
  ASSERT_TRUE(e.fn(2, nullptr, args, out, nullptr).ok());
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 0);
}

TEST_F(PrimitivesTest, SelectLtEmitsSelectionVector) {
  auto fn = reg()->FindSelect("lt", {{TypeId::kI32, false},
                                     {TypeId::kI32, true}});
  ASSERT_NE(fn, nullptr);
  int32_t a[6] = {5, 1, 7, 2, 9, 0}, c = 4;
  sel_t out[6];
  const void* args[2] = {a, &c};
  int k = fn(6, nullptr, args, out);
  ASSERT_EQ(k, 3);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 3);
  EXPECT_EQ(out[2], 5);
}

TEST_F(PrimitivesTest, SelectChainsThroughExistingSelection) {
  auto fn = reg()->FindSelect("gt", {{TypeId::kI32, false},
                                     {TypeId::kI32, true}});
  int32_t a[6] = {5, 1, 7, 2, 9, 0}, c = 4;
  sel_t in[3] = {0, 2, 5};  // pre-selected rows
  sel_t out[3];
  const void* args[2] = {a, &c};
  int k = fn(3, in, args, out);
  ASSERT_EQ(k, 2);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 2);
}

TEST_F(PrimitivesTest, SelectTrueOnBoolColumn) {
  auto fn = reg()->FindSelect("true", {{TypeId::kBool, false}});
  ASSERT_NE(fn, nullptr);
  uint8_t b[5] = {1, 0, 1, 1, 0};
  sel_t out[5];
  const void* args[1] = {b};
  int k = fn(5, nullptr, args, out);
  ASSERT_EQ(k, 3);
  EXPECT_EQ(out[2], 3);
}

TEST_F(PrimitivesTest, IfThenElse) {
  auto e = reg()->FindMap(
      "map", "ifthenelse",
      {{TypeId::kBool, false}, {TypeId::kI64, false}, {TypeId::kI64, true}});
  ASSERT_NE(e.fn, nullptr);
  uint8_t cond[3] = {1, 0, 1};
  int64_t a[3] = {10, 20, 30}, c = -1, out[3];
  const void* args[3] = {cond, a, &c};
  ASSERT_TRUE(e.fn(3, nullptr, args, out, nullptr).ok());
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], -1);
  EXPECT_EQ(out[2], 30);
}

TEST_F(PrimitivesTest, CastI32ToF64) {
  auto e = reg()->FindMap("map", "cast_f64", {{TypeId::kI32, false}});
  ASSERT_NE(e.fn, nullptr);
  int32_t a[2] = {3, -7};
  double out[2];
  const void* args[1] = {a};
  ASSERT_TRUE(e.fn(2, nullptr, args, out, nullptr).ok());
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], -7.0);
}

// ---- string kernels ---------------------------------------------------------

class StringKernelTest : public PrimitivesTest {
 protected:
  StringHeap heap_;
  PrimCtx ctx_{&heap_};
};

TEST_F(StringKernelTest, UpperLower) {
  auto up = reg()->FindMap("map", "upper", {{TypeId::kStr, false}});
  auto lo = reg()->FindMap("map", "lower", {{TypeId::kStr, false}});
  ASSERT_NE(up.fn, nullptr);
  ASSERT_NE(lo.fn, nullptr);
  StrRef a[2] = {StrRef("MiXeD", 5), StrRef("abc", 3)};
  StrRef out[2];
  const void* args[1] = {a};
  ASSERT_TRUE(up.fn(2, nullptr, args, out, &ctx_).ok());
  EXPECT_EQ(out[0].ToString(), "MIXED");
  ASSERT_TRUE(lo.fn(2, nullptr, args, out, &ctx_).ok());
  EXPECT_EQ(out[0].ToString(), "mixed");
  EXPECT_EQ(out[1].ToString(), "abc");
}

TEST_F(StringKernelTest, LengthAndSubstr) {
  auto len = reg()->FindMap("map", "length", {{TypeId::kStr, false}});
  StrRef a[1] = {StrRef("hello world", 11)};
  int32_t lout[1];
  const void* args1[1] = {a};
  ASSERT_TRUE(len.fn(1, nullptr, args1, lout, &ctx_).ok());
  EXPECT_EQ(lout[0], 11);

  auto sub = reg()->FindMap(
      "map", "substring",
      {{TypeId::kStr, false}, {TypeId::kI32, true}, {TypeId::kI32, true}});
  ASSERT_NE(sub.fn, nullptr);
  int32_t start = 7, count = 5;
  StrRef sout[1];
  const void* args3[3] = {a, &start, &count};
  ASSERT_TRUE(sub.fn(1, nullptr, args3, sout, &ctx_).ok());
  EXPECT_EQ(sout[0].ToString(), "world");
}

TEST_F(StringKernelTest, SubstrEdgeCases) {
  auto sub = reg()->FindMap(
      "map", "substring",
      {{TypeId::kStr, false}, {TypeId::kI32, true}, {TypeId::kI32, true}});
  StrRef a[1] = {StrRef("abc", 3)};
  StrRef out[1];
  // Start before 1 consumes length (SQL semantics).
  int32_t start = -1, count = 4;
  const void* args[3] = {a, &start, &count};
  ASSERT_TRUE(sub.fn(1, nullptr, args, out, &ctx_).ok());
  EXPECT_EQ(out[0].ToString(), "ab");
  // Past the end -> empty.
  start = 10;
  count = 2;
  ASSERT_TRUE(sub.fn(1, nullptr, args, out, &ctx_).ok());
  EXPECT_EQ(out[0].ToString(), "");
  // Negative length is a detected parameter error (paper §Error handling).
  start = 1;
  count = -2;
  EXPECT_EQ(sub.fn(1, nullptr, args, out, &ctx_).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(StringKernelTest, ConcatTrimReverseRepeat) {
  auto cat = reg()->FindMap("map", "concat",
                            {{TypeId::kStr, false}, {TypeId::kStr, true}});
  StrRef a[1] = {StrRef("foo", 3)};
  StrRef suffix("bar", 3);
  StrRef out[1];
  const void* args[2] = {a, &suffix};
  ASSERT_TRUE(cat.fn(1, nullptr, args, out, &ctx_).ok());
  EXPECT_EQ(out[0].ToString(), "foobar");

  auto trim = reg()->FindMap("map", "trim", {{TypeId::kStr, false}});
  StrRef t[1] = {StrRef("  pad  ", 7)};
  const void* targs[1] = {t};
  ASSERT_TRUE(trim.fn(1, nullptr, targs, out, &ctx_).ok());
  EXPECT_EQ(out[0].ToString(), "pad");

  auto rev = reg()->FindMap("map", "reverse", {{TypeId::kStr, false}});
  ASSERT_TRUE(rev.fn(1, nullptr, args, out, &ctx_).ok());
  EXPECT_EQ(out[0].ToString(), "oof");

  auto rep = reg()->FindMap("map", "repeat",
                            {{TypeId::kStr, false}, {TypeId::kI32, true}});
  int32_t k = 3;
  const void* rargs[2] = {a, &k};
  ASSERT_TRUE(rep.fn(1, nullptr, rargs, out, &ctx_).ok());
  EXPECT_EQ(out[0].ToString(), "foofoofoo");
  k = -1;
  EXPECT_EQ(rep.fn(1, nullptr, rargs, out, &ctx_).code(),
            StatusCode::kInvalidArgument);
}

struct LikeCase {
  const char* input;
  const char* pattern;
  bool expect;
};

class LikeTest : public PrimitivesTest,
                 public ::testing::WithParamInterface<LikeCase> {};

TEST_P(LikeTest, Matches) {
  const LikeCase& c = GetParam();
  auto e = reg()->FindMap("map", "like",
                          {{TypeId::kStr, false}, {TypeId::kStr, true}});
  ASSERT_NE(e.fn, nullptr);
  StrRef a[1] = {StrRef(c.input, static_cast<uint32_t>(strlen(c.input)))};
  StrRef pat(c.pattern, static_cast<uint32_t>(strlen(c.pattern)));
  uint8_t out[1];
  const void* args[2] = {a, &pat};
  ASSERT_TRUE(e.fn(1, nullptr, args, out, nullptr).ok());
  EXPECT_EQ(out[0], c.expect ? 1 : 0) << c.input << " LIKE " << c.pattern;
}

INSTANTIATE_TEST_SUITE_P(
    LikePatterns, LikeTest,
    ::testing::Values(
        LikeCase{"hello", "hello", true}, LikeCase{"hello", "h%", true},
        LikeCase{"hello", "%o", true}, LikeCase{"hello", "%ell%", true},
        LikeCase{"hello", "h_llo", true}, LikeCase{"hello", "h__lo", true},
        LikeCase{"hello", "", false}, LikeCase{"", "%", true},
        LikeCase{"", "", true}, LikeCase{"abc", "a%b%c", true},
        LikeCase{"abc", "%%%", true}, LikeCase{"abc", "_", false},
        LikeCase{"abc", "___", true}, LikeCase{"abc", "____", false},
        LikeCase{"special%rate", "%\x25rate", true},
        LikeCase{"PROMO BRUSHED", "PROMO%", true},
        LikeCase{"STANDARD BRUSHED", "PROMO%", false},
        LikeCase{"aXaXb", "a%b", true}, LikeCase{"aXaXc", "a%b", false}));

// ---- date kernels -----------------------------------------------------------

TEST_F(PrimitivesTest, DateExtraction) {
  auto yr = reg()->FindMap("map", "year", {{TypeId::kDate, false}});
  auto mo = reg()->FindMap("map", "month", {{TypeId::kDate, false}});
  auto qu = reg()->FindMap("map", "quarter", {{TypeId::kDate, false}});
  ASSERT_NE(yr.fn, nullptr);
  int32_t d[2] = {MakeDate(1997, 11, 3), MakeDate(2001, 2, 14)};
  int32_t out[2];
  const void* args[1] = {d};
  ASSERT_TRUE(yr.fn(2, nullptr, args, out, nullptr).ok());
  EXPECT_EQ(out[0], 1997);
  EXPECT_EQ(out[1], 2001);
  ASSERT_TRUE(mo.fn(2, nullptr, args, out, nullptr).ok());
  EXPECT_EQ(out[0], 11);
  EXPECT_EQ(out[1], 2);
  ASSERT_TRUE(qu.fn(2, nullptr, args, out, nullptr).ok());
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[1], 1);
}

TEST_F(PrimitivesTest, DayOfWeekKnownAnchors) {
  auto dw = reg()->FindMap("map", "dayofweek", {{TypeId::kDate, false}});
  int32_t d[3] = {MakeDate(1970, 1, 1),   // Thursday
                  MakeDate(2000, 1, 1),   // Saturday
                  MakeDate(2026, 6, 8)};  // Monday
  int32_t out[3];
  const void* args[1] = {d};
  ASSERT_TRUE(dw.fn(3, nullptr, args, out, nullptr).ok());
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[1], 6);
  EXPECT_EQ(out[2], 1);
}

TEST_F(PrimitivesTest, MakeDateValidation) {
  auto md = reg()->FindMap(
      "map", "make_date",
      {{TypeId::kI32, false}, {TypeId::kI32, false}, {TypeId::kI32, false}});
  ASSERT_NE(md.fn, nullptr);
  int32_t y[1] = {1999}, m[1] = {13}, d[1] = {1}, out[1];
  const void* args[3] = {y, m, d};
  EXPECT_EQ(md.fn(1, nullptr, args, out, nullptr).code(),
            StatusCode::kInvalidArgument);
  m[0] = 12;
  ASSERT_TRUE(md.fn(1, nullptr, args, out, nullptr).ok());
  EXPECT_EQ(out[0], MakeDate(1999, 12, 1));
}

// ---- the E7 "special algorithm" contract ------------------------------------

TEST(CheckedKernelsTest, KernelMatchesNaiveOnCleanData) {
  constexpr int n = 1000;
  std::vector<int32_t> a(n), b(n), o1(n), o2(n);
  for (int i = 0; i < n; i++) {
    a[i] = i * 3 - 100;
    b[i] = 7 - i;
  }
  ASSERT_TRUE((checked::BinaryCheckedNaive<int32_t, checked::CheckedAdd>(
                   n, a.data(), b.data(), o1.data()))
                  .ok());
  ASSERT_TRUE((checked::BinaryCheckedKernel<int32_t, checked::CheckedAdd>(
                   n, a.data(), b.data(), o2.data()))
                  .ok());
  EXPECT_EQ(o1, o2);
}

TEST(CheckedKernelsTest, KernelReportsSameRowAsNaive) {
  constexpr int n = 64;
  std::vector<int64_t> a(n, 1), b(n, 1), out(n);
  a[37] = std::numeric_limits<int64_t>::max();
  Status s1 = checked::BinaryCheckedNaive<int64_t, checked::CheckedAdd>(
      n, a.data(), b.data(), out.data());
  Status s2 = checked::BinaryCheckedKernel<int64_t, checked::CheckedAdd>(
      n, a.data(), b.data(), out.data());
  EXPECT_TRUE(s1.IsOverflow());
  EXPECT_TRUE(s2.IsOverflow());
  EXPECT_EQ(s1.message(), s2.message());
}

TEST(CheckedKernelsTest, MulOverflowDetected) {
  std::vector<int32_t> a = {1 << 20, 2}, b = {1 << 20, 3}, out(2);
  Status s = checked::BinaryCheckedKernel<int32_t, checked::CheckedMul>(
      2, a.data(), b.data(), out.data());
  EXPECT_TRUE(s.IsOverflow());
}

TEST(CheckedKernelsTest, DivKernelCleanPath) {
  std::vector<int64_t> a = {100, 200, -300}, b = {10, -20, 30}, out(3);
  ASSERT_TRUE(checked::DivCheckedKernel<int64_t>(3, a.data(), b.data(),
                                                 out.data())
                  .ok());
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], -10);
  EXPECT_EQ(out[2], -10);
}

}  // namespace
}  // namespace x100
