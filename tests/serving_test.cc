// Concurrent serving layer — multi-session stress & race suite (ISSUE 7).
//
// Hammers the serving surface end to end: prepared statements against the
// sharded plan cache (hit/miss/invalidation counters, DDL staleness),
// async submission (PendingQuery wait/cancel for queued AND mid-flight
// queries, admission backpressure), the adaptive task-quota controller
// (share split/rejoin, pressure shrink, fat-query starvation), the wire
// monitoring endpoint under load, and an out-of-core variant where
// concurrent spilling queries must stay correct and drain the memory
// tracker to zero. The stress tests run 16+ concurrent sessions
// (X100_SERVING_SESSIONS overrides, CI sweeps it under TSan) and assert
// every result BIT-identical to a serial reference — the fixture data
// uses exact binary fractions, so parallel merge order cannot perturb
// sums.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/adaptive_quota.h"
#include "engine/plan_cache.h"
#include "engine/session.h"
#include "monitor/wire.h"

namespace x100 {
namespace {

int ServingSessions() {
  // CI stress sweep knob; defaults to the acceptance floor.
  const char* env = std::getenv("X100_SERVING_SESSIONS");
  if (env == nullptr || *env == '\0') return 16;
  const int v = std::atoi(env);
  return v >= 1 ? v : 16;
}

class ServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    // emp: 1000 rows; salary/bonus are exact binary fractions so every
    // aggregation result is exact in f64 regardless of summation order.
    auto b = db_->CreateTable(
        "emp",
        Schema({Field("id", TypeId::kI64), Field("dept", TypeId::kStr),
                Field("salary", TypeId::kF64),
                Field("bonus", TypeId::kF64, /*nullable=*/true)}),
        Layout::kDsm, 128);
    const char* depts[] = {"eng", "sales", "ops"};
    for (int i = 0; i < 1000; i++) {
      ASSERT_TRUE(b->AppendRow({Value::I64(i), Value::Str(depts[i % 3]),
                                Value::F64(1000.0 + i),
                                i % 4 == 0 ? Value::Null(TypeId::kF64)
                                           : Value::F64(i * 0.5)})
                      .ok());
    }
    auto t = b->Finish();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(db_->RegisterTable(std::move(t).value()).ok());
    session_ = std::make_unique<Session>(db_.get());
  }

  /// Registers dim(k, label) with `rows` rows, k = 0..rows-1.
  void RegisterDim(const std::string& name, int rows) {
    auto b = db_->CreateTable(
        name, Schema({Field("k", TypeId::kI64), Field("label", TypeId::kStr)}),
        Layout::kDsm, 256);
    for (int i = 0; i < rows; i++) {
      ASSERT_TRUE(
          b->AppendRow({Value::I64(i), Value::Str("d" + std::to_string(i % 7))})
              .ok());
    }
    auto t = b->Finish();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(db_->RegisterTable(std::move(t).value()).ok());
  }

  /// Registers fact(fk, val) with `rows` rows, fk = i % mod, val = i (i64:
  /// SUMs are exact).
  void RegisterFact(const std::string& name, int rows, int mod) {
    auto b = db_->CreateTable(
        name, Schema({Field("fk", TypeId::kI64), Field("val", TypeId::kI64)}),
        Layout::kDsm, 256);
    for (int i = 0; i < rows; i++) {
      ASSERT_TRUE(b->AppendRow({Value::I64(i % mod), Value::I64(i)}).ok());
    }
    auto t = b->Finish();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(db_->RegisterTable(std::move(t).value()).ok());
  }

  static void ExpectSameRows(const QueryResult& a, const QueryResult& b,
                             const std::string& what) {
    ASSERT_EQ(a.rows.size(), b.rows.size()) << what;
    for (size_t i = 0; i < a.rows.size(); i++) {
      for (size_t c = 0; c < a.rows[i].size(); c++) {
        EXPECT_TRUE(a.rows[i][c].SqlEquals(b.rows[i][c]))
            << what << " row " << i << " col " << c;
      }
    }
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> session_;
};

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

TEST(PlanCacheTest, LruEvictionAndCounters) {
  PlanCache cache(8);  // 8 across 8 shards -> capacity 1 per shard
  auto make = [](const std::string& sql) {
    auto p = std::make_shared<PreparedPlan>();
    p->sql = sql;
    p->catalog_version = 1;
    return std::shared_ptr<const PreparedPlan>(std::move(p));
  };
  EXPECT_EQ(cache.Lookup("q1", 1), nullptr);
  EXPECT_EQ(cache.misses(), 1);
  cache.Insert(make("q1"));
  EXPECT_NE(cache.Lookup("q1", 1), nullptr);
  EXPECT_EQ(cache.hits(), 1);
  // A stale catalog version invalidates on sight.
  EXPECT_EQ(cache.Lookup("q1", 2), nullptr);
  EXPECT_EQ(cache.invalidations(), 1);
  EXPECT_EQ(cache.Lookup("q1", 2), nullptr);  // really gone
  EXPECT_EQ(cache.size(), 0);
  // Filling far past capacity evicts per-shard LRU entries.
  for (int i = 0; i < 64; i++) cache.Insert(make("q" + std::to_string(i)));
  EXPECT_LE(cache.size(), 8);
  EXPECT_GT(cache.evictions(), 0);
}

TEST(PlanCacheTest, ZeroCapacityDisablesCaching) {
  PlanCache cache(0);
  auto p = std::make_shared<PreparedPlan>();
  p->sql = "q";
  p->catalog_version = 1;
  cache.Insert(std::shared_ptr<const PreparedPlan>(std::move(p)));
  EXPECT_EQ(cache.Lookup("q", 1), nullptr);
  EXPECT_EQ(cache.size(), 0);
}

TEST_F(ServingTest, PreparedMatchesAdhocAndHitsCache) {
  const std::string sql =
      "SELECT dept, SUM(salary) AS s, COUNT(*) AS c FROM emp "
      "GROUP BY dept ORDER BY dept";
  auto reference = session_->ExecuteSql(sql);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  auto p1 = session_->Prepare(sql);
  ASSERT_TRUE(p1.ok()) << p1.status().ToString();
  EXPECT_EQ(db_->plan_cache()->misses(), 1);
  auto p2 = session_->Prepare(sql);  // served from cache
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(db_->plan_cache()->hits(), 1);
  EXPECT_EQ(*p1, *p2);  // literally the same shared plan

  for (int i = 0; i < 3; i++) {
    auto res = session_->ExecutePrepared(*p1);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ExpectSameRows(*reference, *res, "prepared run " + std::to_string(i));
  }
}

TEST_F(ServingTest, DdlInvalidatesCachedPlan) {
  const std::string sql = "SELECT COUNT(*) AS n FROM emp WHERE id < 100";
  auto p1 = session_->Prepare(sql);
  ASSERT_TRUE(p1.ok());
  auto r1 = session_->ExecutePrepared(*p1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->rows[0][0].AsI64(), 100);

  // DDL: replace emp with a 50-row table of the same schema.
  const int64_t version_before = db_->catalog_version();
  ASSERT_TRUE(db_->DropTable("emp").ok());
  {
    auto b = db_->CreateTable(
        "emp",
        Schema({Field("id", TypeId::kI64), Field("dept", TypeId::kStr),
                Field("salary", TypeId::kF64),
                Field("bonus", TypeId::kF64, /*nullable=*/true)}),
        Layout::kDsm, 128);
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(b->AppendRow({Value::I64(i), Value::Str("eng"),
                                Value::F64(1.0), Value::F64(2.0)})
                      .ok());
    }
    auto t = b->Finish();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(db_->RegisterTable(std::move(t).value()).ok());
  }
  EXPECT_EQ(db_->catalog_version(), version_before + 2);  // drop + create

  // Preparing again must not serve the stale entry...
  auto p2 = session_->Prepare(sql);
  ASSERT_TRUE(p2.ok());
  EXPECT_GE(db_->plan_cache()->invalidations(), 1);
  // ...and even the STALE handle must re-plan at execution (Revalidate).
  auto r2 = session_->ExecutePrepared(*p1);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->rows[0][0].AsI64(), 50);
  auto pending = session_->Submit(*p1);
  ASSERT_TRUE(pending.ok());
  auto r3 = pending->Wait();
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->rows[0][0].AsI64(), 50);
}

TEST_F(ServingTest, DdlBetweenPrepareAndRunReplansRadixEstimate) {
  // Radix AUTO-sizing reads the build side's scan-spine estimate at
  // physical-plan time. A plan prepared while the build table was tiny
  // (under kTinyBuildRows -> single-table merge) must pick up the NEW
  // estimate when the table is re-created larger: partitioned merge
  // fan-out, not a stale single merge task.
  RegisterDim("growing", 100);
  RegisterFact("bigfact", 2000, 100);
  db_->config().max_parallelism = 4;
  db_->config().scheduler_workers = 4;

  auto join = [] {
    return JoinNode(ScanNode("growing"), ScanNode("bigfact"),
                    JoinType::kInner, {"k"}, {"fk"});
  };
  auto prepared = session_->PreparePlan(join(), "growing-join");
  ASSERT_TRUE(prepared.ok());

  auto count_merges = [](const QueryResult& r) {
    int merges = 0;
    for (const OperatorProfile& p : r.profile.operators) {
      merges += p.op == "JoinBuildMerge";
    }
    return merges;
  };

  auto small = session_->ExecutePrepared(*prepared);
  ASSERT_TRUE(small.ok()) << small.status().ToString();
  EXPECT_EQ(small->rows.size(), 2000u);
  EXPECT_EQ(count_merges(*small), 1);  // est 100 < kTinyBuildRows

  ASSERT_TRUE(db_->DropTable("growing").ok());
  RegisterDim("growing", 2 * kTinyBuildRows);

  auto big = session_->ExecutePrepared(*prepared);
  ASSERT_TRUE(big.ok()) << big.status().ToString();
  EXPECT_EQ(big->rows.size(), 2000u);  // every fk < 100 still matches
  EXPECT_GT(count_merges(*big), 1);  // fresh estimate -> partitioned merge
  db_->config().max_parallelism = 0;
  db_->config().scheduler_workers = 0;
}

// ---------------------------------------------------------------------------
// Async submission
// ---------------------------------------------------------------------------

TEST_F(ServingTest, SubmitRunsAsynchronouslyAndMatchesSync) {
  const std::string sql =
      "SELECT dept, SUM(salary) AS s FROM emp GROUP BY dept ORDER BY dept";
  auto reference = session_->ExecuteSql(sql);
  ASSERT_TRUE(reference.ok());

  auto prepared = session_->Prepare(sql);
  ASSERT_TRUE(prepared.ok());
  std::vector<PendingQuery> pending;
  for (int i = 0; i < 8; i++) {
    auto p = session_->Submit(*prepared);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    pending.push_back(*p);
  }
  for (auto& p : pending) {
    auto res = p.Wait();
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ExpectSameRows(*reference, *res, "async run");
    EXPECT_TRUE(p.done());
  }
  // Every async entry reached a terminal registry state.
  EXPECT_EQ(db_->queries()->Running().size(), 0u);
  EXPECT_EQ(db_->async_inflight(), 0);
  EXPECT_GE(db_->counters()->Get("queries.total"), 9);
}

TEST_F(ServingTest, SubmitSqlAdhocBypassesPlanCache) {
  auto reference = session_->ExecuteSql("SELECT COUNT(*) AS n FROM emp");
  ASSERT_TRUE(reference.ok());
  const int64_t hits_before = db_->plan_cache()->hits();
  auto p = session_->SubmitSql("SELECT COUNT(*) AS n FROM emp");
  ASSERT_TRUE(p.ok());
  auto res = p->Wait();
  ASSERT_TRUE(res.ok());
  ExpectSameRows(*reference, *res, "ad-hoc async");
  EXPECT_EQ(db_->plan_cache()->hits(), hits_before);
  // Parse errors surface synchronously at Submit; semantic errors (the
  // frontend resolves columns at Build) surface at Wait as a failed query.
  EXPECT_FALSE(session_->SubmitSql("SELEC nope FROM emp").ok());
  auto bad = session_->SubmitSql("SELECT nope FROM emp");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->Wait().ok());
}

TEST_F(ServingTest, AdmissionQueueBackpressure) {
  db_->config().scheduler_workers = 1;
  db_->config().admission_queue_cap = 2;
  auto prepared = session_->Prepare("SELECT COUNT(*) AS n FROM emp");
  ASSERT_TRUE(prepared.ok());

  // Block the lone worker so submissions stay queued deterministically.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  db_->scheduler()->Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  auto p1 = session_->Submit(*prepared);
  auto p2 = session_->Submit(*prepared);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  auto p3 = session_->Submit(*prepared);  // over the cap
  ASSERT_FALSE(p3.ok());
  EXPECT_EQ(p3.status().code(), StatusCode::kResourceExhausted);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  ASSERT_TRUE(p1->Wait().ok());
  ASSERT_TRUE(p2->Wait().ok());
  // Slots released: admission works again.
  auto p4 = session_->Submit(*prepared);
  ASSERT_TRUE(p4.ok());
  ASSERT_TRUE(p4->Wait().ok());
  db_->config().scheduler_workers = 0;
  db_->config().admission_queue_cap = 0;
}

TEST_F(ServingTest, CancelQueuedQueryNeverRuns) {
  db_->config().scheduler_workers = 1;
  auto prepared = session_->Prepare("SELECT COUNT(*) AS n FROM emp");
  ASSERT_TRUE(prepared.ok());

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  db_->scheduler()->Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  auto pending = session_->Submit(*prepared);
  ASSERT_TRUE(pending.ok());
  // Still queued (the worker is blocked): registry agrees.
  bool queued = false;
  for (const auto& q : db_->queries()->List()) {
    queued |= q.id == pending->id() && q.state == QueryState::kQueued;
  }
  EXPECT_TRUE(queued);
  pending->Cancel();
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  auto res = pending->Wait();
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsCancelled());
  bool cancelled = false;
  for (const auto& q : db_->queries()->List()) {
    cancelled |= q.id == pending->id() && q.state == QueryState::kCancelled;
  }
  EXPECT_TRUE(cancelled);
  db_->config().scheduler_workers = 0;
}

TEST_F(ServingTest, CancelMidFlightAsyncQuery) {
  // A fat self-join (5000 x 50 matches = 250k output rows, then sorted)
  // runs long enough that cancellation lands mid-execution; the pipeline
  // cancellation machinery must unwind it to kCancelled.
  RegisterFact("fat", 5000, 100);
  AlgebraPtr plan = OrderNode(
      JoinNode(ScanNode("fat", {"fk"}), ScanNode("fat"), JoinType::kInner,
               {"fk"}, {"fk"}),
      {{"val", true}});
  auto prepared = session_->PreparePlan(std::move(plan), "fat-self-join");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  auto pending = session_->Submit(*prepared);
  ASSERT_TRUE(pending.ok());
  // Wait for it to actually start, then cancel.
  for (int spin = 0; spin < 50000 && !pending->done(); spin++) {
    bool running = false;
    for (const auto& q : db_->queries()->Running()) {
      running |= q.id == pending->id();
    }
    if (running) break;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  pending->Cancel();
  auto res = pending->Wait();
  // Overwhelmingly the cancel lands mid-flight (the join materializes
  // 250k rows); accept the rare completed-first race but never an error.
  if (!res.ok()) {
    EXPECT_TRUE(res.status().IsCancelled()) << res.status().ToString();
  }
  EXPECT_EQ(db_->async_inflight(), 0);
}

// ---------------------------------------------------------------------------
// Adaptive quota controller
// ---------------------------------------------------------------------------

TEST(AdaptiveQuotaTest, SharesSplitAndRejoin) {
  TaskScheduler sched(2);
  AdaptiveQuotaController ctl(&sched, 8);
  auto q1 = ctl.Register();
  EXPECT_EQ(ctl.active_queries(), 1);
  EXPECT_EQ(q1->limit(), 8);  // lone query gets the whole budget
  auto q2 = ctl.Register();
  EXPECT_EQ(q1->limit(), 4);
  EXPECT_EQ(q2->limit(), 4);
  auto q3 = ctl.Register();
  EXPECT_EQ(q1->limit(), 2);  // 8/3, floor
  q3.reset();
  EXPECT_EQ(q1->limit(), 4);  // shares grow back on unregister
  q2.reset();
  EXPECT_EQ(q1->limit(), 8);
  // The share never reaches zero however many queries register.
  std::vector<std::shared_ptr<TaskQuota>> crowd;
  for (int i = 0; i < 20; i++) crowd.push_back(ctl.Register());
  EXPECT_EQ(q1->limit(), 1);
  EXPECT_GE(q1->Acquire(4), 1);  // degrades toward serial, never blocks
  q1->Release(1);
}

TEST(AdaptiveQuotaTest, AutoBudgetSizesToWorkers) {
  TaskScheduler sched(3);
  AdaptiveQuotaController ctl(&sched, 0);
  EXPECT_EQ(ctl.global_budget(), 6);  // 2x workers
}

TEST(AdaptiveQuotaTest, PressureHalvesSharesAndRecovers) {
  TaskScheduler sched(1);
  AdaptiveQuotaController ctl(&sched, 8);
  auto quota = ctl.Register();
  EXPECT_EQ(quota->limit(), 8);

  // Saturate the pool: the lone worker blocks, tasks pile up behind it,
  // and nobody is idle enough to steal — textbook pressure.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> done{0};
  sched.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    done.fetch_add(1);
  });
  for (int i = 0; i < 8; i++) {
    sched.Submit([&] { done.fetch_add(1); });
  }
  for (int spin = 0; spin < 5000 && sched.queue_depth() <= 2; spin++) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_GT(sched.queue_depth(), 2);

  quota->Release(quota->Acquire(1));  // observer samples the pressure
  EXPECT_TRUE(ctl.pressured());
  EXPECT_EQ(quota->limit(), 4);  // halved under pressure

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  for (int spin = 0; spin < 50000 && done.load() < 9; spin++) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_EQ(done.load(), 9);

  quota->Release(quota->Acquire(1));  // queue drained: pressure clears
  EXPECT_FALSE(ctl.pressured());
  EXPECT_EQ(quota->limit(), 8);
}

TEST_F(ServingTest, FatQueryCannotStarvePointQueries) {
  // A fat self-join and a swarm of point queries share one 4-worker pool
  // under a global budget. The controller must split shares while both
  // run (rebalances move), and every result must still be exact.
  RegisterFact("fat", 5000, 100);
  db_->config().max_parallelism = 4;
  db_->config().scheduler_workers = 4;
  db_->config().query_task_quota = 8;

  auto point_sql = "SELECT salary FROM emp WHERE id = 371";
  auto point_ref = session_->ExecuteSql(point_sql);
  ASSERT_TRUE(point_ref.ok());

  AlgebraPtr fat_plan = OrderNode(
      JoinNode(ScanNode("fat", {"fk"}), ScanNode("fat"), JoinType::kInner,
               {"fk"}, {"fk"}),
      {{"val", true}});
  auto fat = session_->PreparePlan(std::move(fat_plan), "fat");
  ASSERT_TRUE(fat.ok());
  auto point = session_->Prepare(point_sql);
  ASSERT_TRUE(point.ok());

  const int64_t rebalances_before = db_->quota_controller()->rebalances();
  auto fat_pending = session_->Submit(*fat);
  ASSERT_TRUE(fat_pending.ok());
  std::atomic<int> point_failures{0};
  std::vector<std::thread> pointers;
  for (int t = 0; t < 4; t++) {
    pointers.emplace_back([&, t] {
      Session s(db_.get());
      for (int i = 0; i < 25; i++) {
        auto res = s.ExecutePrepared(*point);
        if (!res.ok() || res->rows.size() != 1 ||
            !res->rows[0][0].SqlEquals(point_ref->rows[0][0])) {
          point_failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : pointers) t.join();
  auto fat_res = fat_pending->Wait();
  ASSERT_TRUE(fat_res.ok()) << fat_res.status().ToString();
  EXPECT_EQ(fat_res->rows.size(), 250000u);
  EXPECT_EQ(point_failures.load(), 0);
  // Register/unregister churn rebalanced shares many times over.
  EXPECT_GT(db_->quota_controller()->rebalances(), rebalances_before + 100);
  EXPECT_EQ(db_->quota_controller()->active_queries(), 0);
  db_->config().max_parallelism = 0;
  db_->config().scheduler_workers = 0;
  db_->config().query_task_quota = 0;
}

// ---------------------------------------------------------------------------
// Multi-session stress: results bit-identical to the serial reference
// ---------------------------------------------------------------------------

TEST_F(ServingTest, ConcurrentSessionsMixedWorkloadMatchesSerialReference) {
  const int sessions = ServingSessions();
  const std::vector<std::string> sqls = {
      "SELECT dept, SUM(salary) AS s, COUNT(*) AS c FROM emp "
      "GROUP BY dept ORDER BY dept",
      "SELECT id, salary FROM emp WHERE id < 50 ORDER BY id",
      "SELECT COUNT(*) AS n FROM emp WHERE salary BETWEEN 1100 AND 1199",
      "SELECT salary FROM emp WHERE id = 371",
      "SELECT COUNT(bonus) AS nb FROM emp",
  };
  // Serial reference first (parallel plans + adaptive quota stay on for
  // the stress run; exact-binary-fraction data keeps sums bit-identical).
  std::vector<QueryResult> reference;
  for (const auto& sql : sqls) {
    auto r = session_->ExecuteSql(sql);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    reference.push_back(std::move(*r));
  }

  db_->config().max_parallelism = 3;
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  auto check = [&](const Result<QueryResult>& res, size_t qi) {
    if (!res.ok()) {
      errors.fetch_add(1);
      return;
    }
    const QueryResult& want = reference[qi];
    if (res->rows.size() != want.rows.size()) {
      mismatches.fetch_add(1);
      return;
    }
    for (size_t i = 0; i < want.rows.size(); i++) {
      for (size_t c = 0; c < want.rows[i].size(); c++) {
        if (!res->rows[i][c].SqlEquals(want.rows[i][c])) {
          mismatches.fetch_add(1);
          return;
        }
      }
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < sessions; t++) {
    threads.emplace_back([&, t] {
      Session s(db_.get());
      for (int iter = 0; iter < 6; iter++) {
        const size_t qi = (t + iter) % sqls.size();
        switch ((t + iter) % 3) {
          case 0: {  // prepared, synchronous (plan-cache path)
            auto prepared = s.Prepare(sqls[qi]);
            if (!prepared.ok()) {
              errors.fetch_add(1);
              break;
            }
            check(s.ExecutePrepared(*prepared), qi);
            break;
          }
          case 1:  // ad-hoc, synchronous (full frontend path)
            check(s.ExecuteSql(sqls[qi]), qi);
            break;
          case 2: {  // prepared, asynchronous
            auto prepared = s.Prepare(sqls[qi]);
            if (!prepared.ok()) {
              errors.fetch_add(1);
              break;
            }
            auto pending = s.Submit(*prepared);
            if (!pending.ok()) {
              errors.fetch_add(1);
              break;
            }
            check(pending->Wait(), qi);
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  db_->config().max_parallelism = 0;

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(db_->async_inflight(), 0);
  EXPECT_EQ(db_->queries()->Running().size(), 0u);
  // The cache served the repeated statements: far fewer misses than
  // executions (each distinct sql compiles at most a handful of times
  // under races), and plenty of hits.
  EXPECT_GT(db_->plan_cache()->hits(), 0);
  EXPECT_LE(db_->plan_cache()->size(),
            static_cast<int64_t>(db_->plan_cache()->capacity()));
}

TEST_F(ServingTest, WireMonitorServesConcurrentlyWithQueries) {
  // The monitoring endpoint answers over a pipe WHILE sessions hammer the
  // registry — listing snapshots must always decode cleanly (TSan guards
  // the registry/counters races).
  int to_server[2], to_client[2];
  ASSERT_EQ(pipe(to_server), 0);
  ASSERT_EQ(pipe(to_client), 0);
  MonitorEndpoint endpoint(db_->queries(), db_->counters(), db_->events());
  std::thread server(
      [&] { (void)endpoint.ServeStream(to_server[0], to_client[1]); });

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; t++) {
    workers.emplace_back([&] {
      Session s(db_.get());
      while (!stop.load()) {
        auto prepared = s.Prepare("SELECT COUNT(*) AS n FROM emp");
        if (!prepared.ok()) {
          errors.fetch_add(1);
          continue;
        }
        auto pending = s.Submit(*prepared);
        if (pending.ok()) {
          if (!pending->Wait().ok()) errors.fetch_add(1);
        }
      }
    });
  }

  int64_t listed_total = 0;
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(
        WriteFrame(to_server[1], EncodeRequest(WireOpcode::kListQueries))
            .ok());
    std::vector<uint8_t> payload;
    ASSERT_TRUE(ReadFrame(to_client[0], &payload).ok());
    std::vector<QueryInfo> queries;
    ASSERT_TRUE(DecodeQueryList(payload, &queries).ok());
    listed_total += static_cast<int64_t>(queries.size());

    ASSERT_TRUE(
        WriteFrame(to_server[1], EncodeRequest(WireOpcode::kCounters)).ok());
    ASSERT_TRUE(ReadFrame(to_client[0], &payload).ok());
    std::map<std::string, int64_t> counters;
    ASSERT_TRUE(DecodeCounters(payload, &counters).ok());
  }
  stop.store(true);
  for (auto& t : workers) t.join();
  close(to_server[1]);
  server.join();
  close(to_server[0]);
  close(to_client[0]);
  close(to_client[1]);
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GT(listed_total, 0);
}

// ---------------------------------------------------------------------------
// Out-of-core serving: concurrent spilling queries stay correct
// ---------------------------------------------------------------------------

TEST_F(ServingTest, ConcurrentSpillingQueriesStayCorrectAndDrainTracker) {
  RegisterDim("dim", 6000);           // > kTinyBuildRows: radix merge path
  RegisterFact("fact", 20000, 6000);  // every fact row matches
  auto plan = [] {
    AlgebraPtr join = JoinNode(ScanNode("dim"), ScanNode("fact"),
                               JoinType::kInner, {"k"}, {"fk"});
    AlgebraPtr aggr = AggrNode(std::move(join), {{"label", Col("label")}},
                               {{AggKind::kSum, Col("val"), "s"},
                                {AggKind::kCount, nullptr, "c"}});
    return OrderNode(std::move(aggr), {{"label", true}});
  };
  auto reference = session_->Execute(plan());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_EQ(reference->rows.size(), 7u);  // labels d0..d6

  db_->config().max_parallelism = 2;
  db_->config().memory_limit = 1 << 20;  // tight: joins must spill
  db_->config().enable_spill = true;
  const int sessions = std::max(4, ServingSessions() / 2);
  std::atomic<int> errors{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < sessions; t++) {
    threads.emplace_back([&] {
      Session s(db_.get());
      auto res = s.Execute(plan());
      if (!res.ok()) {
        errors.fetch_add(1);
        return;
      }
      for (size_t i = 0; i < reference->rows.size(); i++) {
        for (size_t c = 0; c < reference->rows[i].size(); c++) {
          if (!res->rows[i][c].SqlEquals(reference->rows[i][c])) {
            mismatches.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  // Every query's reservations unwound: the process-wide tracker is
  // fully drained, nothing leaked across the concurrent spills.
  EXPECT_EQ(db_->memory()->used(), 0);
  db_->config().max_parallelism = 0;
  db_->config().memory_limit = 0;
}

}  // namespace
}  // namespace x100
