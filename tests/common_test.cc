// Unit tests for src/common: Status, Result, date arithmetic, bit
// utilities, hashing, deterministic RNG.
#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "common/bitutil.h"
#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/task_scheduler.h"
#include "common/types.h"
#include "common/value.h"

#include <atomic>
#include <chrono>
#include <thread>

namespace x100 {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Overflow("boom");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsOverflow());
  EXPECT_EQ(s.code(), StatusCode::kOverflow);
  EXPECT_EQ(s.ToString(), "OVERFLOW: boom");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); c++) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fail = [] { return Status::DivisionByZero("x"); };
  auto wrapper = [&]() -> Status {
    X100_RETURN_IF_ERROR(fail());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsDivisionByZero());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = []() -> Result<int> { return 10; };
  auto chain = [&]() -> Result<int> {
    int v = 0;
    X100_ASSIGN_OR_RETURN(v, produce());
    return v * 2;
  };
  auto r = chain();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 20);
}

TEST(TypesTest, WidthAndNames) {
  EXPECT_EQ(TypeWidth(TypeId::kI32), 4);
  EXPECT_EQ(TypeWidth(TypeId::kI64), 8);
  EXPECT_EQ(TypeWidth(TypeId::kBool), 1);
  EXPECT_EQ(TypeWidth(TypeId::kDate), 4);
  EXPECT_STREQ(TypeName(TypeId::kF64), "f64");
  EXPECT_STREQ(TypeName(TypeId::kStr), "str");
}

TEST(TypesTest, NumericPredicates) {
  EXPECT_TRUE(IsIntegerType(TypeId::kDate));
  EXPECT_TRUE(IsNumericType(TypeId::kF64));
  EXPECT_FALSE(IsNumericType(TypeId::kStr));
  EXPECT_FALSE(IsIntegerType(TypeId::kBool));
}

TEST(DateTest, EpochIsZero) { EXPECT_EQ(MakeDate(1970, 1, 1), 0); }

TEST(DateTest, KnownDates) {
  // TPC-H date range boundaries.
  EXPECT_EQ(DateToString(MakeDate(1992, 1, 1)), "1992-01-01");
  EXPECT_EQ(DateToString(MakeDate(1998, 12, 31)), "1998-12-31");
  // Leap handling.
  EXPECT_EQ(MakeDate(2000, 3, 1) - MakeDate(2000, 2, 28), 2);
  EXPECT_EQ(MakeDate(1900, 3, 1) - MakeDate(1900, 2, 28), 1);
}

TEST(DateTest, RoundTripsAcrossYears) {
  for (int32_t d = MakeDate(1970, 1, 1); d <= MakeDate(2030, 12, 31);
       d += 37) {
    int y, m, dd;
    DateToYmd(d, &y, &m, &dd);
    EXPECT_EQ(MakeDate(y, m, dd), d);
  }
}

TEST(DateTest, ComponentExtraction) {
  const int32_t d = MakeDate(1995, 7, 16);
  EXPECT_EQ(DateYear(d), 1995);
  EXPECT_EQ(DateMonth(d), 7);
  EXPECT_EQ(DateDay(d), 16);
}

TEST(DateTest, ParseValid) {
  int32_t out = -1;
  ASSERT_TRUE(ParseDate("1994-01-01", &out));
  EXPECT_EQ(out, MakeDate(1994, 1, 1));
}

TEST(DateTest, ParseRejectsMalformed) {
  int32_t out;
  EXPECT_FALSE(ParseDate("1994/01/01", &out));
  EXPECT_FALSE(ParseDate("94-01-01", &out));
  EXPECT_FALSE(ParseDate("1994-13-01", &out));
  EXPECT_FALSE(ParseDate("1994-00-10", &out));
  EXPECT_FALSE(ParseDate("1994-01-4x", &out));
  EXPECT_FALSE(ParseDate("", &out));
}

TEST(BitUtilTest, BitsNeeded) {
  EXPECT_EQ(BitsNeeded(0), 0);
  EXPECT_EQ(BitsNeeded(1), 1);
  EXPECT_EQ(BitsNeeded(255), 8);
  EXPECT_EQ(BitsNeeded(256), 9);
  EXPECT_EQ(BitsNeeded(~0ull), 64);
}

TEST(BitUtilTest, NextPow2) {
  EXPECT_EQ(NextPow2(0), 1u);
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1024), 1024u);
  EXPECT_EQ(NextPow2(1025), 2048u);
}

TEST(BitUtilTest, ZigZagRoundTrip) {
  for (int64_t v : std::initializer_list<int64_t>{
           0, 1, -1, 1234567, -1234567,
           std::numeric_limits<int64_t>::max(),
           std::numeric_limits<int64_t>::min()}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  // Small magnitudes encode small.
  EXPECT_LT(ZigZagEncode(-3), 8u);
}

TEST(HashTest, DistinctValuesHashDistinct) {
  std::set<uint64_t> seen;
  for (int64_t i = 0; i < 1000; i++) seen.insert(HashInt(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(HashTest, NegativeZeroEqualsPositiveZero) {
  EXPECT_EQ(HashDouble(0.0), HashDouble(-0.0));
}

TEST(HashTest, StringHashRespectsContent) {
  EXPECT_EQ(HashStr(StrRef("abc", 3)), HashStr(StrRef("abc", 3)));
  EXPECT_NE(HashStr(StrRef("abc", 3)), HashStr(StrRef("abd", 3)));
  EXPECT_NE(HashStr(StrRef("abc", 3)), HashStr(StrRef("ab", 2)));
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; i++) {
    int64_t v = r.Uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 10000; i++) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ValueTest, NullSemantics) {
  Value n = Value::Null(TypeId::kI32);
  EXPECT_TRUE(n.is_null());
  EXPECT_FALSE(n.SqlEquals(n));  // NULL != NULL
  EXPECT_EQ(n.ToString(), "NULL");
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value::I32(5).SqlEquals(Value::I64(5)));
  EXPECT_TRUE(Value::I64(5).SqlEquals(Value::F64(5.0)));
  EXPECT_FALSE(Value::I32(5).SqlEquals(Value::I32(6)));
}

TEST(ValueTest, StringAndDateFormatting) {
  EXPECT_EQ(Value::Str("hi").ToString(), "hi");
  EXPECT_EQ(Value::Date(MakeDate(1996, 3, 13)).ToString(), "1996-03-13");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
}

// ---------------------------------------------------------------------------
// TaskScheduler / TaskGroup
// ---------------------------------------------------------------------------

TEST(TaskSchedulerTest, ConfigurableWorkerCount) {
  TaskScheduler pool(3);
  EXPECT_EQ(pool.num_workers(), 3);
  TaskScheduler defaulted;
  EXPECT_GE(defaulted.num_workers(), 1);
}

TEST(TaskSchedulerTest, RunsEveryTask) {
  TaskScheduler pool(4);
  std::atomic<int> done{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 200; i++) {
    group.Spawn([&] {
      done.fetch_add(1);
      return Status::OK();
    });
  }
  EXPECT_TRUE(group.Wait().ok());
  EXPECT_EQ(done.load(), 200);
}

TEST(TaskSchedulerTest, SingleWorkerCannotDeadlockJoiner) {
  // Wait() helps drain the pool, so 50 tasks on 1 worker always finish.
  TaskScheduler pool(1);
  std::atomic<int> done{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 50; i++) {
    group.Spawn([&] {
      done.fetch_add(1);
      return Status::OK();
    });
  }
  EXPECT_TRUE(group.Wait().ok());
  EXPECT_EQ(done.load(), 50);
}

TEST(TaskSchedulerTest, StealsFromBusyWorker) {
  TaskScheduler pool(2);
  // Block one worker, then enqueue many quick tasks: the other worker
  // must steal the ones round-robined onto the blocked worker's deque.
  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  TaskGroup group(&pool);
  group.Spawn([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Status::OK();
  });
  for (int i = 0; i < 40; i++) {
    group.Spawn([&] {
      done.fetch_add(1);
      return Status::OK();
    });
  }
  // Wait for the quick tasks while one worker is still blocked. The main
  // thread does NOT help here, to force cross-worker stealing.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (done.load() < 40 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(done.load(), 40);
  EXPECT_GE(pool.tasks_stolen(), 1);
  release.store(true);
  EXPECT_TRUE(group.Wait().ok());
}

TEST(TaskGroupTest, FirstErrorWinsAndCancelsSiblings) {
  TaskScheduler pool(2);
  std::atomic<int> started{0};
  TaskGroup group(&pool);
  group.Spawn([&] {
    started.fetch_add(1);
    return Status::IoError("disk gone");
  });
  for (int i = 0; i < 100; i++) {
    group.Spawn([&] {
      started.fetch_add(1);
      return Status::OK();
    });
  }
  const Status s = group.Wait();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_LE(started.load(), 101);
}

TEST(TaskGroupTest, ExternalTokenSkipsPendingTasks) {
  TaskScheduler pool(1);
  CancellationToken token;
  token.Cancel();  // pre-cancelled: nothing should execute
  std::atomic<int> ran{0};
  TaskGroup group(&pool, &token);
  for (int i = 0; i < 10; i++) {
    group.Spawn([&] {
      ran.fetch_add(1);
      return Status::OK();
    });
  }
  const Status s = group.Wait();
  EXPECT_TRUE(s.IsCancelled());
  EXPECT_EQ(ran.load(), 0);
}

TEST(TaskGroupTest, DestructorJoinsOutstandingTasks) {
  TaskScheduler pool(2);
  std::atomic<int> done{0};
  {
    TaskGroup group(&pool);
    for (int i = 0; i < 20; i++) {
      group.Spawn([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1);
        return Status::OK();
      });
    }
    // No Wait(): the destructor must cancel-and-join without letting a
    // task outlive the group.
  }
  const int after = done.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(done.load(), after);  // nothing ran after destruction
}

}  // namespace
}  // namespace x100
