// Unit tests for the vectorized data model: Vector, Batch, StringHeap,
// Schema, selection vectors and the two-column NULL representation.
#include <gtest/gtest.h>

#include "vector/batch.h"
#include "vector/schema.h"
#include "vector/string_heap.h"
#include "vector/vector.h"

namespace x100 {
namespace {

TEST(StringHeapTest, AddCopiesData) {
  StringHeap heap;
  std::string src = "hello";
  StrRef r = heap.Add(src);
  src[0] = 'X';  // mutate the source; heap copy must be unaffected
  EXPECT_EQ(r.ToString(), "hello");
}

TEST(StringHeapTest, GrowsAcrossChunks) {
  StringHeap heap(16);  // tiny chunks to force growth
  std::vector<StrRef> refs;
  for (int i = 0; i < 100; i++) {
    refs.push_back(heap.Add("string-" + std::to_string(i)));
  }
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(refs[i].ToString(), "string-" + std::to_string(i));
  }
}

TEST(StringHeapTest, ResetReclaims) {
  StringHeap heap;
  heap.Add("abcdef");
  EXPECT_GT(heap.bytes_allocated(), 0u);
  heap.Reset();
  EXPECT_EQ(heap.bytes_allocated(), 0u);
}

TEST(StringHeapTest, EmptyString) {
  StringHeap heap;
  StrRef r = heap.Add("");
  EXPECT_EQ(r.len, 0u);
  EXPECT_EQ(r.ToString(), "");
}

TEST(VectorTest, TypedAccess) {
  Vector v(TypeId::kI32, 8);
  int32_t* d = v.Data<int32_t>();
  for (int i = 0; i < 8; i++) d[i] = i * i;
  EXPECT_EQ(v.Data<int32_t>()[7], 49);
  EXPECT_EQ(v.type(), TypeId::kI32);
  EXPECT_EQ(v.capacity(), 8);
}

TEST(VectorTest, NullsLazyAndSafeValues) {
  Vector v(TypeId::kI64, 4);
  EXPECT_FALSE(v.has_nulls());
  int64_t* d = v.Data<int64_t>();
  d[0] = 11;
  d[1] = 22;
  v.SetNull(1);
  EXPECT_TRUE(v.has_nulls());
  EXPECT_TRUE(v.IsNull(1));
  EXPECT_FALSE(v.IsNull(0));
  // The paper's "safe value": NULL slot holds 0 so kernels stay defined.
  EXPECT_EQ(d[1], 0);
  EXPECT_EQ(d[0], 11);
}

TEST(VectorTest, ClearNullsIsCheapToggle) {
  Vector v(TypeId::kI32, 4);
  v.SetNull(2);
  EXPECT_TRUE(v.has_nulls());
  v.ClearNulls();
  EXPECT_FALSE(v.has_nulls());
  EXPECT_FALSE(v.IsNull(2));
}

TEST(VectorTest, StringVectorHasHeap) {
  Vector v(TypeId::kStr, 4);
  ASSERT_NE(v.heap(), nullptr);
  StrRef* d = v.Data<StrRef>();
  d[0] = v.heap()->Add("x100");
  EXPECT_EQ(d[0].ToString(), "x100");
  Vector iv(TypeId::kI32, 4);
  EXPECT_EQ(iv.heap(), nullptr);
}

TEST(VectorTest, SetNullOnStringGivesEmptySafeValue) {
  Vector v(TypeId::kStr, 4);
  StrRef* d = v.Data<StrRef>();
  d[1] = v.heap()->Add("junk");
  v.SetNull(1);
  EXPECT_EQ(d[1].len, 0u);
  EXPECT_TRUE(v.IsNull(1));
}

TEST(VectorTest, CopyFromFixedWidth) {
  Vector a(TypeId::kI32, 8), b(TypeId::kI32, 8);
  for (int i = 0; i < 8; i++) a.Data<int32_t>()[i] = i;
  a.SetNull(3);
  b.CopyFrom(a, 2, 4, 0);
  EXPECT_EQ(b.Data<int32_t>()[0], 2);
  EXPECT_EQ(b.Data<int32_t>()[1], 0);  // was NULL -> safe value
  EXPECT_EQ(b.Data<int32_t>()[2], 4);
  EXPECT_TRUE(b.IsNull(1));            // a[3] null -> b[1]
  EXPECT_FALSE(b.IsNull(0));
}

TEST(VectorTest, CopyFromStringsReAddsToOwnHeap) {
  Vector a(TypeId::kStr, 4), b(TypeId::kStr, 4);
  a.Data<StrRef>()[0] = a.heap()->Add("alpha");
  a.Data<StrRef>()[1] = a.heap()->Add("beta");
  b.CopyFrom(a, 0, 2, 1);
  a.heap()->Reset();  // invalidate source heap
  EXPECT_EQ(b.Data<StrRef>()[1].ToString(), "alpha");
  EXPECT_EQ(b.Data<StrRef>()[2].ToString(), "beta");
}

TEST(SchemaTest, FindField) {
  Schema s({Field("a", TypeId::kI32), Field("b", TypeId::kStr, true)});
  EXPECT_EQ(s.num_fields(), 2);
  EXPECT_EQ(s.FindField("b"), 1);
  EXPECT_EQ(s.FindField("z"), -1);
  EXPECT_TRUE(s.field(1).nullable);
  EXPECT_EQ(s.ToString(), "(a i32, b str null)");
}

Schema TwoColSchema() {
  return Schema({Field("x", TypeId::kI32), Field("s", TypeId::kStr)});
}

TEST(BatchTest, ConstructionMatchesSchema) {
  Batch b(TwoColSchema(), 16);
  EXPECT_EQ(b.num_columns(), 2);
  EXPECT_EQ(b.capacity(), 16);
  EXPECT_EQ(b.column(0)->type(), TypeId::kI32);
  EXPECT_EQ(b.column(1)->type(), TypeId::kStr);
  EXPECT_EQ(b.ActiveRows(), 0);
}

TEST(BatchTest, SelectionVectorControlsActiveRows) {
  Batch b(TwoColSchema(), 16);
  b.set_rows(10);
  EXPECT_EQ(b.ActiveRows(), 10);
  sel_t* sel = b.MutableSel();
  sel[0] = 1;
  sel[1] = 4;
  sel[2] = 9;
  b.SetSelCount(3);
  EXPECT_TRUE(b.has_sel());
  EXPECT_EQ(b.ActiveRows(), 3);
  b.ClearSel();
  EXPECT_EQ(b.ActiveRows(), 10);
}

TEST(BatchTest, CompactGathersSelectedRows) {
  Schema schema = TwoColSchema();
  Batch b(schema, 8);
  for (int i = 0; i < 8; i++) {
    b.column(0)->Data<int32_t>()[i] = i * 10;
    b.column(1)->Data<StrRef>()[i] =
        b.column(1)->heap()->Add("s" + std::to_string(i));
  }
  b.column(0)->SetNull(4);
  b.set_rows(8);
  sel_t* sel = b.MutableSel();
  sel[0] = 1;
  sel[1] = 4;
  sel[2] = 7;
  b.SetSelCount(3);

  auto c = b.Compact(schema);
  EXPECT_EQ(c->rows(), 3);
  EXPECT_FALSE(c->has_sel());
  EXPECT_EQ(c->column(0)->Data<int32_t>()[0], 10);
  EXPECT_TRUE(c->column(0)->IsNull(1));
  EXPECT_EQ(c->column(0)->Data<int32_t>()[2], 70);
  EXPECT_EQ(c->column(1)->Data<StrRef>()[0].ToString(), "s1");
  EXPECT_EQ(c->column(1)->Data<StrRef>()[2].ToString(), "s7");
}

TEST(BatchTest, CompactWithoutSelectionCopiesAll) {
  Schema schema({Field("x", TypeId::kI64)});
  Batch b(schema, 4);
  for (int i = 0; i < 3; i++) b.column(0)->Data<int64_t>()[i] = i + 100;
  b.set_rows(3);
  auto c = b.Compact(schema);
  EXPECT_EQ(c->rows(), 3);
  EXPECT_EQ(c->column(0)->Data<int64_t>()[2], 102);
}

TEST(BatchTest, ResetClearsStateAndHeaps) {
  Schema schema = TwoColSchema();
  Batch b(schema, 4);
  b.column(1)->Data<StrRef>()[0] = b.column(1)->heap()->Add("zzz");
  b.column(0)->SetNull(0);
  b.set_rows(4);
  b.MutableSel()[0] = 0;
  b.SetSelCount(1);
  b.Reset();
  EXPECT_EQ(b.rows(), 0);
  EXPECT_FALSE(b.has_sel());
  EXPECT_FALSE(b.column(0)->has_nulls());
  EXPECT_EQ(b.column(1)->heap()->bytes_allocated(), 0u);
}

TEST(BatchTest, MemoryAccounting) {
  Schema schema({Field("x", TypeId::kI64)});
  Batch b(schema, 1024);
  // At least the data buffer + the selection buffer.
  EXPECT_GE(b.MemoryBytes(), 1024 * sizeof(int64_t) + 1024 * sizeof(sel_t));
}

}  // namespace
}  // namespace x100
