// Out-of-core execution tests: memory-accounted spill-to-disk for the
// three pipeline breakers (join build, aggregation, sort).
//
//  * MemoryTracker / MemoryReservation unit contracts (hierarchy,
//    overcommit, RAII release).
//  * SpillFile + RowBuffer serialization round trips.
//  * The determinism sweep: the bench_e8-shaped group-by-join+sort query
//    at memory_limit {unlimited, tight, very tight} x workers {1, 2, 8}
//    x radix_bits {0, 2, 4}, every configuration compared value-for-value
//    against the in-memory serial reference.
//  * Error paths: enable_spill = false + a tight limit surfaces
//    kResourceExhausted mid-build / mid-agg / mid-sort with a clean
//    TaskGroup unwind; cancellation mid-spill releases reservations.
//  * After EVERY query the process-wide tracker must drain to zero —
//    leaked charges fail the test.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>

#include "common/config.h"
#include "common/memory_tracker.h"
#include "engine/session.h"
#include "exec/hash_agg.h"
#include "exec/row_buffer.h"
#include "storage/spill_file.h"

namespace x100 {
namespace {

// ---------------------------------------------------------------------------
// MemoryTracker / MemoryReservation units
// ---------------------------------------------------------------------------

TEST(MemoryTrackerTest, LimitEnforcedAllOrNothing) {
  MemoryTracker t(1000);
  EXPECT_TRUE(t.TryReserve(600).ok());
  const Status s = t.TryReserve(500);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(t.used(), 600);  // failed reservation charged nothing
  EXPECT_TRUE(t.TryReserve(400).ok());
  t.Release(1000);
  EXPECT_EQ(t.used(), 0);
  EXPECT_EQ(t.peak(), 1000);
}

TEST(MemoryTrackerTest, HierarchyRollsUpAndRollsBack) {
  MemoryTracker root(1000);
  MemoryTracker q1(0, &root), q2(0, &root);
  EXPECT_TRUE(q1.TryReserve(700).ok());
  EXPECT_EQ(root.used(), 700);
  // q2 is itself unlimited but the parent rejects; q2 must roll back.
  EXPECT_FALSE(q2.TryReserve(400).ok());
  EXPECT_EQ(q2.used(), 0);
  EXPECT_EQ(root.used(), 700);
  q1.Release(700);
  EXPECT_EQ(root.used(), 0);
}

TEST(MemoryTrackerTest, ForceReserveOvercommits) {
  MemoryTracker t(100);
  t.ForceReserve(250);
  EXPECT_EQ(t.used(), 250);
  EXPECT_EQ(t.overcommitted(), 150);
  EXPECT_FALSE(t.TryReserve(1).ok());  // still over limit
  t.Release(250);
  EXPECT_EQ(t.used(), 0);
}

TEST(MemoryTrackerTest, ReservationRaiiDrains) {
  MemoryTracker t(0);
  {
    MemoryReservation r(&t);
    EXPECT_TRUE(r.GrowTo(500).ok());
    EXPECT_TRUE(r.GrowTo(300).ok());  // never shrinks
    EXPECT_EQ(r.charged(), 500);
    r.ShrinkTo(200);
    EXPECT_EQ(t.used(), 200);
    r.ForceGrowTo(900);
    EXPECT_EQ(t.used(), 900);
  }
  EXPECT_EQ(t.used(), 0);  // destructor released everything

  // Null tracker: every operation is a no-op.
  MemoryReservation none;
  none.Init(nullptr);
  EXPECT_TRUE(none.GrowTo(1 << 30).ok());
  none.ForceGrowTo(1 << 30);
  none.ReleaseAll();
}

// ---------------------------------------------------------------------------
// SpillFile + RowBuffer serialization
// ---------------------------------------------------------------------------

TEST(SpillFileTest, MultiBlockRoundTrip) {
  SimulatedDisk disk;
  // 2.5 disk blocks of patterned bytes.
  std::vector<uint8_t> blob(kDiskBlockBytes * 5 / 2);
  for (size_t i = 0; i < blob.size(); i++) {
    blob[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  {
    auto wrote = SpillFile::Write(&disk, blob);
    ASSERT_TRUE(wrote.ok()) << wrote.status().ToString();
    const SpillFile f = std::move(wrote).value();
    EXPECT_EQ(f.num_blocks(), 3u);
    EXPECT_EQ(f.bytes(), static_cast<int64_t>(blob.size()));
    auto back = f.ReadAll();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, blob);
    EXPECT_EQ(disk.bytes_freed(), 0);
    EXPECT_EQ(disk.spill_bytes_in_use(), static_cast<int64_t>(blob.size()));
  }
  // SpillFile owns its blocks: destruction reclaims the device storage,
  // so a long-lived database does not accumulate spilled bytes forever.
  EXPECT_EQ(disk.bytes_freed(), static_cast<int64_t>(blob.size()));
  EXPECT_EQ(disk.spill_bytes_in_use(), 0);
}

TEST(GroupTableSerdeTest, CorruptBlobsFailCleanly) {
  const Schema key_schema({Field("k", TypeId::kI64)});
  const std::vector<AggKind> kinds{AggKind::kSum};
  const std::vector<TypeId> in_types{TypeId::kI64};
  // A keys_bytes length field near UINT64_MAX must not wrap the bounds
  // check into a huge out-of-bounds read (all-0xFF header).
  const std::vector<uint8_t> garbage(16, 0xFF);
  for (const size_t cut : {size_t{0}, size_t{4}, garbage.size()}) {
    auto r = GroupTable::Deserialize(key_schema, kinds, in_types,
                                     garbage.data(), cut);
    EXPECT_FALSE(r.ok());
  }
}

TEST(RowBufferSerdeTest, RoundTripWithNullsAndStrings) {
  Schema schema({Field("i", TypeId::kI64, true),
                 Field("s", TypeId::kStr, true),
                 Field("d", TypeId::kF64)});
  RowBuffer buf(schema);
  Batch b(schema, 8);
  for (int i = 0; i < 8; i++) {
    b.column(0)->Data<int64_t>()[i] = i * 11;
    if (i % 3 == 0) b.column(0)->SetNull(i);
    const std::string s =
        i == 5 ? "" : "value_" + std::string(i, 'x') + std::to_string(i);
    b.column(1)->Data<StrRef>()[i] = b.column(1)->heap()->Add(s);
    if (i == 6) b.column(1)->SetNull(i);
    b.column(2)->Data<double>()[i] = i * 0.5;
  }
  b.set_rows(8);
  buf.AppendBatch(b);

  // SqlEquals is NULL != NULL by design; the round trip must preserve
  // null-ness exactly, so compare that separately.
  auto same = [](const Value& x, const Value& y) {
    return x.is_null() ? y.is_null() : x.SqlEquals(y);
  };

  std::vector<uint8_t> blob;
  buf.SerializeTo(&blob);
  auto rt = RowBuffer::Deserialize(schema, blob.data(), blob.size());
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  ASSERT_EQ((*rt)->rows(), 8);
  for (int64_t r = 0; r < 8; r++) {
    for (int c = 0; c < 3; c++) {
      EXPECT_TRUE(same(buf.GetValue(c, r), (*rt)->GetValue(c, r)))
          << "row " << r << " col " << c;
    }
  }

  // Permuted slice: rows {7, 2, 4} in that order.
  std::vector<int64_t> order = {7, 2, 4};
  std::vector<uint8_t> slice;
  buf.SerializeRowsTo(order, 0, 3, &slice);
  auto st = RowBuffer::Deserialize(schema, slice.data(), slice.size());
  ASSERT_TRUE(st.ok());
  ASSERT_EQ((*st)->rows(), 3);
  for (int64_t r = 0; r < 3; r++) {
    for (int c = 0; c < 3; c++) {
      EXPECT_TRUE(same(buf.GetValue(c, order[r]), (*st)->GetValue(c, r)))
          << "slice row " << r << " col " << c;
    }
  }

  // Truncated blobs fail cleanly, never fault.
  for (const size_t cut : {size_t{0}, size_t{4}, blob.size() / 2}) {
    auto bad = RowBuffer::Deserialize(schema, blob.data(), cut);
    EXPECT_FALSE(bad.ok());
  }
}

// ---------------------------------------------------------------------------
// Fixture: a build side and a fact table big enough that tight limits
// push every breaker out of core. dim keys (and labels) are UNIQUE so
// join match order, group identity and sort order are all deterministic —
// the out-of-core runs must reproduce the in-memory reference exactly.
// ---------------------------------------------------------------------------

class MemoryLimitTest : public ::testing::Test {
 protected:
  static constexpr int kDimRows = 20000;   // > kTinyBuildRows: radix kept
  static constexpr int kFactRows = 40000;

  void SetUp() override {
    db_ = std::make_unique<Database>();
    {
      auto b = db_->CreateTable(
          "dim",
          Schema({Field("k", TypeId::kI64), Field("label", TypeId::kStr)}),
          Layout::kDsm, 1024);
      for (int i = 0; i < kDimRows; i++) {
        ASSERT_TRUE(
            b->AppendRow({Value::I64(i), Value::Str(LabelOf(i))}).ok());
      }
      auto t = b->Finish();
      ASSERT_TRUE(t.ok());
      ASSERT_TRUE(db_->RegisterTable(std::move(t).value()).ok());
    }
    {
      auto b = db_->CreateTable(
          "fact",
          Schema({Field("fk", TypeId::kI64), Field("val", TypeId::kI64)}),
          Layout::kDsm, 2048);
      for (int i = 0; i < kFactRows; i++) {
        ASSERT_TRUE(
            b->AppendRow({Value::I64(i % kDimRows), Value::I64(i)}).ok());
      }
      auto t = b->Finish();
      ASSERT_TRUE(t.ok());
      ASSERT_TRUE(db_->RegisterTable(std::move(t).value()).ok());
    }
    session_ = std::make_unique<Session>(db_.get());
  }

  /// Zero-padded so the string sort order equals the numeric key order.
  static std::string LabelOf(int i) {
    std::string n = std::to_string(i);
    return "L" + std::string(5 - n.size(), '0') + n;
  }

  void SetWorkers(int workers) {
    db_->config().max_parallelism = workers;
    db_->config().scheduler_workers = workers;
  }

  /// The bench_e8 shape: group-by-join + sort. Integer aggregates and a
  /// unique sort key keep the result bit-stable across worker counts,
  /// radix bits and spill schedules.
  AlgebraPtr GroupByJoinSortPlan() {
    AlgebraPtr join =
        JoinNode(ScanNode("dim"), ScanNode("fact"), JoinType::kInner,
                 {"k"}, {"fk"});
    AlgebraPtr aggr = AggrNode(std::move(join), {{"label", Col("label")}},
                               {{AggKind::kSum, Col("val"), "s"},
                                {AggKind::kCount, nullptr, "c"},
                                {AggKind::kMin, Col("val"), "lo"},
                                {AggKind::kMax, Col("val"), "hi"}});
    return OrderNode(std::move(aggr), {{"label", true}});
  }

  static void ExpectSameRows(const QueryResult& a, const QueryResult& b,
                             const std::string& what) {
    ASSERT_EQ(a.rows.size(), b.rows.size()) << what;
    for (size_t i = 0; i < a.rows.size(); i++) {
      for (size_t c = 0; c < a.rows[i].size(); c++) {
        // SqlEquals is NULL != NULL by design; result comparison wants
        // null-ness preserved exactly (left-outer padding, NULL keys).
        const Value& x = a.rows[i][c];
        const Value& y = b.rows[i][c];
        ASSERT_TRUE(x.is_null() ? y.is_null() : x.SqlEquals(y))
            << what << " row " << i << " col " << c;
      }
    }
  }

  /// Every exit path — success, error, cancellation — must return every
  /// charged byte: a leak here poisons all later queries' budgets.
  void ExpectTrackerDrained(const std::string& what) {
    EXPECT_EQ(db_->memory()->used(), 0) << "leaked charges after " << what;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> session_;
};

// ---------------------------------------------------------------------------
// The out-of-core determinism sweep
// ---------------------------------------------------------------------------

TEST_F(MemoryLimitTest, OutOfCoreSweepMatchesInMemory) {
  // In-memory serial reference; its peak sizes the tight limits.
  SetWorkers(1);
  db_->config().radix_bits = 0;
  db_->config().memory_limit = 0;
  db_->memory()->ResetPeak();
  auto reference = session_->Execute(GroupByJoinSortPlan());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_EQ(reference->rows.size(), static_cast<size_t>(kDimRows));
  ExpectTrackerDrained("reference");
  const int64_t peak = db_->memory()->peak();
  ASSERT_GT(peak, 0);

  // tight ~ half the observed peak (a sizable fraction of breaker state
  // spills), very tight ~ 1/24th (nearly everything spills).
  const int64_t limits[] = {0, peak / 2, peak / 24};
  for (const int64_t limit : limits) {
    for (const int bits : {0, 2, 4}) {
      for (const int workers : {1, 2, 8}) {
        const std::string what = "memory_limit=" + std::to_string(limit) +
                                 " radix_bits=" + std::to_string(bits) +
                                 " workers=" + std::to_string(workers);
        SetWorkers(workers);
        db_->config().radix_bits = bits;
        db_->config().memory_limit = limit;
        auto res = session_->Execute(GroupByJoinSortPlan());
        ASSERT_TRUE(res.ok()) << what << ": " << res.status().ToString();
        ExpectSameRows(*reference, *res, what);
        ExpectTrackerDrained(what);
      }
    }
  }
  SetWorkers(0);
  db_->config().radix_bits = -1;
  db_->config().memory_limit = 0;
}

TEST_F(MemoryLimitTest, TightLimitSpillsEveryBreaker) {
  // The acceptance shape: a limit far below the breaker state forces the
  // join build, the aggregation AND the sort out of core, each visibly
  // (nonzero spilled bytes) in the profile.
  SetWorkers(1);
  db_->config().memory_limit = 0;
  db_->memory()->ResetPeak();
  auto reference = session_->Execute(GroupByJoinSortPlan());
  ASSERT_TRUE(reference.ok());
  const int64_t peak = db_->memory()->peak();

  SetWorkers(8);
  db_->config().radix_bits = 4;
  db_->config().memory_limit = peak / 24;
  auto res = session_->Execute(GroupByJoinSortPlan());
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ExpectSameRows(*reference, *res, "tight spilling run");
  int64_t build_spill = 0, agg_spill = 0, sort_spill = 0;
  for (const OperatorProfile& p : res->profile.operators) {
    if (p.op == "JoinBuildSpill") build_spill += p.spill_bytes;
    if (p.op == "AggSpill") agg_spill += p.spill_bytes;
    if (p.op == "SortSpill") sort_spill += p.spill_bytes;
  }
  EXPECT_GT(build_spill, 0) << res->profile.ToString();
  EXPECT_GT(agg_spill, 0) << res->profile.ToString();
  EXPECT_GT(sort_spill, 0) << res->profile.ToString();
  // The spill columns surface in the rendered profile.
  EXPECT_NE(res->profile.ToString().find("spill(kb)"), std::string::npos);
  ExpectTrackerDrained("tight spilling run");
  // Spilled blocks die with the query's operator tree: everything this
  // query wrote must have been reclaimed by the time it returned —
  // whichever device (SimulatedDisk or X100_SPILL_PATH file) took it.
  auto dev = db_->spill_device();
  ASSERT_TRUE(dev.ok()) << dev.status().ToString();
  EXPECT_GE((*dev)->spill_bytes_written(),
            build_spill + agg_spill + sort_spill);
  EXPECT_EQ((*dev)->spill_bytes_in_use(), 0);
  SetWorkers(0);
  db_->config().radix_bits = -1;
  db_->config().memory_limit = 0;
}

// ---------------------------------------------------------------------------
// Partition-wise (Grace) probe: the probe side goes out of core too
// ---------------------------------------------------------------------------

/// Root-join shape: build AND probe both exceed a tight limit, no
/// aggregation/sort sink — the only force-admits in flight are the
/// documented join floors, so peak usage can be bounded exactly. Row
/// order is nondeterministic (exchange union + deferred pairs emit
/// last), so rows are canonicalized before comparison.
class GraceProbeTest : public MemoryLimitTest {
 protected:
  AlgebraPtr RootJoinPlan() {
    return JoinNode(ScanNode("dim"), ScanNode("fact"), JoinType::kInner,
                    {"k"}, {"fk"});
  }

  static void SortRows(QueryResult* r) {
    std::sort(r->rows.begin(), r->rows.end(),
              [](const std::vector<Value>& a, const std::vector<Value>& b) {
                for (size_t c = 0; c < a.size() && c < b.size(); c++) {
                  const std::string x = a[c].ToString();
                  const std::string y = b[c].ToString();
                  if (x != y) return x < y;
                }
                return a.size() < b.size();
              });
  }

  static int64_t SumSpill(const QueryProfile& p, const std::string& op) {
    int64_t b = 0;
    for (const OperatorProfile& e : p.operators) {
      if (e.op == op) b += e.spill_bytes;
    }
    return b;
  }

  static int64_t MaxPairMem(const QueryProfile& p) {
    int64_t b = 0;
    for (const OperatorProfile& e : p.operators) {
      if (e.op == "JoinProbePair" && e.mem_bytes > b) b = e.mem_bytes;
    }
    return b;
  }
};

TEST_F(GraceProbeTest, ProbeSideOutOfCoreSweepMatchesInMemory) {
  SetWorkers(1);
  db_->config().radix_bits = 0;
  db_->config().memory_limit = 0;
  db_->memory()->ResetPeak();
  auto reference = session_->Execute(RootJoinPlan());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_EQ(reference->rows.size(), static_cast<size_t>(kFactRows));
  SortRows(&reference.value());
  ExpectTrackerDrained("grace reference");
  const int64_t peak = db_->memory()->peak();
  ASSERT_GT(peak, 0);

  const int64_t limits[] = {0, peak / 2, peak / 24};
  for (const int64_t limit : limits) {
    for (const int bits : {0, 2, 4}) {
      for (const int workers : {1, 2, 8}) {
        const std::string what = "memory_limit=" + std::to_string(limit) +
                                 " radix_bits=" + std::to_string(bits) +
                                 " workers=" + std::to_string(workers);
        SetWorkers(workers);
        db_->config().radix_bits = bits;
        db_->config().memory_limit = limit;
        db_->memory()->ResetPeak();
        auto res = session_->Execute(RootJoinPlan());
        ASSERT_TRUE(res.ok()) << what << ": " << res.status().ToString();
        SortRows(&res.value());
        ExpectSameRows(*reference, *res, what);
        ExpectTrackerDrained(what);
        if (limit == peak / 24) {
          // The acceptance bound PR 4 could not state: with the whole
          // build table force-charged, peak was ~the table regardless of
          // the limit. Partition-wise probing bounds the overcommit to
          // one pair (measured per pair in the profile) plus the
          // documented per-worker spill-floor slack.
          EXPECT_GT(SumSpill(res->profile, "JoinProbeSpill"), 0) << what;
          // Build-side spill evidence: the drain ("JoinBuildSpill") or
          // the merge deferral ("JoinBuildDefer") — when the drain
          // already shipped everything, the merge has nothing left to
          // defer-write and only the drain entry appears.
          EXPECT_GT(SumSpill(res->profile, "JoinBuildSpill") +
                        SumSpill(res->profile, "JoinBuildDefer"),
                    0)
              << what;
          const int64_t max_pair = MaxPairMem(res->profile);
          EXPECT_GT(max_pair, 0) << what;
          EXPECT_LE(db_->memory()->peak(),
                    limit + max_pair + SpillForceAdmitSlack(workers))
              << what << "\n" << res->profile.ToString();
        }
      }
    }
  }
  SetWorkers(0);
  db_->config().radix_bits = -1;
  db_->config().memory_limit = 0;
}

TEST_F(GraceProbeTest, ReadAheadKeepsOutOfCoreJoinBitIdentical) {
  // Read-ahead must be pure overlap: scans prefetching the next group and
  // the Grace pair streamer preloading the next deferred pair's spill
  // chunks cannot change a single byte of the result.
  SetWorkers(1);
  db_->config().radix_bits = 0;
  db_->config().memory_limit = 0;
  db_->memory()->ResetPeak();
  auto reference = session_->Execute(RootJoinPlan());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  SortRows(&reference.value());
  const int64_t peak = db_->memory()->peak();
  ASSERT_GT(peak, 0);

  int64_t pair_prefetches = 0;
  for (const int workers : {1, 8}) {
    for (const bool prefetch : {false, true}) {
      const std::string what = std::string("prefetch=") +
                               (prefetch ? "on" : "off") +
                               " workers=" + std::to_string(workers);
      SetWorkers(workers);
      db_->config().radix_bits = 4;
      db_->config().memory_limit = peak / 24;
      db_->config().prefetch_budget_bytes = prefetch ? -1 : 0;
      auto res = session_->Execute(RootJoinPlan());
      ASSERT_TRUE(res.ok()) << what << ": " << res.status().ToString();
      SortRows(&res.value());
      ExpectSameRows(*reference, *res, what);
      ExpectTrackerDrained(what);
      EXPECT_GT(SumSpill(res->profile, "JoinProbeSpill"), 0) << what;
      if (prefetch) {
        for (const OperatorProfile& e : res->profile.operators) {
          if (e.op == "JoinPairPrefetch") pair_prefetches += e.spills;
        }
      }
    }
  }
  // The overlap actually engaged: deferred pairs were streamed ahead in
  // the prefetch-on runs, not just permitted to be.
  EXPECT_GT(pair_prefetches, 0);
  SetWorkers(0);
  db_->config().radix_bits = -1;
  db_->config().memory_limit = 0;
  db_->config().prefetch_budget_bytes = -1;
}

TEST_F(GraceProbeTest, FinerRadixShrinksThePairFloor) {
  // The Grace memory bound is ONE partition pair: more partitions ->
  // smaller pairs -> lower peak. radix_bits = 0 cannot subdivide (the
  // single pair IS the whole table), 4 bits should cut the pair floor by
  // roughly the partition count.
  SetWorkers(2);
  db_->config().radix_bits = 0;
  db_->config().memory_limit = 0;
  db_->memory()->ResetPeak();
  auto reference = session_->Execute(RootJoinPlan());
  ASSERT_TRUE(reference.ok());
  const int64_t peak = db_->memory()->peak();

  db_->config().memory_limit = peak / 24;
  int64_t pair_mem[2] = {0, 0};
  int i = 0;
  for (const int bits : {0, 4}) {
    db_->config().radix_bits = bits;
    auto res = session_->Execute(RootJoinPlan());
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    pair_mem[i++] = MaxPairMem(res->profile);
    ExpectTrackerDrained("pair floor bits=" + std::to_string(bits));
  }
  ASSERT_GT(pair_mem[0], 0);
  ASSERT_GT(pair_mem[1], 0);
  EXPECT_LT(pair_mem[1], pair_mem[0] / 4);
  SetWorkers(0);
  db_->config().radix_bits = -1;
  db_->config().memory_limit = 0;
}

TEST_F(GraceProbeTest, AllJoinTypesSurviveDeferredPartitions) {
  // Every flavor's emit rules must hold when rows detour through the
  // probe spill: matched (semi), unmatched (anti), null-padded
  // (left outer) and NOT-IN poison (anti-nullaware) decisions all move
  // to the pair phase. The probe side carries NULL keys (every 7th fk),
  // which never defer — their SQL semantics resolve without the table.
  {
    auto b = db_->CreateTable(
        "factn",
        Schema({Field("fk", TypeId::kI64, true), Field("val", TypeId::kI64)}),
        Layout::kDsm, 2048);
    for (int i = 0; i < kFactRows; i++) {
      // Half the keys miss the build side (>= kDimRows), some are NULL.
      Value key = i % 7 == 0 ? Value::Null(TypeId::kI64)
                             : Value::I64(i % (2 * kDimRows));
      ASSERT_TRUE(b->AppendRow({key, Value::I64(i)}).ok());
    }
    auto t = b->Finish();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(db_->RegisterTable(std::move(t).value()).ok());
  }
  for (const JoinType type :
       {JoinType::kInner, JoinType::kLeftOuter, JoinType::kSemi,
        JoinType::kAnti, JoinType::kAntiNullAware}) {
    auto plan = [&type] {
      return JoinNode(ScanNode("dim"), ScanNode("factn"), type, {"k"},
                      {"fk"});
    };
    SetWorkers(1);
    db_->config().radix_bits = 0;
    db_->config().memory_limit = 0;
    db_->memory()->ResetPeak();
    auto reference = session_->Execute(plan());
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    SortRows(&reference.value());
    const int64_t peak = db_->memory()->peak();
    for (const int workers : {1, 2}) {
      const std::string what = std::string("join type ") +
                               JoinTypeName(type) +
                               " workers=" + std::to_string(workers);
      SetWorkers(workers);
      db_->config().radix_bits = 2;
      db_->config().memory_limit = peak / 24;
      auto res = session_->Execute(plan());
      ASSERT_TRUE(res.ok()) << what << ": " << res.status().ToString();
      SortRows(&res.value());
      ExpectSameRows(*reference, *res, what);
      ExpectTrackerDrained(what);
    }
  }
  SetWorkers(0);
  db_->config().radix_bits = -1;
  db_->config().memory_limit = 0;
}

// ---------------------------------------------------------------------------
// Dynamic radix re-sizing from observed build cardinality
// ---------------------------------------------------------------------------

TEST_F(MemoryLimitTest, DynamicRadixResizeOnObservedCardinality) {
  // The planner's scan-spine estimate only sees BASE rows; PDT-inserted
  // rows are invisible to it. A 500-row base table falls under the
  // tiny-build cutoff (radix_bits 0), but after inserting 40k rows the
  // drain observes >= kRadixResizeFactor x the estimate and must re-size
  // the merge fan-out instead of concatenating everything on one task.
  constexpr int kBaseRows = 500;
  constexpr int kInserted = 40000;
  {
    auto b = db_->CreateTable(
        "growing",
        Schema({Field("k", TypeId::kI64), Field("tag", TypeId::kI64)}),
        Layout::kDsm, 1024);
    for (int i = 0; i < kBaseRows; i++) {
      ASSERT_TRUE(b->AppendRow({Value::I64(i), Value::I64(i)}).ok());
    }
    auto t = b->Finish();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(db_->RegisterTable(std::move(t).value()).ok());
  }
  UpdatableTable* table;
  {
    auto t = db_->GetTable("growing");
    ASSERT_TRUE(t.ok());
    table = *t;
  }
  auto txn = db_->txn_manager()->Begin(table);
  for (int i = 0; i < kInserted; i++) {
    ASSERT_TRUE(
        txn->Append({Value::I64(kBaseRows + i), Value::I64(i)}).ok());
  }
  ASSERT_TRUE(db_->txn_manager()->Commit(txn.get()).ok());

  auto plan = [] {
    return JoinNode(ScanNode("growing"), ScanNode("fact"), JoinType::kInner,
                    {"k"}, {"fk"});
  };
  // Reference with explicit radix bits (explicit settings disable the
  // re-size, and the tiny-build cutoff only applies under AUTO).
  SetWorkers(4);
  db_->config().radix_bits = 2;
  auto reference = session_->Execute(plan());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_EQ(reference->rows.size(), static_cast<size_t>(kFactRows));

  // AUTO sizing: the estimate (500 base rows) picks 0 bits; the observed
  // 40.5k rows must re-partition the merge.
  db_->config().radix_bits = -1;
  auto res = session_->Execute(plan());
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), static_cast<size_t>(kFactRows));
  int resize_entries = 0, merge_entries = 0;
  for (const OperatorProfile& p : res->profile.operators) {
    if (p.op == "JoinBuildResize") resize_entries++;
    if (p.op == "JoinBuildMerge") merge_entries++;
  }
  EXPECT_GT(resize_entries, 0) << res->profile.ToString();
  EXPECT_EQ(merge_entries,
            1 << RadixBitsForObserved(kBaseRows + kInserted))
      << res->profile.ToString();
  ExpectTrackerDrained("radix resize");
  SetWorkers(0);
  db_->config().radix_bits = -1;
}

TEST_F(MemoryLimitTest, DynamicRadixResizeRefinesNonZeroBits) {
  // The hierarchical-refinement case: the estimate (5000 rows) clears
  // the tiny-build cutoff, so the drain partitions at the planner's
  // width (3 bits for 4 workers) — and the observed 80k rows must
  // REFINE those 8 partitions into 2^RadixBitsForObserved(80k) = 32,
  // each old partition splitting into exactly its own child range.
  // (A resize from b >= 1 re-buckets REAL per-partition data; the
  // 0-bit case above cannot catch a parent/child index mix-up.)
  constexpr int kBaseRows = 5000;
  constexpr int kInserted = 75000;
  {
    auto b = db_->CreateTable(
        "growing2",
        Schema({Field("k", TypeId::kI64), Field("tag", TypeId::kI64)}),
        Layout::kDsm, 1024);
    for (int i = 0; i < kBaseRows; i++) {
      ASSERT_TRUE(b->AppendRow({Value::I64(i), Value::I64(i)}).ok());
    }
    auto t = b->Finish();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(db_->RegisterTable(std::move(t).value()).ok());
  }
  UpdatableTable* table;
  {
    auto t = db_->GetTable("growing2");
    ASSERT_TRUE(t.ok());
    table = *t;
  }
  auto txn = db_->txn_manager()->Begin(table);
  for (int i = 0; i < kInserted; i++) {
    ASSERT_TRUE(
        txn->Append({Value::I64(kBaseRows + i), Value::I64(i)}).ok());
  }
  ASSERT_TRUE(db_->txn_manager()->Commit(txn.get()).ok());

  auto plan = [] {
    return OrderNode(
        JoinNode(ScanNode("growing2"), ScanNode("fact"), JoinType::kInner,
                 {"k"}, {"fk"}),
        {{"val", true}});
  };
  SetWorkers(4);
  db_->config().radix_bits = 2;  // explicit: no resize, the reference
  auto reference = session_->Execute(plan());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_EQ(reference->rows.size(), static_cast<size_t>(kFactRows));

  db_->config().radix_bits = -1;  // AUTO: estimate 5000 -> 3 bits, then
                                  // observed 80k -> refine to 5 bits
  ASSERT_EQ(EffectiveRadixBits(-1, 4), 3);
  ASSERT_EQ(RadixBitsForObserved(kBaseRows + kInserted), 5);
  auto res = session_->Execute(plan());
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  int resize_entries = 0, merge_entries = 0;
  for (const OperatorProfile& p : res->profile.operators) {
    if (p.op == "JoinBuildResize") resize_entries++;
    if (p.op == "JoinBuildMerge") merge_entries++;
  }
  EXPECT_EQ(resize_entries, 1 << 3) << res->profile.ToString();
  EXPECT_EQ(merge_entries, 1 << 5) << res->profile.ToString();
  ExpectSameRows(*reference, *res, "refining resize");
  ExpectTrackerDrained("refining resize");

  // And under memory pressure the refined partitions stay bit-agreed
  // with the probe routing (drain spills at 3 bits are split to 5).
  db_->memory()->ResetPeak();
  db_->config().memory_limit = 1 << 20;
  auto tight = session_->Execute(plan());
  ASSERT_TRUE(tight.ok()) << tight.status().ToString();
  ExpectSameRows(*reference, *tight, "refining resize under pressure");
  ExpectTrackerDrained("refining resize under pressure");
  db_->config().memory_limit = 0;
  SetWorkers(0);
  db_->config().radix_bits = -1;
}

// ---------------------------------------------------------------------------
// Error paths: spilling disabled -> kResourceExhausted, clean unwind
// ---------------------------------------------------------------------------

TEST_F(MemoryLimitTest, SpillDisabledSurfacesResourceExhaustedMidBuild) {
  db_->config().enable_spill = false;
  db_->config().memory_limit = 64 * 1024;
  for (const int workers : {1, 4}) {
    SetWorkers(workers);
    // A root join: the build side (20k rows) blows the limit during the
    // drain; no sort/agg is present to hit it first.
    auto res = session_->Execute(JoinNode(ScanNode("dim"), ScanNode("fact"),
                                          JoinType::kInner, {"k"}, {"fk"}));
    ASSERT_FALSE(res.ok()) << "workers=" << workers;
    EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted)
        << res.status().ToString();
    ExpectTrackerDrained("mid-build workers=" + std::to_string(workers));
  }
  SetWorkers(0);
  db_->config().enable_spill = true;
  db_->config().memory_limit = 0;
}

TEST_F(MemoryLimitTest, SpillDisabledSurfacesResourceExhaustedMidAgg) {
  db_->config().enable_spill = false;
  db_->config().memory_limit = 64 * 1024;
  for (const int workers : {1, 4}) {
    SetWorkers(workers);
    // Grouping 40k rows by the unique val: the group table alone blows
    // the limit mid-drain.
    auto res = session_->Execute(
        AggrNode(ScanNode("fact"), {{"val", Col("val")}},
                 {{AggKind::kCount, nullptr, "n"},
                  {AggKind::kSum, Col("fk"), "s"}}));
    ASSERT_FALSE(res.ok()) << "workers=" << workers;
    EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted)
        << res.status().ToString();
    ExpectTrackerDrained("mid-agg workers=" + std::to_string(workers));
  }
  SetWorkers(0);
  db_->config().enable_spill = true;
  db_->config().memory_limit = 0;
}

TEST_F(MemoryLimitTest, SpillDisabledSurfacesResourceExhaustedMidSort) {
  db_->config().enable_spill = false;
  db_->config().memory_limit = 64 * 1024;
  for (const int workers : {1, 4}) {
    SetWorkers(workers);
    auto res =
        session_->Execute(OrderNode(ScanNode("fact"), {{"val", false}}));
    ASSERT_FALSE(res.ok()) << "workers=" << workers;
    EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted)
        << res.status().ToString();
    ExpectTrackerDrained("mid-sort workers=" + std::to_string(workers));
  }
  SetWorkers(0);
  db_->config().enable_spill = true;
  db_->config().memory_limit = 0;
}

// ---------------------------------------------------------------------------
// Cancellation mid-spill
// ---------------------------------------------------------------------------

TEST_F(MemoryLimitTest, CancellationMidSpillReleasesReservations) {
  // Throttle the simulated disk so spill reloads take real time, then
  // cancel while the out-of-core pipeline is in flight. Whatever phase
  // the cancel lands in — drain, spill write, reload, merge — every
  // reservation must be returned.
  SetWorkers(4);
  db_->config().memory_limit = 512 * 1024;
  db_->disk()->set_bandwidth(8 * 1000 * 1000);
  for (int round = 0; round < 3; round++) {
    CancellationToken token;
    std::thread canceller([&token, round] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10 + 25 * round));
      token.Cancel();
    });
    auto res = session_->Execute(GroupByJoinSortPlan(), &token);
    canceller.join();
    if (!res.ok()) {
      EXPECT_TRUE(res.status().IsCancelled()) << res.status().ToString();
    }
    ExpectTrackerDrained("cancel round " + std::to_string(round));
  }
  db_->disk()->set_bandwidth(0);
  db_->config().memory_limit = 0;
  SetWorkers(0);
}

}  // namespace
}  // namespace x100
