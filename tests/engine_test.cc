// Integration tests: rewriter rules, SQL frontend + cross compiler,
// end-to-end session queries (incl. parallel plans and cancellation),
// TPC-H correctness (vectorized vs Volcano agreement), monitoring.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"
#include "engine/physical_plan.h"
#include "engine/session.h"
#include "exec/sort.h"
#include "rewriter/rewriter.h"
#include "tpch/tpch.h"

namespace x100 {
namespace {

// ---------------------------------------------------------------------------
// Rewriter rules
// ---------------------------------------------------------------------------

TEST(RewriterTest, ExpandsBetween) {
  Rewriter rw;
  auto e = rw.ExpandFunctions(
      Call("between", {Col("x"), Lit(Value::I64(1)), Lit(Value::I64(5))}));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->fn, "and");
  EXPECT_EQ((*e)->args[0]->fn, "ge");
  EXPECT_EQ((*e)->args[1]->fn, "le");
  EXPECT_EQ(rw.stats().at("expand.between"), 1);
}

TEST(RewriterTest, ExpandsCoalesceChain) {
  Rewriter rw;
  auto e = rw.ExpandFunctions(
      Call("coalesce", {Col("a"), Col("b"), Lit(Value::I64(0))}));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->fn, "ifthenelse");
  EXPECT_EQ((*e)->args[0]->fn, "isnotnull");
  EXPECT_EQ((*e)->args[2]->fn, "ifthenelse");  // nested fallback
}

TEST(RewriterTest, ExpandsLeftRightSignAbs) {
  Rewriter rw;
  auto left = rw.ExpandFunctions(
      Call("left", {Col("s"), Lit(Value::I32(3))}));
  ASSERT_TRUE(left.ok());
  EXPECT_EQ((*left)->fn, "substring");
  auto sign = rw.ExpandFunctions(Call("sign", {Col("x")}));
  ASSERT_TRUE(sign.ok());
  EXPECT_EQ((*sign)->fn, "ifthenelse");
  auto abs = rw.ExpandFunctions(Call("abs", {Col("x")}));
  ASSERT_TRUE(abs.ok());
  EXPECT_EQ((*abs)->fn, "ifthenelse");
}

TEST(RewriterTest, FoldsConstants) {
  Rewriter rw;
  ExprPtr e = rw.FoldConstants(
      Mul(Add(Lit(Value::I64(2)), Lit(Value::I64(3))), Lit(Value::I64(4))));
  ASSERT_EQ(e->kind, Expr::Kind::kConst);
  EXPECT_EQ(e->constant.AsI64(), 20);
  // Division by zero must NOT fold (runtime error semantics preserved).
  ExprPtr div = rw.FoldConstants(Div(Lit(Value::I64(1)), Lit(Value::I64(0))));
  EXPECT_EQ(div->kind, Expr::Kind::kCall);
}

TEST(RewriterTest, FoldsStringsAndBooleans) {
  Rewriter rw;
  ExprPtr c = rw.FoldConstants(
      Call("concat", {Lit(Value::Str("foo")), Lit(Value::Str("bar"))}));
  ASSERT_EQ(c->kind, Expr::Kind::kConst);
  EXPECT_EQ(c->constant.AsStr(), "foobar");
  ExprPtr u = rw.FoldConstants(Call("upper", {Lit(Value::Str("x100"))}));
  EXPECT_EQ(u->constant.AsStr(), "X100");
}

TEST(RewriterTest, SimplifiesPredicates) {
  Rewriter rw;
  ExprPtr e = rw.SimplifyPredicate(
      And(Lit(Value::Bool(true)), Gt(Col("x"), Lit(Value::I64(0)))));
  EXPECT_EQ(e->fn, "gt");
  ExprPtr f = rw.SimplifyPredicate(Not(Not(Col("b"))));
  EXPECT_EQ(f->kind, Expr::Kind::kColRef);
  ExprPtr dead = rw.SimplifyPredicate(
      And(Lit(Value::Bool(false)), Gt(Col("x"), Lit(Value::I64(0)))));
  ASSERT_EQ(dead->kind, Expr::Kind::kConst);
  EXPECT_FALSE(dead->constant.AsBool());
}

TEST(RewriterTest, ParallelizesAggregationPipeline) {
  Rewriter rw;
  AlgebraPtr plan = AggrNode(
      SelectNode(ScanNode("t"), Gt(Col("x"), Lit(Value::I64(0)))),
      {}, {{AggKind::kSum, Col("x"), "s"}, {AggKind::kCount, nullptr, "c"}});
  auto out = rw.Parallelize(plan, 4);
  ASSERT_TRUE(out.ok());
  // Final Aggr over Xchg over 4 partial Aggrs.
  EXPECT_EQ((*out)->kind, AlgebraNode::Kind::kAggr);
  ASSERT_EQ((*out)->children.size(), 1u);
  const AlgebraPtr& xchg = (*out)->children[0];
  EXPECT_EQ(xchg->kind, AlgebraNode::Kind::kXchg);
  EXPECT_EQ(xchg->children.size(), 4u);
  // COUNT partials merge via SUM.
  EXPECT_EQ((*out)->aggs[1].kind, AggKind::kSum);
}

TEST(RewriterTest, ParallelizeDecomposesAvg) {
  Rewriter rw;
  AlgebraPtr plan =
      AggrNode(ScanNode("t"), {}, {{AggKind::kAvg, Col("x"), "a"}});
  auto out = rw.Parallelize(plan, 2);
  ASSERT_TRUE(out.ok());
  // Post-project computes a = sum/cnt.
  EXPECT_EQ((*out)->kind, AlgebraNode::Kind::kProject);
  EXPECT_EQ((*out)->items[0].name, "a");
  EXPECT_EQ((*out)->items[0].expr->fn, "div");
}

TEST(RewriterTest, AntiJoinDowngradeWhenNotNullable) {
  Rewriter rw;
  AlgebraPtr join = JoinNode(ScanNode("b"), ScanNode("p"),
                             JoinType::kAntiNullAware, {"k"}, {"k"});
  join->null_aware_candidate = false;  // key proven non-nullable
  auto out = rw.Rewrite(join);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->join_type, JoinType::kAnti);
  // Nullable candidate keeps the expensive flavor.
  AlgebraPtr join2 = JoinNode(ScanNode("b"), ScanNode("p"),
                              JoinType::kAntiNullAware, {"k"}, {"k"});
  join2->null_aware_candidate = true;
  auto out2 = rw.Rewrite(join2);
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ((*out2)->join_type, JoinType::kAntiNullAware);
}

// ---------------------------------------------------------------------------
// SQL frontend + cross compiler
// ---------------------------------------------------------------------------

TEST(SqlParserTest, ParsesSelectWhereGroupOrderLimit) {
  auto rel = ParseSql(
      "SELECT g, SUM(x) AS total FROM t WHERE x > 5 AND s LIKE 'a%' "
      "GROUP BY g ORDER BY total DESC LIMIT 3");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->kind, RelNode::Kind::kSort);
  EXPECT_EQ((*rel)->limit, 3);
  const RelPtr& agg = (*rel)->children[0];
  EXPECT_EQ(agg->kind, RelNode::Kind::kAggregate);
  EXPECT_EQ(agg->agg_funcs.size(), 1u);
  EXPECT_EQ(agg->agg_funcs[0].name, "total");
  const RelPtr& restrict = agg->children[0];
  EXPECT_EQ(restrict->kind, RelNode::Kind::kRestrict);
  EXPECT_EQ(restrict->children[0]->relation, "t");
}

TEST(SqlParserTest, ParsesBetweenInIsNullDates) {
  auto rel = ParseSql(
      "SELECT * FROM t WHERE d BETWEEN DATE '1994-01-01' AND "
      "DATE '1994-12-31' AND k IN (1, 2, 3) AND n IS NOT NULL");
  ASSERT_TRUE(rel.ok());
  const ExprPtr& q = (*rel)->qualification;
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->fn, "and");
}

TEST(SqlParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("FOO BAR").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseSql("SELECT 'unclosed FROM t").ok());
}

TEST(CrossCompilerTest, PrunesScanColumns) {
  auto rel = ParseSql("SELECT a + b AS ab FROM t WHERE c > 0");
  ASSERT_TRUE(rel.ok());
  Schema schema({Field("a", TypeId::kI64), Field("b", TypeId::kI64),
                 Field("c", TypeId::kI64), Field("unused", TypeId::kStr)});
  CrossCompiler cc([&](const std::string&) -> Result<Schema> {
    return schema;
  });
  auto alg = cc.Compile(*rel);
  ASSERT_TRUE(alg.ok());
  const AlgebraNode* scan = alg->get();
  while (scan->kind != AlgebraNode::Kind::kScan) {
    scan = scan->children[0].get();
  }
  EXPECT_EQ(scan->scan_columns.size(), 3u);  // a, b, c — not "unused"
}

// ---------------------------------------------------------------------------
// End-to-end sessions
// ---------------------------------------------------------------------------

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    auto b = db_->CreateTable(
        "emp",
        Schema({Field("id", TypeId::kI64), Field("dept", TypeId::kStr),
                Field("salary", TypeId::kF64),
                Field("bonus", TypeId::kF64, /*nullable=*/true)}),
        Layout::kDsm, 128);
    Rng rng(5);
    const char* depts[] = {"eng", "sales", "ops"};
    for (int i = 0; i < 1000; i++) {
      b->AppendRow({Value::I64(i), Value::Str(depts[i % 3]),
                    Value::F64(1000.0 + i),
                    i % 4 == 0 ? Value::Null(TypeId::kF64)
                               : Value::F64(i * 0.5)})
          .ok();
    }
    auto t = b->Finish();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(db_->RegisterTable(std::move(t).value()).ok());
    session_ = std::make_unique<Session>(db_.get());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> session_;
};

TEST_F(SessionTest, SimpleSelect) {
  auto res = session_->ExecuteSql(
      "SELECT id, salary FROM emp WHERE id < 3 ORDER BY id");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 3u);
  EXPECT_EQ(res->rows[2][0].AsI64(), 2);
  EXPECT_DOUBLE_EQ(res->rows[2][1].AsF64(), 1002.0);
}

TEST_F(SessionTest, GroupByAggregation) {
  auto res = session_->ExecuteSql(
      "SELECT dept, COUNT(*) AS n, AVG(salary) AS avg_sal FROM emp "
      "GROUP BY dept ORDER BY dept");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 3u);
  EXPECT_EQ(res->rows[0][0].AsStr(), "eng");
  EXPECT_EQ(res->rows[0][1].AsI64(), 334);  // ids 0,3,6,…
}

TEST_F(SessionTest, NullableAggregationSkipsNulls) {
  auto res = session_->ExecuteSql("SELECT COUNT(bonus) AS nb FROM emp");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->rows[0][0].AsI64(), 750);  // 250 NULLs skipped
}

TEST_F(SessionTest, WhereWithBetweenAndFunctions) {
  auto res = session_->ExecuteSql(
      "SELECT COUNT(*) AS n FROM emp WHERE salary BETWEEN 1100 AND 1199 "
      "AND upper(dept) = 'ENG'");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  // ids 100..199 with id%3==0: 102, 105, …, 198 -> 33 rows.
  EXPECT_EQ(res->rows[0][0].AsI64(), 33);
}

TEST_F(SessionTest, DivisionByZeroFailsQuery) {
  auto res = session_->ExecuteSql("SELECT salary / (id - id) FROM emp");
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsDivisionByZero());
}

TEST_F(SessionTest, ParallelPlanMatchesSerial) {
  auto serial = session_->ExecuteSql(
      "SELECT dept, SUM(salary) AS s, COUNT(*) AS c, AVG(salary) AS a "
      "FROM emp GROUP BY dept ORDER BY dept");
  ASSERT_TRUE(serial.ok());
  db_->config().max_parallelism = 3;
  auto parallel = session_->ExecuteSql(
      "SELECT dept, SUM(salary) AS s, COUNT(*) AS c, AVG(salary) AS a "
      "FROM emp GROUP BY dept ORDER BY dept");
  db_->config().max_parallelism = 1;
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(serial->rows.size(), parallel->rows.size());
  for (size_t i = 0; i < serial->rows.size(); i++) {
    for (size_t c = 0; c < serial->rows[i].size(); c++) {
      EXPECT_TRUE(serial->rows[i][c].SqlEquals(parallel->rows[i][c]))
          << "row " << i << " col " << c;
    }
  }
}

TEST_F(SessionTest, QueryListingRecordsOutcomes) {
  ASSERT_TRUE(session_->ExecuteSql("SELECT COUNT(*) AS n FROM emp").ok());
  ASSERT_FALSE(session_->ExecuteSql("SELECT nope FROM emp").ok());
  auto queries = db_->queries()->List();
  int finished = 0, failed = 0;
  for (const auto& q : queries) {
    finished += q.state == QueryState::kFinished;
    failed += q.state == QueryState::kFailed;
  }
  EXPECT_GE(finished, 1);
  EXPECT_GE(failed, 1);
  EXPECT_GT(db_->events()->total_logged(), 0);
  EXPECT_GE(db_->counters()->Get("queries.total"), 2);
}

TEST_F(SessionTest, CancellationViaSession) {
  CancellationToken token;
  token.Cancel();  // pre-cancelled: must abort promptly and be recorded
  auto res = session_->ExecuteSql("SELECT COUNT(*) AS n FROM emp", &token);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsCancelled());
  bool saw_cancelled = false;
  for (const auto& q : db_->queries()->List()) {
    saw_cancelled |= q.state == QueryState::kCancelled;
  }
  EXPECT_TRUE(saw_cancelled);
}

// ---------------------------------------------------------------------------
// MinMax pushdown extraction (incl. flipped comparisons)
// ---------------------------------------------------------------------------

TEST(PushdownTest, ExtractsBothComparisonOrientations) {
  Schema schema({Field("x", TypeId::kI64), Field("y", TypeId::kI64)});
  // (x < 7) AND (100 > y): the second conjunct is flipped (`const OP col`)
  // and must mirror to y < 100.
  ExprPtr pred = And(Lt(Col("x"), Lit(Value::I64(7))),
                     Gt(Lit(Value::I64(100)), Col("y")));
  std::vector<ScanPredicate> out;
  ExtractScanPushdown(pred, schema, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].table_col, 0);
  EXPECT_EQ(out[0].op, RangeOp::kLt);
  EXPECT_EQ(out[0].value.AsI64(), 7);
  EXPECT_EQ(out[1].table_col, 1);
  EXPECT_EQ(out[1].op, RangeOp::kLt);  // 100 > y  =>  y < 100
  EXPECT_EQ(out[1].value.AsI64(), 100);
}

TEST(PushdownTest, MirrorsEveryFlippedOperator) {
  Schema schema({Field("x", TypeId::kI64)});
  const struct {
    const char* fn;
    RangeOp expect;
  } cases[] = {{"eq", RangeOp::kEq},
               {"lt", RangeOp::kGt},
               {"le", RangeOp::kGe},
               {"gt", RangeOp::kLt},
               {"ge", RangeOp::kLe}};
  for (const auto& c : cases) {
    std::vector<ScanPredicate> out;
    ExtractScanPushdown(Call(c.fn, {Lit(Value::I64(5)), Col("x")}), schema,
                        &out);
    ASSERT_EQ(out.size(), 1u) << c.fn;
    EXPECT_EQ(out[0].op, c.expect) << c.fn;
  }
}

TEST_F(SessionTest, FlippedComparisonStillSkipsGroups) {
  // emp has 1000 rows in groups of 128 with ascending ids; `100 > id`
  // can only match the first group, so MinMax must skip the rest.
  AlgebraPtr plan = AggrNode(
      SelectNode(ScanNode("emp"), Gt(Lit(Value::I64(100)), Col("id"))), {},
      {{AggKind::kCount, nullptr, "n"}});
  auto res = session_->Execute(std::move(plan));
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows[0][0].AsI64(), 100);
  EXPECT_GT(res->profile.groups_skipped, 0);
}

// ---------------------------------------------------------------------------
// Morsel-driven parallelism + per-operator profiling
// ---------------------------------------------------------------------------

TEST_F(SessionTest, ParallelPlanHasNoStaticPartitions) {
  Rewriter rw({/*expand*/ true, /*fold*/ true, /*simplify*/ true,
               /*parallelism*/ 4, /*anti*/ true});
  AlgebraPtr plan = AggrNode(ScanNode("emp"), {},
                            {{AggKind::kSum, Col("salary"), "s"}});
  auto out = rw.Rewrite(std::move(plan));
  ASSERT_TRUE(out.ok());
  const AlgebraPtr& xchg = (*out)->children[0];
  ASSERT_EQ(xchg->kind, AlgebraNode::Kind::kXchg);
  ASSERT_EQ(xchg->children.size(), 4u);
  // Every producer clone shares ONE morsel group — dynamic handout, no
  // g % parts == part partitioning anywhere in the plan.
  for (const AlgebraPtr& partial : xchg->children) {
    const AlgebraNode* scan = partial.get();
    while (scan->kind != AlgebraNode::Kind::kScan) {
      scan = scan->children[0].get();
    }
    EXPECT_EQ(scan->morsel_group, 0);
  }
  EXPECT_NE((*out)->ToString().find("morsel#0"), std::string::npos);
}

TEST_F(SessionTest, SkewedGroupsDeterministicAcrossWorkerCounts) {
  // `id < 140` makes group 0 heavy (128 matches), group 1 nearly empty
  // (12) and lets MinMax skip groups 2..7 — a skewed morsel workload.
  std::vector<std::vector<Value>> reference;
  for (int workers : {1, 2, 8}) {
    db_->config().max_parallelism = workers;
    db_->config().scheduler_workers = workers;
    AlgebraPtr plan = AggrNode(
        SelectNode(ScanNode("emp"), Lt(Col("id"), Lit(Value::I64(140)))),
        {{"dept", Col("dept")}},
        {{AggKind::kSum, Col("salary"), "s"},
         {AggKind::kCount, nullptr, "c"},
         {AggKind::kAvg, Col("salary"), "a"}});
    auto res = session_->Execute(
        OrderNode(std::move(plan), {{"dept", true}}));
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    if (reference.empty()) {
      reference = res->rows;
      ASSERT_EQ(reference.size(), 3u);
    } else {
      ASSERT_EQ(res->rows.size(), reference.size()) << "workers=" << workers;
      for (size_t i = 0; i < reference.size(); i++) {
        for (size_t c = 0; c < reference[i].size(); c++) {
          EXPECT_TRUE(res->rows[i][c].SqlEquals(reference[i][c]))
              << "workers=" << workers << " row " << i << " col " << c;
        }
      }
    }
  }
  db_->config().max_parallelism = 0;
  db_->config().scheduler_workers = 0;
}

TEST_F(SessionTest, QueryResultCarriesOperatorProfile) {
  db_->config().max_parallelism = 2;
  auto res = session_->ExecuteSql(
      "SELECT dept, SUM(salary) AS s FROM emp GROUP BY dept");
  db_->config().max_parallelism = 1;
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_FALSE(res->profile.empty());
  int scans = 0;
  bool saw_parallel_agg = false;
  int64_t scan_rows = 0;
  for (const OperatorProfile& p : res->profile.operators) {
    if (p.op == "Scan") {
      scans++;
      scan_rows += p.rows;
    }
    saw_parallel_agg |= p.op == "ParallelHashAgg(2)";
  }
  EXPECT_EQ(scans, 2);  // one per pipeline worker chain
  EXPECT_TRUE(saw_parallel_agg);
  EXPECT_EQ(scan_rows, 1000);  // morsels cover the table exactly once
  EXPECT_EQ(res->profile.tuples_scanned, 1000);
  EXPECT_GT(res->profile.wall_ns, 0);
  EXPECT_FALSE(res->profile.ToString().empty());

  // The registry retains the profile for post-hoc inspection.
  bool registry_has_profile = false;
  for (const auto& q : db_->queries()->List()) {
    registry_has_profile |=
        q.state == QueryState::kFinished && !q.profile.empty();
  }
  EXPECT_TRUE(registry_has_profile);
}

TEST_F(SessionTest, PhysicalPlannerIsPluggable) {
  // Copy the default planner and swap the kOrder factory: proof that new
  // physical operators need no engine edits.
  PhysicalPlanner custom = PhysicalPlanner::Default();
  auto hits = std::make_shared<int>(0);
  custom.Register(
      AlgebraNode::Kind::kOrder,
      [hits](const AlgebraPtr& node, PlannerContext* pc,
             const PhysicalPlanner* planner) -> Result<OperatorPtr> {
        (*hits)++;
        OperatorPtr child;
        X100_ASSIGN_OR_RETURN(child, planner->Build(node->children[0], pc));
        std::vector<SortKey> keys;
        for (const AlgebraNode::OrderKey& k : node->order_keys) {
          keys.push_back({child->output_schema().FindField(k.column),
                          k.ascending});
        }
        return OperatorPtr(std::make_unique<SortOp>(
            std::move(child), std::move(keys), node->limit));
      });
  session_->executor()->set_planner(&custom);
  auto res = session_->ExecuteSql(
      "SELECT id FROM emp WHERE id < 5 ORDER BY id");
  session_->executor()->set_planner(&PhysicalPlanner::Default());
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 5u);
  EXPECT_EQ(res->rows[0][0].AsI64(), 0);
  EXPECT_EQ(*hits, 1);
}

// ---------------------------------------------------------------------------
// TPC-H: generation + vectorized-vs-Volcano agreement
// ---------------------------------------------------------------------------

class TpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    ASSERT_TRUE(tpch::Generate(db_, 0.002).ok());  // ~3000 lineitems
    session_ = new Session(db_);
  }
  static void TearDownTestSuite() {
    delete session_;
    delete db_;
    session_ = nullptr;
    db_ = nullptr;
  }
  static Database* db_;
  static Session* session_;
};

Database* TpchTest::db_ = nullptr;
Session* TpchTest::session_ = nullptr;

TEST_F(TpchTest, TablesPopulated) {
  auto li = db_->GetTable("lineitem");
  ASSERT_TRUE(li.ok());
  EXPECT_GT((*li)->visible_rows(), 1000);
  auto ord = db_->GetTable("orders");
  ASSERT_TRUE(ord.ok());
  EXPECT_GT((*ord)->visible_rows(), 100);
  EXPECT_EQ((*db_->GetTable("nation"))->visible_rows(), 25);
  EXPECT_EQ((*db_->GetTable("region"))->visible_rows(), 5);
}

TEST_F(TpchTest, Q1VectorizedMatchesVolcano) {
  auto vec = session_->Execute(tpch::Q1Plan());
  ASSERT_TRUE(vec.ok()) << vec.status().ToString();
  ASSERT_GT(vec->rows.size(), 0u);
  ASSERT_LE(vec->rows.size(), 6u);  // at most |{A,N,R}| x |{F,O}|

  auto rows = tpch::MaterializeRows(db_, "lineitem");
  ASSERT_TRUE(rows.ok());
  auto vol_plan = tpch::Q1Volcano(&*rows);
  ASSERT_TRUE(vol_plan.ok()) << vol_plan.status().ToString();
  auto vol = volcano::Collect(vol_plan->get());
  ASSERT_TRUE(vol.ok());

  ASSERT_EQ(vec->rows.size(), vol->size());
  for (size_t i = 0; i < vol->size(); i++) {
    for (size_t c = 0; c < (*vol)[i].size(); c++) {
      const Value& a = vec->rows[i][c];
      const Value& b = (*vol)[i][c];
      if (a.type() == TypeId::kF64 || b.type() == TypeId::kF64) {
        EXPECT_NEAR(a.AsF64(), b.AsF64(), 1e-6 * (1 + std::abs(a.AsF64())))
            << "row " << i << " col " << c;
      } else {
        EXPECT_TRUE(a.SqlEquals(b)) << "row " << i << " col " << c << ": "
                                    << a.ToString() << " vs " << b.ToString();
      }
    }
  }
}

TEST_F(TpchTest, Q6VectorizedMatchesVolcano) {
  auto vec = session_->Execute(tpch::Q6Plan());
  ASSERT_TRUE(vec.ok()) << vec.status().ToString();
  auto rows = tpch::MaterializeRows(db_, "lineitem");
  ASSERT_TRUE(rows.ok());
  auto vol_plan = tpch::Q6Volcano(&*rows);
  ASSERT_TRUE(vol_plan.ok());
  auto vol = volcano::Collect(vol_plan->get());
  ASSERT_TRUE(vol.ok());
  ASSERT_EQ(vec->rows.size(), 1u);
  ASSERT_EQ(vol->size(), 1u);
  if (vec->rows[0][0].is_null()) {
    EXPECT_TRUE((*vol)[0][0].is_null());
  } else {
    EXPECT_NEAR(vec->rows[0][0].AsF64(), (*vol)[0][0].AsF64(),
                1e-6 * (1 + std::abs(vec->rows[0][0].AsF64())));
  }
}

TEST_F(TpchTest, Q3ProducesRankedResults) {
  auto res = session_->Execute(tpch::Q3Plan());
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_LE(res->rows.size(), 10u);
  // revenue column (index 3) must be descending.
  for (size_t i = 1; i < res->rows.size(); i++) {
    EXPECT_GE(res->rows[i - 1][3].AsF64(), res->rows[i][3].AsF64());
  }
}

TEST_F(TpchTest, Q1ParallelMatchesSerial) {
  auto serial = session_->Execute(tpch::Q1Plan());
  ASSERT_TRUE(serial.ok());
  db_->config().max_parallelism = 2;
  auto parallel = session_->Execute(tpch::Q1Plan());
  db_->config().max_parallelism = 1;
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(serial->rows.size(), parallel->rows.size());
  for (size_t i = 0; i < serial->rows.size(); i++) {
    for (size_t c = 0; c < serial->rows[i].size(); c++) {
      const Value& a = serial->rows[i][c];
      const Value& b = parallel->rows[i][c];
      if (a.type() == TypeId::kF64) {
        EXPECT_NEAR(a.AsF64(), b.AsF64(), 1e-6 * (1 + std::abs(a.AsF64())));
      } else {
        EXPECT_TRUE(a.SqlEquals(b));
      }
    }
  }
}

TEST_F(TpchTest, SqlOverTpch) {
  auto res = session_->ExecuteSql(
      "SELECT l_returnflag, COUNT(*) AS n FROM lineitem "
      "GROUP BY l_returnflag ORDER BY l_returnflag");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_LE(res->rows.size(), 3u);
  int64_t total = 0;
  for (const auto& row : res->rows) total += row[1].AsI64();
  auto li = db_->GetTable("lineitem");
  EXPECT_EQ(total, (*li)->visible_rows());
}

}  // namespace
}  // namespace x100
