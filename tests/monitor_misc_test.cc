// Coverage for the monitoring subsystem, algebra plan printing, SQL
// expression precedence, and TPC-H over the PAX layout.
#include <gtest/gtest.h>

#include "algebra/algebra.h"
#include "engine/session.h"
#include "monitor/monitor.h"
#include "tpch/tpch.h"

namespace x100 {
namespace {

TEST(EventLogTest, RingBufferBounds) {
  EventLog log(4);
  for (int i = 0; i < 10; i++) log.Info("event " + std::to_string(i));
  EXPECT_EQ(log.total_logged(), 10);
  auto recent = log.Recent(100);
  ASSERT_EQ(recent.size(), 4u);  // capacity-bounded
  EXPECT_EQ(recent.back().message, "event 9");
  EXPECT_EQ(recent.front().message, "event 6");
}

TEST(EventLogTest, LevelsPreserved) {
  EventLog log;
  log.Warn("w");
  log.Error("e");
  auto recent = log.Recent(2);
  EXPECT_EQ(recent[0].level, EventLevel::kWarn);
  EXPECT_EQ(recent[1].level, EventLevel::kError);
}

TEST(QueryRegistryTest, LifecycleStates) {
  QueryRegistry reg;
  const int64_t q1 = reg.Begin("SELECT 1");
  const int64_t q2 = reg.Begin("SELECT 2");
  EXPECT_EQ(reg.Running().size(), 2u);
  reg.Finish(q1, Status::OK(), 42);
  reg.Finish(q2, Status::Cancelled("stop"), 7);
  EXPECT_EQ(reg.Running().size(), 0u);
  auto all = reg.List();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].state, QueryState::kFinished);
  EXPECT_EQ(all[0].tuples_scanned, 42);
  EXPECT_EQ(all[1].state, QueryState::kCancelled);
  EXPECT_STREQ(QueryStateName(all[1].state), "CANCELLED");
}

TEST(QueryRegistryTest, FailureRecordsError) {
  QueryRegistry reg;
  const int64_t q = reg.Begin("bad query");
  reg.Finish(q, Status::NotFound("no such table"), 0);
  auto all = reg.List();
  EXPECT_EQ(all[0].state, QueryState::kFailed);
  EXPECT_NE(all[0].error.find("no such table"), std::string::npos);
}

TEST(CountersTest, AccumulateAndSnapshot) {
  Counters c;
  c.Add("io.reads", 3);
  c.Add("io.reads", 4);
  c.Add("commits", 1);
  EXPECT_EQ(c.Get("io.reads"), 7);
  EXPECT_EQ(c.Get("missing"), 0);
  auto snap = c.Snapshot();
  EXPECT_EQ(snap.size(), 2u);
}

TEST(AlgebraPrintTest, PlanTreeRendering) {
  AlgebraPtr plan = OrderNode(
      AggrNode(SelectNode(ScanNode("t"), Gt(Col("x"), Lit(Value::I64(1)))),
               {{"g", Col("g")}}, {{AggKind::kSum, Col("x"), "s"}}),
      {{"s", false}}, 5);
  const std::string s = plan->ToString();
  EXPECT_NE(s.find("TopN(5)"), std::string::npos);
  EXPECT_NE(s.find("Aggr(keys=[g], aggs=[sum:s])"), std::string::npos);
  EXPECT_NE(s.find("Select(gt(x, 1))"), std::string::npos);
  EXPECT_NE(s.find("Scan(t)"), std::string::npos);
}

TEST(AlgebraPrintTest, ExprRendering) {
  ExprPtr e = Add(Col("a"), Mul(Lit(Value::I64(2)), Col("b")));
  EXPECT_EQ(e->ToString(), "add(a, mul(2, b))");
}

TEST(SqlPrecedenceTest, ArithmeticBeforeComparisonBeforeLogic) {
  // a + b * 2 > 10 AND NOT c = 1  parses as
  // and( gt(add(a, mul(b,2)), 10), not(eq(c,1)) )
  auto rel = ParseSql("SELECT * FROM t WHERE a + b * 2 > 10 AND NOT c = 1");
  ASSERT_TRUE(rel.ok());
  const ExprPtr& q = (*rel)->qualification;
  ASSERT_EQ(q->fn, "and");
  EXPECT_EQ(q->args[0]->fn, "gt");
  EXPECT_EQ(q->args[0]->args[0]->fn, "add");
  EXPECT_EQ(q->args[0]->args[0]->args[1]->fn, "mul");
  EXPECT_EQ(q->args[1]->fn, "not");
  EXPECT_EQ(q->args[1]->args[0]->fn, "eq");
}

TEST(SqlPrecedenceTest, ParenthesesOverride) {
  auto rel = ParseSql("SELECT * FROM t WHERE (a + b) * 2 = 10");
  ASSERT_TRUE(rel.ok());
  const ExprPtr& q = (*rel)->qualification;
  EXPECT_EQ(q->fn, "eq");
  EXPECT_EQ(q->args[0]->fn, "mul");
  EXPECT_EQ(q->args[0]->args[0]->fn, "add");
}

TEST(SqlPrecedenceTest, UnaryMinusFoldsIntoLiterals) {
  auto rel = ParseSql("SELECT * FROM t WHERE a > -5 AND b < -2.5");
  ASSERT_TRUE(rel.ok());
  const ExprPtr& q = (*rel)->qualification;
  EXPECT_EQ(q->args[0]->args[1]->constant.AsI64(), -5);
  EXPECT_DOUBLE_EQ(q->args[1]->args[1]->constant.AsF64(), -2.5);
}

TEST(TpchPaxTest, PaxLayoutEndToEnd) {
  // The same TPC-H pipeline over PAX storage must agree with DSM.
  Database dsm_db, pax_db;
  ASSERT_TRUE(tpch::Generate(&dsm_db, 0.001, Layout::kDsm).ok());
  ASSERT_TRUE(tpch::Generate(&pax_db, 0.001, Layout::kPax).ok());
  Session dsm(&dsm_db), pax(&pax_db);
  auto a = dsm.Execute(tpch::Q6Plan());
  auto b = pax.Execute(tpch::Q6Plan());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->rows.size(), 1u);
  if (a->rows[0][0].is_null()) {
    EXPECT_TRUE(b->rows[0][0].is_null());
  } else {
    EXPECT_NEAR(a->rows[0][0].AsF64(), b->rows[0][0].AsF64(), 1e-6);
  }
}

TEST(DatabaseTest, DuplicateTableRejected) {
  Database db;
  auto b1 = db.CreateTable("t", Schema({Field("x", TypeId::kI32)}),
                           Layout::kDsm);
  ASSERT_TRUE(b1->AppendRow({Value::I32(1)}).ok());
  {
    auto t = b1->Finish();
    ASSERT_TRUE(db.RegisterTable(std::move(t).value()).ok());
  }
  auto b2 = db.CreateTable("t", Schema({Field("y", TypeId::kI32)}),
                           Layout::kDsm);
  auto t2 = b2->Finish();
  EXPECT_EQ(db.RegisterTable(std::move(t2).value()).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.GetTable("nope").status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace x100
