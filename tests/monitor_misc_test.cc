// Coverage for the monitoring subsystem (registry, counters, events, the
// wire-format endpoint), algebra plan printing, SQL expression
// precedence, and TPC-H over the PAX layout.
#include <gtest/gtest.h>

#include <unistd.h>

#include "algebra/algebra.h"
#include "engine/session.h"
#include "monitor/monitor.h"
#include "monitor/wire.h"
#include "tpch/tpch.h"

namespace x100 {
namespace {

TEST(EventLogTest, RingBufferBounds) {
  EventLog log(4);
  for (int i = 0; i < 10; i++) log.Info("event " + std::to_string(i));
  EXPECT_EQ(log.total_logged(), 10);
  auto recent = log.Recent(100);
  ASSERT_EQ(recent.size(), 4u);  // capacity-bounded
  EXPECT_EQ(recent.back().message, "event 9");
  EXPECT_EQ(recent.front().message, "event 6");
}

TEST(EventLogTest, LevelsPreserved) {
  EventLog log;
  log.Warn("w");
  log.Error("e");
  auto recent = log.Recent(2);
  EXPECT_EQ(recent[0].level, EventLevel::kWarn);
  EXPECT_EQ(recent[1].level, EventLevel::kError);
}

TEST(QueryRegistryTest, LifecycleStates) {
  QueryRegistry reg;
  const int64_t q1 = reg.Begin("SELECT 1");
  const int64_t q2 = reg.Begin("SELECT 2");
  EXPECT_EQ(reg.Running().size(), 2u);
  reg.Finish(q1, Status::OK(), 42);
  reg.Finish(q2, Status::Cancelled("stop"), 7);
  EXPECT_EQ(reg.Running().size(), 0u);
  auto all = reg.List();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].state, QueryState::kFinished);
  EXPECT_EQ(all[0].tuples_scanned, 42);
  EXPECT_EQ(all[1].state, QueryState::kCancelled);
  EXPECT_STREQ(QueryStateName(all[1].state), "CANCELLED");
}

TEST(QueryRegistryTest, FailureRecordsError) {
  QueryRegistry reg;
  const int64_t q = reg.Begin("bad query");
  reg.Finish(q, Status::NotFound("no such table"), 0);
  auto all = reg.List();
  EXPECT_EQ(all[0].state, QueryState::kFailed);
  EXPECT_NE(all[0].error.find("no such table"), std::string::npos);
}

TEST(QueryRegistryTest, HistoryCapEvictsOldestCompleted) {
  QueryRegistry reg;
  reg.set_history_cap(3);
  // Ten completed queries: only the newest three survive.
  for (int i = 0; i < 10; i++) {
    reg.Finish(reg.Begin("q" + std::to_string(i)), Status::OK(), i);
  }
  auto all = reg.List();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].text, "q7");
  EXPECT_EQ(all[2].text, "q9");
  EXPECT_EQ(reg.evicted(), 7);
}

TEST(QueryRegistryTest, HistoryCapNeverEvictsLiveQueries) {
  QueryRegistry reg;
  reg.set_history_cap(1);
  // Old but still-live entries (queued or running) are immune: eviction
  // skips them and reclaims only terminal entries.
  const int64_t running = reg.Begin("long running");
  const int64_t queued = reg.Begin("still queued", QueryState::kQueued);
  for (int i = 0; i < 5; i++) {
    reg.Finish(reg.Begin("done " + std::to_string(i)), Status::OK(), 0);
  }
  auto all = reg.List();
  ASSERT_EQ(all.size(), 3u);  // running + queued + newest completed
  EXPECT_EQ(all[0].id, running);
  EXPECT_EQ(all[1].id, queued);
  EXPECT_EQ(all[2].text, "done 4");
  // Once they finish, the cap applies to them like anyone else.
  reg.Finish(running, Status::OK(), 0);
  reg.MarkRunning(queued);
  reg.Finish(queued, Status::OK(), 0);
  EXPECT_EQ(reg.List().size(), 1u);  // the newest completed entry
}

TEST(QueryRegistryTest, QueuedStateTransitionsThroughMarkRunning) {
  QueryRegistry reg;
  const int64_t q = reg.Begin("async", QueryState::kQueued);
  EXPECT_EQ(reg.Running().size(), 0u);
  EXPECT_STREQ(QueryStateName(QueryState::kQueued), "QUEUED");
  reg.MarkRunning(q);
  ASSERT_EQ(reg.Running().size(), 1u);
  EXPECT_EQ(reg.Running()[0].state, QueryState::kRunning);
  reg.Finish(q, Status::OK(), 1);
  EXPECT_EQ(reg.List()[0].state, QueryState::kFinished);
}

TEST(CountersTest, AccumulateAndSnapshot) {
  Counters c;
  c.Add("io.reads", 3);
  c.Add("io.reads", 4);
  c.Add("commits", 1);
  EXPECT_EQ(c.Get("io.reads"), 7);
  EXPECT_EQ(c.Get("missing"), 0);
  auto snap = c.Snapshot();
  EXPECT_EQ(snap.size(), 2u);
}

TEST(AlgebraPrintTest, PlanTreeRendering) {
  AlgebraPtr plan = OrderNode(
      AggrNode(SelectNode(ScanNode("t"), Gt(Col("x"), Lit(Value::I64(1)))),
               {{"g", Col("g")}}, {{AggKind::kSum, Col("x"), "s"}}),
      {{"s", false}}, 5);
  const std::string s = plan->ToString();
  EXPECT_NE(s.find("TopN(5)"), std::string::npos);
  EXPECT_NE(s.find("Aggr(keys=[g], aggs=[sum:s])"), std::string::npos);
  EXPECT_NE(s.find("Select(gt(x, 1))"), std::string::npos);
  EXPECT_NE(s.find("Scan(t)"), std::string::npos);
}

TEST(AlgebraPrintTest, ExprRendering) {
  ExprPtr e = Add(Col("a"), Mul(Lit(Value::I64(2)), Col("b")));
  EXPECT_EQ(e->ToString(), "add(a, mul(2, b))");
}

TEST(SqlPrecedenceTest, ArithmeticBeforeComparisonBeforeLogic) {
  // a + b * 2 > 10 AND NOT c = 1  parses as
  // and( gt(add(a, mul(b,2)), 10), not(eq(c,1)) )
  auto rel = ParseSql("SELECT * FROM t WHERE a + b * 2 > 10 AND NOT c = 1");
  ASSERT_TRUE(rel.ok());
  const ExprPtr& q = (*rel)->qualification;
  ASSERT_EQ(q->fn, "and");
  EXPECT_EQ(q->args[0]->fn, "gt");
  EXPECT_EQ(q->args[0]->args[0]->fn, "add");
  EXPECT_EQ(q->args[0]->args[0]->args[1]->fn, "mul");
  EXPECT_EQ(q->args[1]->fn, "not");
  EXPECT_EQ(q->args[1]->args[0]->fn, "eq");
}

TEST(SqlPrecedenceTest, ParenthesesOverride) {
  auto rel = ParseSql("SELECT * FROM t WHERE (a + b) * 2 = 10");
  ASSERT_TRUE(rel.ok());
  const ExprPtr& q = (*rel)->qualification;
  EXPECT_EQ(q->fn, "eq");
  EXPECT_EQ(q->args[0]->fn, "mul");
  EXPECT_EQ(q->args[0]->args[0]->fn, "add");
}

TEST(SqlPrecedenceTest, UnaryMinusFoldsIntoLiterals) {
  auto rel = ParseSql("SELECT * FROM t WHERE a > -5 AND b < -2.5");
  ASSERT_TRUE(rel.ok());
  const ExprPtr& q = (*rel)->qualification;
  EXPECT_EQ(q->args[0]->args[1]->constant.AsI64(), -5);
  EXPECT_DOUBLE_EQ(q->args[1]->args[1]->constant.AsF64(), -2.5);
}

TEST(TpchPaxTest, PaxLayoutEndToEnd) {
  // The same TPC-H pipeline over PAX storage must agree with DSM.
  Database dsm_db, pax_db;
  ASSERT_TRUE(tpch::Generate(&dsm_db, 0.001, Layout::kDsm).ok());
  ASSERT_TRUE(tpch::Generate(&pax_db, 0.001, Layout::kPax).ok());
  Session dsm(&dsm_db), pax(&pax_db);
  auto a = dsm.Execute(tpch::Q6Plan());
  auto b = pax.Execute(tpch::Q6Plan());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->rows.size(), 1u);
  if (a->rows[0][0].is_null()) {
    EXPECT_TRUE(b->rows[0][0].is_null());
  } else {
    EXPECT_NEAR(a->rows[0][0].AsF64(), b->rows[0][0].AsF64(), 1e-6);
  }
}

TEST(WireTest, QueryListRoundTripsProfiles) {
  QueryRegistry reg;
  const int64_t q1 = reg.Begin("SELECT 1");
  QueryProfile prof;
  prof.tuples_scanned = 6001215;
  prof.wall_ns = 123456789;
  prof.simd = "avx2";
  OperatorProfile op;
  op.op = "HashAggr";
  op.rows = 4;
  op.next_ns = 42;
  op.spill_bytes = 1 << 20;
  prof.operators.push_back(op);
  reg.Finish(q1, Status::OK(), prof.tuples_scanned, prof);
  reg.Finish(reg.Begin("bad"), Status::NotFound("no such table"), 0);

  MonitorEndpoint endpoint(&reg, nullptr, nullptr);
  const std::vector<uint8_t> request =
      EncodeRequest(WireOpcode::kListQueries);
  auto response = endpoint.Handle(request.data(), request.size());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  std::vector<QueryInfo> decoded;
  ASSERT_TRUE(DecodeQueryList(*response, &decoded).ok());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].text, "SELECT 1");
  EXPECT_EQ(decoded[0].state, QueryState::kFinished);
  EXPECT_EQ(decoded[0].tuples_scanned, 6001215);
  ASSERT_EQ(decoded[0].profile.operators.size(), 1u);
  EXPECT_EQ(decoded[0].profile.operators[0].op, "HashAggr");
  EXPECT_EQ(decoded[0].profile.operators[0].spill_bytes, 1 << 20);
  EXPECT_EQ(decoded[0].profile.simd, "avx2");
  EXPECT_NE(decoded[1].error.find("no such table"), std::string::npos);
}

TEST(WireTest, CountersAndEventsRoundTrip) {
  Counters counters;
  counters.Add("queries.total", 12);
  counters.Add("spill.bytes", 1 << 30);
  EventLog events;
  events.Log(EventLevel::kWarn, "memory pressure");
  MonitorEndpoint endpoint(nullptr, &counters, &events);

  auto req = EncodeRequest(WireOpcode::kCounters);
  auto resp = endpoint.Handle(req.data(), req.size());
  ASSERT_TRUE(resp.ok());
  std::map<std::string, int64_t> decoded;
  ASSERT_TRUE(DecodeCounters(*resp, &decoded).ok());
  EXPECT_EQ(decoded["queries.total"], 12);
  EXPECT_EQ(decoded["spill.bytes"], 1 << 30);

  req = EncodeRequest(WireOpcode::kEvents);
  resp = endpoint.Handle(req.data(), req.size());
  ASSERT_TRUE(resp.ok());
  std::vector<WireEvent> evs;
  ASSERT_TRUE(DecodeEvents(*resp, &evs).ok());
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].level, EventLevel::kWarn);
  EXPECT_EQ(evs[0].message, "memory pressure");
  EXPECT_GT(evs[0].unix_micros, 0);
}

TEST(WireTest, MalformedFramesRejectedCleanly) {
  QueryRegistry reg;
  MonitorEndpoint endpoint(&reg, nullptr, nullptr);
  // Truncated header.
  const uint8_t junk[] = {0x58, 0x31};
  EXPECT_FALSE(endpoint.Handle(junk, sizeof(junk)).ok());
  // Wrong magic.
  std::vector<uint8_t> req = EncodeRequest(WireOpcode::kListQueries);
  req[0] ^= 0xFF;
  EXPECT_FALSE(endpoint.Handle(req.data(), req.size()).ok());
  // Unknown opcode.
  req = EncodeRequest(static_cast<WireOpcode>(99));
  EXPECT_FALSE(endpoint.Handle(req.data(), req.size()).ok());
  // Response decoders reject truncation at every prefix length.
  req = EncodeRequest(WireOpcode::kCounters);
  auto resp = endpoint.Handle(req.data(), req.size());
  // (kCounters against a null Counters serves an empty listing.)
  req = EncodeRequest(WireOpcode::kListQueries);
  resp = endpoint.Handle(req.data(), req.size());
  ASSERT_TRUE(resp.ok());
  for (size_t cut = 0; cut < resp->size(); cut++) {
    std::vector<uint8_t> partial(resp->begin(), resp->begin() + cut);
    std::vector<QueryInfo> out;
    EXPECT_FALSE(DecodeQueryList(partial, &out).ok()) << "cut=" << cut;
  }
}

TEST(WireTest, FrameIoOverPipeAndOversizeRejection) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(WriteFrame(fds[1], payload).ok());
  std::vector<uint8_t> got;
  ASSERT_TRUE(ReadFrame(fds[0], &got).ok());
  EXPECT_EQ(got, payload);
  // An absurd length prefix is rejected before any allocation.
  const uint32_t huge = 1u << 31;
  ASSERT_EQ(write(fds[1], &huge, sizeof(huge)),
            static_cast<ssize_t>(sizeof(huge)));
  EXPECT_EQ(ReadFrame(fds[0], &got).code(), StatusCode::kIoError);
  // Clean EOF at a frame boundary reads as kNotFound (server loop exits
  // OK); mid-frame truncation is an IO error.
  close(fds[1]);
  EXPECT_EQ(ReadFrame(fds[0], &got).code(), StatusCode::kNotFound);
  close(fds[0]);
}

TEST(DatabaseTest, DuplicateTableRejected) {
  Database db;
  auto b1 = db.CreateTable("t", Schema({Field("x", TypeId::kI32)}),
                           Layout::kDsm);
  ASSERT_TRUE(b1->AppendRow({Value::I32(1)}).ok());
  {
    auto t = b1->Finish();
    ASSERT_TRUE(db.RegisterTable(std::move(t).value()).ok());
  }
  auto b2 = db.CreateTable("t", Schema({Field("y", TypeId::kI32)}),
                           Layout::kDsm);
  auto t2 = b2->Finish();
  EXPECT_EQ(db.RegisterTable(std::move(t2).value()).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.GetTable("nope").status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace x100
