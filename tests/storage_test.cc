// Storage tests: simulated disk, buffer manager, PAX/DSM table round-trips,
// MinMax pushdown, NULL chunks, and cooperative-scan scheduling policies.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <thread>

#include "common/rng.h"
#include "engine/database.h"
#include "pdt/transaction.h"
#include "pdt/view.h"
#include "storage/buffer_manager.h"
#include "storage/catalog.h"
#include "storage/coop_scan.h"
#include "storage/file_block_device.h"
#include "storage/simulated_disk.h"
#include "storage/table.h"

namespace x100 {
namespace {

TEST(SimulatedDiskTest, WriteReadRoundTrip) {
  SimulatedDisk disk;
  std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  BlockId id = *disk.WriteBlock(data);
  auto r = disk.ReadBlock(id);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data);
  EXPECT_EQ(disk.blocks_read(), 1);
  EXPECT_EQ(disk.bytes_read(), 5);
}

TEST(SimulatedDiskTest, OutOfRangeIsIoError) {
  SimulatedDisk disk;
  EXPECT_EQ(disk.ReadBlock(99).status().code(), StatusCode::kIoError);
}

TEST(SimulatedDiskTest, BandwidthThrottles) {
  SimulatedDisk disk(1 << 20);  // 1 MiB/s
  std::vector<uint8_t> data(64 * 1024);
  BlockId id = *disk.WriteBlock(data);
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(disk.ReadBlock(id).ok());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // 64 KiB at 1 MiB/s = 62.5 ms.
  EXPECT_GE(std::chrono::duration<double>(elapsed).count(), 0.05);
}

TEST(SimulatedDiskTest, CancellationInterruptsIoWait) {
  SimulatedDisk disk(1 << 16);  // 64 KiB/s: the read below takes ~1 s
  std::vector<uint8_t> data(64 * 1024);
  BlockId id = *disk.WriteBlock(data);
  CancellationToken token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.Cancel();
  });
  const auto t0 = std::chrono::steady_clock::now();
  auto r = disk.ReadBlock(id, &token);
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  canceller.join();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_LT(elapsed, 0.5);  // far less than the 1 s IO cost
}

TEST(BufferManagerTest, CachesAndCountsHits) {
  SimulatedDisk disk;
  BufferManager bm(&disk, 4);
  BlockId id = *disk.WriteBlock({7, 7, 7});
  ASSERT_TRUE(bm.GetBlock(id).ok());
  ASSERT_TRUE(bm.GetBlock(id).ok());
  EXPECT_EQ(bm.misses(), 1);
  EXPECT_EQ(bm.hits(), 1);
  EXPECT_EQ(disk.blocks_read(), 1);
}

TEST(BufferManagerTest, EvictsLruBeyondCapacity) {
  SimulatedDisk disk;
  BufferManager bm(&disk, 2);
  BlockId a = *disk.WriteBlock({1});
  BlockId b = *disk.WriteBlock({2});
  BlockId c = *disk.WriteBlock({3});
  ASSERT_TRUE(bm.GetBlock(a).ok());
  ASSERT_TRUE(bm.GetBlock(b).ok());
  ASSERT_TRUE(bm.GetBlock(c).ok());  // evicts a
  EXPECT_EQ(bm.size(), 2);
  EXPECT_FALSE(bm.Contains(a));
  EXPECT_TRUE(bm.Contains(b));
  EXPECT_TRUE(bm.Contains(c));
}

TEST(BufferManagerTest, SharedPtrSurvivesEviction) {
  SimulatedDisk disk;
  BufferManager bm(&disk, 1);
  BlockId a = *disk.WriteBlock({42});
  auto blk = bm.GetBlock(a);
  ASSERT_TRUE(blk.ok());
  BlockId b = *disk.WriteBlock({43});
  ASSERT_TRUE(bm.GetBlock(b).ok());  // evicts a
  EXPECT_EQ((**blk)[0], 42);         // still readable
}

TEST(BufferManagerTest, TinyPoolConcurrentHammerKeepsAccountingExact) {
  // Capacity 0: every block is evicted the moment its last pin drops, so
  // loaders, single-flight waiters and their re-install paths constantly
  // collide on the same id. A loader that installs over an entry a waiter
  // re-installed while its IO ran would double-count bytes and underflow
  // the other side's pin count — the end state below would be nonzero.
  SimulatedDisk disk;
  BufferManager bm(&disk, 0);
  BlockId id = *disk.WriteBlock({1, 2, 3, 4});
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; i++) {
        auto pin = bm.PinBlock(id);
        if (!pin.ok()) {
          EXPECT_TRUE(pin.ok()) << pin.status().ToString();
          return;
        }
        EXPECT_EQ(pin->data()[0], 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bm.pinned_bytes(), 0);
  EXPECT_EQ(bm.bytes_cached(), 0);
  EXPECT_EQ(bm.size(), 0);
  // Every PinBlock call is counted exactly once: a call is a hit, a miss,
  // or a single-flight wait — never zero of them, never two.
  EXPECT_EQ(bm.hits() + bm.misses() + bm.single_flight_waits(), 8 * 500);
}

TEST(BufferManagerTest, InvalidateDropsBlock) {
  SimulatedDisk disk;
  BufferManager bm(&disk, 4);
  BlockId a = *disk.WriteBlock({1});
  ASSERT_TRUE(bm.GetBlock(a).ok());
  bm.Invalidate(a);
  EXPECT_FALSE(bm.Contains(a));
  ASSERT_TRUE(bm.GetBlock(a).ok());
  EXPECT_EQ(bm.misses(), 2);
}

// ---------------------------------------------------------------------------
// Table round-trips
// ---------------------------------------------------------------------------

Schema MixedSchema() {
  return Schema({Field("id", TypeId::kI64),
                 Field("qty", TypeId::kI32),
                 Field("price", TypeId::kF64),
                 Field("flag", TypeId::kStr),
                 Field("ship", TypeId::kDate),
                 Field("note", TypeId::kStr, /*nullable=*/true)});
}

std::unique_ptr<Table> BuildMixedTable(SimulatedDisk* disk, Layout layout,
                                       int rows, int group_rows) {
  TableBuilder b("t", MixedSchema(), layout, disk, group_rows);
  Rng rng(99);
  for (int i = 0; i < rows; i++) {
    std::vector<Value> row;
    row.push_back(Value::I64(i));
    row.push_back(Value::I32(static_cast<int32_t>(rng.Uniform(1, 50))));
    row.push_back(Value::F64(static_cast<double>(i % 1000) / 10.0));
    row.push_back(Value::Str(i % 3 == 0 ? "A" : (i % 3 == 1 ? "N" : "R")));
    row.push_back(Value::Date(MakeDate(1994, 1, 1) + i % 2000));
    row.push_back(i % 5 == 0 ? Value::Null(TypeId::kStr)
                             : Value::Str("note-" + std::to_string(i % 7)));
    EXPECT_TRUE(b.AppendRow(row).ok());
  }
  auto t = b.Finish();
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

class TableLayoutTest : public ::testing::TestWithParam<Layout> {};

TEST_P(TableLayoutTest, RoundTripAllColumns) {
  SimulatedDisk disk;
  auto table = BuildMixedTable(&disk, GetParam(), 2500, 1000);
  EXPECT_EQ(table->num_rows(), 2500);
  EXPECT_EQ(table->num_groups(), 3);  // 1000 + 1000 + 500
  EXPECT_EQ(table->group(2).rows, 500u);
  EXPECT_EQ(table->group(1).first_sid, 1000);

  BufferManager bm(&disk, 64 << 20);
  TableReader reader(table.get(), &bm);
  int64_t row = 0;
  for (int g = 0; g < table->num_groups(); g++) {
    const int n = static_cast<int>(table->group(g).rows);
    std::vector<int64_t> ids(n);
    std::vector<int32_t> qty(n);
    std::vector<double> price(n);
    std::vector<StrRef> flag(n), note(n);
    std::vector<int32_t> ship(n);
    std::vector<uint8_t> note_nulls(n);
    StringHeap heap;
    ASSERT_TRUE(reader.ReadColumn(g, 0, ids.data(), nullptr, nullptr).ok());
    ASSERT_TRUE(reader.ReadColumn(g, 1, qty.data(), nullptr, nullptr).ok());
    ASSERT_TRUE(reader.ReadColumn(g, 2, price.data(), nullptr, nullptr).ok());
    ASSERT_TRUE(reader.ReadColumn(g, 3, flag.data(), nullptr, &heap).ok());
    ASSERT_TRUE(reader.ReadColumn(g, 4, ship.data(), nullptr, nullptr).ok());
    ASSERT_TRUE(
        reader.ReadColumn(g, 5, note.data(), note_nulls.data(), &heap).ok());
    for (int i = 0; i < n; i++, row++) {
      ASSERT_EQ(ids[i], row);
      EXPECT_EQ(price[i], static_cast<double>(row % 1000) / 10.0);
      const char* expect_flag =
          row % 3 == 0 ? "A" : (row % 3 == 1 ? "N" : "R");
      EXPECT_EQ(flag[i].view(), expect_flag);
      EXPECT_EQ(ship[i], MakeDate(1994, 1, 1) + row % 2000);
      if (row % 5 == 0) {
        EXPECT_EQ(note_nulls[i], 1);
      } else {
        EXPECT_EQ(note_nulls[i], 0);
        EXPECT_EQ(note[i].view(), "note-" + std::to_string(row % 7));
      }
    }
  }
}

TEST_P(TableLayoutTest, CompressionShrinksData) {
  SimulatedDisk disk;
  auto table = BuildMixedTable(&disk, GetParam(), 10000, 4096);
  // Raw width: 8+4+8+16+4+16 (+null byte) ≈ 57 B/row; expect real savings
  // from PFOR ids (delta), PDICT flags, RLE nulls.
  EXPECT_LT(table->compressed_bytes(), 10000 * 40);
  EXPECT_GT(table->compressed_bytes(), 0);
}

TEST_P(TableLayoutTest, MinMaxPruning) {
  SimulatedDisk disk;
  auto table = BuildMixedTable(&disk, GetParam(), 2000, 1000);
  // ids column: group 0 covers [0,999], group 1 [1000,1999].
  EXPECT_TRUE(table->GroupMayMatch(0, 0, RangeOp::kEq, Value::I64(500)));
  EXPECT_FALSE(table->GroupMayMatch(0, 0, RangeOp::kEq, Value::I64(1500)));
  EXPECT_TRUE(table->GroupMayMatch(1, 0, RangeOp::kEq, Value::I64(1500)));
  EXPECT_FALSE(table->GroupMayMatch(0, 0, RangeOp::kGt, Value::I64(1200)));
  EXPECT_TRUE(table->GroupMayMatch(1, 0, RangeOp::kGt, Value::I64(1200)));
  EXPECT_FALSE(table->GroupMayMatch(1, 0, RangeOp::kLt, Value::I64(800)));
  EXPECT_TRUE(table->GroupMayMatch(0, 0, RangeOp::kLe, Value::I64(0)));
  // Strings: always conservative.
  EXPECT_TRUE(table->GroupMayMatch(0, 3, RangeOp::kEq, Value::Str("A")));
}

INSTANTIATE_TEST_SUITE_P(Layouts, TableLayoutTest,
                         ::testing::Values(Layout::kDsm, Layout::kPax),
                         [](const ::testing::TestParamInfo<Layout>& info) {
                           return info.param == Layout::kDsm ? "DSM" : "PAX";
                         });

TEST(TableLayoutIoTest, NarrowScanReadsLessOnDsm) {
  // DSM: reading 1 of 6 columns touches only that column's blocks.
  // PAX: the whole group region is the IO unit.
  SimulatedDisk dsm_disk, pax_disk;
  auto dsm = BuildMixedTable(&dsm_disk, Layout::kDsm, 20000, 8192);
  auto pax = BuildMixedTable(&pax_disk, Layout::kPax, 20000, 8192);
  BufferManager dsm_bm(&dsm_disk, 64 << 20), pax_bm(&pax_disk, 64 << 20);
  TableReader dsm_r(dsm.get(), &dsm_bm), pax_r(pax.get(), &pax_bm);
  dsm_disk.ResetStats();
  pax_disk.ResetStats();
  std::vector<int32_t> qty(8192);
  for (int g = 0; g < dsm->num_groups(); g++) {
    ASSERT_TRUE(dsm_r.ReadColumn(g, 1, qty.data(), nullptr, nullptr).ok());
    ASSERT_TRUE(pax_r.ReadColumn(g, 1, qty.data(), nullptr, nullptr).ok());
  }
  EXPECT_LT(dsm_disk.bytes_read(), pax_disk.bytes_read());
}

TEST(TableLayoutIoTest, WideScanAmortizesOnPax) {
  // Reading *all* columns of a group: PAX pays one region, further columns
  // are cache hits.
  SimulatedDisk disk;
  auto pax = BuildMixedTable(&disk, Layout::kPax, 8192, 8192);
  BufferManager bm(&disk, 64 << 20);
  TableReader r(pax.get(), &bm);
  disk.ResetStats();
  std::vector<int64_t> ids(8192);
  std::vector<int32_t> qty(8192);
  std::vector<double> price(8192);
  ASSERT_TRUE(r.ReadColumn(0, 0, ids.data(), nullptr, nullptr).ok());
  const int64_t after_first = disk.blocks_read();
  ASSERT_TRUE(r.ReadColumn(0, 1, qty.data(), nullptr, nullptr).ok());
  ASSERT_TRUE(r.ReadColumn(0, 2, price.data(), nullptr, nullptr).ok());
  EXPECT_EQ(disk.blocks_read(), after_first);  // all hits
}

TEST(TableBuilderTest, RejectsArityMismatch) {
  SimulatedDisk disk;
  TableBuilder b("t", Schema({Field("a", TypeId::kI32)}), Layout::kDsm,
                 &disk);
  EXPECT_EQ(b.AppendRow({Value::I32(1), Value::I32(2)}).code(),
            StatusCode::kInvalidArgument);
}

TEST(TableBuilderTest, RejectsNullInNonNullable) {
  SimulatedDisk disk;
  TableBuilder b("t", Schema({Field("a", TypeId::kI32)}), Layout::kDsm,
                 &disk);
  EXPECT_EQ(b.AppendRow({Value::Null(TypeId::kI32)}).code(),
            StatusCode::kInvalidArgument);
}

TEST(TableBuilderTest, EmptyTable) {
  SimulatedDisk disk;
  TableBuilder b("t", Schema({Field("a", TypeId::kI32)}), Layout::kDsm,
                 &disk);
  auto t = b.Finish();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_rows(), 0);
  EXPECT_EQ((*t)->num_groups(), 0);
}

// ---------------------------------------------------------------------------
// Scan scheduling policies
// ---------------------------------------------------------------------------

TEST(SequentialSchedulerTest, DeliversInOrder) {
  SequentialScheduler s(4);
  int q = s.Register(5);
  for (int g = 0; g < 5; g++) EXPECT_EQ(s.NextGroup(q), g);
  EXPECT_EQ(s.NextGroup(q), -1);
  s.Unregister(q);
}

TEST(RelevanceSchedulerTest, SingleQueryGetsAllGroupsOnce) {
  RelevanceScheduler s(4);
  int q = s.Register(10);
  std::set<int> got;
  for (int i = 0; i < 10; i++) {
    int g = s.NextGroup(q);
    ASSERT_GE(g, 0);
    EXPECT_TRUE(got.insert(g).second) << "duplicate group " << g;
  }
  EXPECT_EQ(s.NextGroup(q), -1);
  EXPECT_EQ(got.size(), 10u);
  EXPECT_EQ(s.chunk_loads(), 10);
}

TEST(RelevanceSchedulerTest, ConcurrentQueriesShareLoads) {
  // Two queries over the same 20 groups, interleaved: ABM must load each
  // group ~once (40 deliveries, ~20 loads).
  RelevanceScheduler s(8);
  int q1 = s.Register(20);
  int q2 = s.Register(20);
  int done1 = 0, done2 = 0;
  while (done1 < 20 || done2 < 20) {
    if (done1 < 20 && s.NextGroup(q1) >= 0) done1++;
    if (done2 < 20 && s.NextGroup(q2) >= 0) done2++;
  }
  EXPECT_LE(s.chunk_loads(), 24);  // near-perfect sharing
  s.Unregister(q1);
  s.Unregister(q2);
}

TEST(RelevanceSchedulerTest, StaggeredQueryJoinsInFlight) {
  RelevanceScheduler s(6);
  int q1 = s.Register(12);
  // q1 consumes half the table first.
  for (int i = 0; i < 6; i++) ASSERT_GE(s.NextGroup(q1), 0);
  // q2 arrives late; it should first consume cached chunks.
  int q2 = s.Register(12);
  const int64_t loads_before = s.chunk_loads();
  std::set<int> q2_first;
  for (int i = 0; i < 4; i++) q2_first.insert(s.NextGroup(q2));
  EXPECT_EQ(s.chunk_loads(), loads_before);  // all served from cache
  // Finish both.
  while (s.NextGroup(q1) >= 0) {
  }
  while (s.NextGroup(q2) >= 0) {
  }
  EXPECT_LT(s.chunk_loads(), 24);  // << 2 full passes
}

TEST(RelevanceSchedulerTest, SequentialBaselineReloadsForStaggered) {
  // Same staggered workload under the sequential-LRU estimate: close to
  // two full passes when the pool is smaller than the table.
  SequentialScheduler s(6);
  int q1 = s.Register(12);
  for (int i = 0; i < 6; i++) ASSERT_GE(s.NextGroup(q1), 0);
  int q2 = s.Register(12);
  while (s.NextGroup(q1) >= 0) {
  }
  while (s.NextGroup(q2) >= 0) {
  }
  EXPECT_GE(s.chunk_loads(), 18);
}

TEST(RelevanceSchedulerTest, CacheRespectsCapacity) {
  RelevanceScheduler s(3);
  int q = s.Register(10);
  for (int i = 0; i < 10; i++) s.NextGroup(q);
  EXPECT_LE(s.CachedGroups().size(), 3u);
}

TEST(RelevanceSchedulerTest, UnregisterDropsInterest) {
  RelevanceScheduler s(4);
  int q1 = s.Register(8);
  int q2 = s.Register(8);
  s.Unregister(q2);
  std::set<int> got;
  int g;
  while ((g = s.NextGroup(q1)) >= 0) got.insert(g);
  EXPECT_EQ(got.size(), 8u);
}


// ---------------------------------------------------------------------------
// Buffer pool contract: byte budget, pins, single-flight
// ---------------------------------------------------------------------------

TEST(BufferPoolContractTest, CapacityIsAccountedInBytes) {
  SimulatedDisk disk;
  // 100-byte budget: two 40-byte blocks fit, a third forces an eviction
  // even though the old block-count capacity (256) never would have.
  BufferManager bm(&disk, 100);
  BlockId a = *disk.WriteBlock(std::vector<uint8_t>(40, 1));
  BlockId b = *disk.WriteBlock(std::vector<uint8_t>(40, 2));
  BlockId c = *disk.WriteBlock(std::vector<uint8_t>(40, 3));
  ASSERT_TRUE(bm.GetBlock(a).ok());
  ASSERT_TRUE(bm.GetBlock(b).ok());
  EXPECT_EQ(bm.bytes_cached(), 80);
  EXPECT_EQ(bm.evictions(), 0);
  ASSERT_TRUE(bm.GetBlock(c).ok());  // 120 > 100: evicts LRU (a)
  EXPECT_EQ(bm.evictions(), 1);
  EXPECT_FALSE(bm.Contains(a));
  EXPECT_TRUE(bm.Contains(b));
  EXPECT_TRUE(bm.Contains(c));
  EXPECT_LE(bm.bytes_cached(), 100);
}

TEST(BufferPoolContractTest, PinnedBlocksAreImmuneToEviction) {
  SimulatedDisk disk;
  BufferManager bm(&disk, 10);
  BlockId a = *disk.WriteBlock(std::vector<uint8_t>(8, 1));
  auto pin = bm.PinBlock(a);
  ASSERT_TRUE(pin.ok());
  EXPECT_EQ(bm.pinned_bytes(), 8);
  // Flood the pool: every new block overflows the budget, but the pinned
  // block must survive every eviction pass.
  for (int i = 0; i < 16; i++) {
    BlockId x = *disk.WriteBlock(std::vector<uint8_t>(8, uint8_t(i)));
    ASSERT_TRUE(bm.GetBlock(x).ok());
    ASSERT_TRUE(bm.Contains(a));
    // The documented invariant: resident bytes never exceed the budget
    // plus the pinned working set.
    EXPECT_LE(bm.bytes_cached(), bm.capacity_bytes() + bm.pinned_bytes());
  }
  EXPECT_EQ((*pin).data()[0], 1);  // pinned bytes still intact
  pin->Release();
  EXPECT_EQ(bm.pinned_bytes(), 0);
  // Unpinned now: the next overflow may evict it.
  BlockId y = *disk.WriteBlock(std::vector<uint8_t>(8, 99));
  ASSERT_TRUE(bm.GetBlock(y).ok());
  EXPECT_FALSE(bm.Contains(a));
}

TEST(BufferPoolContractTest, ZeroCapacityPoolStillServesReads) {
  // Regression: the old EvictIfNeeded could evict the entry it had just
  // inserted and then dereference the erased iterator. A zero-byte pool
  // makes every insert immediately evictable; pin-during-insert must keep
  // the bytes alive until the caller has them.
  SimulatedDisk disk;
  BufferManager bm(&disk, 0);
  BlockId a = *disk.WriteBlock({11, 22, 33});
  auto blk = bm.GetBlock(a);
  ASSERT_TRUE(blk.ok());
  EXPECT_EQ((**blk)[2], 33);
  EXPECT_FALSE(bm.Contains(a));  // evicted the moment the pin dropped
  // Every read is a miss, but always a correct one.
  auto again = bm.GetBlock(a);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((**again)[0], 11);
  EXPECT_EQ(bm.misses(), 2);
  EXPECT_EQ(bm.bytes_cached(), 0);
}

TEST(BufferPoolContractTest, TinyCapacityPinOverflowsBudgetSafely) {
  SimulatedDisk disk;
  BufferManager bm(&disk, 1);  // smaller than any block
  BlockId a = *disk.WriteBlock(std::vector<uint8_t>(64, 5));
  auto pin = bm.PinBlock(a);
  ASSERT_TRUE(pin.ok());
  EXPECT_EQ(pin->data().size(), 64u);
  EXPECT_EQ(bm.bytes_cached(), 64);  // over budget, but pinned
  pin->Release();
  EXPECT_EQ(bm.bytes_cached(), 0);  // evicted once unpinned
}

TEST(BufferPoolContractTest, StaleUnpinAfterInvalidateIsHarmless) {
  SimulatedDisk disk;
  BufferManager bm(&disk, 1 << 20);
  BlockId a = *disk.WriteBlock({1, 2, 3});
  auto pin = bm.PinBlock(a);
  ASSERT_TRUE(pin.ok());
  bm.Invalidate(a);  // drops the entry even though it is pinned
  // Reload installs a new generation under the same id.
  ASSERT_TRUE(bm.GetBlock(a).ok());
  const int64_t cached = bm.bytes_cached();
  pin->Release();  // stale generation: must not unpin the new entry
  EXPECT_EQ(bm.bytes_cached(), cached);
  EXPECT_EQ(bm.pinned_bytes(), 0);
}

TEST(BufferPoolContractTest, SingleFlightCoalescesConcurrentMisses) {
  // 16 threads hammer one uncached block through a slow device. The fix
  // under test: exactly ONE device read happens; 15 threads wait on the
  // in-flight load instead of issuing their own.
  SimulatedDisk disk(1 << 20);  // 1 MiB/s -> the 64 KiB read takes ~60 ms
  BufferManager bm(&disk, 1 << 20);
  BlockId a = *disk.WriteBlock(std::vector<uint8_t>(64 * 1024, 7));
  constexpr int kThreads = 16;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; i++) {
    threads.emplace_back([&] {
      auto blk = bm.GetBlock(a);
      if (blk.ok() && (**blk)[0] == 7) ok_count.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kThreads);
  EXPECT_EQ(disk.blocks_read(), 1);  // the thundering herd made ONE read
  EXPECT_EQ(bm.misses(), 1);
  EXPECT_EQ(bm.hits() + bm.single_flight_waits(), kThreads - 1);
  // Exact accounting: all 16 calls counted, each exactly once.
  EXPECT_EQ(bm.hits() + bm.misses() + bm.single_flight_waits(), kThreads);
}

TEST(BufferPoolContractTest, ScanPeakStaysWithinBudgetPlusPins) {
  // Dataset >> pool: a full-table read through a pool sized at a fraction
  // of the data must (a) return correct bytes and (b) never hold more
  // than budget + one pinned working set resident.
  SimulatedDisk disk;
  auto table = BuildMixedTable(&disk, Layout::kPax, 20000, 1024);
  int64_t data_bytes = 0;
  for (int g = 0; g < table->num_groups(); g++) {
    std::vector<BlockId> ids;
    Table::AppendGroupBlockIds(table->group(g), &ids);
    for (BlockId b : ids) {
      data_bytes += static_cast<int64_t>(disk.ReadBlock(b)->size());
    }
  }
  const int64_t pool = data_bytes / 4;
  ASSERT_GT(pool, 0);
  BufferManager bm(&disk, pool);
  TableReader reader(table.get(), &bm);
  StringHeap heap;
  for (int g = 0; g < table->num_groups(); g++) {
    const int n = static_cast<int>(table->group(g).rows);
    std::vector<int64_t> ids(n);
    std::vector<StrRef> note(n);
    std::vector<uint8_t> nulls(n);
    ASSERT_TRUE(reader.ReadColumn(g, 0, ids.data(), nullptr, nullptr).ok());
    ASSERT_TRUE(
        reader.ReadColumn(g, 5, note.data(), nulls.data(), &heap).ok());
    EXPECT_EQ(ids[0], table->group(g).first_sid);
  }
  EXPECT_GT(bm.evictions(), 0);  // the pool actually cycled
  EXPECT_LE(bm.peak_bytes(), pool + bm.peak_pinned_bytes());
}

// ---------------------------------------------------------------------------
// Read-ahead: background prefetch through the pool
// ---------------------------------------------------------------------------

TEST(PrefetchTest, PrefetchInstallsUnpinnedAndDemandCountsHit) {
  SimulatedDisk disk;
  BufferManager bm(&disk, 1 << 20);
  BlockId a = *disk.WriteBlock(std::vector<uint8_t>(64 * 1024, 9));
  bm.Prefetch(a);
  bm.DrainPrefetches();
  EXPECT_EQ(bm.prefetch_issued(), 1);
  EXPECT_TRUE(bm.Contains(a));
  EXPECT_EQ(bm.pinned_bytes(), 0);  // installed unpinned
  EXPECT_EQ(bm.prefetch_inflight(), 1);  // resident but not yet demanded
  // A second Prefetch of a resident block is a no-op, not a new issue.
  bm.Prefetch(a);
  bm.DrainPrefetches();
  EXPECT_EQ(bm.prefetch_issued(), 1);
  // The demand read is a pool hit — no second device read.
  auto pin = bm.PinBlock(a);
  ASSERT_TRUE(pin.ok());
  EXPECT_EQ(pin->data()[0], 9);
  EXPECT_EQ(disk.blocks_read(), 1);
  EXPECT_EQ(bm.hits(), 1);
  EXPECT_EQ(bm.prefetch_hits(), 1);
  EXPECT_EQ(bm.prefetch_inflight(), 0);
}

TEST(PrefetchTest, ZeroBudgetDisablesPrefetch) {
  SimulatedDisk disk;
  BufferManager bm(&disk, 1 << 20);
  bm.set_prefetch_budget_bytes(0);
  EXPECT_FALSE(bm.prefetch_enabled());
  BlockId a = *disk.WriteBlock({1});
  bm.Prefetch(a);
  bm.DrainPrefetches();
  EXPECT_EQ(bm.prefetch_issued(), 0);
  EXPECT_EQ(disk.blocks_read(), 0);
  EXPECT_FALSE(bm.Contains(a));
}

TEST(PrefetchTest, DemandDuringInflightPrefetchMakesOneRead) {
  // Slow device: the demand lands while the prefetch read is (at most)
  // in flight. Whether the demand adopts the running read, claims a
  // not-yet-started one, or finds the block already resident, exactly
  // one device read happens and the prefetch counts as a hit.
  SimulatedDisk disk(1 << 20);  // 1 MiB/s -> the 64 KiB read takes ~60 ms
  BufferManager bm(&disk, 1 << 20);
  BlockId a = *disk.WriteBlock(std::vector<uint8_t>(64 * 1024, 5));
  bm.Prefetch(a);
  auto pin = bm.PinBlock(a);
  ASSERT_TRUE(pin.ok());
  EXPECT_EQ(pin->data()[0], 5);
  bm.DrainPrefetches();
  EXPECT_EQ(disk.blocks_read(), 1);
  EXPECT_EQ(bm.prefetch_issued(), 1);
  EXPECT_EQ(bm.prefetch_hits(), 1);
  EXPECT_EQ(bm.prefetch_wasted(), 0);
  // The one PinBlock call was counted exactly once, whichever path it took.
  EXPECT_EQ(bm.hits() + bm.misses() + bm.single_flight_waits(), 1);
}

TEST(PrefetchTest, BudgetCapsUnreadSliceAndRefusesOverflow) {
  SimulatedDisk disk;
  BufferManager bm(&disk, 2 * 64 * 1024);  // room for two 64 KiB blocks
  bm.set_prefetch_budget_bytes(kDiskBlockBytes);
  BlockId a = *disk.WriteBlock(std::vector<uint8_t>(64 * 1024, 1));
  BlockId b = *disk.WriteBlock(std::vector<uint8_t>(64 * 1024, 2));
  BlockId c = *disk.WriteBlock(std::vector<uint8_t>(64 * 1024, 3));
  bm.Prefetch(a);
  bm.DrainPrefetches();
  ASSERT_TRUE(bm.Contains(a));
  // With a's unread bytes charged, another block's worth does not fit:
  // the prefetch is refused, and refusals are not counted as issued.
  bm.Prefetch(b);
  bm.DrainPrefetches();
  EXPECT_EQ(bm.prefetch_issued(), 1);
  EXPECT_FALSE(bm.Contains(b));
  // Demand reads overflow the pool: capacity pressure victimizes the
  // used LRU (b), never the unread next block the prefetch just paid
  // for — a stays resident.
  ASSERT_TRUE(bm.GetBlock(b).ok());
  ASSERT_TRUE(bm.GetBlock(c).ok());
  EXPECT_TRUE(bm.Contains(a));
  EXPECT_FALSE(bm.Contains(b));
  EXPECT_TRUE(bm.Contains(c));
  EXPECT_EQ(bm.prefetch_wasted(), 0);
  // Shrinking the budget sheds the unread slice immediately; the evicted
  // unread block counts as wasted.
  bm.set_prefetch_budget_bytes(0);
  EXPECT_FALSE(bm.Contains(a));
  EXPECT_EQ(bm.prefetch_wasted(), 1);
  EXPECT_EQ(bm.prefetch_inflight(), 0);  // issued == hits + wasted
}

TEST(PrefetchTest, ExternalBudgetSharing) {
  SimulatedDisk disk;
  BufferManager bm(&disk, 1 << 20);
  bm.set_prefetch_budget_bytes(1 << 20);
  // An external prefetcher (the Grace pair streamer) charges the same
  // budget even though its bytes never enter the pool.
  EXPECT_TRUE(bm.TryChargePrefetchBytes(1 << 20));
  EXPECT_FALSE(bm.TryChargePrefetchBytes(1));
  BlockId a = *disk.WriteBlock({1});
  bm.Prefetch(a);  // refused: budget fully charged externally
  bm.DrainPrefetches();
  EXPECT_EQ(bm.prefetch_issued(), 0);
  bm.ReleasePrefetchBytes(1 << 20);
  bm.Prefetch(a);
  bm.DrainPrefetches();
  EXPECT_EQ(bm.prefetch_issued(), 1);
  EXPECT_TRUE(bm.Contains(a));
}

// ---------------------------------------------------------------------------
// FileBlockDevice: durable slots, recycling, fault injection
// ---------------------------------------------------------------------------

std::string MakeTempDir() {
  char tmpl[] = "/tmp/x100-storage-test-XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

void RemoveTree(const std::string& dir) {
  (void)::unlink((dir + "/x100-data.blocks").c_str());
  (void)::unlink((dir + "/x100-catalog.bin").c_str());
  (void)::rmdir(dir.c_str());
}

TEST(FileBlockDeviceTest, RoundTripSurvivesReopen) {
  const std::string dir = MakeTempDir();
  std::vector<uint8_t> small = {9, 8, 7};
  std::vector<uint8_t> big(kDiskBlockBytes, 0x5A);
  BlockId a = 0, b = 0;
  {
    auto dev = FileBlockDevice::Open(dir);
    ASSERT_TRUE(dev.ok());
    a = *(*dev)->WriteBlock(small);
    b = *(*dev)->WriteBlock(big);
    ASSERT_TRUE((*dev)->Sync().ok());
  }  // fd closed, object gone — only the file remains
  {
    auto dev = FileBlockDevice::Open(dir);
    ASSERT_TRUE(dev.ok());
    (*dev)->RestoreAllocated({a, b});
    auto ra = (*dev)->ReadBlock(a, nullptr);
    auto rb = (*dev)->ReadBlock(b, nullptr);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(*ra, small);  // length header restores the exact size
    EXPECT_EQ(*rb, big);
    EXPECT_EQ((*dev)->file_bytes() % (kDiskBlockBytes + 16), 0);
  }
  RemoveTree(dir);
}

TEST(FileBlockDeviceTest, FreedSlotsAreRecycledAndUnreadable) {
  const std::string dir = MakeTempDir();
  auto dev = FileBlockDevice::Open(dir);
  ASSERT_TRUE(dev.ok());
  BlockId a = *(*dev)->WriteBlock({1});
  BlockId b = *(*dev)->WriteBlock({2});
  (*dev)->FreeBlock(a);
  // Freed slot: magic is poisoned, reads fail loudly.
  EXPECT_EQ((*dev)->ReadBlock(a, nullptr).status().code(),
            StatusCode::kIoError);
  // The next write recycles the slot instead of growing the file.
  BlockId c = *(*dev)->WriteBlock({3});
  EXPECT_EQ(c, a);
  EXPECT_EQ((*dev)->slots_recycled(), 1);
  EXPECT_EQ(*(*(*dev)->ReadBlock(c, nullptr)).begin(), 3);
  EXPECT_EQ(*(*(*dev)->ReadBlock(b, nullptr)).begin(), 2);
  RemoveTree(dir);
}

TEST(FileBlockDeviceTest, RestoreAllocatedRecyclesDeadSlots) {
  const std::string dir = MakeTempDir();
  BlockId a = 0, b = 0, c = 0;
  {
    auto dev = FileBlockDevice::Open(dir);
    ASSERT_TRUE(dev.ok());
    a = *(*dev)->WriteBlock({1});
    b = *(*dev)->WriteBlock({2});
    c = *(*dev)->WriteBlock({3});
  }
  auto dev = FileBlockDevice::Open(dir);
  ASSERT_TRUE(dev.ok());
  // Only b survived in the catalog: a and c are recyclable.
  (*dev)->RestoreAllocated({b});
  BlockId x = *(*dev)->WriteBlock({4});
  BlockId y = *(*dev)->WriteBlock({5});
  EXPECT_EQ(x, a);  // low slots first
  EXPECT_EQ(y, c);
  EXPECT_EQ(*(*(*dev)->ReadBlock(b, nullptr)).begin(), 2);
  RemoveTree(dir);
}

TEST(FileBlockDeviceTest, TornAndCorruptReadsSurfaceIoError) {
  const std::string dir = MakeTempDir();
  auto dev = FileBlockDevice::Open(dir);
  ASSERT_TRUE(dev.ok());
  BlockId a = *(*dev)->WriteBlock(std::vector<uint8_t>(1000, 0xAB));
  // Torn read: the slot comes back short.
  (*dev)->set_fault_hook([](FileBlockDevice::Op op, BlockId,
                            std::vector<uint8_t>* data) {
    if (op == FileBlockDevice::Op::kRead) data->resize(10);
    return Status::OK();
  });
  EXPECT_EQ((*dev)->ReadBlock(a, nullptr).status().code(),
            StatusCode::kIoError);
  // Bit rot in the payload: checksum verification must catch it.
  (*dev)->set_fault_hook([](FileBlockDevice::Op op, BlockId,
                            std::vector<uint8_t>* data) {
    if (op == FileBlockDevice::Op::kRead) (*data)[16 + 500] ^= 0x01;
    return Status::OK();
  });
  EXPECT_EQ((*dev)->ReadBlock(a, nullptr).status().code(),
            StatusCode::kIoError);
  // Injected device failure on write propagates as-is.
  (*dev)->set_fault_hook([](FileBlockDevice::Op op, BlockId,
                            std::vector<uint8_t>*) {
    return op == FileBlockDevice::Op::kWrite
               ? Status::IoError("injected write failure")
               : Status::OK();
  });
  EXPECT_EQ((*dev)->WriteBlock({1}).status().code(), StatusCode::kIoError);
  // Clearing the hook restores healthy reads: the file itself was never
  // damaged (faults were injected into the read-back copy).
  (*dev)->set_fault_hook(nullptr);
  auto r = (*dev)->ReadBlock(a, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1000u);
  RemoveTree(dir);
}

TEST(FileBlockDeviceTest, RejectsTornFile) {
  const std::string dir = MakeTempDir();
  {
    auto dev = FileBlockDevice::Open(dir);
    ASSERT_TRUE(dev.ok());
    (void)*(*dev)->WriteBlock({1});
  }
  // Truncate mid-slot: the file is no longer a whole number of slots.
  ASSERT_EQ(::truncate((dir + "/x100-data.blocks").c_str(), 100), 0);
  EXPECT_EQ(FileBlockDevice::Open(dir).status().code(),
            StatusCode::kIoError);
  RemoveTree(dir);
}

// ---------------------------------------------------------------------------
// Read-ahead under injected IO faults: a failed background read must
// never abort the process or fail queries that don't demand the block.
// ---------------------------------------------------------------------------

TEST(PrefetchFaultTest, BackgroundFailureIsParkedAndRetryHeals) {
  const std::string dir = MakeTempDir();
  auto dev = FileBlockDevice::Open(dir);
  ASSERT_TRUE(dev.ok());
  BlockId good = *(*dev)->WriteBlock(std::vector<uint8_t>(100, 1));
  BlockId bad = *(*dev)->WriteBlock(std::vector<uint8_t>(1000, 2));
  const int64_t pool = 1 << 20;
  BufferManager bm(dev->get(), pool);

  struct FaultCase {
    const char* name;
    FileBlockDevice::FaultHook hook;
  };
  const FaultCase faults[] = {
      {"eio",
       [bad](FileBlockDevice::Op op, BlockId id, std::vector<uint8_t>*) {
         return op == FileBlockDevice::Op::kRead && id == bad
                    ? Status::IoError("injected EIO")
                    : Status::OK();
       }},
      {"short-read",
       [bad](FileBlockDevice::Op op, BlockId id, std::vector<uint8_t>* d) {
         if (op == FileBlockDevice::Op::kRead && id == bad) d->resize(4);
         return Status::OK();
       }},
      {"corrupt-checksum",
       [bad](FileBlockDevice::Op op, BlockId id, std::vector<uint8_t>* d) {
         if (op == FileBlockDevice::Op::kRead && id == bad)
           (*d)[FileBlockDevice::kSlotHeaderBytes] ^= 0x01;
         return Status::OK();
       }},
  };
  int64_t expect_issued = 0;
  int64_t expect_wasted = 0;
  for (const FaultCase& fc : faults) {
    SCOPED_TRACE(fc.name);
    (*dev)->set_fault_hook(fc.hook);
    bm.Prefetch(bad);
    bm.DrainPrefetches();
    // The background failure was parked, not raised: nothing resident,
    // no crash, and the failure counts as a wasted prefetch.
    expect_issued++;
    expect_wasted++;
    EXPECT_FALSE(bm.Contains(bad));
    EXPECT_EQ(bm.prefetch_issued(), expect_issued);
    EXPECT_EQ(bm.prefetch_wasted(), expect_wasted);
    EXPECT_EQ(bm.prefetch_inflight(), 0);
    // Unrelated demand reads are unaffected.
    auto g = bm.PinBlock(good);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->data()[0], 1);
    g->Release();
    // Demanding the failed block surfaces the parked error exactly once.
    auto p = bm.PinBlock(bad);
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), StatusCode::kIoError);
    // A retry issues a fresh device read; with the fault cleared it heals.
    (*dev)->set_fault_hook(nullptr);
    auto healed = bm.PinBlock(bad);
    ASSERT_TRUE(healed.ok());
    EXPECT_EQ(healed->data().size(), 1000u);
    EXPECT_EQ(healed->data()[0], 2);
    healed->Release();
    // Pool drains back to its invariant between rounds.
    EXPECT_EQ(bm.pinned_bytes(), 0);
    EXPECT_LE(bm.bytes_cached(), pool);
    bm.Invalidate(bad);
  }
  RemoveTree(dir);
}

// ---------------------------------------------------------------------------
// Restart round-trip: build -> mutate -> checkpoint -> reopen -> identical
// ---------------------------------------------------------------------------

std::vector<std::string> SnapshotTable(Database* db, const std::string& name) {
  UpdatableTable* ut = *db->GetTable(name);
  const Table* base = ut->base();
  TableReader reader(base, db->buffers());
  std::vector<std::string> rows;
  for (int64_t sid = 0; sid < base->num_rows(); sid++) {
    auto row = ReadStableRow(base, &reader, sid, {});
    EXPECT_TRUE(row.ok()) << "sid " << sid << ": "
                          << row.status().ToString();
    if (!row.ok()) return rows;
    std::string repr;
    for (const Value& v : *row) {
      repr += v.is_null() ? "<null>" : v.ToString();
      repr += "|";
    }
    rows.push_back(std::move(repr));
  }
  return rows;
}

TEST(RestartTest, CheckpointedTableReopensBitIdentical) {
  const std::string dir = MakeTempDir();
  EngineConfig cfg;
  cfg.data_path = dir;
  cfg.buffer_pool_bytes = 4 << 20;
  std::vector<std::string> before;
  std::vector<bool> minmax_before;
  {
    Database db(cfg);
    ASSERT_TRUE(db.open_status().ok()) << db.open_status().ToString();
    // Small groups so the table spans several block groups and the
    // checkpoint exercises both clean-group adoption and dirty rewrite.
    auto b = db.CreateTable("t", MixedSchema(), Layout::kPax, 512);
    Rng rng(5);
    for (int i = 0; i < 2000; i++) {
      std::vector<Value> row;
      row.push_back(Value::I64(i));
      row.push_back(Value::I32(static_cast<int32_t>(rng.Uniform(1, 50))));
      row.push_back(Value::F64(i / 7.0));
      row.push_back(Value::Str(i % 2 == 0 ? "A" : "B"));
      row.push_back(Value::Date(MakeDate(1995, 1, 1) + i % 300));
      row.push_back(i % 4 == 0 ? Value::Null(TypeId::kStr)
                               : Value::Str("n" + std::to_string(i)));
      ASSERT_TRUE(b->AppendRow(row).ok());
    }
    auto t = b->Finish();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(db.RegisterTable(std::move(t).value()).ok());
    UpdatableTable* ut = *db.GetTable("t");
    // Mutate through a transaction: update in group 0, delete in group 1,
    // tail insert — then checkpoint the deltas into the stored image.
    auto txn = db.txn_manager()->Begin(ut);
    ASSERT_TRUE(txn->Update(3, 3, Value::Str("UPDATED")).ok());
    ASSERT_TRUE(txn->Delete(700).ok());
    std::vector<Value> fresh = {Value::I64(999999),
                                Value::I32(42),
                                Value::F64(3.5),
                                Value::Str("Z"),
                                Value::Date(MakeDate(2000, 1, 1)),
                                Value::Null(TypeId::kStr)};
    ASSERT_TRUE(txn->Append(fresh).ok());
    ASSERT_TRUE(db.txn_manager()->Commit(txn.get()).ok());
    ASSERT_TRUE(db.Checkpoint("t").ok());
    before = SnapshotTable(&db, "t");
    const Table* base = (*db.GetTable("t"))->base();
    for (int g = 0; g < base->num_groups(); g++) {
      minmax_before.push_back(
          base->GroupMayMatch(g, 0, RangeOp::kGt, Value::I64(1500)));
    }
  }  // Database destroyed: nothing survives but the two files

  {
    Database db(cfg);
    ASSERT_TRUE(db.open_status().ok()) << db.open_status().ToString();
    std::vector<std::string> after = SnapshotTable(&db, "t");
    ASSERT_EQ(after.size(), before.size());
    EXPECT_EQ(after.size(), 2000u);  // 2000 - 1 delete + 1 insert
    for (size_t i = 0; i < before.size(); i++) {
      ASSERT_EQ(after[i], before[i]) << "row " << i << " diverged";
    }
    // The mutations themselves came back.
    EXPECT_NE(before[3].find("UPDATED"), std::string::npos);
    EXPECT_NE(after.back().find("999999"), std::string::npos);
    // MinMax metadata survived the catalog round-trip: pushdown decisions
    // are identical on the reopened image.
    const Table* base = (*db.GetTable("t"))->base();
    ASSERT_EQ(static_cast<size_t>(base->num_groups()),
              minmax_before.size());
    for (int g = 0; g < base->num_groups(); g++) {
      EXPECT_EQ(base->GroupMayMatch(g, 0, RangeOp::kGt, Value::I64(1500)),
                minmax_before[g]);
    }
    // This was a COLD read: every byte came from the file, not a cache.
    EXPECT_GT(db.buffers()->misses(), 0);
    EXPECT_GT(db.data_device()->blocks_read(), 0);
  }
  RemoveTree(dir);
}

TEST(RestartTest, SecondCheckpointRecyclesRetiredSlots) {
  const std::string dir = MakeTempDir();
  EngineConfig cfg;
  cfg.data_path = dir;
  Database db(cfg);
  ASSERT_TRUE(db.open_status().ok());
  auto b = db.CreateTable("t", Schema({Field("x", TypeId::kI64)}),
                          Layout::kDsm, 1024);
  for (int i = 0; i < 1024; i++) {
    ASSERT_TRUE(b->AppendRow({Value::I64(i)}).ok());
  }
  {
    auto t = b->Finish();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(db.RegisterTable(std::move(t).value()).ok());
  }
  const int64_t size_after_build = db.data_device()->file_bytes();
  // Repeated update+checkpoint cycles rewrite the single group each time.
  // Retired slots are freed and recycled, so the file must not grow.
  for (int round = 0; round < 4; round++) {
    UpdatableTable* ut = *db.GetTable("t");
    auto txn = db.txn_manager()->Begin(ut);
    ASSERT_TRUE(txn->Update(round, 0, Value::I64(-round)).ok());
    ASSERT_TRUE(db.txn_manager()->Commit(txn.get()).ok());
    ASSERT_TRUE(db.Checkpoint("t").ok());
  }
  EXPECT_GT(db.data_device()->slots_recycled(), 0);
  EXPECT_LE(db.data_device()->file_bytes(), size_after_build * 2);
  RemoveTree(dir);
}

TEST(RestartTest, CatalogSaveFailureRollsBackDdlAndKeepsRetiredSlots) {
  const std::string dir = MakeTempDir();
  EngineConfig cfg;
  cfg.data_path = dir;
  Database db(cfg);
  ASSERT_TRUE(db.open_status().ok());
  auto build = [&](const std::string& name) {
    auto b = db.CreateTable(name, Schema({Field("x", TypeId::kI64)}),
                            Layout::kDsm, 64);
    for (int i = 0; i < 64; i++) {
      EXPECT_TRUE(b->AppendRow({Value::I64(i)}).ok());
    }
    auto t = b->Finish();
    EXPECT_TRUE(t.ok());
    return std::move(t).value();
  };
  ASSERT_TRUE(db.RegisterTable(build("t1")).ok());

  // Yank the directory out from under the catalog: the data-file fd stays
  // valid (writes and syncs still work), but SaveCatalog's temp-file
  // creation now fails — every durable DDL/checkpoint must report the
  // failure AND leave memory consistent with the surviving (old) catalog.
  RemoveTree(dir);

  // RegisterTable: failure rolls the registration back.
  EXPECT_FALSE(db.RegisterTable(build("t2")).ok());
  EXPECT_EQ(db.GetTable("t2").status().code(), StatusCode::kNotFound);

  // DropTable: failure resurrects the table.
  EXPECT_FALSE(db.DropTable("t1").ok());
  EXPECT_TRUE(db.GetTable("t1").ok());

  // Checkpoint: failure must NOT free the retired slots — the durable
  // catalog still references them, so a recycled slot could serve the
  // wrong block to a reopened database. With the slots kept allocated, a
  // fresh write cannot recycle anything.
  {
    UpdatableTable* ut = *db.GetTable("t1");
    auto txn = db.txn_manager()->Begin(ut);
    ASSERT_TRUE(txn->Update(0, 0, Value::I64(-1)).ok());
    ASSERT_TRUE(db.txn_manager()->Commit(txn.get()).ok());
  }
  EXPECT_FALSE(db.Checkpoint("t1").ok());
  ASSERT_TRUE(db.data_device()->WriteBlock({1, 2, 3}).ok());
  EXPECT_EQ(db.data_device()->slots_recycled(), 0);
  // The in-memory image stays queryable and carries the checkpointed
  // update (durability failed, consistency did not).
  std::vector<std::string> rows = SnapshotTable(&db, "t1");
  ASSERT_EQ(rows.size(), 64u);
  EXPECT_EQ(rows[0], "-1|");
  RemoveTree(dir);
}

TEST(RestartTest, CorruptCatalogFailsOpenLoudly) {
  const std::string dir = MakeTempDir();
  EngineConfig cfg;
  cfg.data_path = dir;
  {
    Database db(cfg);
    ASSERT_TRUE(db.open_status().ok());
    auto b = db.CreateTable("t", Schema({Field("x", TypeId::kI64)}),
                            Layout::kDsm, 64);
    ASSERT_TRUE(b->AppendRow({Value::I64(1)}).ok());
    auto t = b->Finish();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(db.RegisterTable(std::move(t).value()).ok());
  }
  // Flip one byte in the catalog body: the trailing checksum must reject.
  const std::string path = CatalogPath(dir);
  FILE* f = fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(fseek(f, 10, SEEK_SET), 0);
  int ch = fgetc(f);
  ASSERT_EQ(fseek(f, 10, SEEK_SET), 0);
  fputc(ch ^ 0x01, f);
  fclose(f);
  {
    Database db(cfg);
    EXPECT_EQ(db.open_status().code(), StatusCode::kIoError);
  }
  RemoveTree(dir);
}

TEST(RestartTest, MissingDataPathFailsOpenLoudly) {
  EngineConfig cfg;
  cfg.data_path = "/nonexistent/x100/dir";
  Database db(cfg);
  EXPECT_FALSE(db.open_status().ok());
  // Write entry points refuse with the open failure instead of silently
  // running a volatile database the caller believes is durable.
  auto b = db.CreateTable("t", Schema({Field("x", TypeId::kI64)}),
                          Layout::kDsm, 64);
  ASSERT_TRUE(b->AppendRow({Value::I64(1)}).ok());
  auto t = b->Finish();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(db.RegisterTable(std::move(t).value()).status().code(),
            db.open_status().code());
  EXPECT_EQ(db.DropTable("t").code(), db.open_status().code());
  EXPECT_EQ(db.Checkpoint("t").code(), db.open_status().code());
}

}  // namespace
}  // namespace x100
