// Storage tests: simulated disk, buffer manager, PAX/DSM table round-trips,
// MinMax pushdown, NULL chunks, and cooperative-scan scheduling policies.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"
#include "storage/buffer_manager.h"
#include "storage/coop_scan.h"
#include "storage/simulated_disk.h"
#include "storage/table.h"

namespace x100 {
namespace {

TEST(SimulatedDiskTest, WriteReadRoundTrip) {
  SimulatedDisk disk;
  std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  BlockId id = disk.WriteBlock(data);
  auto r = disk.ReadBlock(id);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data);
  EXPECT_EQ(disk.blocks_read(), 1);
  EXPECT_EQ(disk.bytes_read(), 5);
}

TEST(SimulatedDiskTest, OutOfRangeIsIoError) {
  SimulatedDisk disk;
  EXPECT_EQ(disk.ReadBlock(99).status().code(), StatusCode::kIoError);
}

TEST(SimulatedDiskTest, BandwidthThrottles) {
  SimulatedDisk disk(1 << 20);  // 1 MiB/s
  std::vector<uint8_t> data(64 * 1024);
  BlockId id = disk.WriteBlock(data);
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(disk.ReadBlock(id).ok());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // 64 KiB at 1 MiB/s = 62.5 ms.
  EXPECT_GE(std::chrono::duration<double>(elapsed).count(), 0.05);
}

TEST(SimulatedDiskTest, CancellationInterruptsIoWait) {
  SimulatedDisk disk(1 << 16);  // 64 KiB/s: the read below takes ~1 s
  std::vector<uint8_t> data(64 * 1024);
  BlockId id = disk.WriteBlock(data);
  CancellationToken token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.Cancel();
  });
  const auto t0 = std::chrono::steady_clock::now();
  auto r = disk.ReadBlock(id, &token);
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  canceller.join();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_LT(elapsed, 0.5);  // far less than the 1 s IO cost
}

TEST(BufferManagerTest, CachesAndCountsHits) {
  SimulatedDisk disk;
  BufferManager bm(&disk, 4);
  BlockId id = disk.WriteBlock({7, 7, 7});
  ASSERT_TRUE(bm.GetBlock(id).ok());
  ASSERT_TRUE(bm.GetBlock(id).ok());
  EXPECT_EQ(bm.misses(), 1);
  EXPECT_EQ(bm.hits(), 1);
  EXPECT_EQ(disk.blocks_read(), 1);
}

TEST(BufferManagerTest, EvictsLruBeyondCapacity) {
  SimulatedDisk disk;
  BufferManager bm(&disk, 2);
  BlockId a = disk.WriteBlock({1});
  BlockId b = disk.WriteBlock({2});
  BlockId c = disk.WriteBlock({3});
  ASSERT_TRUE(bm.GetBlock(a).ok());
  ASSERT_TRUE(bm.GetBlock(b).ok());
  ASSERT_TRUE(bm.GetBlock(c).ok());  // evicts a
  EXPECT_EQ(bm.size(), 2);
  EXPECT_FALSE(bm.Contains(a));
  EXPECT_TRUE(bm.Contains(b));
  EXPECT_TRUE(bm.Contains(c));
}

TEST(BufferManagerTest, SharedPtrSurvivesEviction) {
  SimulatedDisk disk;
  BufferManager bm(&disk, 1);
  BlockId a = disk.WriteBlock({42});
  auto blk = bm.GetBlock(a);
  ASSERT_TRUE(blk.ok());
  BlockId b = disk.WriteBlock({43});
  ASSERT_TRUE(bm.GetBlock(b).ok());  // evicts a
  EXPECT_EQ((**blk)[0], 42);         // still readable
}

TEST(BufferManagerTest, InvalidateDropsBlock) {
  SimulatedDisk disk;
  BufferManager bm(&disk, 4);
  BlockId a = disk.WriteBlock({1});
  ASSERT_TRUE(bm.GetBlock(a).ok());
  bm.Invalidate(a);
  EXPECT_FALSE(bm.Contains(a));
  ASSERT_TRUE(bm.GetBlock(a).ok());
  EXPECT_EQ(bm.misses(), 2);
}

// ---------------------------------------------------------------------------
// Table round-trips
// ---------------------------------------------------------------------------

Schema MixedSchema() {
  return Schema({Field("id", TypeId::kI64),
                 Field("qty", TypeId::kI32),
                 Field("price", TypeId::kF64),
                 Field("flag", TypeId::kStr),
                 Field("ship", TypeId::kDate),
                 Field("note", TypeId::kStr, /*nullable=*/true)});
}

std::unique_ptr<Table> BuildMixedTable(SimulatedDisk* disk, Layout layout,
                                       int rows, int group_rows) {
  TableBuilder b("t", MixedSchema(), layout, disk, group_rows);
  Rng rng(99);
  for (int i = 0; i < rows; i++) {
    std::vector<Value> row;
    row.push_back(Value::I64(i));
    row.push_back(Value::I32(static_cast<int32_t>(rng.Uniform(1, 50))));
    row.push_back(Value::F64(static_cast<double>(i % 1000) / 10.0));
    row.push_back(Value::Str(i % 3 == 0 ? "A" : (i % 3 == 1 ? "N" : "R")));
    row.push_back(Value::Date(MakeDate(1994, 1, 1) + i % 2000));
    row.push_back(i % 5 == 0 ? Value::Null(TypeId::kStr)
                             : Value::Str("note-" + std::to_string(i % 7)));
    EXPECT_TRUE(b.AppendRow(row).ok());
  }
  auto t = b.Finish();
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

class TableLayoutTest : public ::testing::TestWithParam<Layout> {};

TEST_P(TableLayoutTest, RoundTripAllColumns) {
  SimulatedDisk disk;
  auto table = BuildMixedTable(&disk, GetParam(), 2500, 1000);
  EXPECT_EQ(table->num_rows(), 2500);
  EXPECT_EQ(table->num_groups(), 3);  // 1000 + 1000 + 500
  EXPECT_EQ(table->group(2).rows, 500u);
  EXPECT_EQ(table->group(1).first_sid, 1000);

  BufferManager bm(&disk, 256);
  TableReader reader(table.get(), &bm);
  int64_t row = 0;
  for (int g = 0; g < table->num_groups(); g++) {
    const int n = static_cast<int>(table->group(g).rows);
    std::vector<int64_t> ids(n);
    std::vector<int32_t> qty(n);
    std::vector<double> price(n);
    std::vector<StrRef> flag(n), note(n);
    std::vector<int32_t> ship(n);
    std::vector<uint8_t> note_nulls(n);
    StringHeap heap;
    ASSERT_TRUE(reader.ReadColumn(g, 0, ids.data(), nullptr, nullptr).ok());
    ASSERT_TRUE(reader.ReadColumn(g, 1, qty.data(), nullptr, nullptr).ok());
    ASSERT_TRUE(reader.ReadColumn(g, 2, price.data(), nullptr, nullptr).ok());
    ASSERT_TRUE(reader.ReadColumn(g, 3, flag.data(), nullptr, &heap).ok());
    ASSERT_TRUE(reader.ReadColumn(g, 4, ship.data(), nullptr, nullptr).ok());
    ASSERT_TRUE(
        reader.ReadColumn(g, 5, note.data(), note_nulls.data(), &heap).ok());
    for (int i = 0; i < n; i++, row++) {
      ASSERT_EQ(ids[i], row);
      EXPECT_EQ(price[i], static_cast<double>(row % 1000) / 10.0);
      const char* expect_flag =
          row % 3 == 0 ? "A" : (row % 3 == 1 ? "N" : "R");
      EXPECT_EQ(flag[i].view(), expect_flag);
      EXPECT_EQ(ship[i], MakeDate(1994, 1, 1) + row % 2000);
      if (row % 5 == 0) {
        EXPECT_EQ(note_nulls[i], 1);
      } else {
        EXPECT_EQ(note_nulls[i], 0);
        EXPECT_EQ(note[i].view(), "note-" + std::to_string(row % 7));
      }
    }
  }
}

TEST_P(TableLayoutTest, CompressionShrinksData) {
  SimulatedDisk disk;
  auto table = BuildMixedTable(&disk, GetParam(), 10000, 4096);
  // Raw width: 8+4+8+16+4+16 (+null byte) ≈ 57 B/row; expect real savings
  // from PFOR ids (delta), PDICT flags, RLE nulls.
  EXPECT_LT(table->compressed_bytes(), 10000 * 40);
  EXPECT_GT(table->compressed_bytes(), 0);
}

TEST_P(TableLayoutTest, MinMaxPruning) {
  SimulatedDisk disk;
  auto table = BuildMixedTable(&disk, GetParam(), 2000, 1000);
  // ids column: group 0 covers [0,999], group 1 [1000,1999].
  EXPECT_TRUE(table->GroupMayMatch(0, 0, RangeOp::kEq, Value::I64(500)));
  EXPECT_FALSE(table->GroupMayMatch(0, 0, RangeOp::kEq, Value::I64(1500)));
  EXPECT_TRUE(table->GroupMayMatch(1, 0, RangeOp::kEq, Value::I64(1500)));
  EXPECT_FALSE(table->GroupMayMatch(0, 0, RangeOp::kGt, Value::I64(1200)));
  EXPECT_TRUE(table->GroupMayMatch(1, 0, RangeOp::kGt, Value::I64(1200)));
  EXPECT_FALSE(table->GroupMayMatch(1, 0, RangeOp::kLt, Value::I64(800)));
  EXPECT_TRUE(table->GroupMayMatch(0, 0, RangeOp::kLe, Value::I64(0)));
  // Strings: always conservative.
  EXPECT_TRUE(table->GroupMayMatch(0, 3, RangeOp::kEq, Value::Str("A")));
}

INSTANTIATE_TEST_SUITE_P(Layouts, TableLayoutTest,
                         ::testing::Values(Layout::kDsm, Layout::kPax),
                         [](const ::testing::TestParamInfo<Layout>& info) {
                           return info.param == Layout::kDsm ? "DSM" : "PAX";
                         });

TEST(TableLayoutIoTest, NarrowScanReadsLessOnDsm) {
  // DSM: reading 1 of 6 columns touches only that column's blocks.
  // PAX: the whole group region is the IO unit.
  SimulatedDisk dsm_disk, pax_disk;
  auto dsm = BuildMixedTable(&dsm_disk, Layout::kDsm, 20000, 8192);
  auto pax = BuildMixedTable(&pax_disk, Layout::kPax, 20000, 8192);
  BufferManager dsm_bm(&dsm_disk, 1024), pax_bm(&pax_disk, 1024);
  TableReader dsm_r(dsm.get(), &dsm_bm), pax_r(pax.get(), &pax_bm);
  dsm_disk.ResetStats();
  pax_disk.ResetStats();
  std::vector<int32_t> qty(8192);
  for (int g = 0; g < dsm->num_groups(); g++) {
    ASSERT_TRUE(dsm_r.ReadColumn(g, 1, qty.data(), nullptr, nullptr).ok());
    ASSERT_TRUE(pax_r.ReadColumn(g, 1, qty.data(), nullptr, nullptr).ok());
  }
  EXPECT_LT(dsm_disk.bytes_read(), pax_disk.bytes_read());
}

TEST(TableLayoutIoTest, WideScanAmortizesOnPax) {
  // Reading *all* columns of a group: PAX pays one region, further columns
  // are cache hits.
  SimulatedDisk disk;
  auto pax = BuildMixedTable(&disk, Layout::kPax, 8192, 8192);
  BufferManager bm(&disk, 1024);
  TableReader r(pax.get(), &bm);
  disk.ResetStats();
  std::vector<int64_t> ids(8192);
  std::vector<int32_t> qty(8192);
  std::vector<double> price(8192);
  ASSERT_TRUE(r.ReadColumn(0, 0, ids.data(), nullptr, nullptr).ok());
  const int64_t after_first = disk.blocks_read();
  ASSERT_TRUE(r.ReadColumn(0, 1, qty.data(), nullptr, nullptr).ok());
  ASSERT_TRUE(r.ReadColumn(0, 2, price.data(), nullptr, nullptr).ok());
  EXPECT_EQ(disk.blocks_read(), after_first);  // all hits
}

TEST(TableBuilderTest, RejectsArityMismatch) {
  SimulatedDisk disk;
  TableBuilder b("t", Schema({Field("a", TypeId::kI32)}), Layout::kDsm,
                 &disk);
  EXPECT_EQ(b.AppendRow({Value::I32(1), Value::I32(2)}).code(),
            StatusCode::kInvalidArgument);
}

TEST(TableBuilderTest, RejectsNullInNonNullable) {
  SimulatedDisk disk;
  TableBuilder b("t", Schema({Field("a", TypeId::kI32)}), Layout::kDsm,
                 &disk);
  EXPECT_EQ(b.AppendRow({Value::Null(TypeId::kI32)}).code(),
            StatusCode::kInvalidArgument);
}

TEST(TableBuilderTest, EmptyTable) {
  SimulatedDisk disk;
  TableBuilder b("t", Schema({Field("a", TypeId::kI32)}), Layout::kDsm,
                 &disk);
  auto t = b.Finish();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_rows(), 0);
  EXPECT_EQ((*t)->num_groups(), 0);
}

// ---------------------------------------------------------------------------
// Scan scheduling policies
// ---------------------------------------------------------------------------

TEST(SequentialSchedulerTest, DeliversInOrder) {
  SequentialScheduler s(4);
  int q = s.Register(5);
  for (int g = 0; g < 5; g++) EXPECT_EQ(s.NextGroup(q), g);
  EXPECT_EQ(s.NextGroup(q), -1);
  s.Unregister(q);
}

TEST(RelevanceSchedulerTest, SingleQueryGetsAllGroupsOnce) {
  RelevanceScheduler s(4);
  int q = s.Register(10);
  std::set<int> got;
  for (int i = 0; i < 10; i++) {
    int g = s.NextGroup(q);
    ASSERT_GE(g, 0);
    EXPECT_TRUE(got.insert(g).second) << "duplicate group " << g;
  }
  EXPECT_EQ(s.NextGroup(q), -1);
  EXPECT_EQ(got.size(), 10u);
  EXPECT_EQ(s.chunk_loads(), 10);
}

TEST(RelevanceSchedulerTest, ConcurrentQueriesShareLoads) {
  // Two queries over the same 20 groups, interleaved: ABM must load each
  // group ~once (40 deliveries, ~20 loads).
  RelevanceScheduler s(8);
  int q1 = s.Register(20);
  int q2 = s.Register(20);
  int done1 = 0, done2 = 0;
  while (done1 < 20 || done2 < 20) {
    if (done1 < 20 && s.NextGroup(q1) >= 0) done1++;
    if (done2 < 20 && s.NextGroup(q2) >= 0) done2++;
  }
  EXPECT_LE(s.chunk_loads(), 24);  // near-perfect sharing
  s.Unregister(q1);
  s.Unregister(q2);
}

TEST(RelevanceSchedulerTest, StaggeredQueryJoinsInFlight) {
  RelevanceScheduler s(6);
  int q1 = s.Register(12);
  // q1 consumes half the table first.
  for (int i = 0; i < 6; i++) ASSERT_GE(s.NextGroup(q1), 0);
  // q2 arrives late; it should first consume cached chunks.
  int q2 = s.Register(12);
  const int64_t loads_before = s.chunk_loads();
  std::set<int> q2_first;
  for (int i = 0; i < 4; i++) q2_first.insert(s.NextGroup(q2));
  EXPECT_EQ(s.chunk_loads(), loads_before);  // all served from cache
  // Finish both.
  while (s.NextGroup(q1) >= 0) {
  }
  while (s.NextGroup(q2) >= 0) {
  }
  EXPECT_LT(s.chunk_loads(), 24);  // << 2 full passes
}

TEST(RelevanceSchedulerTest, SequentialBaselineReloadsForStaggered) {
  // Same staggered workload under the sequential-LRU estimate: close to
  // two full passes when the pool is smaller than the table.
  SequentialScheduler s(6);
  int q1 = s.Register(12);
  for (int i = 0; i < 6; i++) ASSERT_GE(s.NextGroup(q1), 0);
  int q2 = s.Register(12);
  while (s.NextGroup(q1) >= 0) {
  }
  while (s.NextGroup(q2) >= 0) {
  }
  EXPECT_GE(s.chunk_loads(), 18);
}

TEST(RelevanceSchedulerTest, CacheRespectsCapacity) {
  RelevanceScheduler s(3);
  int q = s.Register(10);
  for (int i = 0; i < 10; i++) s.NextGroup(q);
  EXPECT_LE(s.CachedGroups().size(), 3u);
}

TEST(RelevanceSchedulerTest, UnregisterDropsInterest) {
  RelevanceScheduler s(4);
  int q1 = s.Register(8);
  int q2 = s.Register(8);
  s.Unregister(q2);
  std::set<int> got;
  int g;
  while ((g = s.NextGroup(q1)) >= 0) got.insert(g);
  EXPECT_EQ(got.size(), 8u);
}

}  // namespace
}  // namespace x100
