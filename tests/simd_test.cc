// SIMD dispatch parity suite.
//
// Every kernel ported to a SIMD target must be BIT-identical to the scalar
// baseline — not "approximately equal": hash values feed RadixPartitionOf
// and therefore partition/spill routing, f64 compares must keep exact NaN
// semantics, and aggregate accumulators are compared across parallel plans.
// These tests fuzz each ported kernel against the scalar reference over
// random data (NULL masks, selection vectors, special FP values) at every
// level AvailableSimdLevels() reports, across tail lengths that cover
// 0, 1, lane-1, full lanes, and non-multiples of the vector width.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "common/hash.h"
#include "engine/database.h"
#include "engine/session.h"
#include "primitives/agg_kernels.h"
#include "primitives/hash_kernels.h"
#include "primitives/primitive_registry.h"
#include "simd/simd.h"
#include "simd/simd_kernels.h"

namespace x100 {
namespace {

// Tail coverage: empty, single row, just under / at / over the 4- and
// 8-lane widths, a full default vector, and awkward non-multiples.
const int kLens[] = {0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 31, 33, 100, 1023, 1024};

std::vector<SimdLevel> NonScalarLevels() {
  std::vector<SimdLevel> out;
  for (SimdLevel l : AvailableSimdLevels()) {
    if (l != SimdLevel::kScalar) out.push_back(l);
  }
  return out;
}

class SimdTest : public ::testing::Test {
 protected:
  void SetUp() override { EnsureKernelsRegistered(); }
  PrimitiveRegistry* reg() { return PrimitiveRegistry::Get(); }
  std::mt19937_64 rng_{42};

  std::vector<uint8_t> RandomBytes01(int n) {
    std::vector<uint8_t> v(n);
    for (int i = 0; i < n; i++) v[i] = rng_() & 1;
    return v;
  }
  std::vector<int32_t> RandomI32(int n) {
    std::vector<int32_t> v(n);
    for (int i = 0; i < n; i++) {
      // Small range so compares hit both outcomes often, plus extremes.
      v[i] = static_cast<int32_t>(rng_() % 64) - 32;
    }
    if (n > 2) {
      v[0] = std::numeric_limits<int32_t>::min();
      v[1] = std::numeric_limits<int32_t>::max();
    }
    return v;
  }
  std::vector<int64_t> RandomI64(int n) {
    std::vector<int64_t> v(n);
    for (int i = 0; i < n; i++) {
      v[i] = static_cast<int64_t>(rng_() % 64) - 32;
    }
    if (n > 2) {
      v[0] = std::numeric_limits<int64_t>::min();
      v[1] = std::numeric_limits<int64_t>::max();
    }
    return v;
  }
  std::vector<double> RandomF64(int n) {
    std::vector<double> v(n);
    for (int i = 0; i < n; i++) {
      v[i] = (static_cast<double>(rng_() % 64) - 32) * 0.5;
    }
    // Special values exercise exact NaN / signed-zero semantics.
    if (n > 5) {
      v[0] = std::numeric_limits<double>::quiet_NaN();
      v[1] = 0.0;
      v[2] = -0.0;
      v[3] = std::numeric_limits<double>::infinity();
      v[4] = -std::numeric_limits<double>::infinity();
    }
    return v;
  }
};

// ---- mode parsing / resolution ---------------------------------------------

TEST_F(SimdTest, ParseSimdModeStrict) {
  SimdMode m = SimdMode::kNeon;
  EXPECT_TRUE(ParseSimdMode("auto", &m));
  EXPECT_EQ(m, SimdMode::kAuto);
  EXPECT_TRUE(ParseSimdMode("scalar", &m));
  EXPECT_EQ(m, SimdMode::kScalar);
  EXPECT_TRUE(ParseSimdMode("avx2", &m));
  EXPECT_EQ(m, SimdMode::kAvx2);
  EXPECT_TRUE(ParseSimdMode("neon", &m));
  EXPECT_EQ(m, SimdMode::kNeon);
  m = SimdMode::kAuto;
  EXPECT_FALSE(ParseSimdMode("", &m));
  EXPECT_FALSE(ParseSimdMode("AVX2", &m));    // strict: no case folding
  EXPECT_FALSE(ParseSimdMode("avx512", &m));
  EXPECT_FALSE(ParseSimdMode(" scalar", &m));
  EXPECT_EQ(m, SimdMode::kAuto);  // out untouched on failure
}

TEST_F(SimdTest, ResolveScalarIsAlwaysScalar) {
  EXPECT_EQ(ResolveSimdLevel(SimdMode::kScalar), SimdLevel::kScalar);
}

TEST_F(SimdTest, AvailableLevelsStartWithScalar) {
  auto levels = AvailableSimdLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels[0], SimdLevel::kScalar);
  for (SimdLevel l : levels) {
    EXPECT_NE(SimdLevelName(l), nullptr);
  }
}

// ---- registry variant resolution -------------------------------------------

TEST_F(SimdTest, VariantLookupPrefersLevelAndFallsBack) {
  std::vector<ArgSig> sigs = {{TypeId::kI32, false}, {TypeId::kI32, true}};
  auto scalar = reg()->FindMap("map", "lt", sigs, SimdLevel::kScalar);
  ASSERT_NE(scalar.fn, nullptr);
  EXPECT_EQ(scalar.level, SimdLevel::kScalar);
  for (SimdLevel l : NonScalarLevels()) {
    auto variant = reg()->FindMap("map", "lt", sigs, l);
    ASSERT_NE(variant.fn, nullptr);
    if (l == SimdLevel::kAvx2) {
      // AVX2 registers every compare; the lookup must resolve the variant,
      // not fall back silently.
      EXPECT_EQ(variant.level, l);
      EXPECT_NE(variant.fn, scalar.fn);
    }
    EXPECT_EQ(variant.out_type, scalar.out_type);
    // A signature with no variant (string compare) must fall back.
    auto str = reg()->FindMap(
        "map", "eq", {{TypeId::kStr, false}, {TypeId::kStr, true}}, l);
    ASSERT_NE(str.fn, nullptr);
    EXPECT_EQ(str.level, SimdLevel::kScalar);
  }
  if (BestSupportedSimdLevel() != SimdLevel::kScalar) {
    EXPECT_GT(reg()->num_simd_variants(), 0);
  }
}

// ---- byte kernels: NULL-mask combination + compaction ----------------------

TEST_F(SimdTest, OrBytesIntoParity) {
  for (int n : kLens) {
    auto src = RandomBytes01(n);
    auto base = RandomBytes01(n);
    std::vector<uint8_t> ref = base;
    simd::OrBytesInto(n, src.data(), ref.data(), SimdLevel::kScalar);
    for (SimdLevel l : NonScalarLevels()) {
      std::vector<uint8_t> got = base;
      simd::OrBytesInto(n, src.data(), got.data(), l);
      EXPECT_EQ(ref, got) << "n=" << n << " level=" << SimdLevelName(l);
    }
  }
}

TEST_F(SimdTest, IsZeroBytesParity) {
  for (int n : kLens) {
    auto src = RandomBytes01(n);
    std::vector<uint8_t> ref(n, 0xCC), got(n, 0xCC);
    simd::IsZeroBytes(n, src.data(), ref.data(), SimdLevel::kScalar);
    for (SimdLevel l : NonScalarLevels()) {
      simd::IsZeroBytes(n, src.data(), got.data(), l);
      EXPECT_EQ(ref, got) << "n=" << n << " level=" << SimdLevelName(l);
    }
  }
}

TEST_F(SimdTest, CompactionParity) {
  // Only sel_out[0..k) is defined: the wide permute stores (and the
  // branch-free scalar loop) scribble candidates past the match count.
  auto expect_prefix_eq = [](const std::vector<sel_t>& ref,
                             const std::vector<sel_t>& got, int k,
                             const char* what, int n) {
    for (int i = 0; i < k; i++) {
      ASSERT_EQ(ref[i], got[i]) << what << " n=" << n << " slot " << i;
    }
  };
  for (int n : kLens) {
    auto val = RandomBytes01(n);
    auto nulls = RandomBytes01(n);
    std::vector<sel_t> ref(n + 1, -7), got(n + 1, -7);
    // All three compaction flavors, each against the scalar reference.
    for (SimdLevel l : NonScalarLevels()) {
      int kr = simd::CompactTrue(n, val.data(), ref.data(),
                                 SimdLevel::kScalar);
      int kg = simd::CompactTrue(n, val.data(), got.data(), l);
      ASSERT_EQ(kr, kg) << "n=" << n;
      expect_prefix_eq(ref, got, kr, "CompactTrue", n);

      kr = simd::CompactNotNull(n, nulls.data(), ref.data(),
                                SimdLevel::kScalar);
      kg = simd::CompactNotNull(n, nulls.data(), got.data(), l);
      ASSERT_EQ(kr, kg) << "n=" << n;
      expect_prefix_eq(ref, got, kr, "CompactNotNull", n);

      kr = simd::CompactTrueNotNull(n, val.data(), nulls.data(), ref.data(),
                                    SimdLevel::kScalar);
      kg = simd::CompactTrueNotNull(n, val.data(), nulls.data(), got.data(),
                                    l);
      ASSERT_EQ(kr, kg) << "n=" << n;
      expect_prefix_eq(ref, got, kr, "CompactTrueNotNull", n);
    }
  }
}

TEST_F(SimdTest, CompactAllTrueAndAllFalse) {
  // Degenerate masks: every row passes / no row passes.
  for (int n : {8, 31, 1024}) {
    std::vector<uint8_t> ones(n, 1), zeros(n, 0);
    std::vector<sel_t> out(n);
    for (SimdLevel l : AvailableSimdLevels()) {
      EXPECT_EQ(simd::CompactTrue(n, ones.data(), out.data(), l), n);
      for (int i = 0; i < n; i++) EXPECT_EQ(out[i], i);
      EXPECT_EQ(simd::CompactTrue(n, zeros.data(), out.data(), l), 0);
    }
  }
}

// ---- select / map compare primitives ---------------------------------------

struct CmpCase {
  TypeId type;
  const char* op;
};

class SimdCompareTest : public SimdTest,
                        public ::testing::WithParamInterface<CmpCase> {};

TEST_P(SimdCompareTest, SelectAndMapParity) {
  const CmpCase& c = GetParam();
  auto i32 = RandomI32(1024);
  auto i64 = RandomI64(1024);
  auto f64 = RandomF64(1024);
  auto i32b = RandomI32(1024);
  auto i64b = RandomI64(1024);
  auto f64b = RandomF64(1024);
  const void* a_col = nullptr;
  const void* b_col = nullptr;
  const void* b_val = nullptr;
  switch (c.type) {
    case TypeId::kF64:
      a_col = f64.data(); b_col = f64b.data(); b_val = &f64b[7];
      break;
    case TypeId::kI64:
      a_col = i64.data(); b_col = i64b.data(); b_val = &i64b[7];
      break;
    default:  // kI32 / kDate share the i32 kernels
      a_col = i32.data(); b_col = i32b.data(); b_val = &i32b[7];
      break;
  }
  struct Shape {
    std::vector<ArgSig> sigs;
    const void* args[2];
  };
  const Shape shapes[] = {
      {{{c.type, false}, {c.type, false}}, {a_col, b_col}},
      {{{c.type, false}, {c.type, true}}, {a_col, b_val}},
      {{{c.type, true}, {c.type, false}}, {b_val, a_col}},
  };
  for (const Shape& sh : shapes) {
    SelectFn sref = reg()->FindSelect(c.op, sh.sigs, SimdLevel::kScalar);
    MapEntry mref = reg()->FindMap("map", c.op, sh.sigs, SimdLevel::kScalar);
    ASSERT_NE(sref, nullptr);
    ASSERT_NE(mref.fn, nullptr);
    for (SimdLevel l : NonScalarLevels()) {
      SelectFn svar = reg()->FindSelect(c.op, sh.sigs, l);
      MapEntry mvar = reg()->FindMap("map", c.op, sh.sigs, l);
      ASSERT_NE(svar, nullptr);
      ASSERT_NE(mvar.fn, nullptr);
      for (int n : kLens) {
        // Dense path. Only sel_out[0..k) is defined by the contract —
        // both the branch-free scalar kernels and the 8-wide permute
        // stores scribble candidates past the match count.
        std::vector<sel_t> sr(n + 1, -7), sv(n + 1, -7);
        int kr = sref(n, nullptr, sh.args, sr.data());
        int kv = svar(n, nullptr, sh.args, sv.data());
        ASSERT_EQ(kr, kv) << c.op << " n=" << n;
        sr.resize(kr);
        sv.resize(kv);
        EXPECT_EQ(sr, sv) << c.op << " n=" << n;
        sr.assign(n + 1, -7);
        sv.assign(n + 1, -7);
        std::vector<uint8_t> mr(n + 1, 0xCC), mv(n + 1, 0xCC);
        ASSERT_TRUE(mref.fn(n, nullptr, sh.args, mr.data(), nullptr).ok());
        ASSERT_TRUE(mvar.fn(n, nullptr, sh.args, mv.data(), nullptr).ok());
        EXPECT_EQ(mr, mv) << c.op << " map n=" << n;
        // Chained path: run through a pre-existing selection (every 3rd row).
        std::vector<sel_t> sel_in;
        for (int i = 0; i < n; i += 3) sel_in.push_back(i);
        const int ns = static_cast<int>(sel_in.size());
        kr = sref(ns, sel_in.data(), sh.args, sr.data());
        kv = svar(ns, sel_in.data(), sh.args, sv.data());
        ASSERT_EQ(kr, kv) << c.op << " sel n=" << n;
        sr.resize(kr);
        sv.resize(kv);
        EXPECT_EQ(sr, sv) << c.op << " sel n=" << n;
        std::fill(mr.begin(), mr.end(), 0xCC);
        std::fill(mv.begin(), mv.end(), 0xCC);
        ASSERT_TRUE(
            mref.fn(ns, sel_in.data(), sh.args, mr.data(), nullptr).ok());
        ASSERT_TRUE(
            mvar.fn(ns, sel_in.data(), sh.args, mv.data(), nullptr).ok());
        EXPECT_EQ(mr, mv) << c.op << " map sel n=" << n;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsAndTypes, SimdCompareTest,
    ::testing::Values(
        CmpCase{TypeId::kI32, "eq"}, CmpCase{TypeId::kI32, "ne"},
        CmpCase{TypeId::kI32, "lt"}, CmpCase{TypeId::kI32, "le"},
        CmpCase{TypeId::kI32, "gt"}, CmpCase{TypeId::kI32, "ge"},
        CmpCase{TypeId::kDate, "eq"}, CmpCase{TypeId::kDate, "lt"},
        CmpCase{TypeId::kDate, "ge"}, CmpCase{TypeId::kI64, "eq"},
        CmpCase{TypeId::kI64, "ne"}, CmpCase{TypeId::kI64, "lt"},
        CmpCase{TypeId::kI64, "le"}, CmpCase{TypeId::kI64, "gt"},
        CmpCase{TypeId::kI64, "ge"}, CmpCase{TypeId::kF64, "eq"},
        CmpCase{TypeId::kF64, "ne"}, CmpCase{TypeId::kF64, "lt"},
        CmpCase{TypeId::kF64, "le"}, CmpCase{TypeId::kF64, "gt"},
        CmpCase{TypeId::kF64, "ge"}));

// ---- boolean kernels -------------------------------------------------------

TEST_F(SimdTest, BoolKernelParity) {
  const char* binops[] = {"and", "or", "xor"};
  for (int n : kLens) {
    auto a = RandomBytes01(n);
    auto b = RandomBytes01(n);
    const void* args2[2] = {a.data(), b.data()};
    const void* args1[1] = {a.data()};
    std::vector<ArgSig> sig2 = {{TypeId::kBool, false}, {TypeId::kBool, false}};
    std::vector<ArgSig> sig1 = {{TypeId::kBool, false}};
    for (SimdLevel l : NonScalarLevels()) {
      for (const char* op : binops) {
        auto ref = reg()->FindMap("map", op, sig2, SimdLevel::kScalar);
        auto var = reg()->FindMap("map", op, sig2, l);
        ASSERT_NE(ref.fn, nullptr);
        ASSERT_NE(var.fn, nullptr);
        std::vector<uint8_t> mr(n + 1, 0xCC), mv(n + 1, 0xCC);
        ASSERT_TRUE(ref.fn(n, nullptr, args2, mr.data(), nullptr).ok());
        ASSERT_TRUE(var.fn(n, nullptr, args2, mv.data(), nullptr).ok());
        EXPECT_EQ(mr, mv) << op << " n=" << n;
      }
      auto ref = reg()->FindMap("map", "not", sig1, SimdLevel::kScalar);
      auto var = reg()->FindMap("map", "not", sig1, l);
      ASSERT_NE(ref.fn, nullptr);
      ASSERT_NE(var.fn, nullptr);
      std::vector<uint8_t> mr(n + 1, 0xCC), mv(n + 1, 0xCC);
      ASSERT_TRUE(ref.fn(n, nullptr, args1, mr.data(), nullptr).ok());
      ASSERT_TRUE(var.fn(n, nullptr, args1, mv.data(), nullptr).ok());
      EXPECT_EQ(mr, mv) << "not n=" << n;
    }
  }
}

// ---- hash kernels ----------------------------------------------------------

TEST_F(SimdTest, HashParityAllTypes) {
  // Hashes route rows to radix partitions and spill files: a single
  // differing bit would change which rows go out of core. Compare the full
  // 64-bit values.
  for (int n : kLens) {
    Vector vi32(TypeId::kI32, n + 1);
    Vector vdate(TypeId::kDate, n + 1);
    Vector vi64(TypeId::kI64, n + 1);
    Vector vf64(TypeId::kF64, n + 1);
    auto i32 = RandomI32(n);
    auto i64 = RandomI64(n);
    auto f64 = RandomF64(n);
    if (n > 0) {
      std::memcpy(vi32.RawData(), i32.data(), n * sizeof(int32_t));
      std::memcpy(vdate.RawData(), i32.data(), n * sizeof(int32_t));
      std::memcpy(vi64.RawData(), i64.data(), n * sizeof(int64_t));
      std::memcpy(vf64.RawData(), f64.data(), n * sizeof(double));
    }
    const Vector* cols[] = {&vi32, &vdate, &vi64, &vf64};
    for (const Vector* v : cols) {
      std::vector<uint64_t> ref(n, 0), got(n, 0);
      hashk::HashColumn(*v, n, nullptr, ref.data(), /*combine=*/false,
                        SimdLevel::kScalar);
      for (SimdLevel l : NonScalarLevels()) {
        hashk::HashColumn(*v, n, nullptr, got.data(), false, l);
        EXPECT_EQ(ref, got) << "type=" << static_cast<int>(v->type())
                            << " n=" << n << " level=" << SimdLevelName(l);
        // Multi-column combine chain: fold a second pass into the first.
        std::vector<uint64_t> ref2 = ref, got2 = ref;
        hashk::HashColumn(*v, n, nullptr, ref2.data(), /*combine=*/true,
                          SimdLevel::kScalar);
        hashk::HashColumn(*v, n, nullptr, got2.data(), true, l);
        EXPECT_EQ(ref2, got2) << "combine n=" << n;
      }
    }
  }
}

TEST_F(SimdTest, HashParityThroughSelectionVector) {
  const int n = 1024;
  Vector v(TypeId::kI64, n);
  auto data = RandomI64(n);
  std::memcpy(v.RawData(), data.data(), n * sizeof(int64_t));
  std::vector<sel_t> sel;
  for (int i = 0; i < n; i += 7) sel.push_back(i);
  const int ns = static_cast<int>(sel.size());
  std::vector<uint64_t> ref(ns), got(ns);
  hashk::HashColumn(v, ns, sel.data(), ref.data(), false, SimdLevel::kScalar);
  for (SimdLevel l : NonScalarLevels()) {
    hashk::HashColumn(v, ns, sel.data(), got.data(), false, l);
    EXPECT_EQ(ref, got) << SimdLevelName(l);
  }
}

TEST_F(SimdTest, HashSpecialDoublesMatchScalarReference) {
  // -0.0 must hash like 0.0 (they group together); NaN/inf must match the
  // scalar HashDouble exactly.
  const double vals[] = {0.0, -0.0, std::numeric_limits<double>::quiet_NaN(),
                         std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity(), 1.5, -2.25};
  const int n = 7;
  Vector v(TypeId::kF64, n);
  std::memcpy(v.RawData(), vals, sizeof(vals));
  for (SimdLevel l : AvailableSimdLevels()) {
    std::vector<uint64_t> h(n);
    hashk::HashColumn(v, n, nullptr, h.data(), false, l);
    for (int i = 0; i < n; i++) {
      EXPECT_EQ(h[i], HashDouble(vals[i])) << "i=" << i;
    }
    EXPECT_EQ(h[0], h[1]);  // -0.0 == 0.0
  }
}

// ---- aggregate update kernels ----------------------------------------------

struct AggAccum {
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<int64_t> count;
  explicit AggAccum(int groups) : i64(groups, 0), f64(groups, 0), count(groups, 0) {}
  bool BitIdentical(const AggAccum& o) const {
    return i64 == o.i64 && count == o.count &&
           std::memcmp(f64.data(), o.f64.data(),
                       f64.size() * sizeof(double)) == 0;
  }
};

TEST_F(SimdTest, KeylessAggParity) {
  const AggKind kinds[] = {AggKind::kCount, AggKind::kSum, AggKind::kAvg,
                           AggKind::kMin, AggKind::kMax};
  for (int n : kLens) {
    auto i32 = RandomI32(n);
    auto i64 = RandomI64(n);
    auto f64 = RandomF64(n);
    // Three NULL shapes: no indicator column, random mask, all-NULL.
    auto mask = RandomBytes01(n);
    std::vector<uint8_t> all_null(n, 1);
    struct Input {
      TypeId type;
      const void* data;
    };
    const Input inputs[] = {{TypeId::kI32, i32.data()},
                            {TypeId::kI64, i64.data()},
                            {TypeId::kF64, f64.data()}};
    const uint8_t* masks[] = {nullptr, mask.data(), all_null.data()};
    for (const Input& in : inputs) {
      for (const uint8_t* nulls : masks) {
        for (AggKind kind : kinds) {
          AggAccum ref(1);
          agg::UpdateAccum(kind, in.type, n, nullptr, nullptr, nulls, in.data,
                           ref.i64.data(), ref.f64.data(), ref.count.data(),
                           SimdLevel::kScalar);
          for (SimdLevel l : NonScalarLevels()) {
            AggAccum got(1);
            agg::UpdateAccum(kind, in.type, n, nullptr, nullptr, nulls,
                             in.data, got.i64.data(), got.f64.data(),
                             got.count.data(), l);
            EXPECT_TRUE(ref.BitIdentical(got))
                << "kind=" << AggKindName(kind)
                << " type=" << static_cast<int>(in.type) << " n=" << n
                << " nulls=" << (nulls ? (nulls[0] ? "all" : "mask") : "none");
          }
        }
      }
    }
  }
}

TEST_F(SimdTest, KeylessAggParityIntoWarmAccumulator) {
  // Vector #2 folds into state left by vector #1 — the min/max adopt rule
  // and the running sum must match scalar exactly across the boundary.
  const int n = 100;
  auto a = RandomI64(n);
  auto b = RandomI64(n);
  auto mask = RandomBytes01(n);
  for (AggKind kind : {AggKind::kSum, AggKind::kMin, AggKind::kMax}) {
    AggAccum ref(1);
    agg::UpdateAccum(kind, TypeId::kI64, n, nullptr, nullptr, mask.data(),
                     a.data(), ref.i64.data(), ref.f64.data(),
                     ref.count.data(), SimdLevel::kScalar);
    agg::UpdateAccum(kind, TypeId::kI64, n, nullptr, nullptr, nullptr,
                     b.data(), ref.i64.data(), ref.f64.data(),
                     ref.count.data(), SimdLevel::kScalar);
    for (SimdLevel l : NonScalarLevels()) {
      AggAccum got(1);
      agg::UpdateAccum(kind, TypeId::kI64, n, nullptr, nullptr, mask.data(),
                       a.data(), got.i64.data(), got.f64.data(),
                       got.count.data(), l);
      agg::UpdateAccum(kind, TypeId::kI64, n, nullptr, nullptr, nullptr,
                       b.data(), got.i64.data(), got.f64.data(),
                       got.count.data(), l);
      EXPECT_TRUE(ref.BitIdentical(got)) << AggKindName(kind);
    }
  }
}

TEST_F(SimdTest, GroupedAggMatchesScalarAtEveryLevel) {
  // The grouped path has no SIMD variant — passing a SIMD level must still
  // produce identical state (it takes the scalar route internally).
  const int n = 1024, groups = 8;
  auto data = RandomI32(n);
  auto mask = RandomBytes01(n);
  std::vector<uint32_t> gid(n);
  for (int i = 0; i < n; i++) gid[i] = rng_() % groups;
  for (AggKind kind : {AggKind::kSum, AggKind::kMin, AggKind::kMax}) {
    AggAccum ref(groups);
    agg::UpdateAccum(kind, TypeId::kI32, n, nullptr, gid.data(), mask.data(),
                     data.data(), ref.i64.data(), ref.f64.data(),
                     ref.count.data(), SimdLevel::kScalar);
    for (SimdLevel l : NonScalarLevels()) {
      AggAccum got(groups);
      agg::UpdateAccum(kind, TypeId::kI32, n, nullptr, gid.data(),
                       mask.data(), data.data(), got.i64.data(),
                       got.f64.data(), got.count.data(), l);
      EXPECT_TRUE(ref.BitIdentical(got)) << AggKindName(kind);
    }
  }
}

TEST_F(SimdTest, UpdateCountStar) {
  std::vector<int64_t> count(4, 0);
  agg::UpdateCountStar(100, nullptr, count.data());
  EXPECT_EQ(count[0], 100);
  std::vector<uint32_t> gid = {0, 1, 1, 3};
  agg::UpdateCountStar(4, gid.data(), count.data());
  EXPECT_EQ(count[0], 101);
  EXPECT_EQ(count[1], 2);
  EXPECT_EQ(count[3], 1);
}

// ---- end-to-end: whole queries across dispatch levels ----------------------

class SimdEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    auto b = db_->CreateTable(
        "t", Schema({Field("k", TypeId::kI64), Field("grp", TypeId::kI32),
                     Field("x", TypeId::kF64, /*nullable=*/true)}),
        Layout::kDsm, 128);
    std::mt19937_64 rng(7);
    for (int i = 0; i < 4000; i++) {
      b->AppendRow({Value::I64(static_cast<int64_t>(rng() % 500)),
                    Value::I32(static_cast<int32_t>(i % 13)),
                    i % 5 == 0 ? Value::Null(TypeId::kF64)
                               : Value::F64((i % 97) * 0.25)})
          .ok();
    }
    auto t = b->Finish();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(db_->RegisterTable(std::move(t).value()).ok());
    session_ = std::make_unique<Session>(db_.get());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> session_;
};

TEST_F(SimdEndToEndTest, QueriesIdenticalAcrossLevels) {
  const char* queries[] = {
      "SELECT COUNT(*) AS n, SUM(k) AS s, MIN(k) AS mn, MAX(k) AS mx "
      "FROM t WHERE k < 250",
      "SELECT grp, COUNT(x) AS c, SUM(x) AS s FROM t GROUP BY grp "
      "ORDER BY grp",
      "SELECT k, COUNT(*) AS n, MAX(x) AS mx FROM t WHERE grp < 9 "
      "GROUP BY k ORDER BY k",
  };
  for (const char* q : queries) {
    db_->config().simd_level = SimdMode::kScalar;
    auto scalar = session_->ExecuteSql(q);
    ASSERT_TRUE(scalar.ok()) << scalar.status().ToString() << "\n" << q;
    EXPECT_EQ(scalar->profile.simd, "scalar");
    db_->config().simd_level = SimdMode::kAuto;
    auto autod = session_->ExecuteSql(q);
    ASSERT_TRUE(autod.ok()) << autod.status().ToString();
    // kAuto resolves through the X100_SIMD env knob, so this holds under
    // the forced-scalar CI leg too.
    EXPECT_EQ(autod->profile.simd,
              SimdLevelName(ResolveSimdLevel(SimdMode::kAuto)));
    ASSERT_EQ(scalar->rows.size(), autod->rows.size()) << q;
    for (size_t i = 0; i < scalar->rows.size(); i++) {
      for (size_t c = 0; c < scalar->rows[i].size(); c++) {
        const Value& a = scalar->rows[i][c];
        const Value& b = autod->rows[i][c];
        // SqlEquals has SQL NULL semantics (NULL != NULL); an all-NULL
        // group must produce NULL at both levels.
        EXPECT_TRUE((a.is_null() && b.is_null()) || a.SqlEquals(b))
            << q << " row " << i << " col " << c;
      }
    }
  }
  db_->config().simd_level = SimdMode::kAuto;
}

TEST_F(SimdEndToEndTest, ProfileReportsResolvedLevel) {
  db_->config().simd_level = SimdMode::kScalar;
  auto res = session_->ExecuteSql("SELECT COUNT(*) AS n FROM t");
  ASSERT_TRUE(res.ok());
  EXPECT_NE(res->profile.ToString().find("simd=scalar"), std::string::npos);
  db_->config().simd_level = SimdMode::kAuto;
}

}  // namespace
}  // namespace x100
