// Compression codec tests: bitpack round-trips, PFOR/PFOR-DELTA/PDICT/RLE
// round-trips, codec choice heuristics, corruption handling, and
// property-style sweeps across data distributions (TEST_P).
#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"
#include "compression/bitpack.h"
#include "compression/codec.h"

namespace x100 {
namespace {

TEST(BitPackTest, RoundTripAllWidths) {
  Rng rng(1);
  for (int width = 0; width <= 64; width++) {
    const int n = 200;
    std::vector<uint64_t> in(n), out(n);
    const uint64_t mask =
        width == 64 ? ~0ull : (width == 0 ? 0 : (1ull << width) - 1);
    for (int i = 0; i < n; i++) in[i] = rng.Next() & mask;
    std::vector<uint8_t> buf(PackedBytes(n, width));
    BitPack(in.data(), n, width, buf.data());
    BitUnpack(buf.data(), n, width, out.data());
    EXPECT_EQ(in, out) << "width=" << width;
  }
}

TEST(BitPackTest, PackedSizeIsTight) {
  // 1000 values of 7 bits = 875 bytes payload.
  std::vector<uint64_t> in(1000, 0x55);
  std::vector<uint8_t> buf(PackedBytes(1000, 7));
  size_t bytes = BitPack(in.data(), 1000, 7, buf.data());
  EXPECT_EQ(bytes, 875u);
}

// ---- typed round-trip helpers ----------------------------------------------

template <typename T>
void ExpectRoundTrip(CodecId codec, const std::vector<T>& in) {
  std::vector<uint8_t> buf;
  ASSERT_TRUE(CompressColumn<T>(codec, in.data(),
                                static_cast<int>(in.size()), &buf)
                  .ok())
      << CodecName(codec);
  auto h = PeekHeader(buf.data(), buf.size());
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->n, in.size());
  std::vector<T> out(in.size());
  ASSERT_TRUE(DecompressColumn<T>(buf.data(), buf.size(), out.data()).ok());
  EXPECT_EQ(in, out) << CodecName(codec);
}

TEST(CodecTest, PlainRoundTripI64) {
  ExpectRoundTrip<int64_t>(CodecId::kPlain, {1, -2, 3, 1ll << 60, -5});
}

TEST(CodecTest, PforRoundTripSmallRange) {
  std::vector<int32_t> in;
  Rng rng(2);
  for (int i = 0; i < 5000; i++) {
    in.push_back(static_cast<int32_t>(rng.Uniform(100, 227)));
  }
  ExpectRoundTrip<int32_t>(CodecId::kPfor, in);
  // 7-bit range: compressed must be ~1 byte/value, far below 4.
  std::vector<uint8_t> buf;
  ASSERT_TRUE(
      CompressColumn<int32_t>(CodecId::kPfor, in.data(), 5000, &buf).ok());
  EXPECT_LT(buf.size(), 5000u * 2);
}

TEST(CodecTest, PforPatchesOutliers) {
  // 1% outliers must not blow up the bit width (the PFOR design point).
  std::vector<int64_t> in;
  Rng rng(3);
  for (int i = 0; i < 10000; i++) {
    in.push_back(rng.Bernoulli(0.01)
                     ? rng.Uniform(1ll << 40, 1ll << 41)
                     : rng.Uniform(0, 255));
  }
  ExpectRoundTrip<int64_t>(CodecId::kPfor, in);
  std::vector<uint8_t> buf;
  ASSERT_TRUE(
      CompressColumn<int64_t>(CodecId::kPfor, in.data(), 10000, &buf).ok());
  // ~8 bits/value + ~100 exceptions*12B << plain 80000B.
  EXPECT_LT(buf.size(), 16000u);
}

TEST(CodecTest, PforExtremeRange) {
  ExpectRoundTrip<int64_t>(CodecId::kPfor,
                           {std::numeric_limits<int64_t>::min(), 0,
                            std::numeric_limits<int64_t>::max(), -1, 1});
}

TEST(CodecTest, PforDeltaRoundTripSorted) {
  std::vector<int64_t> in;
  Rng rng(4);
  int64_t v = 0;
  for (int i = 0; i < 8000; i++) {
    v += rng.Uniform(0, 3);
    in.push_back(v);
  }
  ExpectRoundTrip<int64_t>(CodecId::kPforDelta, in);
  std::vector<uint8_t> buf;
  ASSERT_TRUE(
      CompressColumn<int64_t>(CodecId::kPforDelta, in.data(), 8000, &buf)
          .ok());
  EXPECT_LT(buf.size(), 8000u * 2);  // ~3 bits/value
}

TEST(CodecTest, PforDeltaHandlesDescendingAndNegatives) {
  std::vector<int32_t> in;
  for (int i = 0; i < 1000; i++) in.push_back(1000 - i * 3);
  ExpectRoundTrip<int32_t>(CodecId::kPforDelta, in);
}

TEST(CodecTest, RleRoundTrip) {
  std::vector<int32_t> in;
  for (int r = 0; r < 50; r++) {
    for (int i = 0; i < 100; i++) in.push_back(r % 7);
  }
  ExpectRoundTrip<int32_t>(CodecId::kRle, in);
  std::vector<uint8_t> buf;
  ASSERT_TRUE(CompressColumn<int32_t>(CodecId::kRle, in.data(),
                                      static_cast<int>(in.size()), &buf)
                  .ok());
  EXPECT_LT(buf.size(), 600u);  // 50 runs * 8B + headers
}

TEST(CodecTest, RleRoundTripDouble) {
  std::vector<double> in(500, 0.05);
  for (int i = 250; i < 500; i++) in[i] = 0.07;
  ExpectRoundTrip<double>(CodecId::kRle, in);
}

TEST(CodecTest, EmptyColumn) {
  ExpectRoundTrip<int32_t>(CodecId::kPlain, {});
  ExpectRoundTrip<int32_t>(CodecId::kRle, {});
}

TEST(CodecTest, SingleValue) {
  ExpectRoundTrip<int64_t>(CodecId::kPfor, {42});
  ExpectRoundTrip<int64_t>(CodecId::kPforDelta, {-42});
}

TEST(CodecTest, PforRejectsDoubles) {
  std::vector<double> in = {1.0};
  std::vector<uint8_t> buf;
  EXPECT_EQ(CompressColumn<double>(CodecId::kPfor, in.data(), 1, &buf).code(),
            StatusCode::kInvalidArgument);
}

TEST(CodecTest, DecompressRejectsTruncation) {
  std::vector<int32_t> in(100, 5);
  std::vector<uint8_t> buf;
  ASSERT_TRUE(
      CompressColumn<int32_t>(CodecId::kPlain, in.data(), 100, &buf).ok());
  std::vector<int32_t> out(100);
  EXPECT_FALSE(
      DecompressColumn<int32_t>(buf.data(), buf.size() - 50, out.data()).ok());
  EXPECT_FALSE(DecompressColumn<int32_t>(buf.data(), 3, out.data()).ok());
}

// ---- codec choice -----------------------------------------------------------

TEST(ChooseCodecTest, PicksRleForRuns) {
  std::vector<int32_t> in(10000, 7);
  EXPECT_EQ(ChooseCodec<int32_t>(in.data(), 10000), CodecId::kRle);
}

TEST(ChooseCodecTest, PicksPforDeltaForSorted) {
  std::vector<int64_t> in;
  for (int i = 0; i < 10000; i++) in.push_back(1000000ll + i * 2);
  EXPECT_EQ(ChooseCodec<int64_t>(in.data(), 10000), CodecId::kPforDelta);
}

TEST(ChooseCodecTest, PicksPforForSmallRangeUnsorted) {
  Rng rng(5);
  std::vector<int64_t> in;
  for (int i = 0; i < 10000; i++) {
    in.push_back(rng.Uniform(1ll << 40, (1ll << 40) + 1000));
  }
  EXPECT_EQ(ChooseCodec<int64_t>(in.data(), 10000), CodecId::kPfor);
}

TEST(ChooseCodecTest, PlainForIncompressibleDoubles) {
  Rng rng(6);
  std::vector<double> in;
  for (int i = 0; i < 1000; i++) in.push_back(rng.NextDouble());
  EXPECT_EQ(ChooseCodec<double>(in.data(), 1000), CodecId::kPlain);
}

// ---- strings ----------------------------------------------------------------

class StrCodecTest : public ::testing::Test {
 protected:
  StringHeap src_heap_;
  std::vector<StrRef> Make(const std::vector<std::string>& v) {
    std::vector<StrRef> out;
    for (const auto& s : v) out.push_back(src_heap_.Add(s));
    return out;
  }
  void ExpectStrRoundTrip(CodecId codec, const std::vector<StrRef>& in) {
    std::vector<uint8_t> buf;
    ASSERT_TRUE(CompressStrColumn(codec, in.data(),
                                  static_cast<int>(in.size()), &buf)
                    .ok());
    StringHeap heap;
    std::vector<StrRef> out(in.size());
    ASSERT_TRUE(
        DecompressStrColumn(buf.data(), buf.size(), &heap, out.data()).ok());
    for (size_t i = 0; i < in.size(); i++) {
      EXPECT_EQ(in[i].view(), out[i].view()) << i;
    }
  }
};

TEST_F(StrCodecTest, PlainRoundTrip) {
  ExpectStrRoundTrip(CodecId::kPlain,
                     Make({"alpha", "", "beta", "gamma-very-long-string",
                           "delta", ""}));
}

TEST_F(StrCodecTest, PdictRoundTrip) {
  std::vector<std::string> base = {"AIR", "RAIL", "SHIP", "TRUCK", "MAIL"};
  std::vector<std::string> data;
  Rng rng(7);
  for (int i = 0; i < 3000; i++) {
    data.push_back(base[rng.Uniform(0, 4)]);
  }
  ExpectStrRoundTrip(CodecId::kPdict, Make(data));
}

TEST_F(StrCodecTest, PdictCompressesLowCardinality) {
  std::vector<std::string> data(5000, "RETURNED");
  for (int i = 0; i < 5000; i += 3) data[i] = "PENDING";
  auto refs = Make(data);
  std::vector<uint8_t> buf;
  ASSERT_TRUE(
      CompressStrColumn(CodecId::kPdict, refs.data(), 5000, &buf).ok());
  // 1 bit/value + tiny dict vs ~8 bytes/value plain.
  EXPECT_LT(buf.size(), 1000u);
  EXPECT_EQ(ChooseStrCodec(refs.data(), 5000), CodecId::kPdict);
}

TEST_F(StrCodecTest, ChoosesPlainForUniqueStrings) {
  std::vector<std::string> data;
  for (int i = 0; i < 500; i++) data.push_back("unique-" + std::to_string(i));
  auto refs = Make(data);
  EXPECT_EQ(ChooseStrCodec(refs.data(), 500), CodecId::kPlain);
}

TEST_F(StrCodecTest, EmptyColumn) {
  ExpectStrRoundTrip(CodecId::kPlain, {});
  ExpectStrRoundTrip(CodecId::kPdict, {});
}

TEST_F(StrCodecTest, CorruptPdictCodeDetected) {
  auto refs = Make({"a", "b"});
  std::vector<uint8_t> buf;
  ASSERT_TRUE(CompressStrColumn(CodecId::kPdict, refs.data(), 2, &buf).ok());
  StringHeap heap;
  std::vector<StrRef> out(2);
  EXPECT_FALSE(
      DecompressStrColumn(buf.data(), buf.size() / 2, &heap, out.data()).ok());
}

// ---- property sweep: every codec round-trips every distribution -------------

struct DistCase {
  const char* name;
  int n;
  uint64_t seed;
  int64_t lo, hi;
  double outlier_p;
  bool sorted;
};

class CodecPropertyTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(CodecPropertyTest, AllIntCodecsRoundTrip) {
  const DistCase& c = GetParam();
  Rng rng(c.seed);
  std::vector<int64_t> in;
  in.reserve(c.n);
  for (int i = 0; i < c.n; i++) {
    int64_t v = rng.Uniform(c.lo, c.hi);
    if (c.outlier_p > 0 && rng.Bernoulli(c.outlier_p)) {
      v = rng.Uniform(std::numeric_limits<int64_t>::min() / 2,
                      std::numeric_limits<int64_t>::max() / 2);
    }
    in.push_back(v);
  }
  if (c.sorted) std::sort(in.begin(), in.end());
  for (CodecId codec : {CodecId::kPlain, CodecId::kPfor, CodecId::kPforDelta,
                        CodecId::kRle}) {
    std::vector<uint8_t> buf;
    ASSERT_TRUE(CompressColumn<int64_t>(codec, in.data(), c.n, &buf).ok())
        << CodecName(codec);
    std::vector<int64_t> out(c.n);
    ASSERT_TRUE(
        DecompressColumn<int64_t>(buf.data(), buf.size(), out.data()).ok())
        << CodecName(codec);
    ASSERT_EQ(in, out) << c.name << " via " << CodecName(codec);
  }
  // The chosen codec must also round-trip.
  const CodecId chosen = ChooseCodec<int64_t>(in.data(), c.n);
  std::vector<uint8_t> buf;
  ASSERT_TRUE(CompressColumn<int64_t>(chosen, in.data(), c.n, &buf).ok());
  std::vector<int64_t> out(c.n);
  ASSERT_TRUE(
      DecompressColumn<int64_t>(buf.data(), buf.size(), out.data()).ok());
  ASSERT_EQ(in, out) << "chosen codec " << CodecName(chosen);
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, CodecPropertyTest,
    ::testing::Values(
        DistCase{"tiny_range", 4096, 11, 0, 15, 0, false},
        DistCase{"byte_range", 4096, 12, -128, 127, 0, false},
        DistCase{"outliers_1pct", 4096, 13, 0, 255, 0.01, false},
        DistCase{"outliers_10pct", 4096, 14, 0, 255, 0.10, false},
        DistCase{"full_random", 2048, 15, std::numeric_limits<int64_t>::min(),
                 std::numeric_limits<int64_t>::max(), 0, false},
        DistCase{"sorted_clustered", 4096, 16, 0, 1000000, 0, true},
        DistCase{"sorted_outliers", 4096, 17, 0, 1000, 0.02, true},
        DistCase{"constant", 4096, 18, 7, 7, 0, false},
        DistCase{"two_values", 4096, 19, 0, 1, 0, false},
        DistCase{"negative_range", 4096, 20, -1000000, -999000, 0, false}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace x100
