// E7 — §"Error handling": per-tuple overflow checks ("naive") vs the
// kernel's branch-free flag-accumulation ("special algorithm"), vs no
// checking at all, for add/mul/div.
#include "bench_util.h"
#include "common/rng.h"
#include "primitives/checked_kernels.h"

using namespace x100;

int main() {
  bench::Header("E7", "overflow detection: naive vs kernel special algorithm");
  const int kN = 1024;
  const int kVectors = 8192;
  Rng rng(5);
  std::vector<int64_t> a(kN), b(kN), out(kN);
  for (int i = 0; i < kN; i++) {
    a[i] = rng.Uniform(-(1ll << 40), 1ll << 40);
    b[i] = rng.Uniform(-(1ll << 20), 1ll << 20);
    if (b[i] == 0) b[i] = 1;
  }

  auto run = [&](const std::function<void()>& fn) {
    return bench::MinTime(5, [&] {
      for (int v = 0; v < kVectors; v++) fn();
    });
  };

  using checked::CheckedAdd;
  using checked::CheckedMul;
  const double tuples = static_cast<double>(kN) * kVectors;

  struct Row {
    const char* op;
    double unchecked, naive, kernel;
  };
  Row rows[3];
  rows[0] = {"add",
             run([&] {
               checked::BinaryUnchecked<int64_t, CheckedAdd>(
                   kN, a.data(), b.data(), out.data());
             }),
             run([&] {
               (void)checked::BinaryCheckedNaive<int64_t, CheckedAdd>(
                   kN, a.data(), b.data(), out.data());
             }),
             run([&] {
               (void)checked::BinaryCheckedKernel<int64_t, CheckedAdd>(
                   kN, a.data(), b.data(), out.data());
             })};
  rows[1] = {"mul",
             run([&] {
               checked::BinaryUnchecked<int64_t, CheckedMul>(
                   kN, a.data(), b.data(), out.data());
             }),
             run([&] {
               (void)checked::BinaryCheckedNaive<int64_t, CheckedMul>(
                   kN, a.data(), b.data(), out.data());
             }),
             run([&] {
               (void)checked::BinaryCheckedKernel<int64_t, CheckedMul>(
                   kN, a.data(), b.data(), out.data());
             })};
  rows[2] = {"div",
             run([&] {
               for (int i = 0; i < kN; i++) out[i] = a[i] / b[i];
             }),
             run([&] {
               (void)checked::DivCheckedNaive<int64_t>(kN, a.data(), b.data(),
                                                       out.data());
             }),
             run([&] {
               (void)checked::DivCheckedKernel<int64_t>(kN, a.data(),
                                                        b.data(), out.data());
             })};

  std::printf("%-6s %14s %14s %14s %18s %18s\n", "op", "unchecked",
              "naive-check", "kernel-check", "naive overhead", "kernel overhead");
  for (const Row& r : rows) {
    std::printf("%-6s %11.2f ns %11.2f ns %11.2f ns %17.1f%% %17.1f%%\n",
                r.op, r.unchecked * 1e9 * kN / tuples,
                r.naive * 1e9 * kN / tuples, r.kernel * 1e9 * kN / tuples,
                (r.naive / r.unchecked - 1) * 100,
                (r.kernel / r.unchecked - 1) * 100);
  }
  std::printf("\n(ns per 1024-tuple vector element; overheads relative to"
              " unchecked)\n");
  return 0;
}
