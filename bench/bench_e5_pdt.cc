// E5 — PDT differential updates [2]: update throughput, positional
// merge-scan overhead as a function of the delta fraction, and the
// value-based (key-probing) delta baseline PDTs replace.
#include <unordered_map>

#include "bench_util.h"
#include "common/rng.h"
#include "engine/database.h"
#include "exec/scan.h"
#include "exec/select_project.h"
#include "pdt/transaction.h"

using namespace x100;

int main() {
  bench::Header("E5", "Positional Delta Trees: updates + merge scans");
  const int64_t kRows = 256 * 1024;

  // --- update throughput on the committed read-PDT ------------------------
  {
    Pdt pdt(kRows);
    Rng rng(1);
    const int kOps = 50000;
    bench::Timer t;
    for (int i = 0; i < kOps; i++) {
      (void)pdt.InsertAt(rng.Uniform(0, pdt.visible_rows()),
                         {Value::I64(i)});
    }
    const double ins = t.Seconds();
    t.Reset();
    for (int i = 0; i < kOps; i++) {
      (void)pdt.ModifyAt(rng.Uniform(0, pdt.visible_rows() - 1), 0,
                         Value::I64(-i));
    }
    const double mod = t.Seconds();
    t.Reset();
    for (int i = 0; i < kOps; i++) {
      (void)pdt.DeleteAt(rng.Uniform(0, pdt.visible_rows() - 1));
    }
    const double del = t.Seconds();
    std::printf("update throughput (base %lld rows, %d ops each):\n",
                static_cast<long long>(kRows), kOps);
    std::printf("  random insert: %8.0f ops/s\n", kOps / ins);
    std::printf("  random modify: %8.0f ops/s\n", kOps / mod);
    std::printf("  random delete: %8.0f ops/s\n", kOps / del);
  }

  // --- merge-scan overhead vs delta fraction ------------------------------
  Database db;
  auto builder = db.CreateTable(
      "t", Schema({Field("id", TypeId::kI64), Field("v", TypeId::kF64)}),
      Layout::kDsm);
  for (int64_t i = 0; i < kRows; i++) {
    (void)builder->AppendRow({Value::I64(i), Value::F64(i * 0.5)});
  }
  {
    auto t = builder->Finish();
    (void)db.RegisterTable(std::move(t).value());
  }
  UpdatableTable* table = *db.GetTable("t");
  TransactionManager tm;

  auto scan_time = [&] {
    return bench::MinTime(3, [&] {
      ExecContext ctx;
      ScanOptions opts;
      opts.columns = {0, 1};
      ScanOp scan(table->View(), table->SnapshotPdt(), db.buffers(), opts);
      auto res = CollectRows(&scan, &ctx);
      if (!res.ok()) std::abort();
    });
  };
  const double clean = scan_time();
  std::printf("\nmerge-scan overhead (%lld rows):\n",
              static_cast<long long>(kRows));
  std::printf("  %-14s %12s %10s\n", "delta fraction", "scan(ms)",
              "overhead");
  std::printf("  %-14s %12.2f %10s\n", "0%", clean * 1e3, "1.00x");
  Rng rng(2);
  double frac_done = 0;
  for (double frac : {0.001, 0.01, 0.1}) {
    auto txn = tm.Begin(table);
    const int64_t target = static_cast<int64_t>(kRows * (frac - frac_done));
    for (int64_t i = 0; i < target; i++) {
      (void)txn->Update(rng.Uniform(0, kRows - 1), 1, Value::F64(-1.0));
    }
    (void)tm.Commit(txn.get());
    frac_done = frac;
    const double t = scan_time();
    std::printf("  %-14.1f%% %11.2f %9.2fx\n", frac * 100, t * 1e3,
                t / clean);
  }

  // --- value-based delta baseline: probe a key-hash per scanned row -------
  {
    std::unordered_map<int64_t, double> deltas;
    Rng r2(3);
    for (int64_t i = 0; i < kRows / 10; i++) {
      deltas[r2.Uniform(0, kRows - 1)] = -1.0;
    }
    std::vector<int64_t> ids(kRows);
    std::vector<double> vals(kRows);
    for (int64_t i = 0; i < kRows; i++) {
      ids[i] = i;
      vals[i] = i * 0.5;
    }
    const double t = bench::MinTime(3, [&] {
      double sum = 0;
      for (int64_t i = 0; i < kRows; i++) {
        auto it = deltas.find(ids[i]);  // per-row key probe
        sum += it == deltas.end() ? vals[i] : it->second;
      }
      if (sum == 12345.6789) std::abort();
    });
    std::printf("\nvalue-based delta baseline (10%% deltas, key probe per"
                " row): %.2f ms\n", t * 1e3);
    std::printf("PDT positional merge at 10%% deltas avoids per-row probes"
                " — see table above.\n");
  }
  return 0;
}
