// E12 — §"Many Functions": throughput of hand-written kernels vs
// rewriter-expanded compositions ("some functions were implemented in the
// rewriter phase … for others, manual implementation was needed").
//
// Every expression runs once per SIMD dispatch level the machine supports,
// so a regression in either the scalar kernels or the registered SIMD
// variants shows up side by side. `--json <path>` writes BENCH_E12.json.
#include "bench_util.h"
#include "common/rng.h"
#include "exec/expression.h"
#include "rewriter/rewriter.h"

using namespace x100;

namespace {

double RunExpr(const ExprPtr& expr, const Schema& schema, Batch* batch,
               int iters, SimdLevel simd) {
  auto bound = BindExpr(expr, schema);
  if (!bound.ok()) std::abort();
  auto prog = ExprProgram::Compile(*bound, batch->capacity(), simd);
  if (!prog.ok()) std::abort();
  return bench::MinTime(3, [&] {
    for (int i = 0; i < iters; i++) {
      auto r = (*prog)->Eval(*batch);
      if (!r.ok()) std::abort();
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  bench::Header("E12", "SQL functions: kernels vs rewriter expansions");
  bench::JsonReport json("E12", argc, argv);
  EnsureKernelsRegistered();
  auto* reg = PrimitiveRegistry::Get();
  const auto levels = AvailableSimdLevels();
  std::printf("registered primitives: %d map + %d select (+%d simd"
              " variants) — the paper's 'dozens of functions'\n\n",
              reg->num_map_primitives(), reg->num_select_primitives(),
              reg->num_simd_variants());

  const int kN = 1024, kIters = 2000;
  Schema schema({Field("s", TypeId::kStr), Field("d", TypeId::kDate),
                 Field("x", TypeId::kF64)});
  Batch batch(schema, kN);
  Rng rng(9);
  for (int i = 0; i < kN; i++) {
    batch.column(0)->Data<StrRef>()[i] = batch.column(0)->heap()->Add(
        "Shipment-" + std::to_string(rng.Uniform(1000, 999999)));
    batch.column(1)->Data<int32_t>()[i] =
        static_cast<int32_t>(rng.Uniform(8000, 10500));
    batch.column(2)->Data<double>()[i] = rng.NextDouble() * 200 - 100;
  }
  batch.set_rows(kN);
  const double per = 1e9 / (static_cast<double>(kN) * kIters);

  Rewriter rw;
  auto expand = [&](ExprPtr e) { return *rw.ExpandFunctions(std::move(e)); };

  struct Entry {
    const char* name;
    ExprPtr expr;
  };
  std::vector<Entry> entries;
  entries.push_back({"upper(s)            [kernel]",
                     Call("upper", {Col("s")})});
  entries.push_back({"length(s)           [kernel]",
                     Call("length", {Col("s")})});
  entries.push_back(
      {"substring(s,1,4)    [kernel]",
       Call("substring",
            {Col("s"), Lit(Value::I32(1)), Lit(Value::I32(4))})});
  entries.push_back({"left(s,4)           [rewriter->substring]",
                     expand(Call("left", {Col("s"), Lit(Value::I32(4))}))});
  entries.push_back({"right(s,4)          [rewriter->substr+len]",
                     expand(Call("right", {Col("s"), Lit(Value::I32(4))}))});
  entries.push_back({"like(s,'Ship%')     [kernel]",
                     Call("like", {Col("s"), Lit(Value::Str("Ship%"))})});
  entries.push_back({"year(d)             [kernel]",
                     Call("year", {Col("d")})});
  entries.push_back({"quarter(d)          [kernel]",
                     Call("quarter", {Col("d")})});
  entries.push_back({"d >= 9000           [kernel, simd variant]",
                     Call("ge", {Col("d"), Lit(Value::I32(9000))})});
  entries.push_back({"x < 0               [kernel, simd variant]",
                     Call("lt", {Col("x"), Lit(Value::F64(0))})});
  entries.push_back({"abs(x)              [rewriter->ifthenelse]",
                     expand(Call("abs", {Col("x")}))});
  entries.push_back({"sign(x)             [rewriter->nested if]",
                     expand(Call("sign", {Col("x")}))});
  entries.push_back(
      {"x between -10,10    [rewriter->ge&le]",
       expand(Call("between", {Col("x"), Lit(Value::F64(-10)),
                               Lit(Value::F64(10))}))});

  std::printf("%-42s", "function, ns/tuple at level:");
  for (SimdLevel l : levels) std::printf(" %12s", SimdLevelName(l));
  std::printf("\n");
  for (const Entry& e : entries) {
    std::printf("%-42s", e.name);
    for (SimdLevel l : levels) {
      const double ns = RunExpr(e.expr, schema, &batch, kIters, l) * per;
      std::printf(" %12.2f", ns);
      // Strip the padded annotation for the JSON name.
      std::string name(e.name);
      name = name.substr(0, name.find_first_of(' '));
      json.Add(name + " " + SimdLevelName(l), ns);
    }
    std::printf("\n");
  }
  std::printf("\nrewriter expansions run at kernel-composition speed — the"
              " cheap path for the long tail of SQL functions.\n");
  return json.Write() ? 0 : 1;
}
