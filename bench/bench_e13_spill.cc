// E13 — memory-accounted spill-to-disk: in-memory vs out-of-core
// throughput for the E8 group-by-join+sort workload.
//
// The paper's product lesson (§"things researchers do not think about"):
// graceful degradation under memory pressure is table stakes. This bench
// runs orders ⋈ lineitem -> group-by -> sort at three memory_limit
// points derived from the measured in-memory peak:
//   unlimited — the reference (0% spilled),
//   tight     — ~half the peak (a sizable fraction of breaker state
//               spills),
//   very tight — ~1/24th of the peak (nearly all build/agg/sort state
//               streams through SpillFile).
// Every configuration must reproduce the unlimited run's result exactly
// (the determinism self-check doubles as the CI gate, like bench_e8), the
// tight configurations must actually spill (nonzero spilled bytes in the
// profile), and the tracker must drain to zero after every query.
#include <cinttypes>
#include <cmath>

#include "bench_util.h"
#include "common/hash.h"
#include "engine/session.h"
#include "tpch/tpch.h"

using namespace x100;

namespace {

/// Order-independent result checksum (rows arrive in sorted order here,
/// but hashing per-row and XOR-folding keeps the checksum stable even
/// for plans without a sort sink). CI runs this bench once on the
/// SimulatedDisk and once with X100_SPILL_PATH set, and diffs the
/// printed checksums: the storage device must never change an answer.
uint64_t ResultChecksum(const QueryResult& r) {
  uint64_t sum = HashMix(r.rows.size());
  for (const auto& row : r.rows) {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& v : row) {
      const std::string s = v.ToString();
      h = HashCombine(h, HashBytes(s.data(), s.size()));
    }
    sum ^= h;
  }
  return sum;
}

AlgebraPtr GroupByJoinSortPlan() {
  // The E8 shape (orders ⋈ lineitem -> group-by -> sort), but grouped
  // per ORDER KEY rather than per priority: every breaker then carries
  // real state (build: all orders; agg: one group per order; sort: one
  // row per order), comfortably above the kMinSpillBytes floor, so each
  // of them visibly spills at the tight limits. The unique integer sort
  // key keeps row order deterministic.
  AlgebraPtr join = JoinNode(
      ScanNode("orders", {"o_orderkey", "o_orderpriority"}),
      ScanNode("lineitem", {"l_orderkey", "l_extendedprice"}),
      JoinType::kInner, {"o_orderkey"}, {"l_orderkey"});
  AlgebraPtr aggr =
      AggrNode(std::move(join), {{"okey", Col("o_orderkey")}},
               {{AggKind::kSum, Col("l_extendedprice"), "revenue"},
                {AggKind::kCount, nullptr, "items"}});
  return OrderNode(std::move(aggr), {{"okey", true}});
}

bool SameRows(const QueryResult& a, const QueryResult& b) {
  if (a.rows.size() != b.rows.size()) return false;
  for (size_t i = 0; i < a.rows.size(); i++) {
    for (size_t c = 0; c < a.rows[i].size(); c++) {
      const Value& x = a.rows[i][c];
      const Value& y = b.rows[i][c];
      if (x.type() == TypeId::kF64 || y.type() == TypeId::kF64) {
        // FP sums depend on merge order; accept relative eps.
        const double dx = x.AsF64(), dy = y.AsF64();
        if (std::abs(dx - dy) > 1e-9 * (1 + std::abs(dx))) return false;
      } else if (!x.SqlEquals(y)) {
        return false;
      }
    }
  }
  return true;
}

int64_t SpilledBytes(const QueryProfile& p) {
  int64_t b = 0;
  for (const OperatorProfile& op : p.operators) b += op.spill_bytes;
  return b;
}

}  // namespace

int main() {
  bench::Header("E13", "memory-accounted spill-to-disk (out-of-core)");
  EngineConfig cfg;
  cfg.buffer_pool_bytes = 1024 * kDiskBlockBytes;
  cfg.max_parallelism = 4;
  cfg.scheduler_workers = 4;
  Database db(cfg);
  if (!tpch::Generate(&db, 0.02).ok()) return 1;
  Session session(&db);
  (void)session.Execute(GroupByJoinSortPlan());  // warm

  // Measure the in-memory peak to derive the spilling limits.
  db.memory()->ResetPeak();
  auto reference = session.Execute(GroupByJoinSortPlan());
  if (!reference.ok()) {
    std::printf("reference failed: %s\n",
                reference.status().ToString().c_str());
    return 1;
  }
  const int64_t peak = db.memory()->peak();
  std::printf("in-memory peak: %.2f MB\n", peak / 1e6);
  const std::string spill_dir =
      Database::ResolvedSpillPath(db.config().spill_path);
  std::printf("spill device: %s\n\n",
              spill_dir.empty()
                  ? "SimulatedDisk (in-RAM)"
                  : ("file-backed (" + spill_dir + ")").c_str());

  struct Point {
    const char* name;
    int64_t limit;
    bool expect_spill;
  };
  const Point points[] = {
      {"unlimited", 0, false},
      {"tight (peak/2)", peak / 2, true},
      {"very tight (peak/24)", peak / 24, true},
  };

  // Reload traffic must be read off the device that actually took the
  // spill — with X100_SPILL_PATH that is the FileSpillDevice, and the
  // SimulatedDisk's counters would show only table IO.
  auto spill_dev = db.spill_device();
  if (!spill_dev.ok()) {
    std::printf("spill device unavailable: %s\n",
                spill_dev.status().ToString().c_str());
    return 1;
  }

  bool ok = true;
  std::printf("%-22s %10s %12s %12s %8s   %s\n", "memory_limit", "ms",
              "spilled(MB)", "reload(MB)", "leak(B)", "determinism");
  for (const Point& pt : points) {
    db.config().memory_limit = pt.limit;
    const int64_t read0 = (*spill_dev)->spill_bytes_read();
    const double t = bench::MinTime(2, [&] {
      auto r = session.Execute(GroupByJoinSortPlan());
      if (!r.ok()) std::abort();
    });
    auto res = session.Execute(GroupByJoinSortPlan());
    if (!res.ok()) return 1;
    const bool same = SameRows(*reference, *res);
    const int64_t spilled = SpilledBytes(res->profile);
    const int64_t leak = db.memory()->used();
    std::printf("%-22s %10.2f %12.2f %12.2f %8lld   %s\n", pt.name, t * 1e3,
                spilled / 1e6,
                ((*spill_dev)->spill_bytes_read() - read0) / 1e6,
                static_cast<long long>(leak), same ? "ok" : "MISMATCH");
    ok &= same;
    ok &= leak == 0;  // reservations must drain after every query
    if (pt.expect_spill && spilled == 0) {
      std::printf("  ^ expected spilling at this limit, saw none\n");
      ok = false;
    }
    if (!pt.expect_spill && spilled != 0) {
      std::printf("  ^ unexpected spilling with no limit\n");
      ok = false;
    }
  }
  db.config().memory_limit = 0;

  // Per-breaker visibility at the tightest point: each pipeline breaker
  // must report nonzero spilled bytes in the profile.
  db.config().memory_limit = peak / 24;
  auto profiled = session.Execute(GroupByJoinSortPlan());
  db.config().memory_limit = 0;
  if (!profiled.ok()) return 1;
  int64_t build = 0, agg = 0, sort = 0, probe = 0, pairs = 0;
  for (const OperatorProfile& p : profiled->profile.operators) {
    if (p.op == "JoinBuildSpill" || p.op == "JoinBuildDefer") {
      build += p.spill_bytes;
    }
    if (p.op == "JoinProbeSpill") probe += p.spill_bytes;
    if (p.op == "JoinProbePair") pairs++;
    if (p.op == "AggSpill") agg += p.spill_bytes;
    if (p.op == "SortSpill") sort += p.spill_bytes;
  }
  std::printf("\nper-breaker spill at peak/24: build=%.2fMB probe=%.2fMB "
              "agg=%.2fMB sort=%.2fMB (grace pairs: %lld)\n",
              build / 1e6, probe / 1e6, agg / 1e6, sort / 1e6,
              static_cast<long long>(pairs));
  std::printf("\nvery-tight profile:\n%s",
              profiled->profile.ToString().c_str());
  const bool breakers_ok = build > 0 && agg > 0 && sort > 0;
  if (!breakers_ok) {
    std::printf("^ expected every breaker to spill at peak/24\n");
  }

  // The CI gate diffs this line between the SimulatedDisk run and the
  // X100_SPILL_PATH file-backed run. Hash the TIGHTEST run — the one
  // whose rows actually round-tripped through the device — so a
  // device-induced wrong answer changes the checksum (the unlimited
  // reference never touches the device and would gate nothing).
  std::printf("\nresult checksum: %016" PRIx64 "\n",
              ResultChecksum(*profiled));
  std::printf("determinism in-memory vs out-of-core: %s\n",
              ok ? "ok" : "MISMATCH");
  return ok && breakers_ok ? 0 : 1;
}
