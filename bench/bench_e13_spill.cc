// E13 — memory-accounted spill-to-disk: in-memory vs out-of-core
// throughput for the E8 group-by-join+sort workload.
//
// The paper's product lesson (§"things researchers do not think about"):
// graceful degradation under memory pressure is table stakes. This bench
// runs orders ⋈ lineitem -> group-by -> sort at three memory_limit
// points derived from the measured in-memory peak:
//   unlimited — the reference (0% spilled),
//   tight     — ~half the peak (a sizable fraction of breaker state
//               spills),
//   very tight — ~1/24th of the peak (nearly all build/agg/sort state
//               streams through SpillFile).
// Every configuration must reproduce the unlimited run's result exactly
// (the determinism self-check doubles as the CI gate, like bench_e8), the
// tight configurations must actually spill (nonzero spilled bytes in the
// profile), and the tracker must drain to zero after every query.
#include <cmath>

#include "bench_util.h"
#include "engine/session.h"
#include "tpch/tpch.h"

using namespace x100;

namespace {

AlgebraPtr GroupByJoinSortPlan() {
  // The E8 shape (orders ⋈ lineitem -> group-by -> sort), but grouped
  // per ORDER KEY rather than per priority: every breaker then carries
  // real state (build: all orders; agg: one group per order; sort: one
  // row per order), comfortably above the kMinSpillBytes floor, so each
  // of them visibly spills at the tight limits. The unique integer sort
  // key keeps row order deterministic.
  AlgebraPtr join = JoinNode(
      ScanNode("orders", {"o_orderkey", "o_orderpriority"}),
      ScanNode("lineitem", {"l_orderkey", "l_extendedprice"}),
      JoinType::kInner, {"o_orderkey"}, {"l_orderkey"});
  AlgebraPtr aggr =
      AggrNode(std::move(join), {{"okey", Col("o_orderkey")}},
               {{AggKind::kSum, Col("l_extendedprice"), "revenue"},
                {AggKind::kCount, nullptr, "items"}});
  return OrderNode(std::move(aggr), {{"okey", true}});
}

bool SameRows(const QueryResult& a, const QueryResult& b) {
  if (a.rows.size() != b.rows.size()) return false;
  for (size_t i = 0; i < a.rows.size(); i++) {
    for (size_t c = 0; c < a.rows[i].size(); c++) {
      const Value& x = a.rows[i][c];
      const Value& y = b.rows[i][c];
      if (x.type() == TypeId::kF64 || y.type() == TypeId::kF64) {
        // FP sums depend on merge order; accept relative eps.
        const double dx = x.AsF64(), dy = y.AsF64();
        if (std::abs(dx - dy) > 1e-9 * (1 + std::abs(dx))) return false;
      } else if (!x.SqlEquals(y)) {
        return false;
      }
    }
  }
  return true;
}

int64_t SpilledBytes(const QueryProfile& p) {
  int64_t b = 0;
  for (const OperatorProfile& op : p.operators) b += op.spill_bytes;
  return b;
}

}  // namespace

int main() {
  bench::Header("E13", "memory-accounted spill-to-disk (out-of-core)");
  EngineConfig cfg;
  cfg.buffer_pool_blocks = 1024;
  cfg.max_parallelism = 4;
  cfg.scheduler_workers = 4;
  Database db(cfg);
  if (!tpch::Generate(&db, 0.02).ok()) return 1;
  Session session(&db);
  (void)session.Execute(GroupByJoinSortPlan());  // warm

  // Measure the in-memory peak to derive the spilling limits.
  db.memory()->ResetPeak();
  auto reference = session.Execute(GroupByJoinSortPlan());
  if (!reference.ok()) {
    std::printf("reference failed: %s\n",
                reference.status().ToString().c_str());
    return 1;
  }
  const int64_t peak = db.memory()->peak();
  std::printf("in-memory peak: %.2f MB\n\n", peak / 1e6);

  struct Point {
    const char* name;
    int64_t limit;
    bool expect_spill;
  };
  const Point points[] = {
      {"unlimited", 0, false},
      {"tight (peak/2)", peak / 2, true},
      {"very tight (peak/24)", peak / 24, true},
  };

  bool ok = true;
  std::printf("%-22s %10s %12s %12s %8s   %s\n", "memory_limit", "ms",
              "spilled(MB)", "disk-read(MB)", "leak(B)", "determinism");
  for (const Point& pt : points) {
    db.config().memory_limit = pt.limit;
    const int64_t read0 = db.disk()->bytes_read();
    const double t = bench::MinTime(2, [&] {
      auto r = session.Execute(GroupByJoinSortPlan());
      if (!r.ok()) std::abort();
    });
    auto res = session.Execute(GroupByJoinSortPlan());
    if (!res.ok()) return 1;
    const bool same = SameRows(*reference, *res);
    const int64_t spilled = SpilledBytes(res->profile);
    const int64_t leak = db.memory()->used();
    std::printf("%-22s %10.2f %12.2f %12.2f %8lld   %s\n", pt.name, t * 1e3,
                spilled / 1e6, (db.disk()->bytes_read() - read0) / 1e6,
                static_cast<long long>(leak), same ? "ok" : "MISMATCH");
    ok &= same;
    ok &= leak == 0;  // reservations must drain after every query
    if (pt.expect_spill && spilled == 0) {
      std::printf("  ^ expected spilling at this limit, saw none\n");
      ok = false;
    }
    if (!pt.expect_spill && spilled != 0) {
      std::printf("  ^ unexpected spilling with no limit\n");
      ok = false;
    }
  }
  db.config().memory_limit = 0;

  // Per-breaker visibility at the tightest point: each pipeline breaker
  // must report nonzero spilled bytes in the profile.
  db.config().memory_limit = peak / 24;
  auto profiled = session.Execute(GroupByJoinSortPlan());
  db.config().memory_limit = 0;
  if (!profiled.ok()) return 1;
  int64_t build = 0, agg = 0, sort = 0;
  for (const OperatorProfile& p : profiled->profile.operators) {
    if (p.op == "JoinBuildSpill") build += p.spill_bytes;
    if (p.op == "AggSpill") agg += p.spill_bytes;
    if (p.op == "SortSpill") sort += p.spill_bytes;
  }
  std::printf("\nper-breaker spill at peak/24: build=%.2fMB agg=%.2fMB "
              "sort=%.2fMB\n", build / 1e6, agg / 1e6, sort / 1e6);
  std::printf("\nvery-tight profile:\n%s",
              profiled->profile.ToString().c_str());
  const bool breakers_ok = build > 0 && agg > 0 && sort > 0;
  if (!breakers_ok) {
    std::printf("^ expected every breaker to spill at peak/24\n");
  }

  std::printf("\ndeterminism in-memory vs out-of-core: %s\n",
              ok ? "ok" : "MISMATCH");
  return ok && breakers_ok ? 0 : 1;
}
