// E10 — §"NULL intricacies": NOT EXISTS (plain anti) vs NOT IN
// (null-aware anti): semantics demonstration + the cost of null-awareness,
// and the rewriter's downgrade when keys are provably non-NULL.
#include "bench_util.h"
#include "common/rng.h"
#include "exec/hash_join.h"
#include "exec/select_project.h"
#include "exec/values.h"

using namespace x100;

namespace {

std::vector<std::vector<Value>> MakeRows(int n, double null_frac,
                                         uint64_t seed, int64_t domain) {
  Rng rng(seed);
  std::vector<std::vector<Value>> rows;
  rows.reserve(n);
  for (int i = 0; i < n; i++) {
    rows.push_back({rng.Bernoulli(null_frac)
                        ? Value::Null(TypeId::kI64)
                        : Value::I64(rng.Uniform(0, domain))});
  }
  return rows;
}

int64_t RunJoin(JoinType type, const std::vector<std::vector<Value>>& build,
                const std::vector<std::vector<Value>>& probe, double* secs) {
  Schema s({Field("k", TypeId::kI64, true)});
  int64_t out_rows = 0;
  *secs = bench::MinTime(3, [&] {
    ExecContext ctx;
    HashJoinOp join(std::make_unique<ValuesOp>(s, build),
                    std::make_unique<ValuesOp>(s, probe), {0}, {0}, type);
    auto res = CollectRows(&join, &ctx);
    if (!res.ok()) std::abort();
    out_rows = static_cast<int64_t>(res->rows.size());
  });
  return out_rows;
}

}  // namespace

int main() {
  bench::Header("E10", "anti-join NULL semantics: NOT EXISTS vs NOT IN");
  const int kProbe = 200000, kBuild = 20000;

  std::printf("%-22s %-18s %12s %10s\n", "data", "join flavor",
              "output rows", "time(ms)");
  struct Case {
    const char* name;
    double build_nulls, probe_nulls;
  };
  for (const Case& c : {Case{"no NULLs", 0, 0},
                        Case{"probe 1% NULL", 0, 0.01},
                        Case{"build has NULLs", 0.001, 0.01}}) {
    auto build = MakeRows(kBuild, c.build_nulls, 21, 1 << 20);
    auto probe = MakeRows(kProbe, c.probe_nulls, 22, 1 << 20);
    double t1, t2;
    const int64_t anti = RunJoin(JoinType::kAnti, build, probe, &t1);
    const int64_t nia = RunJoin(JoinType::kAntiNullAware, build, probe, &t2);
    std::printf("%-22s %-18s %12lld %10.2f\n", c.name, "NOT EXISTS (anti)",
                static_cast<long long>(anti), t1 * 1e3);
    std::printf("%-22s %-18s %12lld %10.2f\n", c.name,
                "NOT IN (null-aware)", static_cast<long long>(nia),
                t2 * 1e3);
  }
  std::printf(
      "\nsemantics: one build-side NULL empties NOT IN entirely; NULL probe"
      " keys survive NOT EXISTS but never NOT IN — the SQL intricacies the"
      " paper calls out. The rewriter downgrades NOT IN to the cheaper anti"
      " join when the key is provably non-NULL.\n");
  return 0;
}
