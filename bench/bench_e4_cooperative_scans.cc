// E4 — Cooperative Scans [7]: N staggered concurrent scans over one table
// through a bandwidth-limited disk; the ABM relevance policy vs the
// sequential attach-LRU baseline. Reported: chunk loads, device bytes
// read, average per-query latency.
//
// Set X100_DATA_PATH=<dir> to run against the durable file-backed column
// store instead of the in-RAM SimulatedDisk: each run builds its table in
// a fresh subdirectory, scans fault blocks in from the real file, and the
// bench removes its files afterwards (CI asserts nothing is left behind).
#include <sys/stat.h>
#include <unistd.h>

#include <thread>

#include "bench_util.h"
#include "common/rng.h"
#include "engine/database.h"
#include "exec/scan.h"
#include "exec/select_project.h"

using namespace x100;

namespace {

struct RunResult {
  int64_t loads;
  int64_t bytes;
  double avg_latency;
  double wall;
};

int g_run_seq = 0;

RunResult RunPolicy(ScanScheduler* sched, int n_queries) {
  // Table: 24 groups x 4K rows of i64+f64; pool of ~8 group-equivalents.
  EngineConfig cfg;
  cfg.disk_bandwidth = 100ll << 20;  // 100 MB/s channel (RAM-backed mode)
  cfg.buffer_pool_bytes = 16 * kDiskBlockBytes;
  // File-backed mode: a fresh subdirectory per run so repeated runs never
  // collide with a catalog left by the previous one.
  std::string data_dir;
  const char* data_root = std::getenv("X100_DATA_PATH");
  if (data_root != nullptr && *data_root != '\0') {
    data_dir = std::string(data_root) + "/e4-" + std::to_string(::getpid()) +
               "-" + std::to_string(g_run_seq++);
    if (::mkdir(data_dir.c_str(), 0700) != 0) std::abort();
    cfg.data_path = data_dir;
  }

  RunResult result;
  {
    Database db(cfg);
    if (!db.open_status().ok()) std::abort();
    auto b = db.CreateTable(
        "t", Schema({Field("k", TypeId::kI64), Field("v", TypeId::kF64)}),
        Layout::kDsm, 4096);
    Rng rng(7);
    for (int i = 0; i < 24 * 4096; i++) {
      (void)b->AppendRow({Value::I64(rng.Uniform(0, 1 << 30)),
                          Value::F64(rng.NextDouble())});
    }
    {
      auto t = b->Finish();
      (void)db.RegisterTable(std::move(t).value());
    }
    UpdatableTable* table = *db.GetTable("t");
    const int64_t bytes_base = db.block_device()->bytes_read();

    std::vector<double> latencies(n_queries);
    std::vector<std::thread> threads;
    bench::Timer wall;
    for (int q = 0; q < n_queries; q++) {
      threads.emplace_back([&, q] {
        // Staggered arrivals.
        std::this_thread::sleep_for(std::chrono::milliseconds(8 * q));
        bench::Timer t;
        ExecContext ctx;
        ScanOptions opts;
        opts.columns = {0, 1};
        opts.scheduler = sched;
        ScanOp scan(table->View(), table->SnapshotPdt(), db.buffers(),
                    std::move(opts));
        auto res = CollectRows(&scan, &ctx);
        if (!res.ok()) std::abort();
        latencies[q] = t.Seconds();
      });
    }
    for (auto& t : threads) t.join();
    double avg = 0;
    for (double l : latencies) avg += l;
    result = RunResult{sched->chunk_loads(),
                       db.block_device()->bytes_read() - bytes_base,
                       avg / n_queries, wall.Seconds()};
  }
  if (!data_dir.empty()) {
    ::unlink((data_dir + "/x100-data.blocks").c_str());
    ::unlink((data_dir + "/x100-catalog.bin").c_str());
    ::rmdir(data_dir.c_str());
  }
  return result;
}

// Cold-scan read-ahead: one sequential scan over a dataset far larger
// than the pool, through a bandwidth-limited channel. With prefetch on,
// the next group's blocks stream in while the current group is decoded;
// with it off, every group load stalls on the device. The CI smoke gate
// asserts the on/off speedup stays >= 1.2x.
void RunColdScanPhase(bench::JsonReport* json) {
  EngineConfig cfg;
  cfg.disk_bandwidth = 200ll << 20;           // 200 MB/s channel
  cfg.buffer_pool_bytes = 8 * kDiskBlockBytes;  // 2 MiB pool << dataset
  std::string data_dir;
  const char* data_root = std::getenv("X100_DATA_PATH");
  if (data_root != nullptr && *data_root != '\0') {
    data_dir = std::string(data_root) + "/e4-" + std::to_string(::getpid()) +
               "-" + std::to_string(g_run_seq++);
    if (::mkdir(data_dir.c_str(), 0700) != 0) std::abort();
    cfg.data_path = data_dir;
  }
  constexpr int kGroups = 48;
  constexpr int kGroupRows = 16384;
  constexpr int64_t kRows = int64_t{kGroups} * kGroupRows;
  {
    Database db(cfg);
    if (!db.open_status().ok()) std::abort();
    auto b = db.CreateTable(
        "cold", Schema({Field("k", TypeId::kI64), Field("v", TypeId::kF64)}),
        Layout::kDsm, kGroupRows);
    Rng rng(11);
    for (int64_t i = 0; i < kRows; i++) {
      // Wide-random keys defeat lightweight compression: the scan pays
      // full-width IO, which is the regime read-ahead targets.
      (void)b->AppendRow({Value::I64(rng.Uniform(0, int64_t{1} << 62)),
                          Value::F64(rng.NextDouble())});
    }
    {
      auto t = b->Finish();
      (void)db.RegisterTable(std::move(t).value());
    }
    UpdatableTable* table = *db.GetTable("cold");

    const auto scan_once = [&] {
      ExecContext ctx;
      ctx.scheduler = db.scheduler();
      ctx.buffers = db.buffers();
      ScanOptions opts;
      opts.columns = {0, 1};
      ScanOp scan(table->View(), table->SnapshotPdt(), db.buffers(),
                  std::move(opts));
      auto res = CollectRows(&scan, &ctx);
      if (!res.ok() || res->rows.size() != static_cast<size_t>(kRows)) {
        std::abort();
      }
    };

    double best[2] = {1e30, 1e30};
    for (int rep = 0; rep < 3; rep++) {
      for (int on = 0; on < 2; on++) {
        db.buffers()->set_prefetch_budget_bytes(on ? 4 * kDiskBlockBytes : 0);
        db.buffers()->Clear();  // every rep starts cold
        bench::Timer t;
        scan_once();
        db.buffers()->DrainPrefetches();
        best[on] = std::min(best[on], t.Seconds());
      }
    }
    const int64_t issued = db.buffers()->prefetch_issued();
    const int64_t hits = db.buffers()->prefetch_hits();
    const int64_t wasted = db.buffers()->prefetch_wasted();
    std::printf("\nCold sequential scan, pool %.1f MiB, data %.1f MiB,"
                " 200 MB/s channel:\n",
                cfg.buffer_pool_bytes / (1024.0 * 1024.0),
                kRows * 16 / (1024.0 * 1024.0));
    std::printf("%-22s %12s %12s\n", "read-ahead", "wall(s)", "ns/row");
    std::printf("%-22s %12.3f %12.1f\n", "off", best[0],
                best[0] * 1e9 / kRows);
    std::printf("%-22s %12.3f %12.1f\n", "on", best[1],
                best[1] * 1e9 / kRows);
    std::printf("prefetch issued=%lld hits=%lld wasted=%lld\n",
                static_cast<long long>(issued), static_cast<long long>(hits),
                static_cast<long long>(wasted));
    std::printf("speedup=%.2fx\n", best[0] / best[1]);
    json->Add("cold_scan_prefetch_off", best[0] * 1e9 / kRows);
    json->Add("cold_scan_prefetch_on", best[1] * 1e9 / kRows);
  }
  if (!data_dir.empty()) {
    ::unlink((data_dir + "/x100-data.blocks").c_str());
    ::unlink((data_dir + "/x100-catalog.bin").c_str());
    ::rmdir(data_dir.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool file_backed = std::getenv("X100_DATA_PATH") != nullptr &&
                           *std::getenv("X100_DATA_PATH") != '\0';
  bench::Header("E4", file_backed
                          ? "Cooperative Scans (file-backed column store)"
                          : "Cooperative Scans: ABM relevance vs attach-LRU");
  std::printf("%-8s %-18s %10s %12s %12s %10s\n", "queries", "policy",
              "loads", "MB read", "avg lat(s)", "wall(s)");
  for (int n_queries : {2, 4, 8}) {
    SequentialScheduler lru(8);
    RunResult a = RunPolicy(&lru, n_queries);
    RelevanceScheduler abm(8);
    RunResult b = RunPolicy(&abm, n_queries);
    std::printf("%-8d %-18s %10lld %12.1f %12.3f %10.2f\n", n_queries,
                lru.name(), static_cast<long long>(a.loads),
                a.bytes / 1e6, a.avg_latency, a.wall);
    std::printf("%-8d %-18s %10lld %12.1f %12.3f %10.2f\n", n_queries,
                abm.name(), static_cast<long long>(b.loads),
                b.bytes / 1e6, b.avg_latency, b.wall);
  }
  std::printf("\nABM shares chunk loads across concurrent scans; the LRU"
              " baseline re-reads the table per query ([7]'s result).\n");
  bench::JsonReport json("e4", argc, argv);
  RunColdScanPhase(&json);
  if (!json.Write()) return 1;
  return 0;
}
