// E11 — Figure 1's new component: SQL -> Ingres-like plan -> cross
// compiler -> X100 algebra -> rewriter. Per-stage latency and rewrite
// rule hit counts.
#include "bench_util.h"
#include "engine/session.h"
#include "frontend/frontend.h"
#include "rewriter/rewriter.h"
#include "tpch/tpch.h"

using namespace x100;

int main() {
  bench::Header("E11", "cross compiler + rewriter pipeline");
  Database db;
  if (!tpch::Generate(&db, 0.001).ok()) return 1;
  Session session(&db);

  const char* queries[] = {
      "SELECT l_returnflag, COUNT(*) AS n, SUM(l_quantity) AS q FROM "
      "lineitem GROUP BY l_returnflag ORDER BY l_returnflag",
      "SELECT l_orderkey, l_extendedprice * (1.0 - l_discount) AS rev FROM "
      "lineitem WHERE l_shipdate BETWEEN DATE '1994-01-01' AND DATE "
      "'1994-12-31' AND l_discount BETWEEN 0.05 AND 0.07 LIMIT 100",
      "SELECT upper(l_shipmode) AS m, AVG(l_extendedprice) AS p FROM "
      "lineitem WHERE l_comment LIKE '%bold%' GROUP BY l_shipmode",
  };

  const int kIters = 2000;
  std::printf("%-8s %12s %12s %12s %12s\n", "query", "parse(us)",
              "xcompile(us)", "rewrite(us)", "total(us)");
  for (size_t q = 0; q < 3; q++) {
    double parse_t = bench::MinTime(3, [&] {
      for (int i = 0; i < kIters; i++) {
        auto rel = ParseSql(queries[q]);
        if (!rel.ok()) std::abort();
      }
    });
    auto rel = *ParseSql(queries[q]);
    CrossCompiler cc([&](const std::string& name) -> Result<Schema> {
      UpdatableTable* t;
      X100_ASSIGN_OR_RETURN(t, db.GetTable(name));
      return t->base()->schema();
    });
    double compile_t = bench::MinTime(3, [&] {
      for (int i = 0; i < kIters; i++) {
        auto alg = cc.Compile(rel);
        if (!alg.ok()) std::abort();
      }
    });
    auto alg = *cc.Compile(rel);
    double rewrite_t = bench::MinTime(3, [&] {
      for (int i = 0; i < kIters; i++) {
        Rewriter rw;
        auto out = rw.Rewrite(CloneAlgebra(alg));
        if (!out.ok()) std::abort();
      }
    });
    std::printf("Q%-7zu %12.2f %12.2f %12.2f %12.2f\n", q + 1,
                parse_t * 1e6 / kIters, compile_t * 1e6 / kIters,
                rewrite_t * 1e6 / kIters,
                (parse_t + compile_t + rewrite_t) * 1e6 / kIters);
  }

  // Rewrite statistics over a rule-heavy expression.
  Rewriter rw;
  AlgebraPtr plan = SelectNode(
      ScanNode("lineitem"),
      And(Call("between", {Col("l_discount"), Lit(Value::F64(0.05)),
                           Lit(Value::F64(0.07))}),
          And(Call("not", {Call("not", {Gt(Col("l_quantity"),
                                           Lit(Value::F64(0)))})}),
              Eq(Call("upper", {Lit(Value::Str("air"))}),
                 Lit(Value::Str("AIR"))))));
  (void)rw.Rewrite(plan);
  std::printf("\nrewrite rule applications on a rule-heavy predicate:\n");
  for (const auto& [rule, count] : rw.stats()) {
    std::printf("  %-24s %lld\n", rule.c_str(),
                static_cast<long long>(count));
  }
  std::printf("\nplan translation costs microseconds — negligible against"
              " execution, which is why the cross-compiler boundary was"
              " viable (Figure 1).\n");
  return 0;
}
