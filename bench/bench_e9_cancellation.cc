// E9 — §"Query cancellation": cancel long-running queries (CPU-heavy and
// IO-wait-heavy) at random points; report the latency from Cancel() to
// query teardown. The paper's point: this must work under parallelism and
// asynchronous IO without leaking resources.
#include <algorithm>
#include <thread>

#include "bench_util.h"
#include "engine/session.h"
#include "tpch/tpch.h"

using namespace x100;

namespace {

double CancelOnce(Session* session, Database* db, int delay_ms,
                  int parallelism) {
  db->config().max_parallelism = parallelism;
  CancellationToken token;
  double latency = 0;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    bench::Timer t;
    token.Cancel();
    // Latency measured by the query thread below; this thread just fires.
    (void)t;
  });
  bench::Timer total;
  auto res = session->Execute(tpch::Q1Plan(), &token);
  const double done = total.Seconds();
  canceller.join();
  if (res.ok()) return -1;  // finished before the cancel fired
  latency = done - delay_ms / 1e3;
  return std::max(latency, 0.0);
}

}  // namespace

int main() {
  bench::Header("E9", "query cancellation latency");
  EngineConfig cfg;
  cfg.disk_bandwidth = 200ll << 20;  // force IO waits into the scan path
  cfg.buffer_pool_bytes = 4 * kDiskBlockBytes;  // almost no caching: every scan does IO
  Database db(cfg);
  if (!tpch::Generate(&db, 0.02).ok()) return 1;
  Session session(&db);

  for (int parallelism : {1, 2}) {
    std::vector<double> lat;
    for (int run = 0; run < 12; run++) {
      const double l =
          CancelOnce(&session, &db, 5 + (run * 7) % 40, parallelism);
      if (l >= 0) lat.push_back(l * 1e3);
    }
    if (lat.empty()) continue;
    std::sort(lat.begin(), lat.end());
    std::printf("parallelism=%d  cancels=%zu  p50=%.2fms  p95=%.2fms  "
                "max=%.2fms\n",
                parallelism, lat.size(), lat[lat.size() / 2],
                lat[lat.size() * 95 / 100], lat.back());
  }
  // Resource sanity: all queries must be in a terminal state.
  int running = 0;
  for (const auto& q : db.queries()->List()) {
    running += q.state == QueryState::kRunning;
  }
  std::printf("queries still RUNNING after the storm: %d (expected 0)\n",
              running);
  std::printf("\ncancellation is polled per vector and interrupts simulated"
              "-disk waits; exchange producers are joined on teardown.\n");
  return 0;
}
