// E2 — the vectorization-granularity ablation behind X100 [1,6]: sweep
// the vector size from 1 (≈ tuple-at-a-time) to 64K (≈ full column
// materialization). Expect interpretation overhead to dominate at small
// sizes and cache misses at large sizes, with the optimum near 1K.
#include "bench_util.h"
#include "engine/session.h"
#include "tpch/tpch.h"

using namespace x100;

int main() {
  bench::Header("E2", "vector size sweep (Q6-shaped scan-filter-aggregate)");
  Database db;
  if (!tpch::Generate(&db, 0.02).ok()) return 1;
  Session session(&db);
  const int64_t rows = (*db.GetTable("lineitem"))->visible_rows();
  (void)session.Execute(tpch::Q6Plan());  // warm buffer pool

  std::printf("%-12s %12s %14s\n", "vector_size", "time(ms)", "ns/tuple");
  double best_t = 1e30;
  int best_n = 0;
  for (int n : {1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}) {
    db.config().vector_size = n;
    const double t = bench::MinTime(n < 16 ? 1 : 3, [&] {
      auto r = session.Execute(tpch::Q6Plan());
      if (!r.ok()) std::abort();
    });
    std::printf("%-12d %12.2f %14.2f\n", n, t * 1e3, t * 1e9 / rows);
    if (t < best_t) {
      best_t = t;
      best_n = n;
    }
  }
  std::printf("\noptimum at vector_size=%d — X100 design point is O(1K)\n",
              best_n);
  return 0;
}
