// E8 — §"Multi-core": pipeline-level morsel parallelism. The physical
// planner decomposes every plan into pipelines (join build, probe+agg,
// sort) whose worker chains run as tasks on the shared work-stealing
// TaskScheduler, pulling block groups dynamically from one MorselSource
// per logical scan. Two sweeps at increasing worker counts:
//   Q1   — scan -> filter -> 8-aggregate group-by (ParallelHashAgg).
//   QJ   — group-by-join + sort: orders ⋈ lineitem, aggregate per
//          o_orderpriority, ORDER BY (JoinBuild / JoinProbe /
//          ParallelHashAgg / ParallelSort phases).
// The QJ run doubles as the CI determinism smoke: results at every
// worker count must SqlEqual the 1-worker reference, and the process
// exits non-zero on mismatch. A second sweep re-runs QJ for radix_bits
// in {0, 2, 4} x workers in {1, 2, 8} — 0 bits is the legacy
// single-table merge, so any cross-configuration mismatch means the
// radix-partitioned merge changed results. A root-level join (no
// Aggr/Order sink) must additionally show probe work spread over >1
// worker (exchange-unioned probe clones). Speedup is bounded by the
// host core count (reported).
#include <cmath>
#include <thread>

#include "bench_util.h"
#include "engine/session.h"
#include "tpch/tpch.h"

using namespace x100;

namespace {

AlgebraPtr GroupByJoinPlan() {
  // orders ⋈ lineitem on orderkey, revenue per order priority, sorted.
  AlgebraPtr join = JoinNode(
      ScanNode("orders", {"o_orderkey", "o_orderpriority"}),
      ScanNode("lineitem", {"l_orderkey", "l_extendedprice"}),
      JoinType::kInner, {"o_orderkey"}, {"l_orderkey"});
  AlgebraPtr aggr =
      AggrNode(std::move(join), {{"prio", Col("o_orderpriority")}},
               {{AggKind::kSum, Col("l_extendedprice"), "revenue"},
                {AggKind::kCount, nullptr, "items"}});
  return OrderNode(std::move(aggr), {{"prio", true}});
}

bool SameRows(const QueryResult& a, const QueryResult& b) {
  if (a.rows.size() != b.rows.size()) return false;
  for (size_t i = 0; i < a.rows.size(); i++) {
    for (size_t c = 0; c < a.rows[i].size(); c++) {
      const Value& x = a.rows[i][c];
      const Value& y = b.rows[i][c];
      if (x.type() == TypeId::kF64 || y.type() == TypeId::kF64) {
        // FP sums depend on morsel merge order; accept relative eps.
        const double dx = x.AsF64(), dy = y.AsF64();
        if (std::abs(dx - dy) > 1e-9 * (1 + std::abs(dx))) return false;
      } else if (!x.SqlEquals(y)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::Header("E8", "pipeline-level morsel parallelism");
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("host hardware threads: %u\n\n", cores);
  EngineConfig cfg;
  cfg.buffer_pool_bytes = 1024 * kDiskBlockBytes;
  Database db(cfg);
  if (!tpch::Generate(&db, 0.02).ok()) return 1;
  Session session(&db);
  (void)session.Execute(tpch::Q1Plan());  // warm

  bool deterministic = true;
  QueryResult reference;

  std::printf("%-9s %12s %10s %12s %10s   %s\n", "workers", "Q1(ms)",
              "speedup", "join+agg(ms)", "speedup", "determinism");
  double q1_base = 0, qj_base = 0;
  for (int w : {1, 2, 4, 8}) {
    db.config().max_parallelism = w;
    db.config().scheduler_workers = w;  // pin the pool to the sweep size
    const double t_q1 = bench::MinTime(3, [&] {
      auto r = session.Execute(tpch::Q1Plan());
      if (!r.ok()) std::abort();
    });
    const double t_qj = bench::MinTime(3, [&] {
      auto r = session.Execute(GroupByJoinPlan());
      if (!r.ok()) std::abort();
    });
    auto qj = session.Execute(GroupByJoinPlan());
    if (!qj.ok()) return 1;
    bool same = true;
    if (w == 1) {
      q1_base = t_q1;
      qj_base = t_qj;
      reference = std::move(qj).value();
    } else {
      same = SameRows(reference, *qj);
      deterministic &= same;
    }
    std::printf("%-9d %12.2f %9.2fx %12.2f %9.2fx   %s\n", w, t_q1 * 1e3,
                q1_base / t_q1, t_qj * 1e3, qj_base / t_qj,
                same ? "ok" : "MISMATCH");
  }

  // Radix sweep — the CI gate for the partitioned merge: every
  // (radix_bits, workers) configuration must reproduce the single-table
  // serial reference exactly. 0 bits is the legacy one-merge-task path.
  bool radix_ok = true;
  std::printf("\nradix_bits sweep (join+agg, vs radix=0 workers=1):\n");
  std::printf("%-12s %8s %8s %8s\n", "radix_bits", "w=1", "w=2", "w=8");
  for (int bits : {0, 2, 4}) {
    std::printf("%-12d", bits);
    for (int w : {1, 2, 8}) {
      db.config().max_parallelism = w;
      db.config().scheduler_workers = w;
      db.config().radix_bits = bits;
      auto r = session.Execute(GroupByJoinPlan());
      const bool same = r.ok() && SameRows(reference, *r);
      radix_ok &= same;
      std::printf(" %8s", !r.ok() ? "ERROR" : same ? "ok" : "MISMATCH");
    }
    std::printf("\n");
  }
  db.config().radix_bits = -1;  // back to auto
  db.config().max_parallelism = 8;
  db.config().scheduler_workers = 8;

  // Per-operator profile of the widest run — every pipeline phase (build,
  // per-partition merge, probe, aggregation, sort) must appear as
  // scheduler-task work, the §"System monitoring" answer to "attach a
  // debugger to see what the server is doing".
  auto profiled = session.Execute(GroupByJoinPlan());
  bool phases_ok = false;
  if (profiled.ok()) {
    std::printf("\njoin+agg+sort per-operator profile (workers=8):\n%s",
                profiled->profile.ToString().c_str());
    bool build = false, probe = false, agg = false, merge = false,
         sort = false;
    for (const OperatorProfile& p : profiled->profile.operators) {
      build |= p.op.rfind("JoinBuildMerge", 0) == 0;
      probe |= p.op.rfind("JoinProbe", 0) == 0;
      agg |= p.op.rfind("ParallelHashAgg", 0) == 0;
      merge |= p.op.rfind("AggMerge", 0) == 0;
      sort |= p.op.rfind("ParallelSort", 0) == 0;
    }
    phases_ok = build && probe && agg && merge && sort;
    std::printf("\npipeline phases as scheduler tasks: build=%d probe=%d "
                "agg=%d agg-merge=%d sort=%d\n", build, probe, agg, merge,
                sort);
  }

  // Root-level join (no Aggr/Order sink): the probe must not be serial —
  // the planner unions probe clones through an exchange sink.
  bool root_probe_ok = false;
  {
    auto root = session.Execute(JoinNode(
        ScanNode("orders", {"o_orderkey", "o_orderpriority"}),
        ScanNode("lineitem", {"l_orderkey", "l_extendedprice"}),
        JoinType::kInner, {"o_orderkey"}, {"l_orderkey"}));
    if (root.ok()) {
      int probe_clones = 0;
      bool saw_union = false;
      for (const OperatorProfile& p : root->profile.operators) {
        if (p.op.rfind("JoinProbe", 0) == 0) probe_clones++;
        saw_union |= p.op.rfind("XchgUnion", 0) == 0;
      }
      root_probe_ok = probe_clones > 1 && saw_union;
      std::printf("\nroot-level join probe: %d probe clones, union sink=%d "
                  "-> %s\n", probe_clones, saw_union,
                  root_probe_ok ? "parallel" : "SERIAL");
    }
  }

  std::printf("determinism across worker counts: %s\n",
              deterministic ? "ok" : "MISMATCH");
  std::printf("determinism across radix_bits:    %s\n",
              radix_ok ? "ok" : "MISMATCH");
  std::printf("\nNote: on a %u-thread host the speedup ceiling is %u; "
              "worker chains share one morsel source per scan, so adding "
              "workers never repartitions the table.\n", cores, cores);
  return deterministic && radix_ok && phases_ok && root_probe_ok ? 0 : 1;
}
