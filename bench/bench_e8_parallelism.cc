// E8 — §"Multi-core": the rewriter's Volcano-style parallelizer. Same Q1
// aggregation at increasing worker counts; speedup is bounded by the host
// core count (reported).
#include <thread>

#include "bench_util.h"
#include "engine/session.h"
#include "tpch/tpch.h"

using namespace x100;

int main() {
  bench::Header("E8", "Volcano-style parallelizer (rewriter-inserted Xchg)");
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("host hardware threads: %u\n\n", cores);
  Database db;
  // Smaller groups so partitioned scans exist even at small SF.
  {
    EngineConfig cfg;
    cfg.buffer_pool_blocks = 1024;
    Database tmp(cfg);
  }
  if (!tpch::Generate(&db, 0.02).ok()) return 1;
  Session session(&db);
  (void)session.Execute(tpch::Q1Plan());  // warm

  double base = 0;
  std::printf("%-9s %12s %10s %24s\n", "workers", "Q1(ms)", "speedup",
              "plan shape");
  for (int w : {1, 2, 4}) {
    db.config().max_parallelism = w;
    const double t = bench::MinTime(3, [&] {
      auto r = session.Execute(tpch::Q1Plan());
      if (!r.ok()) std::abort();
    });
    if (w == 1) base = t;
    std::printf("%-9d %12.2f %9.2fx %24s\n", w, t * 1e3, base / t,
                w == 1 ? "Aggr(Scan)" : "Aggr(Xchg(partial x N))");
  }
  std::printf("\nNote: on a %u-thread host the speedup ceiling is %u; the"
              " rewrite itself (partial aggregation + Xchg merge) is what"
              " this experiment validates.\n", cores, cores);
  return 0;
}
