// E8 — §"Multi-core": morsel-driven parallelism. The rewriter still
// inserts a Volcano-style Xchg, but producers are tasks on the shared
// work-stealing TaskScheduler and scans pull block groups dynamically
// from one MorselSource (no static g % parts partitioning), so a skewed
// group cannot serialize a pipeline. Same Q1 aggregation at increasing
// worker counts; speedup is bounded by the host core count (reported).
#include <thread>

#include "bench_util.h"
#include "engine/session.h"
#include "tpch/tpch.h"

using namespace x100;

int main() {
  bench::Header("E8", "morsel-driven parallelism (scheduler-backed Xchg)");
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("host hardware threads: %u\n\n", cores);
  EngineConfig cfg;
  cfg.buffer_pool_blocks = 1024;
  Database db(cfg);
  if (!tpch::Generate(&db, 0.02).ok()) return 1;
  Session session(&db);
  (void)session.Execute(tpch::Q1Plan());  // warm

  double base = 0;
  std::printf("%-9s %12s %10s %30s\n", "workers", "Q1(ms)", "speedup",
              "plan shape");
  for (int w : {1, 2, 4, 8}) {
    db.config().max_parallelism = w;
    const double t = bench::MinTime(3, [&] {
      auto r = session.Execute(tpch::Q1Plan());
      if (!r.ok()) std::abort();
    });
    if (w == 1) base = t;
    std::printf("%-9d %12.2f %9.2fx %30s\n", w, t * 1e3, base / t,
                w == 1 ? "Aggr(Scan)" : "Aggr(Xchg(morsel-scan x N))");
  }

  // Per-operator profile of the widest run — the §"System monitoring"
  // answer to "attach a debugger to see what the server is doing".
  auto profiled = session.Execute(tpch::Q1Plan());
  if (profiled.ok()) {
    std::printf("\nper-operator profile (workers=8):\n%s",
                profiled->profile.ToString().c_str());
  }
  std::printf("\nNote: on a %u-thread host the speedup ceiling is %u;"
              " producers share the process-wide pool, and morsels are"
              " handed out dynamically, so adding workers never repartitions"
              " the table.\n", cores, cores);
  return 0;
}
