// E3 — PFOR-family compression [8]: ratios and (de)compression bandwidth
// on lineitem-like column shapes, including the outlier-fraction sweep
// that motivates PFOR's patching.
#include "common/rng.h"
#include "bench_util.h"
#include "compression/codec.h"

using namespace x100;

namespace {

void Report(const char* name, CodecId codec, const std::vector<int64_t>& in) {
  std::vector<uint8_t> buf;
  if (!CompressColumn<int64_t>(codec, in.data(),
                               static_cast<int>(in.size()), &buf)
           .ok()) {
    return;
  }
  std::vector<int64_t> out(in.size());
  const double comp_t = bench::MinTime(3, [&] {
    std::vector<uint8_t> b2;
    (void)CompressColumn<int64_t>(codec, in.data(),
                                  static_cast<int>(in.size()), &b2);
  });
  const double dec_t = bench::MinTime(5, [&] {
    (void)DecompressColumn<int64_t>(buf.data(), buf.size(), out.data());
  });
  const double raw_mb = in.size() * sizeof(int64_t) / 1e6;
  std::printf("%-18s %-11s %8.2fx %12.0f %12.0f\n", name, CodecName(codec),
              raw_mb * 1e6 / buf.size(), raw_mb / comp_t, raw_mb / dec_t);
}

}  // namespace

int main() {
  bench::Header("E3", "PFOR / PFOR-DELTA / PDICT compression");
  const int n = 1 << 20;
  Rng rng(42);

  std::vector<int64_t> small_range(n), outliers1(n), outliers10(n),
      sorted(n), rand_full(n);
  int64_t acc = 0;
  for (int i = 0; i < n; i++) {
    small_range[i] = rng.Uniform(0, 255);
    outliers1[i] = rng.Bernoulli(0.01) ? rng.Uniform(1ll << 40, 1ll << 41)
                                       : rng.Uniform(0, 255);
    outliers10[i] = rng.Bernoulli(0.10) ? rng.Uniform(1ll << 40, 1ll << 41)
                                        : rng.Uniform(0, 255);
    acc += rng.Uniform(0, 3);
    sorted[i] = acc;
    rand_full[i] = static_cast<int64_t>(rng.Next());
  }

  std::printf("%-18s %-11s %9s %12s %12s\n", "column shape", "codec",
              "ratio", "comp MB/s", "decomp MB/s");
  Report("uniform 8-bit", CodecId::kPlain, small_range);
  Report("uniform 8-bit", CodecId::kPfor, small_range);
  Report("1% outliers", CodecId::kPfor, outliers1);
  Report("10% outliers", CodecId::kPfor, outliers10);
  Report("sorted keys", CodecId::kPfor, sorted);
  Report("sorted keys", CodecId::kPforDelta, sorted);
  Report("random 64-bit", CodecId::kPfor, rand_full);
  Report("random 64-bit", CodecId::kPlain, rand_full);

  // Strings: PDICT on a low-cardinality column (l_shipmode-like).
  StringHeap heap;
  std::vector<StrRef> modes(n);
  const char* mode_names[] = {"AIR", "FOB", "MAIL", "RAIL", "REG AIR",
                              "SHIP", "TRUCK"};
  size_t raw_bytes = 0;
  for (int i = 0; i < n; i++) {
    modes[i] = heap.Add(mode_names[rng.Uniform(0, 6)]);
    raw_bytes += modes[i].len + 4;
  }
  for (CodecId codec : {CodecId::kPlain, CodecId::kPdict}) {
    std::vector<uint8_t> buf;
    if (!CompressStrColumn(codec, modes.data(), n, &buf).ok()) continue;
    StringHeap out_heap;
    std::vector<StrRef> out(n);
    const double dec_t = bench::MinTime(3, [&] {
      StringHeap h2;
      (void)DecompressStrColumn(buf.data(), buf.size(), &h2, out.data());
    });
    std::printf("%-18s %-11s %8.2fx %12s %12.0f\n", "l_shipmode str",
                CodecName(codec),
                static_cast<double>(raw_bytes) / buf.size(), "-",
                raw_bytes / 1e6 / dec_t);
  }
  std::printf("\nPFOR keeps the 1%%-outlier column near the 8-bit rate — the"
              " patching design point of [8].\n");
  return 0;
}
