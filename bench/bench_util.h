// Shared helpers for the experiment benches (E1..E12). Each bench binary
// prints paper-style result tables; EXPERIMENTS.md records the outcomes.
#ifndef X100_BENCH_BENCH_UTIL_H_
#define X100_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

namespace x100 {
namespace bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Runs fn `reps` times, returns the minimum wall time in seconds.
inline double MinTime(int reps, const std::function<void()>& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; r++) {
    Timer t;
    fn();
    best = std::min(best, t.Seconds());
  }
  return best;
}

inline void Header(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", id, title);
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace x100

#endif  // X100_BENCH_BENCH_UTIL_H_
