// Shared helpers for the experiment benches (E1..E12). Each bench binary
// prints paper-style result tables; EXPERIMENTS.md records the outcomes.
// Invoking a bench with `--json <path>` additionally writes its results
// as a machine-readable JSON document (CI uploads these as artifacts).
#ifndef X100_BENCH_BENCH_UTIL_H_
#define X100_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "simd/simd.h"

namespace x100 {
namespace bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Runs fn `reps` times, returns the minimum wall time in seconds.
inline double MinTime(int reps, const std::function<void()>& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; r++) {
    Timer t;
    fn();
    best = std::min(best, t.Seconds());
  }
  return best;
}

inline void Header(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", id, title);
  std::printf("==============================================================\n");
  // SIMD-sensitive benches sweep levels explicitly; the header records
  // what "auto" resolves to on this machine so a result table is
  // self-describing.
  std::printf("simd: auto resolves to %s (build targets:%s%s scalar)\n",
              SimdLevelName(ResolveSimdLevel(SimdMode::kAuto)),
#if defined(X100_HAVE_AVX2_BUILD)
              " avx2",
#else
              "",
#endif
#if defined(X100_HAVE_NEON_BUILD)
              " neon");
#else
              "");
#endif
}

/// Per-result rows for the `--json <path>` artifact: one entry per
/// primitive/query measurement, ns-per-row normalized.
class JsonReport {
 public:
  /// Scans argv for `--json <path>`; without it the report is a no-op.
  JsonReport(const char* bench_id, int argc, char** argv) : id_(bench_id) {
    for (int i = 1; i + 1 < argc; i++) {
      if (std::strcmp(argv[i], "--json") == 0) path_ = argv[i + 1];
    }
  }

  void Add(const std::string& name, double ns_per_row) {
    rows_.push_back({name, ns_per_row});
  }

  /// Worker-thread count recorded in the document (defaults to the
  /// machine's concurrency; parallel benches set what they actually used).
  void set_workers(int workers) { workers_ = workers; }

  /// Writes the document; returns false (with a message) on IO failure.
  /// Every bench shares the same envelope — bench id, git sha (from
  /// GITHUB_SHA in CI, "unknown" locally), worker count, resolved SIMD
  /// level — so E1/E12/E14 artifacts diff cleanly across runs.
  bool Write() const {
    if (path_.empty()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    const char* sha = std::getenv("GITHUB_SHA");
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"git_sha\": \"%s\",\n",
                 id_, sha != nullptr && *sha != '\0' ? sha : "unknown");
    std::fprintf(f, "  \"workers\": %d,\n  \"simd\": \"%s\",\n", workers_,
                 SimdLevelName(ResolveSimdLevel(SimdMode::kAuto)));
    std::fprintf(f, "  \"results\": [\n");
    for (size_t i = 0; i < rows_.size(); i++) {
      std::fprintf(f, "    {\"name\": \"%s\", \"ns_per_row\": %.4f}%s\n",
                   rows_[i].name.c_str(), rows_[i].ns,
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\njson results written to %s\n", path_.c_str());
    return true;
  }

 private:
  struct Row {
    std::string name;
    double ns;
  };
  const char* id_;
  std::string path_;
  int workers_ = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<Row> rows_;
};

}  // namespace bench
}  // namespace x100

#endif  // X100_BENCH_BENCH_UTIL_H_
