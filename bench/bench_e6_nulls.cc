// E6 — §"NULLs": the two-column representation (NULL-oblivious kernels
// over safe values + indicator OR) vs per-tuple NULL branching, across
// NULL fractions.
#include "bench_util.h"
#include "common/rng.h"
#include "primitives/primitive_registry.h"

using namespace x100;

int main() {
  bench::Header("E6", "two-column NULL representation vs per-tuple checks");
  EnsureKernelsRegistered();
  const int kN = 1024;
  const int kVectors = 4096;

  auto add = PrimitiveRegistry::Get()->FindMap(
      "map", "add_unchecked", {{TypeId::kI64, false}, {TypeId::kI64, false}});
  if (add.fn == nullptr) return 1;

  std::printf("%-10s %16s %16s %10s\n", "null frac", "two-column(ms)",
              "branching(ms)", "ratio");
  for (double frac : {0.0, 0.01, 0.1, 0.5}) {
    Rng rng(11);
    std::vector<int64_t> a(kN), b(kN), out(kN);
    std::vector<uint8_t> a_null(kN), b_null(kN), out_null(kN);
    for (int i = 0; i < kN; i++) {
      a_null[i] = rng.Bernoulli(frac);
      b_null[i] = rng.Bernoulli(frac);
      a[i] = a_null[i] ? 0 : rng.Uniform(0, 1 << 20);  // safe values
      b[i] = b_null[i] ? 0 : rng.Uniform(0, 1 << 20);
    }

    // Two-column scheme: NULL-oblivious kernel + indicator OR pass.
    const double kernel_t = bench::MinTime(5, [&] {
      for (int v = 0; v < kVectors; v++) {
        const void* args[2] = {a.data(), b.data()};
        (void)add.fn(kN, nullptr, args, out.data(), nullptr);
        for (int i = 0; i < kN; i++) out_null[i] = a_null[i] | b_null[i];
      }
    });

    // Conventional: branch on both indicators per tuple.
    const double branch_t = bench::MinTime(5, [&] {
      for (int v = 0; v < kVectors; v++) {
        for (int i = 0; i < kN; i++) {
          if (a_null[i] || b_null[i]) {
            out_null[i] = 1;
            out[i] = 0;
          } else {
            out_null[i] = 0;
            out[i] = a[i] + b[i];
          }
        }
      }
    });
    std::printf("%-10.2f %16.2f %16.2f %9.2fx\n", frac, kernel_t * 1e3,
                branch_t * 1e3, branch_t / kernel_t);
  }
  std::printf("\nbranching cost grows with (unpredictable) NULL density;"
              " the two-column scheme is flat — the paper's rationale.\n");
  return 0;
}
