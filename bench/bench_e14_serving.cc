// E14 — the concurrent serving layer: prepared-statement plan caching vs
// ad-hoc recompilation, async submission throughput, and quota-governed
// mixed workloads.
//
// The paper's serving lesson: once the kernel loop is vectorized, small-
// query latency is dominated by the frontend (parse -> cross-compile ->
// rewrite), so a server must do that work once per statement, not once
// per call. This bench measures exactly that margin on a point-query mix
// (the CI gate requires prepared >= 2x ad-hoc), then drives the async
// path with N concurrent sessions against the shared scheduler and the
// adaptive task quota, checking every answer against a serial reference.
//
//   $ ./bench_e14_serving [--json BENCH_E14.json]
#include <atomic>
#include <cinttypes>
#include <thread>

#include "bench_util.h"
#include "engine/session.h"
#include "tpch/tpch.h"

using namespace x100;

namespace {

constexpr int kPointIters = 2000;

/// The point-query mix against a small kv table: a bare lookup, a
/// predicate-heavy lookup, and an ORM-style verbose statement whose
/// select list is constant arithmetic the rewriter folds to literals.
/// Execution is microseconds for all three — the frontend (parse,
/// cross-compile, rewrite/fold) decides ad-hoc throughput, which is
/// exactly the asymmetry prepared statements exploit.
std::vector<std::string> PointQueries() {
  std::vector<std::string> out;
  out.push_back("SELECT v FROM kv WHERE k = 517");
  out.push_back(
      "SELECT v FROM kv WHERE k = 517 AND v >= 0.0 AND k BETWEEN 0 AND "
      "100000 AND k + 1 = 518 AND v * 2.0 >= 0.0 AND k - 1 = 516 AND "
      "v <= 1000000000.0 AND k * 2 = 1034");
  // The ORM/BI shape: generated SQL carries the pricing constants in
  // every statement; the cached plan carries the folded literals.
  std::string orm = "SELECT v";
  for (int i = 1; i <= 12; i++) {
    orm += ", (" + std::to_string(i) +
           ".0 * 1.21 + 100.0 - 2.5 * 3.0) * (7.0 - 4.0) + 0.5 AS c" +
           std::to_string(i);
  }
  orm += " FROM kv WHERE k = 517";
  out.push_back(std::move(orm));
  return out;
}

/// Registers kv(k, v): 1024 rows, k unique.
bool RegisterKv(Database* db) {
  auto b = db->CreateTable(
      "kv", Schema({Field("k", TypeId::kI64), Field("v", TypeId::kF64)}),
      Layout::kDsm, 256);
  for (int i = 0; i < 1024; i++) {
    if (!b->AppendRow({Value::I64(i), Value::F64(i * 0.5)}).ok()) {
      return false;
    }
  }
  auto t = b->Finish();
  return t.ok() && db->RegisterTable(std::move(t).value()).ok();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Header("E14", "concurrent serving: plan cache + async sessions");
  bench::JsonReport report("E14", argc, argv);

  EngineConfig cfg;
  cfg.scheduler_workers = 4;
  cfg.max_parallelism = 4;
  cfg.query_task_quota = 0;  // auto: 2x workers, adaptively shared
  Database db(cfg);
  report.set_workers(4);
  if (!tpch::Generate(&db, 0.01).ok() || !RegisterKv(&db)) return 1;
  Session session(&db);

  // --- Part 1: prepared vs ad-hoc on the point-query mix ---------------
  const std::vector<std::string> points = PointQueries();
  const int num_point = static_cast<int>(points.size());
  std::vector<PreparedStatement> prepared;
  for (const std::string& sql : points) {
    auto p = session.Prepare(sql);
    if (!p.ok()) {
      std::fprintf(stderr, "prepare failed: %s\n",
                   p.status().ToString().c_str());
      return 1;
    }
    prepared.push_back(*p);
  }

  const double adhoc_s = bench::MinTime(3, [&] {
    for (int i = 0; i < kPointIters; i++) {
      auto r = session.ExecuteSql(points[i % num_point]);
      if (!r.ok()) std::abort();
    }
  });
  const double prepared_s = bench::MinTime(3, [&] {
    for (int i = 0; i < kPointIters; i++) {
      auto r = session.ExecutePrepared(prepared[i % num_point]);
      if (!r.ok()) std::abort();
    }
  });
  const double speedup = adhoc_s / prepared_s;
  std::printf("\npoint-query mix (%d queries/rep, min of 3 reps):\n",
              kPointIters);
  std::printf("  %-22s %10.1f us/query %12.0f q/s\n", "ad-hoc (recompile)",
              adhoc_s / kPointIters * 1e6, kPointIters / adhoc_s);
  std::printf("  %-22s %10.1f us/query %12.0f q/s\n", "prepared (cached)",
              prepared_s / kPointIters * 1e6, kPointIters / prepared_s);
  std::printf("  speedup: %.2fx  [gate: >= 2x] %s\n", speedup,
              speedup >= 2.0 ? "PASS" : "FAIL");
  report.Add("point.adhoc", adhoc_s / kPointIters * 1e9);
  report.Add("point.prepared", prepared_s / kPointIters * 1e9);

  // --- Part 2: async submission throughput, concurrent sessions --------
  // Each session submits its whole batch asynchronously and then drains;
  // a fat analytic query rides along so the quota controller has to
  // split shares while point queries stream past it.
  const char* fat_sql =
      "SELECT l_returnflag, COUNT(*) AS n, SUM(l_quantity) AS q FROM "
      "lineitem GROUP BY l_returnflag ORDER BY l_returnflag";
  auto fat_ref = session.ExecuteSql(fat_sql);
  auto point_ref = session.ExecuteSql(points[0]);
  if (!fat_ref.ok() || !point_ref.ok()) return 1;

  for (int sessions : {4, 8, 16}) {
    const int per_session = 50;
    std::atomic<int64_t> bad{0};
    bench::Timer t;
    std::vector<std::thread> threads;
    for (int s = 0; s < sessions; s++) {
      threads.emplace_back([&, s] {
        Session local(&db);
        std::vector<PendingQuery> pending;
        for (int i = 0; i < per_session; i++) {
          // Every 10th query is the fat aggregate; the rest are cached
          // point lookups.
          const bool fat = (s + i) % 10 == 0;
          auto p = local.Prepare(fat ? fat_sql : points[0].c_str());
          if (!p.ok()) {
            bad.fetch_add(1);
            continue;
          }
          auto pq = local.Submit(*p);
          if (!pq.ok()) {
            bad.fetch_add(1);
            continue;
          }
          pending.push_back(*pq);
          if (pending.size() >= 8) {  // bounded in-flight window
            for (auto& q : pending) {
              auto r = q.Wait();
              if (!r.ok()) bad.fetch_add(1);
            }
            pending.clear();
          }
        }
        for (auto& q : pending) {
          auto r = q.Wait();
          const QueryResult& want =
              r.ok() && r->rows.size() > 1 ? *fat_ref : *point_ref;
          if (!r.ok() || r->rows.size() != want.rows.size()) bad.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();
    const double secs = t.Seconds();
    const double qps = sessions * per_session / secs;
    std::printf(
        "async mix, %2d sessions x %d queries: %8.0f q/s "
        "(%.2fs, %" PRId64 " errors, %" PRId64 " rebalances)\n",
        sessions, per_session, qps, secs, bad.load(),
        db.quota_controller()->rebalances());
    report.Add("async.sessions" + std::to_string(sessions),
               secs / (sessions * per_session) * 1e9);
    if (bad.load() != 0) {
      std::fprintf(stderr, "FAIL: %" PRId64 " failed queries\n", bad.load());
      return 1;
    }
  }

  std::printf(
      "\nplan cache: %" PRId64 " hits / %" PRId64 " misses (%" PRId64
      " entries); quota: budget %d, %" PRId64 " rebalances\n",
      db.plan_cache()->hits(), db.plan_cache()->misses(),
      db.plan_cache()->size(), db.quota_controller()->global_budget(),
      db.quota_controller()->rebalances());

  if (!report.Write()) return 1;
  if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: prepared speedup %.2fx < 2x gate\n", speedup);
    return 1;
  }
  return 0;
}
