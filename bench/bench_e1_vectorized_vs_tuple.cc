// E1 — §1 headline claim: vectorized execution "allows modern CPU to
// process queries more than 10 times faster than conventional query
// engines". Two experiments:
//  1. Per-primitive ns/row sweeps of the hot kernels (selection compares,
//     mask compaction, hashing, keyless aggregation) at every SIMD
//     dispatch level this machine supports, scalar speedup column — the
//     kernels behind the dispatch layer in src/simd/.
//  2. TPC-H Q1 and Q6 through the vectorized engine (per level) vs the
//     Volcano tuple-at-a-time baseline, same memory-resident data.
// `--json <path>` writes every measurement as BENCH_E1.json for CI.
#include <random>

#include "bench_util.h"
#include "engine/session.h"
#include "primitives/agg_kernels.h"
#include "primitives/hash_kernels.h"
#include "primitives/primitive_registry.h"
#include "simd/simd_kernels.h"
#include "tpch/tpch.h"

using namespace x100;

namespace {

constexpr int kN = 1024;
constexpr int kIters = 20000;

double NsPerRow(double seconds) {
  return seconds * 1e9 / (static_cast<double>(kN) * kIters);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Header("E1", "hot primitives + vectorized vs tuple-at-a-time");
  bench::JsonReport json("E1", argc, argv);
  EnsureKernelsRegistered();
  auto* reg = PrimitiveRegistry::Get();
  const auto levels = AvailableSimdLevels();

  // ---- per-primitive sweeps -----------------------------------------------
  std::mt19937_64 rng(17);
  std::vector<int32_t> i32(kN);
  std::vector<int64_t> i64(kN);
  std::vector<double> f64(kN);
  std::vector<uint8_t> boolv(kN), nulls(kN);
  for (int i = 0; i < kN; i++) {
    i32[i] = static_cast<int32_t>(rng() % 1000);
    i64[i] = static_cast<int64_t>(rng() % 1000);
    f64[i] = static_cast<double>(rng() % 1000) * 0.5;
    boolv[i] = rng() & 1;
    nulls[i] = (rng() % 10) == 0;
  }
  std::vector<sel_t> sel_out(kN);
  std::vector<uint64_t> hashes(kN);
  Vector vi64(TypeId::kI64, kN);
  std::memcpy(vi64.RawData(), i64.data(), kN * sizeof(int64_t));
  Vector vf64(TypeId::kF64, kN);
  std::memcpy(vf64.RawData(), f64.data(), kN * sizeof(double));

  const int32_t c32 = 500;
  const double c64 = 250.0;
  const void* sel_i32_args[2] = {i32.data(), &c32};
  const void* sel_f64_args[2] = {f64.data(), &c64};

  struct Prim {
    const char* name;
    std::function<double(SimdLevel)> run;  // returns min seconds
  };
  std::vector<Prim> prims;
  prims.push_back({"select_lt_i32_vec_val", [&](SimdLevel l) {
    SelectFn fn = reg->FindSelect(
        "lt", {{TypeId::kI32, false}, {TypeId::kI32, true}}, l);
    return bench::MinTime(5, [&] {
      for (int it = 0; it < kIters; it++) {
        fn(kN, nullptr, sel_i32_args, sel_out.data());
      }
    });
  }});
  prims.push_back({"select_lt_f64_vec_val", [&](SimdLevel l) {
    SelectFn fn = reg->FindSelect(
        "lt", {{TypeId::kF64, false}, {TypeId::kF64, true}}, l);
    return bench::MinTime(5, [&] {
      for (int it = 0; it < kIters; it++) {
        fn(kN, nullptr, sel_f64_args, sel_out.data());
      }
    });
  }});
  prims.push_back({"compact_true_bool", [&](SimdLevel l) {
    return bench::MinTime(5, [&] {
      for (int it = 0; it < kIters; it++) {
        simd::CompactTrue(kN, boolv.data(), sel_out.data(), l);
      }
    });
  }});
  prims.push_back({"compact_true_notnull", [&](SimdLevel l) {
    return bench::MinTime(5, [&] {
      for (int it = 0; it < kIters; it++) {
        simd::CompactTrueNotNull(kN, boolv.data(), nulls.data(),
                                 sel_out.data(), l);
      }
    });
  }});
  prims.push_back({"hash_i64", [&](SimdLevel l) {
    return bench::MinTime(5, [&] {
      for (int it = 0; it < kIters; it++) {
        hashk::HashColumn(vi64, kN, nullptr, hashes.data(), false, l);
      }
    });
  }});
  prims.push_back({"hash_f64_combine", [&](SimdLevel l) {
    return bench::MinTime(5, [&] {
      for (int it = 0; it < kIters; it++) {
        hashk::HashColumn(vf64, kN, nullptr, hashes.data(), true, l);
      }
    });
  }});
  prims.push_back({"agg_sum_i64_keyless", [&](SimdLevel l) {
    int64_t acc_i64 = 0, acc_cnt = 0;
    double acc_f64 = 0;
    return bench::MinTime(5, [&] {
      for (int it = 0; it < kIters; it++) {
        agg::UpdateAccum(AggKind::kSum, TypeId::kI64, kN, nullptr, nullptr,
                         nulls.data(), i64.data(), &acc_i64, &acc_f64,
                         &acc_cnt, l);
      }
    });
  }});
  prims.push_back({"agg_max_i32_keyless", [&](SimdLevel l) {
    int64_t acc_i64 = 0, acc_cnt = 0;
    double acc_f64 = 0;
    return bench::MinTime(5, [&] {
      for (int it = 0; it < kIters; it++) {
        agg::UpdateAccum(AggKind::kMax, TypeId::kI32, kN, nullptr, nullptr,
                         nulls.data(), i32.data(), &acc_i64, &acc_f64,
                         &acc_cnt, l);
      }
    });
  }});

  std::printf("\nper-primitive ns/row (%d-row vectors):\n", kN);
  std::printf("%-24s", "primitive");
  for (SimdLevel l : levels) std::printf(" %12s", SimdLevelName(l));
  std::printf(" %10s\n", "speedup");
  for (const Prim& p : prims) {
    std::printf("%-24s", p.name);
    double scalar_ns = 0, best_ns = 0;
    for (SimdLevel l : levels) {
      const double ns = NsPerRow(p.run(l));
      if (l == SimdLevel::kScalar) scalar_ns = ns;
      best_ns = ns;
      std::printf(" %12.3f", ns);
      json.Add(std::string(p.name) + " " + SimdLevelName(l), ns);
    }
    if (levels.size() > 1) {
      std::printf(" %9.2fx", scalar_ns / best_ns);
    } else {
      std::printf(" %10s", "n/a");
    }
    std::printf("\n");
  }

  // ---- end-to-end: Q1/Q6 per level vs the Volcano baseline ----------------
  const double sf = 0.02;
  Database db;
  if (!tpch::Generate(&db, sf).ok()) return 1;
  Session session(&db);
  const int64_t rows = (*db.GetTable("lineitem"))->visible_rows();
  std::printf("\nlineitem rows: %lld (SF %.3f), data memory-resident\n\n",
              static_cast<long long>(rows), sf);

  auto vrows = tpch::MaterializeRows(&db, "lineitem");
  if (!vrows.ok()) return 1;

  // Warm the buffer pool once.
  (void)session.Execute(tpch::Q1Plan());

  std::printf("%-10s %14s %14s %14s\n", "query", "level", "time(ms)",
              "ns/tuple");
  const char* names[2] = {"Q1", "Q6"};
  double vec_best[2] = {0, 0};
  for (int q = 0; q < 2; q++) {
    for (SimdLevel l : levels) {
      db.config().simd_level =
          l == SimdLevel::kScalar
              ? SimdMode::kScalar
              : (l == SimdLevel::kAvx2 ? SimdMode::kAvx2 : SimdMode::kNeon);
      const double t = bench::MinTime(3, [&] {
        auto r = session.Execute(q == 0 ? tpch::Q1Plan() : tpch::Q6Plan());
        if (!r.ok()) std::abort();
      });
      vec_best[q] = t;
      std::printf("%-10s %14s %14.2f %14.2f\n", names[q], SimdLevelName(l),
                  t * 1e3, t * 1e9 / rows);
      json.Add(std::string(names[q]) + " vectorized " + SimdLevelName(l),
               t * 1e9 / rows);
    }
  }
  db.config().simd_level = SimdMode::kAuto;
  double vol_t[2];
  vol_t[0] = bench::MinTime(3, [&] {
    auto plan = tpch::Q1Volcano(&*vrows);
    auto r = volcano::Collect(plan->get());
    if (!r.ok()) std::abort();
  });
  vol_t[1] = bench::MinTime(3, [&] {
    auto plan = tpch::Q6Volcano(&*vrows);
    auto r = volcano::Collect(plan->get());
    if (!r.ok()) std::abort();
  });
  for (int q = 0; q < 2; q++) {
    std::printf("%-10s %14s %14.2f %14.2f   (%.1fx vs vectorized)\n",
                names[q], "volcano", vol_t[q] * 1e3, vol_t[q] * 1e9 / rows,
                vol_t[q] / vec_best[q]);
    json.Add(std::string(names[q]) + " volcano", vol_t[q] * 1e9 / rows);
  }
  std::printf("\npaper claim: >10x over conventional engines — measured %s\n",
              vol_t[0] / vec_best[0] > 10 && vol_t[1] / vec_best[1] > 10
                  ? "CONFIRMED"
                  : "see EXPERIMENTS.md");
  return json.Write() ? 0 : 1;
}
