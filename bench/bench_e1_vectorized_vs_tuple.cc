// E1 — §1 headline claim: vectorized execution "allows modern CPU to
// process queries more than 10 times faster than conventional query
// engines". TPC-H Q1 and Q6 through the vectorized engine vs the Volcano
// tuple-at-a-time baseline, same memory-resident data.
#include "bench_util.h"
#include "engine/session.h"
#include "tpch/tpch.h"

using namespace x100;

int main() {
  bench::Header("E1", "vectorized vs tuple-at-a-time (TPC-H Q1, Q6)");
  const double sf = 0.02;
  Database db;
  if (!tpch::Generate(&db, sf).ok()) return 1;
  Session session(&db);
  const int64_t rows = (*db.GetTable("lineitem"))->visible_rows();
  std::printf("lineitem rows: %lld (SF %.3f), data memory-resident\n\n",
              static_cast<long long>(rows), sf);

  auto vrows = tpch::MaterializeRows(&db, "lineitem");
  if (!vrows.ok()) return 1;

  struct Q {
    const char* name;
    std::function<void()> vectorized;
    std::function<void()> volcano;
  };
  double vec_t[2], vol_t[2];

  // Warm the buffer pool once.
  (void)session.Execute(tpch::Q1Plan());

  vec_t[0] = bench::MinTime(3, [&] {
    auto r = session.Execute(tpch::Q1Plan());
    if (!r.ok()) std::abort();
  });
  vol_t[0] = bench::MinTime(3, [&] {
    auto plan = tpch::Q1Volcano(&*vrows);
    auto r = volcano::Collect(plan->get());
    if (!r.ok()) std::abort();
  });
  vec_t[1] = bench::MinTime(3, [&] {
    auto r = session.Execute(tpch::Q6Plan());
    if (!r.ok()) std::abort();
  });
  vol_t[1] = bench::MinTime(3, [&] {
    auto plan = tpch::Q6Volcano(&*vrows);
    auto r = volcano::Collect(plan->get());
    if (!r.ok()) std::abort();
  });

  std::printf("%-6s %14s %14s %10s %14s %14s\n", "query", "vectorized(ms)",
              "volcano(ms)", "speedup", "vec ns/tuple", "volc ns/tuple");
  const char* names[2] = {"Q1", "Q6"};
  for (int q = 0; q < 2; q++) {
    std::printf("%-6s %14.2f %14.2f %9.1fx %14.2f %14.2f\n", names[q],
                vec_t[q] * 1e3, vol_t[q] * 1e3, vol_t[q] / vec_t[q],
                vec_t[q] * 1e9 / rows, vol_t[q] * 1e9 / rows);
  }
  std::printf("\npaper claim: >10x over conventional engines — measured %s\n",
              vol_t[0] / vec_t[0] > 10 && vol_t[1] / vec_t[1] > 10
                  ? "CONFIRMED"
                  : "see EXPERIMENTS.md");
  return 0;
}
