// Updates & transactions on PDTs: snapshot isolation, write-write conflict
// detection, and checkpointing (background update propagation's endpoint).
//
//   $ ./updates_transactions
#include <cstdio>

#include "engine/session.h"

using namespace x100;

int main() {
  Database db;
  auto builder = db.CreateTable(
      "accounts",
      Schema({Field("id", TypeId::kI64), Field("owner", TypeId::kStr),
              Field("balance", TypeId::kF64)}),
      Layout::kDsm, 256);
  for (int i = 0; i < 1000; i++) {
    (void)builder->AppendRow({Value::I64(i),
                              Value::Str("owner-" + std::to_string(i)),
                              Value::F64(100.0)});
  }
  {
    auto t = builder->Finish();
    (void)db.RegisterTable(std::move(t).value());
  }
  UpdatableTable* accounts = *db.GetTable("accounts");
  TransactionManager* tm = db.txn_manager();
  Session session(&db);

  auto total = [&] {
    auto r = session.ExecuteSql("SELECT SUM(balance) AS total FROM accounts");
    return r.ok() ? r->rows[0][0].AsF64() : -1.0;
  };
  std::printf("initial total balance: %.2f\n", total());

  // A transfer in one transaction: scans see nothing until commit.
  auto txn = tm->Begin(accounts);
  (void)txn->Update(0, 2, Value::F64(0.0));
  (void)txn->Update(1, 2, Value::F64(200.0));
  std::printf("during txn (uncommitted), total: %.2f\n", total());
  if (Status s = tm->Commit(txn.get()); !s.ok()) {
    std::fprintf(stderr, "commit: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("after commit, total: %.2f (conserved)\n", total());

  // Write-write conflict: two transactions touching the same row.
  auto t1 = tm->Begin(accounts);
  auto t2 = tm->Begin(accounts);
  (void)t1->Update(5, 2, Value::F64(1.0));
  (void)t2->Update(5, 2, Value::F64(2.0));
  (void)tm->Commit(t1.get());
  Status conflict = tm->Commit(t2.get());
  std::printf("second writer on the same row: %s\n",
              conflict.ToString().c_str());

  // Deletes, inserts and a checkpoint that rewrites the stable image.
  auto t3 = tm->Begin(accounts);
  (void)t3->Delete(999);
  (void)t3->Append({Value::I64(5000), Value::Str("late-arrival"),
                    Value::F64(42.0)});
  (void)tm->Commit(t3.get());
  std::printf("deltas before checkpoint: %lld PDT-anchored SIDs\n",
              static_cast<long long>(
                  accounts->read_pdt()->num_delta_sids()));
  if (Status s = tm->Checkpoint(accounts, db.buffers()); !s.ok()) {
    std::fprintf(stderr, "checkpoint: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("after checkpoint: %lld delta SIDs, %lld stable rows, total"
              " %.2f\n",
              static_cast<long long>(accounts->read_pdt()->num_delta_sids()),
              static_cast<long long>(accounts->base()->num_rows()), total());
  return 0;
}
