// Operations: system monitoring (event log, query listing, counters) and
// query cancellation — the paper's "mundane" production features.
//
//   $ ./ops_monitoring
#include <cstdio>
#include <thread>

#include "engine/session.h"
#include "tpch/tpch.h"

using namespace x100;

int main() {
  EngineConfig cfg;
  cfg.disk_bandwidth = 300ll << 20;  // throttled disk: queries take a while
  cfg.buffer_pool_blocks = 8;
  Database db(cfg);
  if (!tpch::Generate(&db, 0.005).ok()) return 1;
  Session session(&db);

  // Run a few queries, one failing, one cancelled.
  (void)session.ExecuteSql(
      "SELECT l_returnflag, COUNT(*) AS n FROM lineitem GROUP BY "
      "l_returnflag");
  (void)session.ExecuteSql("SELECT no_such_column FROM lineitem");

  CancellationToken token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    token.Cancel();
  });
  (void)session.Execute(tpch::Q1Plan(), &token);
  canceller.join();

  // Query listing — the production replacement for "kill -9 and hope".
  std::printf("%-4s %-10s %10s %10s  %s\n", "id", "state", "time(s)",
              "tuples", "query");
  for (const auto& q : db.queries()->List()) {
    std::string text = q.text.substr(0, 48);
    std::printf("%-4lld %-10s %10.3f %10lld  %s%s\n",
                static_cast<long long>(q.id), QueryStateName(q.state),
                q.elapsed_sec, static_cast<long long>(q.tuples_scanned),
                text.c_str(), q.text.size() > 48 ? "…" : "");
    if (!q.error.empty()) std::printf("       error: %s\n", q.error.c_str());
  }

  std::printf("\nrecent events:\n");
  for (const auto& ev : db.events()->Recent(6)) {
    std::printf("  [%d] %s\n", static_cast<int>(ev.level),
                ev.message.c_str());
  }

  std::printf("\ncounters:\n");
  for (const auto& [name, value] : db.counters()->Snapshot()) {
    std::printf("  %-20s %lld\n", name.c_str(),
                static_cast<long long>(value));
  }
  std::printf("\nbuffer pool: %lld hits / %lld misses; disk: %.1f MB read\n",
              static_cast<long long>(db.buffers()->hits()),
              static_cast<long long>(db.buffers()->misses()),
              db.disk()->bytes_read() / 1e6);
  return 0;
}
