// Operations: system monitoring exposed over the WIRE protocol — event
// log, query listing (with per-operator profiles), counters — plus async
// query submission and cancellation: the paper's "mundane" production
// features.
//
// The monitor side runs a MonitorEndpoint serving length-prefixed frames
// over a pipe; the "ops tool" side speaks the client half of
// monitor/wire.h — the same split a real deployment has between the
// server process and an external dashboard.
//
//   $ ./ops_monitoring
#include <unistd.h>

#include <cstdio>
#include <thread>

#include "engine/session.h"
#include "monitor/wire.h"
#include "tpch/tpch.h"

using namespace x100;

int main() {
  EngineConfig cfg;
  cfg.disk_bandwidth = 300ll << 20;  // throttled disk: queries take a while
  cfg.buffer_pool_bytes = 8 * kDiskBlockBytes;
  Database db(cfg);
  if (!tpch::Generate(&db, 0.005).ok()) return 1;
  Session session(&db);

  // A prepared statement submitted asynchronously (twice: the second
  // submission reuses the cached plan), one failing ad-hoc query, one
  // cancelled query.
  auto prepared = session.Prepare(
      "SELECT l_returnflag, COUNT(*) AS n FROM lineitem GROUP BY "
      "l_returnflag");
  if (prepared.ok()) {
    auto p1 = session.Submit(*prepared);
    auto p2 = session.Submit(*prepared);
    if (p1.ok()) (void)p1->Wait();
    if (p2.ok()) (void)p2->Wait();
  }
  (void)session.ExecuteSql("SELECT no_such_column FROM lineitem");

  CancellationToken token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    token.Cancel();
  });
  (void)session.Execute(tpch::Q1Plan(), &token);
  canceller.join();

  // Serve the monitor state over a pipe pair: server thread on one end,
  // this thread acting as the external ops tool on the other.
  int to_server[2], to_client[2];
  if (pipe(to_server) != 0 || pipe(to_client) != 0) return 1;
  MonitorEndpoint endpoint(db.queries(), db.counters(), db.events());
  std::thread server([&] {
    (void)endpoint.ServeStream(to_server[0], to_client[1]);
    close(to_server[0]);
    close(to_client[1]);
  });

  auto request = [&](WireOpcode op, std::vector<uint8_t>* response) {
    if (!WriteFrame(to_server[1], EncodeRequest(op)).ok()) return false;
    return ReadFrame(to_client[0], response).ok();
  };

  // Query listing — the production replacement for "kill -9 and hope".
  std::vector<uint8_t> payload;
  std::vector<QueryInfo> queries;
  if (request(WireOpcode::kListQueries, &payload) &&
      DecodeQueryList(payload, &queries).ok()) {
    std::printf("%-4s %-10s %10s %10s  %s\n", "id", "state", "time(s)",
                "tuples", "query");
    for (const auto& q : queries) {
      std::string text = q.text.substr(0, 48);
      std::printf("%-4lld %-10s %10.3f %10lld  %s%s\n",
                  static_cast<long long>(q.id), QueryStateName(q.state),
                  q.elapsed_sec, static_cast<long long>(q.tuples_scanned),
                  text.c_str(), q.text.size() > 48 ? "…" : "");
      if (!q.error.empty()) {
        std::printf("       error: %s\n", q.error.c_str());
      }
      if (!q.profile.empty()) {
        std::printf("       %zu profiled operators, wall %.3f ms\n",
                    q.profile.operators.size(), q.profile.wall_ns / 1e6);
      }
    }
  }

  std::printf("\nrecent events (over the wire):\n");
  std::vector<WireEvent> events;
  if (request(WireOpcode::kEvents, &payload) &&
      DecodeEvents(payload, &events).ok()) {
    const size_t start = events.size() > 6 ? events.size() - 6 : 0;
    for (size_t i = start; i < events.size(); i++) {
      std::printf("  [%d] %s\n", static_cast<int>(events[i].level),
                  events[i].message.c_str());
    }
  }

  std::printf("\ncounters (over the wire):\n");
  std::map<std::string, int64_t> counters;
  if (request(WireOpcode::kCounters, &payload) &&
      DecodeCounters(payload, &counters).ok()) {
    for (const auto& [name, value] : counters) {
      std::printf("  %-20s %lld\n", name.c_str(),
                  static_cast<long long>(value));
    }
  }

  // Client hangs up; the server loop sees EOF and exits.
  close(to_server[1]);
  server.join();
  close(to_client[0]);

  std::printf(
      "\nplan cache: %lld hits / %lld misses; buffer pool: %lld hits / "
      "%lld misses (%lld evictions, %lld coalesced reads); disk: %.1f MB "
      "read\n",
      static_cast<long long>(db.plan_cache()->hits()),
      static_cast<long long>(db.plan_cache()->misses()),
      static_cast<long long>(db.buffers()->hits()),
      static_cast<long long>(db.buffers()->misses()),
      static_cast<long long>(db.buffers()->evictions()),
      static_cast<long long>(db.buffers()->single_flight_waits()),
      db.disk()->bytes_read() / 1e6);
  return 0;
}
