// TPC-H analytics: generate the benchmark schema at a small scale factor
// and run Q1 / Q3 / Q6 — serial and through the parallel pipeline executor.
//
//   $ ./tpch_analytics
#include <cstdio>

#include "tpch/tpch.h"
#include "engine/session.h"

using namespace x100;

namespace {

void Print(const char* title, const QueryResult& r, size_t max_rows = 10) {
  std::printf("\n--- %s (%zu rows) ---\n", title, r.rows.size());
  for (const Field& f : r.schema.fields()) {
    std::printf("%-16s ", f.name.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < r.rows.size() && i < max_rows; i++) {
    for (const Value& v : r.rows[i]) {
      std::printf("%-16s ", v.ToString().c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  Database db;
  std::printf("generating TPC-H at SF 0.01 ...\n");
  if (Status s = tpch::Generate(&db, 0.01); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  Session session(&db);
  std::printf("lineitem: %lld rows, %lld compressed bytes on (simulated)"
              " disk\n",
              static_cast<long long>((*db.GetTable("lineitem"))->visible_rows()),
              static_cast<long long>(
                  (*db.GetTable("lineitem"))->base()->compressed_bytes()));

  auto q1 = session.Execute(tpch::Q1Plan());
  if (!q1.ok()) return 1;
  Print("Q1 pricing summary", *q1);

  auto q3 = session.Execute(tpch::Q3Plan("BUILDING"));
  if (!q3.ok()) return 1;
  Print("Q3 shipping priority (top 10)", *q3);

  auto q6 = session.Execute(tpch::Q6Plan(1994));
  if (!q6.ok()) return 1;
  Print("Q6 forecast revenue change", *q6);

  // The same Q1 decomposed into parallel pipelines by the physical planner.
  db.config().max_parallelism = 2;
  auto q1p = session.Execute(tpch::Q1Plan());
  if (!q1p.ok()) return 1;
  Print("Q1 via parallel pipelines (identical results)", *q1p);
  return 0;
}
