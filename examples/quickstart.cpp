// Quickstart: create a table, load rows, run SQL through the full
// Figure-1 pipeline (parser -> cross compiler -> rewriter -> vectorized
// execution).
//
//   $ ./quickstart
#include <cstdio>

#include "engine/session.h"

using namespace x100;

int main() {
  Database db;

  // 1. Define and load a table (VECTORWISE-style columnar storage).
  auto builder = db.CreateTable(
      "orders",
      Schema({Field("id", TypeId::kI64), Field("customer", TypeId::kStr),
              Field("amount", TypeId::kF64), Field("day", TypeId::kDate)}),
      Layout::kDsm);
  const char* customers[] = {"acme", "globex", "initech"};
  for (int i = 0; i < 10000; i++) {
    Status s = builder->AppendRow(
        {Value::I64(i), Value::Str(customers[i % 3]),
         Value::F64(100.0 + i % 900),
         Value::Date(MakeDate(1994, 1, 1) + i % 365)});
    if (!s.ok()) {
      std::fprintf(stderr, "append: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  {
    auto table = builder->Finish();
    if (!table.ok() || !db.RegisterTable(std::move(table).value()).ok()) {
      return 1;
    }
  }

  // 2. Query it with SQL.
  Session session(&db);
  auto result = session.ExecuteSql(
      "SELECT customer, COUNT(*) AS orders, SUM(amount) AS total, "
      "AVG(amount) AS avg_amount "
      "FROM orders WHERE day BETWEEN DATE '1994-03-01' AND DATE "
      "'1994-06-30' GROUP BY customer ORDER BY total DESC");
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 3. Print rows.
  for (const Field& f : result->schema.fields()) {
    std::printf("%-12s ", f.name.c_str());
  }
  std::printf("\n");
  for (const auto& row : result->rows) {
    for (const Value& v : row) std::printf("%-12s ", v.ToString().c_str());
    std::printf("\n");
  }
  return 0;
}
