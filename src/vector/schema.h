// Relational schema descriptors shared by storage, execution and frontends.
#ifndef X100_VECTOR_SCHEMA_H_
#define X100_VECTOR_SCHEMA_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace x100 {

/// One column: name, type, nullability.
struct Field {
  std::string name;
  TypeId type;
  bool nullable = false;

  Field(std::string n, TypeId t, bool null = false)
      : name(std::move(n)), type(t), nullable(null) {}
};

/// Ordered list of fields.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  /// Index of the column named `name`, or -1.
  int FindField(const std::string& name) const {
    for (size_t i = 0; i < fields_.size(); i++) {
      if (fields_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  std::string ToString() const {
    std::string s = "(";
    for (size_t i = 0; i < fields_.size(); i++) {
      if (i) s += ", ";
      s += fields_[i].name;
      s += ' ';
      s += TypeName(fields_[i].type);
      if (fields_[i].nullable) s += " null";
    }
    s += ')';
    return s;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace x100

#endif  // X100_VECTOR_SCHEMA_H_
