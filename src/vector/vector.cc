#include "vector/vector.h"

namespace x100 {

void Vector::CopyFrom(const Vector& src, int src_offset, int n,
                      int dst_offset) {
  assert(src.type_ == type_);
  assert(dst_offset + n <= capacity_);
  if (type_ == TypeId::kStr) {
    const StrRef* in = src.Data<StrRef>() + src_offset;
    StrRef* out = Data<StrRef>() + dst_offset;
    for (int i = 0; i < n; i++) out[i] = heap_->Add(in[i].view());
  } else {
    std::memcpy(data_.get() + static_cast<size_t>(dst_offset) * width_,
                src.data_.get() + static_cast<size_t>(src_offset) * width_,
                static_cast<size_t>(n) * width_);
  }
  if (src.has_nulls_) {
    uint8_t* nd = MutableNulls();
    std::memcpy(nd + dst_offset, src.nulls_.get() + src_offset, n);
  } else if (has_nulls_) {
    std::memset(nulls_.get() + dst_offset, 0, n);
  }
}

}  // namespace x100
