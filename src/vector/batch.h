// Batch: the multi-column unit flowing between vectorized operators.
//
// A batch holds one Vector per column plus an optional selection vector.
// Selection vectors are the X100 mechanism for cheap filtering: SelectOp
// emits the indexes of qualifying rows instead of copying survivors, and
// downstream primitives iterate the selection.
#ifndef X100_VECTOR_BATCH_H_
#define X100_VECTOR_BATCH_H_

#include <memory>
#include <vector>

#include "vector/schema.h"
#include "vector/vector.h"

namespace x100 {

class Batch {
 public:
  Batch(const Schema& schema, int capacity) : capacity_(capacity) {
    cols_.reserve(schema.num_fields());
    for (const Field& f : schema.fields()) {
      cols_.push_back(std::make_unique<Vector>(f.type, capacity));
    }
    sel_buf_ = std::make_unique<sel_t[]>(capacity);
  }

  int capacity() const { return capacity_; }
  int num_columns() const { return static_cast<int>(cols_.size()); }

  Vector* column(int i) { return cols_[i].get(); }
  const Vector* column(int i) const { return cols_[i].get(); }

  /// Number of physical rows filled in the vectors.
  int rows() const { return rows_; }
  void set_rows(int n) { rows_ = n; }

  /// Selection vector: when non-null, only the listed positions are live.
  const sel_t* sel() const { return has_sel_ ? sel_buf_.get() : nullptr; }
  sel_t* MutableSel() { return sel_buf_.get(); }
  void SetSelCount(int n) {
    has_sel_ = true;
    sel_count_ = n;
  }
  void ClearSel() {
    has_sel_ = false;
    sel_count_ = 0;
  }
  bool has_sel() const { return has_sel_; }

  /// Live rows: selection count if a selection is active, else all rows.
  int ActiveRows() const { return has_sel_ ? sel_count_ : rows_; }

  /// Resets row/selection state and string heaps for refill by a producer.
  void Reset() {
    rows_ = 0;
    ClearSel();
    for (auto& c : cols_) {
      if (c->heap()) c->heap()->Reset();
      c->ClearNulls();
    }
  }

  /// Densifies: materializes selected rows into a fresh batch with no
  /// selection vector (used at pipeline breakers and result collection).
  std::unique_ptr<Batch> Compact(const Schema& schema) const;

  size_t MemoryBytes() const {
    size_t b = sizeof(Batch) + static_cast<size_t>(capacity_) * sizeof(sel_t);
    for (const auto& c : cols_) b += c->MemoryBytes();
    return b;
  }

 private:
  int capacity_;
  int rows_ = 0;
  bool has_sel_ = false;
  int sel_count_ = 0;
  std::vector<std::unique_ptr<Vector>> cols_;
  std::unique_ptr<sel_t[]> sel_buf_;
};

}  // namespace x100

#endif  // X100_VECTOR_BATCH_H_
