// Vector: a typed array of up to `capacity` values — the unit of work of
// vectorized execution.
//
// NULL handling follows the paper (§"NULLs"): a vector optionally carries a
// separate null-indicator column (uint8_t, 1 = NULL) while the value slots
// at NULL positions hold a "safe" value (0 / empty string) so that
// NULL-oblivious kernels can process the full vector without faulting.
#ifndef X100_VECTOR_VECTOR_H_
#define X100_VECTOR_VECTOR_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>

#include "common/types.h"
#include "vector/string_heap.h"

namespace x100 {

/// Index type of selection vectors.
using sel_t = int32_t;

class Vector {
 public:
  Vector(TypeId type, int capacity)
      : type_(type), capacity_(capacity), width_(TypeWidth(type)) {
    data_ = std::make_unique<uint8_t[]>(
        static_cast<size_t>(capacity_) * width_);
    if (type_ == TypeId::kStr) heap_ = std::make_unique<StringHeap>();
  }

  Vector(const Vector&) = delete;
  Vector& operator=(const Vector&) = delete;

  TypeId type() const { return type_; }
  int capacity() const { return capacity_; }

  /// Raw data access. T must match the vector's physical type.
  template <typename T>
  T* Data() {
    return reinterpret_cast<T*>(data_.get());
  }
  template <typename T>
  const T* Data() const {
    return reinterpret_cast<const T*>(data_.get());
  }
  void* RawData() { return data_.get(); }
  const void* RawData() const { return data_.get(); }

  /// Null-indicator column; allocated on first use. 1 = NULL. Re-arming
  /// after ClearNulls() starts from an all-clear buffer (stale flags from
  /// a previous batch must not resurrect).
  uint8_t* MutableNulls() {
    if (!nulls_) {
      nulls_ = std::make_unique<uint8_t[]>(capacity_);
      std::memset(nulls_.get(), 0, capacity_);
    } else if (!has_nulls_) {
      std::memset(nulls_.get(), 0, capacity_);
    }
    has_nulls_ = true;
    return nulls_.get();
  }
  const uint8_t* nulls() const { return nulls_.get(); }
  bool has_nulls() const { return has_nulls_; }

  /// Declares the vector NULL-free (does not free the buffer; cheap toggle).
  void ClearNulls() { has_nulls_ = false; }

  /// Marks position i NULL and stores the safe value.
  void SetNull(int i) {
    MutableNulls()[i] = 1;
    // Safe value so NULL-oblivious kernels stay well-defined.
    if (type_ == TypeId::kStr) {
      Data<StrRef>()[i] = StrRef("", 0);
    } else {
      std::memset(data_.get() + static_cast<size_t>(i) * width_, 0, width_);
    }
  }

  bool IsNull(int i) const { return has_nulls_ && nulls_[i] != 0; }

  /// String heap backing StrRef values (kStr vectors only).
  StringHeap* heap() { return heap_.get(); }

  /// Copies `n` values (and null flags) from `src` starting at src_offset.
  /// Strings are re-added to this vector's heap.
  void CopyFrom(const Vector& src, int src_offset, int n, int dst_offset);

  /// Byte footprint of the vector's buffers (memory accounting).
  size_t MemoryBytes() const {
    size_t b = static_cast<size_t>(capacity_) * width_;
    if (nulls_) b += capacity_;
    if (heap_) b += heap_->bytes_allocated();
    return b;
  }

 private:
  TypeId type_;
  int capacity_;
  int width_;
  std::unique_ptr<uint8_t[]> data_;
  std::unique_ptr<uint8_t[]> nulls_;
  bool has_nulls_ = false;
  std::unique_ptr<StringHeap> heap_;
};

}  // namespace x100

#endif  // X100_VECTOR_VECTOR_H_
