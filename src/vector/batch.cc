#include "vector/batch.h"

namespace x100 {

namespace {
template <typename T>
void GatherColumn(const Vector& src, const sel_t* sel, int n, Vector* dst) {
  const T* in = src.Data<T>();
  T* out = dst->Data<T>();
  for (int i = 0; i < n; i++) out[i] = in[sel[i]];
}
}  // namespace

std::unique_ptr<Batch> Batch::Compact(const Schema& schema) const {
  auto out = std::make_unique<Batch>(schema, capacity_);
  const int n = ActiveRows();
  for (int c = 0; c < num_columns(); c++) {
    const Vector& src = *cols_[c];
    Vector* dst = out->column(c);
    if (!has_sel_) {
      dst->CopyFrom(src, 0, n, 0);
      continue;
    }
    const sel_t* s = sel_buf_.get();
    switch (src.type()) {
      case TypeId::kBool:
        GatherColumn<uint8_t>(src, s, n, dst);
        break;
      case TypeId::kI8:
        GatherColumn<int8_t>(src, s, n, dst);
        break;
      case TypeId::kI16:
        GatherColumn<int16_t>(src, s, n, dst);
        break;
      case TypeId::kI32:
      case TypeId::kDate:
        GatherColumn<int32_t>(src, s, n, dst);
        break;
      case TypeId::kI64:
        GatherColumn<int64_t>(src, s, n, dst);
        break;
      case TypeId::kF64:
        GatherColumn<double>(src, s, n, dst);
        break;
      case TypeId::kStr: {
        const StrRef* in = src.Data<StrRef>();
        StrRef* outp = dst->Data<StrRef>();
        for (int i = 0; i < n; i++) {
          outp[i] = dst->heap()->Add(in[s[i]].view());
        }
        break;
      }
    }
    if (src.has_nulls()) {
      const uint8_t* in_nulls = src.nulls();
      uint8_t* out_nulls = dst->MutableNulls();
      for (int i = 0; i < n; i++) out_nulls[i] = in_nulls[s[i]];
    }
  }
  out->set_rows(n);
  return out;
}

}  // namespace x100
