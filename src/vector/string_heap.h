// Arena storage for variable-width string data.
//
// X100 vectors of strings hold fixed-width StrRef entries pointing into a
// per-batch heap. The heap is bump-allocated and reset wholesale when the
// producing operator refills its batch — no per-string frees.
#ifndef X100_VECTOR_STRING_HEAP_H_
#define X100_VECTOR_STRING_HEAP_H_

#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace x100 {

class StringHeap {
 public:
  explicit StringHeap(size_t chunk_bytes = 64 * 1024)
      : chunk_bytes_(chunk_bytes) {}

  /// Copies `sv` into the heap and returns a StrRef to the copy.
  StrRef Add(std::string_view sv) {
    if (sv.empty()) return StrRef("", 0);
    char* dst = Allocate(sv.size());
    std::memcpy(dst, sv.data(), sv.size());
    return StrRef(dst, static_cast<uint32_t>(sv.size()));
  }

  /// Reserves `n` writable bytes (for functions building strings in place,
  /// e.g. concat / upper). Caller wraps the result in a StrRef.
  char* Allocate(size_t n) {
    if (used_ + n > cur_size_) Grow(n);
    char* p = cur_ + used_;
    used_ += n;
    bytes_allocated_ += n;
    return p;
  }

  /// Drops all strings; keeps the first chunk for reuse.
  void Reset() {
    if (chunks_.size() > 1) {
      chunks_.resize(1);
    }
    if (!chunks_.empty()) {
      cur_ = chunks_[0].get();
      cur_size_ = chunk_bytes_;
    } else {
      cur_ = nullptr;
      cur_size_ = 0;
    }
    used_ = 0;
    bytes_allocated_ = 0;
  }

  size_t bytes_allocated() const { return bytes_allocated_; }

 private:
  void Grow(size_t min_bytes) {
    size_t sz = chunk_bytes_;
    while (sz < min_bytes) sz *= 2;
    chunks_.push_back(std::make_unique<char[]>(sz));
    cur_ = chunks_.back().get();
    cur_size_ = sz;
    used_ = 0;
  }

  size_t chunk_bytes_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  char* cur_ = nullptr;
  size_t cur_size_ = 0;
  size_t used_ = 0;
  size_t bytes_allocated_ = 0;
};

}  // namespace x100

#endif  // X100_VECTOR_STRING_HEAP_H_
