// The cross compiler: Ingres-like relational plans -> X100 algebra, with
// scan column pruning.
#include <set>

#include "frontend/frontend.h"

namespace x100 {

namespace {

void CollectColumns(const ExprPtr& e, std::set<std::string>* out) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::kColRef && e->name != "*") {
    out->insert(e->name);
  }
  for (const ExprPtr& a : e->args) CollectColumns(a, out);
}

/// Gathers every column referenced above the relation node.
void CollectPlanColumns(const RelPtr& node, std::set<std::string>* out) {
  CollectColumns(node->qualification, out);
  for (const auto& t : node->targets) CollectColumns(t.expr, out);
  for (const auto& b : node->by_list) CollectColumns(b.expr, out);
  for (const auto& a : node->agg_funcs) CollectColumns(a.input, out);
  for (const auto& k : node->sort_keys) out->insert(k.column);
  for (const RelPtr& c : node->children) CollectPlanColumns(c, out);
}

}  // namespace

Result<AlgebraPtr> CrossCompiler::CompileNode(const RelPtr& node) {
  switch (node->kind) {
    case RelNode::Kind::kRelation:
      return ScanNode(node->relation);
    case RelNode::Kind::kRestrict: {
      AlgebraPtr child;
      X100_ASSIGN_OR_RETURN(child, CompileNode(node->children[0]));
      return SelectNode(std::move(child), node->qualification);
    }
    case RelNode::Kind::kProject: {
      AlgebraPtr child;
      X100_ASSIGN_OR_RETURN(child, CompileNode(node->children[0]));
      std::vector<ProjectItem> items;
      for (const ProjectItem& t : node->targets) {
        items.push_back({t.name, CloneExpr(t.expr)});
      }
      return ProjectNode(std::move(child), std::move(items));
    }
    case RelNode::Kind::kAggregate: {
      AlgebraPtr child;
      X100_ASSIGN_OR_RETURN(child, CompileNode(node->children[0]));
      std::vector<ProjectItem> keys;
      for (const ProjectItem& b : node->by_list) {
        keys.push_back({b.name, CloneExpr(b.expr)});
      }
      std::vector<AggItem> aggs;
      for (const AggItem& a : node->agg_funcs) {
        aggs.push_back(
            {a.kind, a.input ? CloneExpr(a.input) : nullptr, a.name});
      }
      return AggrNode(std::move(child), std::move(keys), std::move(aggs));
    }
    case RelNode::Kind::kSort: {
      AlgebraPtr child;
      X100_ASSIGN_OR_RETURN(child, CompileNode(node->children[0]));
      std::vector<AlgebraNode::OrderKey> keys;
      for (const RelNode::SortKey& k : node->sort_keys) {
        keys.push_back({k.column, k.ascending});
      }
      return OrderNode(std::move(child), std::move(keys), node->limit);
    }
  }
  return Status::Internal("unknown RelNode kind");
}

Result<AlgebraPtr> CrossCompiler::Compile(const RelPtr& plan) {
  AlgebraPtr out;
  X100_ASSIGN_OR_RETURN(out, CompileNode(plan));

  // Column pruning: find the relation leaf and restrict its scan to the
  // columns the rest of the plan references.
  std::set<std::string> referenced;
  CollectPlanColumns(plan, &referenced);
  const RelPtr* rel = &plan;
  while ((*rel)->kind != RelNode::Kind::kRelation) {
    rel = &(*rel)->children[0];
  }
  AlgebraPtr* scan = &out;
  while ((*scan)->kind != AlgebraNode::Kind::kScan) {
    scan = &(*scan)->children[0];
  }
  if (!referenced.empty() && resolver_ != nullptr) {
    Schema schema;
    X100_ASSIGN_OR_RETURN(schema, resolver_((*rel)->relation));
    std::vector<std::string> cols;
    for (const Field& f : schema.fields()) {
      if (referenced.count(f.name)) cols.push_back(f.name);
    }
    if (!cols.empty()) (*scan)->scan_columns = std::move(cols);
  }
  return out;
}

}  // namespace x100
