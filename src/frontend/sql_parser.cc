// Recursive-descent parser for the SQL subset (see frontend.h).
#include <algorithm>
#include <cctype>

#include "frontend/frontend.h"

namespace x100 {

namespace {

struct Token {
  enum class Kind { kIdent, kNumber, kString, kSymbol, kEnd };
  Kind kind;
  std::string text;  // idents lowercased; symbols verbatim
};

class Lexer {
 public:
  explicit Lexer(const std::string& sql) : s_(sql) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < s_.size()) {
      const char c = s_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        i++;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < s_.size() &&
               (std::isalnum(static_cast<unsigned char>(s_[j])) ||
                s_[j] == '_')) {
          j++;
        }
        std::string word = s_.substr(i, j - i);
        std::transform(word.begin(), word.end(), word.begin(), ::tolower);
        out.push_back({Token::Kind::kIdent, std::move(word)});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && i + 1 < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[i + 1])))) {
        size_t j = i;
        bool dot = false;
        while (j < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[j])) ||
                (s_[j] == '.' && !dot))) {
          dot |= s_[j] == '.';
          j++;
        }
        out.push_back({Token::Kind::kNumber, s_.substr(i, j - i)});
        i = j;
        continue;
      }
      if (c == '\'') {
        size_t j = i + 1;
        std::string lit;
        while (j < s_.size() && s_[j] != '\'') lit += s_[j++];
        if (j >= s_.size()) return Status::InvalidArgument("unclosed string");
        out.push_back({Token::Kind::kString, std::move(lit)});
        i = j + 1;
        continue;
      }
      // Multi-char operators.
      if (i + 1 < s_.size()) {
        const std::string two = s_.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
          out.push_back({Token::Kind::kSymbol, two == "!=" ? "<>" : two});
          i += 2;
          continue;
        }
      }
      static const std::string kSingles = "+-*/%(),=<>.";
      if (kSingles.find(c) != std::string::npos) {
        out.push_back({Token::Kind::kSymbol, std::string(1, c)});
        i++;
        continue;
      }
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "' in SQL");
    }
    out.push_back({Token::Kind::kEnd, ""});
    return out;
  }

 private:
  const std::string& s_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<RelPtr> ParseSelect();

 private:
  const Token& Peek() const { return toks_[pos_]; }
  Token Take() { return toks_[pos_++]; }
  bool AtIdent(const char* kw) const {
    return Peek().kind == Token::Kind::kIdent && Peek().text == kw;
  }
  bool TakeIdent(const char* kw) {
    if (!AtIdent(kw)) return false;
    pos_++;
    return true;
  }
  bool AtSymbol(const char* sym) const {
    return Peek().kind == Token::Kind::kSymbol && Peek().text == sym;
  }
  bool TakeSymbol(const char* sym) {
    if (!AtSymbol(sym)) return false;
    pos_++;
    return true;
  }
  Status Expect(const char* sym) {
    if (!TakeSymbol(sym)) {
      return Status::InvalidArgument(std::string("expected '") + sym +
                                     "' near '" + Peek().text + "'");
    }
    return Status::OK();
  }

  Result<ExprPtr> ParseExpr() { return ParseOr(); }
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

Result<ExprPtr> Parser::ParseOr() {
  ExprPtr left;
  X100_ASSIGN_OR_RETURN(left, ParseAnd());
  while (TakeIdent("or")) {
    ExprPtr right;
    X100_ASSIGN_OR_RETURN(right, ParseAnd());
    left = Or(left, right);
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  ExprPtr left;
  X100_ASSIGN_OR_RETURN(left, ParseNot());
  while (TakeIdent("and")) {
    ExprPtr right;
    X100_ASSIGN_OR_RETURN(right, ParseNot());
    left = And(left, right);
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (TakeIdent("not")) {
    ExprPtr inner;
    X100_ASSIGN_OR_RETURN(inner, ParseNot());
    return Not(inner);
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  ExprPtr left;
  X100_ASSIGN_OR_RETURN(left, ParseAdditive());
  // BETWEEN / LIKE / IN / IS NULL
  bool negate = false;
  size_t save = pos_;
  if (TakeIdent("not")) {
    if (AtIdent("between") || AtIdent("like") || AtIdent("in")) {
      negate = true;
    } else {
      pos_ = save;
      return left;
    }
  }
  if (TakeIdent("between")) {
    ExprPtr lo, hi;
    X100_ASSIGN_OR_RETURN(lo, ParseAdditive());
    if (!TakeIdent("and")) {
      return Status::InvalidArgument("BETWEEN requires AND");
    }
    X100_ASSIGN_OR_RETURN(hi, ParseAdditive());
    ExprPtr b = Call("between", {left, lo, hi});
    return negate ? Not(b) : b;
  }
  if (TakeIdent("like")) {
    ExprPtr pat;
    X100_ASSIGN_OR_RETURN(pat, ParsePrimary());
    ExprPtr l = Call("like", {left, pat});
    return negate ? Not(l) : l;
  }
  if (TakeIdent("in")) {
    X100_RETURN_IF_ERROR(Expect("("));
    // Value list -> OR chain of equalities (a conventional frontend
    // expansion; NOT IN against subqueries is the anti-join path built via
    // the algebra API).
    ExprPtr chain;
    while (true) {
      ExprPtr v;
      X100_ASSIGN_OR_RETURN(v, ParseAdditive());
      ExprPtr eq = Eq(CloneExpr(left), v);
      chain = chain == nullptr ? eq : Or(chain, eq);
      if (!TakeSymbol(",")) break;
    }
    X100_RETURN_IF_ERROR(Expect(")"));
    return negate ? Not(chain) : chain;
  }
  if (TakeIdent("is")) {
    const bool is_not = TakeIdent("not");
    if (!TakeIdent("null")) {
      return Status::InvalidArgument("expected NULL after IS");
    }
    return Call(is_not ? "isnotnull" : "isnull", {left});
  }
  static const struct {
    const char* sym;
    const char* fn;
  } kCmps[] = {{"<=", "le"}, {">=", "ge"}, {"<>", "ne"},
               {"=", "eq"},  {"<", "lt"},  {">", "gt"}};
  for (const auto& c : kCmps) {
    if (TakeSymbol(c.sym)) {
      ExprPtr right;
      X100_ASSIGN_OR_RETURN(right, ParseAdditive());
      return Call(c.fn, {left, right});
    }
  }
  return left;
}

Result<ExprPtr> Parser::ParseAdditive() {
  ExprPtr left;
  X100_ASSIGN_OR_RETURN(left, ParseMultiplicative());
  while (AtSymbol("+") || AtSymbol("-")) {
    const bool add = Take().text == "+";
    ExprPtr right;
    X100_ASSIGN_OR_RETURN(right, ParseMultiplicative());
    left = add ? Add(left, right) : Sub(left, right);
  }
  return left;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  ExprPtr left;
  X100_ASSIGN_OR_RETURN(left, ParseUnary());
  while (AtSymbol("*") || AtSymbol("/") || AtSymbol("%")) {
    const std::string op = Take().text;
    ExprPtr right;
    X100_ASSIGN_OR_RETURN(right, ParseUnary());
    left = Call(op == "*" ? "mul" : op == "/" ? "div" : "mod",
                {left, right});
  }
  return left;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (TakeSymbol("-")) {
    ExprPtr inner;
    X100_ASSIGN_OR_RETURN(inner, ParseUnary());
    if (inner->kind == Expr::Kind::kConst) {
      const Value& v = inner->constant;
      return Lit(v.type() == TypeId::kF64 ? Value::F64(-v.AsF64())
                                          : Value::I64(-v.AsI64()));
    }
    return Call("neg", {inner});
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  if (TakeSymbol("(")) {
    ExprPtr e;
    X100_ASSIGN_OR_RETURN(e, ParseExpr());
    X100_RETURN_IF_ERROR(Expect(")"));
    return e;
  }
  const Token t = Take();
  if (t.kind == Token::Kind::kNumber) {
    if (t.text.find('.') != std::string::npos) {
      return Lit(Value::F64(std::stod(t.text)));
    }
    return Lit(Value::I64(std::stoll(t.text)));
  }
  if (t.kind == Token::Kind::kString) return Lit(Value::Str(t.text));
  if (t.kind == Token::Kind::kIdent) {
    if (t.text == "date" && Peek().kind == Token::Kind::kString) {
      int32_t d;
      if (!ParseDate(Take().text, &d)) {
        return Status::InvalidArgument("bad DATE literal");
      }
      return Lit(Value::Date(d));
    }
    if (t.text == "true") return Lit(Value::Bool(true));
    if (t.text == "false") return Lit(Value::Bool(false));
    if (TakeSymbol("(")) {  // function call
      std::vector<ExprPtr> args;
      if (!AtSymbol(")")) {
        while (true) {
          ExprPtr a;
          if (AtSymbol("*")) {  // COUNT(*)
            Take();
            a = Col("*");
          } else {
            X100_ASSIGN_OR_RETURN(a, ParseExpr());
          }
          args.push_back(a);
          if (!TakeSymbol(",")) break;
        }
      }
      X100_RETURN_IF_ERROR(Expect(")"));
      return Call(t.text, std::move(args));
    }
    return Col(t.text);
  }
  return Status::InvalidArgument("unexpected token '" + t.text + "'");
}

bool IsAggName(const std::string& fn) {
  return fn == "sum" || fn == "count" || fn == "avg" || fn == "min" ||
         fn == "max";
}

AggKind AggKindOf(const std::string& fn) {
  if (fn == "sum") return AggKind::kSum;
  if (fn == "count") return AggKind::kCount;
  if (fn == "avg") return AggKind::kAvg;
  if (fn == "min") return AggKind::kMin;
  return AggKind::kMax;
}

Result<RelPtr> Parser::ParseSelect() {
  if (!TakeIdent("select")) {
    return Status::InvalidArgument("expected SELECT");
  }
  struct Item {
    ExprPtr expr;
    std::string name;
  };
  std::vector<Item> items;
  int auto_name = 0;
  while (true) {
    ExprPtr e;
    if (AtSymbol("*")) {
      Take();
      e = Col("*");
    } else {
      X100_ASSIGN_OR_RETURN(e, ParseExpr());
    }
    std::string name;
    if (TakeIdent("as")) {
      if (Peek().kind != Token::Kind::kIdent) {
        return Status::InvalidArgument("expected alias after AS");
      }
      name = Take().text;
    } else if (e->kind == Expr::Kind::kColRef) {
      name = e->name;
    } else {
      name = "col" + std::to_string(auto_name++);
    }
    items.push_back({e, name});
    if (!TakeSymbol(",")) break;
  }
  if (!TakeIdent("from")) {
    return Status::InvalidArgument("expected FROM");
  }
  if (Peek().kind != Token::Kind::kIdent) {
    return Status::InvalidArgument("expected table name");
  }
  const std::string table = Take().text;

  auto relation = std::make_shared<RelNode>();
  relation->kind = RelNode::Kind::kRelation;
  relation->relation = table;
  RelPtr plan = relation;

  if (TakeIdent("where")) {
    ExprPtr pred;
    X100_ASSIGN_OR_RETURN(pred, ParseExpr());
    auto restrict = std::make_shared<RelNode>();
    restrict->kind = RelNode::Kind::kRestrict;
    restrict->qualification = pred;
    restrict->children = {plan};
    plan = restrict;
  }

  std::vector<std::string> group_cols;
  if (TakeIdent("group")) {
    if (!TakeIdent("by")) return Status::InvalidArgument("expected BY");
    while (true) {
      if (Peek().kind != Token::Kind::kIdent) {
        return Status::InvalidArgument("expected GROUP BY column");
      }
      group_cols.push_back(Take().text);
      if (!TakeSymbol(",")) break;
    }
  }

  // Split the target list into aggregates and plain items.
  std::vector<AggItem> aggs;
  std::vector<ProjectItem> targets;
  bool has_agg = false;
  for (const Item& item : items) {
    if (item.expr->kind == Expr::Kind::kCall && IsAggName(item.expr->fn)) {
      has_agg = true;
      AggItem a;
      a.kind = AggKindOf(item.expr->fn);
      a.name = item.name;
      if (item.expr->args.empty() ||
          (item.expr->args.size() == 1 &&
           item.expr->args[0]->kind == Expr::Kind::kColRef &&
           item.expr->args[0]->name == "*")) {
        a.input = nullptr;  // COUNT(*)
      } else {
        a.input = item.expr->args[0];
      }
      aggs.push_back(std::move(a));
    } else {
      targets.push_back({item.name, item.expr});
    }
  }

  if (has_agg || !group_cols.empty()) {
    auto aggregate = std::make_shared<RelNode>();
    aggregate->kind = RelNode::Kind::kAggregate;
    aggregate->children = {plan};
    for (const std::string& g : group_cols) {
      aggregate->by_list.push_back({g, Col(g)});
    }
    aggregate->agg_funcs = std::move(aggs);
    plan = aggregate;
    // Non-aggregate targets must be grouping columns; keep the final
    // projection only if it reorders/renames or computes on top.
    bool trivial = targets.size() == group_cols.size();
    for (size_t i = 0; trivial && i < targets.size(); i++) {
      trivial = targets[i].expr->kind == Expr::Kind::kColRef &&
                targets[i].expr->name == group_cols[i] &&
                targets[i].name == group_cols[i];
    }
    (void)trivial;  // The aggregate already emits keys + aggregates.
  } else if (!(targets.size() == 1 &&
               targets[0].expr->kind == Expr::Kind::kColRef &&
               targets[0].expr->name == "*")) {
    auto project = std::make_shared<RelNode>();
    project->kind = RelNode::Kind::kProject;
    project->children = {plan};
    project->targets = std::move(targets);
    plan = project;
  }

  if (TakeIdent("order")) {
    if (!TakeIdent("by")) return Status::InvalidArgument("expected BY");
    auto sort = std::make_shared<RelNode>();
    sort->kind = RelNode::Kind::kSort;
    sort->children = {plan};
    while (true) {
      if (Peek().kind != Token::Kind::kIdent) {
        return Status::InvalidArgument("expected ORDER BY column");
      }
      RelNode::SortKey key;
      key.column = Take().text;
      if (TakeIdent("desc")) {
        key.ascending = false;
      } else {
        TakeIdent("asc");
      }
      sort->sort_keys.push_back(std::move(key));
      if (!TakeSymbol(",")) break;
    }
    plan = sort;
  }
  if (TakeIdent("limit")) {
    if (Peek().kind != Token::Kind::kNumber) {
      return Status::InvalidArgument("expected LIMIT count");
    }
    const int64_t n = std::stoll(Take().text);
    if (plan->kind == RelNode::Kind::kSort) {
      plan->limit = n;
    } else {
      auto sort = std::make_shared<RelNode>();
      sort->kind = RelNode::Kind::kSort;
      sort->children = {plan};
      sort->limit = n;
      plan = sort;
    }
  }
  if (Peek().kind != Token::Kind::kEnd) {
    return Status::InvalidArgument("trailing tokens near '" + Peek().text +
                                   "'");
  }
  return plan;
}

}  // namespace

Result<RelPtr> ParseSql(const std::string& sql) {
  Lexer lexer(sql);
  std::vector<Token> tokens;
  X100_ASSIGN_OR_RETURN(tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseSelect();
}

std::string RelNode::ToString(int indent) const {
  std::string pad(indent * 2, ' ');
  std::string s = pad;
  switch (kind) {
    case Kind::kRelation: s += "RELATION " + relation; break;
    case Kind::kRestrict:
      s += "RESTRICT " + qualification->ToString();
      break;
    case Kind::kProject: {
      s += "PROJECT ";
      for (size_t i = 0; i < targets.size(); i++) {
        if (i) s += ", ";
        s += targets[i].name;
      }
      break;
    }
    case Kind::kAggregate: {
      s += "AGGREGATE by=[";
      for (size_t i = 0; i < by_list.size(); i++) {
        if (i) s += ", ";
        s += by_list[i].name;
      }
      s += "]";
      break;
    }
    case Kind::kSort: s += limit >= 0 ? "SORT/FIRST" : "SORT"; break;
  }
  for (const RelPtr& c : children) s += "\n" + c->ToString(indent + 1);
  return s;
}

}  // namespace x100
