// The SQL frontend and the cross compiler (Figure 1).
//
// The paper's architecture keeps the Ingres SQL parser / rewriter /
// optimizer, and adds "a fully new component … the cross compiler that
// translates optimized relational plans into algebraic X100 plans".
//
// This module substitutes a compact SQL parser producing an "Ingres-like"
// relational plan (RelNode — RELATION / RESTRICT / PROJECT / AGGREGATE /
// SORT, Ingres vocabulary), and implements the cross compiler from that
// plan into the X100 algebra. The boundary — foreign relational plan in,
// X100 algebra out — is the architectural property being reproduced
// (experiment E11).
//
// Supported SQL subset:
//   SELECT item [, item…]
//   FROM table
//   [WHERE predicate]
//   [GROUP BY column [, column…]]
//   [ORDER BY column [ASC|DESC] [, …]]
//   [LIMIT n]
// with arithmetic, comparisons, AND/OR/NOT, BETWEEN, LIKE, IN (value
// list), function calls, DATE 'yyyy-mm-dd' literals, and the aggregates
// COUNT(*) / COUNT / SUM / AVG / MIN / MAX.
#ifndef X100_FRONTEND_FRONTEND_H_
#define X100_FRONTEND_FRONTEND_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algebra/algebra.h"

namespace x100 {

/// One node of the Ingres-like relational plan.
struct RelNode;
using RelPtr = std::shared_ptr<RelNode>;

struct RelNode {
  enum class Kind : uint8_t {
    kRelation,   // base table access
    kRestrict,   // qualification (Ingres term for filter)
    kProject,    // target list
    kAggregate,  // by-list + aggregate functions
    kSort,       // sort keys + optional limit ("first n")
  };
  Kind kind;
  std::vector<RelPtr> children;

  std::string relation;             // kRelation
  ExprPtr qualification;            // kRestrict
  std::vector<ProjectItem> targets; // kProject
  std::vector<ProjectItem> by_list; // kAggregate
  std::vector<AggItem> agg_funcs;   // kAggregate
  struct SortKey {
    std::string column;
    bool ascending = true;
  };
  std::vector<SortKey> sort_keys;   // kSort
  int64_t limit = -1;

  std::string ToString(int indent = 0) const;
};

/// Parses the SQL subset into a relational plan.
Result<RelPtr> ParseSql(const std::string& sql);

/// The cross compiler: Ingres-like relational plan -> X100 algebra,
/// including scan column pruning (only referenced columns are scanned).
class CrossCompiler {
 public:
  /// `schema_of` resolves a table's schema for column pruning; pass the
  /// Database-backed resolver from engine/session.h.
  using SchemaResolver = std::function<Result<Schema>(const std::string&)>;

  explicit CrossCompiler(SchemaResolver resolver)
      : resolver_(std::move(resolver)) {}

  Result<AlgebraPtr> Compile(const RelPtr& plan);

 private:
  Result<AlgebraPtr> CompileNode(const RelPtr& node);

  SchemaResolver resolver_;
};

}  // namespace x100

#endif  // X100_FRONTEND_FRONTEND_H_
