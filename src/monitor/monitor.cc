#include "monitor/monitor.h"

namespace x100 {

const char* QueryStateName(QueryState s) {
  switch (s) {
    case QueryState::kQueued: return "QUEUED";
    case QueryState::kRunning: return "RUNNING";
    case QueryState::kFinished: return "FINISHED";
    case QueryState::kFailed: return "FAILED";
    case QueryState::kCancelled: return "CANCELLED";
  }
  return "?";
}

}  // namespace x100
