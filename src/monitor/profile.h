// Per-operator query profiling — paper §"System monitoring": production
// debugging needs per-operator visibility, not just a global event log.
//
// Every Operator accumulates OperatorProfile counters through the
// non-virtual Open/Next/Close wrappers (exec/operator.h) and flushes them
// into the query's QueryProfile on Close. The profile travels with the
// QueryResult and is retained by the monitor's QueryRegistry, so a
// finished (or failed) query can be broken down after the fact.
#ifndef X100_MONITOR_PROFILE_H_
#define X100_MONITOR_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace x100 {

/// Counters for one operator instance of an executed plan. In a parallel
/// plan each producer clone reports its own entry, and pipeline barriers
/// record synthetic entries for work that is not an operator: one
/// "JoinBuildMerge" / "AggMerge" entry PER radix-partition merge task
/// (rows = that partition's rows/groups), so both the merge fan-out's
/// parallelism and its partition skew are visible — ToString's max(us)
/// column is the slowest instance, i.e. the merge's critical path.
struct OperatorProfile {
  std::string op;        // operator display name, e.g. "HashJoin[inner]"
  int64_t batches = 0;   // non-empty batches produced
  int64_t rows = 0;      // active rows produced (selection-aware)
  int64_t open_ns = 0;   // wall time inside Open (pipeline breakers build)
  int64_t next_ns = 0;   // wall time inside Next, *inclusive* of children
  /// Wall time spent inside direct children's Open/Next while this
  /// operator was on the call stack (same thread). Subtracting it from
  /// the inclusive times yields the operator's own cost.
  int64_t child_ns = 0;
  /// Out-of-core accounting: bytes this instance wrote to SpillFiles and
  /// how many spill events produced them. Recorded at the WRITE site by
  /// the synthetic "JoinBuildSpill" / "JoinBuildDefer" / "JoinProbeSpill"
  /// / "AggSpill" / "SortSpill" entries (rows = rows spilled), so a tight
  /// memory_limit shows exactly which breaker went out of core and how
  /// much of its state hit disk.
  int64_t spill_bytes = 0;
  int64_t spills = 0;
  /// High-water RESIDENT bytes this entry held charged against the query
  /// tracker. Set by the synthetic merge/pair entries ("JoinBuildMerge"
  /// for a resident partition, "JoinProbePair" for one Grace partition
  /// pair) — the pair entries are how tests bound peak tracker usage to
  /// limit + max pair + SpillForceAdmitSlack (common/config.h).
  int64_t mem_bytes = 0;

  /// Exclusive time: open+next minus the children's share. For operators
  /// whose children run on other pool threads (an exchange consumer), the
  /// exclusive time includes the time spent waiting on those threads.
  int64_t exclusive_ns() const {
    const int64_t self = open_ns + next_ns - child_ns;
    return self > 0 ? self : 0;
  }
};

/// Aggregated per-query profile. Plain data: copied into QueryResult and
/// QueryInfo snapshots.
struct QueryProfile {
  std::vector<OperatorProfile> operators;
  int64_t tuples_scanned = 0;
  int64_t groups_skipped = 0;  // MinMax pushdown IO elision
  int64_t wall_ns = 0;         // end-to-end execute time
  /// Resolved SIMD dispatch level the query ran at ("scalar" / "avx2" /
  /// "neon") — empty for profiles not produced by QueryExecutor.
  std::string simd;

  bool empty() const { return operators.empty(); }

  /// Merges duplicate operator names (parallel clones) for display.
  std::string ToString() const;
};

}  // namespace x100

#endif  // X100_MONITOR_PROFILE_H_
