// Per-operator query profiling — paper §"System monitoring": production
// debugging needs per-operator visibility, not just a global event log.
//
// Every Operator accumulates OperatorProfile counters through the
// non-virtual Open/Next/Close wrappers (exec/operator.h) and flushes them
// into the query's QueryProfile on Close. The profile travels with the
// QueryResult and is retained by the monitor's QueryRegistry, so a
// finished (or failed) query can be broken down after the fact.
#ifndef X100_MONITOR_PROFILE_H_
#define X100_MONITOR_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace x100 {

/// Counters for one operator instance of an executed plan. In a parallel
/// plan each producer clone reports its own entry.
struct OperatorProfile {
  std::string op;        // operator display name, e.g. "HashJoin[inner]"
  int64_t batches = 0;   // non-empty batches produced
  int64_t rows = 0;      // active rows produced (selection-aware)
  int64_t open_ns = 0;   // wall time inside Open (pipeline breakers build)
  int64_t next_ns = 0;   // wall time inside Next, *inclusive* of children
};

/// Aggregated per-query profile. Plain data: copied into QueryResult and
/// QueryInfo snapshots.
struct QueryProfile {
  std::vector<OperatorProfile> operators;
  int64_t tuples_scanned = 0;
  int64_t groups_skipped = 0;  // MinMax pushdown IO elision
  int64_t wall_ns = 0;         // end-to-end execute time

  bool empty() const { return operators.empty(); }

  /// Merges duplicate operator names (parallel clones) for display.
  std::string ToString() const;
};

}  // namespace x100

#endif  // X100_MONITOR_PROFILE_H_
