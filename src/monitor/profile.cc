#include "monitor/profile.h"

#include <cinttypes>
#include <cstdio>
#include <map>

namespace x100 {

std::string QueryProfile::ToString() const {
  // Parallel clones share a name; fold them into one line with a xN count.
  struct Agg {
    int instances = 0;
    int64_t batches = 0, rows = 0, open_ns = 0, next_ns = 0, self_ns = 0;
    int64_t max_self_ns = 0;  // slowest instance: the fold's critical path
    int64_t spill_bytes = 0, spills = 0;
    int64_t max_mem_bytes = 0;  // largest resident working set
  };
  std::map<std::string, Agg> byname;
  std::vector<std::string> order;  // first-seen order (roughly top-down)
  for (const OperatorProfile& p : operators) {
    auto it = byname.find(p.op);
    if (it == byname.end()) {
      order.push_back(p.op);
      it = byname.emplace(p.op, Agg{}).first;
    }
    Agg& a = it->second;
    a.instances++;
    a.batches += p.batches;
    a.rows += p.rows;
    a.open_ns += p.open_ns;
    a.next_ns += p.next_ns;
    a.self_ns += p.exclusive_ns();
    if (p.exclusive_ns() > a.max_self_ns) a.max_self_ns = p.exclusive_ns();
    a.spill_bytes += p.spill_bytes;
    a.spills += p.spills;
    if (p.mem_bytes > a.max_mem_bytes) a.max_mem_bytes = p.mem_bytes;
  }
  char line[352];
  std::string s;
  std::snprintf(line, sizeof(line),
                "%-28s %5s %10s %10s %12s %12s %12s %12s %10s %7s %9s\n",
                "operator", "inst", "batches", "rows", "open(us)",
                "next(us)", "self(us)", "max(us)", "spill(kb)", "spills",
                "mem(kb)");
  s += line;
  for (const std::string& name : order) {
    const Agg& a = byname[name];
    std::snprintf(
        line, sizeof(line),
        "%-28s %5d %10" PRId64 " %10" PRId64
        " %12.1f %12.1f %12.1f %12.1f %10.1f %7" PRId64 " %9.1f\n",
        name.c_str(), a.instances, a.batches, a.rows, a.open_ns / 1e3,
        a.next_ns / 1e3, a.self_ns / 1e3, a.max_self_ns / 1e3,
        a.spill_bytes / 1e3, a.spills, a.max_mem_bytes / 1e3);
    s += line;
  }
  std::snprintf(line, sizeof(line),
                "tuples_scanned=%" PRId64 " groups_skipped=%" PRId64
                " wall=%.2fms%s%s\n",
                tuples_scanned, groups_skipped, wall_ns / 1e6,
                simd.empty() ? "" : " simd=", simd.c_str());
  s += line;
  return s;
}

}  // namespace x100
