// System monitoring — paper §"System monitoring": "we had to extend it
// significantly in areas like event logging, load and resource monitoring,
// query listing etc."
//
//  * EventLog: bounded ring of timestamped events.
//  * QueryRegistry: live query listing (id, text, state, tuples, runtime)
//    — the production replacement for "attach a debugger to see what the
//    server is doing".
//  * Counters: named monotonic counters (primitive calls, IO, commits…).
#ifndef X100_MONITOR_MONITOR_H_
#define X100_MONITOR_MONITOR_H_

#include <chrono>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "monitor/profile.h"

namespace x100 {

enum class EventLevel : uint8_t { kDebug, kInfo, kWarn, kError };

struct Event {
  std::chrono::system_clock::time_point ts;
  EventLevel level;
  std::string message;
};

class EventLog {
 public:
  explicit EventLog(size_t capacity = 4096) : capacity_(capacity) {}

  void Log(EventLevel level, std::string msg) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(
        Event{std::chrono::system_clock::now(), level, std::move(msg)});
    if (events_.size() > capacity_) events_.pop_front();
    total_++;
  }
  void Info(std::string msg) { Log(EventLevel::kInfo, std::move(msg)); }
  void Warn(std::string msg) { Log(EventLevel::kWarn, std::move(msg)); }
  void Error(std::string msg) { Log(EventLevel::kError, std::move(msg)); }

  std::vector<Event> Recent(size_t n) const {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t start = events_.size() > n ? events_.size() - n : 0;
    return std::vector<Event>(events_.begin() + start, events_.end());
  }
  int64_t total_logged() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Event> events_;
  int64_t total_ = 0;
};

enum class QueryState : uint8_t {
  /// Admitted via Session::Submit, waiting for a scheduler worker.
  kQueued,
  kRunning,
  kFinished,
  kFailed,
  kCancelled,
};

const char* QueryStateName(QueryState s);

struct QueryInfo {
  int64_t id = 0;
  std::string text;
  QueryState state = QueryState::kRunning;
  std::chrono::steady_clock::time_point started;
  double elapsed_sec = 0;
  int64_t tuples_scanned = 0;
  std::string error;
  /// Per-operator breakdown of the finished execution (empty while the
  /// query is still running or if it failed before building a plan).
  QueryProfile profile;
};

/// Live + recently finished query listing. Thread-safe: concurrent
/// sessions Begin/Finish under one mutex, monitors snapshot via List().
/// Completed entries are retained up to the history cap
/// (EngineConfig::query_history_cap, re-applied by QueryExecutor per
/// query): oldest finished/failed/cancelled entries are evicted first; a
/// query that is still queued or running is never evicted.
class QueryRegistry {
 public:
  /// Registers a query. Async submissions enter as kQueued and flip to
  /// kRunning via MarkRunning when a worker picks them up; the
  /// synchronous path registers directly as kRunning.
  int64_t Begin(std::string text,
                QueryState initial = QueryState::kRunning) {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t id = next_id_++;
    QueryInfo q;
    q.id = id;
    q.text = std::move(text);
    q.state = initial;
    q.started = std::chrono::steady_clock::now();
    queries_[id] = std::move(q);
    return id;
  }

  /// Queued -> running transition; restarts the clock so elapsed_sec
  /// measures execution, not admission-queue wait.
  void MarkRunning(int64_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(id);
    if (it == queries_.end()) return;
    it->second.state = QueryState::kRunning;
    it->second.started = std::chrono::steady_clock::now();
  }

  void Finish(int64_t id, const Status& status, int64_t tuples,
              QueryProfile profile = QueryProfile()) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(id);
    if (it == queries_.end()) return;
    QueryInfo& q = it->second;
    q.elapsed_sec = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - q.started)
                        .count();
    q.tuples_scanned = tuples;
    q.profile = std::move(profile);
    if (status.ok()) {
      q.state = QueryState::kFinished;
    } else if (status.IsCancelled()) {
      q.state = QueryState::kCancelled;
    } else {
      q.state = QueryState::kFailed;
      q.error = status.ToString();
    }
    completed_++;
    EvictLocked();
  }

  /// Completed-entry retention cap (0 = unbounded). Applies immediately
  /// and to every later Finish.
  void set_history_cap(int64_t cap) {
    std::lock_guard<std::mutex> lock(mu_);
    history_cap_ = cap;
    EvictLocked();
  }

  int64_t evicted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evicted_;
  }

  /// Snapshot of all known queries (running first, then history).
  std::vector<QueryInfo> List() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<QueryInfo> out;
    for (const auto& [id, q] : queries_) out.push_back(q);
    return out;
  }

  std::vector<QueryInfo> Running() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<QueryInfo> out;
    for (const auto& [id, q] : queries_) {
      if (q.state == QueryState::kRunning) out.push_back(q);
    }
    return out;
  }

 private:
  /// Drops the oldest completed entries over the cap. Ids ascend, so a
  /// forward scan meets oldest-first; queued/running entries are skipped.
  void EvictLocked() {
    if (history_cap_ <= 0) return;
    for (auto it = queries_.begin();
         it != queries_.end() && completed_ > history_cap_;) {
      if (it->second.state == QueryState::kQueued ||
          it->second.state == QueryState::kRunning) {
        ++it;
        continue;
      }
      it = queries_.erase(it);
      completed_--;
      evicted_++;
    }
  }

  mutable std::mutex mu_;
  std::map<int64_t, QueryInfo> queries_;
  int64_t next_id_ = 1;
  int64_t history_cap_ = 0;  // 0 = unbounded
  int64_t completed_ = 0;    // finished/failed/cancelled entries retained
  int64_t evicted_ = 0;
};

class Counters {
 public:
  void Add(const std::string& name, int64_t delta) {
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] += delta;
  }
  /// Absolute gauge write (buffer pool occupancy, device totals): the
  /// source owns the running value; Set publishes the latest snapshot.
  void Set(const std::string& name, int64_t value) {
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] = value;
  }
  int64_t Get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  std::map<std::string, int64_t> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
};

}  // namespace x100

#endif  // X100_MONITOR_MONITOR_H_
