// System monitoring — paper §"System monitoring": "we had to extend it
// significantly in areas like event logging, load and resource monitoring,
// query listing etc."
//
//  * EventLog: bounded ring of timestamped events.
//  * QueryRegistry: live query listing (id, text, state, tuples, runtime)
//    — the production replacement for "attach a debugger to see what the
//    server is doing".
//  * Counters: named monotonic counters (primitive calls, IO, commits…).
#ifndef X100_MONITOR_MONITOR_H_
#define X100_MONITOR_MONITOR_H_

#include <chrono>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "monitor/profile.h"

namespace x100 {

enum class EventLevel : uint8_t { kDebug, kInfo, kWarn, kError };

struct Event {
  std::chrono::system_clock::time_point ts;
  EventLevel level;
  std::string message;
};

class EventLog {
 public:
  explicit EventLog(size_t capacity = 4096) : capacity_(capacity) {}

  void Log(EventLevel level, std::string msg) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(
        Event{std::chrono::system_clock::now(), level, std::move(msg)});
    if (events_.size() > capacity_) events_.pop_front();
    total_++;
  }
  void Info(std::string msg) { Log(EventLevel::kInfo, std::move(msg)); }
  void Warn(std::string msg) { Log(EventLevel::kWarn, std::move(msg)); }
  void Error(std::string msg) { Log(EventLevel::kError, std::move(msg)); }

  std::vector<Event> Recent(size_t n) const {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t start = events_.size() > n ? events_.size() - n : 0;
    return std::vector<Event>(events_.begin() + start, events_.end());
  }
  int64_t total_logged() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Event> events_;
  int64_t total_ = 0;
};

enum class QueryState : uint8_t {
  kRunning,
  kFinished,
  kFailed,
  kCancelled,
};

const char* QueryStateName(QueryState s);

struct QueryInfo {
  int64_t id = 0;
  std::string text;
  QueryState state = QueryState::kRunning;
  std::chrono::steady_clock::time_point started;
  double elapsed_sec = 0;
  int64_t tuples_scanned = 0;
  std::string error;
  /// Per-operator breakdown of the finished execution (empty while the
  /// query is still running or if it failed before building a plan).
  QueryProfile profile;
};

/// Live + recently finished query listing.
class QueryRegistry {
 public:
  int64_t Begin(std::string text) {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t id = next_id_++;
    QueryInfo q;
    q.id = id;
    q.text = std::move(text);
    q.started = std::chrono::steady_clock::now();
    queries_[id] = std::move(q);
    return id;
  }

  void Finish(int64_t id, const Status& status, int64_t tuples,
              QueryProfile profile = QueryProfile()) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(id);
    if (it == queries_.end()) return;
    QueryInfo& q = it->second;
    q.elapsed_sec = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - q.started)
                        .count();
    q.tuples_scanned = tuples;
    q.profile = std::move(profile);
    if (status.ok()) {
      q.state = QueryState::kFinished;
    } else if (status.IsCancelled()) {
      q.state = QueryState::kCancelled;
    } else {
      q.state = QueryState::kFailed;
      q.error = status.ToString();
    }
  }

  /// Snapshot of all known queries (running first, then history).
  std::vector<QueryInfo> List() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<QueryInfo> out;
    for (const auto& [id, q] : queries_) out.push_back(q);
    return out;
  }

  std::vector<QueryInfo> Running() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<QueryInfo> out;
    for (const auto& [id, q] : queries_) {
      if (q.state == QueryState::kRunning) out.push_back(q);
    }
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::map<int64_t, QueryInfo> queries_;
  int64_t next_id_ = 1;
};

class Counters {
 public:
  void Add(const std::string& name, int64_t delta) {
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] += delta;
  }
  int64_t Get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  std::map<std::string, int64_t> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
};

}  // namespace x100

#endif  // X100_MONITOR_MONITOR_H_
