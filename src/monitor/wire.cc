#include "monitor/wire.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/pod_serde.h"

namespace x100 {
namespace {

/// Frames larger than this are rejected on read: the whole query listing
/// of a busy server is well under it, and an absurd length prefix is a
/// corrupt stream, not a real request.
constexpr uint32_t kMaxFramePayload = 64u << 20;

void AppendString(std::vector<uint8_t>* out, const std::string& s) {
  serde::AppendPod<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

bool TakeString(serde::Reader* r, std::string* s) {
  uint32_t n;
  if (!r->TakePod(&n)) return false;
  const uint8_t* p;
  if (!r->Take(n, &p)) return false;
  s->assign(reinterpret_cast<const char*>(p), n);
  return true;
}

void AppendHeader(std::vector<uint8_t>* out, WireOpcode op) {
  serde::AppendPod(out, kWireMagic);
  serde::AppendPod(out, kWireVersion);
  serde::AppendPod(out, static_cast<uint16_t>(op));
}

Status TakeHeader(serde::Reader* r, WireOpcode expect) {
  uint32_t magic;
  uint16_t version, op;
  if (!r->TakePod(&magic) || !r->TakePod(&version) || !r->TakePod(&op)) {
    return Status::IoError("wire: truncated header");
  }
  if (magic != kWireMagic) return Status::IoError("wire: bad magic");
  if (version != kWireVersion) {
    return Status::IoError("wire: unsupported version " +
                           std::to_string(version));
  }
  if (op != static_cast<uint16_t>(expect)) {
    return Status::IoError("wire: unexpected opcode " + std::to_string(op));
  }
  return Status::OK();
}

void AppendProfile(std::vector<uint8_t>* out, const QueryProfile& p) {
  serde::AppendPod<int64_t>(out, p.tuples_scanned);
  serde::AppendPod<int64_t>(out, p.groups_skipped);
  serde::AppendPod<int64_t>(out, p.wall_ns);
  AppendString(out, p.simd);
  serde::AppendPod<uint32_t>(out, static_cast<uint32_t>(p.operators.size()));
  for (const OperatorProfile& o : p.operators) {
    AppendString(out, o.op);
    serde::AppendPod<int64_t>(out, o.batches);
    serde::AppendPod<int64_t>(out, o.rows);
    serde::AppendPod<int64_t>(out, o.open_ns);
    serde::AppendPod<int64_t>(out, o.next_ns);
    serde::AppendPod<int64_t>(out, o.child_ns);
    serde::AppendPod<int64_t>(out, o.spill_bytes);
    serde::AppendPod<int64_t>(out, o.spills);
    serde::AppendPod<int64_t>(out, o.mem_bytes);
  }
}

bool TakeProfile(serde::Reader* r, QueryProfile* p) {
  uint32_t ops;
  if (!r->TakePod(&p->tuples_scanned) || !r->TakePod(&p->groups_skipped) ||
      !r->TakePod(&p->wall_ns) || !TakeString(r, &p->simd) ||
      !r->TakePod(&ops)) {
    return false;
  }
  p->operators.clear();
  for (uint32_t i = 0; i < ops; i++) {
    OperatorProfile o;
    if (!TakeString(r, &o.op) || !r->TakePod(&o.batches) ||
        !r->TakePod(&o.rows) || !r->TakePod(&o.open_ns) ||
        !r->TakePod(&o.next_ns) || !r->TakePod(&o.child_ns) ||
        !r->TakePod(&o.spill_bytes) || !r->TakePod(&o.spills) ||
        !r->TakePod(&o.mem_bytes)) {
      return false;
    }
    p->operators.push_back(std::move(o));
  }
  return true;
}

}  // namespace

std::vector<uint8_t> EncodeRequest(WireOpcode op) {
  std::vector<uint8_t> out;
  AppendHeader(&out, op);
  return out;
}

Status DecodeQueryList(const std::vector<uint8_t>& payload,
                       std::vector<QueryInfo>* out) {
  serde::Reader r{payload.data(), payload.size(), 0};
  X100_RETURN_IF_ERROR(TakeHeader(&r, WireOpcode::kListQueries));
  uint32_t n;
  if (!r.TakePod(&n)) return Status::IoError("wire: truncated query list");
  out->clear();
  for (uint32_t i = 0; i < n; i++) {
    QueryInfo q;
    uint8_t state;
    if (!r.TakePod(&q.id) || !r.TakePod(&state) ||
        !r.TakePod(&q.elapsed_sec) || !r.TakePod(&q.tuples_scanned) ||
        !TakeString(&r, &q.text) || !TakeString(&r, &q.error) ||
        !TakeProfile(&r, &q.profile)) {
      return Status::IoError("wire: truncated query entry");
    }
    q.state = static_cast<QueryState>(state);
    out->push_back(std::move(q));
  }
  return Status::OK();
}

Status DecodeCounters(const std::vector<uint8_t>& payload,
                      std::map<std::string, int64_t>* out) {
  serde::Reader r{payload.data(), payload.size(), 0};
  X100_RETURN_IF_ERROR(TakeHeader(&r, WireOpcode::kCounters));
  uint32_t n;
  if (!r.TakePod(&n)) return Status::IoError("wire: truncated counters");
  out->clear();
  for (uint32_t i = 0; i < n; i++) {
    std::string name;
    int64_t value;
    if (!TakeString(&r, &name) || !r.TakePod(&value)) {
      return Status::IoError("wire: truncated counter entry");
    }
    (*out)[std::move(name)] = value;
  }
  return Status::OK();
}

Status DecodeEvents(const std::vector<uint8_t>& payload,
                    std::vector<WireEvent>* out) {
  serde::Reader r{payload.data(), payload.size(), 0};
  X100_RETURN_IF_ERROR(TakeHeader(&r, WireOpcode::kEvents));
  uint32_t n;
  if (!r.TakePod(&n)) return Status::IoError("wire: truncated events");
  out->clear();
  for (uint32_t i = 0; i < n; i++) {
    WireEvent e;
    uint8_t level;
    if (!r.TakePod(&e.unix_micros) || !r.TakePod(&level) ||
        !TakeString(&r, &e.message)) {
      return Status::IoError("wire: truncated event entry");
    }
    e.level = static_cast<EventLevel>(level);
    out->push_back(std::move(e));
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> MonitorEndpoint::Handle(const uint8_t* payload,
                                                     size_t len) const {
  serde::Reader r{payload, len, 0};
  uint32_t magic;
  uint16_t version, op;
  if (!r.TakePod(&magic) || !r.TakePod(&version) || !r.TakePod(&op)) {
    return Status::IoError("wire: truncated request");
  }
  if (magic != kWireMagic) return Status::IoError("wire: bad magic");
  if (version != kWireVersion) {
    return Status::IoError("wire: unsupported version " +
                           std::to_string(version));
  }

  std::vector<uint8_t> out;
  switch (static_cast<WireOpcode>(op)) {
    case WireOpcode::kListQueries: {
      AppendHeader(&out, WireOpcode::kListQueries);
      const std::vector<QueryInfo> queries =
          queries_ != nullptr ? queries_->List() : std::vector<QueryInfo>();
      serde::AppendPod<uint32_t>(&out,
                                 static_cast<uint32_t>(queries.size()));
      for (const QueryInfo& q : queries) {
        serde::AppendPod<int64_t>(&out, q.id);
        serde::AppendPod<uint8_t>(&out, static_cast<uint8_t>(q.state));
        serde::AppendPod<double>(&out, q.elapsed_sec);
        serde::AppendPod<int64_t>(&out, q.tuples_scanned);
        AppendString(&out, q.text);
        AppendString(&out, q.error);
        AppendProfile(&out, q.profile);
      }
      return out;
    }
    case WireOpcode::kCounters: {
      AppendHeader(&out, WireOpcode::kCounters);
      const std::map<std::string, int64_t> counters =
          counters_ != nullptr ? counters_->Snapshot()
                               : std::map<std::string, int64_t>();
      serde::AppendPod<uint32_t>(&out,
                                 static_cast<uint32_t>(counters.size()));
      for (const auto& [name, value] : counters) {
        AppendString(&out, name);
        serde::AppendPod<int64_t>(&out, value);
      }
      return out;
    }
    case WireOpcode::kEvents: {
      AppendHeader(&out, WireOpcode::kEvents);
      const std::vector<Event> events =
          events_ != nullptr ? events_->Recent(4096) : std::vector<Event>();
      serde::AppendPod<uint32_t>(&out, static_cast<uint32_t>(events.size()));
      for (const Event& e : events) {
        const int64_t micros =
            std::chrono::duration_cast<std::chrono::microseconds>(
                e.ts.time_since_epoch())
                .count();
        serde::AppendPod<int64_t>(&out, micros);
        serde::AppendPod<uint8_t>(&out, static_cast<uint8_t>(e.level));
        AppendString(&out, e.message);
      }
      return out;
    }
  }
  return Status::IoError("wire: unknown opcode " + std::to_string(op));
}

Status MonitorEndpoint::ServeStream(int in_fd, int out_fd) const {
  while (true) {
    std::vector<uint8_t> request;
    const Status s = ReadFrame(in_fd, &request);
    if (s.code() == StatusCode::kNotFound) return Status::OK();  // clean EOF
    X100_RETURN_IF_ERROR(s);
    auto response = Handle(request.data(), request.size());
    X100_RETURN_IF_ERROR(response.status());
    X100_RETURN_IF_ERROR(WriteFrame(out_fd, *response));
  }
}

namespace {

Status WriteAll(int fd, const uint8_t* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("wire: write failed: " +
                             std::string(std::strerror(errno)));
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

/// Returns kNotFound on immediate EOF (no bytes read), kIoError on a
/// partial read followed by EOF.
Status ReadAll(int fd, uint8_t* data, size_t n) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, data + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("wire: read failed: " +
                             std::string(std::strerror(errno)));
    }
    if (r == 0) {
      return got == 0 ? Status::NotFound("wire: eof")
                      : Status::IoError("wire: truncated frame");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, const std::vector<uint8_t>& payload) {
  uint32_t len = static_cast<uint32_t>(payload.size());
  X100_RETURN_IF_ERROR(
      WriteAll(fd, reinterpret_cast<const uint8_t*>(&len), sizeof(len)));
  return WriteAll(fd, payload.data(), payload.size());
}

Status ReadFrame(int fd, std::vector<uint8_t>* payload) {
  uint32_t len = 0;
  X100_RETURN_IF_ERROR(
      ReadAll(fd, reinterpret_cast<uint8_t*>(&len), sizeof(len)));
  if (len > kMaxFramePayload) {
    return Status::IoError("wire: oversized frame (" + std::to_string(len) +
                           " bytes)");
  }
  payload->resize(len);
  return ReadAll(fd, payload->data(), len);
}

}  // namespace x100
