// Wire-format monitoring endpoint — paper §"System monitoring": the
// query listing, counters and event log exposed to an EXTERNAL observer,
// not just in-process callers (which is all examples/ops_monitoring.cpp
// could show before). An ops tool speaks a tiny length-prefixed binary
// protocol to a serving process:
//
//   frame    := u32 payload_len | payload
//   payload  := u32 magic 'X100' | u16 version | u16 opcode | body
//   request  : empty body
//   response : opcode echoed, body per opcode (see Encode*/Decode*)
//
// All integers little-endian host order (the protocol is for a local
// ops socket/pipe, not cross-architecture interchange). Strings are
// u32-length-prefixed bytes. Decoding uses the bounds- and overflow-
// checked serde::Reader — a truncated or corrupt frame fails cleanly
// with kIoError, never faults (same contract as spill reload).
//
// Layering: this is a monitor/ component — it sees QueryRegistry,
// Counters and EventLog only, never a Database, so the monitor layer
// stays engine-independent.
#ifndef X100_MONITOR_WIRE_H_
#define X100_MONITOR_WIRE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "monitor/monitor.h"

namespace x100 {

inline constexpr uint32_t kWireMagic = 0x30303158;  // "X100" little-endian
inline constexpr uint16_t kWireVersion = 1;

enum class WireOpcode : uint16_t {
  kListQueries = 1,  // -> QueryInfo vector incl. per-operator profiles
  kCounters = 2,     // -> name/value map
  kEvents = 3,       // -> recent events (bounded by the log's ring)
};

/// An event as it travels the wire (steady/system clock flattened to
/// microseconds since the unix epoch).
struct WireEvent {
  int64_t unix_micros = 0;
  EventLevel level = EventLevel::kInfo;
  std::string message;
};

// --- Client side -------------------------------------------------------

/// A request payload for `op` (frame it with WriteFrame).
std::vector<uint8_t> EncodeRequest(WireOpcode op);

/// Decoders for response payloads. Each checks magic/version/opcode and
/// fails with kIoError on any malformation.
Status DecodeQueryList(const std::vector<uint8_t>& payload,
                       std::vector<QueryInfo>* out);
Status DecodeCounters(const std::vector<uint8_t>& payload,
                      std::map<std::string, int64_t>* out);
Status DecodeEvents(const std::vector<uint8_t>& payload,
                    std::vector<WireEvent>* out);

// --- Server side -------------------------------------------------------

/// Serves monitoring requests against live monitor state. Thread-safe
/// (the underlying registries are; the endpoint itself is stateless).
class MonitorEndpoint {
 public:
  /// Any pointer may be null — the matching opcode then returns an empty
  /// listing. Pointees must outlive the endpoint.
  MonitorEndpoint(const QueryRegistry* queries, const Counters* counters,
                  const EventLog* events)
      : queries_(queries), counters_(counters), events_(events) {}

  /// Handles one request payload, returns the response payload.
  Result<std::vector<uint8_t>> Handle(const uint8_t* payload,
                                      size_t len) const;

  /// Blocking serve loop over a byte stream (pipe or socket fd pair):
  /// reads request frames, writes response frames, returns OK on clean
  /// EOF. One outstanding request at a time per stream.
  Status ServeStream(int in_fd, int out_fd) const;

 private:
  const QueryRegistry* queries_;
  const Counters* counters_;
  const EventLog* events_;
};

// --- Frame IO (shared by client and server) ----------------------------

/// Writes one length-prefixed frame. Handles short writes/EINTR.
Status WriteFrame(int fd, const std::vector<uint8_t>& payload);

/// Reads one frame. Returns kNotFound on clean EOF at a frame boundary,
/// kIoError on truncation mid-frame or an oversized length prefix.
Status ReadFrame(int fd, std::vector<uint8_t>* payload);

}  // namespace x100

#endif  // X100_MONITOR_WIRE_H_
