// Value: a single typed (possibly NULL) scalar. Used for expression
// constants, Volcano tuples, aggregate results and test fixtures.
#ifndef X100_COMMON_VALUE_H_
#define X100_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/types.h"

namespace x100 {

class Value {
 public:
  Value() : type_(TypeId::kI64), null_(true) {}

  static Value Null(TypeId t) {
    Value v;
    v.type_ = t;
    v.null_ = true;
    return v;
  }
  static Value Bool(bool b) { return Value(TypeId::kBool, int64_t{b}); }
  static Value I8(int8_t v) { return Value(TypeId::kI8, int64_t{v}); }
  static Value I16(int16_t v) { return Value(TypeId::kI16, int64_t{v}); }
  static Value I32(int32_t v) { return Value(TypeId::kI32, int64_t{v}); }
  static Value I64(int64_t v) { return Value(TypeId::kI64, v); }
  static Value F64(double v) {
    Value x;
    x.type_ = TypeId::kF64;
    x.null_ = false;
    x.data_ = v;
    return x;
  }
  static Value Str(std::string s) {
    Value x;
    x.type_ = TypeId::kStr;
    x.null_ = false;
    x.data_ = std::move(s);
    return x;
  }
  static Value Date(int32_t days) { return Value(TypeId::kDate, int64_t{days}); }

  TypeId type() const { return type_; }
  bool is_null() const { return null_; }

  int64_t AsI64() const { return std::get<int64_t>(data_); }
  double AsF64() const {
    return type_ == TypeId::kF64 ? std::get<double>(data_)
                                 : static_cast<double>(AsI64());
  }
  const std::string& AsStr() const { return std::get<std::string>(data_); }
  bool AsBool() const { return AsI64() != 0; }

  /// SQL-style equality: NULL != anything (including NULL). For test use;
  /// engine comparisons happen in kernels.
  bool SqlEquals(const Value& o) const {
    if (null_ || o.null_) return false;
    if (type_ == TypeId::kStr || o.type_ == TypeId::kStr) {
      return type_ == o.type_ && AsStr() == o.AsStr();
    }
    if (type_ == TypeId::kF64 || o.type_ == TypeId::kF64) {
      return AsF64() == o.AsF64();
    }
    return AsI64() == o.AsI64();
  }

  std::string ToString() const {
    if (null_) return "NULL";
    switch (type_) {
      case TypeId::kBool: return AsI64() ? "true" : "false";
      case TypeId::kStr: return AsStr();
      case TypeId::kF64: {
        char buf[32];
        snprintf(buf, sizeof(buf), "%.4f", std::get<double>(data_));
        return buf;
      }
      case TypeId::kDate: return DateToString(static_cast<int32_t>(AsI64()));
      default: return std::to_string(AsI64());
    }
  }

 private:
  Value(TypeId t, int64_t v) : type_(t), null_(false), data_(v) {}

  TypeId type_;
  bool null_;
  std::variant<int64_t, double, std::string> data_;
};

}  // namespace x100

#endif  // X100_COMMON_VALUE_H_
