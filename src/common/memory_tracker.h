// MemoryTracker: hierarchical memory accounting for query execution.
//
// Paper §"things most researchers do not think about": the research
// prototype assumed every hash table and sort run fits in RAM; the product
// had to degrade gracefully under memory pressure. EngineConfig::
// memory_limit used to be declared but enforced nowhere — now a process-
// wide root tracker (owned by Database, limit = memory_limit) parents one
// child tracker per query, and every pipeline breaker charges its
// materialized state against the query tracker as it grows:
//
//   TryReserve  — all-or-nothing against the limit chain. A failed
//                 reservation is the SPILL SIGNAL: the operator writes a
//                 radix partition / sorted run to disk and retries, or —
//                 with spilling disabled — surfaces kResourceExhausted
//                 through the pipeline's cancellation machinery.
//   ForceReserve — charges past the limit (tracked, never fails). Used
//                 only for the MINIMUM working set a pipeline stage needs
//                 to make progress at all (the single partition being
//                 merged/probed, the run chunk being streamed): spilling
//                 bounds the bulk state, but a query must never wedge on
//                 a limit smaller than one batch.
//
// Reservations release through MemoryReservation's RAII, so cancellation
// and error unwinds drain the tracker to zero without operator-by-operator
// bookkeeping.
#ifndef X100_COMMON_MEMORY_TRACKER_H_
#define X100_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace x100 {

class MemoryTracker {
 public:
  /// limit <= 0 means unlimited (the tracker still counts usage — peak
  /// statistics drive bench/test limit selection). `parent` (optional)
  /// receives every charge too, so a per-query tracker rolls up into the
  /// process-wide budget.
  explicit MemoryTracker(int64_t limit = 0, MemoryTracker* parent = nullptr)
      : parent_(parent), limit_(limit > 0 ? limit : 0) {}

  /// All-or-nothing reservation against this tracker and every ancestor.
  /// On failure nothing is charged anywhere and the caller should spill
  /// or surface kResourceExhausted.
  Status TryReserve(int64_t bytes) {
    if (bytes <= 0) return Status::OK();
    int64_t used = used_.load(std::memory_order_relaxed);
    while (true) {
      const int64_t limit = limit_.load(std::memory_order_relaxed);
      if (limit > 0 && used + bytes > limit) {
        return Status::ResourceExhausted(
            "memory limit exceeded: need " + std::to_string(bytes) +
            " bytes, " + std::to_string(used) + " of " +
            std::to_string(limit) + " in use");
      }
      if (used_.compare_exchange_weak(used, used + bytes,
                                      std::memory_order_acq_rel)) {
        break;
      }
    }
    if (parent_ != nullptr) {
      const Status s = parent_->TryReserve(bytes);
      if (!s.ok()) {
        used_.fetch_sub(bytes, std::memory_order_acq_rel);
        return s;
      }
    }
    UpdatePeak();
    return Status::OK();
  }

  /// Charges unconditionally, past the limit if necessary (the overflow is
  /// visible in overcommitted()). Reserved for the minimum working set of
  /// a pipeline stage — see the header comment.
  void ForceReserve(int64_t bytes) {
    if (bytes <= 0) return;
    const int64_t now = used_.fetch_add(bytes, std::memory_order_acq_rel) +
                        bytes;
    const int64_t limit = limit_.load(std::memory_order_relaxed);
    if (limit > 0 && now > limit) {
      int64_t over = overcommitted_.load(std::memory_order_relaxed);
      const int64_t excess = now - limit;
      while (over < excess &&
             !overcommitted_.compare_exchange_weak(
                 over, excess, std::memory_order_acq_rel)) {
      }
    }
    if (parent_ != nullptr) parent_->ForceReserve(bytes);
    UpdatePeak();
  }

  void Release(int64_t bytes) {
    if (bytes <= 0) return;
    used_.fetch_sub(bytes, std::memory_order_acq_rel);
    if (parent_ != nullptr) parent_->Release(bytes);
  }

  /// Limits are read per reservation, so a config change applies to the
  /// next charge without recreating the tracker (Database re-applies the
  /// EngineConfig limit at every query start).
  void set_limit(int64_t limit) {
    limit_.store(limit > 0 ? limit : 0, std::memory_order_relaxed);
  }

  int64_t limit() const { return limit_.load(std::memory_order_relaxed); }
  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  /// Largest observed excess of used() over the limit (ForceReserve).
  int64_t overcommitted() const {
    return overcommitted_.load(std::memory_order_relaxed);
  }
  void ResetPeak() {
    peak_.store(used_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    overcommitted_.store(0, std::memory_order_relaxed);
  }

 private:
  void UpdatePeak() {
    const int64_t now = used_.load(std::memory_order_relaxed);
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (peak < now && !peak_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }

  MemoryTracker* parent_;
  std::atomic<int64_t> limit_;
  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> overcommitted_{0};
};

/// RAII charge against one tracker, sized to a component that only grows
/// (a partition buffer, a group table, a sort run). GrowTo charges the
/// delta between the component's current footprint and what has been
/// charged so far; destruction releases everything, which is what makes
/// "the tracker drains to zero on every exit path" hold under
/// cancellation and error unwinds. Single-writer like the components it
/// accounts; not thread-safe.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  explicit MemoryReservation(MemoryTracker* tracker) : tracker_(tracker) {}
  ~MemoryReservation() { ReleaseAll(); }

  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;
  MemoryReservation(MemoryReservation&& other) noexcept
      : tracker_(other.tracker_), charged_(other.charged_) {
    other.tracker_ = nullptr;
    other.charged_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      ReleaseAll();
      tracker_ = other.tracker_;
      charged_ = other.charged_;
      other.tracker_ = nullptr;
      other.charged_ = 0;
    }
    return *this;
  }

  /// `tracker` may be nullptr: every operation becomes a no-op, so
  /// operators call unconditionally (plans built outside QueryExecutor run
  /// unaccounted, exactly as before).
  void Init(MemoryTracker* tracker) {
    if (tracker_ != tracker) {
      ReleaseAll();
      tracker_ = tracker;
    }
  }

  /// Charges up to `bytes` total; never shrinks. A failure charges
  /// nothing new (the existing charge stands).
  Status GrowTo(int64_t bytes) {
    if (tracker_ == nullptr || bytes <= charged_) return Status::OK();
    X100_RETURN_IF_ERROR(tracker_->TryReserve(bytes - charged_));
    charged_ = bytes;
    return Status::OK();
  }

  /// Charges up to `bytes` total, overcommitting past the limit.
  void ForceGrowTo(int64_t bytes) {
    if (tracker_ == nullptr || bytes <= charged_) return;
    tracker_->ForceReserve(bytes - charged_);
    charged_ = bytes;
  }

  /// Releases down to `bytes` total (after a spill freed the component).
  void ShrinkTo(int64_t bytes) {
    if (bytes < 0) bytes = 0;
    if (tracker_ == nullptr || bytes >= charged_) return;
    tracker_->Release(charged_ - bytes);
    charged_ = bytes;
  }

  void ReleaseAll() {
    if (tracker_ != nullptr && charged_ > 0) tracker_->Release(charged_);
    charged_ = 0;
  }

  int64_t charged() const { return charged_; }

 private:
  MemoryTracker* tracker_ = nullptr;
  int64_t charged_ = 0;
};

/// The shared out-of-core reservation policy used by every pipeline
/// breaker — the ordering here is subtle enough that it must not be
/// hand-rolled per site:
///   1. Grow the reservation to the component's actual `footprint`.
///   2. On failure with spilling unavailable, surface the
///      kResourceExhausted (the caller's pipeline unwinds).
///   3. Otherwise ask the component to `spill_some` state (it applies
///      its own victim selection and kMinSpillBytes floor, returning the
///      bytes it freed — 0 when nothing above the floor is left, or an
///      error when the spill WRITE itself failed: a real device can run
///      out of space, and that failure unwinds like any other IO error);
///      then release the freed charge (Shrink BEFORE regrowing, or the
///      retry compares against a stale charge) and retry.
///   4. When nothing is left to spill, force-admit the remainder as
///      minimum working set so the query progresses instead of wedging.
inline Status GrowOrSpill(MemoryReservation* reserv, bool can_spill,
                          const std::function<int64_t()>& footprint,
                          const std::function<Result<int64_t>()>& spill_some) {
  Status rs = reserv->GrowTo(footprint());
  while (!rs.ok()) {
    if (!can_spill) return rs;
    int64_t freed;
    X100_ASSIGN_OR_RETURN(freed, spill_some());
    if (freed <= 0) {
      reserv->ForceGrowTo(footprint());
      return Status::OK();
    }
    reserv->ShrinkTo(footprint());
    rs = reserv->GrowTo(footprint());
  }
  return Status::OK();
}

}  // namespace x100

#endif  // X100_COMMON_MEMORY_TRACKER_H_
