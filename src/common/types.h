// Type system of the X100 kernel.
//
// X100 processes data in typed vertical vectors. The type set below covers
// what the paper's workloads require: TPC-H (integers, decimals-as-doubles,
// dates, strings) plus booleans for selection logic.
#ifndef X100_COMMON_TYPES_H_
#define X100_COMMON_TYPES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace x100 {

/// Physical/logical type of a vector. kDate is physically int32 (days since
/// 1970-01-01) but is a distinct type so date functions dispatch correctly —
/// the paper's "plethora of functions … around strings and dates".
enum class TypeId : uint8_t {
  kBool = 0,  // uint8_t, 0 or 1
  kI8,
  kI16,
  kI32,
  kI64,
  kF64,
  kStr,   // StrRef into a StringHeap
  kDate,  // int32 days since epoch
};

/// Number of distinct TypeIds (for dispatch tables).
inline constexpr int kNumTypes = 8;

/// Stable lowercase name ("i32", "str", …) used in primitive signatures,
/// e.g. "map_add_i32_vec_i32_vec" — the X100 primitive naming convention.
const char* TypeName(TypeId t);

/// Byte width of one value of type `t` as stored in a Vector.
int TypeWidth(TypeId t);

/// True for i8/i16/i32/i64/date (types with integer arithmetic).
inline bool IsIntegerType(TypeId t) {
  return t == TypeId::kI8 || t == TypeId::kI16 || t == TypeId::kI32 ||
         t == TypeId::kI64 || t == TypeId::kDate;
}

/// True for any type supporting +,-,*,/ in expressions.
inline bool IsNumericType(TypeId t) {
  return IsIntegerType(t) || t == TypeId::kF64;
}

/// A string value: pointer + length into a StringHeap (or constant storage).
/// Not owning; lifetime is managed by the heap that produced it.
struct StrRef {
  const char* data = nullptr;
  uint32_t len = 0;

  StrRef() = default;
  StrRef(const char* d, uint32_t l) : data(d), len(l) {}
  explicit StrRef(std::string_view sv)
      : data(sv.data()), len(static_cast<uint32_t>(sv.size())) {}

  std::string_view view() const { return std::string_view(data, len); }
  std::string ToString() const { return std::string(data, len); }

  bool operator==(const StrRef& o) const {
    return len == o.len && (len == 0 || std::memcmp(data, o.data, len) == 0);
  }
  bool operator!=(const StrRef& o) const { return !(*this == o); }
  bool operator<(const StrRef& o) const { return view() < o.view(); }
  bool operator<=(const StrRef& o) const { return view() <= o.view(); }
  bool operator>(const StrRef& o) const { return view() > o.view(); }
  bool operator>=(const StrRef& o) const { return view() >= o.view(); }
};

/// Maps a C++ type to its TypeId (primary template intentionally undefined).
template <typename T>
struct TypeTraits;

template <> struct TypeTraits<uint8_t> {
  static constexpr TypeId kId = TypeId::kBool;
};
template <> struct TypeTraits<int8_t> {
  static constexpr TypeId kId = TypeId::kI8;
};
template <> struct TypeTraits<int16_t> {
  static constexpr TypeId kId = TypeId::kI16;
};
template <> struct TypeTraits<int32_t> {
  static constexpr TypeId kId = TypeId::kI32;
};
template <> struct TypeTraits<int64_t> {
  static constexpr TypeId kId = TypeId::kI64;
};
template <> struct TypeTraits<double> {
  static constexpr TypeId kId = TypeId::kF64;
};
template <> struct TypeTraits<StrRef> {
  static constexpr TypeId kId = TypeId::kStr;
};

// ---------------------------------------------------------------------------
// Date arithmetic (proleptic Gregorian, days since 1970-01-01).
// Used by the date function kernels and the TPC-H generator.
// ---------------------------------------------------------------------------

/// Days since epoch for a calendar date. Valid for years 1..9999.
int32_t MakeDate(int year, int month, int day);

/// Inverse of MakeDate.
void DateToYmd(int32_t days, int* year, int* month, int* day);

/// Extracts the year / month / day component.
int32_t DateYear(int32_t days);
int32_t DateMonth(int32_t days);
int32_t DateDay(int32_t days);

/// Formats as "YYYY-MM-DD".
std::string DateToString(int32_t days);

/// Parses "YYYY-MM-DD"; returns false on malformed input.
bool ParseDate(std::string_view s, int32_t* out);

}  // namespace x100

#endif  // X100_COMMON_TYPES_H_
