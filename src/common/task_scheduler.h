// TaskScheduler: a process-wide work-stealing thread pool, plus TaskGroup
// for structured fork/join with error and cancellation propagation.
//
// Motivation (paper §"Multi-core", §"When more cores hurts"): the seed's
// Volcano XchgOp spawned one dedicated std::thread per producer, so every
// concurrent parallel query multiplied the thread count and oversubscribed
// the machine. All parallel work now runs on ONE shared pool sized to the
// hardware (morsel-driven scheduling a la Leis et al.): queries enqueue
// tasks, workers pull them, and an idle worker steals from a busy one, so
// skew in one pipeline no longer strands cores.
//
// Design:
//  * One deque per worker. Submissions are distributed round-robin;
//    a worker prefers its own deque (FIFO) and steals from the longest
//    other deque when empty.
//  * TaskGroup tracks a batch of tasks spawned together. The first non-OK
//    status cancels the remaining tasks of the group (not-yet-started
//    tasks are skipped, running ones observe IsCancelled()), and Wait()
//    returns that first error. An external CancellationToken chains in:
//    cancelling the query cancels every group that references the token.
//  * Wait() *helps*: while blocked it executes queued tasks OF ITS OWN
//    GROUP on the calling thread, so a 1-worker (or saturated) pool
//    cannot deadlock a joiner. Helping is deliberately restricted to the
//    group's tasks: stealing an arbitrary task can inline-execute work
//    that blocks on a barrier owned by a suspended frame of the same
//    thread (e.g. a probe-pipeline task waiting on the join build whose
//    barrier is doing the stealing) — a self-deadlock no timeout can
//    resolve. Structured concurrency: a group only ever runs down its
//    own dependency subtree.
//  * Pipeline dependencies are expressed as barriers: a pipeline spawns
//    its morsel tasks into one TaskGroup and Wait()s before the dependent
//    pipeline starts (e.g. a join build pipeline completes before any
//    probe pipeline task runs). See docs/EXECUTION.md.
//  * TaskQuota provides per-query admission control: each query's
//    pipelines acquire task slots from the query's quota before spawning,
//    so one query cannot flood the shared pool and starve its neighbours
//    ("when more cores hurts").
#ifndef X100_COMMON_TASK_SCHEDULER_H_
#define X100_COMMON_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"

namespace x100 {

class TaskGroup;

class TaskScheduler {
 public:
  /// num_workers == 0 uses std::thread::hardware_concurrency().
  explicit TaskScheduler(int num_workers = 0);
  ~TaskScheduler();  // drains queued tasks, then joins workers

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// The shared process-wide pool (sized to the hardware). Constructed on
  /// first use; queries without an explicit pool run here.
  static TaskScheduler* Global();

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Fire-and-forget; prefer TaskGroup for joinable work. `tag` (owned by
  /// the submitter, usually a TaskGroup) lets RunOneTask filter for a
  /// group's own tasks; nullptr = untagged.
  void Submit(std::function<void()> fn, const void* tag = nullptr);

  /// Runs one queued task on the calling thread if any is ready. With a
  /// non-null `tag`, only a task submitted under that tag qualifies —
  /// TaskGroup::Wait uses this so a barrier never inline-executes
  /// unrelated work that may depend on the waiting frame. Untagged
  /// helpers (exchange backpressure) pass nullptr and run anything.
  bool RunOneTask(const void* tag = nullptr);

  /// Scheduler-aware blocking: runs queued tasks on the calling thread
  /// until `done()` returns true, parking on the scheduler's work signal
  /// while idle — so a blocked caller (an exchange producer facing a full
  /// queue) lends its thread to whatever work exists and wakes the moment
  /// new tasks are submitted, with no timed polling. Any state change
  /// that can flip `done()` must be followed by WakeHelpers(). `done` is
  /// never invoked under the scheduler lock, so it may take its own.
  void HelpUntil(const std::function<bool()>& done);

  /// Wakes every HelpUntil caller to re-evaluate its predicate.
  void WakeHelpers();

  // Monitoring counters.
  int64_t tasks_run() const { return tasks_run_.load(); }
  int64_t tasks_stolen() const { return tasks_stolen_.load(); }
  /// Tasks submitted but not yet picked up, summed across all deques —
  /// the pool-pressure signal the AdaptiveQuotaController samples on
  /// every quota acquisition (common/adaptive_quota.h). Kept as its own
  /// atomic so reading it never touches the scheduler lock.
  int64_t queue_depth() const {
    return queued_.load(std::memory_order_relaxed);
  }

 private:
  struct Task {
    std::function<void()> fn;
    const void* tag = nullptr;
  };

  void WorkerLoop(int id);
  /// Pops a task, preferring deque `home`; steals from the longest other
  /// deque. Returns false if every deque is empty. `mu_` must be held.
  bool PopTaskLocked(int home, std::function<void()>* out, bool* stolen);
  /// Pops the oldest task carrying `tag`, if any. `mu_` must be held.
  bool PopTaggedTaskLocked(const void* tag, std::function<void()>* out);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::vector<std::deque<Task>> queues_;  // one per worker
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  /// Bumped by WakeHelpers under mu_; HelpUntil snapshots it before
  /// checking its predicate so a concurrent flip is never missed.
  std::atomic<uint64_t> wake_epoch_{0};
  std::atomic<uint64_t> next_queue_{0};  // round-robin submission cursor
  std::atomic<int64_t> tasks_run_{0};
  std::atomic<int64_t> tasks_stolen_{0};
  std::atomic<int64_t> queued_{0};  // submitted, not yet popped
};

/// Per-query admission control: a budget of concurrently-running pipeline
/// tasks. Pipelines ask for as many slots as they have worker chains and
/// are granted possibly fewer; a grant is never zero, so a query always
/// makes progress (it degrades toward serial execution instead of
/// queueing behind itself). Thread-safe; slots are returned at the
/// pipeline's barrier.
///
/// The limit is dynamic: the AdaptiveQuotaController (common/
/// adaptive_quota.h) retargets each active query's budget via set_limit()
/// as queries come and go. A shrink never revokes in-flight grants — it
/// only governs subsequent Acquires — and usage is tracked even while
/// unlimited, so a limit change between Acquire and Release can never
/// underflow the slot count.
class TaskQuota {
 public:
  /// limit <= 0 means unlimited.
  explicit TaskQuota(int limit) : limit_(limit) {}

  /// Optional hook run at the top of every Acquire — the quota controller
  /// samples pool pressure here, so rebalancing happens exactly when a
  /// query is about to spawn tasks. Set before the quota is shared across
  /// threads (not synchronized against concurrent Acquire).
  void set_observer(std::function<void()> fn) { observer_ = std::move(fn); }

  /// Grants between 1 and `want` slots (never blocks, never zero).
  int Acquire(int want) {
    if (observer_) observer_();
    if (want < 1) want = 1;
    int used = used_.load(std::memory_order_relaxed);
    while (true) {
      const int limit = limit_.load(std::memory_order_relaxed);
      int grant = want;
      if (limit > 0) {
        const int room = limit - used;
        grant = room < 1 ? 1 : (room < want ? room : want);
      }
      if (used_.compare_exchange_weak(used, used + grant,
                                      std::memory_order_acq_rel)) {
        return grant;
      }
    }
  }

  void Release(int n) { used_.fetch_sub(n, std::memory_order_acq_rel); }

  /// Retargets the budget. In-flight grants are unaffected; only future
  /// Acquires see the new limit.
  void set_limit(int limit) {
    limit_.store(limit, std::memory_order_relaxed);
  }

  int limit() const { return limit_.load(std::memory_order_relaxed); }
  int in_use() const {
    return limit() <= 0 ? 0 : used_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int> limit_;
  std::atomic<int> used_{0};
  std::function<void()> observer_;
};

/// A batch of tasks that complete together. Not reusable after Wait().
class TaskGroup {
 public:
  /// `cancel` (optional) chains external query cancellation into the
  /// group: once the token fires, pending tasks are skipped.
  ///
  /// `help_tag` (optional) overrides the tag the group's tasks carry.
  /// By default tasks are tagged with the group itself, so only the
  /// group's own Wait() can inline-run them. A shared state object that
  /// runs SEVERAL groups in sequence (e.g. a partitioned join build: a
  /// drain group, then a per-partition merge group) tags them all with
  /// one external tag, so threads blocked on that state — not members of
  /// either group — can help run its tasks via RunOneTask(tag). The
  /// caller must guarantee that (a) groups sharing a tag never have
  /// queued tasks concurrently and (b) no task under the tag can block
  /// on the helper's own frame.
  explicit TaskGroup(TaskScheduler* scheduler,
                     CancellationToken* cancel = nullptr,
                     const void* help_tag = nullptr)
      : scheduler_(scheduler),
        external_cancel_(cancel),
        tag_(help_tag != nullptr ? help_tag : this) {}
  ~TaskGroup() {
    Cancel();
    Wait();
  }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `fn` on the pool. A non-OK return cancels the group and
  /// becomes the Wait() result (first error wins; Cancelled never
  /// overrides a real error).
  void Spawn(std::function<Status()> fn);

  /// Blocks until every spawned task finished or was skipped, helping to
  /// run queued tasks meanwhile. Returns the first error, Cancelled if
  /// the group was cancelled with no prior error, OK otherwise.
  Status Wait();

  /// Requests cancellation of the group's remaining tasks.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_acquire) ||
           (external_cancel_ != nullptr && external_cancel_->IsCancelled());
  }

  Status CheckCancel() const {
    return IsCancelled() ? Status::Cancelled("task group cancelled")
                         : Status::OK();
  }

  /// The tag this group's tasks carry (the group itself unless an
  /// explicit help_tag was given at construction).
  const void* tag() const { return tag_; }

 private:
  void Finish(const Status& s);

  TaskScheduler* scheduler_;
  CancellationToken* external_cancel_;
  const void* tag_;
  std::atomic<bool> cancelled_{false};

  std::mutex mu_;
  std::condition_variable done_cv_;
  int outstanding_ = 0;
  Status first_error_;
  bool any_cancelled_ = false;
};

/// The pipeline scaffold shared by the parallel operators (aggregation,
/// sort, join build): acquires task slots from `quota` (nullptr =
/// unlimited; the grant may be smaller than `n` but never zero), spawns
/// that many tasks into a TaskGroup chained to `cancel`, and has each
/// task claim work-item indexes [0, n) from a shared cursor and run
/// `body(index, group)` — so a reduced grant still covers every item,
/// just with less concurrency. Waits at the barrier, releases the quota,
/// and returns the group's status (first error wins). `help_tag`
/// forwards to the TaskGroup (see its constructor): pipelines whose
/// completion OTHER threads block on (the partitioned join build) tag
/// their phases so those waiters can help instead of idling.
Status RunPipelineTasks(TaskScheduler* scheduler, TaskQuota* quota,
                        CancellationToken* cancel, int n,
                        const std::function<Status(int, TaskGroup&)>& body,
                        const void* help_tag = nullptr);

}  // namespace x100

#endif  // X100_COMMON_TASK_SCHEDULER_H_
