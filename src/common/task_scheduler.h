// TaskScheduler: a process-wide work-stealing thread pool, plus TaskGroup
// for structured fork/join with error and cancellation propagation.
//
// Motivation (paper §"Multi-core", §"When more cores hurts"): the seed's
// Volcano XchgOp spawned one dedicated std::thread per producer, so every
// concurrent parallel query multiplied the thread count and oversubscribed
// the machine. All parallel work now runs on ONE shared pool sized to the
// hardware (morsel-driven scheduling a la Leis et al.): queries enqueue
// tasks, workers pull them, and an idle worker steals from a busy one, so
// skew in one pipeline no longer strands cores.
//
// Design:
//  * One deque per worker. Submissions are distributed round-robin;
//    a worker prefers its own deque (FIFO) and steals from the longest
//    other deque when empty.
//  * TaskGroup tracks a batch of tasks spawned together. The first non-OK
//    status cancels the remaining tasks of the group (not-yet-started
//    tasks are skipped, running ones observe IsCancelled()), and Wait()
//    returns that first error. An external CancellationToken chains in:
//    cancelling the query cancels every group that references the token.
//  * Wait() *helps*: while blocked it executes queued tasks on the calling
//    thread, so a 1-worker (or saturated) pool cannot deadlock a joiner.
#ifndef X100_COMMON_TASK_SCHEDULER_H_
#define X100_COMMON_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"

namespace x100 {

class TaskGroup;

class TaskScheduler {
 public:
  /// num_workers == 0 uses std::thread::hardware_concurrency().
  explicit TaskScheduler(int num_workers = 0);
  ~TaskScheduler();  // drains queued tasks, then joins workers

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// The shared process-wide pool (sized to the hardware). Constructed on
  /// first use; queries without an explicit pool run here.
  static TaskScheduler* Global();

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Fire-and-forget; prefer TaskGroup for joinable work.
  void Submit(std::function<void()> fn);

  /// Runs one queued task on the calling thread if any is ready.
  /// Used by TaskGroup::Wait to help drain a saturated pool.
  bool RunOneTask();

  // Monitoring counters.
  int64_t tasks_run() const { return tasks_run_.load(); }
  int64_t tasks_stolen() const { return tasks_stolen_.load(); }

 private:
  void WorkerLoop(int id);
  /// Pops a task, preferring deque `home`; steals from the longest other
  /// deque. Returns false if every deque is empty. `mu_` must be held.
  bool PopTaskLocked(int home, std::function<void()>* out, bool* stolen);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::vector<std::deque<std::function<void()>>> queues_;  // one per worker
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  std::atomic<uint64_t> next_queue_{0};  // round-robin submission cursor
  std::atomic<int64_t> tasks_run_{0};
  std::atomic<int64_t> tasks_stolen_{0};
};

/// A batch of tasks that complete together. Not reusable after Wait().
class TaskGroup {
 public:
  /// `cancel` (optional) chains external query cancellation into the
  /// group: once the token fires, pending tasks are skipped.
  explicit TaskGroup(TaskScheduler* scheduler,
                     CancellationToken* cancel = nullptr)
      : scheduler_(scheduler), external_cancel_(cancel) {}
  ~TaskGroup() {
    Cancel();
    Wait();
  }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `fn` on the pool. A non-OK return cancels the group and
  /// becomes the Wait() result (first error wins; Cancelled never
  /// overrides a real error).
  void Spawn(std::function<Status()> fn);

  /// Blocks until every spawned task finished or was skipped, helping to
  /// run queued tasks meanwhile. Returns the first error, Cancelled if
  /// the group was cancelled with no prior error, OK otherwise.
  Status Wait();

  /// Requests cancellation of the group's remaining tasks.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_acquire) ||
           (external_cancel_ != nullptr && external_cancel_->IsCancelled());
  }

  Status CheckCancel() const {
    return IsCancelled() ? Status::Cancelled("task group cancelled")
                         : Status::OK();
  }

 private:
  void Finish(const Status& s);

  TaskScheduler* scheduler_;
  CancellationToken* external_cancel_;
  std::atomic<bool> cancelled_{false};

  std::mutex mu_;
  std::condition_variable done_cv_;
  int outstanding_ = 0;
  Status first_error_;
  bool any_cancelled_ = false;
};

}  // namespace x100

#endif  // X100_COMMON_TASK_SCHEDULER_H_
