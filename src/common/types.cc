#include "common/types.h"

#include <cstdio>

namespace x100 {

const char* TypeName(TypeId t) {
  switch (t) {
    case TypeId::kBool: return "bool";
    case TypeId::kI8: return "i8";
    case TypeId::kI16: return "i16";
    case TypeId::kI32: return "i32";
    case TypeId::kI64: return "i64";
    case TypeId::kF64: return "f64";
    case TypeId::kStr: return "str";
    case TypeId::kDate: return "date";
  }
  return "?";
}

int TypeWidth(TypeId t) {
  switch (t) {
    case TypeId::kBool: return 1;
    case TypeId::kI8: return 1;
    case TypeId::kI16: return 2;
    case TypeId::kI32: return 4;
    case TypeId::kI64: return 8;
    case TypeId::kF64: return 8;
    case TypeId::kStr: return static_cast<int>(sizeof(StrRef));
    case TypeId::kDate: return 4;
  }
  return 0;
}

namespace {
// Civil-date <-> day-count conversion (Howard Hinnant's algorithms).
int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int64_t* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = yy + (*m <= 2);
}
}  // namespace

int32_t MakeDate(int year, int month, int day) {
  return static_cast<int32_t>(DaysFromCivil(year, month, day));
}

void DateToYmd(int32_t days, int* year, int* month, int* day) {
  int64_t y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  *year = static_cast<int>(y);
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

int32_t DateYear(int32_t days) {
  int y, m, d;
  DateToYmd(days, &y, &m, &d);
  return y;
}

int32_t DateMonth(int32_t days) {
  int y, m, d;
  DateToYmd(days, &y, &m, &d);
  return m;
}

int32_t DateDay(int32_t days) {
  int y, m, d;
  DateToYmd(days, &y, &m, &d);
  return d;
}

std::string DateToString(int32_t days) {
  int y, m, d;
  DateToYmd(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

bool ParseDate(std::string_view s, int32_t* out) {
  if (s.size() != 10 || s[4] != '-' || s[7] != '-') return false;
  auto digits = [](std::string_view v) {
    for (char c : v) {
      if (c < '0' || c > '9') return false;
    }
    return true;
  };
  if (!digits(s.substr(0, 4)) || !digits(s.substr(5, 2)) ||
      !digits(s.substr(8, 2))) {
    return false;
  }
  int y = (s[0] - '0') * 1000 + (s[1] - '0') * 100 + (s[2] - '0') * 10 +
          (s[3] - '0');
  int m = (s[5] - '0') * 10 + (s[6] - '0');
  int d = (s[8] - '0') * 10 + (s[9] - '0');
  if (m < 1 || m > 12 || d < 1 || d > 31) return false;
  *out = MakeDate(y, m, d);
  return true;
}

}  // namespace x100
