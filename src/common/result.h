// Result<T>: a value or a Status. The X100 analogue of arrow::Result.
#ifndef X100_COMMON_RESULT_H_
#define X100_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace x100 {

/// Holds either a T (success) or a non-OK Status (failure).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value — enables `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from a failing Status — enables
  /// `return Status::Overflow(...);`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace x100

#endif  // X100_COMMON_RESULT_H_
