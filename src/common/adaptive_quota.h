// AdaptiveQuotaController: turns EngineConfig::query_task_quota from a
// static per-query constant into a GLOBAL task budget redistributed
// across whatever queries are active right now.
//
// Motivation (paper §"When more cores hurts", ISSUE 7 tentpole c): a
// fixed per-query quota is wrong in both directions under a mixed
// workload. Sized for one analytical query it lets N concurrent queries
// submit N x quota tasks and flood the shared pool (point queries then
// wait behind fat scans); sized for the concurrent case it strands cores
// when the machine is otherwise idle. The controller instead:
//
//  * gives a lone query the WHOLE budget (full parallelism when idle),
//  * splits the budget evenly as queries register (never below 1 slot,
//    so every query keeps making progress — it degrades toward serial
//    execution instead of queueing behind its neighbours),
//  * and halves the per-query share while the scheduler shows sustained
//    pressure: run queues backed up beyond 2x the worker count with the
//    steal counter flat (queues deep AND nobody idle enough to steal
//    means the pool is saturated with running tasks — adding more can
//    only grow latency).
//
// Rebalancing happens at the moments that change the answer: a query
// registering/unregistering, and a pressure flip sampled from TaskQuota's
// Acquire observer (i.e. exactly when a pipeline is about to spawn
// tasks). Limits move via TaskQuota::set_limit, which never revokes
// in-flight grants — a shrink takes effect at each query's next pipeline
// barrier.
//
// Thread-safety: fully thread-safe; Register/release may happen on any
// thread (async queries release their quota from scheduler workers).
#ifndef X100_COMMON_ADAPTIVE_QUOTA_H_
#define X100_COMMON_ADAPTIVE_QUOTA_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/task_scheduler.h"

namespace x100 {

class AdaptiveQuotaController {
 public:
  /// `configured_budget` is EngineConfig::query_task_quota: > 0 = that
  /// many global slots, 0 = auto-size to 2x the scheduler's workers.
  /// (< 0 = unlimited is handled by the caller NOT using a controller.)
  AdaptiveQuotaController(TaskScheduler* scheduler, int configured_budget)
      : scheduler_(scheduler),
        budget_(configured_budget > 0 ? configured_budget
                                      : 2 * scheduler->num_workers()),
        last_steals_(scheduler->tasks_stolen()) {}

  AdaptiveQuotaController(const AdaptiveQuotaController&) = delete;
  AdaptiveQuotaController& operator=(const AdaptiveQuotaController&) =
      delete;

  /// Registers a query and returns its quota, already set to the fair
  /// share. The shared_ptr's deleter unregisters the query and grows the
  /// survivors' shares back — holding the pointer IS the registration.
  std::shared_ptr<TaskQuota> Register() {
    auto* quota = new TaskQuota(1);
    quota->set_observer([this] { MaybeRebalance(); });
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_.push_back(quota);
      RebalanceLocked();
    }
    return std::shared_ptr<TaskQuota>(
        quota, [this](TaskQuota* q) { Unregister(q); });
  }

  // Introspection for tests and the serving monitor.
  int global_budget() const { return budget_; }
  int active_queries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(active_.size());
  }
  /// The per-query share the last rebalance handed out.
  int current_share() const {
    return current_share_.load(std::memory_order_relaxed);
  }
  int64_t rebalances() const {
    return rebalances_.load(std::memory_order_relaxed);
  }
  bool pressured() const {
    return pressured_.load(std::memory_order_relaxed);
  }

 private:
  void Unregister(TaskQuota* q) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_.erase(std::remove(active_.begin(), active_.end(), q),
                    active_.end());
      if (!active_.empty()) RebalanceLocked();
    }
    delete q;
  }

  /// Acquire-observer path: cheap pressure sample, rebalance only on a
  /// state flip so the common case is two relaxed atomic loads.
  void MaybeRebalance() {
    const bool now = SamplePressure();
    if (now == pressured_.load(std::memory_order_relaxed)) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (now == pressured_.load(std::memory_order_relaxed)) return;
    pressured_.store(now, std::memory_order_relaxed);
    RebalanceLocked();
  }

  /// Pressure = run queues backed up past 2x the workers while the steal
  /// counter has not moved since the last deep-queue sample: depth alone
  /// is normal burstiness (an idle pool drains it via steals), depth
  /// WITHOUT steals means every worker is busy running, not stealing.
  bool SamplePressure() {
    if (scheduler_->queue_depth() <= 2 * scheduler_->num_workers()) {
      last_steals_.store(scheduler_->tasks_stolen(),
                         std::memory_order_relaxed);
      return false;
    }
    const int64_t steals = scheduler_->tasks_stolen();
    return steals ==
           last_steals_.exchange(steals, std::memory_order_relaxed);
  }

  void RebalanceLocked() {
    const int active = std::max<int>(1, static_cast<int>(active_.size()));
    int share = std::max(1, budget_ / active);
    if (pressured_.load(std::memory_order_relaxed)) {
      share = std::max(1, share / 2);
    }
    for (TaskQuota* q : active_) q->set_limit(share);
    current_share_.store(share, std::memory_order_relaxed);
    rebalances_.fetch_add(1, std::memory_order_relaxed);
  }

  TaskScheduler* const scheduler_;
  const int budget_;
  mutable std::mutex mu_;
  std::vector<TaskQuota*> active_;  // owned via the shared_ptr deleters
  std::atomic<int> current_share_{0};
  std::atomic<int64_t> rebalances_{0};
  std::atomic<bool> pressured_{false};
  std::atomic<int64_t> last_steals_;
};

}  // namespace x100

#endif  // X100_COMMON_ADAPTIVE_QUOTA_H_
