// Bit-twiddling helpers used by the compression codecs and hash tables.
#ifndef X100_COMMON_BITUTIL_H_
#define X100_COMMON_BITUTIL_H_

#include <cstdint>

namespace x100 {

/// Number of bits needed to represent `v` (0 -> 0 bits).
inline int BitsNeeded(uint64_t v) {
  return v == 0 ? 0 : 64 - __builtin_clzll(v);
}

/// Smallest power of two >= v (v > 0).
inline uint64_t NextPow2(uint64_t v) {
  if (v <= 1) return 1;
  return 1ull << BitsNeeded(v - 1);
}

inline bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// ZigZag encoding maps signed to unsigned preserving magnitude order of
/// small absolute values; used by PFOR-DELTA for possibly-negative deltas.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Rounds `n` up to a multiple of `m` (m > 0).
inline int64_t RoundUp(int64_t n, int64_t m) { return (n + m - 1) / m * m; }

}  // namespace x100

#endif  // X100_COMMON_BITUTIL_H_
