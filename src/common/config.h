// Engine-wide tunables.
#ifndef X100_COMMON_CONFIG_H_
#define X100_COMMON_CONFIG_H_

#include <cstdint>
#include <string>

#include "simd/simd.h"

namespace x100 {

/// Default number of values per vector. X100's sweet spot: large enough to
/// amortize interpretation overhead, small enough that the working set of a
/// pipeline stays in the CPU cache (experiment E2 sweeps this).
inline constexpr int kDefaultVectorSize = 1024;

/// Rows per storage block group (PAX/DSM unit).
inline constexpr int64_t kBlockGroupRows = 64 * 1024;

/// Size of one on-"disk" block.
inline constexpr int64_t kDiskBlockBytes = 256 * 1024;

/// Engine configuration carried by Database / QueryExecutor.
struct EngineConfig {
  int vector_size = kDefaultVectorSize;
  /// Pipeline width: the number of worker chains the physical planner
  /// clones per parallelizable pipeline (join build side, join probe +
  /// aggregation, sort input). <= 1 builds fully serial plans.
  int max_parallelism = 0;
  /// Worker threads of the task scheduler parallel plans run on:
  /// 0 = share the process-wide pool (sized to hardware concurrency),
  /// > 0 = give this Database a private pool with that many workers
  /// (tests and benches pin worker counts this way).
  int scheduler_workers = 0;
  /// Admission control: the GLOBAL budget of concurrently-running
  /// pipeline tasks shared by every query on this Database, redistributed
  /// across active queries by the AdaptiveQuotaController
  /// (common/adaptive_quota.h). 0 = auto-size to 2x the scheduler's
  /// worker count; < 0 = unlimited (no controller). A single query gets
  /// the whole budget; each concurrent query is granted an equal share
  /// (never below 1), shrunk further while the scheduler's run queues
  /// back up with no steals happening — so one fat analytical query
  /// cannot starve concurrent point queries. A query granted fewer slots
  /// than its pipeline width degrades gracefully (fewer tasks each
  /// covering more worker chains).
  int query_task_quota = 0;
  /// Plan cache capacity in entries (prepared statements; engine/
  /// plan_cache.h). 0 disables caching — Session::Prepare then compiles
  /// every time.
  int plan_cache_capacity = 256;
  /// Async admission queue: cap on queued + running Session::Submit
  /// queries per Database (0 = unbounded). Submit returns
  /// kResourceExhausted once the cap is reached — backpressure at the
  /// door instead of an unbounded task pile-up on the scheduler.
  int admission_queue_cap = 0;
  /// Completed-query retention in the QueryRegistry (monitoring): at most
  /// this many finished/failed/cancelled entries are kept, oldest evicted
  /// first (0 = unbounded — only sensible for short-lived tests). Running
  /// and queued queries are never evicted.
  int query_history_cap = 1024;
  /// Radix partitioning of pipeline-breaker merges (join build table,
  /// aggregation group merge): per-worker state is hash-partitioned by
  /// the TOP `radix_bits` bits of the key hash, and each of the
  /// 2^radix_bits partitions is merged/indexed by an independent
  /// scheduler task — the barrier merge is no longer a serial fraction.
  ///  -1 = auto: sized from the pipeline width (see EffectiveRadixBits),
  ///   0 = single-table path (one merge task; the fallback for tiny
  ///       builds and the reference configuration in bench sweeps),
  ///  >0 = exactly 2^radix_bits partitions.
  int radix_bits = -1;
  /// Memory accounting limit in bytes (0 = unlimited, unless the
  /// X100_MEMORY_LIMIT environment knob supplies a default — see
  /// Database::ResolvedMemoryLimit). Enforced by the per-query
  /// MemoryTracker: pipeline breakers whose reservation fails spill whole
  /// radix partitions / sorted runs to the SimulatedDisk, or surface
  /// kResourceExhausted when spilling is disabled.
  int64_t memory_limit = 0;
  /// Out-of-core execution: when a breaker's memory reservation fails,
  /// spill radix partitions (join build, aggregation) and sorted runs
  /// (sort) to disk instead of failing the query. false turns a failed
  /// reservation into kResourceExhausted, unwound through the pipeline
  /// cancellation machinery.
  bool enable_spill = true;
  /// Directory for the file-backed spill device. Empty (the default)
  /// spills to the in-RAM SimulatedDisk unless the X100_SPILL_PATH
  /// environment knob supplies a directory (see Database::
  /// ResolvedSpillPath); non-empty makes every spill write hit a real
  /// temp file under this directory (storage/file_spill_device.h), so
  /// memory_limit bounds the process's actual footprint, not just the
  /// accounted one. The directory must exist: a configured-but-unusable
  /// spill path fails the query loudly instead of silently running
  /// in-RAM.
  std::string spill_path;
  /// SIMD dispatch level for primitive/kernel selection. kAuto defers to
  /// the X100_SIMD environment knob when set (auto|scalar|avx2|neon;
  /// malformed values warn once and stay auto — same contract as
  /// X100_MEMORY_LIMIT), then to runtime CPU detection. A concrete mode
  /// the hardware cannot execute degrades to scalar with a one-time
  /// warning; scalar kernels are always available, so every query runs at
  /// every setting with bit-identical results (hashes included — see
  /// src/simd/simd_kernels.h).
  SimdMode simd_level = SimdMode::kAuto;
  /// Buffer pool capacity in BYTES (< 0 = auto: the X100_BUFFER_POOL
  /// environment knob when set — plain bytes or a binary suffix like
  /// "4MiB"; see Database::ResolvedBufferPoolBytes — else 64 MiB). 0 is a
  /// legal degenerate pool: every unpinned block is evicted immediately,
  /// but pinned working sets still resolve (pin-during-insert).
  int64_t buffer_pool_bytes = -1;
  /// Read-ahead budget in BYTES: the slice of the buffer pool that
  /// prefetched-but-unread blocks (plus the Grace pair streamer's
  /// ahead-of-probe spill reads) may occupy. They are first in line for
  /// eviction, so read-ahead never displaces blocks a query already
  /// touched. < 0 = auto (a quarter of the resolved pool capacity);
  /// 0 disables prefetch entirely (cold reads become synchronous again,
  /// the PR 8 behaviour). See docs/STORAGE.md §"Read-ahead".
  int64_t prefetch_budget_bytes = -1;
  /// Directory for the durable file-backed column store + catalog. Empty
  /// (the default) keeps base tables on the in-RAM SimulatedDisk;
  /// non-empty routes table blocks to
  /// `<data_path>/x100-data.blocks` (storage/file_block_device.h) and
  /// persists the catalog to `<data_path>/x100-catalog.bin`, so a
  /// Database reopened on the same path serves the same tables cold. The
  /// directory must exist — a configured-but-unusable data path fails
  /// Database construction loudly (see Database::open_status()).
  std::string data_path;
  /// Use cooperative scans (ABM relevance policy) instead of attach-LRU.
  bool cooperative_scans = true;
  /// Device bandwidth in bytes/sec (0 = infinite). Throttles the in-RAM
  /// SimulatedDisk and, when `data_path` is set, the file-backed device's
  /// reads too — a single shared IO channel, so benchmarks can model a
  /// cold medium regardless of the page cache.
  int64_t disk_bandwidth = 0;
};

/// Upper bound on radix partitioning: 2^6 = 64 partitions is enough to
/// keep any realistic pool busy while per-partition buffers stay coarse.
inline constexpr int kMaxRadixBits = 6;

/// The one radix routing function: partition = TOP `bits` bits of the
/// key hash. Join build and aggregation must agree bit-for-bit on
/// partition assignment, so both route through here (the bucket index
/// inside a partition uses the LOW bits — no aliasing).
inline uint64_t RadixPartitionOf(uint64_t hash, int bits) {
  return bits == 0 ? 0 : hash >> (64 - bits);
}

/// Resolves EngineConfig::radix_bits against the plan's pipeline width.
/// Auto (-1) sizes the partition count to ~2x the worker count so the
/// merge fan-out tolerates partition skew; serial plans never partition.
inline int EffectiveRadixBits(int configured, int parallelism) {
  if (configured >= 0) {
    return configured < kMaxRadixBits ? configured : kMaxRadixBits;
  }
  if (parallelism <= 1) return 0;
  int bits = 1;
  while ((1 << bits) < 2 * parallelism && bits < kMaxRadixBits) bits++;
  return bits;
}

/// Tiny-build cutoff for AUTO radix sizing: below this many estimated
/// build rows the ~2^radix_bits empty per-worker partition buffers cost
/// more than the single merge task they replace, so the planner keeps the
/// single-table path. Explicit radix_bits settings are never overridden.
inline constexpr int64_t kTinyBuildRows = 4096;

/// Spill floor: a pipeline breaker only goes out of core when its
/// spillable state exceeds this many bytes; anything smaller is
/// force-admitted as minimum working set instead. Without the floor, a
/// worker squeezed by OTHER operators' reservations degrades into
/// hundreds of micro-spills (serialize + write + reload + merge for a
/// few hundred bytes each) that free almost nothing.
inline constexpr int64_t kMinSpillBytes = 16 * 1024;

/// Applies the tiny-build cutoff to an already-resolved radix_bits.
/// `estimated_rows < 0` means the planner could not bound the build
/// cardinality (e.g. an aggregation feeds the build) — keep partitioning.
inline int RadixBitsForBuild(int effective_bits, int64_t estimated_rows) {
  if (estimated_rows >= 0 && estimated_rows < kTinyBuildRows) return 0;
  return effective_bits;
}

/// Dynamic radix re-sizing trigger: the drain re-plans its merge
/// partitioning when the OBSERVED build cardinality exceeds the planner's
/// scan-spine estimate by this factor (the estimate only sees base-table
/// spines — PDT-inserted rows, for one, are invisible to it).
inline constexpr int64_t kRadixResizeFactor = 8;

/// Radix bits sized from an observed cardinality: enough partitions that
/// each holds under ~kTinyBuildRows rows, capped at kMaxRadixBits. Used
/// by the drain-time re-size (the planner-side estimate proved wrong by
/// kRadixResizeFactor or more).
inline int RadixBitsForObserved(int64_t rows) {
  int bits = 0;
  while (bits < kMaxRadixBits && (rows >> bits) >= kTinyBuildRows) bits++;
  return bits;
}

/// The documented force-admit floor of out-of-core execution, beyond the
/// partition pair: once every spillable byte is on disk, the breakers
/// overcommit past memory_limit by at most
///  * one Grace partition pair at a time (the resident build partition +
///    one reloaded probe chunk — reported as mem(kb) on the query
///    profile's JoinProbePair entries; pairs are processed strictly
///    serially), plus
///  * per concurrently-draining worker, a GrowOrSpill remainder under the
///    kMinSpillBytes spill floor (with allocator slack, < 4x the floor).
/// Tests assert peak <= limit + max pair mem + this slack — the bound PR 4
/// could not state while the whole merged build table was force-charged.
inline int64_t SpillForceAdmitSlack(int workers) {
  return static_cast<int64_t>(workers + 2) * 4 * kMinSpillBytes;
}

}  // namespace x100

#endif  // X100_COMMON_CONFIG_H_
