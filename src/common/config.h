// Engine-wide tunables.
#ifndef X100_COMMON_CONFIG_H_
#define X100_COMMON_CONFIG_H_

#include <cstdint>

namespace x100 {

/// Default number of values per vector. X100's sweet spot: large enough to
/// amortize interpretation overhead, small enough that the working set of a
/// pipeline stays in the CPU cache (experiment E2 sweeps this).
inline constexpr int kDefaultVectorSize = 1024;

/// Rows per storage block group (PAX/DSM unit).
inline constexpr int64_t kBlockGroupRows = 64 * 1024;

/// Size of one on-"disk" block.
inline constexpr int64_t kDiskBlockBytes = 256 * 1024;

/// Engine configuration carried by Database / QueryExecutor.
struct EngineConfig {
  int vector_size = kDefaultVectorSize;
  /// Pipeline width: the number of worker chains the physical planner
  /// clones per parallelizable pipeline (join build side, join probe +
  /// aggregation, sort input). <= 1 builds fully serial plans.
  int max_parallelism = 0;
  /// Worker threads of the task scheduler parallel plans run on:
  /// 0 = share the process-wide pool (sized to hardware concurrency),
  /// > 0 = give this Database a private pool with that many workers
  /// (tests and benches pin worker counts this way).
  int scheduler_workers = 0;
  /// Admission control: cap on a single query's concurrently-running
  /// pipeline tasks on the shared scheduler (0 = unlimited). Under
  /// concurrent sessions this keeps one wide query from monopolizing the
  /// pool; a query granted fewer slots than its pipeline width degrades
  /// gracefully (fewer tasks each covering more worker chains).
  int query_task_quota = 0;
  /// Memory accounting limit in bytes (0 = unlimited).
  int64_t memory_limit = 0;
  /// Buffer pool capacity in blocks.
  int buffer_pool_blocks = 256;
  /// Use cooperative scans (ABM relevance policy) instead of attach-LRU.
  bool cooperative_scans = true;
  /// Simulated disk bandwidth in bytes/sec (0 = infinite, i.e. memcpy).
  int64_t disk_bandwidth = 0;
};

}  // namespace x100

#endif  // X100_COMMON_CONFIG_H_
