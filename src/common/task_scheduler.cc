#include "common/task_scheduler.h"

#include <algorithm>

namespace x100 {

TaskScheduler::TaskScheduler(int num_workers) {
  if (num_workers <= 0) {
    num_workers =
        std::max(1u, std::thread::hardware_concurrency());
  }
  queues_.resize(num_workers);
  workers_.reserve(num_workers);
  for (int i = 0; i < num_workers; i++) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  // Workers drained their deques before exiting; run anything submitted
  // during teardown so no TaskGroup is left waiting.
  std::function<void()> fn;
  bool stolen;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!PopTaskLocked(0, &fn, &stolen)) break;
    }
    fn();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
  }
}

TaskScheduler* TaskScheduler::Global() {
  static TaskScheduler* global = new TaskScheduler();
  return global;
}

void TaskScheduler::Submit(std::function<void()> fn, const void* tag) {
  const size_t q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                   queues_.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[q].push_back(Task{std::move(fn), tag});
    queued_.fetch_add(1, std::memory_order_relaxed);
  }
  work_cv_.notify_one();
}

bool TaskScheduler::PopTaskLocked(int home, std::function<void()>* out,
                                  bool* stolen) {
  *stolen = false;
  if (home >= 0 && home < static_cast<int>(queues_.size()) &&
      !queues_[home].empty()) {
    *out = std::move(queues_[home].front().fn);
    queues_[home].pop_front();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  // Steal from the longest deque (front = oldest task: FIFO across
  // thieves keeps partial pipelines of one query flowing together).
  int victim = -1;
  size_t best = 0;
  for (int q = 0; q < static_cast<int>(queues_.size()); q++) {
    if (q != home && queues_[q].size() > best) {
      best = queues_[q].size();
      victim = q;
    }
  }
  if (victim < 0) return false;
  *out = std::move(queues_[victim].front().fn);
  queues_[victim].pop_front();
  queued_.fetch_sub(1, std::memory_order_relaxed);
  *stolen = home >= 0;  // external helpers don't count as steals
  return true;
}

bool TaskScheduler::PopTaggedTaskLocked(const void* tag,
                                        std::function<void()>* out) {
  for (auto& queue : queues_) {
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (it->tag == tag) {
        *out = std::move(it->fn);
        queue.erase(it);
        queued_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  return false;
}

bool TaskScheduler::RunOneTask(const void* tag) {
  std::function<void()> fn;
  bool stolen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const bool found = tag == nullptr ? PopTaskLocked(-1, &fn, &stolen)
                                      : PopTaggedTaskLocked(tag, &fn);
    if (!found) return false;
  }
  fn();
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void TaskScheduler::HelpUntil(const std::function<bool()>& done) {
  while (true) {
    // Snapshot the epoch BEFORE evaluating the predicate: a flip+wake
    // that races with the check is then seen either by done() (flip
    // happened before) or by the epoch comparison (flip happened after).
    const uint64_t epoch = wake_epoch_.load(std::memory_order_acquire);
    if (done()) return;
    if (RunOneTask()) continue;
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      // Teardown: don't park on a signal that may never fire again, and
      // don't spin; the owner is expected to flip done() promptly.
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    work_cv_.wait(lock, [&] {
      if (stopping_) return true;
      if (wake_epoch_.load(std::memory_order_acquire) != epoch) return true;
      for (const auto& q : queues_) {
        if (!q.empty()) return true;
      }
      return false;
    });
  }
}

void TaskScheduler::WakeHelpers() {
  {
    // The lock pairs the epoch bump with HelpUntil's predicate check so
    // the wake cannot fall between a helper's check and its sleep.
    std::lock_guard<std::mutex> lock(mu_);
    wake_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  work_cv_.notify_all();
}

void TaskScheduler::WorkerLoop(int id) {
  while (true) {
    std::function<void()> fn;
    bool stolen = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Pop before checking stopping_ so shutdown drains queued tasks.
      work_cv_.wait(lock, [&] {
        return PopTaskLocked(id, &fn, &stolen) || stopping_;
      });
      if (!fn) return;  // stopping and every deque empty
    }
    fn();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    if (stolen) tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
  }
}

void TaskGroup::Spawn(std::function<Status()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    outstanding_++;
  }
  scheduler_->Submit(
      [this, fn = std::move(fn)] {
        if (IsCancelled()) {
          std::lock_guard<std::mutex> lock(mu_);
          any_cancelled_ = true;
          outstanding_--;
          if (outstanding_ == 0) done_cv_.notify_all();
          return;
        }
        Finish(fn());
      },
      tag_);
}

void TaskGroup::Finish(const Status& s) {
  // One failing task aborts its siblings (cancellation propagation).
  // Cancel BEFORE the final decrement: once outstanding_ hits 0, Wait()
  // may return and the owner may destroy the group, so no member access
  // is allowed after the decrement is published.
  if (!s.ok() && !s.IsCancelled()) Cancel();
  std::lock_guard<std::mutex> lock(mu_);
  if (s.IsCancelled()) {
    any_cancelled_ = true;
  } else if (!s.ok() && first_error_.ok()) {
    first_error_ = s;
  }
  outstanding_--;
  if (outstanding_ == 0) done_cv_.notify_all();
}

Status TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  while (outstanding_ > 0) {
    lock.unlock();
    // Help drain THIS group's queued tasks so a saturated (or single-
    // worker) scheduler cannot deadlock the joining thread. Only own
    // tasks: an arbitrary stolen task may block on a barrier owned by a
    // frame suspended beneath this very Wait (see header).
    if (!scheduler_->RunOneTask(tag_)) {
      lock.lock();
      if (outstanding_ > 0) {
        done_cv_.wait_for(lock, std::chrono::milliseconds(2));
      }
      continue;
    }
    lock.lock();
  }
  if (!first_error_.ok()) return first_error_;
  if (any_cancelled_ || IsCancelled()) {
    return Status::Cancelled("task group cancelled");
  }
  return Status::OK();
}

Status RunPipelineTasks(TaskScheduler* scheduler, TaskQuota* quota,
                        CancellationToken* cancel, int n,
                        const std::function<Status(int, TaskGroup&)>& body,
                        const void* help_tag) {
  const int grant = quota != nullptr ? quota->Acquire(n) : n;
  Status status;
  {
    TaskGroup group(scheduler, cancel, help_tag);
    std::atomic<int> next{0};
    for (int t = 0; t < grant && t < n; t++) {
      group.Spawn([&group, &next, &body, n]() -> Status {
        int i;
        while ((i = next.fetch_add(1, std::memory_order_relaxed)) < n) {
          X100_RETURN_IF_ERROR(body(i, group));
        }
        return Status::OK();
      });
    }
    status = group.Wait();  // pipeline barrier
  }
  if (quota != nullptr) quota->Release(grant);
  return status;
}

}  // namespace x100
