#include "common/task_scheduler.h"

#include <algorithm>

namespace x100 {

TaskScheduler::TaskScheduler(int num_workers) {
  if (num_workers <= 0) {
    num_workers =
        std::max(1u, std::thread::hardware_concurrency());
  }
  queues_.resize(num_workers);
  workers_.reserve(num_workers);
  for (int i = 0; i < num_workers; i++) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  // Workers drained their deques before exiting; run anything submitted
  // during teardown so no TaskGroup is left waiting.
  std::function<void()> fn;
  bool stolen;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!PopTaskLocked(0, &fn, &stolen)) break;
    }
    fn();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
  }
}

TaskScheduler* TaskScheduler::Global() {
  static TaskScheduler* global = new TaskScheduler();
  return global;
}

void TaskScheduler::Submit(std::function<void()> fn) {
  const size_t q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                   queues_.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[q].push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

bool TaskScheduler::PopTaskLocked(int home, std::function<void()>* out,
                                  bool* stolen) {
  *stolen = false;
  if (home >= 0 && home < static_cast<int>(queues_.size()) &&
      !queues_[home].empty()) {
    *out = std::move(queues_[home].front());
    queues_[home].pop_front();
    return true;
  }
  // Steal from the longest deque (front = oldest task: FIFO across
  // thieves keeps partial pipelines of one query flowing together).
  int victim = -1;
  size_t best = 0;
  for (int q = 0; q < static_cast<int>(queues_.size()); q++) {
    if (q != home && queues_[q].size() > best) {
      best = queues_[q].size();
      victim = q;
    }
  }
  if (victim < 0) return false;
  *out = std::move(queues_[victim].front());
  queues_[victim].pop_front();
  *stolen = home >= 0;  // external helpers don't count as steals
  return true;
}

bool TaskScheduler::RunOneTask() {
  std::function<void()> fn;
  bool stolen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!PopTaskLocked(-1, &fn, &stolen)) return false;
  }
  fn();
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void TaskScheduler::WorkerLoop(int id) {
  while (true) {
    std::function<void()> fn;
    bool stolen = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Pop before checking stopping_ so shutdown drains queued tasks.
      work_cv_.wait(lock, [&] {
        return PopTaskLocked(id, &fn, &stolen) || stopping_;
      });
      if (!fn) return;  // stopping and every deque empty
    }
    fn();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    if (stolen) tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
  }
}

void TaskGroup::Spawn(std::function<Status()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    outstanding_++;
  }
  scheduler_->Submit([this, fn = std::move(fn)] {
    if (IsCancelled()) {
      std::lock_guard<std::mutex> lock(mu_);
      any_cancelled_ = true;
      outstanding_--;
      if (outstanding_ == 0) done_cv_.notify_all();
      return;
    }
    Finish(fn());
  });
}

void TaskGroup::Finish(const Status& s) {
  // One failing task aborts its siblings (cancellation propagation).
  // Cancel BEFORE the final decrement: once outstanding_ hits 0, Wait()
  // may return and the owner may destroy the group, so no member access
  // is allowed after the decrement is published.
  if (!s.ok() && !s.IsCancelled()) Cancel();
  std::lock_guard<std::mutex> lock(mu_);
  if (s.IsCancelled()) {
    any_cancelled_ = true;
  } else if (!s.ok() && first_error_.ok()) {
    first_error_ = s;
  }
  outstanding_--;
  if (outstanding_ == 0) done_cv_.notify_all();
}

Status TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  while (outstanding_ > 0) {
    lock.unlock();
    // Help drain the pool so a saturated (or single-worker) scheduler
    // cannot deadlock the joining thread.
    if (!scheduler_->RunOneTask()) {
      lock.lock();
      if (outstanding_ > 0) {
        done_cv_.wait_for(lock, std::chrono::milliseconds(2));
      }
      continue;
    }
    lock.lock();
  }
  if (!first_error_.ok()) return first_error_;
  if (any_cancelled_ || IsCancelled()) {
    return Status::Cancelled("task group cancelled");
  }
  return Status::OK();
}

}  // namespace x100
