// Status: exception-free error propagation for the X100 kernel.
//
// The paper (§"Error handling and reporting") notes that the research
// prototype "assumed a simplified view of the world, where a user never
// issues a query that can fail". The production system had to detect
// division by zero, incorrect function parameters, arithmetic overflows,
// cancellation, etc. Status carries those outcomes through every layer
// (primitives, operators, storage, sessions) without exceptions.
#ifndef X100_COMMON_STATUS_H_
#define X100_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace x100 {

/// Error taxonomy of the engine. Codes mirror the failure classes the paper
/// lists as production requirements.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,   // incorrect function parameters
  kDivisionByZero,    // SQL: ERROR 22012
  kOverflow,          // arithmetic overflow (SQL: 22003)
  kOutOfRange,        // e.g. substring bounds, date out of range
  kCancelled,         // query cancellation (§"Query cancellation")
  kIoError,           // simulated disk / block device failures
  kNotFound,          // missing table / column / function
  kAlreadyExists,     // DDL conflicts
  kTxnConflict,       // write-write conflict between transactions (PDT)
  kResourceExhausted, // memory accounting limit hit
  kNotImplemented,
  kInternal,
};

/// Human-readable name of a StatusCode (stable, used in error messages and
/// the event log).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status DivisionByZero(std::string msg) {
    return Status(StatusCode::kDivisionByZero, std::move(msg));
  }
  static Status Overflow(std::string msg) {
    return Status(StatusCode::kOverflow, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TxnConflict(std::string msg) {
    return Status(StatusCode::kTxnConflict, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsOverflow() const { return code_ == StatusCode::kOverflow; }
  bool IsDivisionByZero() const {
    return code_ == StatusCode::kDivisionByZero;
  }

  /// "<CODE>: <message>" or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Propagates a non-OK Status to the caller.
#define X100_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::x100::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates an expression returning Result<T>, assigning the value on
/// success and propagating the Status on failure.
#define X100_ASSIGN_OR_RETURN(lhs, expr)        \
  do {                                          \
    auto _res = (expr);                         \
    if (!_res.ok()) return _res.status();       \
    lhs = std::move(_res).value();              \
  } while (0)

}  // namespace x100

#endif  // X100_COMMON_STATUS_H_
