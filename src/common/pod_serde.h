// POD append/read helpers shared by the spill serialization sites (row
// buffers, group tables, join build chunks).
//
// Reads are bounds- AND overflow-checked: every length field in a spill
// blob is attacker-grade untrusted as far as the reload code is concerned
// (a truncated write, a disk bug), and `pos + n > size` style checks wrap
// for huge n. Reader maintains pos <= size as an invariant and compares
// against the REMAINING bytes, so no arithmetic here can overflow. A
// corrupt blob must fail cleanly — never fault.
#ifndef X100_COMMON_POD_SERDE_H_
#define X100_COMMON_POD_SERDE_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace x100 {
namespace serde {

template <typename T>
inline void AppendPod(std::vector<uint8_t>* out, T v) {
  const auto* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
inline void AppendPodVec(std::vector<uint8_t>* out, const std::vector<T>& v) {
  const auto* p = reinterpret_cast<const uint8_t*>(v.data());
  out->insert(out->end(), p, p + v.size() * sizeof(T));
}

/// Bounds-checked reader over a serialized blob. Invariant: pos <= size.
struct Reader {
  const uint8_t* data = nullptr;
  size_t size = 0;
  size_t pos = 0;

  size_t remaining() const { return size - pos; }

  /// Borrows `n` raw bytes.
  bool Take(size_t n, const uint8_t** out) {
    if (n > remaining()) return false;
    *out = data + pos;
    pos += n;
    return true;
  }

  template <typename T>
  bool TakePod(T* v) {
    const uint8_t* p;
    if (!Take(sizeof(T), &p)) return false;
    std::memcpy(v, p, sizeof(T));
    return true;
  }

  /// Reads `n` elements of T; the element-count compare cannot overflow.
  template <typename T>
  bool TakePodVec(size_t n, std::vector<T>* v) {
    if (n > remaining() / sizeof(T)) return false;
    v->resize(n);
    if (n > 0) std::memcpy(v->data(), data + pos, n * sizeof(T));
    pos += n * sizeof(T);
    return true;
  }
};

}  // namespace serde
}  // namespace x100

#endif  // X100_COMMON_POD_SERDE_H_
