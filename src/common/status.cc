#include "common/status.h"

namespace x100 {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kDivisionByZero: return "DIVISION_BY_ZERO";
    case StatusCode::kOverflow: return "OVERFLOW";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kTxnConflict: return "TXN_CONFLICT";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kNotImplemented: return "NOT_IMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace x100
