// Deterministic PRNG (xoshiro256**) used by the TPC-H generator, the
// benchmark workload generators and property tests. Determinism matters:
// every experiment in EXPERIMENTS.md must be re-runnable bit-for-bit.
#ifndef X100_COMMON_RNG_H_
#define X100_COMMON_RNG_H_

#include <cstdint>

namespace x100 {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) {
    // splitmix64 seeding to fill the state from a single word.
    uint64_t z = seed;
    for (int i = 0; i < 4; i++) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t s = z;
      s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9ULL;
      s = (s ^ (s >> 27)) * 0x94d049bb133111ebULL;
      state_[i] = s ^ (s >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [lo, hi] inclusive. Handles the full int64 range (where
  /// hi - lo + 1 wraps to zero).
  int64_t Uniform(int64_t lo, int64_t hi) {
    const uint64_t range =
        static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    if (range == 0) return static_cast<int64_t>(Next());
    return static_cast<int64_t>(static_cast<uint64_t>(lo) + Next() % range);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

}  // namespace x100

#endif  // X100_COMMON_RNG_H_
