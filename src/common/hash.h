// Hash functions for join/aggregation hash tables.
//
// X100 hash-based operators hash whole vectors at a time; these scalar
// mixers are the per-value kernels invoked from the vectorized hash
// primitives (see primitives/hash_primitives.h).
#ifndef X100_COMMON_HASH_H_
#define X100_COMMON_HASH_H_

#include <cstdint>
#include <cstring>

#include "common/types.h"

namespace x100 {

/// 64-bit finalizer (from MurmurHash3 / splitmix64 family). Good avalanche,
/// cheap enough to inline into per-vector loops.
inline uint64_t HashMix(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

inline uint64_t HashInt(int64_t v) {
  return HashMix(static_cast<uint64_t>(v));
}

inline uint64_t HashDouble(double v) {
  // Normalize -0.0 to 0.0 so they hash (and therefore group) together.
  if (v == 0.0) v = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return HashMix(bits);
}

/// FNV-1a over bytes, then mixed. Used for StrRef keys.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; i++) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return HashMix(h);
}

inline uint64_t HashStr(const StrRef& s) { return HashBytes(s.data, s.len); }

/// Combines an accumulated hash with the hash of the next key column
/// (multi-column join / group-by keys).
inline uint64_t HashCombine(uint64_t acc, uint64_t h) {
  return HashMix(acc ^ (h + 0x9e3779b97f4a7c15ULL + (acc << 6) + (acc >> 2)));
}

}  // namespace x100

#endif  // X100_COMMON_HASH_H_
