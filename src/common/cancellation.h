// Query cancellation support.
//
// Paper §"Query cancellation": "Performing a proper query cancellation
// turned out a much more complex task than initially expected, mostly due
// to aspects such as parallelism, asynchronous IO and memory management."
//
// The mechanism: a shared CancellationToken is plumbed from the session
// into every operator, exchange worker and simulated-disk wait. Operators
// poll it once per *vector* (cheap: one atomic load per ~1000 tuples), IO
// waits use interruptible condition-variable sleeps, and Status::Cancelled
// unwinds the operator tree whose destructors (RAII) release memory,
// buffer-pool pins and threads.
#ifndef X100_COMMON_CANCELLATION_H_
#define X100_COMMON_CANCELLATION_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "common/status.h"

namespace x100 {

class CancellationToken {
 public:
  CancellationToken() : cancelled_(false) {}

  /// Requests cancellation and wakes all interruptible waits.
  void Cancel() {
    cancelled_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(mu_);
    cv_.notify_all();
  }

  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Per-vector poll: OK or kCancelled.
  Status Check() const {
    if (IsCancelled()) return Status::Cancelled("query cancelled");
    return Status::OK();
  }

  /// Interruptible sleep used by the simulated disk: returns kCancelled as
  /// soon as Cancel() is called, OK after the full wait otherwise.
  Status WaitFor(std::chrono::nanoseconds d) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, d, [&] { return IsCancelled(); });
    return Check();
  }

  /// Resets to the not-cancelled state (session reuse between queries).
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_;
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace x100

#endif  // X100_COMMON_CANCELLATION_H_
