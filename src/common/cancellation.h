// Query cancellation support.
//
// Paper §"Query cancellation": "Performing a proper query cancellation
// turned out a much more complex task than initially expected, mostly due
// to aspects such as parallelism, asynchronous IO and memory management."
//
// The mechanism: a shared CancellationToken is plumbed from the session
// into every operator, exchange worker and simulated-disk wait. Operators
// poll it once per *vector* (cheap: one atomic load per ~1000 tuples), IO
// waits use interruptible condition-variable sleeps, and Status::Cancelled
// unwinds the operator tree whose destructors (RAII) release memory,
// buffer-pool pins and threads.
#ifndef X100_COMMON_CANCELLATION_H_
#define X100_COMMON_CANCELLATION_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "common/status.h"

namespace x100 {

class CancellationToken {
 public:
  CancellationToken() : cancelled_(false) {}

  /// Requests cancellation and wakes all interruptible waits. Registered
  /// callbacks run once, outside the token lock (they may take their own
  /// locks, e.g. to notify an exchange queue's condition variables).
  void Cancel() {
    cancelled_.store(true, std::memory_order_release);
    std::map<int, std::function<void()>> run;
    {
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_all();
      run.swap(callbacks_);
      // Counter, not a flag: concurrent Cancel() calls (disconnect and
      // timeout paths racing) must each hold RemoveCallback open until
      // their own callbacks finished.
      callbacks_running_++;
    }
    for (auto& [id, fn] : run) fn();
    {
      std::lock_guard<std::mutex> lock(mu_);
      callbacks_running_--;
    }
    callbacks_done_cv_.notify_all();
  }

  /// Registers `fn` to run when Cancel() fires; if the token is already
  /// cancelled, runs it immediately. Returns an id for RemoveCallback.
  /// Blocking waits (exchange queues) use this instead of timed polling,
  /// so a cancelled producer never sits on a pool worker waiting for a
  /// poll interval to elapse.
  int AddCallback(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!IsCancelled()) {
        const int id = next_callback_++;
        callbacks_[id] = std::move(fn);
        return id;
      }
    }
    fn();  // already cancelled: fire now, nothing to remove later
    return -1;
  }

  /// Unregisters a callback (no-op for ids already fired or -1) and, if a
  /// Cancel() is mid-flight on another thread, waits for its callbacks to
  /// finish — after this returns, the callback's captures are safe to
  /// destroy. Must not be called from inside a callback.
  void RemoveCallback(int id) {
    std::unique_lock<std::mutex> lock(mu_);
    callbacks_.erase(id);
    callbacks_done_cv_.wait(lock, [&] { return callbacks_running_ == 0; });
  }

  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Per-vector poll: OK or kCancelled.
  Status Check() const {
    if (IsCancelled()) return Status::Cancelled("query cancelled");
    return Status::OK();
  }

  /// Interruptible sleep used by the simulated disk: returns kCancelled as
  /// soon as Cancel() is called, OK after the full wait otherwise.
  Status WaitFor(std::chrono::nanoseconds d) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, d, [&] { return IsCancelled(); });
    return Check();
  }

  /// Resets to the not-cancelled state (session reuse between queries).
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<int, std::function<void()>> callbacks_;
  std::condition_variable callbacks_done_cv_;
  int callbacks_running_ = 0;  // in-flight Cancel() callback batches
  int next_callback_ = 0;
};

}  // namespace x100

#endif  // X100_COMMON_CANCELLATION_H_
