// Column compression codecs — the paper's storage-side contribution
// ("novel compression schemes (e.g. PFOR [8])", Super-Scalar RAM-CPU Cache
// Compression, ICDE 2006).
//
// Design points carried over from the paper:
//  * Codecs trade compression ratio for *decompression speed*: the goal is
//    to keep a scan CPU-bound ahead of the (simulated) disk, not to
//    minimize bytes.
//  * PFOR handles outliers by *patching*: values that do not fit the chosen
//    bit width become exceptions stored verbatim, so one skewed value does
//    not blow up the width of the whole block.
//  * PFOR-DELTA applies PFOR to zigzag deltas (sorted / clustered data).
//  * PDICT dictionary-encodes strings with bit-packed codes.
//  * RLE covers long runs (e.g. sorted low-cardinality keys).
//
// Block wire format (self-describing, consumed by storage/):
//   [u8 codec][u8 width][u16 reserved][u32 n][payload…]
#ifndef X100_COMPRESSION_CODEC_H_
#define X100_COMPRESSION_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "vector/string_heap.h"

namespace x100 {

enum class CodecId : uint8_t {
  kPlain = 0,
  kPfor = 1,
  kPforDelta = 2,
  kPdict = 3,
  kRle = 4,
};

const char* CodecName(CodecId c);

/// Header prepended to every compressed column chunk.
struct CodecHeader {
  CodecId codec;
  uint8_t width;     // bit width (PFOR/PDICT); 0 otherwise
  uint16_t reserved;
  uint32_t n;        // value count
};
static_assert(sizeof(CodecHeader) == 8);

// ---------------------------------------------------------------------------
// Typed codec entry points. T in {int8_t,int16_t,int32_t,int64_t,double}.
// Strings go through the StrCodec functions below.
// ---------------------------------------------------------------------------

/// Compresses `in[0..n)` with the given codec, appending to `out`.
/// Fails with kInvalidArgument if the codec cannot represent the data
/// (callers normally use ChooseCodec first).
template <typename T>
Status CompressColumn(CodecId codec, const T* in, int n,
                      std::vector<uint8_t>* out);

/// Decompresses a chunk produced by CompressColumn. `out` must hold the
/// chunk's value count (readable via PeekHeader).
template <typename T>
Status DecompressColumn(const uint8_t* data, size_t len, T* out);

/// Reads the header of a compressed chunk.
Result<CodecHeader> PeekHeader(const uint8_t* data, size_t len);

/// Picks a codec for numeric data: RLE for long runs, PFOR-DELTA for
/// sorted/clustered, PFOR when outlier patching wins, else Plain.
template <typename T>
CodecId ChooseCodec(const T* in, int n);

// ---------------------------------------------------------------------------
// String codec (Plain or PDICT).
// ---------------------------------------------------------------------------

/// Compresses n strings. `codec` must be kPlain or kPdict.
Status CompressStrColumn(CodecId codec, const StrRef* in, int n,
                         std::vector<uint8_t>* out);

/// Decompresses strings; the bytes are copied into `heap` and `out[i]`
/// points at them.
Status DecompressStrColumn(const uint8_t* data, size_t len, StringHeap* heap,
                           StrRef* out);

/// PDICT when the dictionary pays for itself, else Plain.
CodecId ChooseStrCodec(const StrRef* in, int n);

}  // namespace x100

#endif  // X100_COMPRESSION_CODEC_H_
