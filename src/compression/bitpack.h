// Bit packing: store n unsigned values of `width` bits contiguously.
// The inner loops of PFOR compression/decompression.
#ifndef X100_COMPRESSION_BITPACK_H_
#define X100_COMPRESSION_BITPACK_H_

#include <cstdint>
#include <cstring>

namespace x100 {

/// Bytes needed to pack n values of `width` bits, including an 8-byte slack
/// so pack/unpack can read and write whole 64-bit words.
inline size_t PackedBytes(int n, int width) {
  return (static_cast<size_t>(n) * width + 7) / 8 + 8;
}

/// Packs in[0..n) into out. Values must already be masked to `width` bits.
/// `out` must have PackedBytes(n, width) writable bytes and be zeroed by
/// this function. Returns payload bytes (excluding slack). width in [0,64].
inline size_t BitPack(const uint64_t* in, int n, int width, uint8_t* out) {
  if (width == 0) return 0;
  std::memset(out, 0, PackedBytes(n, width));
  size_t bitpos = 0;
  for (int i = 0; i < n; i++) {
    const size_t byte = bitpos >> 3;
    const int shift = static_cast<int>(bitpos & 7);
    uint64_t cur;
    std::memcpy(&cur, out + byte, sizeof(cur));
    cur |= in[i] << shift;
    std::memcpy(out + byte, &cur, sizeof(cur));
    if (shift + width > 64) {
      out[byte + 8] |= static_cast<uint8_t>(in[i] >> (64 - shift));
    }
    bitpos += width;
  }
  return (bitpos + 7) / 8;
}

/// Unpacks n values of `width` bits from `in` into out. `in` must have the
/// 8-byte slack produced by PackedBytes.
inline void BitUnpack(const uint8_t* in, int n, int width, uint64_t* out) {
  if (n <= 0) return;  // out may be null for an empty run (UB otherwise)
  if (width == 0) {
    std::memset(out, 0, sizeof(uint64_t) * n);
    return;
  }
  const uint64_t mask = width == 64 ? ~0ull : ((1ull << width) - 1);
  size_t bitpos = 0;
  for (int i = 0; i < n; i++) {
    const size_t byte = bitpos >> 3;
    const int shift = static_cast<int>(bitpos & 7);
    uint64_t lo;
    std::memcpy(&lo, in + byte, sizeof(lo));
    uint64_t v = lo >> shift;
    if (shift + width > 64) {
      const uint64_t hi = in[byte + 8];
      v |= hi << (64 - shift);
    }
    out[i] = v & mask;
    bitpos += width;
  }
}

}  // namespace x100

#endif  // X100_COMPRESSION_BITPACK_H_
