#include "compression/codec.h"

#include <algorithm>
#include <cstring>
#include <type_traits>
#include <unordered_map>

#include "common/bitutil.h"
#include "compression/bitpack.h"

namespace x100 {

const char* CodecName(CodecId c) {
  switch (c) {
    case CodecId::kPlain: return "plain";
    case CodecId::kPfor: return "pfor";
    case CodecId::kPforDelta: return "pfor-delta";
    case CodecId::kPdict: return "pdict";
    case CodecId::kRle: return "rle";
  }
  return "?";
}

namespace {

void AppendBytes(std::vector<uint8_t>* out, const void* p, size_t n) {
  const auto* b = static_cast<const uint8_t*>(p);
  out->insert(out->end(), b, b + n);
}

template <typename T>
void AppendValue(std::vector<uint8_t>* out, T v) {
  AppendBytes(out, &v, sizeof(v));
}

template <typename T>
T ReadValue(const uint8_t*& p) {
  T v;
  std::memcpy(&v, p, sizeof(v));
  p += sizeof(v);
  return v;
}

void WriteHeader(std::vector<uint8_t>* out, CodecId codec, uint8_t width,
                 uint32_t n) {
  CodecHeader h{codec, width, 0, n};
  AppendBytes(out, &h, sizeof(h));
}

// ---------------------------------------------------------------------------
// Shared PFOR core over u64 residuals.
//
// Chooses the bit width minimizing  n*width/8 + exceptions*(4+8)  bytes,
// packs in-range residuals, and patches out-of-range ones ("exceptions")
// from a (position, value) side list — the PFOR design of [8].
// ---------------------------------------------------------------------------

struct PforPlan {
  int width;
  uint32_t n_exceptions;
};

PforPlan PlanPfor(const uint64_t* vals, int n) {
  // Histogram of required bit counts, then suffix sums give the exception
  // count for every candidate width in one pass.
  int64_t hist[65] = {0};
  for (int i = 0; i < n; i++) hist[BitsNeeded(vals[i])]++;
  int64_t exceptions_above[66];
  exceptions_above[65] = 0;
  for (int w = 64; w >= 0; w--) {
    exceptions_above[w] = exceptions_above[w + 1] + hist[w];
  }
  // exceptions for width w = count of values needing > w bits.
  int best_w = 64;
  int64_t best_cost = -1;
  for (int w = 0; w <= 64; w++) {
    const int64_t exc = exceptions_above[w + 1];
    const int64_t cost =
        (static_cast<int64_t>(n) * w + 7) / 8 + exc * (4 + 8);
    if (best_cost < 0 || cost < best_cost) {
      best_cost = cost;
      best_w = w;
    }
  }
  return PforPlan{best_w, static_cast<uint32_t>(exceptions_above[best_w + 1])};
}

// Payload: [u64 base][u32 n_exc][slots][exc_pos u32…][exc_val u64…]
void EncodePforU64(const uint64_t* vals, int n, uint64_t base,
                   CodecId codec, std::vector<uint8_t>* out) {
  const PforPlan plan = PlanPfor(vals, n);
  WriteHeader(out, codec, static_cast<uint8_t>(plan.width),
              static_cast<uint32_t>(n));
  AppendValue<uint64_t>(out, base);
  AppendValue<uint32_t>(out, plan.n_exceptions);

  const uint64_t mask =
      plan.width == 64 ? ~0ull
                       : (plan.width == 0 ? 0 : (1ull << plan.width) - 1);
  std::vector<uint64_t> slots(n);
  std::vector<uint32_t> exc_pos;
  std::vector<uint64_t> exc_val;
  exc_pos.reserve(plan.n_exceptions);
  exc_val.reserve(plan.n_exceptions);
  for (int i = 0; i < n; i++) {
    if (BitsNeeded(vals[i]) > plan.width) {
      slots[i] = 0;
      exc_pos.push_back(static_cast<uint32_t>(i));
      exc_val.push_back(vals[i]);
    } else {
      slots[i] = vals[i] & mask;
    }
  }
  const size_t packed = PackedBytes(n, plan.width);
  const size_t slot_off = out->size();
  out->resize(slot_off + packed);
  BitPack(slots.data(), n, plan.width, out->data() + slot_off);
  AppendBytes(out, exc_pos.data(), exc_pos.size() * sizeof(uint32_t));
  AppendBytes(out, exc_val.data(), exc_val.size() * sizeof(uint64_t));
}

Status DecodePforU64(const CodecHeader& h, const uint8_t* p, size_t len,
                     uint64_t* base_out, std::vector<uint64_t>* vals) {
  const uint8_t* end = p + len;
  if (len < 12) return Status::IoError("pfor chunk truncated");
  *base_out = ReadValue<uint64_t>(p);
  const uint32_t n_exc = ReadValue<uint32_t>(p);
  const size_t packed = PackedBytes(static_cast<int>(h.n), h.width);
  if (p + packed + n_exc * 12ull > end + 8) {
    return Status::IoError("pfor payload truncated");
  }
  vals->resize(h.n);
  BitUnpack(p, static_cast<int>(h.n), h.width, vals->data());
  p += packed;
  const uint8_t* pos_p = p;
  const uint8_t* val_p = p + n_exc * sizeof(uint32_t);
  for (uint32_t e = 0; e < n_exc; e++) {
    uint32_t pos;
    uint64_t v;
    std::memcpy(&pos, pos_p + e * sizeof(uint32_t), sizeof(pos));
    std::memcpy(&v, val_p + e * sizeof(uint64_t), sizeof(v));
    if (pos >= h.n) return Status::IoError("pfor exception out of range");
    (*vals)[pos] = v;
  }
  return Status::OK();
}

template <typename T>
uint64_t AsU64(T v) {
  if constexpr (std::is_same_v<T, double>) {
    uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
  } else {
    return static_cast<uint64_t>(static_cast<int64_t>(v));
  }
}

template <typename T>
T FromU64(uint64_t v) {
  if constexpr (std::is_same_v<T, double>) {
    double d;
    std::memcpy(&d, &v, sizeof(d));
    return d;
  } else {
    return static_cast<T>(v);
  }
}

// ---------------------------------------------------------------------------
// RLE: [u32 nruns][(T value, u32 count)…]
// ---------------------------------------------------------------------------

template <typename T>
void EncodeRle(const T* in, int n, std::vector<uint8_t>* out) {
  std::vector<std::pair<T, uint32_t>> runs;
  for (int i = 0; i < n;) {
    int j = i + 1;
    while (j < n && in[j] == in[i]) j++;
    runs.emplace_back(in[i], static_cast<uint32_t>(j - i));
    i = j;
  }
  WriteHeader(out, CodecId::kRle, 0, static_cast<uint32_t>(n));
  AppendValue<uint32_t>(out, static_cast<uint32_t>(runs.size()));
  for (const auto& [v, c] : runs) {
    AppendValue<T>(out, v);
    AppendValue<uint32_t>(out, c);
  }
}

template <typename T>
Status DecodeRle(const CodecHeader& h, const uint8_t* p, size_t len, T* out) {
  if (len < 4) return Status::IoError("rle chunk truncated");
  const uint32_t nruns = ReadValue<uint32_t>(p);
  if (len < 4 + static_cast<size_t>(nruns) * (sizeof(T) + 4)) {
    return Status::IoError("rle payload truncated");
  }
  uint64_t k = 0;
  for (uint32_t r = 0; r < nruns; r++) {
    const T v = ReadValue<T>(p);
    const uint32_t c = ReadValue<uint32_t>(p);
    if (k + c > h.n) return Status::IoError("rle run overflow");
    for (uint32_t i = 0; i < c; i++) out[k++] = v;
  }
  if (k != h.n) return Status::IoError("rle short output");
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Public typed entry points
// ---------------------------------------------------------------------------

template <typename T>
Status CompressColumn(CodecId codec, const T* in, int n,
                      std::vector<uint8_t>* out) {
  switch (codec) {
    case CodecId::kPlain:
      WriteHeader(out, CodecId::kPlain, 0, static_cast<uint32_t>(n));
      AppendBytes(out, in, static_cast<size_t>(n) * sizeof(T));
      return Status::OK();
    case CodecId::kRle:
      EncodeRle(in, n, out);
      return Status::OK();
    case CodecId::kPfor: {
      if constexpr (std::is_same_v<T, double>) {
        return Status::InvalidArgument("pfor requires integer data");
      } else {
        if (n == 0) {
          WriteHeader(out, CodecId::kPlain, 0, 0);
          return Status::OK();
        }
        T base = in[0];
        for (int i = 1; i < n; i++) base = std::min(base, in[i]);
        std::vector<uint64_t> resid(n);
        for (int i = 0; i < n; i++) {
          resid[i] = AsU64(in[i]) - AsU64(base);  // mod-2^64 FOR residual
        }
        EncodePforU64(resid.data(), n, AsU64(base), CodecId::kPfor, out);
        return Status::OK();
      }
    }
    case CodecId::kPforDelta: {
      if constexpr (std::is_same_v<T, double>) {
        return Status::InvalidArgument("pfor-delta requires integer data");
      } else {
        if (n == 0) {
          WriteHeader(out, CodecId::kPlain, 0, 0);
          return Status::OK();
        }
        // Residual 0 is the first value's placeholder; residual i>0 is the
        // zigzag of the consecutive delta.
        std::vector<uint64_t> resid(n);
        resid[0] = 0;
        for (int i = 1; i < n; i++) {
          const int64_t d = static_cast<int64_t>(AsU64(in[i]) -
                                                 AsU64(in[i - 1]));
          resid[i] = ZigZagEncode(d);
        }
        EncodePforU64(resid.data(), n, AsU64(in[0]), CodecId::kPforDelta,
                      out);
        return Status::OK();
      }
    }
    case CodecId::kPdict:
      return Status::InvalidArgument("pdict is a string codec");
  }
  return Status::InvalidArgument("unknown codec");
}

Result<CodecHeader> PeekHeader(const uint8_t* data, size_t len) {
  if (len < sizeof(CodecHeader)) {
    return Status::IoError("chunk smaller than codec header");
  }
  CodecHeader h;
  std::memcpy(&h, data, sizeof(h));
  return h;
}

template <typename T>
Status DecompressColumn(const uint8_t* data, size_t len, T* out) {
  CodecHeader h;
  X100_ASSIGN_OR_RETURN(h, PeekHeader(data, len));
  const uint8_t* p = data + sizeof(h);
  const size_t plen = len - sizeof(h);
  switch (h.codec) {
    case CodecId::kPlain: {
      if (plen < static_cast<size_t>(h.n) * sizeof(T)) {
        return Status::IoError("plain payload truncated");
      }
      if (h.n > 0) {  // out may be null for an empty column (UB otherwise)
        std::memcpy(out, p, static_cast<size_t>(h.n) * sizeof(T));
      }
      return Status::OK();
    }
    case CodecId::kRle:
      return DecodeRle<T>(h, p, plen, out);
    case CodecId::kPfor: {
      if constexpr (std::is_same_v<T, double>) {
        return Status::IoError("pfor chunk for float column");
      } else {
        uint64_t base;
        std::vector<uint64_t> resid;
        X100_RETURN_IF_ERROR(DecodePforU64(h, p, plen, &base, &resid));
        for (uint32_t i = 0; i < h.n; i++) {
          out[i] = FromU64<T>(base + resid[i]);
        }
        return Status::OK();
      }
    }
    case CodecId::kPforDelta: {
      if constexpr (std::is_same_v<T, double>) {
        return Status::IoError("pfor-delta chunk for float column");
      } else {
        uint64_t first;
        std::vector<uint64_t> resid;
        X100_RETURN_IF_ERROR(DecodePforU64(h, p, plen, &first, &resid));
        if (h.n == 0) return Status::OK();
        uint64_t acc = first;
        out[0] = FromU64<T>(acc);
        for (uint32_t i = 1; i < h.n; i++) {
          acc += static_cast<uint64_t>(ZigZagDecode(resid[i]));
          out[i] = FromU64<T>(acc);
        }
        return Status::OK();
      }
    }
    case CodecId::kPdict:
      return Status::IoError("pdict chunk for numeric column");
  }
  return Status::IoError("unknown codec id");
}

template <typename T>
CodecId ChooseCodec(const T* in, int n) {
  if (n == 0) return CodecId::kPlain;
  // Run statistics (one pass): run count and sortedness.
  int64_t nruns = 1;
  bool sorted = true;
  for (int i = 1; i < n; i++) {
    nruns += in[i] != in[i - 1];
    sorted &= !(in[i] < in[i - 1]);
  }
  const int64_t plain_bytes = static_cast<int64_t>(n) * sizeof(T);
  const int64_t rle_bytes = nruns * (sizeof(T) + 4) + 4;
  if (rle_bytes * 2 < plain_bytes) return CodecId::kRle;
  if constexpr (std::is_same_v<T, double>) {
    return CodecId::kPlain;
  } else {
    // Cost both PFOR variants via their width plans.
    std::vector<uint64_t> resid(n);
    T base = in[0];
    for (int i = 1; i < n; i++) base = std::min(base, in[i]);
    for (int i = 0; i < n; i++) resid[i] = AsU64(in[i]) - AsU64(base);
    const PforPlan p1 = PlanPfor(resid.data(), n);
    const int64_t pfor_bytes =
        (static_cast<int64_t>(n) * p1.width + 7) / 8 +
        static_cast<int64_t>(p1.n_exceptions) * 12 + 12;

    resid[0] = 0;
    for (int i = n - 1; i > 0; i--) {
      resid[i] = ZigZagEncode(
          static_cast<int64_t>(AsU64(in[i]) - AsU64(in[i - 1])));
    }
    const PforPlan p2 = PlanPfor(resid.data(), n);
    const int64_t pford_bytes =
        (static_cast<int64_t>(n) * p2.width + 7) / 8 +
        static_cast<int64_t>(p2.n_exceptions) * 12 + 12;

    const int64_t best = std::min(pfor_bytes, pford_bytes);
    if (best < plain_bytes * 9 / 10) {
      // Prefer PFOR-DELTA on sorted data (same bytes, better locality).
      if (sorted && pford_bytes <= pfor_bytes) return CodecId::kPforDelta;
      return pford_bytes < pfor_bytes ? CodecId::kPforDelta : CodecId::kPfor;
    }
    return CodecId::kPlain;
  }
}

// ---------------------------------------------------------------------------
// String codecs
// ---------------------------------------------------------------------------

Status CompressStrColumn(CodecId codec, const StrRef* in, int n,
                         std::vector<uint8_t>* out) {
  if (codec == CodecId::kPlain) {
    // [u32 len…][bytes…]
    WriteHeader(out, CodecId::kPlain, 0, static_cast<uint32_t>(n));
    for (int i = 0; i < n; i++) AppendValue<uint32_t>(out, in[i].len);
    for (int i = 0; i < n; i++) AppendBytes(out, in[i].data, in[i].len);
    return Status::OK();
  }
  if (codec != CodecId::kPdict) {
    return Status::InvalidArgument("string codec must be plain or pdict");
  }
  // Build dictionary in first-occurrence order.
  std::unordered_map<std::string_view, uint32_t> dict;
  std::vector<StrRef> entries;
  std::vector<uint64_t> codes(n);
  for (int i = 0; i < n; i++) {
    auto [it, inserted] =
        dict.try_emplace(in[i].view(), static_cast<uint32_t>(entries.size()));
    if (inserted) entries.push_back(in[i]);
    codes[i] = it->second;
  }
  const int width = BitsNeeded(entries.empty() ? 0 : entries.size() - 1);
  WriteHeader(out, CodecId::kPdict, static_cast<uint8_t>(width),
              static_cast<uint32_t>(n));
  AppendValue<uint32_t>(out, static_cast<uint32_t>(entries.size()));
  for (const StrRef& e : entries) {
    AppendValue<uint32_t>(out, e.len);
    AppendBytes(out, e.data, e.len);
  }
  const size_t packed = PackedBytes(n, width);
  const size_t off = out->size();
  out->resize(off + packed);
  BitPack(codes.data(), n, width, out->data() + off);
  return Status::OK();
}

Status DecompressStrColumn(const uint8_t* data, size_t len, StringHeap* heap,
                           StrRef* out) {
  CodecHeader h;
  X100_ASSIGN_OR_RETURN(h, PeekHeader(data, len));
  const uint8_t* p = data + sizeof(h);
  const uint8_t* end = data + len;
  if (h.codec == CodecId::kPlain) {
    if (static_cast<size_t>(end - p) < h.n * sizeof(uint32_t)) {
      return Status::IoError("plain str lengths truncated");
    }
    const uint8_t* bytes = p + h.n * sizeof(uint32_t);
    for (uint32_t i = 0; i < h.n; i++) {
      uint32_t l;
      std::memcpy(&l, p + i * sizeof(uint32_t), sizeof(l));
      if (bytes + l > end) return Status::IoError("plain str bytes truncated");
      char* dst = heap->Allocate(l);
      std::memcpy(dst, bytes, l);
      out[i] = StrRef(dst, l);
      bytes += l;
    }
    return Status::OK();
  }
  if (h.codec != CodecId::kPdict) {
    return Status::IoError("unexpected codec for string column");
  }
  if (end - p < 4) return Status::IoError("pdict header truncated");
  const uint32_t dict_size = ReadValue<uint32_t>(p);
  std::vector<StrRef> entries(dict_size);
  for (uint32_t e = 0; e < dict_size; e++) {
    if (end - p < 4) return Status::IoError("pdict entry truncated");
    const uint32_t l = ReadValue<uint32_t>(p);
    if (p + l > end) return Status::IoError("pdict bytes truncated");
    char* dst = heap->Allocate(l);
    if (l > 0) std::memcpy(dst, p, l);  // Allocate(0) may return null
    entries[e] = StrRef(dst, l);
    p += l;
  }
  std::vector<uint64_t> codes(h.n);
  BitUnpack(p, static_cast<int>(h.n), h.width, codes.data());
  for (uint32_t i = 0; i < h.n; i++) {
    if (codes[i] >= dict_size) return Status::IoError("pdict code range");
    out[i] = entries[codes[i]];
  }
  return Status::OK();
}

CodecId ChooseStrCodec(const StrRef* in, int n) {
  if (n == 0) return CodecId::kPlain;
  // Sample distinct count; PDICT pays when ndv << n.
  std::unordered_map<std::string_view, int> seen;
  size_t total_bytes = 0;
  for (int i = 0; i < n; i++) {
    seen.try_emplace(in[i].view(), 0);
    total_bytes += in[i].len;
  }
  const size_t ndv = seen.size();
  size_t dict_bytes = 0;
  for (const auto& [sv, _] : seen) dict_bytes += sv.size() + 4;
  const int width = BitsNeeded(ndv ? ndv - 1 : 0);
  const size_t pdict_bytes = dict_bytes + (static_cast<size_t>(n) * width) / 8;
  const size_t plain_bytes = total_bytes + 4ull * n;
  return pdict_bytes * 10 < plain_bytes * 9 ? CodecId::kPdict
                                            : CodecId::kPlain;
}

// Explicit instantiations for the storage-supported numeric types.
template Status CompressColumn<int8_t>(CodecId, const int8_t*, int,
                                       std::vector<uint8_t>*);
template Status CompressColumn<int16_t>(CodecId, const int16_t*, int,
                                        std::vector<uint8_t>*);
template Status CompressColumn<int32_t>(CodecId, const int32_t*, int,
                                        std::vector<uint8_t>*);
template Status CompressColumn<int64_t>(CodecId, const int64_t*, int,
                                        std::vector<uint8_t>*);
template Status CompressColumn<uint8_t>(CodecId, const uint8_t*, int,
                                        std::vector<uint8_t>*);
template Status CompressColumn<double>(CodecId, const double*, int,
                                       std::vector<uint8_t>*);
template Status DecompressColumn<int8_t>(const uint8_t*, size_t, int8_t*);
template Status DecompressColumn<int16_t>(const uint8_t*, size_t, int16_t*);
template Status DecompressColumn<int32_t>(const uint8_t*, size_t, int32_t*);
template Status DecompressColumn<int64_t>(const uint8_t*, size_t, int64_t*);
template Status DecompressColumn<uint8_t>(const uint8_t*, size_t, uint8_t*);
template Status DecompressColumn<double>(const uint8_t*, size_t, double*);
template CodecId ChooseCodec<int8_t>(const int8_t*, int);
template CodecId ChooseCodec<int16_t>(const int16_t*, int);
template CodecId ChooseCodec<int32_t>(const int32_t*, int);
template CodecId ChooseCodec<int64_t>(const int64_t*, int);
template CodecId ChooseCodec<uint8_t>(const uint8_t*, int);
template CodecId ChooseCodec<double>(const double*, int);

}  // namespace x100
