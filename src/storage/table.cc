#include "storage/table.h"

#include <algorithm>
#include <cstring>

namespace x100 {

namespace {

/// Splits `bytes` into device blocks of at most kDiskBlockBytes. Every
/// written id is also appended to `written` so the caller can reclaim
/// them if the group placement fails partway.
Result<std::vector<BlockId>> PlaceBytes(BlockDevice* device,
                                        const std::vector<uint8_t>& bytes,
                                        std::vector<BlockId>* written) {
  std::vector<BlockId> blocks;
  size_t off = 0;
  do {
    const size_t len =
        std::min<size_t>(bytes.size() - off, kDiskBlockBytes);
    BlockId id = 0;
    X100_ASSIGN_OR_RETURN(
        id, device->WriteBlock(std::vector<uint8_t>(
                bytes.begin() + off, bytes.begin() + off + len)));
    blocks.push_back(id);
    written->push_back(id);
    off += len;
  } while (off < bytes.size());
  return blocks;
}

}  // namespace

// ---------------------------------------------------------------------------
// MinMax pushdown
// ---------------------------------------------------------------------------

bool Table::GroupMayMatch(int g, int col, RangeOp op, const Value& v) const {
  const ColumnChunkMeta& m = groups_[g].cols[col];
  if (!m.has_min_max || v.is_null()) return true;
  const TypeId t = schema_.field(col).type;
  double lo, hi, x;
  if (t == TypeId::kF64) {
    lo = m.dmin;
    hi = m.dmax;
    x = v.AsF64();
  } else if (IsIntegerType(t)) {
    lo = static_cast<double>(m.imin);
    hi = static_cast<double>(m.imax);
    x = static_cast<double>(v.AsI64());
  } else {
    return true;
  }
  switch (op) {
    case RangeOp::kEq: return x >= lo && x <= hi;
    case RangeOp::kLt: return lo < x;
    case RangeOp::kLe: return lo <= x;
    case RangeOp::kGt: return hi > x;
    case RangeOp::kGe: return hi >= x;
  }
  return true;
}

int64_t Table::compressed_bytes() const {
  int64_t total = 0;
  for (const GroupMeta& g : groups_) {
    if (!g.pax_blocks.empty()) {
      for (const ColumnChunkMeta& c : g.cols) {
        total += static_cast<int64_t>(c.loc.length) +
                 static_cast<int64_t>(c.null_loc.length);
      }
    } else {
      for (const ColumnChunkMeta& c : g.cols) {
        total += static_cast<int64_t>(c.loc.length) +
                 static_cast<int64_t>(c.null_loc.length);
      }
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// TableBuilder
// ---------------------------------------------------------------------------

struct TableBuilder::Staging {
  struct Col {
    std::vector<uint8_t> fixed;     // raw bytes for fixed-width types
    std::vector<std::string> strs;  // owned strings for kStr
    std::vector<uint8_t> nulls;
    bool any_null = false;
  };
  std::vector<Col> cols;
  int64_t rows = 0;
};

TableBuilder::TableBuilder(std::string name, Schema schema, Layout layout,
                           BlockDevice* device, int64_t group_rows)
    : table_(std::make_unique<Table>(std::move(name), std::move(schema),
                                     layout, device)),
      group_rows_(group_rows > 0 ? group_rows : kBlockGroupRows),
      staging_(std::make_unique<Staging>()) {
  staging_->cols.resize(table_->schema().num_fields());
}

TableBuilder::~TableBuilder() {
  // An unfinished build (error unwind, aborted checkpoint) must not leak
  // device blocks: a durable file would otherwise grow with every failed
  // attempt. Table may be null if Finish() moved it out but `finished_`
  // guards that path anyway.
  if (finished_) return;
  BlockDevice* device = table_ ? table_->device() : nullptr;
  if (device == nullptr) return;
  for (BlockId id : blocks_written_) device->FreeBlock(id);
}

Status TableBuilder::AppendRow(const std::vector<Value>& row) {
  const Schema& schema = table_->schema();
  if (static_cast<int>(row.size()) != schema.num_fields()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (int c = 0; c < schema.num_fields(); c++) {
    const Field& f = schema.field(c);
    Staging::Col& st = staging_->cols[c];
    const bool null = row[c].is_null();
    if (null && !f.nullable) {
      return Status::InvalidArgument("NULL in non-nullable column " + f.name);
    }
    st.nulls.push_back(null ? 1 : 0);
    st.any_null |= null;
    auto push_fixed = [&](auto v) {
      const auto* p = reinterpret_cast<const uint8_t*>(&v);
      st.fixed.insert(st.fixed.end(), p, p + sizeof(v));
    };
    switch (f.type) {
      case TypeId::kBool:
        push_fixed(static_cast<uint8_t>(null ? 0 : row[c].AsBool()));
        break;
      case TypeId::kI8:
        push_fixed(static_cast<int8_t>(null ? 0 : row[c].AsI64()));
        break;
      case TypeId::kI16:
        push_fixed(static_cast<int16_t>(null ? 0 : row[c].AsI64()));
        break;
      case TypeId::kI32:
      case TypeId::kDate:
        push_fixed(static_cast<int32_t>(null ? 0 : row[c].AsI64()));
        break;
      case TypeId::kI64:
        push_fixed(static_cast<int64_t>(null ? 0 : row[c].AsI64()));
        break;
      case TypeId::kF64:
        push_fixed(null ? 0.0 : row[c].AsF64());
        break;
      case TypeId::kStr:
        st.strs.push_back(null ? std::string() : row[c].AsStr());
        break;
    }
  }
  staging_->rows++;
  if (staging_->rows >= group_rows_) return FlushGroup();
  return Status::OK();
}

Status TableBuilder::AppendBatch(const Batch& batch) {
  const Schema& schema = table_->schema();
  if (batch.num_columns() != schema.num_fields()) {
    return Status::InvalidArgument("batch arity mismatch");
  }
  const int n = batch.ActiveRows();
  const sel_t* sel = batch.sel();
  for (int j = 0; j < n; j++) {
    const int i = sel ? sel[j] : j;
    for (int c = 0; c < schema.num_fields(); c++) {
      const Vector& v = *batch.column(c);
      Staging::Col& st = staging_->cols[c];
      const bool null = v.IsNull(i);
      if (null && !schema.field(c).nullable) {
        return Status::InvalidArgument("NULL in non-nullable column " +
                                       schema.field(c).name);
      }
      st.nulls.push_back(null ? 1 : 0);
      st.any_null |= null;
      if (schema.field(c).type == TypeId::kStr) {
        st.strs.push_back(std::string(v.Data<StrRef>()[i].view()));
      } else {
        const int w = TypeWidth(v.type());
        const uint8_t* p =
            static_cast<const uint8_t*>(v.RawData()) +
            static_cast<size_t>(i) * w;
        st.fixed.insert(st.fixed.end(), p, p + w);
      }
    }
    staging_->rows++;
    if (staging_->rows >= group_rows_) X100_RETURN_IF_ERROR(FlushGroup());
  }
  return Status::OK();
}

namespace {

template <typename T>
Status CompressTyped(const std::vector<uint8_t>& fixed, int n,
                     std::vector<uint8_t>* out, int64_t* imin, int64_t* imax,
                     double* dmin, double* dmax, bool* has_mm,
                     const std::vector<uint8_t>& nulls, bool any_null) {
  const T* data = reinterpret_cast<const T*>(fixed.data());
  const CodecId codec = ChooseCodec<T>(data, n);
  X100_RETURN_IF_ERROR(CompressColumn<T>(codec, data, n, out));
  // MinMax over non-NULL values.
  bool first = true;
  for (int i = 0; i < n; i++) {
    if (any_null && nulls[i]) continue;
    const T v = data[i];
    if constexpr (std::is_same_v<T, double>) {
      if (first || v < *dmin) *dmin = v;
      if (first || v > *dmax) *dmax = v;
    } else {
      if (first || static_cast<int64_t>(v) < *imin) *imin = v;
      if (first || static_cast<int64_t>(v) > *imax) *imax = v;
    }
    first = false;
  }
  *has_mm = !first;
  return Status::OK();
}

}  // namespace

Status TableBuilder::FlushGroup() {
  if (staging_->rows == 0) return Status::OK();
  const Schema& schema = table_->schema();
  const int n = static_cast<int>(staging_->rows);
  GroupMeta gm;
  gm.first_sid = table_->num_rows_;
  gm.rows = static_cast<uint32_t>(n);
  gm.cols.resize(schema.num_fields());

  // Compress every column chunk (+ null chunks) into byte buffers.
  std::vector<std::vector<uint8_t>> payloads(schema.num_fields());
  std::vector<std::vector<uint8_t>> null_payloads(schema.num_fields());
  for (int c = 0; c < schema.num_fields(); c++) {
    const Field& f = schema.field(c);
    Staging::Col& st = staging_->cols[c];
    ColumnChunkMeta& meta = gm.cols[c];
    std::vector<uint8_t>* out = &payloads[c];
    switch (f.type) {
      case TypeId::kBool:
        X100_RETURN_IF_ERROR(CompressTyped<uint8_t>(
            st.fixed, n, out, &meta.imin, &meta.imax, &meta.dmin, &meta.dmax,
            &meta.has_min_max, st.nulls, st.any_null));
        meta.has_min_max = false;  // no range pruning on bool
        break;
      case TypeId::kI8:
        X100_RETURN_IF_ERROR(CompressTyped<int8_t>(
            st.fixed, n, out, &meta.imin, &meta.imax, &meta.dmin, &meta.dmax,
            &meta.has_min_max, st.nulls, st.any_null));
        break;
      case TypeId::kI16:
        X100_RETURN_IF_ERROR(CompressTyped<int16_t>(
            st.fixed, n, out, &meta.imin, &meta.imax, &meta.dmin, &meta.dmax,
            &meta.has_min_max, st.nulls, st.any_null));
        break;
      case TypeId::kI32:
      case TypeId::kDate:
        X100_RETURN_IF_ERROR(CompressTyped<int32_t>(
            st.fixed, n, out, &meta.imin, &meta.imax, &meta.dmin, &meta.dmax,
            &meta.has_min_max, st.nulls, st.any_null));
        break;
      case TypeId::kI64:
        X100_RETURN_IF_ERROR(CompressTyped<int64_t>(
            st.fixed, n, out, &meta.imin, &meta.imax, &meta.dmin, &meta.dmax,
            &meta.has_min_max, st.nulls, st.any_null));
        break;
      case TypeId::kF64:
        X100_RETURN_IF_ERROR(CompressTyped<double>(
            st.fixed, n, out, &meta.imin, &meta.imax, &meta.dmin, &meta.dmax,
            &meta.has_min_max, st.nulls, st.any_null));
        break;
      case TypeId::kStr: {
        std::vector<StrRef> refs(n);
        for (int i = 0; i < n; i++) refs[i] = StrRef(st.strs[i]);
        const CodecId codec = ChooseStrCodec(refs.data(), n);
        X100_RETURN_IF_ERROR(
            CompressStrColumn(codec, refs.data(), n, out));
        break;
      }
    }
    meta.loc.length = out->size();
    if (st.any_null) {
      meta.has_nulls = true;
      const CodecId codec = ChooseCodec<uint8_t>(st.nulls.data(), n);
      X100_RETURN_IF_ERROR(CompressColumn<uint8_t>(codec, st.nulls.data(), n,
                                                   &null_payloads[c]));
      meta.null_loc.length = null_payloads[c].size();
    }
  }

  // Place on the device. A failed write aborts the group; the blocks
  // already placed stay in blocks_written_ and are freed by the dtor.
  BlockDevice* device = table_->device();
  if (table_->layout() == Layout::kDsm) {
    for (int c = 0; c < schema.num_fields(); c++) {
      X100_ASSIGN_OR_RETURN(gm.cols[c].loc.blocks,
                            PlaceBytes(device, payloads[c], &blocks_written_));
      if (gm.cols[c].has_nulls) {
        X100_ASSIGN_OR_RETURN(
            gm.cols[c].null_loc.blocks,
            PlaceBytes(device, null_payloads[c], &blocks_written_));
      }
    }
  } else {
    // PAX: one shared region; chunks addressed by (offset, length).
    std::vector<uint8_t> region;
    for (int c = 0; c < schema.num_fields(); c++) {
      gm.cols[c].loc.offset = region.size();
      region.insert(region.end(), payloads[c].begin(), payloads[c].end());
      if (gm.cols[c].has_nulls) {
        gm.cols[c].null_loc.offset = region.size();
        region.insert(region.end(), null_payloads[c].begin(),
                      null_payloads[c].end());
      }
    }
    X100_ASSIGN_OR_RETURN(gm.pax_blocks,
                          PlaceBytes(device, region, &blocks_written_));
  }

  table_->groups_.push_back(std::move(gm));
  table_->num_rows_ += n;
  staging_ = std::make_unique<Staging>();
  staging_->cols.resize(schema.num_fields());
  return Status::OK();
}

Status TableBuilder::AppendStoredGroup(const GroupMeta& gm) {
  X100_RETURN_IF_ERROR(FlushGroup());  // preserve row order
  GroupMeta copy = gm;
  copy.first_sid = table_->num_rows_;
  table_->num_rows_ += copy.rows;
  table_->groups_.push_back(std::move(copy));
  return Status::OK();
}

Result<std::unique_ptr<Table>> TableBuilder::Finish() {
  X100_RETURN_IF_ERROR(FlushGroup());
  finished_ = true;
  return std::move(table_);
}

// ---------------------------------------------------------------------------
// TableReader
// ---------------------------------------------------------------------------

Result<std::vector<uint8_t>> TableReader::ReadChunkBytes(
    const GroupMeta& gm, const ChunkLoc& loc, CancellationToken* cancel) {
  std::vector<uint8_t> bytes;
  bytes.reserve(loc.length);
  if (!gm.pax_blocks.empty()) {
    // PAX: the group region is one IO unit — pin all region blocks (the
    // buffer manager makes later columns of the same group cache hits,
    // and the pins keep the region resident while it is sliced), then
    // slice this chunk's byte range. These pins are the "one pinned
    // working set" the pool budget may be exceeded by.
    std::vector<BufferManager::Pin> region;
    region.reserve(gm.pax_blocks.size());
    for (BlockId b : gm.pax_blocks) {
      BufferManager::Pin pin;
      X100_ASSIGN_OR_RETURN(pin, buffers_->PinBlock(b, cancel));
      region.push_back(std::move(pin));
    }
    uint64_t remaining = loc.length;
    uint64_t pos = loc.offset;
    while (remaining > 0) {
      const size_t bi = pos / kDiskBlockBytes;
      const size_t off = pos % kDiskBlockBytes;
      if (bi >= region.size()) return Status::IoError("pax region overrun");
      const auto& blk = region[bi].data();
      const size_t take = std::min<uint64_t>(remaining, blk.size() - off);
      bytes.insert(bytes.end(), blk.begin() + off, blk.begin() + off + take);
      pos += take;
      remaining -= take;
    }
  } else {
    // DSM: blocks are consumed one at a time; the pin lives only while
    // the block's bytes are appended, so the working set is one block.
    for (BlockId b : loc.blocks) {
      BufferManager::Pin pin;
      X100_ASSIGN_OR_RETURN(pin, buffers_->PinBlock(b, cancel));
      const auto& blk = pin.data();
      bytes.insert(bytes.end(), blk.begin(), blk.end());
    }
    bytes.resize(loc.length);
  }
  // Note: compressed chunks already carry the 8-byte bitpack slack inside
  // their payload (PackedBytes), so no extra padding is needed here.
  return bytes;
}

Status TableReader::ReadColumn(int g, int col, void* out, uint8_t* nulls,
                               StringHeap* heap, CancellationToken* cancel) {
  const GroupMeta& gm = table_->group(g);
  const ColumnChunkMeta& meta = gm.cols[col];
  std::vector<uint8_t> bytes;
  X100_ASSIGN_OR_RETURN(bytes, ReadChunkBytes(gm, meta.loc, cancel));
  const TypeId t = table_->schema().field(col).type;
  switch (t) {
    case TypeId::kBool:
      X100_RETURN_IF_ERROR(DecompressColumn<uint8_t>(
          bytes.data(), bytes.size(), static_cast<uint8_t*>(out)));
      break;
    case TypeId::kI8:
      X100_RETURN_IF_ERROR(DecompressColumn<int8_t>(
          bytes.data(), bytes.size(), static_cast<int8_t*>(out)));
      break;
    case TypeId::kI16:
      X100_RETURN_IF_ERROR(DecompressColumn<int16_t>(
          bytes.data(), bytes.size(), static_cast<int16_t*>(out)));
      break;
    case TypeId::kI32:
    case TypeId::kDate:
      X100_RETURN_IF_ERROR(DecompressColumn<int32_t>(
          bytes.data(), bytes.size(), static_cast<int32_t*>(out)));
      break;
    case TypeId::kI64:
      X100_RETURN_IF_ERROR(DecompressColumn<int64_t>(
          bytes.data(), bytes.size(), static_cast<int64_t*>(out)));
      break;
    case TypeId::kF64:
      X100_RETURN_IF_ERROR(DecompressColumn<double>(
          bytes.data(), bytes.size(), static_cast<double*>(out)));
      break;
    case TypeId::kStr:
      if (heap == nullptr) {
        return Status::InvalidArgument("string column requires a heap");
      }
      X100_RETURN_IF_ERROR(DecompressStrColumn(
          bytes.data(), bytes.size(), heap, static_cast<StrRef*>(out)));
      break;
  }
  if (nulls != nullptr) {
    if (meta.has_nulls) {
      std::vector<uint8_t> nbytes;
      X100_ASSIGN_OR_RETURN(nbytes, ReadChunkBytes(gm, meta.null_loc, cancel));
      X100_RETURN_IF_ERROR(
          DecompressColumn<uint8_t>(nbytes.data(), nbytes.size(), nulls));
    } else {
      std::memset(nulls, 0, gm.rows);
    }
  }
  return Status::OK();
}

}  // namespace x100
