// SpillDevice: the block-store contract behind SpillFile.
//
// The out-of-core executor spills serialized radix partitions, sorted-run
// chunks and (Grace probe) probe-side partitions as runs of blocks no
// larger than kDiskBlockBytes. PR 4 hardwired those blocks into the
// SimulatedDisk, which keeps every "spilled" byte in RAM for the query's
// lifetime — fine for unit tests, useless as an actual memory bound. This
// interface lets the engine plug in a real file-backed device
// (storage/file_spill_device.h) while SimulatedDisk stays the default.
//
// Contract:
//  * Write may FAIL (a real disk runs out of space); callers must treat a
//    failed spill write like any other IO error and unwind, never crash.
//  * Read returns exactly the bytes written for that id, or kIoError —
//    a freed, truncated, corrupted or vanished block must surface as a
//    clean error, not as wrong bytes (devices are expected to verify).
//  * Free releases the block's storage for recycling; ids are never
//    reused, and reading a freed id is an error.
//  * All three are thread-safe: drain workers spill concurrently while
//    merge tasks reload other partitions.
#ifndef X100_STORAGE_SPILL_DEVICE_H_
#define X100_STORAGE_SPILL_DEVICE_H_

#include <cstdint>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"

namespace x100 {

using BlockId = uint64_t;

class SpillDevice {
 public:
  virtual ~SpillDevice() = default;

  /// Stores `data` (size <= kDiskBlockBytes) and returns its id, or an
  /// IO error (ENOSPC and friends) when the device cannot take it.
  virtual Result<BlockId> WriteSpill(std::vector<uint8_t> data) = 0;

  /// Returns the block's bytes. The wait (simulated bandwidth or real
  /// disk) is interruptible via `cancel` (may be nullptr).
  virtual Result<std::vector<uint8_t>> ReadSpill(
      BlockId id, CancellationToken* cancel) = 0;

  /// Releases the block's storage (idempotent per id). Spilled state dies
  /// with its query; a device must recycle freed space, not grow forever.
  virtual void FreeSpill(BlockId id) = 0;

  // Accounting, used by tests and benches to assert spill hygiene.
  virtual int64_t spill_bytes_written() const = 0;
  virtual int64_t spill_bytes_read() const = 0;
  /// Bytes of live (written, not yet freed) spill blocks. Must return to
  /// zero once every SpillFile of a query has been destroyed.
  virtual int64_t spill_bytes_in_use() const = 0;
};

}  // namespace x100

#endif  // X100_STORAGE_SPILL_DEVICE_H_
