// MorselSource: dynamic work distribution for parallel scans.
//
// The seed's Parallelizer assigned block groups to Xchg producers
// *statically* (g % parts == part, fixed at rewrite time), so one
// expensive group — heavy PDT deltas, no MinMax skip while siblings skip —
// serialized the whole pipeline on a single producer. A MorselSource is
// shared by all producer clones of one logical scan and hands out groups
// ("morsels", Leis et al.) one at a time on demand: fast producers simply
// take more groups, and elasticity comes for free (any number of
// consumers, decided at plan-build time, not data-layout time).
//
// The in-memory PDT tail (inserts past the last stable row) is a single
// indivisible morsel; exactly one consumer wins ClaimTail().
#ifndef X100_STORAGE_MORSEL_H_
#define X100_STORAGE_MORSEL_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace x100 {

class MorselSource {
 public:
  /// Distributes groups [0, num_groups), then the tail.
  explicit MorselSource(int num_groups) : num_groups_(num_groups) {}

  /// Claims the next unscanned group; -1 when exhausted.
  int NextGroup() {
    const int g = next_.fetch_add(1, std::memory_order_relaxed);
    return g < num_groups_ ? g : -1;
  }

  /// The group the next NextGroup() call would hand out; -1 when
  /// exhausted. Advisory only (another clone may claim it first) — the
  /// scan's read-ahead peeks here to warm the pool for whoever wins.
  int PeekNext() const {
    const int g = next_.load(std::memory_order_relaxed);
    return g < num_groups_ ? g : -1;
  }

  /// True for exactly one caller: that scan merges the PDT tail inserts.
  bool ClaimTail() {
    return !tail_claimed_.exchange(true, std::memory_order_acq_rel);
  }

  int num_groups() const { return num_groups_; }

  /// Groups handed out so far (monitoring / tests).
  int64_t handed() const {
    const int n = next_.load(std::memory_order_relaxed);
    return n < num_groups_ ? n : num_groups_;
  }

 private:
  const int num_groups_;
  std::atomic<int> next_{0};
  std::atomic<bool> tail_claimed_{false};
};

using MorselSourcePtr = std::shared_ptr<MorselSource>;

}  // namespace x100

#endif  // X100_STORAGE_MORSEL_H_
