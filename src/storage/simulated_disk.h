// SimulatedDisk: a block device with a configurable bandwidth model.
//
// Substitution note (see DESIGN.md §2): the paper's storage results
// (Cooperative Scans, compression keeping scans IO-balanced) depend on a
// bandwidth-limited device. This simulated device stores blocks in memory
// and charges `bytes / bandwidth` wall-clock time per read, serialized as
// on a single channel, with cancellation-interruptible waits. IO statistics
// feed the monitoring subsystem and experiments E3/E4/E9.
//
// It doubles as the default SpillDevice: spilled blocks live in RAM, which
// keeps unit tests hermetic but means "disk" is really memory — the
// file-backed device (storage/file_spill_device.h) is the real thing.
#ifndef X100_STORAGE_SIMULATED_DISK_H_
#define X100_STORAGE_SIMULATED_DISK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/config.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/block_device.h"
#include "storage/spill_device.h"

namespace x100 {

class SimulatedDisk : public BlockDevice, public SpillDevice {
 public:
  /// bandwidth_bytes_per_sec == 0 means infinite (pure memcpy).
  explicit SimulatedDisk(int64_t bandwidth_bytes_per_sec = 0)
      : bandwidth_(bandwidth_bytes_per_sec) {}

  /// Appends a block (any size up to kDiskBlockBytes); returns its id.
  /// Never fails (RAM-backed), but carries the BlockDevice contract's
  /// Result so callers handle the file-backed device identically.
  Result<BlockId> WriteBlock(std::vector<uint8_t> data) override {
    std::lock_guard<std::mutex> lock(mu_);
    blocks_.push_back(std::move(data));
    bytes_written_ += blocks_.back().size();
    return BlockId{blocks_.size() - 1};
  }

  /// Releases a block's storage (spill reclamation and checkpoint group
  /// retirement; this device keeps "disk" contents in RAM, so without a
  /// free path every spilling query would grow the process forever). Ids
  /// stay stable — freed slots are never reused — and a read of a freed
  /// block returns empty bytes, which callers reject as truncation.
  void FreeBlock(BlockId id) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (id < blocks_.size()) {
      bytes_freed_ += blocks_[id].size();
      std::vector<uint8_t>().swap(blocks_[id]);
    }
  }

  /// Reads a block. Charges simulated IO time; the wait is interruptible
  /// via `cancel` (may be nullptr). Returns a *copy* of the block bytes.
  Result<std::vector<uint8_t>> ReadBlock(
      BlockId id, CancellationToken* cancel = nullptr) override {
    std::vector<uint8_t> data;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (id >= blocks_.size()) {
        return Status::IoError("block " + std::to_string(id) +
                               " out of range");
      }
      data = blocks_[id];
    }
    X100_RETURN_IF_ERROR(ChargeIo(data.size(), cancel));
    blocks_read_.fetch_add(1, std::memory_order_relaxed);
    bytes_read_.fetch_add(data.size(), std::memory_order_relaxed);
    return data;
  }

  // SpillDevice: spill traffic rides the same block store and bandwidth
  // channel as table IO, with its own accounting (table blocks are never
  // freed, so spill hygiene must be measurable separately).
  Result<BlockId> WriteSpill(std::vector<uint8_t> data) override {
    const int64_t n = static_cast<int64_t>(data.size());
    BlockId id = 0;
    X100_ASSIGN_OR_RETURN(id, WriteBlock(std::move(data)));
    spill_written_.fetch_add(n, std::memory_order_relaxed);
    spill_in_use_.fetch_add(n, std::memory_order_relaxed);
    return id;
  }
  Result<std::vector<uint8_t>> ReadSpill(BlockId id,
                                         CancellationToken* cancel) override {
    auto data = ReadBlock(id, cancel);
    if (data.ok()) {
      spill_read_.fetch_add(static_cast<int64_t>(data->size()),
                            std::memory_order_relaxed);
    }
    return data;
  }
  void FreeSpill(BlockId id) override {
    int64_t n = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (id < blocks_.size()) n = static_cast<int64_t>(blocks_[id].size());
    }
    spill_in_use_.fetch_sub(n, std::memory_order_relaxed);
    FreeBlock(id);
  }
  int64_t spill_bytes_written() const override {
    return spill_written_.load(std::memory_order_relaxed);
  }
  int64_t spill_bytes_read() const override {
    return spill_read_.load(std::memory_order_relaxed);
  }
  int64_t spill_bytes_in_use() const override {
    return spill_in_use_.load(std::memory_order_relaxed);
  }

  int64_t blocks_read() const override { return blocks_read_.load(); }
  int64_t bytes_read() const override { return bytes_read_.load(); }
  int64_t bytes_written() const override { return bytes_written_; }
  int64_t bytes_freed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_freed_;
  }
  int64_t num_blocks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(blocks_.size());
  }

  void ResetStats() {
    blocks_read_.store(0);
    bytes_read_.store(0);
  }

  void set_bandwidth(int64_t bytes_per_sec) { bandwidth_ = bytes_per_sec; }
  int64_t bandwidth() const { return bandwidth_; }

 private:
  /// Single-channel bandwidth model: each read occupies the channel for
  /// size/bandwidth; concurrent readers queue behind `busy_until_`.
  Status ChargeIo(size_t bytes, CancellationToken* cancel) {
    const int64_t bw = bandwidth_;
    if (bw <= 0) return Status::OK();
    using Clock = std::chrono::steady_clock;
    const auto cost = std::chrono::nanoseconds(
        static_cast<int64_t>(1e9 * static_cast<double>(bytes) / bw));
    Clock::time_point wait_until;
    {
      std::lock_guard<std::mutex> lock(io_mu_);
      const auto now = Clock::now();
      if (busy_until_ < now) busy_until_ = now;
      busy_until_ += cost;
      wait_until = busy_until_;
    }
    const auto now = Clock::now();
    if (wait_until <= now) return Status::OK();
    const auto wait = wait_until - now;
    if (cancel != nullptr) return cancel->WaitFor(wait);
    std::this_thread::sleep_for(wait);
    return Status::OK();
  }

  mutable std::mutex mu_;
  std::vector<std::vector<uint8_t>> blocks_;
  int64_t bytes_written_ = 0;
  int64_t bytes_freed_ = 0;
  std::atomic<int64_t> spill_written_{0};
  std::atomic<int64_t> spill_read_{0};
  std::atomic<int64_t> spill_in_use_{0};

  std::mutex io_mu_;
  std::chrono::steady_clock::time_point busy_until_{};
  std::atomic<int64_t> blocks_read_{0};
  std::atomic<int64_t> bytes_read_{0};
  int64_t bandwidth_;
};

}  // namespace x100

#endif  // X100_STORAGE_SIMULATED_DISK_H_
