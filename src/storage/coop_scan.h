// Cooperative Scans — "bandwidth sharing by concurrent queries" [7].
//
// X100 scans are *order-insensitive*: a scan may receive table block-groups
// ("chunks") in any order. That freedom lets a scheduler coordinate
// concurrent scans so they share disk bandwidth instead of thrashing the
// buffer pool:
//
//  * SequentialScheduler (baseline, "normal" scans): every query walks the
//    table front-to-back through the LRU buffer pool. Staggered queries
//    each re-read the whole table.
//  * RelevanceScheduler (the Active Buffer Manager of [7]): each query is
//    first served chunks that are already cached and still relevant to it;
//    when a load is unavoidable, the chunk wanted by the *most* queries is
//    loaded, and the victim is the cached chunk wanted by the *fewest*.
//
// Experiment E4 runs N staggered scans under a bandwidth-limited disk and
// compares total IO volume and per-query latency across the two policies.
#ifndef X100_STORAGE_COOP_SCAN_H_
#define X100_STORAGE_COOP_SCAN_H_

#include <cstdint>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

namespace x100 {

/// Hands out table block-group ids to concurrent scans. Thread-safe.
class ScanScheduler {
 public:
  virtual ~ScanScheduler() = default;

  /// Registers a scan over groups [0, num_groups). Returns a query id.
  virtual int Register(int num_groups) = 0;

  /// Next group this query should process, or -1 when the scan is done.
  virtual int NextGroup(int qid) = 0;

  /// Deregisters (normal completion or cancellation).
  virtual void Unregister(int qid) = 0;

  /// Number of chunk loads the policy decided to perform (cache misses at
  /// chunk granularity).
  virtual int64_t chunk_loads() const = 0;

  virtual const char* name() const = 0;
};

/// Baseline: strict sequential delivery, sharing only via the LRU pool.
class SequentialScheduler : public ScanScheduler {
 public:
  int Register(int num_groups) override;
  int NextGroup(int qid) override;
  void Unregister(int qid) override;
  int64_t chunk_loads() const override;
  const char* name() const override { return "sequential-lru"; }

 private:
  struct QueryState {
    int next = 0;
    int num_groups = 0;
  };
  mutable std::mutex mu_;
  std::unordered_map<int, QueryState> queries_;
  std::set<int> cached_;  // groups assumed resident (shared estimate)
  int64_t loads_ = 0;
  int next_qid_ = 0;
  int cache_capacity_ = 0;

 public:
  /// capacity in groups for the load estimate (mirrors the buffer pool).
  explicit SequentialScheduler(int cache_capacity_groups)
      : cache_capacity_(cache_capacity_groups) {}
};

/// The Active Buffer Manager relevance policy of [7].
class RelevanceScheduler : public ScanScheduler {
 public:
  explicit RelevanceScheduler(int cache_capacity_groups)
      : capacity_(cache_capacity_groups) {}

  int Register(int num_groups) override;
  int NextGroup(int qid) override;
  void Unregister(int qid) override;
  int64_t chunk_loads() const override;
  const char* name() const override { return "cooperative-abm"; }

  /// Groups currently considered cached (for tests).
  std::vector<int> CachedGroups() const;

 private:
  int Interest(int g) const;  // #queries still needing g
  void Evict();

  mutable std::mutex mu_;
  int capacity_;
  std::unordered_map<int, std::set<int>> remaining_;  // qid -> needed groups
  std::set<int> cached_;
  int64_t loads_ = 0;
  int next_qid_ = 0;
};

}  // namespace x100

#endif  // X100_STORAGE_COOP_SCAN_H_
