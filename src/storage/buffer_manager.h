// BufferManager: a byte-budgeted LRU cache of device blocks with pin
// counting and single-flight reads.
//
// This is the "classic" buffer layer; the Cooperative Scans Active Buffer
// Manager (coop_scan.h) implements the chunk-level relevance policy from
// [7] on top of table block-groups and uses this cache only as its block
// store.
//
// Contract:
//  * Capacity is in BYTES (EngineConfig::buffer_pool_bytes), consistent
//    with spill/memory accounting everywhere else in the engine. Block
//    count was never the scarce resource — bytes are.
//  * Pinned blocks are immune to eviction. PinBlock returns an RAII Pin
//    whose destruction unpins; TableReader pins every block of the chunk
//    it is assembling, so the resident set can exceed the budget only by
//    that pinned working set: bytes_cached <= capacity + pinned_bytes,
//    always.
//  * Eviction is LRU over UNPINNED blocks only. A block enters the LRU
//    when its last pin drops; a newly-faulted block is installed pinned
//    (pin-during-insert), so a zero/tiny-capacity pool serves the caller
//    the block it just paid IO for instead of evicting it mid-hand-over.
//  * Reads are single-flight: concurrent misses on one block coalesce
//    onto one device IO; the rest wait on a condition variable and take
//    the loaded bytes (counted as single_flight_waits, not extra misses).
//  * Cached blocks are shared (shared_ptr) so eviction never invalidates
//    a reader already holding the data.
#ifndef X100_STORAGE_BUFFER_MANAGER_H_
#define X100_STORAGE_BUFFER_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "storage/block_device.h"

namespace x100 {

class BufferManager {
 public:
  /// RAII pin handle: while alive, the block cannot be evicted. Move-only;
  /// destruction (or Release) unpins. `data()` stays valid for the
  /// handle's lifetime even if the entry is invalidated underneath it.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& o) noexcept { *this = std::move(o); }
    Pin& operator=(Pin&& o) noexcept {
      Release();
      bm_ = o.bm_;
      id_ = o.id_;
      generation_ = o.generation_;
      data_ = std::move(o.data_);
      o.bm_ = nullptr;
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

    void Release() {
      if (bm_ != nullptr) bm_->Unpin(id_, generation_);
      bm_ = nullptr;
      data_.reset();
    }

    bool valid() const { return data_ != nullptr; }
    BlockId id() const { return id_; }
    const std::vector<uint8_t>& data() const { return *data_; }

   private:
    friend class BufferManager;
    Pin(BufferManager* bm, BlockId id, uint64_t generation,
        std::shared_ptr<const std::vector<uint8_t>> data)
        : bm_(bm), id_(id), generation_(generation), data_(std::move(data)) {}

    BufferManager* bm_ = nullptr;
    BlockId id_ = 0;
    uint64_t generation_ = 0;
    std::shared_ptr<const std::vector<uint8_t>> data_;
  };

  BufferManager(BlockDevice* device, int64_t capacity_bytes)
      : device_(device), capacity_bytes_(capacity_bytes) {}

  /// Faults the block in (single-flight) and returns it pinned.
  Result<Pin> PinBlock(BlockId id, CancellationToken* cancel = nullptr);

  /// Read-through without holding a pin: the returned shared_ptr keeps
  /// the bytes alive for this caller, but the entry is immediately
  /// evictable.
  Result<std::shared_ptr<const std::vector<uint8_t>>> GetBlock(
      BlockId id, CancellationToken* cancel = nullptr);

  bool Contains(BlockId id) const;

  /// Drops a block from the cache if present (checkpoint invalidation).
  /// Outstanding Pins keep their bytes alive and unpin harmlessly — the
  /// entry's generation tag makes a stale Unpin a no-op even if the id is
  /// reloaded afterwards.
  void Invalidate(BlockId id);

  /// Drops every unpinned entry; pinned entries stay (their bytes are in
  /// use).
  void Clear();

  /// Adjusts the byte budget; evicts immediately if shrinking.
  void set_capacity_bytes(int64_t bytes);

  // Atomic: monitors read these while concurrent scans fault blocks in.
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Misses that coalesced onto another thread's in-flight read.
  int64_t single_flight_waits() const {
    return single_flight_waits_.load(std::memory_order_relaxed);
  }

  int64_t capacity_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_bytes_;
  }
  int64_t bytes_cached() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_cached_;
  }
  int64_t pinned_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pinned_bytes_;
  }
  /// High-water marks; peak_bytes <= capacity + peak_pinned_bytes is the
  /// pool's core invariant (asserted by tests).
  int64_t peak_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_bytes_;
  }
  int64_t peak_pinned_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_pinned_bytes_;
  }
  int size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(cache_.size());
  }
  BlockDevice* device() { return device_; }

 private:
  struct Entry {
    std::shared_ptr<const std::vector<uint8_t>> data;
    int64_t bytes = 0;
    int pin_count = 0;
    uint64_t generation = 0;
    std::list<BlockId>::iterator lru_pos;  // valid only when pin_count == 0
  };

  /// One read in progress; later missers wait on `cv` instead of issuing
  /// their own device IO.
  struct Inflight {
    std::condition_variable cv;
    bool done = false;
    Status status = Status::OK();
    std::shared_ptr<const std::vector<uint8_t>> data;
    int waiters = 0;
  };

  void Unpin(BlockId id, uint64_t generation);
  void EvictLocked();
  Result<Pin> PinExistingLocked(BlockId id, Entry* e);

  BlockDevice* device_;
  mutable std::mutex mu_;
  int64_t capacity_bytes_;
  int64_t bytes_cached_ = 0;
  int64_t pinned_bytes_ = 0;
  int64_t peak_bytes_ = 0;
  int64_t peak_pinned_bytes_ = 0;
  uint64_t next_generation_ = 1;
  std::unordered_map<BlockId, Entry> cache_;
  std::unordered_map<BlockId, std::shared_ptr<Inflight>> inflight_;
  std::list<BlockId> lru_;  // unpinned entries only, MRU at front
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> single_flight_waits_{0};
};

}  // namespace x100

#endif  // X100_STORAGE_BUFFER_MANAGER_H_
