// BufferManager: a byte-budgeted LRU cache of device blocks with pin
// counting, single-flight reads and asynchronous read-ahead.
//
// This is the "classic" buffer layer; the Cooperative Scans Active Buffer
// Manager (coop_scan.h) implements the chunk-level relevance policy from
// [7] on top of table block-groups and uses this cache only as its block
// store.
//
// Contract:
//  * Capacity is in BYTES (EngineConfig::buffer_pool_bytes), consistent
//    with spill/memory accounting everywhere else in the engine. Block
//    count was never the scarce resource — bytes are.
//  * Pinned blocks are immune to eviction. PinBlock returns an RAII Pin
//    whose destruction unpins; TableReader pins every block of the chunk
//    it is assembling, so the resident set can exceed the budget only by
//    that pinned working set: bytes_cached <= capacity + pinned_bytes,
//    always.
//  * Eviction is LRU over UNPINNED blocks only. A block enters the LRU
//    when its last pin drops; a newly-faulted block is installed pinned
//    (pin-during-insert), so a zero/tiny-capacity pool serves the caller
//    the block it just paid IO for instead of evicting it mid-hand-over.
//  * Reads are single-flight: concurrent misses on one block coalesce
//    onto one device IO; the rest wait on a condition variable and take
//    the loaded bytes (counted as single_flight_waits, not extra misses).
//    The wait is woken by query cancellation through a token callback —
//    no timed polling.
//  * Cached blocks are shared (shared_ptr) so eviction never invalidates
//    a reader already holding the data.
//
// Read-ahead (docs/STORAGE.md §"Read-ahead"):
//  * Prefetch(id) schedules the device read as a background task on the
//    shared TaskScheduler and installs the block UNPINNED on completion.
//    A demand PinBlock arriving mid-read adopts the in-flight IO through
//    the ordinary single-flight path instead of duplicating it.
//  * Prefetched-but-unread blocks live in a capped slice of the pool
//    (prefetch_budget_bytes, default a quarter of the capacity). Anything
//    over the slice is evicted immediately (counted as wasted), so
//    read-ahead can never displace the demand working set by more than
//    its budget; under plain capacity pressure the used LRU is
//    victimized first — stale groups leave before the unread next group
//    the prefetch just paid for.
//  * A background IO error never crashes a worker: the Status is parked
//    on the block and surfaced by the FIRST demand read that actually
//    needs it (then cleared, so a retried demand read issues a fresh
//    device IO).
//  * Accounting invariant: prefetch_issued == prefetch_hits +
//    prefetch_wasted + prefetch_inflight, where in-flight covers both
//    pending reads and resident-but-unread blocks.
#ifndef X100_STORAGE_BUFFER_MANAGER_H_
#define X100_STORAGE_BUFFER_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "storage/block_device.h"

namespace x100 {

class TaskScheduler;  // common/task_scheduler.h

class BufferManager {
 public:
  /// RAII pin handle: while alive, the block cannot be evicted. Move-only;
  /// destruction (or Release) unpins. `data()` stays valid for the
  /// handle's lifetime even if the entry is invalidated underneath it.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& o) noexcept { *this = std::move(o); }
    Pin& operator=(Pin&& o) noexcept {
      Release();
      bm_ = o.bm_;
      id_ = o.id_;
      generation_ = o.generation_;
      data_ = std::move(o.data_);
      o.bm_ = nullptr;
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

    void Release() {
      if (bm_ != nullptr) bm_->Unpin(id_, generation_);
      bm_ = nullptr;
      data_.reset();
    }

    bool valid() const { return data_ != nullptr; }
    BlockId id() const { return id_; }
    const std::vector<uint8_t>& data() const { return *data_; }

   private:
    friend class BufferManager;
    Pin(BufferManager* bm, BlockId id, uint64_t generation,
        std::shared_ptr<const std::vector<uint8_t>> data)
        : bm_(bm), id_(id), generation_(generation), data_(std::move(data)) {}

    BufferManager* bm_ = nullptr;
    BlockId id_ = 0;
    uint64_t generation_ = 0;
    std::shared_ptr<const std::vector<uint8_t>> data_;
  };

  BufferManager(BlockDevice* device, int64_t capacity_bytes)
      : device_(device),
        capacity_bytes_(capacity_bytes),
        prefetch_budget_bytes_(capacity_bytes / 4) {}

  /// Waits for in-flight prefetch reads: a background task holds a raw
  /// pointer to this manager, so the manager must outlive it. The owning
  /// Database declares the buffer manager after its devices and
  /// scheduler, so both are still alive while the drain runs.
  ~BufferManager() { DrainPrefetches(); }

  /// Faults the block in (single-flight) and returns it pinned. Exactly
  /// one of hits/misses/single_flight_waits is counted per call.
  Result<Pin> PinBlock(BlockId id, CancellationToken* cancel = nullptr);

  /// Read-through without holding a pin: the returned shared_ptr keeps
  /// the bytes alive for this caller, but the entry is immediately
  /// evictable.
  Result<std::shared_ptr<const std::vector<uint8_t>>> GetBlock(
      BlockId id, CancellationToken* cancel = nullptr);

  /// Schedules a background read of `id` on `scheduler` (nullptr =
  /// TaskScheduler::Global()) and installs the block unpinned on
  /// completion. No-op when the block is resident, a read is already in
  /// flight, prefetch is disabled, or the read-ahead budget is full
  /// (refused prefetches are not counted as issued). Never blocks and
  /// never fails: a background IO error is parked for the next demand
  /// read of this block.
  void Prefetch(BlockId id, TaskScheduler* scheduler = nullptr);

  /// Blocks until no background prefetch read is pending (destructor and
  /// tests). Resident-but-unread blocks stay resident.
  void DrainPrefetches();

  bool Contains(BlockId id) const;

  /// Drops a block from the cache if present (checkpoint invalidation).
  /// Outstanding Pins keep their bytes alive and unpin harmlessly — the
  /// entry's generation tag makes a stale Unpin a no-op even if the id is
  /// reloaded afterwards.
  void Invalidate(BlockId id);

  /// Drops every unpinned entry; pinned entries stay (their bytes are in
  /// use).
  void Clear();

  /// Adjusts the byte budget; evicts immediately if shrinking.
  void set_capacity_bytes(int64_t bytes);

  /// Adjusts the read-ahead byte budget: the slice of the pool that
  /// prefetched-but-unread blocks (plus externally-charged read-ahead,
  /// see TryChargePrefetchBytes) may occupy. < 0 = auto (a quarter of
  /// the capacity); 0 disables prefetch. Shrinking evicts unread
  /// prefetched blocks immediately.
  void set_prefetch_budget_bytes(int64_t bytes);
  int64_t prefetch_budget_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return prefetch_budget_bytes_;
  }
  bool prefetch_enabled() const { return prefetch_budget_bytes() > 0; }

  /// Shares the read-ahead budget with prefetchers whose bytes do NOT
  /// live in this pool (the Grace pair streamer reading next-pair spill
  /// chunks ahead): returns true and charges `bytes` if they fit under
  /// the budget alongside the pool's own read-ahead. The caller must
  /// release exactly what it charged.
  bool TryChargePrefetchBytes(int64_t bytes);
  void ReleasePrefetchBytes(int64_t bytes);

  // Atomic: monitors read these while concurrent scans fault blocks in.
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Misses that coalesced onto another thread's in-flight read.
  int64_t single_flight_waits() const {
    return single_flight_waits_.load(std::memory_order_relaxed);
  }
  /// Read-ahead accounting. A prefetch is ISSUED when its background read
  /// is scheduled, becomes a HIT when a demand read consumes it (adopting
  /// the in-flight IO or touching the resident unread block), and is
  /// WASTED when it fails or is evicted/invalidated unread. Everything
  /// else — pending reads and resident-but-unread blocks — is IN FLIGHT:
  /// issued == hits + wasted + inflight at all times.
  int64_t prefetch_issued() const {
    return prefetch_issued_.load(std::memory_order_relaxed);
  }
  int64_t prefetch_hits() const {
    return prefetch_hits_.load(std::memory_order_relaxed);
  }
  int64_t prefetch_wasted() const {
    return prefetch_wasted_.load(std::memory_order_relaxed);
  }
  int64_t prefetch_inflight() const {
    return prefetch_issued() - prefetch_hits() - prefetch_wasted();
  }

  int64_t capacity_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_bytes_;
  }
  int64_t bytes_cached() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_cached_;
  }
  int64_t pinned_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pinned_bytes_;
  }
  /// High-water marks; peak_bytes <= capacity + peak_pinned_bytes is the
  /// pool's core invariant (asserted by tests).
  int64_t peak_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_bytes_;
  }
  int64_t peak_pinned_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_pinned_bytes_;
  }
  int size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(cache_.size());
  }
  BlockDevice* device() { return device_; }

 private:
  struct Entry {
    std::shared_ptr<const std::vector<uint8_t>> data;
    int64_t bytes = 0;
    int pin_count = 0;
    uint64_t generation = 0;
    /// Landed via prefetch and not yet demanded: lives in prefetch_lru_
    /// (evicted before anything in lru_) until the first pin clears it.
    bool prefetched = false;
    /// Into lru_ or prefetch_lru_ (see `prefetched`); valid only when
    /// pin_count == 0.
    std::list<BlockId>::iterator lru_pos;
  };

  /// One read in progress; later missers wait on `cv` instead of issuing
  /// their own device IO.
  struct Inflight {
    std::condition_variable cv;
    bool done = false;
    Status status = Status::OK();
    std::shared_ptr<const std::vector<uint8_t>> data;
    int waiters = 0;
    /// The read was issued by Prefetch (background, no cancellation
    /// token); its completion classifies the prefetch hit/wasted.
    bool prefetch = false;
    /// Read ownership taken (by the background task when it starts, or by
    /// a demand PinBlock that arrives first). A demand read must NEVER
    /// block on a merely-queued background task: the scheduler's workers
    /// may all be stuck in that very wait, and the queued read would then
    /// never run — so the demand thread claims the unstarted read and
    /// performs the IO itself.
    bool claimed = false;
  };

  void Unpin(BlockId id, uint64_t generation);
  void EvictLocked();
  Result<Pin> PinExistingLocked(BlockId id, Entry* e);
  Result<Pin> InstallPinnedLocked(
      BlockId id, std::shared_ptr<const std::vector<uint8_t>> data);
  /// Waiter epilogue after the in-flight read settled (or the wait was
  /// cancelled): returns the pin, the loader's error, or kCancelled.
  Result<Pin> FinishWaitLocked(BlockId id, Inflight* inf,
                               CancellationToken* cancel);
  /// Pending + resident-unread + externally charged read-ahead bytes.
  int64_t PrefetchChargedBytesLocked() const {
    return prefetch_pending_bytes_ + prefetch_unread_bytes_ +
           prefetch_external_bytes_;
  }
  /// Processes one queued prefetch: claim-check, device read, install.
  void RunPrefetch(BlockId id, std::shared_ptr<Inflight> inf);
  /// The single background task draining prefetch_queue_ FIFO. One pump
  /// (not one task per block) keeps the device's serial channel serving
  /// reads in ISSUE order — per-block tasks race for the channel and a
  /// far-ahead block can reserve it before the block the scan demands
  /// next, turning the read-ahead win into a priority inversion.
  void RunPrefetchPump();

  BlockDevice* device_;
  mutable std::mutex mu_;
  int64_t capacity_bytes_;
  int64_t bytes_cached_ = 0;
  int64_t pinned_bytes_ = 0;
  int64_t peak_bytes_ = 0;
  int64_t peak_pinned_bytes_ = 0;
  uint64_t next_generation_ = 1;
  std::unordered_map<BlockId, Entry> cache_;
  std::unordered_map<BlockId, std::shared_ptr<Inflight>> inflight_;
  std::list<BlockId> lru_;  // unpinned entries only, MRU at front
  /// Prefetched-but-unread entries, MRU at front — evicted before lru_.
  std::list<BlockId> prefetch_lru_;
  /// Background read failures awaiting their first demand read.
  std::unordered_map<BlockId, Status> parked_errors_;
  int64_t prefetch_budget_bytes_;
  int64_t prefetch_pending_bytes_ = 0;   // estimated, kDiskBlockBytes each
  int64_t prefetch_unread_bytes_ = 0;    // resident prefetched entries
  int64_t prefetch_external_bytes_ = 0;  // TryChargePrefetchBytes
  int pending_prefetch_tasks_ = 0;
  /// Accepted prefetches awaiting the pump, oldest (= wanted soonest)
  /// first.
  std::deque<std::pair<BlockId, std::shared_ptr<Inflight>>> prefetch_queue_;
  bool prefetch_pump_running_ = false;
  std::condition_variable prefetch_drained_cv_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> single_flight_waits_{0};
  std::atomic<int64_t> prefetch_issued_{0};
  std::atomic<int64_t> prefetch_hits_{0};
  std::atomic<int64_t> prefetch_wasted_{0};
};

}  // namespace x100

#endif  // X100_STORAGE_BUFFER_MANAGER_H_
