// BufferManager: an LRU cache of disk blocks with pin counting.
//
// This is the "classic" buffer layer; the Cooperative Scans Active Buffer
// Manager (coop_scan.h) implements the chunk-level relevance policy from
// [7] on top of table block-groups and uses this cache only as its block
// store.
#ifndef X100_STORAGE_BUFFER_MANAGER_H_
#define X100_STORAGE_BUFFER_MANAGER_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "storage/simulated_disk.h"

namespace x100 {

class BufferManager {
 public:
  BufferManager(SimulatedDisk* disk, int capacity_blocks)
      : disk_(disk), capacity_(capacity_blocks) {}

  /// Returns the block's bytes, reading through the cache. Cached blocks
  /// are shared (shared_ptr) so eviction never invalidates readers.
  Result<std::shared_ptr<const std::vector<uint8_t>>> GetBlock(
      BlockId id, CancellationToken* cancel = nullptr) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = cache_.find(id);
      if (it != cache_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        Touch(id);
        return it->second.data;
      }
      misses_.fetch_add(1, std::memory_order_relaxed);
    }
    // Read outside the lock: the simulated IO wait must not block hits.
    auto read = disk_->ReadBlock(id, cancel);
    if (!read.ok()) return read.status();
    auto data = std::make_shared<const std::vector<uint8_t>>(
        std::move(read).value());
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = cache_.try_emplace(id);
    if (inserted) {
      it->second.data = data;
      lru_.push_front(id);
      it->second.lru_pos = lru_.begin();
      EvictIfNeeded();
    }
    return it->second.data;
  }

  bool Contains(BlockId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.count(id) != 0;
  }

  /// Drops a block from the cache if present (checkpoint invalidation).
  void Invalidate(BlockId id) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(id);
    if (it == cache_.end()) return;
    lru_.erase(it->second.lru_pos);
    cache_.erase(it);
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
    lru_.clear();
  }

  // Atomic: monitors read these while concurrent scans fault blocks in.
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  int size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(cache_.size());
  }
  int capacity() const { return capacity_; }
  SimulatedDisk* disk() { return disk_; }

 private:
  struct Entry {
    std::shared_ptr<const std::vector<uint8_t>> data;
    std::list<BlockId>::iterator lru_pos;
  };

  void Touch(BlockId id) {
    auto it = cache_.find(id);
    lru_.erase(it->second.lru_pos);
    lru_.push_front(id);
    it->second.lru_pos = lru_.begin();
  }

  void EvictIfNeeded() {
    while (static_cast<int>(cache_.size()) > capacity_ && !lru_.empty()) {
      const BlockId victim = lru_.back();
      lru_.pop_back();
      cache_.erase(victim);
    }
  }

  SimulatedDisk* disk_;
  int capacity_;
  mutable std::mutex mu_;
  std::unordered_map<BlockId, Entry> cache_;
  std::list<BlockId> lru_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

}  // namespace x100

#endif  // X100_STORAGE_BUFFER_MANAGER_H_
