// Columnar table storage with hybrid PAX/DSM layout — paper §1:
// "research focus shifted to storage, leading to novel compression schemes
// (e.g. PFOR), hybrid PAX/DSM storage, and bandwidth sharing by concurrent
// queries".
//
// A table is a sequence of *block groups* of kBlockGroupRows rows. Each
// column of a group is compressed into a self-describing chunk
// (compression/codec.h) and placed on the simulated disk:
//
//  * DSM layout: every column chunk gets its own block run — scanning a
//    column subset reads only those columns' bytes.
//  * PAX layout: all chunks of a group share one block run (columns
//    interleaved within the same blocks) — one IO serves every column of
//    the group, but a narrow scan still pays for the full group region.
//
// Every numeric/date chunk carries a sparse MinMax index used for scan
// range pushdown; nullable columns store the paper's two-column NULL
// representation on disk as well (value chunk + RLE-friendly indicator
// chunk).
//
// Rows are addressed by SID (stable id, position in the immutable stored
// image); PDTs (pdt/) map SIDs to current RIDs under updates.
#ifndef X100_STORAGE_TABLE_H_
#define X100_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/result.h"
#include "common/value.h"
#include "compression/codec.h"
#include "storage/block_device.h"
#include "storage/buffer_manager.h"
#include "vector/batch.h"
#include "vector/schema.h"

namespace x100 {

enum class Layout : uint8_t { kDsm, kPax };

/// Location of a column chunk's compressed bytes.
struct ChunkLoc {
  std::vector<BlockId> blocks;  // DSM: dedicated run. PAX: empty.
  uint64_t offset = 0;          // PAX: byte offset in the group region
  uint64_t length = 0;          // compressed length in bytes
};

/// Per-chunk metadata: location, optional MinMax, optional null chunk.
struct ColumnChunkMeta {
  ChunkLoc loc;
  // Sparse MinMax index (numeric + date columns, over non-NULL values).
  bool has_min_max = false;
  int64_t imin = 0, imax = 0;  // integer/date domain
  double dmin = 0, dmax = 0;   // f64 domain
  // NULL indicator chunk (two-column representation on disk).
  bool has_nulls = false;
  ChunkLoc null_loc;
};

struct GroupMeta {
  int64_t first_sid = 0;
  uint32_t rows = 0;
  std::vector<BlockId> pax_blocks;  // PAX: the shared group region
  std::vector<ColumnChunkMeta> cols;
};

/// Comparison shapes supported by MinMax pushdown.
enum class RangeOp { kEq, kLt, kLe, kGt, kGe };

/// An immutable stored table image. Updates are layered on top by PDTs.
class Table {
 public:
  Table(std::string name, Schema schema, Layout layout, BlockDevice* device)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        layout_(layout),
        device_(device) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  Layout layout() const { return layout_; }
  int64_t num_rows() const { return num_rows_; }
  int num_groups() const { return static_cast<int>(groups_.size()); }
  const GroupMeta& group(int g) const { return groups_[g]; }
  BlockDevice* device() const { return device_; }

  /// Rebuilds a table image from catalog metadata — the groups were
  /// placed on `device` by an earlier process; no data IO happens here.
  static std::unique_ptr<Table> Restore(std::string name, Schema schema,
                                        Layout layout, BlockDevice* device,
                                        std::vector<GroupMeta> groups,
                                        int64_t num_rows) {
    auto t = std::make_unique<Table>(std::move(name), std::move(schema),
                                     layout, device);
    t->groups_ = std::move(groups);
    t->num_rows_ = num_rows;
    return t;
  }

  /// Every block id group `g` references (PAX region or DSM runs + null
  /// chunks) — checkpoint retirement and catalog restore both need this.
  static void AppendGroupBlockIds(const GroupMeta& gm,
                                  std::vector<BlockId>* out) {
    out->insert(out->end(), gm.pax_blocks.begin(), gm.pax_blocks.end());
    for (const ColumnChunkMeta& c : gm.cols) {
      out->insert(out->end(), c.loc.blocks.begin(), c.loc.blocks.end());
      out->insert(out->end(), c.null_loc.blocks.begin(),
                  c.null_loc.blocks.end());
    }
  }

  /// All live block ids of the table.
  std::vector<BlockId> CollectBlockIds() const {
    std::vector<BlockId> out;
    for (const GroupMeta& g : groups_) AppendGroupBlockIds(g, &out);
    return out;
  }

  /// MinMax pushdown: can group `g` contain rows with `col OP value`?
  /// Conservative (true when unknown / non-numeric / NULL-bearing check).
  bool GroupMayMatch(int g, int col, RangeOp op, const Value& v) const;

  /// Total compressed bytes of the table on disk.
  int64_t compressed_bytes() const;

 private:
  friend class TableBuilder;
  std::string name_;
  Schema schema_;
  Layout layout_;
  BlockDevice* device_;
  std::vector<GroupMeta> groups_;
  int64_t num_rows_ = 0;
};

/// Builds a table group-by-group: stage rows, compress, place on device.
/// If the builder is destroyed without Finish() (a failed build or an
/// aborted checkpoint), every block it wrote is freed — a durable device
/// must not accrete orphan slots from unwound work.
class TableBuilder {
 public:
  /// group_rows lets tests use small groups; 0 = kBlockGroupRows.
  TableBuilder(std::string name, Schema schema, Layout layout,
               BlockDevice* device, int64_t group_rows = 0);
  ~TableBuilder();

  /// Appends one row; `row` must match the schema (Value::Null for NULLs in
  /// nullable columns).
  Status AppendRow(const std::vector<Value>& row);

  /// Appends all live rows of a batch.
  Status AppendBatch(const Batch& batch);

  /// Flushes staged rows as a (possibly short) group now. Checkpoints use
  /// this to close a rewritten group at the original group boundary so
  /// clean groups on either side keep their SID ranges.
  Status Flush() { return FlushGroup(); }

  /// Adopts an already-stored group verbatim (block reuse): the group's
  /// blocks stay where they are, only the metadata is appended with
  /// first_sid rebased to the current row count. Staged rows are flushed
  /// first so ordering is preserved.
  Status AppendStoredGroup(const GroupMeta& gm);

  /// Flushes the final partial group and returns the table.
  Result<std::unique_ptr<Table>> Finish();

  /// Blocks newly written by this builder so far (excludes blocks adopted
  /// via AppendStoredGroup — those belong to the old image).
  const std::vector<BlockId>& blocks_written() const {
    return blocks_written_;
  }

 private:
  struct Staging;
  Status FlushGroup();

  std::unique_ptr<Table> table_;
  int64_t group_rows_;
  std::unique_ptr<Staging> staging_;
  std::vector<BlockId> blocks_written_;
  bool finished_ = false;
};

/// Reads one group's columns, decompressing through the buffer manager.
class TableReader {
 public:
  TableReader(const Table* table, BufferManager* buffers)
      : table_(table), buffers_(buffers) {}

  /// Decompresses column `col` of group `g` into `out` (and null flags into
  /// `nulls`, which may be nullptr for non-nullable columns). `out` must
  /// hold group(g).rows values; strings are materialized into `heap`.
  Status ReadColumn(int g, int col, void* out, uint8_t* nulls,
                    StringHeap* heap, CancellationToken* cancel = nullptr);

  const Table* table() const { return table_; }

 private:
  Result<std::vector<uint8_t>> ReadChunkBytes(const GroupMeta& gm,
                                              const ChunkLoc& loc,
                                              CancellationToken* cancel);

  const Table* table_;
  BufferManager* buffers_;
};

}  // namespace x100

#endif  // X100_STORAGE_TABLE_H_
