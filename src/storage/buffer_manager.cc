#include "storage/buffer_manager.h"

#include "common/config.h"
#include "common/task_scheduler.h"

namespace x100 {

Result<BufferManager::Pin> BufferManager::PinExistingLocked(BlockId id,
                                                            Entry* e) {
  if (e->pin_count == 0) {
    if (e->prefetched) {
      // First demand touch of a read-ahead block: leave the sacrificial
      // LRU, become a normal cached block.
      prefetch_lru_.erase(e->lru_pos);
      prefetch_unread_bytes_ -= e->bytes;
      e->prefetched = false;
      prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      lru_.erase(e->lru_pos);
    }
    pinned_bytes_ += e->bytes;
    if (pinned_bytes_ > peak_pinned_bytes_) peak_pinned_bytes_ = pinned_bytes_;
  }
  e->pin_count++;
  return Pin(this, id, e->generation, e->data);
}

Result<BufferManager::Pin> BufferManager::InstallPinnedLocked(
    BlockId id, std::shared_ptr<const std::vector<uint8_t>> data) {
  // Pin-during-insert: install the entry already pinned so EvictLocked
  // cannot choose the block this caller just paid IO for — the old code
  // could evict its own insert on tiny pools and then dereference the
  // erased entry.
  Entry e;
  e.data = std::move(data);
  e.bytes = static_cast<int64_t>(e.data->size());
  e.pin_count = 1;
  e.generation = next_generation_++;
  bytes_cached_ += e.bytes;
  pinned_bytes_ += e.bytes;
  if (bytes_cached_ > peak_bytes_) peak_bytes_ = bytes_cached_;
  if (pinned_bytes_ > peak_pinned_bytes_) peak_pinned_bytes_ = pinned_bytes_;
  auto [nit, ok] = cache_.emplace(id, std::move(e));
  (void)ok;
  Pin pin(this, id, nit->second.generation, nit->second.data);
  EvictLocked();  // the new entry is pinned, so it cannot be a victim
  return pin;
}

Result<BufferManager::Pin> BufferManager::FinishWaitLocked(
    BlockId id, Inflight* inf, CancellationToken* cancel) {
  inf->waiters--;
  if (!inf->done) {
    // Woken by the cancellation callback, not by the loader.
    const Status s = cancel != nullptr ? cancel->Check() : Status::OK();
    return s.ok() ? Status::Cancelled("query cancelled") : s;
  }
  if (!inf->status.ok()) return inf->status;
  // The loader installed the block, but a tiny pool may already have
  // evicted it between install and this wake-up. Re-check the cache; if
  // gone, install the loader's bytes ourselves — never re-read.
  auto again = cache_.find(id);
  if (again != cache_.end()) return PinExistingLocked(id, &again->second);
  return InstallPinnedLocked(id, inf->data);
}

Result<BufferManager::Pin> BufferManager::PinBlock(BlockId id,
                                                   CancellationToken* cancel) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return PinExistingLocked(id, &it->second);
  }
  // A background prefetch of this block failed earlier: this demand read
  // is the first to actually need it, so it takes the parked Status. The
  // error is consumed — a retry issues a fresh device read below.
  auto parked = parked_errors_.find(id);
  if (parked != parked_errors_.end()) {
    const Status s = parked->second;
    parked_errors_.erase(parked);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return s;
  }
  std::shared_ptr<Inflight> inf;
  auto inf_it = inflight_.find(id);
  if (inf_it != inflight_.end()) {
    inf = inf_it->second;
    if (!inf->prefetch || inf->claimed) {
      // Single flight: a read of this block is genuinely in progress on
      // another thread — wait for its IO instead of issuing a duplicate.
      single_flight_waits_.fetch_add(1, std::memory_order_relaxed);
      inf->waiters++;
      int cb = -1;
      if (cancel != nullptr) {
        // Registered OUTSIDE mu_: the callback takes mu_ (and
        // AddCallback runs it inline when the token is already
        // cancelled).
        lock.unlock();
        cb = cancel->AddCallback([this, inf] {
          std::lock_guard<std::mutex> l(mu_);
          inf->cv.notify_all();
        });
        lock.lock();
      }
      inf->cv.wait(lock, [&] {
        return inf->done || (cancel != nullptr && cancel->IsCancelled());
      });
      Result<Pin> result = FinishWaitLocked(id, inf.get(), cancel);
      lock.unlock();
      // RemoveCallback waits for in-flight callbacks, which take mu_ —
      // must not hold it here.
      if (cb >= 0) cancel->RemoveCallback(cb);
      return result;
    }
    // A QUEUED background read nobody has started: claim it and do the
    // IO on this thread (see Inflight::claimed — blocking on a queued
    // task can deadlock when every pool worker is parked in that very
    // wait). The background task sees the claim and stands down.
    inf->claimed = true;
    misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Miss with no read in flight: this thread becomes the loader.
    misses_.fetch_add(1, std::memory_order_relaxed);
    inf = std::make_shared<Inflight>();
    inf->claimed = true;
    inflight_.emplace(id, inf);
  }
  lock.unlock();
  // Device IO outside the lock: the (simulated or real) wait must not
  // block cache hits on other blocks.
  auto read = device_->ReadBlock(id, cancel);
  lock.lock();
  auto self = inflight_.find(id);
  if (self != inflight_.end() && self->second == inf) inflight_.erase(self);
  if (!read.ok()) {
    inf->done = true;
    inf->status = read.status();
    inf->cv.notify_all();
    return read.status();
  }
  auto data =
      std::make_shared<const std::vector<uint8_t>>(std::move(read).value());
  inf->done = true;
  inf->data = data;
  inf->cv.notify_all();
  // While our IO ran, a waiter parked on a PREVIOUS in-flight read of
  // this id may have re-installed the block (its re-install path checks
  // only the cache, not inflight_). Installing over it would double-count
  // bytes_cached_/pinned_bytes_ and return a pin that never incremented
  // the live entry's count — adopt the existing entry instead.
  auto again = cache_.find(id);
  if (again != cache_.end()) return PinExistingLocked(id, &again->second);
  return InstallPinnedLocked(id, std::move(data));
}

Result<std::shared_ptr<const std::vector<uint8_t>>> BufferManager::GetBlock(
    BlockId id, CancellationToken* cancel) {
  Pin pin;
  X100_ASSIGN_OR_RETURN(pin, PinBlock(id, cancel));
  std::shared_ptr<const std::vector<uint8_t>> data(
      pin.data_);  // keeps the bytes alive past the unpin below
  pin.Release();
  return data;
}

void BufferManager::Prefetch(BlockId id, TaskScheduler* scheduler) {
  std::shared_ptr<Inflight> inf;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (prefetch_budget_bytes_ <= 0) return;     // disabled
    if (cache_.count(id) != 0) return;           // already resident
    if (inflight_.count(id) != 0) return;        // read already in flight
    if (parked_errors_.count(id) != 0) return;   // awaiting a demand read
    // Budget the read-ahead window up front, estimating one device block
    // per pending read (the exact size is known only after the IO). A
    // refused prefetch is NOT counted as issued — it simply never
    // happened; the demand read will fault the block synchronously.
    if (PrefetchChargedBytesLocked() + kDiskBlockBytes >
        prefetch_budget_bytes_) {
      return;
    }
    prefetch_issued_.fetch_add(1, std::memory_order_relaxed);
    prefetch_pending_bytes_ += kDiskBlockBytes;
    pending_prefetch_tasks_++;
    inf = std::make_shared<Inflight>();
    inf->prefetch = true;
    inflight_.emplace(id, inf);
    prefetch_queue_.emplace_back(id, inf);
    if (prefetch_pump_running_) return;  // the pump will reach it
    prefetch_pump_running_ = true;
  }
  TaskScheduler* sched =
      scheduler != nullptr ? scheduler : TaskScheduler::Global();
  sched->Submit([this] { RunPrefetchPump(); });
}

void BufferManager::RunPrefetchPump() {
  for (;;) {
    BlockId id;
    std::shared_ptr<Inflight> inf;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (prefetch_queue_.empty()) {
        prefetch_pump_running_ = false;
        // DrainPrefetches (and ~BufferManager) wait for the pump itself,
        // not just for zero pending reads — the pump still touches this
        // object after the last read's accounting lands.
        prefetch_drained_cv_.notify_all();
        return;
      }
      id = prefetch_queue_.front().first;
      inf = std::move(prefetch_queue_.front().second);
      prefetch_queue_.pop_front();
    }
    RunPrefetch(id, std::move(inf));
  }
}

void BufferManager::RunPrefetch(BlockId id, std::shared_ptr<Inflight> inf) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (inf->claimed) {
      // A demand PinBlock got here first and took the read over (see
      // Inflight::claimed). The prefetch predicted a block that was
      // demanded — count the hit; the demand path does the rest.
      prefetch_pending_bytes_ -= kDiskBlockBytes;
      prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
      pending_prefetch_tasks_--;
      if (pending_prefetch_tasks_ == 0) prefetch_drained_cv_.notify_all();
      return;
    }
    inf->claimed = true;
  }
  // No cancellation token: the read-ahead belongs to no single query, and
  // a parked kCancelled would poison an unrelated query's later demand
  // read of this block.
  auto read = device_->ReadBlock(id, nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  auto self = inflight_.find(id);
  if (self != inflight_.end() && self->second == inf) inflight_.erase(self);
  prefetch_pending_bytes_ -= kDiskBlockBytes;
  // A demand PinBlock arrived mid-read and is parked on the CV: it adopts
  // this IO's outcome directly, so the prefetch was useful (or its error
  // is surfaced right now rather than parked).
  const bool demanded = inf->waiters > 0;
  if (!read.ok()) {
    inf->done = true;
    inf->status = read.status();
    inf->cv.notify_all();
    prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
    if (!demanded) parked_errors_[id] = read.status();
  } else {
    auto data =
        std::make_shared<const std::vector<uint8_t>>(std::move(read).value());
    const int64_t bytes = static_cast<int64_t>(data->size());
    inf->done = true;
    inf->data = data;
    inf->cv.notify_all();
    if (demanded) {
      // The waiters install (pinned) from inf->data themselves; installing
      // an unpinned entry here could be evicted by a tiny pool before they
      // wake, forcing them down the re-install path anyway.
      prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
    } else if (cache_.find(id) == cache_.end()) {
      Entry e;
      e.data = std::move(data);
      e.bytes = bytes;
      e.generation = next_generation_++;
      e.prefetched = true;
      bytes_cached_ += bytes;
      if (bytes_cached_ > peak_bytes_) peak_bytes_ = bytes_cached_;
      auto [nit, ok] = cache_.emplace(id, std::move(e));
      (void)ok;
      prefetch_lru_.push_front(id);
      nit->second.lru_pos = prefetch_lru_.begin();
      prefetch_unread_bytes_ += bytes;
      EvictLocked();
    } else {
      // A waiter from an older in-flight read re-installed the id while
      // our IO ran; the bytes we read are redundant.
      prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  pending_prefetch_tasks_--;
  if (pending_prefetch_tasks_ == 0) prefetch_drained_cv_.notify_all();
}

void BufferManager::DrainPrefetches() {
  std::unique_lock<std::mutex> lock(mu_);
  prefetch_drained_cv_.wait(lock, [&] {
    return pending_prefetch_tasks_ == 0 && !prefetch_pump_running_;
  });
}

void BufferManager::Unpin(BlockId id, uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(id);
  // Generation mismatch: the entry this pin referred to was invalidated
  // (and possibly the id reloaded as a NEW entry) — a stale unpin must
  // not touch the newer entry's pin count.
  if (it == cache_.end() || it->second.generation != generation) return;
  Entry& e = it->second;
  e.pin_count--;
  if (e.pin_count == 0) {
    pinned_bytes_ -= e.bytes;
    lru_.push_front(id);
    e.lru_pos = lru_.begin();
    EvictLocked();  // the pool may have been over budget on pins alone
  }
}

void BufferManager::EvictLocked() {
  const auto evict_prefetched = [this] {
    const BlockId victim = prefetch_lru_.back();
    prefetch_lru_.pop_back();
    auto it = cache_.find(victim);
    bytes_cached_ -= it->second.bytes;
    prefetch_unread_bytes_ -= it->second.bytes;
    cache_.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
  };
  // Slice cap first: unread read-ahead beyond its budget is shed
  // immediately (and counts as wasted), so prefetch can never displace
  // the demand working set by more than its configured slice.
  while (!prefetch_lru_.empty() &&
         prefetch_unread_bytes_ > prefetch_budget_bytes_) {
    evict_prefetched();
  }
  // Capacity pressure victimizes the regular LRU before the read-ahead
  // slice: a cold sequential scan keeps its pool full of already-decoded
  // stale groups, and evicting the unread NEXT group ahead of those would
  // throw away exactly the IO the prefetch just paid for. Unread blocks
  // go only when no used unpinned block remains.
  while (bytes_cached_ > capacity_bytes_) {
    if (!lru_.empty()) {
      const BlockId victim = lru_.back();
      lru_.pop_back();
      auto it = cache_.find(victim);
      bytes_cached_ -= it->second.bytes;
      cache_.erase(it);
      evictions_.fetch_add(1, std::memory_order_relaxed);
    } else if (!prefetch_lru_.empty()) {
      evict_prefetched();
    } else {
      break;  // everything resident is pinned
    }
  }
}

bool BufferManager::Contains(BlockId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.count(id) != 0;
}

void BufferManager::Invalidate(BlockId id) {
  std::lock_guard<std::mutex> lock(mu_);
  parked_errors_.erase(id);
  auto it = cache_.find(id);
  if (it == cache_.end()) return;
  Entry& e = it->second;
  if (e.pin_count == 0) {
    if (e.prefetched) {
      prefetch_lru_.erase(e.lru_pos);
      prefetch_unread_bytes_ -= e.bytes;
      prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
    } else {
      lru_.erase(e.lru_pos);
    }
  } else {
    // Outstanding pins keep their shared_ptr bytes; their later Unpins
    // miss the generation and no-op, so settle the accounting here.
    pinned_bytes_ -= e.bytes;
  }
  bytes_cached_ -= e.bytes;
  cache_.erase(it);
}

void BufferManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  parked_errors_.clear();
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->second.pin_count > 0) {
      ++it;
      continue;
    }
    if (it->second.prefetched) {
      prefetch_lru_.erase(it->second.lru_pos);
      prefetch_unread_bytes_ -= it->second.bytes;
      prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
    } else {
      lru_.erase(it->second.lru_pos);
    }
    bytes_cached_ -= it->second.bytes;
    it = cache_.erase(it);
  }
}

void BufferManager::set_capacity_bytes(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_bytes_ = bytes;
  EvictLocked();
}

void BufferManager::set_prefetch_budget_bytes(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  prefetch_budget_bytes_ = bytes < 0 ? capacity_bytes_ / 4 : bytes;
  EvictLocked();
}

bool BufferManager::TryChargePrefetchBytes(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (prefetch_budget_bytes_ <= 0 || bytes < 0) return false;
  if (PrefetchChargedBytesLocked() + bytes > prefetch_budget_bytes_) {
    return false;
  }
  prefetch_external_bytes_ += bytes;
  return true;
}

void BufferManager::ReleasePrefetchBytes(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  prefetch_external_bytes_ -= bytes;
  if (prefetch_external_bytes_ < 0) prefetch_external_bytes_ = 0;
}

}  // namespace x100
