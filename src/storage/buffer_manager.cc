#include "storage/buffer_manager.h"

#include <chrono>

namespace x100 {

Result<BufferManager::Pin> BufferManager::PinExistingLocked(BlockId id,
                                                            Entry* e) {
  if (e->pin_count == 0) {
    lru_.erase(e->lru_pos);
    pinned_bytes_ += e->bytes;
    if (pinned_bytes_ > peak_pinned_bytes_) peak_pinned_bytes_ = pinned_bytes_;
  }
  e->pin_count++;
  return Pin(this, id, e->generation, e->data);
}

Result<BufferManager::Pin> BufferManager::PinBlock(BlockId id,
                                                   CancellationToken* cancel) {
  bool counted = false;  // hit/miss/wait: once per caller, not per loop
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = cache_.find(id);
    if (it != cache_.end()) {
      if (!counted) hits_.fetch_add(1, std::memory_order_relaxed);
      return PinExistingLocked(id, &it->second);
    }
    auto inf_it = inflight_.find(id);
    if (inf_it != inflight_.end()) {
      // Single flight: another thread is already reading this block —
      // wait for its IO instead of issuing a duplicate one.
      if (!counted) {
        single_flight_waits_.fetch_add(1, std::memory_order_relaxed);
        counted = true;
      }
      std::shared_ptr<Inflight> inf = inf_it->second;
      inf->waiters++;
      while (!inf->done) {
        if (cancel != nullptr) {
          const Status s = cancel->Check();
          if (!s.ok()) {
            inf->waiters--;
            return s;
          }
        }
        inf->cv.wait_for(lock, std::chrono::milliseconds(10));
      }
      inf->waiters--;
      if (!inf->status.ok()) return inf->status;
      // The loader installed the block, but a tiny pool may already have
      // evicted it between install and this wake-up. Re-check the cache;
      // if gone, install the loader's bytes ourselves — never re-read.
      auto again = cache_.find(id);
      if (again != cache_.end()) return PinExistingLocked(id, &again->second);
      Entry e;
      e.data = inf->data;
      e.bytes = static_cast<int64_t>(inf->data->size());
      e.pin_count = 1;
      e.generation = next_generation_++;
      bytes_cached_ += e.bytes;
      pinned_bytes_ += e.bytes;
      if (bytes_cached_ > peak_bytes_) peak_bytes_ = bytes_cached_;
      if (pinned_bytes_ > peak_pinned_bytes_)
        peak_pinned_bytes_ = pinned_bytes_;
      auto [nit, ok] = cache_.emplace(id, std::move(e));
      (void)ok;
      Pin pin(this, id, nit->second.generation, nit->second.data);
      EvictLocked();  // the new entry is pinned, so it cannot be a victim
      return pin;
    }
    // Miss with no read in flight: this thread becomes the loader.
    if (!counted) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      counted = true;
    }
    auto inf = std::make_shared<Inflight>();
    inflight_.emplace(id, inf);
    lock.unlock();
    // Device IO outside the lock: the (simulated or real) wait must not
    // block cache hits on other blocks.
    auto read = device_->ReadBlock(id, cancel);
    lock.lock();
    inflight_.erase(id);
    if (!read.ok()) {
      inf->done = true;
      inf->status = read.status();
      inf->cv.notify_all();
      return read.status();
    }
    auto data = std::make_shared<const std::vector<uint8_t>>(
        std::move(read).value());
    inf->done = true;
    inf->data = data;
    inf->cv.notify_all();
    // While our IO ran, a waiter parked on a PREVIOUS in-flight read of
    // this id may have re-installed the block (its re-install path checks
    // only the cache, not inflight_). Installing over it would double-
    // count bytes_cached_/pinned_bytes_ and return a pin that never
    // incremented the live entry's count — adopt the existing entry
    // instead.
    auto again = cache_.find(id);
    if (again != cache_.end()) {
      return PinExistingLocked(id, &again->second);
    }
    // Pin-during-insert: install the entry already pinned so EvictLocked
    // cannot choose the block this caller just paid IO for — the old code
    // could evict its own insert on tiny pools and then dereference the
    // erased entry.
    Entry e;
    e.data = data;
    e.bytes = static_cast<int64_t>(data->size());
    e.pin_count = 1;
    e.generation = next_generation_++;
    bytes_cached_ += e.bytes;
    pinned_bytes_ += e.bytes;
    if (bytes_cached_ > peak_bytes_) peak_bytes_ = bytes_cached_;
    if (pinned_bytes_ > peak_pinned_bytes_) peak_pinned_bytes_ = pinned_bytes_;
    auto [nit, ok] = cache_.emplace(id, std::move(e));
    (void)ok;
    Pin pin(this, id, nit->second.generation, nit->second.data);
    EvictLocked();
    return pin;
  }
}

Result<std::shared_ptr<const std::vector<uint8_t>>> BufferManager::GetBlock(
    BlockId id, CancellationToken* cancel) {
  Pin pin;
  X100_ASSIGN_OR_RETURN(pin, PinBlock(id, cancel));
  std::shared_ptr<const std::vector<uint8_t>> data(
      pin.data_);  // keeps the bytes alive past the unpin below
  pin.Release();
  return data;
}

void BufferManager::Unpin(BlockId id, uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(id);
  // Generation mismatch: the entry this pin referred to was invalidated
  // (and possibly the id reloaded as a NEW entry) — a stale unpin must
  // not touch the newer entry's pin count.
  if (it == cache_.end() || it->second.generation != generation) return;
  Entry& e = it->second;
  e.pin_count--;
  if (e.pin_count == 0) {
    pinned_bytes_ -= e.bytes;
    lru_.push_front(id);
    e.lru_pos = lru_.begin();
    EvictLocked();  // the pool may have been over budget on pins alone
  }
}

void BufferManager::EvictLocked() {
  while (bytes_cached_ > capacity_bytes_ && !lru_.empty()) {
    const BlockId victim = lru_.back();
    lru_.pop_back();
    auto it = cache_.find(victim);
    bytes_cached_ -= it->second.bytes;
    cache_.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool BufferManager::Contains(BlockId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.count(id) != 0;
}

void BufferManager::Invalidate(BlockId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(id);
  if (it == cache_.end()) return;
  Entry& e = it->second;
  if (e.pin_count == 0) {
    lru_.erase(e.lru_pos);
  } else {
    // Outstanding pins keep their shared_ptr bytes; their later Unpins
    // miss the generation and no-op, so settle the accounting here.
    pinned_bytes_ -= e.bytes;
  }
  bytes_cached_ -= e.bytes;
  cache_.erase(it);
}

void BufferManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->second.pin_count > 0) {
      ++it;
      continue;
    }
    lru_.erase(it->second.lru_pos);
    bytes_cached_ -= it->second.bytes;
    it = cache_.erase(it);
  }
}

void BufferManager::set_capacity_bytes(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_bytes_ = bytes;
  EvictLocked();
}

}  // namespace x100
