// FileSpillDevice: a real, temp-file-backed SpillDevice.
//
// The paper's recurring warning is that researchers skip the unglamorous
// systems work — IO paths, error handling, resource hygiene — that turns
// a prototype into a product. SimulatedDisk "spills" into process RAM, so
// with it a memory_limit bounds accounted state but not the machine's
// actual footprint. This device stores spill blocks in ONE anonymous temp
// file per device:
//
//  * Fixed-size slots of kDiskBlockBytes, allocated at the end of the
//    file or recycled from a free list — the file's size is bounded by
//    the PEAK concurrent spill footprint, not the total bytes ever
//    spilled (block recycling).
//  * Plain buffered pwrite/pread (no O_DIRECT: portability beats a few
//    syscalls here, and the page cache is exactly the second-level
//    buffer the paper says products must tolerate).
//  * Paranoid reads: per-block length + checksum are kept in memory and
//    verified on every reload, and the backing file's link count is
//    checked so an unlink-behind-open (an operator "cleaning" the temp
//    dir) surfaces as kIoError instead of silently serving stale pages
//    until the fd dies.
//  * An injectable fault hook lets tests exercise every failure path —
//    ENOSPC on write, short/corrupt reads — deterministically.
//
// The device unlinks its file on destruction; tests assert that a
// finished query leaves spill_bytes_in_use() == 0 and a destroyed
// Database leaves no file behind.
#ifndef X100_STORAGE_FILE_SPILL_DEVICE_H_
#define X100_STORAGE_FILE_SPILL_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/spill_device.h"

namespace x100 {

class FileSpillDevice : public SpillDevice {
 public:
  enum class Op { kWrite, kRead };

  /// Called on every spill IO. On kWrite, `data` is the block about to be
  /// written; returning non-OK injects a write failure (the block is not
  /// stored). On kRead, `data` is the bytes just read, BEFORE the device
  /// verifies length and checksum — a hook may truncate or corrupt them
  /// to prove the verification catches it, or return a status directly.
  using FaultHook = std::function<Status(Op op, BlockId id,
                                         std::vector<uint8_t>* data)>;

  /// Creates `<dir>/x100-spill-<pid>-<seq>.tmp` (the directory must
  /// exist; a missing or unwritable spill_path is a loud configuration
  /// error, not a silent fallback to RAM).
  static Result<std::unique_ptr<FileSpillDevice>> Create(
      const std::string& dir);

  ~FileSpillDevice() override;

  FileSpillDevice(const FileSpillDevice&) = delete;
  FileSpillDevice& operator=(const FileSpillDevice&) = delete;

  Result<BlockId> WriteSpill(std::vector<uint8_t> data) override;
  Result<std::vector<uint8_t>> ReadSpill(BlockId id,
                                         CancellationToken* cancel) override;
  void FreeSpill(BlockId id) override;

  int64_t spill_bytes_written() const override {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  int64_t spill_bytes_read() const override {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  int64_t spill_bytes_in_use() const override {
    return bytes_in_use_.load(std::memory_order_relaxed);
  }

  const std::string& path() const { return path_; }
  /// Current size of the backing file — bounded by the peak number of
  /// concurrently-live slots, NOT by total bytes ever spilled.
  int64_t file_bytes() const;
  /// How many writes reused a freed slot instead of growing the file.
  int64_t slots_recycled() const {
    return slots_recycled_.load(std::memory_order_relaxed);
  }

  void set_fault_hook(FaultHook hook);

 private:
  FileSpillDevice(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  struct BlockMeta {
    int64_t slot = 0;
    uint32_t size = 0;
    uint64_t checksum = 0;
  };

  int fd_;
  std::string path_;

  mutable std::mutex mu_;  // metadata only; pread/pwrite run outside it
  std::unordered_map<BlockId, BlockMeta> blocks_;
  std::vector<int64_t> free_slots_;
  int64_t next_slot_ = 0;
  BlockId next_id_ = 0;
  FaultHook fault_hook_;

  std::atomic<int64_t> bytes_written_{0};
  std::atomic<int64_t> bytes_read_{0};
  std::atomic<int64_t> bytes_in_use_{0};
  std::atomic<int64_t> slots_recycled_{0};
};

}  // namespace x100

#endif  // X100_STORAGE_FILE_SPILL_DEVICE_H_
