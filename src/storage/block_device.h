// BlockDevice: the block-store contract behind base-table storage.
//
// Table chunks (compressed column data, storage/table.h) are placed as
// runs of blocks no larger than kDiskBlockBytes and read back through the
// BufferManager. PRs 1-8 hardwired that traffic into the in-RAM
// SimulatedDisk, so "the column store" was really a decode cache over
// process memory. This interface lets the engine plug in a durable
// file-backed device (storage/file_block_device.h) while SimulatedDisk
// stays the default for hermetic tests.
//
// Contract (mirrors SpillDevice, storage/spill_device.h):
//  * Write may FAIL (a real disk runs out of space); callers must treat a
//    failed block write like any other IO error and unwind, never crash.
//  * Read returns exactly the bytes written for that id, or kIoError — a
//    freed, truncated, corrupted or vanished block must surface as a
//    clean error, not as wrong bytes (devices are expected to verify).
//  * Free releases the block's storage for recycling. Unlike spill
//    blocks, table blocks are only freed by checkpoints retiring a
//    rewritten group — the caller must guarantee no reader still resolves
//    the id (quiesced checkpoint contract, pdt/transaction.h).
//  * All three are thread-safe: concurrent scans fault blocks in while a
//    builder appends a new table.
#ifndef X100_STORAGE_BLOCK_DEVICE_H_
#define X100_STORAGE_BLOCK_DEVICE_H_

#include <cstdint>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "storage/spill_device.h"  // BlockId

namespace x100 {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// Stores `data` (size <= kDiskBlockBytes) and returns its id, or an IO
  /// error (ENOSPC and friends) when the device cannot take it.
  virtual Result<BlockId> WriteBlock(std::vector<uint8_t> data) = 0;

  /// Returns the block's bytes. The wait (simulated bandwidth or real
  /// disk) is interruptible via `cancel` (may be nullptr).
  virtual Result<std::vector<uint8_t>> ReadBlock(
      BlockId id, CancellationToken* cancel = nullptr) = 0;

  /// Releases the block's storage (idempotent per id); reading a freed id
  /// is an error. Checkpoint-only — see the class comment.
  virtual void FreeBlock(BlockId id) = 0;

  // Accounting, used by tests/benches and the monitoring counters.
  virtual int64_t blocks_read() const = 0;
  virtual int64_t bytes_read() const = 0;
  virtual int64_t bytes_written() const = 0;
};

}  // namespace x100

#endif  // X100_STORAGE_BLOCK_DEVICE_H_
