#include "storage/catalog.h"

#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "common/hash.h"
#include "common/pod_serde.h"

namespace x100 {

namespace {

constexpr uint32_t kCatalogMagic = 0x58434154u;  // "XCAT"
constexpr uint32_t kCatalogVersion = 1;

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

void AppendString(std::vector<uint8_t>* out, const std::string& s) {
  serde::AppendPod(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

bool TakeString(serde::Reader* r, std::string* s) {
  uint32_t n = 0;
  if (!r->TakePod(&n)) return false;
  const uint8_t* p = nullptr;
  if (!r->Take(n, &p)) return false;
  s->assign(reinterpret_cast<const char*>(p), n);
  return true;
}

void AppendBlockRun(std::vector<uint8_t>* out,
                    const std::vector<BlockId>& blocks) {
  serde::AppendPod(out, static_cast<uint32_t>(blocks.size()));
  serde::AppendPodVec(out, blocks);
}

bool TakeBlockRun(serde::Reader* r, std::vector<BlockId>* blocks) {
  uint32_t n = 0;
  if (!r->TakePod(&n)) return false;
  return r->TakePodVec(n, blocks);
}

void AppendChunkLoc(std::vector<uint8_t>* out, const ChunkLoc& loc) {
  AppendBlockRun(out, loc.blocks);
  serde::AppendPod(out, loc.offset);
  serde::AppendPod(out, loc.length);
}

bool TakeChunkLoc(serde::Reader* r, ChunkLoc* loc) {
  return TakeBlockRun(r, &loc->blocks) && r->TakePod(&loc->offset) &&
         r->TakePod(&loc->length);
}

}  // namespace

std::string CatalogPath(const std::string& dir) {
  return dir + "/x100-catalog.bin";
}

Status SaveCatalog(const std::string& dir,
                   const std::vector<CatalogTable>& tables) {
  std::vector<uint8_t> buf;
  serde::AppendPod(&buf, kCatalogMagic);
  serde::AppendPod(&buf, kCatalogVersion);
  serde::AppendPod(&buf, static_cast<uint32_t>(tables.size()));
  for (const CatalogTable& t : tables) {
    AppendString(&buf, t.name);
    serde::AppendPod(&buf, static_cast<uint8_t>(t.layout));
    serde::AppendPod(&buf, t.num_rows);
    serde::AppendPod(&buf, static_cast<uint32_t>(t.schema.num_fields()));
    for (const Field& f : t.schema.fields()) {
      AppendString(&buf, f.name);
      serde::AppendPod(&buf, static_cast<uint8_t>(f.type));
      serde::AppendPod(&buf, static_cast<uint8_t>(f.nullable ? 1 : 0));
    }
    serde::AppendPod(&buf, static_cast<uint32_t>(t.groups.size()));
    for (const GroupMeta& g : t.groups) {
      serde::AppendPod(&buf, g.first_sid);
      serde::AppendPod(&buf, g.rows);
      AppendBlockRun(&buf, g.pax_blocks);
      serde::AppendPod(&buf, static_cast<uint32_t>(g.cols.size()));
      for (const ColumnChunkMeta& c : g.cols) {
        AppendChunkLoc(&buf, c.loc);
        serde::AppendPod(&buf, static_cast<uint8_t>(c.has_min_max ? 1 : 0));
        serde::AppendPod(&buf, c.imin);
        serde::AppendPod(&buf, c.imax);
        serde::AppendPod(&buf, c.dmin);
        serde::AppendPod(&buf, c.dmax);
        serde::AppendPod(&buf, static_cast<uint8_t>(c.has_nulls ? 1 : 0));
        AppendChunkLoc(&buf, c.null_loc);
      }
    }
  }
  serde::AppendPod(&buf, HashBytes(buf.data(), buf.size()));

  // Atomic replace: write the full image to a temp file, fsync, rename.
  // The catalog on disk is always either the old or the new complete
  // image — a crash mid-save can never leave a half-written block map.
  const std::string path = CatalogPath(dir);
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0600);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot create catalog temp " + tmp));
  }
  auto fail = [&](Status s) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return s;
  };
  size_t done = 0;
  while (done < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + done, buf.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(Status::IoError(ErrnoMessage("catalog write failed")));
    }
    done += static_cast<size_t>(n);
  }
  if (::fdatasync(fd) != 0) {
    return fail(Status::IoError(ErrnoMessage("catalog fsync failed")));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError(ErrnoMessage("catalog close failed"));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError(ErrnoMessage("catalog rename failed"));
  }
  // The rename is only durable once the directory entry itself reaches
  // stable storage: without this fsync, power loss can revert the
  // committed catalog to the old image — or lose it entirely on first
  // creation — despite the atomic replace above.
  const int dfd = ::open(dir.c_str(), O_DIRECTORY | O_RDONLY);
  if (dfd < 0) {
    return Status::IoError(ErrnoMessage("cannot open catalog dir " + dir));
  }
  if (::fsync(dfd) != 0) {
    const Status s = Status::IoError(ErrnoMessage("catalog dir fsync failed"));
    ::close(dfd);
    return s;
  }
  ::close(dfd);
  return Status::OK();
}

Result<std::vector<CatalogTable>> LoadCatalog(const std::string& dir) {
  const std::string path = CatalogPath(dir);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::vector<CatalogTable>{};  // fresh db
    return Status::IoError(ErrnoMessage("cannot open catalog " + path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status s = Status::IoError(ErrnoMessage("fstat " + path));
    ::close(fd);
    return s;
  }
  std::vector<uint8_t> buf(static_cast<size_t>(st.st_size));
  size_t done = 0;
  while (done < buf.size()) {
    const ssize_t n = ::read(fd, buf.data() + done, buf.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = Status::IoError(ErrnoMessage("catalog read failed"));
      ::close(fd);
      return s;
    }
    if (n == 0) break;
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  buf.resize(done);

  auto corrupt = [&](const std::string& why) {
    return Status::IoError("corrupt catalog " + path + ": " + why);
  };
  if (buf.size() < sizeof(uint64_t)) return corrupt("shorter than checksum");
  const size_t body = buf.size() - sizeof(uint64_t);
  uint64_t stored = 0;
  std::memcpy(&stored, buf.data() + body, sizeof(stored));
  if (HashBytes(buf.data(), body) != stored) {
    return corrupt("checksum mismatch (torn or tampered file)");
  }
  serde::Reader r{buf.data(), body};
  uint32_t magic = 0, version = 0, num_tables = 0;
  if (!r.TakePod(&magic) || magic != kCatalogMagic) {
    return corrupt("bad magic");
  }
  if (!r.TakePod(&version) || version != kCatalogVersion) {
    return corrupt("unsupported version");
  }
  if (!r.TakePod(&num_tables)) return corrupt("truncated header");
  std::vector<CatalogTable> tables;
  tables.reserve(num_tables);
  for (uint32_t ti = 0; ti < num_tables; ti++) {
    CatalogTable t;
    uint8_t layout = 0;
    uint32_t num_fields = 0, num_groups = 0;
    if (!TakeString(&r, &t.name) || !r.TakePod(&layout) ||
        !r.TakePod(&t.num_rows) || !r.TakePod(&num_fields)) {
      return corrupt("truncated table header");
    }
    t.layout = static_cast<Layout>(layout);
    for (uint32_t fi = 0; fi < num_fields; fi++) {
      std::string fname;
      uint8_t type = 0, nullable = 0;
      if (!TakeString(&r, &fname) || !r.TakePod(&type) ||
          !r.TakePod(&nullable)) {
        return corrupt("truncated field");
      }
      t.schema.AddField(
          Field(std::move(fname), static_cast<TypeId>(type), nullable != 0));
    }
    if (!r.TakePod(&num_groups)) return corrupt("truncated group count");
    t.groups.reserve(num_groups);
    for (uint32_t gi = 0; gi < num_groups; gi++) {
      GroupMeta g;
      uint32_t num_cols = 0;
      if (!r.TakePod(&g.first_sid) || !r.TakePod(&g.rows) ||
          !TakeBlockRun(&r, &g.pax_blocks) || !r.TakePod(&num_cols)) {
        return corrupt("truncated group");
      }
      g.cols.resize(num_cols);
      for (uint32_t ci = 0; ci < num_cols; ci++) {
        ColumnChunkMeta& c = g.cols[ci];
        uint8_t has_mm = 0, has_nulls = 0;
        if (!TakeChunkLoc(&r, &c.loc) || !r.TakePod(&has_mm) ||
            !r.TakePod(&c.imin) || !r.TakePod(&c.imax) ||
            !r.TakePod(&c.dmin) || !r.TakePod(&c.dmax) ||
            !r.TakePod(&has_nulls) || !TakeChunkLoc(&r, &c.null_loc)) {
          return corrupt("truncated column meta");
        }
        c.has_min_max = has_mm != 0;
        c.has_nulls = has_nulls != 0;
      }
      t.groups.push_back(std::move(g));
    }
    tables.push_back(std::move(t));
  }
  if (r.remaining() != 0) return corrupt("trailing bytes after last table");
  return tables;
}

}  // namespace x100
