#include "storage/coop_scan.h"

#include <algorithm>

namespace x100 {

// ---------------------------------------------------------------------------
// SequentialScheduler
// ---------------------------------------------------------------------------

int SequentialScheduler::Register(int num_groups) {
  std::lock_guard<std::mutex> lock(mu_);
  const int qid = next_qid_++;
  queries_[qid] = QueryState{0, num_groups};
  return qid;
}

int SequentialScheduler::NextGroup(int qid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(qid);
  if (it == queries_.end()) return -1;
  QueryState& q = it->second;
  if (q.next >= q.num_groups) return -1;
  const int g = q.next++;
  // Load estimate mirroring an LRU pool of `cache_capacity_` groups: a
  // group is a miss unless a recent scan left it resident.
  if (!cached_.count(g)) {
    loads_++;
    cached_.insert(g);
    while (static_cast<int>(cached_.size()) > cache_capacity_ &&
           !cached_.empty()) {
      // Sequential scans evict the *oldest* group, which is the smallest id
      // other than the one just inserted.
      auto victim = cached_.begin();
      if (*victim == g && std::next(victim) != cached_.end()) ++victim;
      cached_.erase(victim);
    }
  }
  return g;
}

void SequentialScheduler::Unregister(int qid) {
  std::lock_guard<std::mutex> lock(mu_);
  queries_.erase(qid);
}

int64_t SequentialScheduler::chunk_loads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return loads_;
}

// ---------------------------------------------------------------------------
// RelevanceScheduler (ABM)
// ---------------------------------------------------------------------------

int RelevanceScheduler::Register(int num_groups) {
  std::lock_guard<std::mutex> lock(mu_);
  const int qid = next_qid_++;
  std::set<int>& rem = remaining_[qid];
  for (int g = 0; g < num_groups; g++) rem.insert(g);
  return qid;
}

int RelevanceScheduler::Interest(int g) const {
  int n = 0;
  for (const auto& [qid, rem] : remaining_) n += rem.count(g);
  return n;
}

void RelevanceScheduler::Evict() {
  while (static_cast<int>(cached_.size()) > capacity_) {
    // Victim: cached chunk wanted by the fewest remaining queries.
    int victim = -1, victim_interest = INT32_MAX;
    for (int g : cached_) {
      const int i = Interest(g);
      if (i < victim_interest) {
        victim_interest = i;
        victim = g;
      }
    }
    if (victim < 0) break;
    cached_.erase(victim);
  }
}

int RelevanceScheduler::NextGroup(int qid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = remaining_.find(qid);
  if (it == remaining_.end() || it->second.empty()) return -1;
  std::set<int>& rem = it->second;

  // 1) Serve a cached chunk this query still needs — pick the one with the
  //    highest overall interest so hot chunks are consumed while resident.
  int best = -1, best_interest = -1;
  for (int g : rem) {
    if (cached_.count(g)) {
      const int i = Interest(g);
      if (i > best_interest) {
        best_interest = i;
        best = g;
      }
    }
  }
  if (best >= 0) {
    rem.erase(best);
    return best;
  }

  // 2) Nothing useful cached: load the chunk relevant to the most queries
  //    (ties broken towards lower ids to preserve locality).
  best_interest = -1;
  for (int g : rem) {
    const int i = Interest(g);
    if (i > best_interest) {
      best_interest = i;
      best = g;
    }
  }
  loads_++;
  cached_.insert(best);
  rem.erase(best);
  Evict();
  return best;
}

void RelevanceScheduler::Unregister(int qid) {
  std::lock_guard<std::mutex> lock(mu_);
  remaining_.erase(qid);
}

int64_t RelevanceScheduler::chunk_loads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return loads_;
}

std::vector<int> RelevanceScheduler::CachedGroups() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<int>(cached_.begin(), cached_.end());
}

}  // namespace x100
