// SpillFile: a spilled byte blob on the SimulatedDisk.
//
// The spill unit of the out-of-core executor is one serialized radix
// partition (join build rows + hashes, an aggregation GroupTable) or one
// sorted-run chunk. A SpillFile owns the disk blocks of one such blob:
// Write splits the serialization into kDiskBlockBytes-sized blocks
// (respecting the device's block-size contract), ReadAll reassembles it —
// charging the device's simulated IO time, interruptible by the query's
// cancellation token like every other read in the engine.
#ifndef X100_STORAGE_SPILL_FILE_H_
#define X100_STORAGE_SPILL_FILE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/config.h"
#include "common/result.h"
#include "storage/simulated_disk.h"

namespace x100 {

class SpillFile {
 public:
  SpillFile() = default;
  /// Owns its disk blocks: destruction frees them (the spilled state of
  /// a query dies with the query's operator tree, so a long-lived
  /// Database running memory-limited queries does not accumulate spilled
  /// bytes in the simulated device forever).
  ~SpillFile() { Free(); }

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  SpillFile(SpillFile&& other) noexcept
      : disk_(other.disk_),
        blocks_(std::move(other.blocks_)),
        bytes_(other.bytes_) {
    other.disk_ = nullptr;
    other.blocks_.clear();
    other.bytes_ = 0;
  }
  SpillFile& operator=(SpillFile&& other) noexcept {
    if (this != &other) {
      Free();
      disk_ = other.disk_;
      blocks_ = std::move(other.blocks_);
      bytes_ = other.bytes_;
      other.disk_ = nullptr;
      other.blocks_.clear();
      other.bytes_ = 0;
    }
    return *this;
  }

  /// Writes `size` bytes as a run of disk blocks. Writes are synchronous
  /// and uncharged (the bandwidth model charges reads; symmetric write
  /// cost would double-charge the reload the benches measure).
  static SpillFile Write(SimulatedDisk* disk, const uint8_t* data,
                         size_t size) {
    SpillFile f;
    f.disk_ = disk;
    f.bytes_ = static_cast<int64_t>(size);
    size_t off = 0;
    while (off < size) {
      const size_t n = std::min<size_t>(size - off,
                                        static_cast<size_t>(kDiskBlockBytes));
      f.blocks_.push_back(
          disk->WriteBlock(std::vector<uint8_t>(data + off, data + off + n)));
      off += n;
    }
    return f;
  }

  static SpillFile Write(SimulatedDisk* disk,
                         const std::vector<uint8_t>& data) {
    return Write(disk, data.data(), data.size());
  }

  /// Reassembles the blob. The per-block reads queue on the device's
  /// single bandwidth channel and abort promptly when `cancel` fires.
  Result<std::vector<uint8_t>> ReadAll(
      CancellationToken* cancel = nullptr) const {
    std::vector<uint8_t> out;
    out.reserve(static_cast<size_t>(bytes_));
    for (const BlockId id : blocks_) {
      std::vector<uint8_t> block;
      X100_ASSIGN_OR_RETURN(block, disk_->ReadBlock(id, cancel));
      out.insert(out.end(), block.begin(), block.end());
    }
    if (out.size() != static_cast<size_t>(bytes_)) {
      return Status::IoError("spill file truncated: expected " +
                             std::to_string(bytes_) + " bytes, read " +
                             std::to_string(out.size()));
    }
    return out;
  }

  bool empty() const { return blocks_.empty(); }
  int64_t bytes() const { return bytes_; }
  size_t num_blocks() const { return blocks_.size(); }

  /// Releases the underlying blocks early (idempotent; the destructor
  /// calls it). Reads after Free fail as truncated.
  void Free() {
    if (disk_ != nullptr) {
      for (const BlockId id : blocks_) disk_->FreeBlock(id);
    }
    blocks_.clear();
    bytes_ = 0;
    disk_ = nullptr;
  }

 private:
  SimulatedDisk* disk_ = nullptr;
  std::vector<BlockId> blocks_;
  int64_t bytes_ = 0;
};

}  // namespace x100

#endif  // X100_STORAGE_SPILL_FILE_H_
