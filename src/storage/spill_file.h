// SpillFile: a spilled byte blob on a SpillDevice.
//
// The spill unit of the out-of-core executor is one serialized radix
// partition (join build rows + hashes, an aggregation GroupTable, a Grace
// probe-side partition chunk) or one sorted-run chunk. A SpillFile owns
// the device blocks of one such blob: Write splits the serialization into
// kDiskBlockBytes-sized blocks (respecting the device's block-size
// contract), ReadAll reassembles it — charging the device's IO cost,
// interruptible by the query's cancellation token like every other read
// in the engine. Writes can FAIL on a real device (ENOSPC); a failed
// Write frees whatever blocks it had already placed.
#ifndef X100_STORAGE_SPILL_FILE_H_
#define X100_STORAGE_SPILL_FILE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/config.h"
#include "common/result.h"
#include "storage/spill_device.h"

namespace x100 {

class SpillFile {
 public:
  SpillFile() = default;
  /// Owns its device blocks: destruction frees them (the spilled state of
  /// a query dies with the query's operator tree, so a long-lived
  /// Database running memory-limited queries does not accumulate spilled
  /// bytes on the device forever).
  ~SpillFile() { Free(); }

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  SpillFile(SpillFile&& other) noexcept
      : device_(other.device_),
        blocks_(std::move(other.blocks_)),
        bytes_(other.bytes_) {
    other.device_ = nullptr;
    other.blocks_.clear();
    other.bytes_ = 0;
  }
  SpillFile& operator=(SpillFile&& other) noexcept {
    if (this != &other) {
      Free();
      device_ = other.device_;
      blocks_ = std::move(other.blocks_);
      bytes_ = other.bytes_;
      other.device_ = nullptr;
      other.blocks_.clear();
      other.bytes_ = 0;
    }
    return *this;
  }

  /// Writes `size` bytes as a run of device blocks. A failed block write
  /// (a real disk filling up) releases the blocks already written and
  /// surfaces the device's error — the caller unwinds like any other IO
  /// failure.
  static Result<SpillFile> Write(SpillDevice* device, const uint8_t* data,
                                 size_t size) {
    SpillFile f;
    f.device_ = device;
    f.bytes_ = static_cast<int64_t>(size);
    size_t off = 0;
    while (off < size) {
      const size_t n = std::min<size_t>(size - off,
                                        static_cast<size_t>(kDiskBlockBytes));
      BlockId id;
      X100_ASSIGN_OR_RETURN(
          id,
          device->WriteSpill(std::vector<uint8_t>(data + off, data + off + n)));
      f.blocks_.push_back(id);
      off += n;
    }
    return f;
  }

  static Result<SpillFile> Write(SpillDevice* device,
                                 const std::vector<uint8_t>& data) {
    return Write(device, data.data(), data.size());
  }

  /// Reassembles the blob. The per-block reads charge the device's IO
  /// cost and abort promptly when `cancel` fires.
  Result<std::vector<uint8_t>> ReadAll(
      CancellationToken* cancel = nullptr) const {
    std::vector<uint8_t> out;
    out.reserve(static_cast<size_t>(bytes_));
    for (const BlockId id : blocks_) {
      std::vector<uint8_t> block;
      X100_ASSIGN_OR_RETURN(block, device_->ReadSpill(id, cancel));
      out.insert(out.end(), block.begin(), block.end());
    }
    if (out.size() != static_cast<size_t>(bytes_)) {
      return Status::IoError("spill file truncated: expected " +
                             std::to_string(bytes_) + " bytes, read " +
                             std::to_string(out.size()));
    }
    return out;
  }

  bool empty() const { return blocks_.empty(); }
  int64_t bytes() const { return bytes_; }
  size_t num_blocks() const { return blocks_.size(); }

  /// Releases the underlying blocks early (idempotent; the destructor
  /// calls it). Reads after Free fail cleanly.
  void Free() {
    if (device_ != nullptr) {
      for (const BlockId id : blocks_) device_->FreeSpill(id);
    }
    blocks_.clear();
    bytes_ = 0;
    device_ = nullptr;
  }

 private:
  SpillDevice* device_ = nullptr;
  std::vector<BlockId> blocks_;
  int64_t bytes_ = 0;
};

}  // namespace x100

#endif  // X100_STORAGE_SPILL_FILE_H_
