#include "storage/file_spill_device.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstring>

#include "common/config.h"
#include "common/hash.h"

namespace x100 {

namespace {

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Per-device sequence so several Databases sharing one spill dir never
/// collide (O_EXCL would reject, but distinct names avoid the retry).
std::atomic<uint64_t> g_device_seq{0};

}  // namespace

Result<std::unique_ptr<FileSpillDevice>> FileSpillDevice::Create(
    const std::string& dir) {
  const std::string path =
      dir + "/x100-spill-" + std::to_string(::getpid()) + "-" +
      std::to_string(g_device_seq.fetch_add(1)) + ".tmp";
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  if (fd < 0) {
    return Status::IoError(
        ErrnoMessage("cannot create spill file " + path) +
        " (is the spill_path directory present and writable?)");
  }
  return std::unique_ptr<FileSpillDevice>(new FileSpillDevice(fd, path));
}

FileSpillDevice::~FileSpillDevice() {
  if (fd_ >= 0) ::close(fd_);
  ::unlink(path_.c_str());  // harmless ENOENT if already unlinked
}

void FileSpillDevice::set_fault_hook(FaultHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_hook_ = std::move(hook);
}

int64_t FileSpillDevice::file_bytes() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) return -1;
  return static_cast<int64_t>(st.st_size);
}

Result<BlockId> FileSpillDevice::WriteSpill(std::vector<uint8_t> data) {
  if (data.size() > static_cast<size_t>(kDiskBlockBytes)) {
    return Status::InvalidArgument(
        "spill block larger than kDiskBlockBytes: " +
        std::to_string(data.size()));
  }
  BlockId id;
  int64_t slot;
  bool recycled;
  FaultHook hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hook = fault_hook_;
    id = next_id_++;
    recycled = !free_slots_.empty();
    if (recycled) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = next_slot_++;
    }
  }
  // Return the slot to the free list on any failure so an aborted write
  // never leaks file space.
  auto fail = [this, slot](Status s) -> Result<BlockId> {
    std::lock_guard<std::mutex> lock(mu_);
    free_slots_.push_back(slot);
    return s;
  };
  if (hook) {
    const Status s = hook(Op::kWrite, id, &data);
    if (!s.ok()) return fail(s);
  }
  const off_t off = static_cast<off_t>(slot) * kDiskBlockBytes;
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                               off + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(Status::IoError(ErrnoMessage("spill write failed")));
    }
    done += static_cast<size_t>(n);
  }
  BlockMeta meta;
  meta.slot = slot;
  meta.size = static_cast<uint32_t>(data.size());
  meta.checksum = HashBytes(data.data(), data.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    blocks_.emplace(id, meta);
  }
  bytes_written_.fetch_add(meta.size, std::memory_order_relaxed);
  bytes_in_use_.fetch_add(meta.size, std::memory_order_relaxed);
  if (recycled) slots_recycled_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Result<std::vector<uint8_t>> FileSpillDevice::ReadSpill(
    BlockId id, CancellationToken* cancel) {
  if (cancel != nullptr) {
    X100_RETURN_IF_ERROR(cancel->Check());
  }
  BlockMeta meta;
  FaultHook hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = blocks_.find(id);
    if (it == blocks_.end()) {
      return Status::IoError("spill block " + std::to_string(id) +
                             " unknown or already freed");
    }
    meta = it->second;
    hook = fault_hook_;
  }
  // Unlink-behind-open detection: the fd would happily keep serving the
  // orphaned inode, but spilled state that can vanish with the next
  // reboot (or that an operator believes deleted) must not be silently
  // depended on — fail loudly instead.
  struct stat st;
  if (::fstat(fd_, &st) != 0 || st.st_nlink == 0) {
    return Status::IoError("spill file " + path_ +
                           " was unlinked behind the open descriptor");
  }
  std::vector<uint8_t> data(meta.size);
  const off_t off = static_cast<off_t>(meta.slot) * kDiskBlockBytes;
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::pread(fd_, data.data() + done, data.size() - done,
                              off + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("spill read failed"));
    }
    if (n == 0) break;  // EOF before the block's recorded size
    done += static_cast<size_t>(n);
  }
  data.resize(done);
  if (hook) {
    X100_RETURN_IF_ERROR(hook(Op::kRead, id, &data));
  }
  if (data.size() != meta.size) {
    return Status::IoError("short spill read: block " + std::to_string(id) +
                           " expected " + std::to_string(meta.size) +
                           " bytes, got " + std::to_string(data.size()));
  }
  if (HashBytes(data.data(), data.size()) != meta.checksum) {
    return Status::IoError("corrupt spill block " + std::to_string(id) +
                           ": checksum mismatch on reload");
  }
  bytes_read_.fetch_add(meta.size, std::memory_order_relaxed);
  return data;
}

void FileSpillDevice::FreeSpill(BlockId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(id);
  if (it == blocks_.end()) return;
  bytes_in_use_.fetch_sub(it->second.size, std::memory_order_relaxed);
  free_slots_.push_back(it->second.slot);
  blocks_.erase(it);
}

}  // namespace x100
