#include "storage/file_block_device.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/config.h"
#include "common/hash.h"
#include "common/pod_serde.h"

namespace x100 {

namespace {

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

constexpr int64_t kSlotStride =
    kDiskBlockBytes + FileBlockDevice::kSlotHeaderBytes;

}  // namespace

Result<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Open(
    const std::string& dir, int64_t bandwidth_bytes_per_sec) {
  const std::string path = dir + "/x100-data.blocks";
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0600);
  if (fd < 0) {
    return Status::IoError(
        ErrnoMessage("cannot open data file " + path) +
        " (is the data_path directory present and writable?)");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status s = Status::IoError(ErrnoMessage("fstat " + path));
    ::close(fd);
    return s;
  }
  if (st.st_size % kSlotStride != 0) {
    ::close(fd);
    return Status::IoError(
        "data file " + path + " has size " + std::to_string(st.st_size) +
        ", not a whole number of " + std::to_string(kSlotStride) +
        "-byte slots — torn write or foreign file; refusing to open");
  }
  const int64_t next_slot = st.st_size / kSlotStride;
  return std::unique_ptr<FileBlockDevice>(
      new FileBlockDevice(fd, path, next_slot, bandwidth_bytes_per_sec));
}

Status FileBlockDevice::ChargeIo(size_t bytes, CancellationToken* cancel) {
  if (bandwidth_ <= 0) return Status::OK();
  using Clock = std::chrono::steady_clock;
  const auto cost = std::chrono::nanoseconds(static_cast<int64_t>(
      1e9 * static_cast<double>(bytes) / static_cast<double>(bandwidth_)));
  Clock::time_point wait_until;
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    const auto now = Clock::now();
    if (busy_until_ < now) busy_until_ = now;
    busy_until_ += cost;
    wait_until = busy_until_;
  }
  const auto now = Clock::now();
  if (wait_until <= now) return Status::OK();
  const auto wait = wait_until - now;
  if (cancel != nullptr) return cancel->WaitFor(wait);
  std::this_thread::sleep_for(wait);
  return Status::OK();
}

FileBlockDevice::~FileBlockDevice() {
  // Durable data: close but never unlink — the whole point is that the
  // next Open on this directory finds the blocks again.
  if (fd_ >= 0) ::close(fd_);
}

void FileBlockDevice::set_fault_hook(FaultHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_hook_ = std::move(hook);
}

int64_t FileBlockDevice::file_bytes() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) return -1;
  return static_cast<int64_t>(st.st_size);
}

void FileBlockDevice::RestoreAllocated(const std::vector<BlockId>& live) {
  std::vector<bool> used(static_cast<size_t>(next_slot_), false);
  for (BlockId id : live) {
    if (static_cast<int64_t>(id) < next_slot_) used[id] = true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  free_slots_.clear();
  // Push high slots first so recycling hands out low slots first, keeping
  // the file compact under append-after-reopen workloads.
  for (int64_t s = next_slot_ - 1; s >= 0; --s) {
    if (!used[static_cast<size_t>(s)]) free_slots_.push_back(s);
  }
}

Status FileBlockDevice::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IoError(ErrnoMessage("fdatasync " + path_));
  }
  return Status::OK();
}

Result<BlockId> FileBlockDevice::WriteBlock(std::vector<uint8_t> data) {
  if (data.size() > static_cast<size_t>(kDiskBlockBytes)) {
    return Status::InvalidArgument(
        "data block larger than kDiskBlockBytes: " +
        std::to_string(data.size()));
  }
  int64_t slot;
  bool recycled;
  FaultHook hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hook = fault_hook_;
    recycled = !free_slots_.empty();
    if (recycled) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = next_slot_++;
    }
  }
  const BlockId id = static_cast<BlockId>(slot);
  // Return the slot to the free list on any failure so an aborted write
  // never leaks file space.
  auto fail = [this, slot](Status s) -> Result<BlockId> {
    std::lock_guard<std::mutex> lock(mu_);
    free_slots_.push_back(slot);
    return s;
  };
  if (hook) {
    const Status s = hook(Op::kWrite, id, &data);
    if (!s.ok()) return fail(s);
  }
  // Slot image: persisted header + payload, written in one pwrite so a
  // crash mid-write leaves either the old slot or a checksum-detectable
  // torn one — never a header that vouches for stale payload bytes.
  std::vector<uint8_t> slot_bytes;
  slot_bytes.reserve(kSlotHeaderBytes + data.size());
  serde::AppendPod(&slot_bytes, kSlotMagic);
  serde::AppendPod(&slot_bytes, static_cast<uint32_t>(data.size()));
  serde::AppendPod(&slot_bytes, HashBytes(data.data(), data.size()));
  slot_bytes.insert(slot_bytes.end(), data.begin(), data.end());
  const off_t off = static_cast<off_t>(slot) * kSlotStride;
  size_t done = 0;
  while (done < slot_bytes.size()) {
    const ssize_t n =
        ::pwrite(fd_, slot_bytes.data() + done, slot_bytes.size() - done,
                 off + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(Status::IoError(ErrnoMessage("data block write failed")));
    }
    done += static_cast<size_t>(n);
  }
  // Keep the file a whole number of slots: a short payload in the highest
  // slot would otherwise leave a mid-slot EOF that the next Open rejects
  // as torn. next_slot_ is monotone and no pwrite lands past
  // next_slot_ * kSlotStride, so this never shrinks live data.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (::ftruncate(fd_, next_slot_ * kSlotStride) != 0) {
      return fail(Status::IoError(ErrnoMessage("data file extend failed")));
    }
  }
  bytes_written_.fetch_add(static_cast<int64_t>(data.size()),
                           std::memory_order_relaxed);
  if (recycled) slots_recycled_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Result<std::vector<uint8_t>> FileBlockDevice::ReadBlock(
    BlockId id, CancellationToken* cancel) {
  if (cancel != nullptr) {
    X100_RETURN_IF_ERROR(cancel->Check());
  }
  FaultHook hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (static_cast<int64_t>(id) >= next_slot_) {
      return Status::IoError("data block " + std::to_string(id) +
                             " beyond end of file " + path_);
    }
    hook = fault_hook_;
  }
  std::vector<uint8_t> slot_bytes(static_cast<size_t>(kSlotStride));
  const off_t off = static_cast<off_t>(id) * kSlotStride;
  size_t done = 0;
  while (done < slot_bytes.size()) {
    const ssize_t n =
        ::pread(fd_, slot_bytes.data() + done, slot_bytes.size() - done,
                off + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("data block read failed"));
    }
    if (n == 0) break;  // EOF: a short final slot fails header checks below
    done += static_cast<size_t>(n);
  }
  slot_bytes.resize(done);
  if (hook) {
    X100_RETURN_IF_ERROR(hook(Op::kRead, id, &slot_bytes));
  }
  // Verify the persisted header before trusting a single payload byte.
  serde::Reader r{slot_bytes.data(), slot_bytes.size()};
  uint32_t magic = 0, length = 0;
  uint64_t checksum = 0;
  if (!r.TakePod(&magic) || !r.TakePod(&length) || !r.TakePod(&checksum)) {
    return Status::IoError("torn data block " + std::to_string(id) +
                           ": slot shorter than its header");
  }
  if (magic != kSlotMagic) {
    return Status::IoError("data block " + std::to_string(id) +
                           ": bad slot magic (freed, never written, or "
                           "foreign bytes)");
  }
  if (static_cast<int64_t>(length) > kDiskBlockBytes ||
      kSlotHeaderBytes + static_cast<size_t>(length) > slot_bytes.size()) {
    return Status::IoError("torn data block " + std::to_string(id) +
                           ": recorded length " + std::to_string(length) +
                           " exceeds slot bytes on disk");
  }
  std::vector<uint8_t> data(
      slot_bytes.begin() + kSlotHeaderBytes,
      slot_bytes.begin() + kSlotHeaderBytes + static_cast<int64_t>(length));
  if (HashBytes(data.data(), data.size()) != checksum) {
    return Status::IoError("corrupt data block " + std::to_string(id) +
                           ": checksum mismatch on read");
  }
  // Throttle AFTER the verified transfer so the charged bytes are the
  // payload actually delivered; the page cache makes the pread itself
  // near-instant, the channel wait is the modeled device time.
  X100_RETURN_IF_ERROR(ChargeIo(data.size(), cancel));
  blocks_read_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(static_cast<int64_t>(data.size()),
                        std::memory_order_relaxed);
  return data;
}

void FileBlockDevice::FreeBlock(BlockId id) {
  const int64_t slot = static_cast<int64_t>(id);
  std::lock_guard<std::mutex> lock(mu_);
  if (slot >= next_slot_) return;
  if (std::find(free_slots_.begin(), free_slots_.end(), slot) !=
      free_slots_.end()) {
    return;  // idempotent: double-free must not hand the slot out twice
  }
  free_slots_.push_back(slot);
  // Poison the magic so a read of a freed-but-not-yet-recycled slot fails
  // verification instead of serving the retired group's bytes.
  const uint32_t dead = 0;
  size_t done = 0;
  const off_t off = static_cast<off_t>(slot) * kSlotStride;
  const auto* p = reinterpret_cast<const uint8_t*>(&dead);
  while (done < sizeof(dead)) {
    const ssize_t n =
        ::pwrite(fd_, p + done, sizeof(dead) - done,
                 off + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // best-effort: the catalog no longer references this slot
    }
    done += static_cast<size_t>(n);
  }
}

}  // namespace x100
