// Catalog persistence: serializes every table's schema + block map so a
// Database reopened on the same data_path rebuilds its Table images and
// serves bit-identical results cold.
//
// Format (binary, little-endian host PODs via common/pod_serde.h):
//
//   [u32 magic 'XCAT'][u32 version]
//   [u32 num_tables] then per table:
//     name, layout, num_rows
//     schema: per field (name, type, nullable)
//     groups: per group (first_sid, rows, pax block run,
//             per column: ChunkLoc + MinMax + null ChunkLoc)
//   [u64 HashBytes checksum over everything above]
//
// The trailing checksum plus serde::Reader's bounds-checked reads mean a
// torn or corrupt catalog fails the load with kIoError — it never
// fabricates a block map that would read garbage slots. Writes go
// through a temp file + rename so the catalog on disk is always either
// the old complete image or the new complete image (atomic replace).
//
// The catalog is deliberately decoupled from Database: it deals only in
// (name, schema, layout, groups, num_rows) tuples against a BlockDevice.
#ifndef X100_STORAGE_CATALOG_H_
#define X100_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace x100 {

/// One table's catalog image.
struct CatalogTable {
  std::string name;
  Schema schema;
  Layout layout = Layout::kDsm;
  int64_t num_rows = 0;
  std::vector<GroupMeta> groups;
};

/// Serializes `tables` to `<dir>/x100-catalog.bin` (atomic tmp+rename).
Status SaveCatalog(const std::string& dir,
                   const std::vector<CatalogTable>& tables);

/// Loads `<dir>/x100-catalog.bin`. A missing file is NOT an error — it
/// returns an empty list (fresh database). A present-but-corrupt file is
/// kIoError.
Result<std::vector<CatalogTable>> LoadCatalog(const std::string& dir);

/// The catalog file's path under `dir` (tests assert on its cleanup).
std::string CatalogPath(const std::string& dir);

}  // namespace x100

#endif  // X100_STORAGE_CATALOG_H_
