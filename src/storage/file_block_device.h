// FileBlockDevice: the durable, file-backed home of base-table blocks.
//
// Where FileSpillDevice holds transient per-query state in an anonymous
// temp file (unlinked on destruction), this device is the opposite: it
// owns ONE named data file per Database (`<dir>/x100-data.blocks`) that
// must survive process restarts and be re-openable with nothing but the
// catalog's list of live block ids.
//
// Layout: fixed-size slots. Slot i starts at byte i * kSlotStride where
// kSlotStride = kDiskBlockBytes + kSlotHeaderBytes. Each slot begins with
// a 16-byte on-disk header:
//
//     [u32 magic][u32 length][u64 checksum]   then `length` payload bytes
//
// BlockId == slot index, so the catalog's block maps address slots
// directly and reopening needs no in-file index scan: next_slot_ derives
// from file size, and RestoreAllocated() rebuilds the free list as
// "every slot below next_slot_ the catalog does not claim". Persisting
// length + checksum IN the slot (the spill device keeps them in memory)
// is what makes cold reads verifiable: a torn write, a bit flip, or a
// stale slot served after misdirected IO all surface as kIoError, never
// as wrong query results.
//
// Slots freed by checkpoints (group rewrites retiring old blocks) are
// recycled, so the file is bounded by the table's live footprint, not by
// total bytes ever written. The same fault hook shape as FileSpillDevice
// lets tests inject ENOSPC and torn/corrupt reads deterministically.
#ifndef X100_STORAGE_FILE_BLOCK_DEVICE_H_
#define X100_STORAGE_FILE_BLOCK_DEVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/block_device.h"

namespace x100 {

class FileBlockDevice : public BlockDevice {
 public:
  enum class Op { kWrite, kRead };

  /// Called on every block IO. On kWrite, `data` is the payload about to
  /// be written; returning non-OK injects a write failure (the slot is
  /// returned to the free list). On kRead, `data` is the raw slot bytes
  /// (header + payload) just read, BEFORE verification — a hook may
  /// truncate or corrupt them to prove verification catches it.
  using FaultHook = std::function<Status(Op op, BlockId id,
                                         std::vector<uint8_t>* data)>;

  /// Opens (or creates) `<dir>/x100-data.blocks`. The directory must
  /// exist — a missing or unwritable data_path is a loud configuration
  /// error, not a silent fallback to RAM. An existing file's size must be
  /// a whole number of slots; anything else is a torn/foreign file and
  /// fails the open. `bandwidth_bytes_per_sec` > 0 throttles reads to
  /// that rate over a single shared channel (EngineConfig::disk_bandwidth
  /// — same model as SimulatedDisk), so benchmarks see a cold medium
  /// regardless of the OS page cache; 0 = unthrottled.
  static Result<std::unique_ptr<FileBlockDevice>> Open(
      const std::string& dir, int64_t bandwidth_bytes_per_sec = 0);

  ~FileBlockDevice() override;  // closes the fd; does NOT unlink

  FileBlockDevice(const FileBlockDevice&) = delete;
  FileBlockDevice& operator=(const FileBlockDevice&) = delete;

  Result<BlockId> WriteBlock(std::vector<uint8_t> data) override;
  Result<std::vector<uint8_t>> ReadBlock(BlockId id,
                                         CancellationToken* cancel) override;
  void FreeBlock(BlockId id) override;

  /// Rebuilds the free list after a catalog load: every slot below the
  /// file's end that `live` does not contain becomes recyclable. Call
  /// once, right after Open, before any writes.
  void RestoreAllocated(const std::vector<BlockId>& live);

  /// Flushes file contents to stable storage (fdatasync). Called by
  /// checkpoints before the catalog commits to the new block map.
  Status Sync();

  int64_t blocks_read() const override {
    return blocks_read_.load(std::memory_order_relaxed);
  }
  int64_t bytes_read() const override {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  int64_t bytes_written() const override {
    return bytes_written_.load(std::memory_order_relaxed);
  }

  const std::string& path() const { return path_; }
  /// Current size of the backing file — bounded by the peak number of
  /// concurrently-live slots (freed slots are recycled in place).
  int64_t file_bytes() const;
  /// How many writes reused a freed slot instead of growing the file.
  int64_t slots_recycled() const {
    return slots_recycled_.load(std::memory_order_relaxed);
  }

  void set_fault_hook(FaultHook hook);

  /// On-disk slot geometry (exposed for tests that corrupt slots).
  static constexpr uint32_t kSlotMagic = 0x58424C4Bu;  // "XBLK"
  static constexpr int64_t kSlotHeaderBytes = 16;

 private:
  FileBlockDevice(int fd, std::string path, int64_t next_slot,
                  int64_t bandwidth)
      : fd_(fd),
        path_(std::move(path)),
        next_slot_(next_slot),
        bandwidth_(bandwidth) {}

  /// Serializes throttled IO on one simulated channel (cf. SimulatedDisk):
  /// each transfer extends busy_until_ by bytes/bandwidth and waits its
  /// turn (interruptibly when a cancel token is supplied).
  Status ChargeIo(size_t bytes, CancellationToken* cancel);

  int fd_;
  std::string path_;

  mutable std::mutex mu_;  // slot allocation only; pread/pwrite run outside
  std::vector<int64_t> free_slots_;
  int64_t next_slot_;
  const int64_t bandwidth_;  // bytes/sec; 0 = unthrottled
  std::mutex io_mu_;
  std::chrono::steady_clock::time_point busy_until_{};
  FaultHook fault_hook_;

  std::atomic<int64_t> blocks_read_{0};
  std::atomic<int64_t> bytes_read_{0};
  std::atomic<int64_t> bytes_written_{0};
  std::atomic<int64_t> slots_recycled_{0};
};

}  // namespace x100

#endif  // X100_STORAGE_FILE_BLOCK_DEVICE_H_
