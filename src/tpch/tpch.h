// TPC-H substrate: a dbgen-style deterministic generator and plan builders
// for Q1 / Q3 / Q6 in both engines (vectorized algebra and the Volcano
// baseline) — the workload of experiment E1.
//
// Substitution note (DESIGN.md §2): same schemas and value distributions
// as dbgen at reduced text fidelity; scale factor SF sizes lineitem at
// 6,000,000 × SF rows.
#ifndef X100_TPCH_TPCH_H_
#define X100_TPCH_TPCH_H_

#include <memory>
#include <string>

#include "algebra/algebra.h"
#include "engine/database.h"
#include "volcano/volcano.h"

namespace x100 {
namespace tpch {

/// Generates and registers the 7 TPC-H tables (lineitem, orders, customer,
/// part, supplier, nation, region) into `db` at scale factor `sf`.
Status Generate(Database* db, double sf, Layout layout = Layout::kDsm);

/// Schemas (exposed for tests).
Schema LineitemSchema();
Schema OrdersSchema();
Schema CustomerSchema();
Schema PartSchema();
Schema SupplierSchema();
Schema NationSchema();
Schema RegionSchema();

// --- Vectorized (X100 algebra) query plans --------------------------------

/// Q1: pricing summary report. Filter on l_shipdate, 4-wide group-by keys,
/// 8 aggregates.
AlgebraPtr Q1Plan(int delta_days = 90);

/// Q3: shipping priority — customer ⋈ orders ⋈ lineitem, aggregation,
/// top-10 by revenue.
AlgebraPtr Q3Plan(const std::string& segment = "BUILDING");

/// Q6: forecasting revenue change — tight scan-filter-aggregate.
AlgebraPtr Q6Plan(int year = 1994);

// --- Volcano (tuple-at-a-time) plans over materialized rows ----------------

/// Materializes a table's committed image as Volcano rows.
Result<std::vector<volcano::Row>> MaterializeRows(Database* db,
                                                  const std::string& table);

/// The same Q1 / Q6 logic as tuple-at-a-time plans over `rows`.
Result<volcano::VOperatorPtr> Q1Volcano(const std::vector<volcano::Row>* rows,
                                        int delta_days = 90);
Result<volcano::VOperatorPtr> Q6Volcano(const std::vector<volcano::Row>* rows,
                                        int year = 1994);

}  // namespace tpch
}  // namespace x100

#endif  // X100_TPCH_TPCH_H_
