#include "tpch/tpch.h"

#include "engine/query_executor.h"

#include "common/rng.h"

namespace x100 {
namespace tpch {

namespace {

const char* kShipModes[] = {"AIR", "FOB", "MAIL", "RAIL",
                            "REG AIR", "SHIP", "TRUCK"};
const char* kShipInstruct[] = {"COLLECT COD", "DELIVER IN PERSON",
                               "NONE", "TAKE BACK RETURN"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                           "HOUSEHOLD", "MACHINERY"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kNations[] = {"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA",
                          "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY",
                          "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
                          "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE",
                          "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
                          "VIETNAM", "RUSSIA", "UNITED KINGDOM",
                          "UNITED STATES"};
const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};

int32_t kStartDate, kEndDate, kCurrentDate;

void InitDates() {
  kStartDate = MakeDate(1992, 1, 1);
  kEndDate = MakeDate(1998, 12, 1);
  kCurrentDate = MakeDate(1995, 6, 17);
}

}  // namespace

Schema LineitemSchema() {
  return Schema({Field("l_orderkey", TypeId::kI64),
                 Field("l_partkey", TypeId::kI64),
                 Field("l_suppkey", TypeId::kI64),
                 Field("l_linenumber", TypeId::kI32),
                 Field("l_quantity", TypeId::kF64),
                 Field("l_extendedprice", TypeId::kF64),
                 Field("l_discount", TypeId::kF64),
                 Field("l_tax", TypeId::kF64),
                 Field("l_returnflag", TypeId::kStr),
                 Field("l_linestatus", TypeId::kStr),
                 Field("l_shipdate", TypeId::kDate),
                 Field("l_commitdate", TypeId::kDate),
                 Field("l_receiptdate", TypeId::kDate),
                 Field("l_shipinstruct", TypeId::kStr),
                 Field("l_shipmode", TypeId::kStr),
                 Field("l_comment", TypeId::kStr)});
}

Schema OrdersSchema() {
  return Schema({Field("o_orderkey", TypeId::kI64),
                 Field("o_custkey", TypeId::kI64),
                 Field("o_orderstatus", TypeId::kStr),
                 Field("o_totalprice", TypeId::kF64),
                 Field("o_orderdate", TypeId::kDate),
                 Field("o_orderpriority", TypeId::kStr),
                 Field("o_clerk", TypeId::kStr),
                 Field("o_shippriority", TypeId::kI32),
                 Field("o_comment", TypeId::kStr)});
}

Schema CustomerSchema() {
  return Schema({Field("c_custkey", TypeId::kI64),
                 Field("c_name", TypeId::kStr),
                 Field("c_address", TypeId::kStr),
                 Field("c_nationkey", TypeId::kI32),
                 Field("c_phone", TypeId::kStr),
                 Field("c_acctbal", TypeId::kF64),
                 Field("c_mktsegment", TypeId::kStr),
                 Field("c_comment", TypeId::kStr)});
}

Schema PartSchema() {
  return Schema({Field("p_partkey", TypeId::kI64),
                 Field("p_name", TypeId::kStr),
                 Field("p_mfgr", TypeId::kStr),
                 Field("p_brand", TypeId::kStr),
                 Field("p_type", TypeId::kStr),
                 Field("p_size", TypeId::kI32),
                 Field("p_container", TypeId::kStr),
                 Field("p_retailprice", TypeId::kF64),
                 Field("p_comment", TypeId::kStr)});
}

Schema SupplierSchema() {
  return Schema({Field("s_suppkey", TypeId::kI64),
                 Field("s_name", TypeId::kStr),
                 Field("s_address", TypeId::kStr),
                 Field("s_nationkey", TypeId::kI32),
                 Field("s_phone", TypeId::kStr),
                 Field("s_acctbal", TypeId::kF64),
                 Field("s_comment", TypeId::kStr)});
}

Schema NationSchema() {
  return Schema({Field("n_nationkey", TypeId::kI32),
                 Field("n_name", TypeId::kStr),
                 Field("n_regionkey", TypeId::kI32),
                 Field("n_comment", TypeId::kStr)});
}

Schema RegionSchema() {
  return Schema({Field("r_regionkey", TypeId::kI32),
                 Field("r_name", TypeId::kStr),
                 Field("r_comment", TypeId::kStr)});
}

namespace {

std::string Comment(Rng* rng, int max_len) {
  static const char* words[] = {"carefully", "final", "deposits", "sleep",
                                "quickly",   "bold",  "requests", "haggle",
                                "furiously", "even",  "accounts", "ideas"};
  std::string s;
  const int n = static_cast<int>(rng->Uniform(2, 5));
  for (int i = 0; i < n; i++) {
    if (i) s += ' ';
    s += words[rng->Uniform(0, 11)];
    if (static_cast<int>(s.size()) >= max_len) break;
  }
  return s;
}

Status GenerateSmallTables(Database* db, Layout layout) {
  {
    auto b = db->CreateTable("region", RegionSchema(), layout);
    for (int r = 0; r < 5; r++) {
      X100_RETURN_IF_ERROR(b->AppendRow(
          {Value::I32(r), Value::Str(kRegions[r]), Value::Str("")}));
    }
    auto t = b->Finish();
    X100_RETURN_IF_ERROR(t.status());
    X100_RETURN_IF_ERROR(
        db->RegisterTable(std::move(t).value()).status());
  }
  {
    auto b = db->CreateTable("nation", NationSchema(), layout);
    for (int n = 0; n < 25; n++) {
      X100_RETURN_IF_ERROR(
          b->AppendRow({Value::I32(n), Value::Str(kNations[n]),
                        Value::I32(n % 5), Value::Str("")}));
    }
    auto t = b->Finish();
    X100_RETURN_IF_ERROR(t.status());
    X100_RETURN_IF_ERROR(
        db->RegisterTable(std::move(t).value()).status());
  }
  return Status::OK();
}

}  // namespace

Status Generate(Database* db, double sf, Layout layout) {
  InitDates();
  X100_RETURN_IF_ERROR(GenerateSmallTables(db, layout));

  const int64_t n_customers = std::max<int64_t>(1, 150000 * sf);
  const int64_t n_orders = n_customers * 10;
  const int64_t n_parts = std::max<int64_t>(1, 200000 * sf);
  const int64_t n_suppliers = std::max<int64_t>(1, 10000 * sf);

  {
    Rng rng(101);
    auto b = db->CreateTable("customer", CustomerSchema(), layout);
    for (int64_t c = 1; c <= n_customers; c++) {
      X100_RETURN_IF_ERROR(b->AppendRow(
          {Value::I64(c), Value::Str("Customer#" + std::to_string(c)),
           Value::Str("addr-" + std::to_string(rng.Uniform(0, 99999))),
           Value::I32(static_cast<int32_t>(rng.Uniform(0, 24))),
           Value::Str("phone"),
           Value::F64(rng.Uniform(-99999, 999999) / 100.0),
           Value::Str(kSegments[rng.Uniform(0, 4)]),
           Value::Str(Comment(&rng, 40))}));
    }
    auto t = b->Finish();
    X100_RETURN_IF_ERROR(t.status());
    X100_RETURN_IF_ERROR(db->RegisterTable(std::move(t).value()).status());
  }
  {
    Rng rng(102);
    auto b = db->CreateTable("supplier", SupplierSchema(), layout);
    for (int64_t s = 1; s <= n_suppliers; s++) {
      X100_RETURN_IF_ERROR(b->AppendRow(
          {Value::I64(s), Value::Str("Supplier#" + std::to_string(s)),
           Value::Str("addr"), Value::I32(static_cast<int32_t>(
                                   rng.Uniform(0, 24))),
           Value::Str("phone"),
           Value::F64(rng.Uniform(-99999, 999999) / 100.0),
           Value::Str(Comment(&rng, 30))}));
    }
    auto t = b->Finish();
    X100_RETURN_IF_ERROR(t.status());
    X100_RETURN_IF_ERROR(db->RegisterTable(std::move(t).value()).status());
  }
  {
    Rng rng(103);
    static const char* kTypes[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE",
                                   "ECONOMY", "PROMO"};
    auto b = db->CreateTable("part", PartSchema(), layout);
    for (int64_t p = 1; p <= n_parts; p++) {
      X100_RETURN_IF_ERROR(b->AppendRow(
          {Value::I64(p), Value::Str("part-" + std::to_string(p)),
           Value::Str("Manufacturer#" +
                      std::to_string(rng.Uniform(1, 5))),
           Value::Str("Brand#" + std::to_string(rng.Uniform(11, 55))),
           Value::Str(std::string(kTypes[rng.Uniform(0, 5)]) + " BRUSHED"),
           Value::I32(static_cast<int32_t>(rng.Uniform(1, 50))),
           Value::Str("JUMBO PKG"),
           Value::F64(900 + (p % 1000) / 10.0),
           Value::Str(Comment(&rng, 20))}));
    }
    auto t = b->Finish();
    X100_RETURN_IF_ERROR(t.status());
    X100_RETURN_IF_ERROR(db->RegisterTable(std::move(t).value()).status());
  }

  // orders + lineitem generated together (1..7 lines per order).
  Rng rng(104);
  auto ob = db->CreateTable("orders", OrdersSchema(), layout);
  auto lb = db->CreateTable("lineitem", LineitemSchema(), layout);
  for (int64_t o = 1; o <= n_orders; o++) {
    const int32_t orderdate = static_cast<int32_t>(
        rng.Uniform(kStartDate, kEndDate - 151));
    const int64_t custkey = rng.Uniform(1, n_customers);
    const int n_lines = static_cast<int>(rng.Uniform(1, 7));
    double total = 0;
    for (int l = 1; l <= n_lines; l++) {
      const double qty = static_cast<double>(rng.Uniform(1, 50));
      const int64_t partkey = rng.Uniform(1, n_parts);
      const double price = qty * (900 + (partkey % 1000) / 10.0) / 10.0;
      const double discount = rng.Uniform(0, 10) / 100.0;
      const double tax = rng.Uniform(0, 8) / 100.0;
      const int32_t shipdate =
          orderdate + static_cast<int32_t>(rng.Uniform(1, 121));
      const int32_t commitdate =
          orderdate + static_cast<int32_t>(rng.Uniform(30, 90));
      const int32_t receiptdate =
          shipdate + static_cast<int32_t>(rng.Uniform(1, 30));
      const bool shipped = shipdate <= kCurrentDate;
      total += price * (1 + tax);
      X100_RETURN_IF_ERROR(lb->AppendRow(
          {Value::I64(o), Value::I64(partkey),
           Value::I64(rng.Uniform(1, n_suppliers)), Value::I32(l),
           Value::F64(qty), Value::F64(price), Value::F64(discount),
           Value::F64(tax),
           Value::Str(shipped ? (receiptdate <= kCurrentDate
                                     ? (rng.Bernoulli(0.5) ? "R" : "A")
                                     : "N")
                              : "N"),
           Value::Str(shipped ? "F" : "O"), Value::Date(shipdate),
           Value::Date(commitdate), Value::Date(receiptdate),
           Value::Str(kShipInstruct[rng.Uniform(0, 3)]),
           Value::Str(kShipModes[rng.Uniform(0, 6)]),
           Value::Str(Comment(&rng, 27))}));
    }
    X100_RETURN_IF_ERROR(ob->AppendRow(
        {Value::I64(o), Value::I64(custkey),
         Value::Str(orderdate + 151 < kCurrentDate ? "F" : "O"),
         Value::F64(total), Value::Date(orderdate),
         Value::Str(kPriorities[rng.Uniform(0, 4)]),
         Value::Str("Clerk#" + std::to_string(rng.Uniform(1, 1000))),
         Value::I32(0), Value::Str(Comment(&rng, 19))}));
  }
  auto ot = ob->Finish();
  X100_RETURN_IF_ERROR(ot.status());
  X100_RETURN_IF_ERROR(db->RegisterTable(std::move(ot).value()).status());
  auto lt = lb->Finish();
  X100_RETURN_IF_ERROR(lt.status());
  X100_RETURN_IF_ERROR(db->RegisterTable(std::move(lt).value()).status());
  db->events()->Info("TPC-H generated at SF " + std::to_string(sf));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Query plans (vectorized)
// ---------------------------------------------------------------------------

AlgebraPtr Q1Plan(int delta_days) {
  InitDates();
  const int32_t cutoff = MakeDate(1998, 12, 1) - delta_days;
  AlgebraPtr scan = ScanNode(
      "lineitem", {"l_returnflag", "l_linestatus", "l_quantity",
                   "l_extendedprice", "l_discount", "l_tax", "l_shipdate"});
  AlgebraPtr sel =
      SelectNode(scan, Le(Col("l_shipdate"), Lit(Value::Date(cutoff))));
  std::vector<ProjectItem> proj;
  proj.push_back({"l_returnflag", Col("l_returnflag")});
  proj.push_back({"l_linestatus", Col("l_linestatus")});
  proj.push_back({"l_quantity", Col("l_quantity")});
  proj.push_back({"l_extendedprice", Col("l_extendedprice")});
  proj.push_back({"l_discount", Col("l_discount")});
  proj.push_back(
      {"disc_price", Mul(Col("l_extendedprice"),
                         Sub(Lit(Value::F64(1.0)), Col("l_discount")))});
  proj.push_back(
      {"charge",
       Mul(Mul(Col("l_extendedprice"),
               Sub(Lit(Value::F64(1.0)), Col("l_discount"))),
           Add(Lit(Value::F64(1.0)), Col("l_tax")))});
  AlgebraPtr project = ProjectNode(sel, std::move(proj));
  std::vector<ProjectItem> keys;
  keys.push_back({"l_returnflag", Col("l_returnflag")});
  keys.push_back({"l_linestatus", Col("l_linestatus")});
  std::vector<AggItem> aggs;
  aggs.push_back({AggKind::kSum, Col("l_quantity"), "sum_qty"});
  aggs.push_back({AggKind::kSum, Col("l_extendedprice"), "sum_base_price"});
  aggs.push_back({AggKind::kSum, Col("disc_price"), "sum_disc_price"});
  aggs.push_back({AggKind::kSum, Col("charge"), "sum_charge"});
  aggs.push_back({AggKind::kAvg, Col("l_quantity"), "avg_qty"});
  aggs.push_back({AggKind::kAvg, Col("l_extendedprice"), "avg_price"});
  aggs.push_back({AggKind::kAvg, Col("l_discount"), "avg_disc"});
  aggs.push_back({AggKind::kCount, nullptr, "count_order"});
  AlgebraPtr aggr = AggrNode(project, std::move(keys), std::move(aggs));
  return OrderNode(aggr, {{"l_returnflag", true}, {"l_linestatus", true}});
}

AlgebraPtr Q3Plan(const std::string& segment) {
  InitDates();
  const int32_t cut = MakeDate(1995, 3, 15);
  // customer(filtered) ⋈ orders(filtered) ⋈ lineitem(filtered)
  AlgebraPtr cust = SelectNode(
      ScanNode("customer", {"c_custkey", "c_mktsegment"}),
      Eq(Col("c_mktsegment"), Lit(Value::Str(segment))));
  AlgebraPtr orders = SelectNode(
      ScanNode("orders",
               {"o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"}),
      Lt(Col("o_orderdate"), Lit(Value::Date(cut))));
  // build: customer, probe: orders.
  AlgebraPtr co = JoinNode(cust, orders, JoinType::kInner, {"c_custkey"},
                           {"o_custkey"});
  AlgebraPtr line = SelectNode(
      ScanNode("lineitem",
               {"l_orderkey", "l_extendedprice", "l_discount",
                "l_shipdate"}),
      Gt(Col("l_shipdate"), Lit(Value::Date(cut))));
  AlgebraPtr col = JoinNode(co, line, JoinType::kInner, {"o_orderkey"},
                            {"l_orderkey"});
  std::vector<ProjectItem> keys;
  keys.push_back({"l_orderkey", Col("l_orderkey")});
  keys.push_back({"o_orderdate", Col("o_orderdate")});
  keys.push_back({"o_shippriority", Col("o_shippriority")});
  std::vector<AggItem> aggs;
  ExprPtr revenue = Mul(Col("l_extendedprice"),
                        Sub(Lit(Value::F64(1.0)), Col("l_discount")));
  aggs.push_back({AggKind::kSum, revenue, "revenue"});
  AlgebraPtr aggr = AggrNode(col, std::move(keys), std::move(aggs));
  return OrderNode(aggr, {{"revenue", false}, {"o_orderdate", true}}, 10);
}

AlgebraPtr Q6Plan(int year) {
  InitDates();
  const int32_t lo = MakeDate(year, 1, 1);
  const int32_t hi = MakeDate(year + 1, 1, 1);
  AlgebraPtr scan = ScanNode(
      "lineitem",
      {"l_quantity", "l_extendedprice", "l_discount", "l_shipdate"});
  ExprPtr pred =
      And(And(Ge(Col("l_shipdate"), Lit(Value::Date(lo))),
              Lt(Col("l_shipdate"), Lit(Value::Date(hi)))),
          And(Call("between", {Col("l_discount"), Lit(Value::F64(0.05)),
                               Lit(Value::F64(0.07))}),
              Lt(Col("l_quantity"), Lit(Value::F64(24.0)))));
  AlgebraPtr sel = SelectNode(scan, pred);
  std::vector<AggItem> aggs;
  aggs.push_back({AggKind::kSum,
                  Mul(Col("l_extendedprice"), Col("l_discount")),
                  "revenue"});
  return AggrNode(sel, {}, std::move(aggs));
}

// ---------------------------------------------------------------------------
// Volcano plans
// ---------------------------------------------------------------------------

Result<std::vector<volcano::Row>> MaterializeRows(Database* db,
                                                  const std::string& table) {
  QueryExecutor exec(db);
  auto res = exec.Execute(ScanNode(table), "materialize " + table);
  X100_RETURN_IF_ERROR(res.status());
  return std::move(res->rows);
}

Result<volcano::VOperatorPtr> Q1Volcano(
    const std::vector<volcano::Row>* rows, int delta_days) {
  InitDates();
  const int32_t cutoff = MakeDate(1998, 12, 1) - delta_days;
  auto scan = std::make_unique<volcano::VScan>(LineitemSchema(), rows);
  auto sel = std::make_unique<volcano::VSelect>(
      std::move(scan), Le(Col("l_shipdate"), Lit(Value::Date(cutoff))));
  std::vector<volcano::VProjectItem> proj;
  proj.push_back({"l_returnflag", Col("l_returnflag")});
  proj.push_back({"l_linestatus", Col("l_linestatus")});
  proj.push_back({"l_quantity", Col("l_quantity")});
  proj.push_back({"l_extendedprice", Col("l_extendedprice")});
  proj.push_back({"l_discount", Col("l_discount")});
  proj.push_back(
      {"disc_price", Mul(Col("l_extendedprice"),
                         Sub(Lit(Value::F64(1.0)), Col("l_discount")))});
  proj.push_back(
      {"charge",
       Mul(Mul(Col("l_extendedprice"),
               Sub(Lit(Value::F64(1.0)), Col("l_discount"))),
           Add(Lit(Value::F64(1.0)), Col("l_tax")))});
  auto project = std::make_unique<volcano::VProject>(std::move(sel),
                                                     std::move(proj));
  std::vector<volcano::VProjectItem> keys;
  keys.push_back({"l_returnflag", Col("l_returnflag")});
  keys.push_back({"l_linestatus", Col("l_linestatus")});
  std::vector<volcano::VAggItem> aggs;
  aggs.push_back({AggKind::kSum, Col("l_quantity"), "sum_qty"});
  aggs.push_back({AggKind::kSum, Col("l_extendedprice"), "sum_base_price"});
  aggs.push_back({AggKind::kSum, Col("disc_price"), "sum_disc_price"});
  aggs.push_back({AggKind::kSum, Col("charge"), "sum_charge"});
  aggs.push_back({AggKind::kAvg, Col("l_quantity"), "avg_qty"});
  aggs.push_back({AggKind::kAvg, Col("l_extendedprice"), "avg_price"});
  aggs.push_back({AggKind::kAvg, Col("l_discount"), "avg_disc"});
  aggs.push_back({AggKind::kCount, nullptr, "count_order"});
  auto agg = std::make_unique<volcano::VHashAgg>(
      std::move(project), std::move(keys), std::move(aggs));
  return volcano::VOperatorPtr(std::make_unique<volcano::VSort>(
      std::move(agg),
      std::vector<volcano::VSort::Key>{{0, true}, {1, true}}));
}

Result<volcano::VOperatorPtr> Q6Volcano(
    const std::vector<volcano::Row>* rows, int year) {
  InitDates();
  const int32_t lo = MakeDate(year, 1, 1);
  const int32_t hi = MakeDate(year + 1, 1, 1);
  auto scan = std::make_unique<volcano::VScan>(LineitemSchema(), rows);
  ExprPtr pred =
      And(And(Ge(Col("l_shipdate"), Lit(Value::Date(lo))),
              Lt(Col("l_shipdate"), Lit(Value::Date(hi)))),
          And(And(Ge(Col("l_discount"), Lit(Value::F64(0.05))),
                  Le(Col("l_discount"), Lit(Value::F64(0.07)))),
              Lt(Col("l_quantity"), Lit(Value::F64(24.0)))));
  auto sel =
      std::make_unique<volcano::VSelect>(std::move(scan), std::move(pred));
  std::vector<volcano::VAggItem> aggs;
  aggs.push_back({AggKind::kSum,
                  Mul(Col("l_extendedprice"), Col("l_discount")),
                  "revenue"});
  return volcano::VOperatorPtr(std::make_unique<volcano::VHashAgg>(
      std::move(sel), std::vector<volcano::VProjectItem>{},
      std::move(aggs)));
}

}  // namespace tpch
}  // namespace x100
