// Database: catalog + shared resources (disk, buffer pool, scan scheduler,
// transaction manager, monitoring) — the embedding point of the engine.
//
// Thread-safety contract (serving layer, docs/SERVING.md): one Database
// serves any number of concurrent Sessions. Everything reachable through
// the accessors below — catalog lookup/registration, scheduler, spill
// device, memory tracker root, plan cache, quota controller, query
// registry, event log, counters, buffer pool, transaction manager — is
// safe to call from any thread. The exception is config(): it returns a
// mutable reference with no synchronization, so reconfigure only while no
// query is in flight (tests flip knobs between runs; a serving process
// sets the config once at startup). Destruction drains async submissions
// first (DrainAsync), so PendingQuery tasks never outlive the Database.
#ifndef X100_ENGINE_DATABASE_H_
#define X100_ENGINE_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/adaptive_quota.h"
#include "common/config.h"
#include "common/memory_tracker.h"
#include "common/task_scheduler.h"
#include "engine/plan_cache.h"
#include "monitor/monitor.h"
#include "pdt/transaction.h"
#include "storage/buffer_manager.h"
#include "storage/catalog.h"
#include "storage/coop_scan.h"
#include "storage/file_block_device.h"
#include "storage/file_spill_device.h"
#include "storage/simulated_disk.h"

namespace x100 {

class Database {
 public:
  explicit Database(EngineConfig config = EngineConfig())
      : config_(config),
        memory_(ResolvedMemoryLimit(config.memory_limit)),
        disk_(config.disk_bandwidth),
        data_device_(OpenDataDevice(config.data_path, config.disk_bandwidth,
                                    &open_status_)),
        buffers_(data_device_ != nullptr
                     ? static_cast<BlockDevice*>(data_device_.get())
                     : static_cast<BlockDevice*>(&disk_),
                 ResolvedBufferPoolBytes(config.buffer_pool_bytes)),
        plan_cache_(config.plan_cache_capacity) {
    queries_.set_history_cap(config.query_history_cap);
    buffers_.set_prefetch_budget_bytes(config.prefetch_budget_bytes);
    if (open_status_.ok() && data_device_ != nullptr) {
      open_status_ = LoadCatalogIntoTables();
    }
    if (!open_status_.ok()) {
      events_.Error("database open failed: " + open_status_.ToString());
    }
  }

  ~Database() {
    // Async queries run on the (possibly process-global) scheduler and
    // reference this Database's registry, trackers and tables — they must
    // complete before any member is torn down.
    DrainAsync();
  }

  /// The process-wide memory budget: config.memory_limit, or — when the
  /// config leaves it at 0 (unlimited) — the X100_MEMORY_LIMIT environment
  /// knob, which lets CI run the whole test suite with a tight default so
  /// the sanitizer jobs exercise the spill paths without per-test setup.
  static int64_t ResolvedMemoryLimit(int64_t configured) {
    if (configured != 0) return configured;
    const char* env = std::getenv("X100_MEMORY_LIMIT");
    if (env == nullptr || *env == '\0') return 0;
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    // Strict plain-bytes parse: "4M"-style suffixes or garbage would
    // otherwise silently become a wrong (or disabled) budget — warn once
    // and run unlimited instead.
    if (end == env || *end != '\0' || v < 0) {
      static bool warned = false;
      if (!warned) {
        warned = true;
        std::fprintf(stderr,
                     "x100: ignoring malformed X100_MEMORY_LIMIT=\"%s\" "
                     "(expected plain bytes, e.g. 4194304)\n",
                     env);
      }
      return 0;
    }
    return v;
  }

  /// The buffer pool byte budget: config.buffer_pool_bytes when >= 0, or
  /// — when the config leaves it negative (auto) — the X100_BUFFER_POOL
  /// environment knob, which lets CI run whole test suites under a tight
  /// pool (e.g. "4MiB") so eviction paths are exercised without per-test
  /// setup. Accepts plain bytes or a binary suffix (K/Ki/KiB, M/Mi/MiB,
  /// G/Gi/GiB — all powers of 1024). Unset or malformed (warned once)
  /// falls back to 64 MiB.
  static int64_t ResolvedBufferPoolBytes(int64_t configured) {
    if (configured >= 0) return configured;
    constexpr int64_t kDefault = 64ll * 1024 * 1024;
    const char* env = std::getenv("X100_BUFFER_POOL");
    if (env == nullptr || *env == '\0') return kDefault;
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    int64_t mult = 0;
    if (end != env && v >= 0) {
      const std::string suffix(end);
      if (suffix.empty()) {
        mult = 1;
      } else if (suffix == "K" || suffix == "Ki" || suffix == "KiB") {
        mult = 1024;
      } else if (suffix == "M" || suffix == "Mi" || suffix == "MiB") {
        mult = 1024 * 1024;
      } else if (suffix == "G" || suffix == "Gi" || suffix == "GiB") {
        mult = 1024ll * 1024 * 1024;
      }
    }
    if (mult == 0) {
      static bool warned = false;
      if (!warned) {
        warned = true;
        std::fprintf(stderr,
                     "x100: ignoring malformed X100_BUFFER_POOL=\"%s\" "
                     "(expected bytes or a binary suffix, e.g. 4MiB)\n",
                     env);
      }
      return kDefault;
    }
    return static_cast<int64_t>(v) * mult;
  }

  /// The spill directory: config.spill_path, or — when the config leaves
  /// it empty — the X100_SPILL_PATH environment knob, which lets CI run
  /// whole test suites over the file-backed device without per-test
  /// setup. Empty means "spill to the SimulatedDisk".
  static std::string ResolvedSpillPath(const std::string& configured) {
    if (!configured.empty()) return configured;
    const char* env = std::getenv("X100_SPILL_PATH");
    return env != nullptr ? std::string(env) : std::string();
  }

  /// The device out-of-core execution spills to: the in-RAM SimulatedDisk
  /// by default, or a lazily-created FileSpillDevice when a spill path is
  /// configured. Creation failure (missing/unwritable directory) is
  /// returned, not swallowed — a configured spill path that cannot be
  /// used must fail queries loudly instead of silently keeping spilled
  /// state in RAM. The device lives until Database destruction, which
  /// removes its temp file.
  Result<SpillDevice*> spill_device() {
    const std::string dir = ResolvedSpillPath(config_.spill_path);
    if (dir.empty()) return static_cast<SpillDevice*>(&disk_);
    std::lock_guard<std::mutex> lock(spill_device_mu_);
    if (file_spill_device_ == nullptr || file_spill_dir_ != dir) {
      // A device whose directory no longer matches the config is
      // retired — kept alive until Database destruction, like retired
      // schedulers — since in-flight queries may still hold SpillFiles
      // pointing at it.
      if (file_spill_device_ != nullptr) {
        retired_spill_devices_.push_back(std::move(file_spill_device_));
      }
      X100_ASSIGN_OR_RETURN(file_spill_device_, FileSpillDevice::Create(dir));
      file_spill_dir_ = dir;
    }
    return static_cast<SpillDevice*>(file_spill_device_.get());
  }

  /// The file-backed device if one has been created (tests install fault
  /// hooks through this); nullptr while spilling targets the
  /// SimulatedDisk.
  FileSpillDevice* file_spill_device() {
    std::lock_guard<std::mutex> lock(spill_device_mu_);
    return file_spill_device_.get();
  }

  /// Starts a table definition; finish with RegisterTable(builder.Finish()).
  /// Blocks go to the durable device when data_path is configured, else to
  /// the SimulatedDisk.
  std::unique_ptr<TableBuilder> CreateTable(const std::string& name,
                                            Schema schema, Layout layout,
                                            int64_t group_rows = 0) {
    return std::make_unique<TableBuilder>(name, std::move(schema), layout,
                                          block_device(), group_rows);
  }

  Result<UpdatableTable*> RegisterTable(std::unique_ptr<Table> table) {
    X100_RETURN_IF_ERROR(open_status_);
    const std::string name = table->name();
    UpdatableTable* ptr = nullptr;
    {
      std::lock_guard<std::mutex> lock(tables_mu_);
      if (tables_.count(name)) {
        return Status::AlreadyExists("table " + name + " already exists");
      }
      auto updatable = std::make_unique<UpdatableTable>(std::move(table));
      ptr = updatable.get();
      tables_[name] = std::move(updatable);
      catalog_version_.fetch_add(1, std::memory_order_acq_rel);
    }
    events_.Info("created table " + name);
    const Status saved = SaveCatalog();
    if (!saved.ok()) {
      // A failed operation must not leave memory and disk diverged: undo
      // the registration. The object is retired, not destroyed — a racing
      // GetTable may already have resolved the name to it.
      {
        std::lock_guard<std::mutex> lock(tables_mu_);
        auto it = tables_.find(name);
        if (it != tables_.end() && it->second.get() == ptr) {
          retired_tables_.push_back(std::move(it->second));
          tables_.erase(it);
        }
        catalog_version_.fetch_add(1, std::memory_order_acq_rel);
      }
      events_.Error("rolled back table " + name +
                    " (catalog save failed): " + saved.ToString());
      return saved;
    }
    return ptr;
  }

  /// DDL drop. The table object is RETIRED — kept alive until Database
  /// destruction, like retired schedulers — because in-flight queries may
  /// still hold a pointer resolved before the drop; it just becomes
  /// unreachable by name. Bumps the catalog version, so plans cached
  /// against the old catalog are invalidated on next lookup.
  Status DropTable(const std::string& name) {
    X100_RETURN_IF_ERROR(open_status_);
    UpdatableTable* dropped = nullptr;
    {
      std::lock_guard<std::mutex> lock(tables_mu_);
      auto it = tables_.find(name);
      if (it == tables_.end()) {
        return Status::NotFound("table not found: " + name);
      }
      dropped = it->second.get();
      retired_tables_.push_back(std::move(it->second));
      tables_.erase(it);
      catalog_version_.fetch_add(1, std::memory_order_acq_rel);
    }
    events_.Info("dropped table " + name);
    const Status saved = SaveCatalog();
    if (!saved.ok()) {
      // The durable catalog still lists the table; resurrect it in memory
      // so a failed drop leaves both sides agreeing that it exists.
      {
        std::lock_guard<std::mutex> lock(tables_mu_);
        for (auto it = retired_tables_.begin(); it != retired_tables_.end();
             ++it) {
          if (it->get() == dropped) {
            if (tables_.count(name) == 0) {
              tables_[name] = std::move(*it);
              retired_tables_.erase(it);
            }
            break;
          }
        }
        catalog_version_.fetch_add(1, std::memory_order_acq_rel);
      }
      events_.Error("rolled back drop of " + name +
                    " (catalog save failed): " + saved.ToString());
    }
    return saved;
  }

  /// Quiesced checkpoint of one table (pdt/transaction.h) followed by a
  /// catalog save, so the rewritten block map is durable. This is the
  /// durability boundary: deltas committed but not yet checkpointed live
  /// only in the in-memory read-PDT and do NOT survive a restart.
  Status Checkpoint(const std::string& name) {
    X100_RETURN_IF_ERROR(open_status_);
    UpdatableTable* table = nullptr;
    X100_ASSIGN_OR_RETURN(table, GetTable(name));
    std::vector<BlockId> retired;
    X100_RETURN_IF_ERROR(txn_manager_.Checkpoint(table, &buffers_, &retired));
    const Status saved = SaveCatalog();
    if (!saved.ok()) {
      // The durable (old) catalog still references the retired slots;
      // recycling one under a concurrent write would make a reopened
      // Database serve the wrong block's bytes. Leave them allocated —
      // they are reclaimed by the free-list restore on the next open.
      events_.Error("checkpoint of " + name + " not durable, keeping " +
                    std::to_string(retired.size()) +
                    " retired block(s) allocated: " + saved.ToString());
      return saved;
    }
    for (BlockId id : retired) block_device()->FreeBlock(id);
    return Status::OK();
  }

  /// Serializes every table's schema + block map to
  /// `<data_path>/x100-catalog.bin` (no-op without a data_path). The data
  /// file is synced first so the catalog never references blocks that are
  /// not yet stable.
  Status SaveCatalog() {
    if (data_device_ == nullptr) return Status::OK();
    std::vector<CatalogTable> cat;
    {
      std::lock_guard<std::mutex> lock(tables_mu_);
      cat.reserve(tables_.size());
      for (const auto& [name, ut] : tables_) {
        const Table* base = ut->base();
        CatalogTable t;
        t.name = name;
        t.schema = base->schema();
        t.layout = base->layout();
        t.num_rows = base->num_rows();
        t.groups.reserve(base->num_groups());
        for (int g = 0; g < base->num_groups(); g++) {
          t.groups.push_back(base->group(g));
        }
        cat.push_back(std::move(t));
      }
    }
    X100_RETURN_IF_ERROR(data_device_->Sync());
    return x100::SaveCatalog(config_.data_path, cat);
  }

  Result<UpdatableTable*> GetTable(const std::string& name) {
    std::lock_guard<std::mutex> lock(tables_mu_);
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::NotFound("table not found: " + name);
    }
    return it->second.get();
  }

  /// Monotonic catalog version: bumped by every schema-affecting change
  /// (RegisterTable/DropTable). The plan-cache key — a prepared plan is
  /// only served while the catalog it was compiled against is current.
  /// Data changes (PDT commits, appends) deliberately do NOT bump it:
  /// physical planning re-reads table state per execution (see
  /// engine/plan_cache.h).
  int64_t catalog_version() const {
    return catalog_version_.load(std::memory_order_acquire);
  }

  /// Prepared-statement cache (Session::Prepare). Sized once at
  /// construction from config.plan_cache_capacity.
  PlanCache* plan_cache() { return &plan_cache_; }

  /// The adaptive task-quota controller governing this Database's queries
  /// (common/adaptive_quota.h). Created lazily against the current
  /// scheduler + configured budget; a controller invalidated by a config
  /// change is retired (quotas of in-flight queries still point into it)
  /// rather than destroyed. Callers with query_task_quota < 0 (unlimited)
  /// must not register — QueryExecutor runs those queries quota-less.
  AdaptiveQuotaController* quota_controller() {
    TaskScheduler* sched = scheduler();
    std::lock_guard<std::mutex> lock(quota_mu_);
    if (quota_controller_ == nullptr || quota_scheduler_ != sched ||
        quota_budget_ != config_.query_task_quota) {
      if (quota_controller_ != nullptr) {
        retired_quota_controllers_.push_back(std::move(quota_controller_));
      }
      quota_controller_ = std::make_unique<AdaptiveQuotaController>(
          sched, config_.query_task_quota);
      quota_scheduler_ = sched;
      quota_budget_ = config_.query_task_quota;
    }
    return quota_controller_.get();
  }

  // --- Async admission (Session::Submit / PendingQuery) ---------------

  /// Admits one async query against config.admission_queue_cap (counting
  /// queued + running submissions; 0 = unbounded). On success the caller
  /// MUST pair with FinishAsync when the query completes.
  Status TryAdmitAsync() {
    std::lock_guard<std::mutex> lock(async_mu_);
    const int cap = config_.admission_queue_cap;
    if (cap > 0 && async_inflight_ >= cap) {
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(async_inflight_) + "/" +
          std::to_string(cap) + " async queries in flight)");
    }
    async_inflight_++;
    return Status::OK();
  }

  void FinishAsync() {
    {
      std::lock_guard<std::mutex> lock(async_mu_);
      async_inflight_--;
    }
    async_cv_.notify_all();
  }

  int async_inflight() const {
    std::lock_guard<std::mutex> lock(async_mu_);
    return async_inflight_;
  }

  /// Blocks until every admitted async query has completed. Called by the
  /// destructor; also useful as a test barrier. Must not be called from a
  /// scheduler worker (it would wait on itself).
  void DrainAsync() {
    std::unique_lock<std::mutex> lock(async_mu_);
    async_cv_.wait(lock, [this] { return async_inflight_ == 0; });
  }

  /// Mutable engine configuration. NOT synchronized: reconfigure only
  /// while no query is in flight (see the class comment).
  EngineConfig& config() { return config_; }

  /// Pool parallel plans run on: the process-wide scheduler by default, or
  /// a private pool when config.scheduler_workers > 0 (created lazily so
  /// the common case never spawns extra threads). Creation is mutex-
  /// guarded, and a pool whose worker count no longer matches the config
  /// is retired — kept alive until Database destruction — rather than
  /// destroyed, since in-flight queries may still hold a pointer to it.
  TaskScheduler* scheduler() {
    if (config_.scheduler_workers <= 0) return TaskScheduler::Global();
    std::lock_guard<std::mutex> lock(scheduler_mu_);
    if (own_scheduler_ == nullptr ||
        own_scheduler_->num_workers() != config_.scheduler_workers) {
      if (own_scheduler_ != nullptr) {
        retired_schedulers_.push_back(std::move(own_scheduler_));
      }
      own_scheduler_ =
          std::make_unique<TaskScheduler>(config_.scheduler_workers);
    }
    return own_scheduler_.get();
  }

  /// Root of the memory-tracker hierarchy: every query's tracker parents
  /// here, so used() is the engine-wide footprint of materialized query
  /// state. The limit follows the config: QueryExecutor re-applies it at
  /// each query start (tests flip config().memory_limit between runs).
  MemoryTracker* memory() { return &memory_; }

  SimulatedDisk* disk() { return &disk_; }
  /// The device base-table blocks live on: the durable FileBlockDevice
  /// when data_path is configured, else the SimulatedDisk.
  BlockDevice* block_device() {
    return data_device_ != nullptr
               ? static_cast<BlockDevice*>(data_device_.get())
               : static_cast<BlockDevice*>(&disk_);
  }
  /// The durable device if one is open (tests install fault hooks through
  /// this); nullptr in RAM-backed mode.
  FileBlockDevice* data_device() { return data_device_.get(); }
  /// Construction outcome: data-device open + catalog load. A Database
  /// whose open_status() is non-OK has an empty catalog; the write entry
  /// points (RegisterTable/DropTable/Checkpoint) refuse with this status,
  /// so the durable state on disk is left untouched and a caller cannot
  /// accidentally run a volatile database believing it durable.
  const Status& open_status() const { return open_status_; }
  BufferManager* buffers() { return &buffers_; }
  TransactionManager* txn_manager() { return &txn_manager_; }
  EventLog* events() { return &events_; }
  QueryRegistry* queries() { return &queries_; }
  Counters* counters() { return &counters_; }

 private:
  static std::unique_ptr<FileBlockDevice> OpenDataDevice(
      const std::string& data_path, int64_t bandwidth_bytes_per_sec,
      Status* status) {
    if (data_path.empty()) return nullptr;
    auto dev = FileBlockDevice::Open(data_path, bandwidth_bytes_per_sec);
    if (!dev.ok()) {
      *status = dev.status();
      return nullptr;
    }
    return std::move(dev).value();
  }

  /// Rebuilds Table images from the persisted catalog and teaches the
  /// data device which slots are live (free-list restore). Ctor-only.
  Status LoadCatalogIntoTables() {
    std::vector<CatalogTable> cat;
    X100_ASSIGN_OR_RETURN(cat, LoadCatalog(config_.data_path));
    std::vector<BlockId> live;
    {
      std::lock_guard<std::mutex> lock(tables_mu_);
      for (CatalogTable& t : cat) {
        const std::string name = t.name;
        auto table =
            Table::Restore(std::move(t.name), std::move(t.schema), t.layout,
                           data_device_.get(), std::move(t.groups), t.num_rows);
        for (BlockId b : table->CollectBlockIds()) live.push_back(b);
        tables_[name] = std::make_unique<UpdatableTable>(std::move(table));
      }
    }
    data_device_->RestoreAllocated(live);
    if (!cat.empty()) {
      events_.Info("catalog loaded: " + std::to_string(cat.size()) +
                   " table(s) from " + config_.data_path);
    }
    return Status::OK();
  }

  EngineConfig config_;
  MemoryTracker memory_;
  std::mutex scheduler_mu_;
  std::unique_ptr<TaskScheduler> own_scheduler_;
  std::vector<std::unique_ptr<TaskScheduler>> retired_schedulers_;
  SimulatedDisk disk_;
  Status open_status_;  // before data_device_: its initializer writes here
  std::unique_ptr<FileBlockDevice> data_device_;
  std::mutex spill_device_mu_;
  std::unique_ptr<FileSpillDevice> file_spill_device_;
  std::vector<std::unique_ptr<FileSpillDevice>> retired_spill_devices_;
  std::string file_spill_dir_;
  BufferManager buffers_;
  TransactionManager txn_manager_;
  std::mutex tables_mu_;
  std::map<std::string, std::unique_ptr<UpdatableTable>> tables_;
  std::vector<std::unique_ptr<UpdatableTable>> retired_tables_;
  std::atomic<int64_t> catalog_version_{1};
  PlanCache plan_cache_;
  std::mutex quota_mu_;
  std::unique_ptr<AdaptiveQuotaController> quota_controller_;
  std::vector<std::unique_ptr<AdaptiveQuotaController>>
      retired_quota_controllers_;
  TaskScheduler* quota_scheduler_ = nullptr;
  int quota_budget_ = 0;
  mutable std::mutex async_mu_;
  std::condition_variable async_cv_;
  int async_inflight_ = 0;
  EventLog events_;
  QueryRegistry queries_;
  Counters counters_;
};

}  // namespace x100

#endif  // X100_ENGINE_DATABASE_H_
