// Database: catalog + shared resources (disk, buffer pool, scan scheduler,
// transaction manager, monitoring) — the embedding point of the engine.
#ifndef X100_ENGINE_DATABASE_H_
#define X100_ENGINE_DATABASE_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/memory_tracker.h"
#include "common/task_scheduler.h"
#include "monitor/monitor.h"
#include "pdt/transaction.h"
#include "storage/buffer_manager.h"
#include "storage/coop_scan.h"
#include "storage/file_spill_device.h"
#include "storage/simulated_disk.h"

namespace x100 {

class Database {
 public:
  explicit Database(EngineConfig config = EngineConfig())
      : config_(config),
        memory_(ResolvedMemoryLimit(config.memory_limit)),
        disk_(config.disk_bandwidth),
        buffers_(&disk_, config.buffer_pool_blocks) {}

  /// The process-wide memory budget: config.memory_limit, or — when the
  /// config leaves it at 0 (unlimited) — the X100_MEMORY_LIMIT environment
  /// knob, which lets CI run the whole test suite with a tight default so
  /// the sanitizer jobs exercise the spill paths without per-test setup.
  static int64_t ResolvedMemoryLimit(int64_t configured) {
    if (configured != 0) return configured;
    const char* env = std::getenv("X100_MEMORY_LIMIT");
    if (env == nullptr || *env == '\0') return 0;
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    // Strict plain-bytes parse: "4M"-style suffixes or garbage would
    // otherwise silently become a wrong (or disabled) budget — warn once
    // and run unlimited instead.
    if (end == env || *end != '\0' || v < 0) {
      static bool warned = false;
      if (!warned) {
        warned = true;
        std::fprintf(stderr,
                     "x100: ignoring malformed X100_MEMORY_LIMIT=\"%s\" "
                     "(expected plain bytes, e.g. 4194304)\n",
                     env);
      }
      return 0;
    }
    return v;
  }

  /// The spill directory: config.spill_path, or — when the config leaves
  /// it empty — the X100_SPILL_PATH environment knob, which lets CI run
  /// whole test suites over the file-backed device without per-test
  /// setup. Empty means "spill to the SimulatedDisk".
  static std::string ResolvedSpillPath(const std::string& configured) {
    if (!configured.empty()) return configured;
    const char* env = std::getenv("X100_SPILL_PATH");
    return env != nullptr ? std::string(env) : std::string();
  }

  /// The device out-of-core execution spills to: the in-RAM SimulatedDisk
  /// by default, or a lazily-created FileSpillDevice when a spill path is
  /// configured. Creation failure (missing/unwritable directory) is
  /// returned, not swallowed — a configured spill path that cannot be
  /// used must fail queries loudly instead of silently keeping spilled
  /// state in RAM. The device lives until Database destruction, which
  /// removes its temp file.
  Result<SpillDevice*> spill_device() {
    const std::string dir = ResolvedSpillPath(config_.spill_path);
    if (dir.empty()) return static_cast<SpillDevice*>(&disk_);
    std::lock_guard<std::mutex> lock(spill_device_mu_);
    if (file_spill_device_ == nullptr || file_spill_dir_ != dir) {
      // A device whose directory no longer matches the config is
      // retired — kept alive until Database destruction, like retired
      // schedulers — since in-flight queries may still hold SpillFiles
      // pointing at it.
      if (file_spill_device_ != nullptr) {
        retired_spill_devices_.push_back(std::move(file_spill_device_));
      }
      X100_ASSIGN_OR_RETURN(file_spill_device_, FileSpillDevice::Create(dir));
      file_spill_dir_ = dir;
    }
    return static_cast<SpillDevice*>(file_spill_device_.get());
  }

  /// The file-backed device if one has been created (tests install fault
  /// hooks through this); nullptr while spilling targets the
  /// SimulatedDisk.
  FileSpillDevice* file_spill_device() {
    std::lock_guard<std::mutex> lock(spill_device_mu_);
    return file_spill_device_.get();
  }

  /// Starts a table definition; finish with RegisterTable(builder.Finish()).
  std::unique_ptr<TableBuilder> CreateTable(const std::string& name,
                                            Schema schema, Layout layout,
                                            int64_t group_rows = 0) {
    return std::make_unique<TableBuilder>(name, std::move(schema), layout,
                                          &disk_, group_rows);
  }

  Result<UpdatableTable*> RegisterTable(std::unique_ptr<Table> table) {
    const std::string name = table->name();
    if (tables_.count(name)) {
      return Status::AlreadyExists("table " + name + " already exists");
    }
    auto updatable = std::make_unique<UpdatableTable>(std::move(table));
    UpdatableTable* ptr = updatable.get();
    tables_[name] = std::move(updatable);
    events_.Info("created table " + name);
    return ptr;
  }

  Result<UpdatableTable*> GetTable(const std::string& name) {
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::NotFound("table not found: " + name);
    }
    return it->second.get();
  }

  EngineConfig& config() { return config_; }

  /// Pool parallel plans run on: the process-wide scheduler by default, or
  /// a private pool when config.scheduler_workers > 0 (created lazily so
  /// the common case never spawns extra threads). Creation is mutex-
  /// guarded, and a pool whose worker count no longer matches the config
  /// is retired — kept alive until Database destruction — rather than
  /// destroyed, since in-flight queries may still hold a pointer to it.
  TaskScheduler* scheduler() {
    if (config_.scheduler_workers <= 0) return TaskScheduler::Global();
    std::lock_guard<std::mutex> lock(scheduler_mu_);
    if (own_scheduler_ == nullptr ||
        own_scheduler_->num_workers() != config_.scheduler_workers) {
      if (own_scheduler_ != nullptr) {
        retired_schedulers_.push_back(std::move(own_scheduler_));
      }
      own_scheduler_ =
          std::make_unique<TaskScheduler>(config_.scheduler_workers);
    }
    return own_scheduler_.get();
  }

  /// Root of the memory-tracker hierarchy: every query's tracker parents
  /// here, so used() is the engine-wide footprint of materialized query
  /// state. The limit follows the config: QueryExecutor re-applies it at
  /// each query start (tests flip config().memory_limit between runs).
  MemoryTracker* memory() { return &memory_; }

  SimulatedDisk* disk() { return &disk_; }
  BufferManager* buffers() { return &buffers_; }
  TransactionManager* txn_manager() { return &txn_manager_; }
  EventLog* events() { return &events_; }
  QueryRegistry* queries() { return &queries_; }
  Counters* counters() { return &counters_; }

 private:
  EngineConfig config_;
  MemoryTracker memory_;
  std::mutex scheduler_mu_;
  std::unique_ptr<TaskScheduler> own_scheduler_;
  std::vector<std::unique_ptr<TaskScheduler>> retired_schedulers_;
  SimulatedDisk disk_;
  std::mutex spill_device_mu_;
  std::unique_ptr<FileSpillDevice> file_spill_device_;
  std::vector<std::unique_ptr<FileSpillDevice>> retired_spill_devices_;
  std::string file_spill_dir_;
  BufferManager buffers_;
  TransactionManager txn_manager_;
  std::map<std::string, std::unique_ptr<UpdatableTable>> tables_;
  EventLog events_;
  QueryRegistry queries_;
  Counters counters_;
};

}  // namespace x100

#endif  // X100_ENGINE_DATABASE_H_
