// PlanCache: mutex-sharded LRU of prepared statements, owned by Database.
//
// The serving-path lesson of the paper (X100 -> Vectorwise) is that once
// the kernel loop is vectorized, the frontend path — parse, cross-
// compile, rewrite — dominates small-query latency. Session::Prepare
// does that work once and caches the REWRITTEN algebra here, keyed by
// (sql, catalog version):
//
//  * The cached plan is immutable and shared: concurrent executions each
//    run their own physical Build against it (the planner clones
//    expressions and keeps all mutable state in its own PlannerContext),
//    so one entry serves any number of in-flight queries.
//  * Data changes (PDT inserts/deletes, appends) do NOT invalidate
//    entries — physical planning re-reads table state (schemas by name,
//    scan-spine row estimates for radix AUTO-sizing) at every execution,
//    so a cached plan can never serve stale row counts. Only catalog
//    changes (CREATE/DROP TABLE — Database::catalog_version) rotate the
//    key: a stale-version entry found by Lookup is dropped on sight and
//    counted as an invalidation.
//  * Sharded by sql hash: concurrent sessions preparing different
//    statements contend on different mutexes; per-shard LRU eviction.
//
// Thread-safe. Capacity 0 disables caching (Lookup always misses,
// Insert is a no-op).
#ifndef X100_ENGINE_PLAN_CACHE_H_
#define X100_ENGINE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "algebra/algebra.h"
#include "rewriter/rewriter.h"

namespace x100 {

/// One prepared statement: the frontend work of a query, done once.
/// Immutable after construction; shared across sessions and concurrent
/// executions via shared_ptr<const>.
struct PreparedPlan {
  std::string sql;         // monitoring label + cache key
  AlgebraPtr rewritten;    // post-rewrite algebra, ready for Build
  RewriteStats stats;      // rewrite-rule hit counts (introspection)
  int64_t catalog_version = 0;  // Database::catalog_version at prepare
  /// True when compiled from SQL text (recompilable on a stale catalog
  /// version); false for hand-built algebra plans (Session::PreparePlan).
  bool from_sql = false;
};

class PlanCache {
 public:
  explicit PlanCache(int capacity) : capacity_(capacity) {}

  /// Returns the cached plan for `sql` if present AND prepared under
  /// `catalog_version`; a present-but-stale entry is invalidated (erased,
  /// counted) and reported as a miss.
  std::shared_ptr<const PreparedPlan> Lookup(const std::string& sql,
                                             int64_t catalog_version) {
    if (capacity_ <= 0) return nullptr;
    Shard& s = ShardFor(sql);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.entries.find(sql);
    if (it == s.entries.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    if (it->second.plan->catalog_version != catalog_version) {
      s.lru.erase(it->second.lru_pos);
      s.entries.erase(it);
      invalidations_.fetch_add(1, std::memory_order_relaxed);
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    // Touch: move to the MRU end.
    s.lru.splice(s.lru.end(), s.lru, it->second.lru_pos);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second.plan;
  }

  /// Inserts (or replaces — a concurrent prepare of the same sql may have
  /// raced us; last one wins, both plans are equivalent) and evicts the
  /// shard's LRU entry beyond capacity.
  void Insert(std::shared_ptr<const PreparedPlan> plan) {
    if (capacity_ <= 0 || plan == nullptr) return;
    Shard& s = ShardFor(plan->sql);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.entries.find(plan->sql);
    if (it != s.entries.end()) {
      s.lru.splice(s.lru.end(), s.lru, it->second.lru_pos);
      it->second.plan = std::move(plan);
      return;
    }
    const std::string sql = plan->sql;  // before the move below
    s.lru.push_back(sql);
    auto lru_pos = std::prev(s.lru.end());
    s.entries.emplace(sql, Entry{std::move(plan), lru_pos});
    const int per_shard = capacity_ / kShards > 0 ? capacity_ / kShards : 1;
    while (static_cast<int>(s.entries.size()) > per_shard) {
      s.entries.erase(s.lru.front());
      s.lru.pop_front();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Drops every entry (tests; not needed for correctness — version
  /// keying already prevents stale service).
  void Clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.entries.clear();
      s.lru.clear();
    }
  }

  int capacity() const { return capacity_; }
  int64_t size() const {
    int64_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      n += static_cast<int64_t>(s.entries.size());
    }
    return n;
  }
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  int64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr int kShards = 8;

  struct Entry {
    std::shared_ptr<const PreparedPlan> plan;
    std::list<std::string>::iterator lru_pos;
  };
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, Entry> entries;
    std::list<std::string> lru;  // front = LRU, back = MRU
  };

  Shard& ShardFor(const std::string& sql) {
    return shards_[std::hash<std::string>{}(sql) % kShards];
  }

  const int capacity_;
  Shard shards_[kShards];
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> invalidations_{0};
};

}  // namespace x100

#endif  // X100_ENGINE_PLAN_CACHE_H_
