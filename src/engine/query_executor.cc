#include "engine/query_executor.h"

#include <algorithm>
#include <chrono>

namespace x100 {

Result<OperatorPtr> QueryExecutor::Build(const AlgebraPtr& plan,
                                         ExecContext* ctx) {
  PlannerContext pc;
  pc.db = db_;
  pc.exec = ctx;
  // Pipeline decomposition happens here, not in the rewriter: breaker
  // factories clone their input chains `parallelism` ways (see
  // engine/physical_plan.h).
  pc.parallelism = std::max(1, db_->config().max_parallelism);
  pc.radix_bits =
      EffectiveRadixBits(db_->config().radix_bits, pc.parallelism);
  pc.configured_radix_bits = db_->config().radix_bits;
  // Root dispatch handles the one shape the factories cannot: a join at
  // the plan root gets its probe clones unioned by an exchange sink.
  return BuildRootOperator(plan, &pc, planner_);
}

Result<QueryResult> QueryExecutor::Execute(AlgebraPtr plan,
                                           const std::string& text,
                                           CancellationToken* cancel) {
  Rewriter rewriter;
  auto rewritten = rewriter.Rewrite(std::move(plan));
  X100_RETURN_IF_ERROR(rewritten.status());
  last_stats_ = rewriter.stats();
  return RunRewritten(*rewritten, text, cancel);
}

Result<QueryResult> QueryExecutor::RunRewritten(const AlgebraPtr& plan,
                                                const std::string& text,
                                                CancellationToken* cancel,
                                                int64_t qid) {
  // Admission control: this query's pipelines draw task slots from one
  // quota, so a single wide query cannot flood the shared pool. The
  // quota's limit is the query's CURRENT share of the global budget,
  // retargeted by the adaptive controller as queries come and go
  // (common/adaptive_quota.h); holding the shared_ptr is the
  // registration. query_task_quota < 0 = unlimited, no quota at all.
  std::shared_ptr<TaskQuota> quota;
  if (db_->config().query_task_quota >= 0) {
    quota = db_->quota_controller()->Register();
  }
  // Memory governance: the query charges a child tracker rolling up into
  // the Database's process-wide budget; the limit is re-read from the
  // config here so tests/benches can sweep it between queries. The
  // tracker must outlive the operator tree (declared before `root`):
  // JoinBuildState and the breaker operators hold reservations until
  // they are destroyed.
  db_->memory()->set_limit(
      Database::ResolvedMemoryLimit(db_->config().memory_limit));
  db_->queries()->set_history_cap(db_->config().query_history_cap);
  db_->buffers()->set_capacity_bytes(
      Database::ResolvedBufferPoolBytes(db_->config().buffer_pool_bytes));
  db_->buffers()->set_prefetch_budget_bytes(
      db_->config().prefetch_budget_bytes);
  MemoryTracker query_memory(/*limit=*/0, db_->memory());
  ExecContext ctx;
  ctx.vector_size = db_->config().vector_size;
  ctx.simd = ResolveSimdLevel(db_->config().simd_level);
  ctx.cancel = cancel;
  ctx.events = db_->events();
  ctx.scheduler = db_->scheduler();
  ctx.quota = quota.get();
  ctx.memory = &query_memory;
  ctx.buffers = db_->buffers();
  if (db_->config().enable_spill) {
    // A configured-but-unusable spill path (missing directory, no
    // permission) fails the query here, loudly — silently falling back
    // to in-RAM spilling would defeat the point of the knob.
    auto device = db_->spill_device();
    X100_RETURN_IF_ERROR(device.status());
    ctx.spill_device = *device;
  }

  if (qid < 0) {
    qid = db_->queries()->Begin(text.empty() ? "<algebra query>" : text);
  } else {
    db_->queries()->MarkRunning(qid);
  }
  db_->events()->Info("query " + std::to_string(qid) + " started");

  const auto t0 = std::chrono::steady_clock::now();
  OperatorPtr root;
  {
    auto built = Build(plan, &ctx);
    if (!built.ok()) {
      db_->queries()->Finish(qid, built.status(), 0);
      return built.status();
    }
    root = std::move(built).value();
  }
  auto result = CollectRows(root.get(), &ctx);
  const Status status = result.ok() ? Status::OK() : result.status();

  // CollectRows closed the whole tree, so every operator has flushed its
  // metrics; snapshot them for the result and the query listing.
  QueryProfile profile = ctx.TakeProfile();
  profile.simd = SimdLevelName(ctx.simd);
  profile.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  if (result.ok()) result->profile = profile;

  db_->queries()->Finish(qid, status, ctx.tuples_scanned.load(),
                         std::move(profile));
  db_->events()->Info("query " + std::to_string(qid) + " " +
                      (status.ok() ? "finished" : status.ToString()));
  db_->counters()->Add("queries.total", 1);
  if (!status.ok()) db_->counters()->Add("queries.failed", 1);
  // Storage-layer gauges for the monitoring surface: buffer pool state
  // and cumulative device traffic as of this query's completion.
  BufferManager* bm = db_->buffers();
  Counters* counters = db_->counters();
  counters->Set("buffer.hits", bm->hits());
  counters->Set("buffer.misses", bm->misses());
  counters->Set("buffer.evictions", bm->evictions());
  counters->Set("buffer.single_flight_waits", bm->single_flight_waits());
  counters->Set("buffer.prefetch_issued", bm->prefetch_issued());
  counters->Set("buffer.prefetch_hits", bm->prefetch_hits());
  counters->Set("buffer.prefetch_wasted", bm->prefetch_wasted());
  counters->Set("buffer.prefetch_inflight", bm->prefetch_inflight());
  counters->Set("buffer.bytes_cached", bm->bytes_cached());
  counters->Set("buffer.pinned_bytes", bm->pinned_bytes());
  counters->Set("buffer.peak_bytes", bm->peak_bytes());
  counters->Set("device.blocks_read", bm->device()->blocks_read());
  counters->Set("device.bytes_read", bm->device()->bytes_read());
  counters->Set("device.bytes_written", bm->device()->bytes_written());
  return result;
}

}  // namespace x100
