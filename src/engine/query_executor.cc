#include "engine/query_executor.h"

#include "exec/exchange.h"
#include "exec/sort.h"

namespace x100 {

namespace {

/// Extracts MinMax-pushable conjuncts (`col OP const`) from a predicate.
void ExtractPushdown(const ExprPtr& pred, const Schema& schema,
                     std::vector<ScanPredicate>* out) {
  if (pred == nullptr || pred->kind != Expr::Kind::kCall) return;
  if (pred->fn == "and") {
    ExtractPushdown(pred->args[0], schema, out);
    ExtractPushdown(pred->args[1], schema, out);
    return;
  }
  RangeOp op;
  if (pred->fn == "eq") {
    op = RangeOp::kEq;
  } else if (pred->fn == "lt") {
    op = RangeOp::kLt;
  } else if (pred->fn == "le") {
    op = RangeOp::kLe;
  } else if (pred->fn == "gt") {
    op = RangeOp::kGt;
  } else if (pred->fn == "ge") {
    op = RangeOp::kGe;
  } else {
    return;
  }
  if (pred->args.size() != 2) return;
  const ExprPtr& l = pred->args[0];
  const ExprPtr& r = pred->args[1];
  if (l->kind == Expr::Kind::kColRef && r->kind == Expr::Kind::kConst &&
      !r->constant.is_null()) {
    const int col = schema.FindField(l->name);
    if (col >= 0) out->push_back({col, op, r->constant});
  }
}

}  // namespace

Result<OperatorPtr> QueryExecutor::BuildScan(const AlgebraNode& node,
                                             ExecContext* ctx,
                                             ExprPtr pushdown_pred) {
  UpdatableTable* table;
  X100_ASSIGN_OR_RETURN(table, db_->GetTable(node.table));
  const Schema& schema = table->base()->schema();
  ScanOptions opts;
  if (node.scan_columns.empty()) {
    for (int c = 0; c < schema.num_fields(); c++) opts.columns.push_back(c);
  } else {
    for (const std::string& name : node.scan_columns) {
      const int c = schema.FindField(name);
      if (c < 0) {
        return Status::NotFound("column " + name + " not in " + node.table);
      }
      opts.columns.push_back(c);
    }
  }
  if (pushdown_pred != nullptr) {
    ExtractPushdown(pushdown_pred, schema, &opts.predicates);
  }
  if (node.scan_parts > 1) {
    opts.use_subset = true;
    for (int g = 0; g < table->base()->num_groups(); g++) {
      if (g % node.scan_parts == node.scan_part) {
        opts.group_subset.push_back(g);
      }
    }
    opts.include_tail = node.scan_part == 0;
  }
  (void)ctx;
  return OperatorPtr(std::make_unique<ScanOp>(
      table->View(), table->SnapshotPdt(), db_->buffers(), std::move(opts)));
}

Result<OperatorPtr> QueryExecutor::Build(const AlgebraPtr& plan,
                                         ExecContext* ctx) {
  switch (plan->kind) {
    case AlgebraNode::Kind::kScan:
      return BuildScan(*plan, ctx, nullptr);
    case AlgebraNode::Kind::kSelect: {
      // Select directly over a scan: hand the predicate down for MinMax
      // group skipping (the Select still filters exactly).
      if (plan->children[0]->kind == AlgebraNode::Kind::kScan) {
        OperatorPtr scan;
        X100_ASSIGN_OR_RETURN(
            scan, BuildScan(*plan->children[0], ctx, plan->predicate));
        return OperatorPtr(std::make_unique<SelectOp>(
            std::move(scan), CloneExpr(plan->predicate)));
      }
      OperatorPtr child;
      X100_ASSIGN_OR_RETURN(child, Build(plan->children[0], ctx));
      return OperatorPtr(std::make_unique<SelectOp>(
          std::move(child), CloneExpr(plan->predicate)));
    }
    case AlgebraNode::Kind::kProject: {
      OperatorPtr child;
      X100_ASSIGN_OR_RETURN(child, Build(plan->children[0], ctx));
      std::vector<ProjectItem> items;
      for (const ProjectItem& item : plan->items) {
        items.push_back({item.name, CloneExpr(item.expr)});
      }
      return OperatorPtr(
          std::make_unique<ProjectOp>(std::move(child), std::move(items)));
    }
    case AlgebraNode::Kind::kAggr: {
      OperatorPtr child;
      X100_ASSIGN_OR_RETURN(child, Build(plan->children[0], ctx));
      std::vector<ProjectItem> keys;
      for (const ProjectItem& k : plan->group_by) {
        keys.push_back({k.name, CloneExpr(k.expr)});
      }
      std::vector<AggItem> aggs;
      for (const AggItem& a : plan->aggs) {
        aggs.push_back(
            {a.kind, a.input ? CloneExpr(a.input) : nullptr, a.name});
      }
      return OperatorPtr(std::make_unique<HashAggOp>(
          std::move(child), std::move(keys), std::move(aggs)));
    }
    case AlgebraNode::Kind::kJoin: {
      OperatorPtr build;
      X100_ASSIGN_OR_RETURN(build, Build(plan->children[0], ctx));
      OperatorPtr probe;
      X100_ASSIGN_OR_RETURN(probe, Build(plan->children[1], ctx));
      std::vector<int> bkeys, pkeys;
      for (const std::string& k : plan->build_keys) {
        const int c = build->output_schema().FindField(k);
        if (c < 0) return Status::NotFound("build key not found: " + k);
        bkeys.push_back(c);
      }
      for (const std::string& k : plan->probe_keys) {
        const int c = probe->output_schema().FindField(k);
        if (c < 0) return Status::NotFound("probe key not found: " + k);
        pkeys.push_back(c);
      }
      return OperatorPtr(std::make_unique<HashJoinOp>(
          std::move(build), std::move(probe), std::move(bkeys),
          std::move(pkeys), plan->join_type));
    }
    case AlgebraNode::Kind::kOrder: {
      OperatorPtr child;
      X100_ASSIGN_OR_RETURN(child, Build(plan->children[0], ctx));
      std::vector<SortKey> keys;
      for (const AlgebraNode::OrderKey& k : plan->order_keys) {
        const int c = child->output_schema().FindField(k.column);
        if (c < 0) return Status::NotFound("order key not found: " + k.column);
        keys.push_back({c, k.ascending});
      }
      return OperatorPtr(std::make_unique<SortOp>(std::move(child),
                                                  std::move(keys),
                                                  plan->limit));
    }
    case AlgebraNode::Kind::kXchg: {
      std::vector<OperatorPtr> producers;
      for (const AlgebraPtr& c : plan->children) {
        OperatorPtr p;
        X100_ASSIGN_OR_RETURN(p, Build(c, ctx));
        producers.push_back(std::move(p));
      }
      return OperatorPtr(std::make_unique<XchgOp>(std::move(producers)));
    }
  }
  return Status::Internal("unknown algebra node kind");
}

Result<QueryResult> QueryExecutor::Execute(AlgebraPtr plan,
                                           const std::string& text,
                                           CancellationToken* cancel) {
  Rewriter::Options ropts;
  ropts.parallelism = db_->config().max_parallelism;
  Rewriter rewriter(ropts);
  auto rewritten = rewriter.Rewrite(std::move(plan));
  X100_RETURN_IF_ERROR(rewritten.status());
  last_stats_ = rewriter.stats();

  ExecContext ctx;
  ctx.vector_size = db_->config().vector_size;
  ctx.cancel = cancel;
  ctx.events = db_->events();

  const int64_t qid =
      db_->queries()->Begin(text.empty() ? "<algebra query>" : text);
  db_->events()->Info("query " + std::to_string(qid) + " started");

  OperatorPtr root;
  {
    auto built = Build(*rewritten, &ctx);
    if (!built.ok()) {
      db_->queries()->Finish(qid, built.status(), 0);
      return built.status();
    }
    root = std::move(built).value();
  }
  auto result = CollectRows(root.get(), &ctx);
  const Status status = result.ok() ? Status::OK() : result.status();
  db_->queries()->Finish(qid, status, ctx.tuples_scanned.load());
  db_->events()->Info("query " + std::to_string(qid) + " " +
                      (status.ok() ? "finished" : status.ToString()));
  db_->counters()->Add("queries.total", 1);
  if (!status.ok()) db_->counters()->Add("queries.failed", 1);
  return result;
}

}  // namespace x100
