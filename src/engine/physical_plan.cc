#include "engine/physical_plan.h"

#include "engine/database.h"
#include "exec/exchange.h"
#include "exec/sort.h"

namespace x100 {

void ExtractScanPushdown(const ExprPtr& pred, const Schema& schema,
                         std::vector<ScanPredicate>* out) {
  if (pred == nullptr || pred->kind != Expr::Kind::kCall) return;
  if (pred->fn == "and") {
    ExtractScanPushdown(pred->args[0], schema, out);
    ExtractScanPushdown(pred->args[1], schema, out);
    return;
  }
  RangeOp op;
  if (pred->fn == "eq") {
    op = RangeOp::kEq;
  } else if (pred->fn == "lt") {
    op = RangeOp::kLt;
  } else if (pred->fn == "le") {
    op = RangeOp::kLe;
  } else if (pred->fn == "gt") {
    op = RangeOp::kGt;
  } else if (pred->fn == "ge") {
    op = RangeOp::kGe;
  } else {
    return;
  }
  if (pred->args.size() != 2) return;
  const ExprPtr& l = pred->args[0];
  const ExprPtr& r = pred->args[1];
  if (l->kind == Expr::Kind::kColRef && r->kind == Expr::Kind::kConst &&
      !r->constant.is_null()) {
    const int col = schema.FindField(l->name);
    if (col >= 0) out->push_back({col, op, r->constant});
    return;
  }
  // Flipped comparison (`const OP col`): mirror the operator. The seed
  // dropped these, silently losing MinMax group skipping.
  if (l->kind == Expr::Kind::kConst && r->kind == Expr::Kind::kColRef &&
      !l->constant.is_null()) {
    RangeOp mirrored;
    switch (op) {
      case RangeOp::kEq: mirrored = RangeOp::kEq; break;
      case RangeOp::kLt: mirrored = RangeOp::kGt; break;  // c < x => x > c
      case RangeOp::kLe: mirrored = RangeOp::kGe; break;
      case RangeOp::kGt: mirrored = RangeOp::kLt; break;
      case RangeOp::kGe: mirrored = RangeOp::kLe; break;
    }
    const int col = schema.FindField(r->name);
    if (col >= 0) out->push_back({col, mirrored, l->constant});
  }
}

Result<OperatorPtr> BuildScanOp(const AlgebraNode& node, PlannerContext* pc,
                                const ExprPtr& pushdown_pred) {
  UpdatableTable* table;
  X100_ASSIGN_OR_RETURN(table, pc->db->GetTable(node.table));
  const Schema& schema = table->base()->schema();
  ScanOptions opts;
  if (node.scan_columns.empty()) {
    for (int c = 0; c < schema.num_fields(); c++) opts.columns.push_back(c);
  } else {
    for (const std::string& name : node.scan_columns) {
      const int c = schema.FindField(name);
      if (c < 0) {
        return Status::NotFound("column " + name + " not in " + node.table);
      }
      opts.columns.push_back(c);
    }
  }
  if (pushdown_pred != nullptr) {
    ExtractScanPushdown(pushdown_pred, schema, &opts.predicates);
  }
  if (node.morsel_group >= 0) {
    // Every producer clone with this id pulls from one dynamic source
    // (legacy rewriter-parallelized plans).
    MorselSourcePtr& src = pc->morsel_sources[node.morsel_group];
    if (src == nullptr) {
      src = std::make_shared<MorselSource>(table->base()->num_groups());
    }
    opts.morsels = src;
  } else if (pc->cloning) {
    // Pipeline clone: every clone of this scan node pulls block groups
    // dynamically from one shared source — no static partitioning, so a
    // skewed group cannot serialize a worker chain.
    MorselSourcePtr& src = pc->scan_sources[&node];
    if (src == nullptr) {
      src = std::make_shared<MorselSource>(table->base()->num_groups());
    }
    opts.morsels = src;
  }
  return OperatorPtr(std::make_unique<ScanOp>(
      table->View(), table->SnapshotPdt(), pc->db->buffers(),
      std::move(opts)));
}

bool IsClonablePipeline(const AlgebraPtr& node) {
  switch (node->kind) {
    case AlgebraNode::Kind::kScan:
      return node->morsel_group < 0;  // not already rewriter-parallelized
    case AlgebraNode::Kind::kSelect:
    case AlgebraNode::Kind::kProject:
      return IsClonablePipeline(node->children[0]);
    case AlgebraNode::Kind::kJoin:
      // The probe side streams through the clone; the build side becomes
      // its own (possibly parallel) pipeline behind a shared build state.
      return IsClonablePipeline(node->children[1]);
    default:
      return false;  // pipeline breakers end a streaming chain
  }
}

Result<std::vector<OperatorPtr>> BuildPipelineChains(
    const AlgebraPtr& node, int n, PlannerContext* pc,
    const PhysicalPlanner* planner) {
  std::vector<OperatorPtr> chains;
  const bool prev = pc->cloning;
  pc->cloning = true;
  for (int w = 0; w < n; w++) {
    auto op = planner->Build(node, pc);
    if (!op.ok()) {
      pc->cloning = prev;
      return op.status();
    }
    chains.push_back(std::move(op).value());
  }
  pc->cloning = prev;
  return chains;
}

namespace {

Result<OperatorPtr> ScanFactory(const AlgebraPtr& node, PlannerContext* pc,
                                const PhysicalPlanner*) {
  return BuildScanOp(*node, pc, nullptr);
}

Result<OperatorPtr> SelectFactory(const AlgebraPtr& node, PlannerContext* pc,
                                  const PhysicalPlanner* planner) {
  // Select directly over a scan: hand the predicate down for MinMax group
  // skipping (the Select still filters exactly).
  OperatorPtr child;
  if (node->children[0]->kind == AlgebraNode::Kind::kScan) {
    X100_ASSIGN_OR_RETURN(
        child, BuildScanOp(*node->children[0], pc, node->predicate));
  } else {
    X100_ASSIGN_OR_RETURN(child, planner->Build(node->children[0], pc));
  }
  return OperatorPtr(std::make_unique<SelectOp>(
      std::move(child), CloneExpr(node->predicate)));
}

Result<OperatorPtr> ProjectFactory(const AlgebraPtr& node,
                                   PlannerContext* pc,
                                   const PhysicalPlanner* planner) {
  OperatorPtr child;
  X100_ASSIGN_OR_RETURN(child, planner->Build(node->children[0], pc));
  std::vector<ProjectItem> items;
  for (const ProjectItem& item : node->items) {
    items.push_back({item.name, CloneExpr(item.expr)});
  }
  return OperatorPtr(
      std::make_unique<ProjectOp>(std::move(child), std::move(items)));
}

/// Deep-copies the group-by/aggregate lists (each clone binds its own
/// expressions).
void CloneAggItems(const AlgebraNode& node, std::vector<ProjectItem>* keys,
                   std::vector<AggItem>* aggs) {
  for (const ProjectItem& k : node.group_by) {
    keys->push_back({k.name, CloneExpr(k.expr)});
  }
  for (const AggItem& a : node.aggs) {
    aggs->push_back(
        {a.kind, a.input ? CloneExpr(a.input) : nullptr, a.name});
  }
}

Result<OperatorPtr> AggrFactory(const AlgebraPtr& node, PlannerContext* pc,
                                const PhysicalPlanner* planner) {
  std::vector<ProjectItem> keys;
  std::vector<AggItem> aggs;
  CloneAggItems(*node, &keys, &aggs);
  // Pipeline decomposition: an aggregation over a streaming chain becomes
  // the sink of a parallel pipeline — N chain clones drained by scheduler
  // tasks into per-worker group tables, merged at the barrier.
  if (pc->parallelism > 1 && !pc->cloning &&
      IsClonablePipeline(node->children[0])) {
    std::vector<OperatorPtr> chains;
    X100_ASSIGN_OR_RETURN(
        chains, BuildPipelineChains(node->children[0], pc->parallelism, pc,
                                    planner));
    return OperatorPtr(std::make_unique<ParallelHashAggOp>(
        std::move(chains), std::move(keys), std::move(aggs),
        pc->radix_bits));
  }
  OperatorPtr child;
  X100_ASSIGN_OR_RETURN(child, planner->Build(node->children[0], pc));
  return OperatorPtr(std::make_unique<HashAggOp>(
      std::move(child), std::move(keys), std::move(aggs)));
}

/// Upper-bound row estimate for a streaming build spine: a scan's table
/// row count carried through Select/Project links (they never add rows).
/// Joins (inner joins multiply) and breakers return -1 (unknown).
int64_t EstimateSpineRows(const AlgebraPtr& node, Database* db) {
  switch (node->kind) {
    case AlgebraNode::Kind::kScan: {
      auto table = db->GetTable(node->table);
      return table.ok() ? (*table)->base()->num_rows() : -1;
    }
    case AlgebraNode::Kind::kSelect:
    case AlgebraNode::Kind::kProject:
      return EstimateSpineRows(node->children[0], db);
    default:
      return -1;
  }
}

Result<OperatorPtr> JoinFactory(const AlgebraPtr& node, PlannerContext* pc,
                                const PhysicalPlanner* planner) {
  // The build side is its own pipeline behind a shared JoinBuildState:
  // created once per logical join, reused by every probe clone. The
  // build runs as scheduler tasks either way; a clonable build input gets
  // `parallelism` chains over one morsel source.
  JoinBuildStatePtr& state = pc->join_states[node.get()];
  if (state == nullptr) {
    const int build_width =
        pc->parallelism > 1 && IsClonablePipeline(node->children[0])
            ? pc->parallelism
            : 1;
    std::vector<OperatorPtr> build_chains;
    X100_ASSIGN_OR_RETURN(
        build_chains, BuildPipelineChains(node->children[0], build_width,
                                          pc, planner));
    std::vector<int> bkeys;
    for (const std::string& k : node->build_keys) {
      const int c = build_chains[0]->output_schema().FindField(k);
      if (c < 0) return Status::NotFound("build key not found: " + k);
      bkeys.push_back(c);
    }
    // Tiny-build cutoff, applied only under AUTO radix sizing: when the
    // scan spine bounds the build under kTinyBuildRows, partitioning
    // would cost ~2^radix_bits empty per-worker buffers for a merge that
    // one task handles comfortably. The estimate travels into the build
    // state so the drain can re-size the merge fan-out when the
    // OBSERVED cardinality proves it badly wrong (kRadixResizeFactor) —
    // base-table counts miss PDT-inserted rows entirely. Explicit
    // radix_bits settings are never overridden in either direction.
    const int64_t estimate = EstimateSpineRows(node->children[0], pc->db);
    int build_bits = pc->radix_bits;
    if (pc->configured_radix_bits < 0) {
      build_bits = RadixBitsForBuild(build_bits, estimate);
    }
    state = std::make_shared<JoinBuildState>(
        std::move(build_chains), std::move(bkeys), build_bits, estimate,
        /*allow_radix_resize=*/pc->configured_radix_bits < 0);
  }
  OperatorPtr probe;
  X100_ASSIGN_OR_RETURN(probe, planner->Build(node->children[1], pc));
  std::vector<int> pkeys;
  for (const std::string& k : node->probe_keys) {
    const int c = probe->output_schema().FindField(k);
    if (c < 0) return Status::NotFound("probe key not found: " + k);
    pkeys.push_back(c);
  }
  return OperatorPtr(std::make_unique<JoinProbeOp>(
      std::move(probe), state, std::move(pkeys), node->join_type));
}

Result<OperatorPtr> OrderFactory(const AlgebraPtr& node, PlannerContext* pc,
                                 const PhysicalPlanner* planner) {
  auto resolve_keys =
      [&](const Schema& in) -> Result<std::vector<SortKey>> {
    std::vector<SortKey> keys;
    for (const AlgebraNode::OrderKey& k : node->order_keys) {
      const int c = in.FindField(k.column);
      if (c < 0) return Status::NotFound("order key not found: " + k.column);
      keys.push_back({c, k.ascending});
    }
    return keys;
  };
  if (pc->parallelism > 1 && !pc->cloning) {
    // Parallel sort sink: clone the input chain when it streams; a
    // non-clonable input (an aggregation, say) is drained by one task and
    // range-split across `parallelism` sort tasks instead.
    std::vector<OperatorPtr> chains;
    if (IsClonablePipeline(node->children[0])) {
      X100_ASSIGN_OR_RETURN(
          chains, BuildPipelineChains(node->children[0], pc->parallelism,
                                      pc, planner));
    } else {
      OperatorPtr child;
      X100_ASSIGN_OR_RETURN(child, planner->Build(node->children[0], pc));
      chains.push_back(std::move(child));
    }
    std::vector<SortKey> keys;
    X100_ASSIGN_OR_RETURN(keys, resolve_keys(chains[0]->output_schema()));
    return OperatorPtr(std::make_unique<ParallelSortOp>(
        std::move(chains), std::move(keys), node->limit,
        pc->parallelism));
  }
  OperatorPtr child;
  X100_ASSIGN_OR_RETURN(child, planner->Build(node->children[0], pc));
  std::vector<SortKey> keys;
  X100_ASSIGN_OR_RETURN(keys, resolve_keys(child->output_schema()));
  return OperatorPtr(std::make_unique<SortOp>(std::move(child),
                                              std::move(keys),
                                              node->limit));
}

Result<OperatorPtr> XchgFactory(const AlgebraPtr& node, PlannerContext* pc,
                                const PhysicalPlanner* planner) {
  std::vector<OperatorPtr> producers;
  for (const AlgebraPtr& c : node->children) {
    OperatorPtr p;
    X100_ASSIGN_OR_RETURN(p, planner->Build(c, pc));
    producers.push_back(std::move(p));
  }
  return OperatorPtr(std::make_unique<XchgOp>(std::move(producers)));
}

}  // namespace

void PhysicalPlanner::Register(AlgebraNode::Kind kind, Factory factory) {
  factories_[kind] = std::move(factory);
}

bool PhysicalPlanner::Has(AlgebraNode::Kind kind) const {
  return factories_.count(kind) > 0;
}

Result<OperatorPtr> PhysicalPlanner::Build(const AlgebraPtr& node,
                                           PlannerContext* pc) const {
  auto it = factories_.find(node->kind);
  if (it == factories_.end()) {
    return Status::NotImplemented("no physical factory for algebra kind " +
                                 std::to_string(static_cast<int>(node->kind)));
  }
  return it->second(node, pc, this);
}

namespace {

/// True if the streaming spine (Select/Project links, the probe side of
/// joins) contains a join — the case where a root-level pipeline is
/// worth cloning. A bare scan spine is deliberately excluded: unioning
/// scan clones would only shuffle row order for zero parallel work.
bool StreamingSpineHasJoin(const AlgebraPtr& node) {
  switch (node->kind) {
    case AlgebraNode::Kind::kJoin:
      return true;
    case AlgebraNode::Kind::kSelect:
    case AlgebraNode::Kind::kProject:
      return StreamingSpineHasJoin(node->children[0]);
    default:
      return false;
  }
}

}  // namespace

Result<OperatorPtr> BuildRootOperator(const AlgebraPtr& root,
                                      PlannerContext* pc,
                                      const PhysicalPlanner* planner) {
  // A join at the plan root (possibly under Select/Project links) has no
  // pipeline-breaker sink whose worker chains would embed probe clones,
  // so without special handling it gets a parallel build but a serial
  // probe. Clone the whole streaming chain (probe spine included) and
  // union the clones through an exchange sink — the root-level analogue
  // of embedding probes in an Aggr/Order sink. Row order across clones
  // is nondeterministic, which SQL permits for a sink-less plan (no
  // ORDER BY).
  if (pc->parallelism > 1 && !pc->cloning && IsClonablePipeline(root) &&
      StreamingSpineHasJoin(root)) {
    std::vector<OperatorPtr> chains;
    X100_ASSIGN_OR_RETURN(
        chains, BuildPipelineChains(root, pc->parallelism, pc, planner));
    return OperatorPtr(std::make_unique<XchgOp>(std::move(chains)));
  }
  return planner->Build(root, pc);
}

const PhysicalPlanner& PhysicalPlanner::Default() {
  static const PhysicalPlanner* planner = [] {
    auto* p = new PhysicalPlanner();
    p->Register(AlgebraNode::Kind::kScan, ScanFactory);
    p->Register(AlgebraNode::Kind::kSelect, SelectFactory);
    p->Register(AlgebraNode::Kind::kProject, ProjectFactory);
    p->Register(AlgebraNode::Kind::kAggr, AggrFactory);
    p->Register(AlgebraNode::Kind::kJoin, JoinFactory);
    p->Register(AlgebraNode::Kind::kOrder, OrderFactory);
    p->Register(AlgebraNode::Kind::kXchg, XchgFactory);
    return p;
  }();
  return *planner;
}

}  // namespace x100
