// Physical planner: an extensible registry mapping algebra node kinds to
// operator factories.
//
// The seed built operator trees through a monolithic if/else chain inside
// QueryExecutor::Build, so every new operator meant editing the engine.
// Factories are now registered per AlgebraNode::Kind; QueryExecutor only
// dispatches. Embedders can copy the default planner and override or add
// factories (e.g. swap SortOp for an external-merge sort) without touching
// engine code.
//
// PlannerContext carries the per-build shared state: the database (table
// lookup), the ExecContext (threaded into scans so they report into
// tuples_scanned/groups_skipped and the query profile), and the
// MorselSource instances shared by producer clones of one parallelized
// scan (keyed by AlgebraNode::morsel_group).
#ifndef X100_ENGINE_PHYSICAL_PLAN_H_
#define X100_ENGINE_PHYSICAL_PLAN_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "algebra/algebra.h"
#include "exec/scan.h"
#include "storage/morsel.h"

namespace x100 {

class Database;

/// Build-scoped state shared across one plan's factory invocations.
struct PlannerContext {
  Database* db = nullptr;
  ExecContext* exec = nullptr;
  /// morsel_group id -> source shared by every scan clone with that id.
  std::map<int, MorselSourcePtr> morsel_sources;
};

class PhysicalPlanner {
 public:
  /// Builds the operator for `node`; recurse into children via
  /// `planner->Build(child, pc)`.
  using Factory = std::function<Result<OperatorPtr>(
      const AlgebraPtr& node, PlannerContext* pc,
      const PhysicalPlanner* planner)>;

  /// Registers (or replaces) the factory for `kind`.
  void Register(AlgebraNode::Kind kind, Factory factory);
  bool Has(AlgebraNode::Kind kind) const;

  /// Dispatches to the registered factory; Unimplemented for unknown
  /// kinds.
  Result<OperatorPtr> Build(const AlgebraPtr& node, PlannerContext* pc) const;

  /// The built-in operator set. Copy it to customize:
  ///   PhysicalPlanner mine = PhysicalPlanner::Default();
  ///   mine.Register(AlgebraNode::Kind::kOrder, my_sort_factory);
  static const PhysicalPlanner& Default();

 private:
  std::map<AlgebraNode::Kind, Factory> factories_;
};

/// Extracts MinMax-pushable conjuncts from a predicate: `col OP const` and
/// the flipped `const OP col` (the seed silently dropped the latter).
/// Exposed for tests.
void ExtractScanPushdown(const ExprPtr& pred, const Schema& schema,
                         std::vector<ScanPredicate>* out);

/// Builds a ScanOp for a kScan node, with optional MinMax pushdown
/// predicate and morsel-source sharing through `pc`. Used by the scan and
/// select factories.
Result<OperatorPtr> BuildScanOp(const AlgebraNode& node, PlannerContext* pc,
                                const ExprPtr& pushdown_pred);

}  // namespace x100

#endif  // X100_ENGINE_PHYSICAL_PLAN_H_
