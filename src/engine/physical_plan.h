// Physical planner: an extensible registry mapping algebra node kinds to
// operator factories, and the pipeline decomposition that makes every
// query morsel-parallel (docs/ARCHITECTURE.md, docs/EXECUTION.md).
//
// The seed built operator trees through a monolithic if/else chain inside
// QueryExecutor::Build, so every new operator meant editing the engine.
// Factories are now registered per AlgebraNode::Kind; QueryExecutor only
// dispatches. Embedders can copy the default planner and override or add
// factories (e.g. swap SortOp for an external-merge sort) without touching
// engine code.
//
// Pipeline decomposition (replacing the exchange-centric rewrite): when
// PlannerContext::parallelism > 1, the factories for pipeline breakers
// (Aggr, Join build sides, Order) build N *clones* of their streaming
// input chain instead of one operator. Clones of one logical scan share a
// MorselSource (dynamic block-group handout) and clones of one logical
// join share a JoinBuildState (table built once, probed by all), both
// keyed by algebra-node identity in PlannerContext. The resulting
// operators — ParallelHashAggOp, ParallelSortOp, JoinProbeOp over a
// shared build — run their chains as scheduler tasks with per-worker
// state merged at TaskGroup barriers.
//
// PlannerContext carries the per-build shared state: the database (table
// lookup), the ExecContext (threaded into scans so they report into
// tuples_scanned/groups_skipped and the query profile), and the
// clone-sharing maps above.
#ifndef X100_ENGINE_PHYSICAL_PLAN_H_
#define X100_ENGINE_PHYSICAL_PLAN_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/algebra.h"
#include "exec/scan.h"
#include "storage/morsel.h"

namespace x100 {

class Database;

/// Build-scoped state shared across one plan's factory invocations.
struct PlannerContext {
  Database* db = nullptr;
  ExecContext* exec = nullptr;
  /// Pipeline width: > 1 makes the breaker factories decompose the plan
  /// into parallel pipelines of this many worker chains.
  int parallelism = 1;
  /// Effective radix bits for pipeline-breaker merges (already resolved
  /// against the pipeline width via EffectiveRadixBits — 0 disables
  /// partitioning). Threaded into JoinBuildState / ParallelHashAggOp so
  /// their barrier merges fan out over 2^radix_bits partition tasks.
  int radix_bits = 0;
  /// The raw EngineConfig::radix_bits value. Auto (-1) lets the join
  /// factory apply the tiny-build cutoff (RadixBitsForBuild): a build
  /// whose scan spine bounds it under kTinyBuildRows skips partitioning
  /// instead of paying ~2^radix_bits empty buffers per worker. Explicit
  /// settings pass through untouched.
  int configured_radix_bits = -1;
  /// True while building one of the N clones of a pipeline (set by
  /// BuildPipelineChains): scans then draw from a shared MorselSource.
  bool cloning = false;
  /// morsel_group id -> source shared by every scan clone with that id
  /// (legacy rewriter-parallelized plans; see Rewriter::Parallelize).
  std::map<int, MorselSourcePtr> morsel_sources;
  /// Clone sharing by algebra-node identity: the same logical scan / join
  /// built N times resolves to one MorselSource / JoinBuildState.
  std::map<const AlgebraNode*, MorselSourcePtr> scan_sources;
  std::map<const AlgebraNode*, JoinBuildStatePtr> join_states;
};

class PhysicalPlanner {
 public:
  /// Builds the operator for `node`; recurse into children via
  /// `planner->Build(child, pc)`.
  using Factory = std::function<Result<OperatorPtr>(
      const AlgebraPtr& node, PlannerContext* pc,
      const PhysicalPlanner* planner)>;

  /// Registers (or replaces) the factory for `kind`.
  void Register(AlgebraNode::Kind kind, Factory factory);
  bool Has(AlgebraNode::Kind kind) const;

  /// Dispatches to the registered factory; Unimplemented for unknown
  /// kinds.
  Result<OperatorPtr> Build(const AlgebraPtr& node, PlannerContext* pc) const;

  /// The built-in operator set. Copy it to customize:
  ///   PhysicalPlanner mine = PhysicalPlanner::Default();
  ///   mine.Register(AlgebraNode::Kind::kOrder, my_sort_factory);
  static const PhysicalPlanner& Default();

 private:
  std::map<AlgebraNode::Kind, Factory> factories_;
};

/// Extracts MinMax-pushable conjuncts from a predicate: `col OP const` and
/// the flipped `const OP col` (the seed silently dropped the latter).
/// Exposed for tests.
void ExtractScanPushdown(const ExprPtr& pred, const Schema& schema,
                         std::vector<ScanPredicate>* out);

/// Builds a ScanOp for a kScan node, with optional MinMax pushdown
/// predicate and morsel-source sharing through `pc`. Used by the scan and
/// select factories.
Result<OperatorPtr> BuildScanOp(const AlgebraNode& node, PlannerContext* pc,
                                const ExprPtr& pushdown_pred);

/// True if `node` is a streaming chain a pipeline can clone per worker:
/// Select/Project over a Scan, with any number of Joins probed along the
/// way (each join's build side becomes its own pipeline). Pipeline
/// breakers (Aggr, Order, Xchg) and already-rewriter-parallelized scans
/// are not clonable. Exposed for tests.
bool IsClonablePipeline(const AlgebraPtr& node);

/// Builds `n` operator clones of the streaming chain `node`, sharing
/// morsel sources and join build states through `pc`. Exposed for tests
/// and custom planner factories.
Result<std::vector<OperatorPtr>> BuildPipelineChains(
    const AlgebraPtr& node, int n, PlannerContext* pc,
    const PhysicalPlanner* planner);

/// Entry point for a whole plan: like planner->Build, but when the plan
/// ROOT is a clonable streaming chain containing a join (a bare join, or
/// Select/Project links over one — i.e. no Aggr/Order sink above it to
/// parallelize into), the chain runs as `parallelism` clones unioned by
/// an exchange sink — without this, a root-level join gets a parallel
/// build but a serial probe. Used by QueryExecutor.
Result<OperatorPtr> BuildRootOperator(const AlgebraPtr& root,
                                      PlannerContext* pc,
                                      const PhysicalPlanner* planner);

}  // namespace x100

#endif  // X100_ENGINE_PHYSICAL_PLAN_H_
