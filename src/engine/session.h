// Session: the user-facing entry point — SQL text in, rows out, via the
// full Figure-1 path (parser -> Ingres-like plan -> cross compiler -> X100
// rewriter -> vectorized execution).
//
// Serving surface (docs/SERVING.md):
//  * ExecuteSql / Execute — synchronous, full frontend work per call.
//  * Prepare / ExecutePrepared — the frontend work (parse, cross-compile,
//    rewrite) done ONCE, cached in the Database's plan cache keyed by
//    (sql, catalog version); execution still physically plans per call,
//    so prepared statements never see stale row counts.
//  * Submit / SubmitSql — asynchronous: the query runs as a task on the
//    shared TaskScheduler; the caller gets a PendingQuery (wait, cancel,
//    result) and its thread back.
//
// Thread-safety contract: a Session is NOT thread-safe — it carries
// per-session executor state (last_rewrite_stats). Use one Session per
// thread; any number of Sessions may share one Database concurrently
// (Database-level state is fully synchronized, see database.h).
// PreparedStatement handles and PendingQuery objects may be shared and
// waited on across threads.
#ifndef X100_ENGINE_SESSION_H_
#define X100_ENGINE_SESSION_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/cancellation.h"
#include "engine/database.h"
#include "engine/query_executor.h"
#include "frontend/frontend.h"

namespace x100 {

/// Shared immutable prepared-statement handle (engine/plan_cache.h).
using PreparedStatement = std::shared_ptr<const PreparedPlan>;

/// Future-like handle to an asynchronously submitted query
/// (Session::Submit). Copyable (copies share the underlying query);
/// thread-safe. The query holds the Database's admission slot until it
/// completes — Database destruction drains all pending queries first, so
/// a PendingQuery may safely outlive its Session (but not the Database:
/// Wait() after the Database is gone is a use-after-free like any other
/// retained engine pointer).
class PendingQuery {
 public:
  PendingQuery() = default;

  bool valid() const { return state_ != nullptr; }

  /// Query-listing id (monitor/QueryRegistry): the entry is registered as
  /// kQueued at submission and flips to kRunning on a worker.
  int64_t id() const { return state_->qid; }

  /// Requests cancellation: a still-queued query finishes kCancelled
  /// without running; a mid-flight query unwinds through the pipeline
  /// cancellation machinery. Wait() then returns the Cancelled status.
  void Cancel() { state_->cancel.Cancel(); }

  bool done() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->done;
  }

  /// Blocks until the query completes and moves the result out (one
  /// consumer; a second Wait returns an error status). Must not be called
  /// from a scheduler worker thread — the waiter parks, it does not help.
  Result<QueryResult> Wait() {
    State& s = *state_;
    std::unique_lock<std::mutex> lock(s.mu);
    s.cv.wait(lock, [&] { return s.done; });
    if (!s.status.ok()) return s.status;
    if (s.result == nullptr) {
      return Status::Internal("PendingQuery result already consumed");
    }
    QueryResult out = std::move(*s.result);
    s.result.reset();
    return out;
  }

 private:
  friend class Session;

  struct State {
    Database* db = nullptr;
    PreparedStatement plan;
    int64_t qid = -1;
    CancellationToken cancel;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
    std::unique_ptr<QueryResult> result;
  };

  explicit PendingQuery(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  /// The scheduler task body. Runs on a pool worker; the worker blocks at
  /// the query's own pipeline barriers but helps run its own tasks there
  /// (TaskGroup::Wait), so async queries cannot self-deadlock the pool.
  static void Run(const std::shared_ptr<State>& s) {
    Result<QueryResult> r = [&]() -> Result<QueryResult> {
      if (s->cancel.IsCancelled()) {
        // Cancelled while queued: never executes. Close out the
        // registry entry and counters the way RunRewritten would have.
        const Status st = Status::Cancelled("cancelled while queued");
        s->db->queries()->Finish(s->qid, st, 0);
        s->db->counters()->Add("queries.total", 1);
        s->db->counters()->Add("queries.failed", 1);
        return st;
      }
      // A fresh executor per task: QueryExecutor carries per-session
      // state (last_rewrite_stats) and the submitting Session may be
      // gone or busy.
      QueryExecutor executor(s->db);
      return executor.RunRewritten(s->plan->rewritten, s->plan->sql,
                                   &s->cancel, s->qid);
    }();
    // Release the admission slot BEFORE publishing the result: a waiter
    // returning from Wait() must observe the slot freed (and DrainAsync
    // in ~Database must only unblock once nothing touches the Database
    // anymore — everything below operates on the shared State alone).
    s->db->FinishAsync();
    {
      std::lock_guard<std::mutex> lock(s->mu);
      s->status = r.status();
      if (r.ok()) {
        s->result = std::make_unique<QueryResult>(std::move(*r));
      }
      s->done = true;
    }
    s->cv.notify_all();
  }

  std::shared_ptr<State> state_;
};

class Session {
 public:
  explicit Session(Database* db) : db_(db), executor_(db) {}

  /// Parses and cross-compiles SQL into X100 algebra without executing.
  Result<AlgebraPtr> CompileSql(const std::string& sql) {
    RelPtr rel;
    X100_ASSIGN_OR_RETURN(rel, ParseSql(sql));
    CrossCompiler compiler([this](const std::string& name) -> Result<Schema> {
      UpdatableTable* t;
      X100_ASSIGN_OR_RETURN(t, db_->GetTable(name));
      return t->base()->schema();
    });
    return compiler.Compile(rel);
  }

  /// Full query path. `cancel` (optional) supports query cancellation.
  Result<QueryResult> ExecuteSql(const std::string& sql,
                                 CancellationToken* cancel = nullptr) {
    AlgebraPtr plan;
    X100_ASSIGN_OR_RETURN(plan, CompileSql(sql));
    return executor_.Execute(std::move(plan), sql, cancel);
  }

  /// Direct algebra execution (tests, benches, plans the SQL subset cannot
  /// express such as joins).
  Result<QueryResult> Execute(AlgebraPtr plan,
                              CancellationToken* cancel = nullptr) {
    return executor_.Execute(std::move(plan), "<algebra>", cancel);
  }

  // --- Prepared statements --------------------------------------------

  /// Parse + cross-compile + rewrite once, served from the Database plan
  /// cache on repeat (keyed by sql + catalog version; a stale entry is
  /// recompiled, never served).
  Result<PreparedStatement> Prepare(const std::string& sql) {
    const int64_t version = db_->catalog_version();
    if (auto cached = db_->plan_cache()->Lookup(sql, version)) {
      return PreparedStatement(std::move(cached));
    }
    AlgebraPtr plan;
    X100_ASSIGN_OR_RETURN(plan, CompileSql(sql));
    return PrepareCompiled(std::move(plan), sql, /*from_sql=*/true);
  }

  /// Prepares a hand-built algebra plan (joins — the SQL subset cannot
  /// express them). Rewritten once, NOT cached (the label is no key);
  /// `label` shows in the query listing.
  Result<PreparedStatement> PreparePlan(AlgebraPtr plan,
                                        const std::string& label =
                                            "<algebra>") {
    return PrepareCompiled(std::move(plan), label, /*from_sql=*/false);
  }

  /// Synchronous execution of a prepared statement: no frontend work,
  /// physical Build per call. A handle prepared under an older catalog is
  /// transparently re-prepared first (see Revalidate).
  Result<QueryResult> ExecutePrepared(const PreparedStatement& stmt,
                                      CancellationToken* cancel = nullptr) {
    PreparedStatement fresh;
    X100_ASSIGN_OR_RETURN(fresh, Revalidate(stmt));
    return executor_.RunRewritten(fresh->rewritten, fresh->sql, cancel);
  }

  // --- Async submission -----------------------------------------------

  /// Submits a prepared statement for asynchronous execution on the
  /// Database's TaskScheduler. Returns immediately with a PendingQuery;
  /// fails with kResourceExhausted when the admission queue
  /// (EngineConfig::admission_queue_cap) is full — backpressure at the
  /// door instead of an unbounded task pile-up. Stale handles are
  /// re-prepared at submission, so DDL between Prepare and Submit cannot
  /// serve a stale plan.
  Result<PendingQuery> Submit(const PreparedStatement& stmt) {
    PreparedStatement fresh;
    X100_ASSIGN_OR_RETURN(fresh, Revalidate(stmt));
    X100_RETURN_IF_ERROR(db_->TryAdmitAsync());
    auto state = std::make_shared<PendingQuery::State>();
    state->db = db_;
    state->plan = std::move(fresh);
    state->qid =
        db_->queries()->Begin(state->plan->sql, QueryState::kQueued);
    db_->scheduler()->Submit([state] { PendingQuery::Run(state); });
    return PendingQuery(std::move(state));
  }

  /// Ad-hoc async submission: the FULL frontend path runs now (errors
  /// surface here, synchronously), deliberately bypassing the plan cache
  /// — this is the re-plan-every-call baseline prepared statements are
  /// measured against (bench_e14). Apps wanting caching: Prepare first.
  Result<PendingQuery> SubmitSql(const std::string& sql) {
    AlgebraPtr plan;
    X100_ASSIGN_OR_RETURN(plan, CompileSql(sql));
    PreparedStatement stmt;
    X100_ASSIGN_OR_RETURN(stmt, PrepareCompiled(std::move(plan), sql,
                                                /*from_sql=*/false));
    return Submit(stmt);
  }

  Database* db() { return db_; }
  QueryExecutor* executor() { return &executor_; }

 private:
  /// Rewrite + wrap. Only sql-keyed plans enter the cache.
  Result<PreparedStatement> PrepareCompiled(AlgebraPtr plan,
                                            const std::string& text,
                                            bool from_sql) {
    Rewriter rewriter;
    auto rewritten = rewriter.Rewrite(std::move(plan));
    X100_RETURN_IF_ERROR(rewritten.status());
    auto prepared = std::make_shared<PreparedPlan>();
    prepared->sql = text;
    prepared->rewritten = std::move(*rewritten);
    prepared->stats = rewriter.stats();
    prepared->catalog_version = db_->catalog_version();
    prepared->from_sql = from_sql;
    PreparedStatement out = std::move(prepared);
    if (from_sql) db_->plan_cache()->Insert(out);
    return out;
  }

  /// Stale-handle defense: a statement prepared under an older catalog
  /// version is recompiled from its SQL (the cache Lookup drops the stale
  /// entry and this Prepare repopulates it). Algebra-prepared handles
  /// cannot be recompiled — they pass through, which is safe: physical
  /// Build re-resolves tables by name and re-reads row estimates at every
  /// execution, failing loudly if a referenced table is gone.
  Result<PreparedStatement> Revalidate(const PreparedStatement& stmt) {
    if (stmt == nullptr) return Status::InvalidArgument("null statement");
    if (!stmt->from_sql ||
        stmt->catalog_version == db_->catalog_version()) {
      return stmt;
    }
    return Prepare(stmt->sql);
  }

  Database* db_;
  QueryExecutor executor_;
};

}  // namespace x100

#endif  // X100_ENGINE_SESSION_H_
