// Session: the user-facing entry point — SQL text in, rows out, via the
// full Figure-1 path (parser -> Ingres-like plan -> cross compiler -> X100
// rewriter -> vectorized execution).
#ifndef X100_ENGINE_SESSION_H_
#define X100_ENGINE_SESSION_H_

#include <string>

#include "engine/database.h"
#include "engine/query_executor.h"
#include "frontend/frontend.h"

namespace x100 {

class Session {
 public:
  explicit Session(Database* db) : db_(db), executor_(db) {}

  /// Parses and cross-compiles SQL into X100 algebra without executing.
  Result<AlgebraPtr> CompileSql(const std::string& sql) {
    RelPtr rel;
    X100_ASSIGN_OR_RETURN(rel, ParseSql(sql));
    CrossCompiler compiler([this](const std::string& name) -> Result<Schema> {
      UpdatableTable* t;
      X100_ASSIGN_OR_RETURN(t, db_->GetTable(name));
      return t->base()->schema();
    });
    return compiler.Compile(rel);
  }

  /// Full query path. `cancel` (optional) supports query cancellation.
  Result<QueryResult> ExecuteSql(const std::string& sql,
                                 CancellationToken* cancel = nullptr) {
    AlgebraPtr plan;
    X100_ASSIGN_OR_RETURN(plan, CompileSql(sql));
    return executor_.Execute(std::move(plan), sql, cancel);
  }

  /// Direct algebra execution (tests, benches, plans the SQL subset cannot
  /// express such as joins).
  Result<QueryResult> Execute(AlgebraPtr plan,
                              CancellationToken* cancel = nullptr) {
    return executor_.Execute(std::move(plan), "<algebra>", cancel);
  }

  Database* db() { return db_; }
  QueryExecutor* executor() { return &executor_; }

 private:
  Database* db_;
  QueryExecutor executor_;
};

}  // namespace x100

#endif  // X100_ENGINE_SESSION_H_
