// QueryExecutor: X100 algebra -> vectorized operator tree -> result, with
// rewriting, monitoring, per-operator profiling and cancellation. Operator
// construction is delegated to a pluggable PhysicalPlanner registry
// (engine/physical_plan.h) — the executor itself contains no per-node-kind
// dispatch.
#ifndef X100_ENGINE_QUERY_EXECUTOR_H_
#define X100_ENGINE_QUERY_EXECUTOR_H_

#include <memory>
#include <string>

#include "algebra/algebra.h"
#include "engine/database.h"
#include "engine/physical_plan.h"
#include "rewriter/rewriter.h"

namespace x100 {

class QueryExecutor {
 public:
  explicit QueryExecutor(Database* db)
      : db_(db), planner_(&PhysicalPlanner::Default()) {}

  /// Builds an operator tree for a (rewritten) plan. `ctx` must outlive the
  /// returned operators.
  Result<OperatorPtr> Build(const AlgebraPtr& plan, ExecContext* ctx);

  /// Full path: rewrite (honoring config parallelism) -> build -> execute
  /// -> collect, registered in the query listing. `text` is the monitoring
  /// label. A non-null `cancel` enables external cancellation. The result
  /// carries the per-operator QueryProfile.
  Result<QueryResult> Execute(AlgebraPtr plan, const std::string& text = "",
                              CancellationToken* cancel = nullptr);

  /// Execution of an ALREADY-REWRITTEN plan — the prepared-statement /
  /// plan-cache path (engine/plan_cache.h): the rewrite was done once at
  /// Prepare, every execution starts here. `plan` is borrowed and not
  /// mutated, so one cached plan serves concurrent executions; physical
  /// Build still happens per call (fresh scan-spine estimates, per-query
  /// PlannerContext). `qid` >= 0 reuses a pre-registered query-listing
  /// entry (async submissions register as kQueued at admission) and flips
  /// it to kRunning; -1 registers a fresh entry.
  Result<QueryResult> RunRewritten(const AlgebraPtr& plan,
                                   const std::string& text,
                                   CancellationToken* cancel = nullptr,
                                   int64_t qid = -1);

  const RewriteStats& last_rewrite_stats() const { return last_stats_; }

  /// Swaps in a custom physical planner (must outlive the executor).
  void set_planner(const PhysicalPlanner* planner) { planner_ = planner; }
  const PhysicalPlanner* planner() const { return planner_; }

 private:
  Database* db_;
  const PhysicalPlanner* planner_;
  RewriteStats last_stats_;
};

}  // namespace x100

#endif  // X100_ENGINE_QUERY_EXECUTOR_H_
