// QueryExecutor: X100 algebra -> vectorized operator tree -> result, with
// rewriting, MinMax pushdown extraction, monitoring and cancellation.
#ifndef X100_ENGINE_QUERY_EXECUTOR_H_
#define X100_ENGINE_QUERY_EXECUTOR_H_

#include <memory>
#include <string>

#include "algebra/algebra.h"
#include "engine/database.h"
#include "exec/scan.h"
#include "rewriter/rewriter.h"

namespace x100 {

class QueryExecutor {
 public:
  explicit QueryExecutor(Database* db) : db_(db) {}

  /// Builds an operator tree for a (rewritten) plan. `ctx` must outlive the
  /// returned operators.
  Result<OperatorPtr> Build(const AlgebraPtr& plan, ExecContext* ctx);

  /// Full path: rewrite (honoring config parallelism) -> build -> execute
  /// -> collect, registered in the query listing. `text` is the monitoring
  /// label. A non-null `cancel` enables external cancellation.
  Result<QueryResult> Execute(AlgebraPtr plan, const std::string& text = "",
                              CancellationToken* cancel = nullptr);

  const RewriteStats& last_rewrite_stats() const { return last_stats_; }

 private:
  Result<OperatorPtr> BuildScan(const AlgebraNode& node, ExecContext* ctx,
                                ExprPtr pushdown_pred);

  Database* db_;
  RewriteStats last_stats_;
};

}  // namespace x100

#endif  // X100_ENGINE_QUERY_EXECUTOR_H_
