// AVX2 kernel variants. Compiled with a per-region target attribute so
// the library builds without a global -mavx2 and still runs on CPUs
// without AVX2 — nothing in this file executes unless runtime dispatch
// (BestSupportedSimdLevel) selected kAvx2.
//
// Every kernel is bit-identical to its scalar counterpart (see
// simd_kernels.h). The two load-bearing idioms:
//  * movemask compaction — compare 8 (or 4) lanes, movemask to a small
//    integer, then store the pre-compacted lane indices from a lookup
//    table and advance the output cursor by popcount. Matches appended ≤
//    rows consumed, so the (always 8-/4-wide) store never overruns a
//    selection buffer of n entries.
//  * exact 64-bit lane multiply — _mm256_mul_epu32 cross products
//    reassembled as lo + ((alo*bhi + ahi*blo) << 32), which is the exact
//    low 64 bits, so the murmur-style HashMix pipeline vectorizes without
//    changing a single hash bit (RadixPartitionOf feeds partition/spill
//    routing — hashes MUST NOT drift across dispatch levels).
#include "simd/simd_kernels.h"

#include <cstring>

#include "common/hash.h"
#include "primitives/primitive_registry.h"

#if defined(X100_HAVE_AVX2_BUILD)

#include <immintrin.h>

#if defined(__clang__)
#pragma clang attribute push(__attribute__((target("avx2,popcnt"))), \
                             apply_to = function)
#else
#pragma GCC push_options
#pragma GCC target("avx2,popcnt")
#endif

namespace x100 {
namespace {

// --- compaction lookup tables (mask -> pre-compacted lane indices) --------

struct Perm8Table {
  alignas(32) int32_t idx[256][8];
};
constexpr Perm8Table MakePerm8() {
  Perm8Table t{};
  for (int m = 0; m < 256; m++) {
    int k = 0;
    for (int b = 0; b < 8; b++) {
      if ((m >> b) & 1) t.idx[m][k++] = b;
    }
    for (; k < 8; k++) t.idx[m][k] = 0;
  }
  return t;
}
constexpr Perm8Table kPerm8 = MakePerm8();

struct Perm4Table {
  alignas(16) int32_t idx[16][4];
};
constexpr Perm4Table MakePerm4() {
  Perm4Table t{};
  for (int m = 0; m < 16; m++) {
    int k = 0;
    for (int b = 0; b < 4; b++) {
      if ((m >> b) & 1) t.idx[m][k++] = b;
    }
    for (; k < 4; k++) t.idx[m][k] = 0;
  }
  return t;
}
constexpr Perm4Table kPerm4 = MakePerm4();

// mask -> 8 (or 4) bool bytes, for the map_* comparison kernels.
struct Byte8Table {
  uint64_t v[256];
};
constexpr Byte8Table MakeByte8() {
  Byte8Table t{};
  for (int m = 0; m < 256; m++) {
    uint64_t b = 0;
    for (int l = 0; l < 8; l++) {
      if ((m >> l) & 1) b |= uint64_t{1} << (8 * l);
    }
    t.v[m] = b;
  }
  return t;
}
constexpr Byte8Table kByte8 = MakeByte8();

// --- comparison masks ------------------------------------------------------

enum class Cmp { kEq, kNe, kLt, kLe, kGt, kGe };

template <Cmp OP, typename T>
inline bool ScalarCmp(T a, T b) {
  // The exact expressions of the scalar kernels (kernel_templates.h),
  // used for selection-vector inputs and vector tails.
  if constexpr (OP == Cmp::kEq) return a == b;
  if constexpr (OP == Cmp::kNe) return a != b;
  if constexpr (OP == Cmp::kLt) return a < b;
  if constexpr (OP == Cmp::kLe) return a <= b;
  if constexpr (OP == Cmp::kGt) return a > b;
  return a >= b;
}

template <Cmp OP>
inline int Mask8I32(__m256i a, __m256i b) {
  if constexpr (OP == Cmp::kEq) {
    return _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(a, b)));
  }
  if constexpr (OP == Cmp::kNe) {
    return 0xFF ^ _mm256_movemask_ps(
                      _mm256_castsi256_ps(_mm256_cmpeq_epi32(a, b)));
  }
  if constexpr (OP == Cmp::kLt) {
    return _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(b, a)));
  }
  if constexpr (OP == Cmp::kLe) {
    return 0xFF ^ _mm256_movemask_ps(
                      _mm256_castsi256_ps(_mm256_cmpgt_epi32(a, b)));
  }
  if constexpr (OP == Cmp::kGt) {
    return _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(a, b)));
  }
  return 0xFF ^ _mm256_movemask_ps(
                    _mm256_castsi256_ps(_mm256_cmpgt_epi32(b, a)));
}

template <Cmp OP>
inline int Mask4I64(__m256i a, __m256i b) {
  if constexpr (OP == Cmp::kEq) {
    return _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(a, b)));
  }
  if constexpr (OP == Cmp::kNe) {
    return 0xF ^ _mm256_movemask_pd(
                     _mm256_castsi256_pd(_mm256_cmpeq_epi64(a, b)));
  }
  if constexpr (OP == Cmp::kLt) {
    return _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(b, a)));
  }
  if constexpr (OP == Cmp::kLe) {
    return 0xF ^ _mm256_movemask_pd(
                     _mm256_castsi256_pd(_mm256_cmpgt_epi64(a, b)));
  }
  if constexpr (OP == Cmp::kGt) {
    return _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(a, b)));
  }
  return 0xF ^ _mm256_movemask_pd(
                   _mm256_castsi256_pd(_mm256_cmpgt_epi64(b, a)));
}

template <Cmp OP>
inline int Mask4F64(__m256d a, __m256d b) {
  // Predicates chosen to match scalar IEEE semantics with NaN: ordered
  // (false on NaN) for ==, <, <=, >, >=; unordered (true on NaN) for !=.
  if constexpr (OP == Cmp::kEq) {
    return _mm256_movemask_pd(_mm256_cmp_pd(a, b, _CMP_EQ_OQ));
  }
  if constexpr (OP == Cmp::kNe) {
    return _mm256_movemask_pd(_mm256_cmp_pd(a, b, _CMP_NEQ_UQ));
  }
  if constexpr (OP == Cmp::kLt) {
    return _mm256_movemask_pd(_mm256_cmp_pd(a, b, _CMP_LT_OQ));
  }
  if constexpr (OP == Cmp::kLe) {
    return _mm256_movemask_pd(_mm256_cmp_pd(a, b, _CMP_LE_OQ));
  }
  if constexpr (OP == Cmp::kGt) {
    return _mm256_movemask_pd(_mm256_cmp_pd(a, b, _CMP_GT_OQ));
  }
  return _mm256_movemask_pd(_mm256_cmp_pd(a, b, _CMP_GE_OQ));
}

inline void Store8Lanes(sel_t* dst, int base, int mask) {
  const __m256i lanes =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(kPerm8.idx[mask]));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                      _mm256_add_epi32(_mm256_set1_epi32(base), lanes));
}

inline void Store4Lanes(sel_t* dst, int base, int mask) {
  const __m128i lanes =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kPerm4.idx[mask]));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dst),
                   _mm_add_epi32(_mm_set1_epi32(base), lanes));
}

// --- select kernels (compare -> selection vector) --------------------------

template <Cmp OP, bool AC, bool BC>
int SelectCmpI32(int n, const sel_t* sel_in, const void* const* args,
                 sel_t* sel_out) {
  const auto* a = static_cast<const int32_t*>(args[0]);
  const auto* b = static_cast<const int32_t*>(args[1]);
  int k = 0;
  if (sel_in) {
    // Gathered rows defeat the contiguous vector loop; identical scalar.
    for (int j = 0; j < n; j++) {
      const int i = sel_in[j];
      sel_out[k] = i;
      k += ScalarCmp<OP>(AC ? a[0] : a[i], BC ? b[0] : b[i]) ? 1 : 0;
    }
    return k;
  }
  int i = 0;
  const __m256i ac = _mm256_set1_epi32(a[0]);
  const __m256i bc = _mm256_set1_epi32(b[0]);
  for (; i + 8 <= n; i += 8) {
    const __m256i av =
        AC ? ac : _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i bv =
        BC ? bc : _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const int m = Mask8I32<OP>(av, bv);
    // k <= i here, so the 8-wide store stays inside sel_out[0..n).
    Store8Lanes(sel_out + k, i, m);
    k += __builtin_popcount(static_cast<unsigned>(m));
  }
  for (; i < n; i++) {
    sel_out[k] = i;
    k += ScalarCmp<OP>(AC ? a[0] : a[i], BC ? b[0] : b[i]) ? 1 : 0;
  }
  return k;
}

template <Cmp OP, bool AC, bool BC>
int SelectCmpI64(int n, const sel_t* sel_in, const void* const* args,
                 sel_t* sel_out) {
  const auto* a = static_cast<const int64_t*>(args[0]);
  const auto* b = static_cast<const int64_t*>(args[1]);
  int k = 0;
  if (sel_in) {
    for (int j = 0; j < n; j++) {
      const int i = sel_in[j];
      sel_out[k] = i;
      k += ScalarCmp<OP>(AC ? a[0] : a[i], BC ? b[0] : b[i]) ? 1 : 0;
    }
    return k;
  }
  int i = 0;
  const __m256i ac = _mm256_set1_epi64x(a[0]);
  const __m256i bc = _mm256_set1_epi64x(b[0]);
  for (; i + 4 <= n; i += 4) {
    const __m256i av =
        AC ? ac : _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i bv =
        BC ? bc : _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const int m = Mask4I64<OP>(av, bv);
    Store4Lanes(sel_out + k, i, m);
    k += __builtin_popcount(static_cast<unsigned>(m));
  }
  for (; i < n; i++) {
    sel_out[k] = i;
    k += ScalarCmp<OP>(AC ? a[0] : a[i], BC ? b[0] : b[i]) ? 1 : 0;
  }
  return k;
}

template <Cmp OP, bool AC, bool BC>
int SelectCmpF64(int n, const sel_t* sel_in, const void* const* args,
                 sel_t* sel_out) {
  const auto* a = static_cast<const double*>(args[0]);
  const auto* b = static_cast<const double*>(args[1]);
  int k = 0;
  if (sel_in) {
    for (int j = 0; j < n; j++) {
      const int i = sel_in[j];
      sel_out[k] = i;
      k += ScalarCmp<OP>(AC ? a[0] : a[i], BC ? b[0] : b[i]) ? 1 : 0;
    }
    return k;
  }
  int i = 0;
  const __m256d ac = _mm256_set1_pd(a[0]);
  const __m256d bc = _mm256_set1_pd(b[0]);
  for (; i + 4 <= n; i += 4) {
    const __m256d av = AC ? ac : _mm256_loadu_pd(a + i);
    const __m256d bv = BC ? bc : _mm256_loadu_pd(b + i);
    const int m = Mask4F64<OP>(av, bv);
    Store4Lanes(sel_out + k, i, m);
    k += __builtin_popcount(static_cast<unsigned>(m));
  }
  for (; i < n; i++) {
    sel_out[k] = i;
    k += ScalarCmp<OP>(AC ? a[0] : a[i], BC ? b[0] : b[i]) ? 1 : 0;
  }
  return k;
}

// --- map comparison kernels (compare -> bool bytes) ------------------------

template <Cmp OP, bool AC, bool BC>
Status MapCmpI32(int n, const sel_t* sel, const void* const* args, void* out,
                 PrimCtx*) {
  const auto* a = static_cast<const int32_t*>(args[0]);
  const auto* b = static_cast<const int32_t*>(args[1]);
  auto* o = static_cast<uint8_t*>(out);
  if (sel) {
    for (int j = 0; j < n; j++) {
      const int i = sel[j];
      o[i] = ScalarCmp<OP>(AC ? a[0] : a[i], BC ? b[0] : b[i]) ? 1 : 0;
    }
    return Status::OK();
  }
  int i = 0;
  const __m256i ac = _mm256_set1_epi32(a[0]);
  const __m256i bc = _mm256_set1_epi32(b[0]);
  for (; i + 8 <= n; i += 8) {
    const __m256i av =
        AC ? ac : _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i bv =
        BC ? bc : _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const uint64_t bytes = kByte8.v[Mask8I32<OP>(av, bv)];
    std::memcpy(o + i, &bytes, 8);
  }
  for (; i < n; i++) {
    o[i] = ScalarCmp<OP>(AC ? a[0] : a[i], BC ? b[0] : b[i]) ? 1 : 0;
  }
  return Status::OK();
}

template <Cmp OP, bool AC, bool BC>
Status MapCmpI64(int n, const sel_t* sel, const void* const* args, void* out,
                 PrimCtx*) {
  const auto* a = static_cast<const int64_t*>(args[0]);
  const auto* b = static_cast<const int64_t*>(args[1]);
  auto* o = static_cast<uint8_t*>(out);
  if (sel) {
    for (int j = 0; j < n; j++) {
      const int i = sel[j];
      o[i] = ScalarCmp<OP>(AC ? a[0] : a[i], BC ? b[0] : b[i]) ? 1 : 0;
    }
    return Status::OK();
  }
  int i = 0;
  const __m256i ac = _mm256_set1_epi64x(a[0]);
  const __m256i bc = _mm256_set1_epi64x(b[0]);
  for (; i + 4 <= n; i += 4) {
    const __m256i av =
        AC ? ac : _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i bv =
        BC ? bc : _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const uint32_t bytes =
        static_cast<uint32_t>(kByte8.v[Mask4I64<OP>(av, bv)]);
    std::memcpy(o + i, &bytes, 4);
  }
  for (; i < n; i++) {
    o[i] = ScalarCmp<OP>(AC ? a[0] : a[i], BC ? b[0] : b[i]) ? 1 : 0;
  }
  return Status::OK();
}

template <Cmp OP, bool AC, bool BC>
Status MapCmpF64(int n, const sel_t* sel, const void* const* args, void* out,
                 PrimCtx*) {
  const auto* a = static_cast<const double*>(args[0]);
  const auto* b = static_cast<const double*>(args[1]);
  auto* o = static_cast<uint8_t*>(out);
  if (sel) {
    for (int j = 0; j < n; j++) {
      const int i = sel[j];
      o[i] = ScalarCmp<OP>(AC ? a[0] : a[i], BC ? b[0] : b[i]) ? 1 : 0;
    }
    return Status::OK();
  }
  int i = 0;
  const __m256d ac = _mm256_set1_pd(a[0]);
  const __m256d bc = _mm256_set1_pd(b[0]);
  for (; i + 4 <= n; i += 4) {
    const __m256d av = AC ? ac : _mm256_loadu_pd(a + i);
    const __m256d bv = BC ? bc : _mm256_loadu_pd(b + i);
    const uint32_t bytes =
        static_cast<uint32_t>(kByte8.v[Mask4F64<OP>(av, bv)]);
    std::memcpy(o + i, &bytes, 4);
  }
  for (; i < n; i++) {
    o[i] = ScalarCmp<OP>(AC ? a[0] : a[i], BC ? b[0] : b[i]) ? 1 : 0;
  }
  return Status::OK();
}

// --- boolean byte kernels --------------------------------------------------

enum class BoolOp { kAnd, kOr, kXor };

template <BoolOp OP>
inline uint8_t ScalarBool(uint8_t a, uint8_t b) {
  if constexpr (OP == BoolOp::kAnd) return a & b;
  if constexpr (OP == BoolOp::kOr) return a | b;
  return static_cast<uint8_t>((a ^ b) & 1);
}

template <BoolOp OP>
Status MapBool(int n, const sel_t* sel, const void* const* args, void* out,
               PrimCtx*) {
  const auto* a = static_cast<const uint8_t*>(args[0]);
  const auto* b = static_cast<const uint8_t*>(args[1]);
  auto* o = static_cast<uint8_t*>(out);
  if (sel) {
    for (int j = 0; j < n; j++) {
      const int i = sel[j];
      o[i] = ScalarBool<OP>(a[i], b[i]);
    }
    return Status::OK();
  }
  int i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i r;
    if constexpr (OP == BoolOp::kAnd) {
      r = _mm256_and_si256(av, bv);
    } else if constexpr (OP == BoolOp::kOr) {
      r = _mm256_or_si256(av, bv);
    } else {
      r = _mm256_and_si256(_mm256_xor_si256(av, bv), _mm256_set1_epi8(1));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + i), r);
  }
  for (; i < n; i++) o[i] = ScalarBool<OP>(a[i], b[i]);
  return Status::OK();
}

Status MapNotBool(int n, const sel_t* sel, const void* const* args, void* out,
                  PrimCtx*) {
  const auto* a = static_cast<const uint8_t*>(args[0]);
  auto* o = static_cast<uint8_t*>(out);
  if (sel) {
    for (int j = 0; j < n; j++) {
      const int i = sel[j];
      o[i] = static_cast<uint8_t>(a[i] ^ 1);
    }
    return Status::OK();
  }
  int i = 0;
  const __m256i one = _mm256_set1_epi8(1);
  for (; i + 32 <= n; i += 32) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + i),
                        _mm256_xor_si256(av, one));
  }
  for (; i < n; i++) o[i] = static_cast<uint8_t>(a[i] ^ 1);
  return Status::OK();
}

// 8 bool bytes -> "is zero" 8-bit mask (bit l set iff byte l == 0).
inline int ZeroMask8Bytes(const uint8_t* p) {
  const __m128i v = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  const __m256i lanes = _mm256_cvtepu8_epi32(v);
  return _mm256_movemask_ps(_mm256_castsi256_ps(
      _mm256_cmpeq_epi32(lanes, _mm256_setzero_si256())));
}

int CompactTrueImpl(int n, const uint8_t* val, sel_t* sel_out) {
  int k = 0;
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const int m = 0xFF ^ ZeroMask8Bytes(val + i);
    Store8Lanes(sel_out + k, i, m);
    k += __builtin_popcount(static_cast<unsigned>(m));
  }
  for (; i < n; i++) {
    sel_out[k] = i;
    k += val[i] ? 1 : 0;
  }
  return k;
}

int CompactNotNullImpl(int n, const uint8_t* nulls, sel_t* sel_out) {
  int k = 0;
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const int m = ZeroMask8Bytes(nulls + i);
    Store8Lanes(sel_out + k, i, m);
    k += __builtin_popcount(static_cast<unsigned>(m));
  }
  for (; i < n; i++) {
    sel_out[k] = i;
    k += nulls[i] ? 0 : 1;
  }
  return k;
}

int CompactTrueNotNullImpl(int n, const uint8_t* val, const uint8_t* nulls,
                           sel_t* sel_out) {
  int k = 0;
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const int m = (0xFF ^ ZeroMask8Bytes(val + i)) & ZeroMask8Bytes(nulls + i);
    Store8Lanes(sel_out + k, i, m);
    k += __builtin_popcount(static_cast<unsigned>(m));
  }
  for (; i < n; i++) {
    sel_out[k] = i;
    k += (val[i] && !nulls[i]) ? 1 : 0;
  }
  return k;
}

// select_true / select_notnull registry variants (bool-column filters).
int SelectTrueAvx2(int n, const sel_t* sel_in, const void* const* args,
                   sel_t* sel_out) {
  const auto* b = static_cast<const uint8_t*>(args[0]);
  if (sel_in) {
    int k = 0;
    for (int j = 0; j < n; j++) {
      const int i = sel_in[j];
      sel_out[k] = i;
      k += b[i] ? 1 : 0;
    }
    return k;
  }
  return CompactTrueImpl(n, b, sel_out);
}

int SelectNotNullAvx2(int n, const sel_t* sel_in, const void* const* args,
                      sel_t* sel_out) {
  const auto* nulls = static_cast<const uint8_t*>(args[0]);
  if (sel_in) {
    int k = 0;
    for (int j = 0; j < n; j++) {
      const int i = sel_in[j];
      sel_out[k] = i;
      k += nulls[i] ? 0 : 1;
    }
    return k;
  }
  return CompactNotNullImpl(n, nulls, sel_out);
}

// --- hashing ---------------------------------------------------------------

// Exact low-64-bit product per lane (mul_epu32 cross products).
inline __m256i Mul64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i ahi = _mm256_srli_epi64(a, 32);
  const __m256i bhi = _mm256_srli_epi64(b, 32);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(ahi, b),
                                         _mm256_mul_epu32(a, bhi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

// HashMix (common/hash.h), 4 lanes at a time, bit-identical.
inline __m256i HashMix4(__m256i k) {
  const __m256i c1 = _mm256_set1_epi64x(0xff51afd7ed558ccdULL);
  const __m256i c2 = _mm256_set1_epi64x(0xc4ceb9fe1a85ec53ULL);
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  k = Mul64(k, c1);
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  k = Mul64(k, c2);
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  return k;
}

// HashCombine: HashMix(acc ^ (h + golden + (acc << 6) + (acc >> 2))).
inline __m256i HashCombine4(__m256i acc, __m256i h) {
  const __m256i golden = _mm256_set1_epi64x(0x9e3779b97f4a7c15ULL);
  __m256i t = _mm256_add_epi64(h, golden);
  t = _mm256_add_epi64(t, _mm256_slli_epi64(acc, 6));
  t = _mm256_add_epi64(t, _mm256_srli_epi64(acc, 2));
  return HashMix4(_mm256_xor_si256(acc, t));
}

template <bool COMBINE>
inline void HashStore4(uint64_t* h, __m256i mixed) {
  __m256i r = HashMix4(mixed);
  if constexpr (COMBINE) {
    const __m256i acc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h));
    r = HashCombine4(acc, r);
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(h), r);
}

template <bool COMBINE>
void HashI64DenseT(int n, const int64_t* v, uint64_t* h) {
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + j));
    __m256i r = HashMix4(k);
    if constexpr (COMBINE) {
      const __m256i acc =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + j));
      r = HashCombine4(acc, r);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(h + j), r);
  }
  for (; j < n; j++) {
    const uint64_t hv = HashInt(v[j]);
    h[j] = COMBINE ? HashCombine(h[j], hv) : hv;
  }
}

template <bool COMBINE>
void HashI32DenseT(int n, const int32_t* v, uint64_t* h) {
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    // Sign-extend to match HashInt(static_cast<int64_t>(v)).
    const __m128i lo =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + j));
    const __m256i k = _mm256_cvtepi32_epi64(lo);
    __m256i r = HashMix4(k);
    if constexpr (COMBINE) {
      const __m256i acc =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + j));
      r = HashCombine4(acc, r);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(h + j), r);
  }
  for (; j < n; j++) {
    const uint64_t hv = HashInt(v[j]);
    h[j] = COMBINE ? HashCombine(h[j], hv) : hv;
  }
}

template <bool COMBINE>
void HashF64DenseT(int n, const double* v, uint64_t* h) {
  const __m256d zero = _mm256_setzero_pd();
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d d = _mm256_loadu_pd(v + j);
    // HashDouble normalizes v == 0.0 (so -0.0 too) to the +0.0 bit
    // pattern; NaN compares unequal and keeps its payload bits.
    const __m256d is_zero = _mm256_cmp_pd(d, zero, _CMP_EQ_OQ);
    const __m256i bits =
        _mm256_castpd_si256(_mm256_andnot_pd(is_zero, d));
    __m256i r = HashMix4(bits);
    if constexpr (COMBINE) {
      const __m256i acc =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + j));
      r = HashCombine4(acc, r);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(h + j), r);
  }
  for (; j < n; j++) {
    const uint64_t hv = HashDouble(v[j]);
    h[j] = COMBINE ? HashCombine(h[j], hv) : hv;
  }
}

// --- registration helpers --------------------------------------------------

using SelectTmpl = int (*)(int, const sel_t*, const void* const*, sel_t*);
using MapTmpl = Status (*)(int, const sel_t*, const void* const*, void*,
                           PrimCtx*);

void RegCmpVariants(const char* op, TypeId t, SelectTmpl svv, SelectTmpl sval,
                    SelectTmpl vals, MapTmpl mvv, MapTmpl mval, MapTmpl mals) {
  auto* reg = PrimitiveRegistry::Get();
  const SimdLevel L = SimdLevel::kAvx2;
  reg->RegisterSelectVariant(
      BuildSignature("select", op, {{t, false}, {t, false}}), L, svv);
  reg->RegisterSelectVariant(
      BuildSignature("select", op, {{t, false}, {t, true}}), L, sval);
  reg->RegisterSelectVariant(
      BuildSignature("select", op, {{t, true}, {t, false}}), L, vals);
  reg->RegisterMapVariant(
      BuildSignature("map", op, {{t, false}, {t, false}}), L, mvv);
  reg->RegisterMapVariant(
      BuildSignature("map", op, {{t, false}, {t, true}}), L, mval);
  reg->RegisterMapVariant(
      BuildSignature("map", op, {{t, true}, {t, false}}), L, mals);
}

template <Cmp OP>
void RegCmpI32Op(const char* op, TypeId t) {
  RegCmpVariants(op, t, &SelectCmpI32<OP, false, false>,
                 &SelectCmpI32<OP, false, true>,
                 &SelectCmpI32<OP, true, false>, &MapCmpI32<OP, false, false>,
                 &MapCmpI32<OP, false, true>, &MapCmpI32<OP, true, false>);
}

template <Cmp OP>
void RegCmpI64Op(const char* op) {
  RegCmpVariants(op, TypeId::kI64, &SelectCmpI64<OP, false, false>,
                 &SelectCmpI64<OP, false, true>,
                 &SelectCmpI64<OP, true, false>, &MapCmpI64<OP, false, false>,
                 &MapCmpI64<OP, false, true>, &MapCmpI64<OP, true, false>);
}

template <Cmp OP>
void RegCmpF64Op(const char* op) {
  RegCmpVariants(op, TypeId::kF64, &SelectCmpF64<OP, false, false>,
                 &SelectCmpF64<OP, false, true>,
                 &SelectCmpF64<OP, true, false>, &MapCmpF64<OP, false, false>,
                 &MapCmpF64<OP, false, true>, &MapCmpF64<OP, true, false>);
}

}  // namespace

namespace simd_avx2 {

void RegisterKernels() {
  auto* reg = PrimitiveRegistry::Get();
  const SimdLevel L = SimdLevel::kAvx2;

  RegCmpI32Op<Cmp::kEq>("eq", TypeId::kI32);
  RegCmpI32Op<Cmp::kNe>("ne", TypeId::kI32);
  RegCmpI32Op<Cmp::kLt>("lt", TypeId::kI32);
  RegCmpI32Op<Cmp::kLe>("le", TypeId::kI32);
  RegCmpI32Op<Cmp::kGt>("gt", TypeId::kI32);
  RegCmpI32Op<Cmp::kGe>("ge", TypeId::kI32);
  // Dates are physically i32 — same kernels under the date signature.
  RegCmpI32Op<Cmp::kEq>("eq", TypeId::kDate);
  RegCmpI32Op<Cmp::kNe>("ne", TypeId::kDate);
  RegCmpI32Op<Cmp::kLt>("lt", TypeId::kDate);
  RegCmpI32Op<Cmp::kLe>("le", TypeId::kDate);
  RegCmpI32Op<Cmp::kGt>("gt", TypeId::kDate);
  RegCmpI32Op<Cmp::kGe>("ge", TypeId::kDate);
  RegCmpI64Op<Cmp::kEq>("eq");
  RegCmpI64Op<Cmp::kNe>("ne");
  RegCmpI64Op<Cmp::kLt>("lt");
  RegCmpI64Op<Cmp::kLe>("le");
  RegCmpI64Op<Cmp::kGt>("gt");
  RegCmpI64Op<Cmp::kGe>("ge");
  RegCmpF64Op<Cmp::kEq>("eq");
  RegCmpF64Op<Cmp::kNe>("ne");
  RegCmpF64Op<Cmp::kLt>("lt");
  RegCmpF64Op<Cmp::kLe>("le");
  RegCmpF64Op<Cmp::kGt>("gt");
  RegCmpF64Op<Cmp::kGe>("ge");

  const ArgSig bvec{TypeId::kBool, false};
  reg->RegisterMapVariant(BuildSignature("map", "and", {bvec, bvec}), L,
                          &MapBool<BoolOp::kAnd>);
  reg->RegisterMapVariant(BuildSignature("map", "or", {bvec, bvec}), L,
                          &MapBool<BoolOp::kOr>);
  reg->RegisterMapVariant(BuildSignature("map", "xor", {bvec, bvec}), L,
                          &MapBool<BoolOp::kXor>);
  reg->RegisterMapVariant(BuildSignature("map", "not", {bvec}), L,
                          &MapNotBool);
  reg->RegisterSelectVariant(BuildSignature("select", "true", {bvec}), L,
                             &SelectTrueAvx2);
  reg->RegisterSelectVariant(BuildSignature("select", "notnull", {bvec}), L,
                             &SelectNotNullAvx2);
}

void OrBytesInto(int n, const uint8_t* src, uint8_t* dst) {
  int i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(d, s));
  }
  for (; i < n; i++) dst[i] |= src[i];
}

void IsZeroBytes(int n, const uint8_t* src, uint8_t* dst) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi8(1);
  int i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_and_si256(_mm256_cmpeq_epi8(s, zero), one));
  }
  for (; i < n; i++) dst[i] = src[i] == 0 ? 1 : 0;
}

int CompactTrue(int n, const uint8_t* val, sel_t* sel_out) {
  return CompactTrueImpl(n, val, sel_out);
}

int CompactNotNull(int n, const uint8_t* nulls, sel_t* sel_out) {
  return CompactNotNullImpl(n, nulls, sel_out);
}

int CompactTrueNotNull(int n, const uint8_t* val, const uint8_t* nulls,
                       sel_t* sel_out) {
  return CompactTrueNotNullImpl(n, val, nulls, sel_out);
}

void HashI32Dense(int n, const int32_t* v, uint64_t* h, bool combine) {
  combine ? HashI32DenseT<true>(n, v, h) : HashI32DenseT<false>(n, v, h);
}

void HashI64Dense(int n, const int64_t* v, uint64_t* h, bool combine) {
  combine ? HashI64DenseT<true>(n, v, h) : HashI64DenseT<false>(n, v, h);
}

void HashF64Dense(int n, const double* v, uint64_t* h, bool combine) {
  combine ? HashF64DenseT<true>(n, v, h) : HashF64DenseT<false>(n, v, h);
}

int64_t CountNonNull(int n, const uint8_t* nulls) {
  if (nulls == nullptr) return n;
  const __m256i zero = _mm256_setzero_si256();
  int64_t c = 0;
  int i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(nulls + i));
    const unsigned m =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(s, zero)));
    c += __builtin_popcount(m);
  }
  for (; i < n; i++) c += nulls[i] ? 0 : 1;
  return c;
}

void SumI64Keyless(int n, const int64_t* v, const uint8_t* nulls,
                   int64_t* sum, int64_t* count) {
  __m256i acc = _mm256_setzero_si256();
  int64_t cnt = 0;
  int i = 0;
  if (nulls == nullptr) {
    for (; i + 4 <= n; i += 4) {
      acc = _mm256_add_epi64(
          acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)));
    }
    cnt = i;
  } else {
    for (; i + 4 <= n; i += 4) {
      uint32_t nb;
      std::memcpy(&nb, nulls + i, 4);
      // NULL slots are not guaranteed to hold safe values after a map
      // kernel ran over them — mask the lanes, don't trust the data.
      const __m256i nl = _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(
          static_cast<int>(nb)));
      const __m256i keep = _mm256_cmpeq_epi64(nl, _mm256_setzero_si256());
      const __m256i val = _mm256_and_si256(
          keep, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)));
      acc = _mm256_add_epi64(acc, val);
      cnt += __builtin_popcount(static_cast<unsigned>(
          _mm256_movemask_pd(_mm256_castsi256_pd(keep))));
    }
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  // Wrapping lane fold: identical to the scalar wrap-add accumulation.
  uint64_t s = static_cast<uint64_t>(lanes[0]) +
               static_cast<uint64_t>(lanes[1]) +
               static_cast<uint64_t>(lanes[2]) +
               static_cast<uint64_t>(lanes[3]);
  for (; i < n; i++) {
    if (nulls != nullptr && nulls[i]) continue;
    s += static_cast<uint64_t>(v[i]);
    cnt++;
  }
  *sum = static_cast<int64_t>(static_cast<uint64_t>(*sum) + s);
  *count += cnt;
}

void SumI32Keyless(int n, const int32_t* v, const uint8_t* nulls,
                   int64_t* sum, int64_t* count) {
  __m256i acc = _mm256_setzero_si256();
  int64_t cnt = 0;
  int i = 0;
  if (nulls == nullptr) {
    for (; i + 4 <= n; i += 4) {
      const __m128i lo =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
      acc = _mm256_add_epi64(acc, _mm256_cvtepi32_epi64(lo));
    }
    cnt = i;
  } else {
    for (; i + 4 <= n; i += 4) {
      uint32_t nb;
      std::memcpy(&nb, nulls + i, 4);
      const __m256i nl = _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(
          static_cast<int>(nb)));
      const __m256i keep = _mm256_cmpeq_epi64(nl, _mm256_setzero_si256());
      const __m128i lo =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
      acc = _mm256_add_epi64(
          acc, _mm256_and_si256(keep, _mm256_cvtepi32_epi64(lo)));
      cnt += __builtin_popcount(static_cast<unsigned>(
          _mm256_movemask_pd(_mm256_castsi256_pd(keep))));
    }
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t s = static_cast<uint64_t>(lanes[0]) +
               static_cast<uint64_t>(lanes[1]) +
               static_cast<uint64_t>(lanes[2]) +
               static_cast<uint64_t>(lanes[3]);
  for (; i < n; i++) {
    if (nulls != nullptr && nulls[i]) continue;
    s += static_cast<uint64_t>(static_cast<int64_t>(v[i]));
    cnt++;
  }
  *sum = static_cast<int64_t>(static_cast<uint64_t>(*sum) + s);
  *count += cnt;
}

bool MinMaxI64Keyless(int n, const int64_t* v, const uint8_t* nulls,
                      bool is_min, int64_t* best, int64_t* count) {
  // NULL lanes are blended to the identity sentinel so they never win.
  const int64_t ident = is_min ? INT64_MAX : INT64_MIN;
  const __m256i identv = _mm256_set1_epi64x(ident);
  __m256i acc = identv;
  int64_t cnt = 0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i val = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    if (nulls != nullptr) {
      uint32_t nb;
      std::memcpy(&nb, nulls + i, 4);
      const __m256i nl = _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(
          static_cast<int>(nb)));
      const __m256i keep = _mm256_cmpeq_epi64(nl, _mm256_setzero_si256());
      val = _mm256_blendv_epi8(identv, val, keep);
      cnt += __builtin_popcount(static_cast<unsigned>(
          _mm256_movemask_pd(_mm256_castsi256_pd(keep))));
    } else {
      cnt += 4;
    }
    const __m256i gt = is_min ? _mm256_cmpgt_epi64(acc, val)
                              : _mm256_cmpgt_epi64(val, acc);
    acc = _mm256_blendv_epi8(acc, val, gt);
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  bool have = false;
  int64_t b = ident;
  for (int l = 0; l < 4; l++) {
    if (is_min ? lanes[l] < b : lanes[l] > b) b = lanes[l];
  }
  // The sentinel value itself can be a legitimate input; non-NULL count
  // over the vector part decides whether any lane was real.
  have = cnt > 0;
  for (; i < n; i++) {
    if (nulls != nullptr && nulls[i]) continue;
    cnt++;
    if (!have || (is_min ? v[i] < b : v[i] > b)) b = v[i];
    have = true;
  }
  *count += cnt;
  if (have) *best = b;
  return have;
}

bool MinMaxI32Keyless(int n, const int32_t* v, const uint8_t* nulls,
                      bool is_min, int32_t* best, int64_t* count) {
  const int32_t ident = is_min ? INT32_MAX : INT32_MIN;
  const __m256i identv = _mm256_set1_epi32(ident);
  __m256i acc = identv;
  int64_t cnt = 0;
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i val = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    if (nulls != nullptr) {
      const __m128i nb =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(nulls + i));
      const __m256i nl = _mm256_cvtepu8_epi32(nb);
      const __m256i keep = _mm256_cmpeq_epi32(nl, _mm256_setzero_si256());
      val = _mm256_blendv_epi8(identv, val, keep);
      cnt += __builtin_popcount(static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_castsi256_ps(keep))));
    } else {
      cnt += 8;
    }
    acc = is_min ? _mm256_min_epi32(acc, val) : _mm256_max_epi32(acc, val);
  }
  alignas(32) int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int32_t b = ident;
  for (int l = 0; l < 8; l++) {
    if (is_min ? lanes[l] < b : lanes[l] > b) b = lanes[l];
  }
  bool have = cnt > 0;
  for (; i < n; i++) {
    if (nulls != nullptr && nulls[i]) continue;
    cnt++;
    if (!have || (is_min ? v[i] < b : v[i] > b)) b = v[i];
    have = true;
  }
  *count += cnt;
  if (have) *best = b;
  return have;
}

}  // namespace simd_avx2
}  // namespace x100

#if defined(__clang__)
#pragma clang attribute pop
#else
#pragma GCC pop_options
#endif

#else  // !X100_HAVE_AVX2_BUILD

// Scalar stubs: never selected by dispatch (ResolveSimdLevel cannot yield
// kAvx2 on this build) but keep the link surface identical.
namespace x100 {
namespace simd_avx2 {

void RegisterKernels() {}

void OrBytesInto(int n, const uint8_t* src, uint8_t* dst) {
  for (int i = 0; i < n; i++) dst[i] |= src[i];
}
void IsZeroBytes(int n, const uint8_t* src, uint8_t* dst) {
  for (int i = 0; i < n; i++) dst[i] = src[i] == 0 ? 1 : 0;
}
int CompactTrue(int n, const uint8_t* val, sel_t* sel_out) {
  int k = 0;
  for (int i = 0; i < n; i++) {
    sel_out[k] = i;
    k += val[i] ? 1 : 0;
  }
  return k;
}
int CompactNotNull(int n, const uint8_t* nulls, sel_t* sel_out) {
  int k = 0;
  for (int i = 0; i < n; i++) {
    sel_out[k] = i;
    k += nulls[i] ? 0 : 1;
  }
  return k;
}
int CompactTrueNotNull(int n, const uint8_t* val, const uint8_t* nulls,
                       sel_t* sel_out) {
  int k = 0;
  for (int i = 0; i < n; i++) {
    sel_out[k] = i;
    k += (val[i] && !nulls[i]) ? 1 : 0;
  }
  return k;
}
void HashI32Dense(int n, const int32_t* v, uint64_t* h, bool combine) {
  for (int j = 0; j < n; j++) {
    const uint64_t hv = HashInt(v[j]);
    h[j] = combine ? HashCombine(h[j], hv) : hv;
  }
}
void HashI64Dense(int n, const int64_t* v, uint64_t* h, bool combine) {
  for (int j = 0; j < n; j++) {
    const uint64_t hv = HashInt(v[j]);
    h[j] = combine ? HashCombine(h[j], hv) : hv;
  }
}
void HashF64Dense(int n, const double* v, uint64_t* h, bool combine) {
  for (int j = 0; j < n; j++) {
    const uint64_t hv = HashDouble(v[j]);
    h[j] = combine ? HashCombine(h[j], hv) : hv;
  }
}
int64_t CountNonNull(int n, const uint8_t* nulls) {
  if (nulls == nullptr) return n;
  int64_t c = 0;
  for (int i = 0; i < n; i++) c += nulls[i] ? 0 : 1;
  return c;
}
void SumI32Keyless(int n, const int32_t* v, const uint8_t* nulls,
                   int64_t* sum, int64_t* count) {
  uint64_t s = static_cast<uint64_t>(*sum);
  for (int i = 0; i < n; i++) {
    if (nulls != nullptr && nulls[i]) continue;
    s += static_cast<uint64_t>(static_cast<int64_t>(v[i]));
    (*count)++;
  }
  *sum = static_cast<int64_t>(s);
}
void SumI64Keyless(int n, const int64_t* v, const uint8_t* nulls,
                   int64_t* sum, int64_t* count) {
  uint64_t s = static_cast<uint64_t>(*sum);
  for (int i = 0; i < n; i++) {
    if (nulls != nullptr && nulls[i]) continue;
    s += static_cast<uint64_t>(v[i]);
    (*count)++;
  }
  *sum = static_cast<int64_t>(s);
}
bool MinMaxI32Keyless(int n, const int32_t* v, const uint8_t* nulls,
                      bool is_min, int32_t* best, int64_t* count) {
  bool have = false;
  int32_t b = 0;
  for (int i = 0; i < n; i++) {
    if (nulls != nullptr && nulls[i]) continue;
    (*count)++;
    if (!have || (is_min ? v[i] < b : v[i] > b)) b = v[i];
    have = true;
  }
  if (have) *best = b;
  return have;
}
bool MinMaxI64Keyless(int n, const int64_t* v, const uint8_t* nulls,
                      bool is_min, int64_t* best, int64_t* count) {
  bool have = false;
  int64_t b = 0;
  for (int i = 0; i < n; i++) {
    if (nulls != nullptr && nulls[i]) continue;
    (*count)++;
    if (!have || (is_min ? v[i] < b : v[i] > b)) b = v[i];
    have = true;
  }
  if (have) *best = b;
  return have;
}

}  // namespace simd_avx2
}  // namespace x100

#endif  // X100_HAVE_AVX2_BUILD
