// Hooks the per-target kernel variants into the primitive registry.
// Called once from EnsureKernelsRegistered; only the level(s) this CPU
// can actually execute are registered, so a variant lookup hit is always
// safe to run.
#include "simd/simd.h"
#include "simd/simd_kernels.h"

namespace x100 {

void RegisterSimdKernels() {
  switch (BestSupportedSimdLevel()) {
    case SimdLevel::kAvx2:
      simd_avx2::RegisterKernels();
      break;
    case SimdLevel::kNeon:
      simd_neon::RegisterKernels();
      break;
    case SimdLevel::kScalar:
      break;
  }
}

}  // namespace x100
