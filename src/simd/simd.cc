#include "simd/simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace x100 {

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kNeon: return "neon";
  }
  return "?";
}

const char* SimdModeName(SimdMode mode) {
  switch (mode) {
    case SimdMode::kAuto: return "auto";
    case SimdMode::kScalar: return "scalar";
    case SimdMode::kAvx2: return "avx2";
    case SimdMode::kNeon: return "neon";
  }
  return "?";
}

bool ParseSimdMode(const char* s, SimdMode* out) {
  if (s == nullptr) return false;
  if (std::strcmp(s, "auto") == 0) { *out = SimdMode::kAuto; return true; }
  if (std::strcmp(s, "scalar") == 0) { *out = SimdMode::kScalar; return true; }
  if (std::strcmp(s, "avx2") == 0) { *out = SimdMode::kAvx2; return true; }
  if (std::strcmp(s, "neon") == 0) { *out = SimdMode::kNeon; return true; }
  return false;
}

SimdLevel BestSupportedSimdLevel() {
#if defined(X100_HAVE_AVX2_BUILD)
  // CPUID is not free; resolve once per process.
  static const bool avx2 = __builtin_cpu_supports("avx2");
  return avx2 ? SimdLevel::kAvx2 : SimdLevel::kScalar;
#elif defined(X100_HAVE_NEON_BUILD)
  // NEON is architecturally guaranteed on aarch64.
  return SimdLevel::kNeon;
#else
  return SimdLevel::kScalar;
#endif
}

namespace {

/// X100_SIMD with the same contract as X100_MEMORY_LIMIT: only consulted
/// when the config leaves the knob at its default (kAuto), strict parse,
/// malformed values warn once and fall back to auto.
SimdMode EnvSimdMode() {
  const char* env = std::getenv("X100_SIMD");
  if (env == nullptr || *env == '\0') return SimdMode::kAuto;
  SimdMode mode;
  if (!ParseSimdMode(env, &mode)) {
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "x100: ignoring malformed X100_SIMD=\"%s\" "
                   "(expected auto|scalar|avx2|neon)\n",
                   env);
    }
    return SimdMode::kAuto;
  }
  return mode;
}

/// A concrete requested level the machine cannot execute degrades to
/// scalar — correctness never depends on the knob.
SimdLevel Degrade(SimdLevel requested) {
  if (requested == SimdLevel::kScalar ||
      requested == BestSupportedSimdLevel()) {
    return requested;
  }
  static bool warned = false;
  if (!warned) {
    warned = true;
    std::fprintf(stderr,
                 "x100: SIMD level \"%s\" not supported by this "
                 "build/CPU; using scalar kernels\n",
                 SimdLevelName(requested));
  }
  return SimdLevel::kScalar;
}

}  // namespace

SimdLevel ResolveSimdLevel(SimdMode mode) {
  if (mode == SimdMode::kAuto) mode = EnvSimdMode();
  switch (mode) {
    case SimdMode::kAuto: return BestSupportedSimdLevel();
    case SimdMode::kScalar: return SimdLevel::kScalar;
    case SimdMode::kAvx2: return Degrade(SimdLevel::kAvx2);
    case SimdMode::kNeon: return Degrade(SimdLevel::kNeon);
  }
  return SimdLevel::kScalar;
}

std::vector<SimdLevel> AvailableSimdLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  const SimdLevel best = BestSupportedSimdLevel();
  if (best != SimdLevel::kScalar) levels.push_back(best);
  return levels;
}

}  // namespace x100
