// SIMD dispatch layer — level selection and introspection.
//
// The X100 primitive registry keeps one scalar kernel per signature plus
// optional SIMD variants (AVX2, NEON) compiled in dedicated translation
// units with per-function target attributes, so the engine binary runs on
// any CPU and selects the widest supported level at runtime (CPUID).
// Selection order:
//   1. EngineConfig::simd_level when it names a concrete mode,
//   2. the X100_SIMD environment knob (auto|scalar|avx2|neon; malformed
//      values warn once and fall back to auto, mirroring X100_MEMORY_LIMIT),
//   3. auto: the best level both the build and the CPU support.
// A level the hardware or build cannot execute degrades to scalar (warn
// once) — the scalar kernel is always registered and always correct.
#ifndef X100_SIMD_SIMD_H_
#define X100_SIMD_SIMD_H_

#include <cstdint>
#include <vector>

namespace x100 {

/// Compile-time capability of this build. AVX2 kernels use per-function
/// target attributes, so they only need a GCC/Clang-compatible compiler on
/// x86-64, not a global -mavx2.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define X100_HAVE_AVX2_BUILD 1
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
#define X100_HAVE_NEON_BUILD 1
#endif

/// A concrete dispatch level a kernel variant is compiled for. kScalar is
/// the portable baseline every primitive registers.
enum class SimdLevel : uint8_t { kScalar = 0, kAvx2 = 1, kNeon = 2 };
inline constexpr int kNumSimdLevels = 3;

/// The user-facing knob (EngineConfig::simd_level / X100_SIMD): a concrete
/// level, or kAuto = "widest level build + CPU support".
enum class SimdMode : uint8_t { kAuto = 0, kScalar = 1, kAvx2 = 2, kNeon = 3 };

const char* SimdLevelName(SimdLevel level);
const char* SimdModeName(SimdMode mode);

/// Strict parse of a mode string ("auto"/"scalar"/"avx2"/"neon").
/// Returns false (out untouched) on anything else.
bool ParseSimdMode(const char* s, SimdMode* out);

/// Widest level this build AND this CPU can execute (CPUID; cached).
SimdLevel BestSupportedSimdLevel();

/// Resolves a configured mode to the level the engine will dispatch at.
/// kAuto consults the X100_SIMD environment knob first (strict parse,
/// warn-once fallback to auto); a concrete mode the machine cannot run
/// warns once and degrades to scalar.
SimdLevel ResolveSimdLevel(SimdMode mode);

/// The levels runnable on this machine, scalar first. Parity tests and
/// benches iterate this.
std::vector<SimdLevel> AvailableSimdLevels();

}  // namespace x100

#endif  // X100_SIMD_SIMD_H_
