// Level-dispatched helpers (namespace simd). The scalar loops are the
// reference semantics; the per-target variants must match them bit for
// bit (tests/simd_test.cc).
#include "simd/simd_kernels.h"

namespace x100 {
namespace simd {

void OrBytesInto(int n, const uint8_t* src, uint8_t* dst, SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      simd_avx2::OrBytesInto(n, src, dst);
      return;
    case SimdLevel::kNeon:
      simd_neon::OrBytesInto(n, src, dst);
      return;
    case SimdLevel::kScalar:
      break;
  }
  for (int i = 0; i < n; i++) dst[i] |= src[i];
}

void IsZeroBytes(int n, const uint8_t* src, uint8_t* dst, SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      simd_avx2::IsZeroBytes(n, src, dst);
      return;
    case SimdLevel::kNeon:
      simd_neon::IsZeroBytes(n, src, dst);
      return;
    case SimdLevel::kScalar:
      break;
  }
  for (int i = 0; i < n; i++) dst[i] = src[i] == 0 ? 1 : 0;
}

int CompactTrue(int n, const uint8_t* val, sel_t* sel_out, SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return simd_avx2::CompactTrue(n, val, sel_out);
    case SimdLevel::kNeon:
      return simd_neon::CompactTrue(n, val, sel_out);
    case SimdLevel::kScalar:
      break;
  }
  int k = 0;
  for (int i = 0; i < n; i++) {
    sel_out[k] = i;
    k += val[i] ? 1 : 0;
  }
  return k;
}

int CompactNotNull(int n, const uint8_t* nulls, sel_t* sel_out,
                   SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return simd_avx2::CompactNotNull(n, nulls, sel_out);
    case SimdLevel::kNeon:
      return simd_neon::CompactNotNull(n, nulls, sel_out);
    case SimdLevel::kScalar:
      break;
  }
  int k = 0;
  for (int i = 0; i < n; i++) {
    sel_out[k] = i;
    k += nulls[i] ? 0 : 1;
  }
  return k;
}

int CompactTrueNotNull(int n, const uint8_t* val, const uint8_t* nulls,
                       sel_t* sel_out, SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return simd_avx2::CompactTrueNotNull(n, val, nulls, sel_out);
    case SimdLevel::kNeon:
      return simd_neon::CompactTrueNotNull(n, val, nulls, sel_out);
    case SimdLevel::kScalar:
      break;
  }
  int k = 0;
  for (int i = 0; i < n; i++) {
    sel_out[k] = i;
    k += (val[i] && !nulls[i]) ? 1 : 0;
  }
  return k;
}

}  // namespace simd
}  // namespace x100
