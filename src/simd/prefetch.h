// Software prefetch for the hash-table-miss walls (join probe, group
// lookup). The idiom (docs/EXECUTION.md §"SIMD dispatch & prefetch"):
// hashes are computed for a whole vector up front, so while probing row j
// the bucket head of row j + kPrefetchDistance can already be on its way
// from memory — a small in-flight window that overlaps the dependent
// loads instead of eating full miss latency per key.
#ifndef X100_SIMD_PREFETCH_H_
#define X100_SIMD_PREFETCH_H_

namespace x100 {

/// Rows probed between issuing a prefetch and consuming its line. Large
/// enough to cover DRAM latency at a few ns/row, small enough that the
/// prefetched lines are not evicted before use.
inline constexpr int kPrefetchDistance = 16;

/// Read prefetch into (moderate-locality) cache; a hint, never a fault —
/// safe on any address that is merely reachable.
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/2);
#else
  (void)p;
#endif
}

}  // namespace x100

#endif  // X100_SIMD_PREFETCH_H_
