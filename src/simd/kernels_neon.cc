// NEON kernel variants — the byte-wise subset (boolean logic, NULL-mask
// combination, selection compaction). AArch64 has no movemask; the
// compaction mask comes from the vshrn narrowing trick: compare to get
// 0x00/0xFF bytes, narrow 16x8-bit to a 64-bit nibble mask, then walk the
// nibbles. Hash and aggregation kernels stay scalar on this target.
//
// NEON is baseline on AArch64, so no per-function target attribute is
// needed — the guard is compile-time only.
#include "simd/simd_kernels.h"

#include <cstring>

#include "primitives/primitive_registry.h"

#if defined(X100_HAVE_NEON_BUILD)

#include <arm_neon.h>

namespace x100 {
namespace {

// 16 compare-result bytes (0x00/0xFF) -> 64-bit mask, 4 bits per input
// byte (all-ones nibble iff the byte was 0xFF).
inline uint64_t NibbleMask(uint8x16_t eq) {
  const uint8x8_t narrowed = vshrn_n_u16(vreinterpretq_u16_u8(eq), 4);
  return vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
}

int CompactTrueImpl(int n, const uint8_t* val, sel_t* sel_out) {
  int k = 0;
  int i = 0;
  const uint8x16_t zero = vdupq_n_u8(0);
  for (; i + 16 <= n; i += 16) {
    uint64_t m = ~NibbleMask(vceqq_u8(vld1q_u8(val + i), zero));
    while (m != 0) {
      const int bit = __builtin_ctzll(m);
      sel_out[k++] = i + (bit >> 2);
      m &= m - 1;
      m &= ~(uint64_t{0xE} << bit);  // clear the rest of this nibble
    }
  }
  for (; i < n; i++) {
    sel_out[k] = i;
    k += val[i] ? 1 : 0;
  }
  return k;
}

int CompactNotNullImpl(int n, const uint8_t* nulls, sel_t* sel_out) {
  int k = 0;
  int i = 0;
  const uint8x16_t zero = vdupq_n_u8(0);
  for (; i + 16 <= n; i += 16) {
    uint64_t m = NibbleMask(vceqq_u8(vld1q_u8(nulls + i), zero));
    while (m != 0) {
      const int bit = __builtin_ctzll(m);
      sel_out[k++] = i + (bit >> 2);
      m &= ~(uint64_t{0xF} << (bit & ~3));
    }
  }
  for (; i < n; i++) {
    sel_out[k] = i;
    k += nulls[i] ? 0 : 1;
  }
  return k;
}

int CompactTrueNotNullImpl(int n, const uint8_t* val, const uint8_t* nulls,
                           sel_t* sel_out) {
  int k = 0;
  int i = 0;
  const uint8x16_t zero = vdupq_n_u8(0);
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t live = vandq_u8(
        vmvnq_u8(vceqq_u8(vld1q_u8(val + i), zero)),
        vceqq_u8(vld1q_u8(nulls + i), zero));
    uint64_t m = NibbleMask(live);
    while (m != 0) {
      const int bit = __builtin_ctzll(m);
      sel_out[k++] = i + (bit >> 2);
      m &= ~(uint64_t{0xF} << (bit & ~3));
    }
  }
  for (; i < n; i++) {
    sel_out[k] = i;
    k += (val[i] && !nulls[i]) ? 1 : 0;
  }
  return k;
}

Status MapAndBool(int n, const sel_t* sel, const void* const* args, void* out,
                  PrimCtx*) {
  const auto* a = static_cast<const uint8_t*>(args[0]);
  const auto* b = static_cast<const uint8_t*>(args[1]);
  auto* o = static_cast<uint8_t*>(out);
  if (sel) {
    for (int j = 0; j < n; j++) {
      const int i = sel[j];
      o[i] = a[i] & b[i];
    }
    return Status::OK();
  }
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(o + i, vandq_u8(vld1q_u8(a + i), vld1q_u8(b + i)));
  }
  for (; i < n; i++) o[i] = a[i] & b[i];
  return Status::OK();
}

Status MapOrBool(int n, const sel_t* sel, const void* const* args, void* out,
                 PrimCtx*) {
  const auto* a = static_cast<const uint8_t*>(args[0]);
  const auto* b = static_cast<const uint8_t*>(args[1]);
  auto* o = static_cast<uint8_t*>(out);
  if (sel) {
    for (int j = 0; j < n; j++) {
      const int i = sel[j];
      o[i] = a[i] | b[i];
    }
    return Status::OK();
  }
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(o + i, vorrq_u8(vld1q_u8(a + i), vld1q_u8(b + i)));
  }
  for (; i < n; i++) o[i] = a[i] | b[i];
  return Status::OK();
}

Status MapXorBool(int n, const sel_t* sel, const void* const* args, void* out,
                  PrimCtx*) {
  const auto* a = static_cast<const uint8_t*>(args[0]);
  const auto* b = static_cast<const uint8_t*>(args[1]);
  auto* o = static_cast<uint8_t*>(out);
  if (sel) {
    for (int j = 0; j < n; j++) {
      const int i = sel[j];
      o[i] = static_cast<uint8_t>((a[i] ^ b[i]) & 1);
    }
    return Status::OK();
  }
  int i = 0;
  const uint8x16_t one = vdupq_n_u8(1);
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(o + i,
             vandq_u8(veorq_u8(vld1q_u8(a + i), vld1q_u8(b + i)), one));
  }
  for (; i < n; i++) o[i] = static_cast<uint8_t>((a[i] ^ b[i]) & 1);
  return Status::OK();
}

Status MapNotBool(int n, const sel_t* sel, const void* const* args, void* out,
                  PrimCtx*) {
  const auto* a = static_cast<const uint8_t*>(args[0]);
  auto* o = static_cast<uint8_t*>(out);
  if (sel) {
    for (int j = 0; j < n; j++) {
      const int i = sel[j];
      o[i] = static_cast<uint8_t>(a[i] ^ 1);
    }
    return Status::OK();
  }
  int i = 0;
  const uint8x16_t one = vdupq_n_u8(1);
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(o + i, veorq_u8(vld1q_u8(a + i), one));
  }
  for (; i < n; i++) o[i] = static_cast<uint8_t>(a[i] ^ 1);
  return Status::OK();
}

int SelectTrueNeon(int n, const sel_t* sel_in, const void* const* args,
                   sel_t* sel_out) {
  const auto* b = static_cast<const uint8_t*>(args[0]);
  if (sel_in) {
    int k = 0;
    for (int j = 0; j < n; j++) {
      const int i = sel_in[j];
      sel_out[k] = i;
      k += b[i] ? 1 : 0;
    }
    return k;
  }
  return CompactTrueImpl(n, b, sel_out);
}

int SelectNotNullNeon(int n, const sel_t* sel_in, const void* const* args,
                      sel_t* sel_out) {
  const auto* nulls = static_cast<const uint8_t*>(args[0]);
  if (sel_in) {
    int k = 0;
    for (int j = 0; j < n; j++) {
      const int i = sel_in[j];
      sel_out[k] = i;
      k += nulls[i] ? 0 : 1;
    }
    return k;
  }
  return CompactNotNullImpl(n, nulls, sel_out);
}

}  // namespace

namespace simd_neon {

void RegisterKernels() {
  auto* reg = PrimitiveRegistry::Get();
  const SimdLevel L = SimdLevel::kNeon;
  const ArgSig bvec{TypeId::kBool, false};
  reg->RegisterMapVariant(BuildSignature("map", "and", {bvec, bvec}), L,
                          &MapAndBool);
  reg->RegisterMapVariant(BuildSignature("map", "or", {bvec, bvec}), L,
                          &MapOrBool);
  reg->RegisterMapVariant(BuildSignature("map", "xor", {bvec, bvec}), L,
                          &MapXorBool);
  reg->RegisterMapVariant(BuildSignature("map", "not", {bvec}), L,
                          &MapNotBool);
  reg->RegisterSelectVariant(BuildSignature("select", "true", {bvec}), L,
                             &SelectTrueNeon);
  reg->RegisterSelectVariant(BuildSignature("select", "notnull", {bvec}), L,
                             &SelectNotNullNeon);
}

void OrBytesInto(int n, const uint8_t* src, uint8_t* dst) {
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, vorrq_u8(vld1q_u8(dst + i), vld1q_u8(src + i)));
  }
  for (; i < n; i++) dst[i] |= src[i];
}

void IsZeroBytes(int n, const uint8_t* src, uint8_t* dst) {
  const uint8x16_t zero = vdupq_n_u8(0);
  const uint8x16_t one = vdupq_n_u8(1);
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, vandq_u8(vceqq_u8(vld1q_u8(src + i), zero), one));
  }
  for (; i < n; i++) dst[i] = src[i] == 0 ? 1 : 0;
}

int CompactTrue(int n, const uint8_t* val, sel_t* sel_out) {
  return CompactTrueImpl(n, val, sel_out);
}

int CompactNotNull(int n, const uint8_t* nulls, sel_t* sel_out) {
  return CompactNotNullImpl(n, nulls, sel_out);
}

int CompactTrueNotNull(int n, const uint8_t* val, const uint8_t* nulls,
                       sel_t* sel_out) {
  return CompactTrueNotNullImpl(n, val, nulls, sel_out);
}

}  // namespace simd_neon
}  // namespace x100

#else  // !X100_HAVE_NEON_BUILD

namespace x100 {
namespace simd_neon {

// Scalar stubs: dispatch can never select kNeon on this build.
void RegisterKernels() {}

void OrBytesInto(int n, const uint8_t* src, uint8_t* dst) {
  for (int i = 0; i < n; i++) dst[i] |= src[i];
}
void IsZeroBytes(int n, const uint8_t* src, uint8_t* dst) {
  for (int i = 0; i < n; i++) dst[i] = src[i] == 0 ? 1 : 0;
}
int CompactTrue(int n, const uint8_t* val, sel_t* sel_out) {
  int k = 0;
  for (int i = 0; i < n; i++) {
    sel_out[k] = i;
    k += val[i] ? 1 : 0;
  }
  return k;
}
int CompactNotNull(int n, const uint8_t* nulls, sel_t* sel_out) {
  int k = 0;
  for (int i = 0; i < n; i++) {
    sel_out[k] = i;
    k += nulls[i] ? 0 : 1;
  }
  return k;
}
int CompactTrueNotNull(int n, const uint8_t* val, const uint8_t* nulls,
                       sel_t* sel_out) {
  int k = 0;
  for (int i = 0; i < n; i++) {
    sel_out[k] = i;
    k += (val[i] && !nulls[i]) ? 1 : 0;
  }
  return k;
}

}  // namespace simd_neon
}  // namespace x100

#endif  // X100_HAVE_NEON_BUILD
