// Cross-level SIMD kernel entry points.
//
// Two layers live here:
//  * namespace simd      — level-dispatched helpers called from the
//                          execution layer (NULL-mask combination,
//                          selection-vector compaction). Each takes the
//                          resolved SimdLevel and falls back to the scalar
//                          loop for levels without a variant.
//  * namespace simd_avx2 /
//    namespace simd_neon — the per-target building blocks, compiled in
//                          kernels_avx2.cc / kernels_neon.cc with
//                          per-function target attributes. On builds
//                          without the target they are scalar stubs (and
//                          never selected, since ResolveSimdLevel cannot
//                          yield that level). RegisterKernels() adds the
//                          target's registry variants; call it only when
//                          BestSupportedSimdLevel() says the CPU can run
//                          them.
//
// Every kernel is bit-identical to its scalar counterpart — hashes drive
// RadixPartitionOf and therefore partition/spill routing, so "close
// enough" would change which rows spill (tests/simd_test.cc enforces
// identity for all of them).
#ifndef X100_SIMD_SIMD_KERNELS_H_
#define X100_SIMD_SIMD_KERNELS_H_

#include <cstdint>

#include "simd/simd.h"
#include "vector/vector.h"

namespace x100 {

namespace simd {

/// dst[i] |= src[i] — the NULL-indicator OR of strict propagation.
void OrBytesInto(int n, const uint8_t* src, uint8_t* dst, SimdLevel level);

/// dst[i] = src[i] == 0 ? 1 : 0 — the isnotnull indicator flip.
void IsZeroBytes(int n, const uint8_t* src, uint8_t* dst, SimdLevel level);

/// Dense compaction: appends i where val[i] != 0; returns the count.
/// sel_out must have room for n entries (standard selection contract).
int CompactTrue(int n, const uint8_t* val, sel_t* sel_out, SimdLevel level);

/// Appends i where nulls[i] == 0.
int CompactNotNull(int n, const uint8_t* nulls, sel_t* sel_out,
                   SimdLevel level);

/// Appends i where val[i] != 0 && nulls[i] == 0 (strict WHERE semantics
/// fused: predicate true and not NULL).
int CompactTrueNotNull(int n, const uint8_t* val, const uint8_t* nulls,
                       sel_t* sel_out, SimdLevel level);

}  // namespace simd

namespace simd_avx2 {

/// Registers this target's primitive-registry variants (select/map
/// compares, boolean kernels). Only call when the CPU supports AVX2.
void RegisterKernels();

void OrBytesInto(int n, const uint8_t* src, uint8_t* dst);
void IsZeroBytes(int n, const uint8_t* src, uint8_t* dst);
int CompactTrue(int n, const uint8_t* val, sel_t* sel_out);
int CompactNotNull(int n, const uint8_t* nulls, sel_t* sel_out);
int CompactTrueNotNull(int n, const uint8_t* val, const uint8_t* nulls,
                       sel_t* sel_out);

/// Batched hashing, bit-identical to HashInt/HashDouble + HashCombine.
void HashI32Dense(int n, const int32_t* v, uint64_t* hashes, bool combine);
void HashI64Dense(int n, const int64_t* v, uint64_t* hashes, bool combine);
void HashF64Dense(int n, const double* v, uint64_t* hashes, bool combine);

/// Keyless (single-group) aggregate folds over a dense vector. `nulls`
/// may be nullptr. Sum adds into *sum (two's-complement wrap, matching
/// the scalar accumulate) and bumps *count per non-NULL row; MinMax
/// returns false when every row was NULL (best untouched).
void SumI32Keyless(int n, const int32_t* v, const uint8_t* nulls,
                   int64_t* sum, int64_t* count);
void SumI64Keyless(int n, const int64_t* v, const uint8_t* nulls,
                   int64_t* sum, int64_t* count);
bool MinMaxI32Keyless(int n, const int32_t* v, const uint8_t* nulls,
                      bool is_min, int32_t* best, int64_t* count);
bool MinMaxI64Keyless(int n, const int64_t* v, const uint8_t* nulls,
                      bool is_min, int64_t* best, int64_t* count);
int64_t CountNonNull(int n, const uint8_t* nulls);

}  // namespace simd_avx2

namespace simd_neon {

/// NEON covers the byte-wise kernels (boolean logic, NULL masks,
/// compaction); hashing and aggregation stay scalar on this target.
void RegisterKernels();

void OrBytesInto(int n, const uint8_t* src, uint8_t* dst);
void IsZeroBytes(int n, const uint8_t* src, uint8_t* dst);
int CompactTrue(int n, const uint8_t* val, sel_t* sel_out);
int CompactNotNull(int n, const uint8_t* nulls, sel_t* sel_out);
int CompactTrueNotNull(int n, const uint8_t* val, const uint8_t* nulls,
                       sel_t* sel_out);

}  // namespace simd_neon

}  // namespace x100

#endif  // X100_SIMD_SIMD_KERNELS_H_
