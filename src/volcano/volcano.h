// A conventional tuple-at-a-time Volcano engine — the baseline of the
// paper's headline claim (§1): vectorized execution "allows modern CPU to
// process queries more than 10 times faster than conventional query
// engines".
//
// Faithful to the conventional design point it stands in for
// (PostgreSQL/MySQL-style interpreted execution):
//  * pull-based iterators returning ONE tuple per virtual Next() call;
//  * expression trees evaluated by recursive virtual calls per tuple,
//    boxing every intermediate into a Value;
//  * per-tuple NULL branches and per-tuple overflow checks (the "naive"
//    error handling the X100 kernels avoid — experiment E7).
//
// Experiment E1 runs identical TPC-H queries through this engine and the
// vectorized one over the same memory-resident data.
#ifndef X100_VOLCANO_VOLCANO_H_
#define X100_VOLCANO_VOLCANO_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "exec/expr.h"
#include "primitives/agg_kernels.h"
#include "vector/schema.h"

namespace x100 {
namespace volcano {

using Row = std::vector<Value>;

/// A compiled scalar expression: one virtual Eval per node per tuple.
class VExpr {
 public:
  virtual ~VExpr() = default;
  virtual Result<Value> Eval(const Row& row) const = 0;
};
using VExprPtr = std::unique_ptr<VExpr>;

/// Compiles a bound Expr tree (BindExpr output) into a VExpr tree.
Result<VExprPtr> CompileScalar(const ExprPtr& bound);

class VOperator {
 public:
  virtual ~VOperator() = default;
  virtual Status Open() = 0;
  /// Produces one tuple; false = end of stream.
  virtual Result<bool> Next(Row* out) = 0;
  virtual void Close() = 0;
  virtual const Schema& output_schema() const = 0;
};
using VOperatorPtr = std::unique_ptr<VOperator>;

class VScan : public VOperator {
 public:
  VScan(Schema schema, const std::vector<Row>* rows)
      : schema_(std::move(schema)), rows_(rows) {}
  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Row* out) override {
    if (pos_ >= rows_->size()) return false;
    *out = (*rows_)[pos_++];
    return true;
  }
  void Close() override {}
  const Schema& output_schema() const override { return schema_; }

 private:
  Schema schema_;
  const std::vector<Row>* rows_;
  size_t pos_ = 0;
};

class VSelect : public VOperator {
 public:
  VSelect(VOperatorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}
  Status Open() override;
  Result<bool> Next(Row* out) override;
  void Close() override { child_->Close(); }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }

 private:
  VOperatorPtr child_;
  ExprPtr predicate_;
  VExprPtr compiled_;
};

struct VProjectItem {
  std::string name;
  ExprPtr expr;
};

class VProject : public VOperator {
 public:
  VProject(VOperatorPtr child, std::vector<VProjectItem> items)
      : child_(std::move(child)), items_(std::move(items)) {}
  Status Open() override;
  Result<bool> Next(Row* out) override;
  void Close() override { child_->Close(); }
  const Schema& output_schema() const override { return schema_; }

 private:
  VOperatorPtr child_;
  std::vector<VProjectItem> items_;
  std::vector<VExprPtr> compiled_;
  Schema schema_;
  Row input_;
};

struct VAggItem {
  AggKind kind;
  ExprPtr input;  // nullptr for COUNT(*)
  std::string name;
};

class VHashAgg : public VOperator {
 public:
  VHashAgg(VOperatorPtr child, std::vector<VProjectItem> group_by,
           std::vector<VAggItem> aggs)
      : child_(std::move(child)),
        group_items_(std::move(group_by)),
        agg_items_(std::move(aggs)) {}
  Status Open() override;
  Result<bool> Next(Row* out) override;
  void Close() override { child_->Close(); }
  const Schema& output_schema() const override { return schema_; }

 private:
  struct GroupState {
    Row keys;
    std::vector<double> f64;
    std::vector<int64_t> i64;
    std::vector<int64_t> count;
  };
  Status Consume();

  VOperatorPtr child_;
  std::vector<VProjectItem> group_items_;
  std::vector<VAggItem> agg_items_;
  std::vector<VExprPtr> key_exprs_;
  std::vector<VExprPtr> agg_exprs_;
  Schema schema_;
  std::unordered_map<std::string, size_t> index_;
  std::vector<GroupState> groups_;
  size_t emit_ = 0;
  bool consumed_ = false;
};

class VHashJoin : public VOperator {
 public:
  /// Inner join; output = probe columns then build columns.
  VHashJoin(VOperatorPtr build, VOperatorPtr probe,
            std::vector<int> build_keys, std::vector<int> probe_keys)
      : build_(std::move(build)),
        probe_(std::move(probe)),
        build_keys_(std::move(build_keys)),
        probe_keys_(std::move(probe_keys)) {}
  Status Open() override;
  Result<bool> Next(Row* out) override;
  void Close() override {
    build_->Close();
    probe_->Close();
  }
  const Schema& output_schema() const override { return schema_; }

 private:
  VOperatorPtr build_;
  VOperatorPtr probe_;
  std::vector<int> build_keys_;
  std::vector<int> probe_keys_;
  Schema schema_;
  std::unordered_multimap<std::string, Row> table_;
  Row probe_row_;
  std::pair<std::unordered_multimap<std::string, Row>::iterator,
            std::unordered_multimap<std::string, Row>::iterator>
      range_;
  bool probing_ = false;
};

class VSort : public VOperator {
 public:
  struct Key {
    int col;
    bool ascending = true;
  };
  VSort(VOperatorPtr child, std::vector<Key> keys, int64_t limit = -1)
      : child_(std::move(child)), keys_(std::move(keys)), limit_(limit) {}
  Status Open() override;
  Result<bool> Next(Row* out) override;
  void Close() override { child_->Close(); }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }

 private:
  VOperatorPtr child_;
  std::vector<Key> keys_;
  int64_t limit_;
  std::vector<Row> rows_;
  size_t emit_ = 0;
};

/// Drains an operator into a row list.
Result<std::vector<Row>> Collect(VOperator* op);

}  // namespace volcano
}  // namespace x100

#endif  // X100_VOLCANO_VOLCANO_H_
