#include "volcano/volcano.h"

#include <algorithm>
#include <limits>

namespace x100 {
namespace volcano {

namespace {

// ---------------------------------------------------------------------------
// Scalar expression nodes (one virtual call per tuple per node — the
// conventional interpretation cost E1/E2 quantify).
// ---------------------------------------------------------------------------

class ColNode : public VExpr {
 public:
  explicit ColNode(int col) : col_(col) {}
  Result<Value> Eval(const Row& row) const override { return row[col_]; }

 private:
  int col_;
};

class ConstNode : public VExpr {
 public:
  explicit ConstNode(Value v) : v_(std::move(v)) {}
  Result<Value> Eval(const Row&) const override { return v_; }

 private:
  Value v_;
};

enum class BinOp { kAdd, kSub, kMul, kDiv, kMod, kEq, kNe, kLt, kLe, kGt, kGe };

class BinNode : public VExpr {
 public:
  BinNode(BinOp op, TypeId type, VExprPtr l, VExprPtr r)
      : op_(op), type_(type), l_(std::move(l)), r_(std::move(r)) {}

  Result<Value> Eval(const Row& row) const override {
    Value a, b;
    X100_ASSIGN_OR_RETURN(a, l_->Eval(row));
    X100_ASSIGN_OR_RETURN(b, r_->Eval(row));
    // Per-tuple NULL branch — strict semantics.
    if (a.is_null() || b.is_null()) {
      return Value::Null(op_ >= BinOp::kEq ? TypeId::kBool : type_);
    }
    const bool flt = type_ == TypeId::kF64;
    switch (op_) {
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul: {
        if (flt) {
          const double x = a.AsF64(), y = b.AsF64();
          return Value::F64(op_ == BinOp::kAdd   ? x + y
                            : op_ == BinOp::kSub ? x - y
                                                 : x * y);
        }
        int64_t r;
        bool ovf;
        // Per-tuple overflow branch — the naive scheme of E7.
        if (op_ == BinOp::kAdd) {
          ovf = __builtin_add_overflow(a.AsI64(), b.AsI64(), &r);
        } else if (op_ == BinOp::kSub) {
          ovf = __builtin_sub_overflow(a.AsI64(), b.AsI64(), &r);
        } else {
          ovf = __builtin_mul_overflow(a.AsI64(), b.AsI64(), &r);
        }
        if (ovf) return Status::Overflow("integer overflow");
        return MakeInt(r);
      }
      case BinOp::kDiv: {
        if (flt) {
          if (b.AsF64() == 0) return Status::DivisionByZero("x/0");
          return Value::F64(a.AsF64() / b.AsF64());
        }
        if (b.AsI64() == 0) return Status::DivisionByZero("x/0");
        if (a.AsI64() == std::numeric_limits<int64_t>::min() &&
            b.AsI64() == -1) {
          return Status::Overflow("integer overflow in div");
        }
        return MakeInt(a.AsI64() / b.AsI64());
      }
      case BinOp::kMod: {
        if (b.AsI64() == 0) return Status::DivisionByZero("x%0");
        return MakeInt(a.AsI64() % b.AsI64());
      }
      default: {
        int cmp;
        if (type_ == TypeId::kStr) {
          cmp = a.AsStr().compare(b.AsStr());
        } else if (flt) {
          cmp = a.AsF64() < b.AsF64() ? -1 : a.AsF64() > b.AsF64() ? 1 : 0;
        } else {
          cmp = a.AsI64() < b.AsI64() ? -1 : a.AsI64() > b.AsI64() ? 1 : 0;
        }
        bool res = false;
        switch (op_) {
          case BinOp::kEq: res = cmp == 0; break;
          case BinOp::kNe: res = cmp != 0; break;
          case BinOp::kLt: res = cmp < 0; break;
          case BinOp::kLe: res = cmp <= 0; break;
          case BinOp::kGt: res = cmp > 0; break;
          case BinOp::kGe: res = cmp >= 0; break;
          default: break;
        }
        return Value::Bool(res);
      }
    }
  }

 private:
  Value MakeInt(int64_t v) const {
    switch (type_) {
      case TypeId::kI8: return Value::I8(static_cast<int8_t>(v));
      case TypeId::kI16: return Value::I16(static_cast<int16_t>(v));
      case TypeId::kI32: return Value::I32(static_cast<int32_t>(v));
      case TypeId::kDate: return Value::Date(static_cast<int32_t>(v));
      default: return Value::I64(v);
    }
  }
  BinOp op_;
  TypeId type_;
  VExprPtr l_, r_;
};

class LogicalNode : public VExpr {
 public:
  enum class Kind { kAnd, kOr, kNot };
  LogicalNode(Kind kind, VExprPtr l, VExprPtr r)
      : kind_(kind), l_(std::move(l)), r_(std::move(r)) {}

  Result<Value> Eval(const Row& row) const override {
    Value a;
    X100_ASSIGN_OR_RETURN(a, l_->Eval(row));
    if (kind_ == Kind::kNot) {
      if (a.is_null()) return Value::Null(TypeId::kBool);
      return Value::Bool(!a.AsBool());
    }
    // Three-valued logic with short circuit.
    if (kind_ == Kind::kAnd && !a.is_null() && !a.AsBool()) {
      return Value::Bool(false);
    }
    if (kind_ == Kind::kOr && !a.is_null() && a.AsBool()) {
      return Value::Bool(true);
    }
    Value b;
    X100_ASSIGN_OR_RETURN(b, r_->Eval(row));
    if (kind_ == Kind::kAnd) {
      if (!b.is_null() && !b.AsBool()) return Value::Bool(false);
      if (a.is_null() || b.is_null()) return Value::Null(TypeId::kBool);
      return Value::Bool(true);
    }
    if (!b.is_null() && b.AsBool()) return Value::Bool(true);
    if (a.is_null() || b.is_null()) return Value::Null(TypeId::kBool);
    return Value::Bool(false);
  }

 private:
  Kind kind_;
  VExprPtr l_, r_;
};

class CastNode : public VExpr {
 public:
  CastNode(TypeId to, VExprPtr in) : to_(to), in_(std::move(in)) {}
  Result<Value> Eval(const Row& row) const override {
    Value v;
    X100_ASSIGN_OR_RETURN(v, in_->Eval(row));
    if (v.is_null()) return Value::Null(to_);
    switch (to_) {
      case TypeId::kF64: return Value::F64(v.AsF64());
      case TypeId::kI64: return Value::I64(v.AsI64());
      case TypeId::kI32: return Value::I32(static_cast<int32_t>(v.AsI64()));
      default: return v;
    }
  }

 private:
  TypeId to_;
  VExprPtr in_;
};

class DateFnNode : public VExpr {
 public:
  DateFnNode(std::string fn, VExprPtr in)
      : fn_(std::move(fn)), in_(std::move(in)) {}
  Result<Value> Eval(const Row& row) const override {
    Value v;
    X100_ASSIGN_OR_RETURN(v, in_->Eval(row));
    if (v.is_null()) return Value::Null(TypeId::kI32);
    const int32_t d = static_cast<int32_t>(v.AsI64());
    if (fn_ == "year") return Value::I32(DateYear(d));
    if (fn_ == "month") return Value::I32(DateMonth(d));
    if (fn_ == "day") return Value::I32(DateDay(d));
    return Status::NotImplemented("volcano date fn " + fn_);
  }

 private:
  std::string fn_;
  VExprPtr in_;
};

}  // namespace

Result<VExprPtr> CompileScalar(const ExprPtr& e) {
  if (!e->bound) return Status::InvalidArgument("expression not bound");
  switch (e->kind) {
    case Expr::Kind::kColRef:
      return VExprPtr(new ColNode(e->col));
    case Expr::Kind::kConst:
      return VExprPtr(new ConstNode(e->constant));
    case Expr::Kind::kCall:
      break;
  }
  auto bin = [&](BinOp op) -> Result<VExprPtr> {
    VExprPtr l, r;
    X100_ASSIGN_OR_RETURN(l, CompileScalar(e->args[0]));
    X100_ASSIGN_OR_RETURN(r, CompileScalar(e->args[1]));
    // Comparison nodes need the operand type, arithmetic the result type.
    const TypeId t =
        op >= BinOp::kEq ? e->args[0]->type : e->type;
    return VExprPtr(new BinNode(op, t, std::move(l), std::move(r)));
  };
  const std::string& fn = e->fn;
  if (fn == "add") return bin(BinOp::kAdd);
  if (fn == "sub") return bin(BinOp::kSub);
  if (fn == "mul") return bin(BinOp::kMul);
  if (fn == "div") return bin(BinOp::kDiv);
  if (fn == "mod") return bin(BinOp::kMod);
  if (fn == "eq") return bin(BinOp::kEq);
  if (fn == "ne") return bin(BinOp::kNe);
  if (fn == "lt") return bin(BinOp::kLt);
  if (fn == "le") return bin(BinOp::kLe);
  if (fn == "gt") return bin(BinOp::kGt);
  if (fn == "ge") return bin(BinOp::kGe);
  if (fn == "and" || fn == "or" || fn == "not") {
    VExprPtr l, r;
    X100_ASSIGN_OR_RETURN(l, CompileScalar(e->args[0]));
    if (fn != "not") {
      X100_ASSIGN_OR_RETURN(r, CompileScalar(e->args[1]));
    }
    const LogicalNode::Kind k = fn == "and"  ? LogicalNode::Kind::kAnd
                                : fn == "or" ? LogicalNode::Kind::kOr
                                             : LogicalNode::Kind::kNot;
    return VExprPtr(new LogicalNode(k, std::move(l), std::move(r)));
  }
  if (fn.rfind("cast_", 0) == 0) {
    VExprPtr in;
    X100_ASSIGN_OR_RETURN(in, CompileScalar(e->args[0]));
    return VExprPtr(new CastNode(e->type, std::move(in)));
  }
  if (fn == "year" || fn == "month" || fn == "day") {
    VExprPtr in;
    X100_ASSIGN_OR_RETURN(in, CompileScalar(e->args[0]));
    return VExprPtr(new DateFnNode(fn, std::move(in)));
  }
  return Status::NotImplemented("volcano scalar fn: " + fn);
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

Status VSelect::Open() {
  X100_RETURN_IF_ERROR(child_->Open());
  ExprPtr bound;
  X100_ASSIGN_OR_RETURN(bound, BindExpr(predicate_, child_->output_schema()));
  X100_ASSIGN_OR_RETURN(compiled_, CompileScalar(bound));
  return Status::OK();
}

Result<bool> VSelect::Next(Row* out) {
  while (true) {
    bool has;
    X100_ASSIGN_OR_RETURN(has, child_->Next(out));
    if (!has) return false;
    Value v;
    X100_ASSIGN_OR_RETURN(v, compiled_->Eval(*out));
    if (!v.is_null() && v.AsBool()) return true;
  }
}

Status VProject::Open() {
  X100_RETURN_IF_ERROR(child_->Open());
  schema_ = Schema();
  compiled_.clear();
  for (const VProjectItem& item : items_) {
    ExprPtr bound;
    X100_ASSIGN_OR_RETURN(bound, BindExpr(item.expr,
                                          child_->output_schema()));
    schema_.AddField(Field(item.name, bound->type, bound->nullable));
    VExprPtr c;
    X100_ASSIGN_OR_RETURN(c, CompileScalar(bound));
    compiled_.push_back(std::move(c));
  }
  return Status::OK();
}

Result<bool> VProject::Next(Row* out) {
  bool has;
  X100_ASSIGN_OR_RETURN(has, child_->Next(&input_));
  if (!has) return false;
  out->clear();
  out->reserve(compiled_.size());
  for (const VExprPtr& c : compiled_) {
    Value v;
    X100_ASSIGN_OR_RETURN(v, c->Eval(input_));
    out->push_back(std::move(v));
  }
  return true;
}

namespace {
/// Canonical byte key for hash maps over Values.
std::string KeyOf(const Row& row, const std::vector<int>& cols) {
  std::string key;
  for (int c : cols) {
    const Value& v = row[c];
    if (v.is_null()) {
      key += "\x01N";
      continue;
    }
    switch (v.type()) {
      case TypeId::kF64: {
        const double d = v.AsF64();
        key.append(reinterpret_cast<const char*>(&d), sizeof(d));
        break;
      }
      case TypeId::kStr:
        key += v.AsStr();
        break;
      default: {
        const int64_t i = v.AsI64();
        key.append(reinterpret_cast<const char*>(&i), sizeof(i));
        break;
      }
    }
    key += '\x02';
  }
  return key;
}
}  // namespace

Status VHashAgg::Open() {
  X100_RETURN_IF_ERROR(child_->Open());
  schema_ = Schema();
  key_exprs_.clear();
  agg_exprs_.clear();
  for (const VProjectItem& g : group_items_) {
    ExprPtr bound;
    X100_ASSIGN_OR_RETURN(bound, BindExpr(g.expr, child_->output_schema()));
    schema_.AddField(Field(g.name, bound->type, bound->nullable));
    VExprPtr c;
    X100_ASSIGN_OR_RETURN(c, CompileScalar(bound));
    key_exprs_.push_back(std::move(c));
  }
  for (const VAggItem& a : agg_items_) {
    TypeId out = TypeId::kI64;
    if (a.input != nullptr) {
      ExprPtr bound;
      X100_ASSIGN_OR_RETURN(bound, BindExpr(a.input,
                                            child_->output_schema()));
      VExprPtr c;
      X100_ASSIGN_OR_RETURN(c, CompileScalar(bound));
      agg_exprs_.push_back(std::move(c));
      out = a.kind == AggKind::kAvg
                ? TypeId::kF64
                : (a.kind == AggKind::kSum && bound->type != TypeId::kF64
                       ? TypeId::kI64
                       : bound->type);
      if (a.kind == AggKind::kCount) out = TypeId::kI64;
    } else {
      agg_exprs_.push_back(nullptr);
    }
    schema_.AddField(Field(a.name, out, a.kind != AggKind::kCount));
  }
  consumed_ = false;
  emit_ = 0;
  groups_.clear();
  index_.clear();
  return Status::OK();
}

Status VHashAgg::Consume() {
  Row row;
  Row keys(key_exprs_.size());
  while (true) {
    bool has;
    X100_ASSIGN_OR_RETURN(has, child_->Next(&row));
    if (!has) break;
    for (size_t k = 0; k < key_exprs_.size(); k++) {
      Value v;
      X100_ASSIGN_OR_RETURN(v, key_exprs_[k]->Eval(row));
      keys[k] = std::move(v);
    }
    std::vector<int> all(keys.size());
    for (size_t k = 0; k < keys.size(); k++) all[k] = static_cast<int>(k);
    const std::string key = KeyOf(keys, all);
    auto [it, inserted] = index_.try_emplace(key, groups_.size());
    if (inserted) {
      GroupState gs;
      gs.keys = keys;
      gs.f64.assign(agg_items_.size(), 0);
      gs.i64.assign(agg_items_.size(), 0);
      gs.count.assign(agg_items_.size(), 0);
      groups_.push_back(std::move(gs));
    }
    GroupState& gs = groups_[it->second];
    for (size_t a = 0; a < agg_items_.size(); a++) {
      const VAggItem& item = agg_items_[a];
      if (item.input == nullptr) {
        gs.count[a]++;
        continue;
      }
      Value v;
      X100_ASSIGN_OR_RETURN(v, agg_exprs_[a]->Eval(row));
      if (v.is_null()) continue;
      switch (item.kind) {
        case AggKind::kCount:
          break;
        case AggKind::kSum:
        case AggKind::kAvg:
          gs.f64[a] += v.AsF64();
          if (v.type() != TypeId::kF64) gs.i64[a] += v.AsI64();
          break;
        case AggKind::kMin:
          if (gs.count[a] == 0 || v.AsF64() < gs.f64[a]) {
            gs.f64[a] = v.AsF64();
            gs.i64[a] = v.type() == TypeId::kF64 ? 0 : v.AsI64();
          }
          break;
        case AggKind::kMax:
          if (gs.count[a] == 0 || v.AsF64() > gs.f64[a]) {
            gs.f64[a] = v.AsF64();
            gs.i64[a] = v.type() == TypeId::kF64 ? 0 : v.AsI64();
          }
          break;
      }
      gs.count[a]++;
    }
  }
  // Global aggregate over empty input: one group.
  if (group_items_.empty() && groups_.empty()) {
    GroupState gs;
    gs.f64.assign(agg_items_.size(), 0);
    gs.i64.assign(agg_items_.size(), 0);
    gs.count.assign(agg_items_.size(), 0);
    groups_.push_back(std::move(gs));
  }
  consumed_ = true;
  return Status::OK();
}

Result<bool> VHashAgg::Next(Row* out) {
  if (!consumed_) X100_RETURN_IF_ERROR(Consume());
  if (emit_ >= groups_.size()) return false;
  const GroupState& gs = groups_[emit_++];
  *out = gs.keys;
  for (size_t a = 0; a < agg_items_.size(); a++) {
    const VAggItem& item = agg_items_[a];
    const TypeId out_t =
        schema_.field(static_cast<int>(group_items_.size() + a)).type;
    if (item.kind == AggKind::kCount) {
      out->push_back(Value::I64(gs.count[a]));
      continue;
    }
    if (gs.count[a] == 0) {
      out->push_back(Value::Null(out_t));
      continue;
    }
    switch (item.kind) {
      case AggKind::kSum:
        out->push_back(out_t == TypeId::kF64 ? Value::F64(gs.f64[a])
                                             : Value::I64(gs.i64[a]));
        break;
      case AggKind::kAvg:
        out->push_back(
            Value::F64(gs.f64[a] / static_cast<double>(gs.count[a])));
        break;
      case AggKind::kMin:
      case AggKind::kMax:
        if (out_t == TypeId::kF64) {
          out->push_back(Value::F64(gs.f64[a]));
        } else if (out_t == TypeId::kDate) {
          out->push_back(Value::Date(static_cast<int32_t>(gs.i64[a])));
        } else if (out_t == TypeId::kI32) {
          out->push_back(Value::I32(static_cast<int32_t>(gs.i64[a])));
        } else {
          out->push_back(Value::I64(gs.i64[a]));
        }
        break;
      case AggKind::kCount:
        break;
    }
  }
  return true;
}

Status VHashJoin::Open() {
  X100_RETURN_IF_ERROR(build_->Open());
  X100_RETURN_IF_ERROR(probe_->Open());
  schema_ = Schema();
  for (const Field& f : probe_->output_schema().fields()) {
    schema_.AddField(f);
  }
  for (const Field& f : build_->output_schema().fields()) {
    schema_.AddField(f);
  }
  Row row;
  while (true) {
    bool has;
    X100_ASSIGN_OR_RETURN(has, build_->Next(&row));
    if (!has) break;
    bool null_key = false;
    for (int c : build_keys_) null_key |= row[c].is_null();
    if (null_key) continue;
    table_.emplace(KeyOf(row, build_keys_), row);
  }
  probing_ = false;
  return Status::OK();
}

Result<bool> VHashJoin::Next(Row* out) {
  while (true) {
    if (!probing_) {
      bool has;
      X100_ASSIGN_OR_RETURN(has, probe_->Next(&probe_row_));
      if (!has) return false;
      bool null_key = false;
      for (int c : probe_keys_) null_key |= probe_row_[c].is_null();
      if (null_key) continue;
      range_ = table_.equal_range(KeyOf(probe_row_, probe_keys_));
      probing_ = true;
    }
    if (range_.first == range_.second) {
      probing_ = false;
      continue;
    }
    *out = probe_row_;
    for (const Value& v : range_.first->second) out->push_back(v);
    ++range_.first;
    return true;
  }
}

Status VSort::Open() {
  X100_RETURN_IF_ERROR(child_->Open());
  rows_.clear();
  emit_ = 0;
  Row row;
  while (true) {
    bool has;
    X100_ASSIGN_OR_RETURN(has, child_->Next(&row));
    if (!has) break;
    rows_.push_back(row);
  }
  auto cmp = [&](const Row& a, const Row& b) {
    for (const Key& k : keys_) {
      const Value& x = a[k.col];
      const Value& y = b[k.col];
      int c = 0;
      if (x.is_null() || y.is_null()) {
        c = x.is_null() == y.is_null() ? 0 : (x.is_null() ? 1 : -1);
      } else if (x.type() == TypeId::kStr) {
        c = x.AsStr().compare(y.AsStr());
      } else {
        const double dx = x.AsF64(), dy = y.AsF64();
        c = dx < dy ? -1 : dx > dy ? 1 : 0;
      }
      if (!k.ascending) c = -c;
      if (c != 0) return c < 0;
    }
    return false;
  };
  if (limit_ >= 0 && limit_ < static_cast<int64_t>(rows_.size())) {
    std::partial_sort(rows_.begin(), rows_.begin() + limit_, rows_.end(),
                      cmp);
    rows_.resize(limit_);
  } else {
    std::stable_sort(rows_.begin(), rows_.end(), cmp);
  }
  return Status::OK();
}

Result<bool> VSort::Next(Row* out) {
  if (emit_ >= rows_.size()) return false;
  *out = rows_[emit_++];
  return true;
}

Result<std::vector<Row>> Collect(VOperator* op) {
  X100_RETURN_IF_ERROR(op->Open());
  std::vector<Row> out;
  Row row;
  while (true) {
    auto has = op->Next(&row);
    if (!has.ok()) {
      op->Close();
      return has.status();
    }
    if (!*has) break;
    out.push_back(row);
  }
  op->Close();
  return out;
}

}  // namespace volcano
}  // namespace x100
