// X100 algebra: the plan language the cross compiler targets and the
// rewriter transforms (Figure 1: "Vectorwise Rewriter" sits between the
// cross compiler and vectorized execution).
#ifndef X100_ALGEBRA_ALGEBRA_H_
#define X100_ALGEBRA_ALGEBRA_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/select_project.h"

namespace x100 {

struct AlgebraNode;
using AlgebraPtr = std::shared_ptr<AlgebraNode>;

/// One node of an X100 algebra plan. Column references are by name; the
/// plan builder (engine/query_executor) resolves them bottom-up.
struct AlgebraNode {
  enum class Kind : uint8_t {
    kScan,     // table: name, optional column subset (empty = all)
    kSelect,   // predicate
    kProject,  // items
    kAggr,     // group_by + aggs
    kJoin,     // children[0] = build/right, children[1] = probe/left
    kOrder,    // order_keys (+ optional limit)
    kXchg,     // parallel union of `parallelism` clones of children[0]
  };

  Kind kind;
  std::vector<AlgebraPtr> children;

  // kScan
  std::string table;
  std::vector<std::string> scan_columns;  // empty = all columns
  /// Morsel-driven parallel scan (set by the Parallelizer rule): all scan
  /// clones carrying the same non-negative id share one MorselSource at
  /// plan-build time and pull block groups dynamically. -1 = plain scan.
  int morsel_group = -1;

  // kSelect
  ExprPtr predicate;

  // kProject
  std::vector<ProjectItem> items;

  // kAggr
  std::vector<ProjectItem> group_by;
  std::vector<AggItem> aggs;

  // kJoin — keys by column name on each side.
  JoinType join_type = JoinType::kInner;
  std::vector<std::string> build_keys;
  std::vector<std::string> probe_keys;
  /// Set by the AntiJoinNullRule: the NOT IN key may produce NULLs.
  bool null_aware_candidate = false;

  // kOrder
  struct OrderKey {
    std::string column;
    bool ascending = true;
  };
  std::vector<OrderKey> order_keys;
  int64_t limit = -1;

  // kXchg
  int parallelism = 1;

  std::string ToString(int indent = 0) const;
};

AlgebraPtr ScanNode(std::string table, std::vector<std::string> cols = {});
AlgebraPtr SelectNode(AlgebraPtr child, ExprPtr pred);
AlgebraPtr ProjectNode(AlgebraPtr child, std::vector<ProjectItem> items);
AlgebraPtr AggrNode(AlgebraPtr child, std::vector<ProjectItem> group_by,
                    std::vector<AggItem> aggs);
AlgebraPtr JoinNode(AlgebraPtr build, AlgebraPtr probe, JoinType type,
                    std::vector<std::string> build_keys,
                    std::vector<std::string> probe_keys);
AlgebraPtr OrderNode(AlgebraPtr child,
                     std::vector<AlgebraNode::OrderKey> keys,
                     int64_t limit = -1);

/// Deep copy (the parallelizer clones subtrees per worker).
AlgebraPtr CloneAlgebra(const AlgebraPtr& node);

}  // namespace x100

#endif  // X100_ALGEBRA_ALGEBRA_H_
