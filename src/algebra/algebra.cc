#include "algebra/algebra.h"

namespace x100 {

AlgebraPtr ScanNode(std::string table, std::vector<std::string> cols) {
  auto n = std::make_shared<AlgebraNode>();
  n->kind = AlgebraNode::Kind::kScan;
  n->table = std::move(table);
  n->scan_columns = std::move(cols);
  return n;
}

AlgebraPtr SelectNode(AlgebraPtr child, ExprPtr pred) {
  auto n = std::make_shared<AlgebraNode>();
  n->kind = AlgebraNode::Kind::kSelect;
  n->children = {std::move(child)};
  n->predicate = std::move(pred);
  return n;
}

AlgebraPtr ProjectNode(AlgebraPtr child, std::vector<ProjectItem> items) {
  auto n = std::make_shared<AlgebraNode>();
  n->kind = AlgebraNode::Kind::kProject;
  n->children = {std::move(child)};
  n->items = std::move(items);
  return n;
}

AlgebraPtr AggrNode(AlgebraPtr child, std::vector<ProjectItem> group_by,
                    std::vector<AggItem> aggs) {
  auto n = std::make_shared<AlgebraNode>();
  n->kind = AlgebraNode::Kind::kAggr;
  n->children = {std::move(child)};
  n->group_by = std::move(group_by);
  n->aggs = std::move(aggs);
  return n;
}

AlgebraPtr JoinNode(AlgebraPtr build, AlgebraPtr probe, JoinType type,
                    std::vector<std::string> build_keys,
                    std::vector<std::string> probe_keys) {
  auto n = std::make_shared<AlgebraNode>();
  n->kind = AlgebraNode::Kind::kJoin;
  n->children = {std::move(build), std::move(probe)};
  n->join_type = type;
  n->build_keys = std::move(build_keys);
  n->probe_keys = std::move(probe_keys);
  return n;
}

AlgebraPtr OrderNode(AlgebraPtr child,
                     std::vector<AlgebraNode::OrderKey> keys, int64_t limit) {
  auto n = std::make_shared<AlgebraNode>();
  n->kind = AlgebraNode::Kind::kOrder;
  n->children = {std::move(child)};
  n->order_keys = std::move(keys);
  n->limit = limit;
  return n;
}

AlgebraPtr CloneAlgebra(const AlgebraPtr& node) {
  auto copy = std::make_shared<AlgebraNode>(*node);
  for (auto& c : copy->children) c = CloneAlgebra(c);
  if (copy->predicate) copy->predicate = CloneExpr(copy->predicate);
  for (auto& item : copy->items) item.expr = CloneExpr(item.expr);
  for (auto& item : copy->group_by) item.expr = CloneExpr(item.expr);
  for (auto& agg : copy->aggs) {
    if (agg.input) agg.input = CloneExpr(agg.input);
  }
  return copy;
}

std::string AlgebraNode::ToString(int indent) const {
  std::string pad(indent * 2, ' ');
  std::string s = pad;
  switch (kind) {
    case Kind::kScan:
      s += "Scan(" + table +
           (morsel_group >= 0 ? ", morsel#" + std::to_string(morsel_group)
                              : "") +
           ")";
      break;
    case Kind::kSelect:
      s += "Select(" + predicate->ToString() + ")";
      break;
    case Kind::kProject: {
      s += "Project(";
      for (size_t i = 0; i < items.size(); i++) {
        if (i) s += ", ";
        s += items[i].name + "=" + items[i].expr->ToString();
      }
      s += ")";
      break;
    }
    case Kind::kAggr: {
      s += "Aggr(keys=[";
      for (size_t i = 0; i < group_by.size(); i++) {
        if (i) s += ", ";
        s += group_by[i].name;
      }
      s += "], aggs=[";
      for (size_t i = 0; i < aggs.size(); i++) {
        if (i) s += ", ";
        s += std::string(AggKindName(aggs[i].kind)) + ":" + aggs[i].name;
      }
      s += "])";
      break;
    }
    case Kind::kJoin:
      s += std::string("Join[") + JoinTypeName(join_type) + "]";
      break;
    case Kind::kOrder:
      s += limit >= 0 ? "TopN(" + std::to_string(limit) + ")" : "Order";
      break;
    case Kind::kXchg:
      s += "Xchg(" + std::to_string(parallelism) + ")";
      break;
  }
  for (const AlgebraPtr& c : children) {
    s += "\n" + c->ToString(indent + 1);
  }
  return s;
}

}  // namespace x100
