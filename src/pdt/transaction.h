// Transactions over PDTs — paper §"Transactions": "Transactions in
// Vectorwise are based on Positional Delta Trees (PDT). Implementing full
// transactional support in a system with complex indexing structures and
// background update propagation was quite complicated."
//
// The layering follows [2]:
//  * read-PDT: committed deltas shared by all queries, applied on top of
//    the immutable base table image.
//  * write-PDT: one per transaction, stacked on a snapshot of the read-PDT.
//
// Isolation: snapshot isolation via clone-on-commit — commit produces a
// *new* read-PDT (the old one stays referenced by running snapshots), so
// readers never block. Write-write conflicts (two transactions deleting or
// modifying the same stable SID / the same inserted row) are detected at
// commit from a commit log and fail with kTxnConflict. This substitutes
// the paper's in-place latched PDT propagation with an equivalent but
// simpler persistent-structure scheme (see DESIGN.md §2).
//
// Checkpoint (the paper's "background update propagation" endpoint)
// rewrites the base image with all committed deltas applied, producing a
// fresh SID space and an empty read-PDT.
#ifndef X100_PDT_TRANSACTION_H_
#define X100_PDT_TRANSACTION_H_

#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "pdt/view.h"
#include "storage/table.h"

namespace x100 {

/// A table with differential update support: immutable base + read-PDT.
class UpdatableTable {
 public:
  explicit UpdatableTable(std::unique_ptr<Table> base)
      : base_(std::move(base)),
        read_pdt_(std::make_shared<Pdt>(base_->num_rows())) {}

  const Table* base() const {
    std::lock_guard<std::mutex> lock(mu_);
    return base_.get();
  }
  std::shared_ptr<const Pdt> read_pdt() const {
    std::lock_guard<std::mutex> lock(mu_);
    return read_pdt_;
  }
  uint64_t version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
  }

  /// Committed visible image (base + read-PDT), for queries outside any
  /// transaction.
  TableView View() const {
    std::lock_guard<std::mutex> lock(mu_);
    TableView v;
    v.base = base_.get();
    v.layers = {read_pdt_.get()};
    return v;
  }

  /// Keeps the read-PDT alive alongside the view (callers needing an
  /// owning snapshot).
  std::shared_ptr<const Pdt> SnapshotPdt() const { return read_pdt(); }

  int64_t visible_rows() const { return View().visible_rows(); }

 private:
  friend class TransactionManager;

  struct CommitRecord {
    uint64_t version;
    std::unordered_set<int64_t> stable_touched;
    std::unordered_set<uint64_t> iids_touched;
  };

  mutable std::mutex mu_;
  std::shared_ptr<Table> base_;
  std::shared_ptr<const Pdt> read_pdt_;
  uint64_t version_ = 0;
  std::vector<CommitRecord> commit_log_;
};

/// An open transaction: a write-PDT stacked on a read-PDT snapshot.
/// RID arguments address the *transaction-visible* image.
class Transaction {
 public:
  /// Inserts `row` so it becomes visible at position `rid`.
  Status Insert(int64_t rid, std::vector<Value> row);
  /// Appends at the end of the visible image.
  Status Append(std::vector<Value> row) {
    return Insert(View().visible_rows(), std::move(row));
  }
  Status Delete(int64_t rid);
  Status Update(int64_t rid, int col, Value v);

  /// The transaction's visible image (snapshot + write-PDT).
  TableView View() const {
    TableView v;
    v.base = base_;
    v.layers = {snapshot_.get(), write_.get()};
    return v;
  }

  int64_t visible_rows() const { return View().visible_rows(); }
  const Pdt* write_pdt() const { return write_.get(); }
  bool active() const { return active_; }

 private:
  friend class TransactionManager;
  Transaction() = default;

  UpdatableTable* table_ = nullptr;
  const Table* base_ = nullptr;
  std::shared_ptr<const Pdt> snapshot_;
  std::unique_ptr<Pdt> write_;
  uint64_t base_version_ = 0;
  bool active_ = true;
  std::unordered_set<int64_t> stable_touched_;
  std::unordered_set<uint64_t> iids_touched_;
};

class TransactionManager {
 public:
  std::unique_ptr<Transaction> Begin(UpdatableTable* table);

  /// Validates against commits since the snapshot, then propagates the
  /// write-PDT into a fresh read-PDT (clone-on-commit). kTxnConflict on
  /// write-write overlap; the transaction stays active for Abort.
  Status Commit(Transaction* txn);

  void Abort(Transaction* txn) { txn->active_ = false; }

  /// Rewrites the base image with all committed deltas applied; read-PDT
  /// becomes empty over the new SID space. Fails if any transaction is
  /// expected to survive re-anchoring (callers must quiesce first).
  ///
  /// Blocks of rewritten (dirty) groups are dropped from the buffer cache
  /// here, but their device slots must not be recycled while a durable
  /// catalog still references them — a crash before the new block map is
  /// persisted would leave that catalog pointing at freed (possibly
  /// rewritten) slots. Callers that persist a catalog pass `retired_out`
  /// and free the listed blocks only after the save succeeds
  /// (Database::Checkpoint). With a null `retired_out` — no durable
  /// catalog to protect — the blocks are freed before returning.
  Status Checkpoint(UpdatableTable* table, BufferManager* buffers,
                    std::vector<BlockId>* retired_out = nullptr);
};

}  // namespace x100

#endif  // X100_PDT_TRANSACTION_H_
