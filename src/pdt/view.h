// TableView: a stable table image plus a stack of PDT layers
// (read-PDT below, transaction write-PDT above) — the unit scans run
// against. Provides the positional merge walk used by ScanOp, Checkpoint
// and the E5 benchmark.
#ifndef X100_PDT_VIEW_H_
#define X100_PDT_VIEW_H_

#include <functional>
#include <vector>

#include "common/value.h"
#include "pdt/pdt.h"
#include "storage/table.h"

namespace x100 {

/// One visible slot produced by the merge walk.
struct VisibleSlot {
  bool is_insert = false;
  /// Stable rows: the SID. Inserts: the anchor SID.
  int64_t sid = 0;
  /// Inserts only: the row (already known to survive upper-layer deletes).
  const InsertedRow* row = nullptr;
  /// Effective column overrides, bottom-to-top (upper layers win). For
  /// clean stable rows this is empty (those come via on_clean_run instead).
  std::vector<std::pair<int, const Value*>> mods;
};

struct TableView {
  const Table* base = nullptr;
  /// Bottom (committed read-PDT) to top (transaction write-PDT). May be
  /// empty: a plain immutable table.
  std::vector<const Pdt*> layers;

  int64_t base_rows() const {
    if (!layers.empty()) return layers.front()->base_rows();
    return base ? base->num_rows() : 0;
  }

  int64_t visible_rows() const;

  /// Positional merge over SIDs in [lo_sid, hi_sid):
  ///  * on_clean_run(a, b): stable rows [a, b) with no deltas — the caller
  ///    can bulk-copy them (this is the PDT fast path).
  ///  * on_slot(slot): an inserted row, or a stable row with mods.
  /// `include_tail` additionally walks inserts anchored at hi_sid (used
  /// when hi_sid == base_rows to cover appends).
  void ForEachVisible(
      int64_t lo_sid, int64_t hi_sid, bool include_tail,
      const std::function<void(int64_t, int64_t)>& on_clean_run,
      const std::function<void(const VisibleSlot&)>& on_slot) const;

  /// Materializes the visible row at stacked-image position `rid` as
  /// Values read through `reader` (nullptr reader allowed when base has no
  /// rows). O(deltas) — used by transactions and tests, not by scans.
  Result<std::vector<Value>> ReadRow(int64_t rid, TableReader* reader) const;

  /// Stacked locate: which layer/row is at `rid`?
  struct StackLocator {
    int layer = -1;  // -1 = stable row; otherwise index into `layers`
    Pdt::Locator loc;
  };
  Result<StackLocator> Locate(int64_t rid) const;
};

/// Reads one stable row of `base` as Values (checkpoint / ReadRow helper).
Result<std::vector<Value>> ReadStableRow(const Table* base,
                                         TableReader* reader, int64_t sid,
                                         const std::vector<std::pair<
                                             int, const Value*>>& mods);

}  // namespace x100

#endif  // X100_PDT_VIEW_H_
