// Fenwick (binary indexed) tree over the stable-SID space: O(log n) prefix
// counts of inserts/deletes, which give the SID<->RID arithmetic of the
// Positional Delta Tree.
#ifndef X100_PDT_FENWICK_H_
#define X100_PDT_FENWICK_H_

#include <cstdint>
#include <vector>

namespace x100 {

class Fenwick {
 public:
  explicit Fenwick(int64_t n) : n_(n), tree_(n + 1, 0) {}

  /// Adds `delta` at position i (0-based, i < n).
  void Add(int64_t i, int64_t delta) {
    for (int64_t x = i + 1; x <= n_; x += x & -x) tree_[x] += delta;
  }

  /// Sum of positions [0, i] (i may be -1 -> 0).
  int64_t Prefix(int64_t i) const {
    if (i < 0) return 0;
    if (i >= n_) i = n_ - 1;
    int64_t s = 0;
    for (int64_t x = i + 1; x > 0; x -= x & -x) s += tree_[x];
    return s;
  }

  int64_t Total() const { return Prefix(n_ - 1); }
  int64_t size() const { return n_; }

 private:
  int64_t n_;
  std::vector<int64_t> tree_;
};

}  // namespace x100

#endif  // X100_PDT_FENWICK_H_
