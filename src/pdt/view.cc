#include "pdt/view.h"

#include <algorithm>
#include <set>

namespace x100 {

int64_t TableView::visible_rows() const {
  int64_t rows = base_rows();
  for (const Pdt* layer : layers) {
    rows += layer->visible_rows() - layer->base_rows();
    rows -= static_cast<int64_t>(layer->deleted_lower_iids().size());
  }
  return rows;
}

namespace {

/// Sorted union of delta SIDs of all layers within [lo, hi].
std::vector<int64_t> DeltaSids(const std::vector<const Pdt*>& layers,
                               int64_t lo, int64_t hi_inclusive) {
  std::set<int64_t> sids;
  for (const Pdt* layer : layers) {
    layer->ForEachDelta(lo, hi_inclusive + 1,
                        [&](int64_t sid, const PdtDelta&) {
                          sids.insert(sid);
                        });
  }
  return std::vector<int64_t>(sids.begin(), sids.end());
}

}  // namespace

void TableView::ForEachVisible(
    int64_t lo_sid, int64_t hi_sid, bool include_tail,
    const std::function<void(int64_t, int64_t)>& on_clean_run,
    const std::function<void(const VisibleSlot&)>& on_slot) const {
  const int64_t delta_hi = include_tail ? hi_sid : hi_sid - 1;
  const std::vector<int64_t> sids = DeltaSids(layers, lo_sid, delta_hi);
  const int L = static_cast<int>(layers.size());

  int64_t run_start = lo_sid;
  auto flush_run = [&](int64_t end) {
    if (run_start < end) on_clean_run(run_start, end);
  };

  for (int64_t sid : sids) {
    flush_run(std::min(sid, hi_sid));
    // Merge the anchor's inserts across layers: each layer's list order is
    // kept; a row with a before_iid constraint splices in ahead of its
    // target (typically a lower-layer insert it was positioned before).
    std::vector<std::pair<const InsertedRow*, int>> merged;
    for (int l = 0; l < L; l++) {
      const PdtDelta* d = layers[l]->FindDelta(sid);
      if (d == nullptr) continue;
      for (const InsertedRow& row : d->inserts) {
        size_t pos = merged.size();
        if (row.before_iid != 0) {
          for (size_t k = 0; k < merged.size(); k++) {
            if (merged[k].first->iid == row.before_iid) {
              pos = k;
              break;
            }
          }
        }
        merged.insert(merged.begin() + pos, {&row, l});
      }
    }
    // Emit: an insert from layer l survives unless a layer above deleted
    // its iid; mods from layers above are attached.
    for (const auto& [row, l] : merged) {
      bool deleted = false;
      VisibleSlot slot;
      slot.is_insert = true;
      slot.sid = sid;
      slot.row = row;
      for (int u = l + 1; u < L && !deleted; u++) {
        if (layers[u]->IsLowerInsertDeleted(row->iid)) deleted = true;
        const auto* mods = layers[u]->LowerInsertMods(row->iid);
        if (mods != nullptr) {
          for (const auto& [col, v] : *mods) slot.mods.emplace_back(col, &v);
        }
      }
      if (!deleted) on_slot(slot);
    }
    // The stable row at `sid` (absent for the tail anchor).
    if (sid < hi_sid) {
      bool deleted = false;
      VisibleSlot slot;
      slot.sid = sid;
      for (int l = 0; l < L; l++) {
        const PdtDelta* d = layers[l]->FindDelta(sid);
        if (d == nullptr) continue;
        if (d->del_stable) {
          deleted = true;
          break;
        }
        for (const auto& [col, v] : d->mods) slot.mods.emplace_back(col, &v);
      }
      if (!deleted) {
        if (slot.mods.empty()) {
          // Clean stable row at a delta anchor (inserts only): let it join
          // the following clean run.
          run_start = sid;
          continue;
        }
        on_slot(slot);
      }
      run_start = sid + 1;
    } else {
      run_start = hi_sid;
    }
  }
  flush_run(hi_sid);
}

Result<TableView::StackLocator> TableView::Locate(int64_t rid) const {
  if (rid < 0 || rid >= visible_rows()) {
    return Status::OutOfRange("rid " + std::to_string(rid) +
                              " outside stacked image");
  }
  const int64_t n = base_rows();
  StackLocator out;
  int64_t count = 0;
  bool found = false;
  // Single merge pass; clean runs are skipped in bulk.
  ForEachVisible(
      0, n, /*include_tail=*/true,
      [&](int64_t a, int64_t b) {
        if (found) return;
        if (rid < count + (b - a)) {
          out.layer = -1;
          out.loc.is_insert = false;
          out.loc.sid = a + (rid - count);
          found = true;
        }
        count += b - a;
      },
      [&](const VisibleSlot& slot) {
        if (found) return;
        if (count == rid) {
          if (slot.is_insert) {
            // Which layer owns this iid?
            for (int l = 0; l < static_cast<int>(layers.size()); l++) {
              const PdtDelta* d = layers[l]->FindDelta(slot.sid);
              if (d == nullptr) continue;
              for (int idx = 0; idx < static_cast<int>(d->inserts.size());
                   idx++) {
                if (d->inserts[idx].iid == slot.row->iid) {
                  out.layer = l;
                  out.loc.is_insert = true;
                  out.loc.sid = slot.sid;
                  out.loc.index = idx;
                  out.loc.iid = slot.row->iid;
                  found = true;
                  return;
                }
              }
            }
          } else {
            out.layer = -1;
            out.loc.is_insert = false;
            out.loc.sid = slot.sid;
            found = true;
          }
        }
        count++;
      });
  if (!found) return Status::Internal("stacked locate failed");
  return out;
}

Result<std::vector<Value>> ReadStableRow(
    const Table* base, TableReader* reader, int64_t sid,
    const std::vector<std::pair<int, const Value*>>& mods) {
  if (base == nullptr || reader == nullptr) {
    return Status::InvalidArgument("stable row read requires a base table");
  }
  // Locate the group containing `sid`.
  int g = -1;
  for (int i = 0; i < base->num_groups(); i++) {
    const GroupMeta& gm = base->group(i);
    if (sid >= gm.first_sid && sid < gm.first_sid + gm.rows) {
      g = i;
      break;
    }
  }
  if (g < 0) return Status::OutOfRange("sid outside table");
  const GroupMeta& gm = base->group(g);
  const int off = static_cast<int>(sid - gm.first_sid);
  const Schema& schema = base->schema();
  std::vector<Value> row(schema.num_fields());
  StringHeap heap;
  std::vector<uint8_t> buf;
  std::vector<uint8_t> nulls(gm.rows);
  for (int c = 0; c < schema.num_fields(); c++) {
    const Field& f = schema.field(c);
    buf.resize(static_cast<size_t>(gm.rows) * TypeWidth(f.type));
    X100_RETURN_IF_ERROR(
        reader->ReadColumn(g, c, buf.data(), nulls.data(), &heap));
    if (nulls[off]) {
      row[c] = Value::Null(f.type);
      continue;
    }
    switch (f.type) {
      case TypeId::kBool:
        row[c] = Value::Bool(reinterpret_cast<uint8_t*>(buf.data())[off]);
        break;
      case TypeId::kI8:
        row[c] = Value::I8(reinterpret_cast<int8_t*>(buf.data())[off]);
        break;
      case TypeId::kI16:
        row[c] = Value::I16(reinterpret_cast<int16_t*>(buf.data())[off]);
        break;
      case TypeId::kI32:
        row[c] = Value::I32(reinterpret_cast<int32_t*>(buf.data())[off]);
        break;
      case TypeId::kDate:
        row[c] = Value::Date(reinterpret_cast<int32_t*>(buf.data())[off]);
        break;
      case TypeId::kI64:
        row[c] = Value::I64(reinterpret_cast<int64_t*>(buf.data())[off]);
        break;
      case TypeId::kF64:
        row[c] = Value::F64(reinterpret_cast<double*>(buf.data())[off]);
        break;
      case TypeId::kStr:
        row[c] = Value::Str(
            reinterpret_cast<StrRef*>(buf.data())[off].ToString());
        break;
    }
  }
  for (const auto& [col, v] : mods) row[col] = *v;
  return row;
}

Result<std::vector<Value>> TableView::ReadRow(int64_t rid,
                                              TableReader* reader) const {
  StackLocator sl;
  X100_ASSIGN_OR_RETURN(sl, Locate(rid));
  if (sl.layer >= 0) {
    const PdtDelta* d = layers[sl.layer]->FindDelta(sl.loc.sid);
    if (d == nullptr) return Status::Internal("insert delta vanished");
    std::vector<Value> row = d->inserts[sl.loc.index].values;
    // Apply upper-layer mods.
    for (int u = sl.layer + 1; u < static_cast<int>(layers.size()); u++) {
      const auto* mods = layers[u]->LowerInsertMods(sl.loc.iid);
      if (mods != nullptr) {
        for (const auto& [col, v] : *mods) row[col] = v;
      }
    }
    return row;
  }
  // Stable: gather mods bottom-to-top.
  std::vector<std::pair<int, const Value*>> mods;
  for (const Pdt* layer : layers) {
    const PdtDelta* d = layer->FindDelta(sl.loc.sid);
    if (d != nullptr) {
      for (const auto& [col, v] : d->mods) mods.emplace_back(col, &v);
    }
  }
  return ReadStableRow(base, reader, sl.loc.sid, mods);
}

}  // namespace x100
