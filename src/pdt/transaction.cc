#include "pdt/transaction.h"

namespace x100 {

Status Transaction::Insert(int64_t rid, std::vector<Value> row) {
  if (!active_) return Status::InvalidArgument("transaction not active");
  const TableView view = View();
  if (rid == view.visible_rows()) {
    InsertedRow ins;
    ins.iid = Pdt::NextIid();
    ins.values = std::move(row);
    return write_->InsertAtSid(write_->base_rows(), std::move(ins));
  }
  TableView::StackLocator sl;
  X100_ASSIGN_OR_RETURN(sl, view.Locate(rid));
  InsertedRow ins;
  ins.iid = Pdt::NextIid();
  ins.values = std::move(row);
  // Anchor before the located slot, with the ordering constraint needed so
  // the merge walk (and commit replay) reproduce the exact sequence of
  // same-anchor inserts.
  int at_index = -1;
  if (sl.loc.is_insert) {
    if (sl.layer == 1) {
      // Before one of our own inserts: chain-resolve its constraint.
      const InsertedRow* target = write_->GetOwnInsert(sl.loc.iid);
      ins.before_iid = (target != nullptr && target->before_iid != 0)
                           ? target->before_iid
                           : sl.loc.iid;
      at_index = sl.loc.index;
    } else {
      // Before a committed (read-layer) insert: its iid is a stable target.
      ins.before_iid = sl.loc.iid;
    }
  }
  return write_->InsertAtSid(sl.loc.sid, std::move(ins), at_index);
}

Status Transaction::Delete(int64_t rid) {
  if (!active_) return Status::InvalidArgument("transaction not active");
  TableView::StackLocator sl;
  X100_ASSIGN_OR_RETURN(sl, View().Locate(rid));
  if (sl.layer == -1) {
    X100_RETURN_IF_ERROR(write_->DeleteStable(sl.loc.sid));
    stable_touched_.insert(sl.loc.sid);
    return Status::OK();
  }
  if (sl.layer == 1) return write_->DeleteOwnInsert(sl.loc.iid);
  // Deleting a row inserted by a *committed* transaction (read-PDT layer).
  write_->DeleteLowerInsert(sl.loc.iid);
  iids_touched_.insert(sl.loc.iid);
  return Status::OK();
}

Status Transaction::Update(int64_t rid, int col, Value v) {
  if (!active_) return Status::InvalidArgument("transaction not active");
  TableView::StackLocator sl;
  X100_ASSIGN_OR_RETURN(sl, View().Locate(rid));
  if (sl.layer == -1) {
    X100_RETURN_IF_ERROR(write_->ModifyStable(sl.loc.sid, col, std::move(v)));
    stable_touched_.insert(sl.loc.sid);
    return Status::OK();
  }
  if (sl.layer == 1) {
    return write_->ModifyOwnInsert(sl.loc.iid, col, std::move(v));
  }
  write_->ModifyLowerInsert(sl.loc.iid, col, std::move(v));
  iids_touched_.insert(sl.loc.iid);
  return Status::OK();
}

std::unique_ptr<Transaction> TransactionManager::Begin(
    UpdatableTable* table) {
  std::unique_ptr<Transaction> txn(new Transaction());
  txn->table_ = table;
  {
    std::lock_guard<std::mutex> lock(table->mu_);
    txn->base_ = table->base_.get();
    txn->snapshot_ = table->read_pdt_;
    txn->base_version_ = table->version_;
  }
  txn->write_ = std::make_unique<Pdt>(txn->snapshot_->base_rows());
  return txn;
}

Status TransactionManager::Commit(Transaction* txn) {
  if (!txn->active_) return Status::InvalidArgument("transaction not active");
  UpdatableTable* table = txn->table_;
  std::lock_guard<std::mutex> lock(table->mu_);
  if (table->base_.get() != txn->base_) {
    return Status::TxnConflict("base image rewritten by checkpoint");
  }
  // Write-write conflict detection against commits since our snapshot.
  for (const auto& rec : table->commit_log_) {
    if (rec.version <= txn->base_version_) continue;
    for (int64_t sid : txn->stable_touched_) {
      if (rec.stable_touched.count(sid)) {
        return Status::TxnConflict("stable row " + std::to_string(sid) +
                                   " modified concurrently");
      }
    }
    for (uint64_t iid : txn->iids_touched_) {
      if (rec.iids_touched.count(iid)) {
        return Status::TxnConflict("inserted row modified concurrently");
      }
    }
  }
  // Propagate: clone the committed read-PDT, replay the write-PDT onto it.
  std::unique_ptr<Pdt> next = table->read_pdt_->Clone();
  const Pdt* w = txn->write_.get();
  Status replay = Status::OK();
  w->ForEachDelta(0, w->base_rows() + 1, [&](int64_t sid,
                                             const PdtDelta& d) {
    if (!replay.ok()) return;
    for (const InsertedRow& row : d.inserts) {
      replay = next->InsertAtSid(sid, row);
      if (!replay.ok()) return;
    }
    if (d.del_stable) {
      replay = next->DeleteStable(sid);
      if (!replay.ok()) return;
    }
    for (const auto& [col, v] : d.mods) {
      replay = next->ModifyStable(sid, col, v);
      if (!replay.ok()) return;
    }
  });
  X100_RETURN_IF_ERROR(replay);
  // Cross-layer edits target inserts owned by the (cloned) read-PDT.
  for (uint64_t iid : w->deleted_lower_iids()) {
    X100_RETURN_IF_ERROR(next->DeleteOwnInsert(iid));
  }
  for (const auto& [iid, mods] : w->lower_iid_mods()) {
    for (const auto& [col, v] : mods) {
      X100_RETURN_IF_ERROR(next->ModifyOwnInsert(iid, col, v));
    }
  }
  table->read_pdt_ = std::move(next);
  table->version_++;
  UpdatableTable::CommitRecord rec;
  rec.version = table->version_;
  rec.stable_touched = std::move(txn->stable_touched_);
  rec.iids_touched = std::move(txn->iids_touched_);
  table->commit_log_.push_back(std::move(rec));
  txn->active_ = false;
  return Status::OK();
}

Status TransactionManager::Checkpoint(UpdatableTable* table,
                                      BufferManager* buffers,
                                      std::vector<BlockId>* retired_out) {
  // Snapshot the current committed image.
  std::shared_ptr<Table> base;
  std::shared_ptr<const Pdt> pdt;
  {
    std::lock_guard<std::mutex> lock(table->mu_);
    base = table->base_;
    pdt = table->read_pdt_;
  }
  TableView view;
  view.base = base.get();
  view.layers = {pdt.get()};
  TableReader reader(base.get(), buffers);

  // Partial rewrite: only block groups with deltas are re-emitted; clean
  // groups are adopted verbatim (their blocks stay on the device and
  // their MinMax metadata is reused). On a mostly-clean table this is
  // the paper's "background update propagation" cost model — checkpoint
  // IO proportional to the touched fraction, not the table size.
  TableBuilder builder(base->name(), base->schema(), base->layout(),
                       base->device());
  Status status = Status::OK();
  auto emit_stable_range = [&](int64_t a, int64_t b) {
    for (int64_t sid = a; sid < b && status.ok(); sid++) {
      auto row = ReadStableRow(base.get(), &reader, sid, {});
      if (!row.ok()) {
        status = row.status();
        return;
      }
      status = builder.AppendRow(*row);
    }
  };
  auto on_clean_run = [&](int64_t a, int64_t b) {
    if (status.ok()) emit_stable_range(a, b);
  };
  auto on_slot = [&](const VisibleSlot& slot) {
    if (!status.ok()) return;
    if (slot.is_insert) {
      std::vector<Value> row = slot.row->values;
      for (const auto& [col, v] : slot.mods) row[col] = *v;
      status = builder.AppendRow(row);
    } else {
      auto row = ReadStableRow(base.get(), &reader, slot.sid, slot.mods);
      if (!row.ok()) {
        status = row.status();
        return;
      }
      status = builder.AppendRow(*row);
    }
  };

  std::vector<BlockId> retired;  // blocks of rewritten (dirty) groups
  const int ngroups = base->num_groups();
  for (int g = 0; g < ngroups && status.ok(); g++) {
    const GroupMeta& gm = base->group(g);
    const int64_t lo = gm.first_sid;
    const int64_t hi = gm.first_sid + gm.rows;
    const bool last = g == ngroups - 1;
    // Dirty test mirrors ScanOp::GroupCanMatch: any delta anchored in the
    // group's SID range (the last group also owns tail appends at
    // sid == num_rows).
    bool dirty = false;
    pdt->ForEachDelta(lo, last ? hi + 1 : hi,
                      [&](int64_t, const PdtDelta&) { dirty = true; });
    if (!dirty) {
      status = builder.AppendStoredGroup(gm);
      continue;
    }
    Table::AppendGroupBlockIds(gm, &retired);
    view.ForEachVisible(lo, hi, /*include_tail=*/last, on_clean_run,
                        on_slot);
    // Close the rewritten group at the original boundary so neighbouring
    // clean groups keep alignment with their stored SID ranges.
    if (status.ok()) status = builder.Flush();
  }
  if (status.ok() && ngroups == 0) {
    // Empty base image: the whole table is tail inserts.
    view.ForEachVisible(0, 0, /*include_tail=*/true, on_clean_run, on_slot);
    if (status.ok()) status = builder.Flush();
  }
  // On failure the builder's dtor frees every block it wrote.
  X100_RETURN_IF_ERROR(status);
  const std::vector<BlockId> fresh = builder.blocks_written();
  auto rebuilt = builder.Finish();
  X100_RETURN_IF_ERROR(rebuilt.status());

  std::lock_guard<std::mutex> lock(table->mu_);
  if (table->base_ != base || table->read_pdt_ != pdt) {
    // The new image loses the race: reclaim the blocks it wrote (Finish
    // disarmed the builder's own cleanup).
    for (BlockId id : fresh) base->device()->FreeBlock(id);
    return Status::TxnConflict("commits raced the checkpoint; retry");
  }
  table->base_ = std::shared_ptr<Table>(std::move(rebuilt).value());
  table->read_pdt_ = std::make_shared<Pdt>(table->base_->num_rows());
  table->version_++;
  table->commit_log_.clear();
  // Retire the replaced groups' blocks: drop any cached copies now (safe
  // under the documented quiesce contract — no reader still resolves the
  // old image). Freeing the device slots is a separate decision: a caller
  // with a durable catalog must keep them allocated until the new block
  // map is persisted, so slot recycling can never hand the old catalog's
  // block ids to fresh writes (see the header comment).
  for (BlockId id : retired) buffers->Invalidate(id);
  if (retired_out != nullptr) {
    retired_out->insert(retired_out->end(), retired.begin(), retired.end());
  } else {
    for (BlockId id : retired) base->device()->FreeBlock(id);
  }
  return Status::OK();
}

}  // namespace x100
