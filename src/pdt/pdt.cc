#include "pdt/pdt.h"

#include <algorithm>

namespace x100 {

Pdt::Pdt(int64_t base_rows)
    : base_rows_(base_rows),
      ins_counts_(base_rows + 1),
      del_counts_(base_rows + 1) {}

int64_t Pdt::visible_rows() const {
  return base_rows_ + ins_counts_.Total() - del_counts_.Total();
}

uint64_t Pdt::NextIid() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

PdtDelta& Pdt::DeltaAt(int64_t sid) { return by_sid_[sid]; }

const PdtDelta* Pdt::FindDelta(int64_t sid) const {
  auto it = by_sid_.find(sid);
  return it == by_sid_.end() ? nullptr : &it->second;
}

int64_t Pdt::StartRid(int64_t sid) const {
  // Slots of sids < sid: stable rows (minus deletes) plus their inserts.
  return sid + ins_counts_.Prefix(sid - 1) - del_counts_.Prefix(sid - 1);
}

int64_t Pdt::RidOfStable(int64_t sid) const {
  if (IsStableDeleted(sid)) return -1;
  const PdtDelta* d = FindDelta(sid);
  const int64_t own_inserts =
      d == nullptr ? 0 : static_cast<int64_t>(d->inserts.size());
  return StartRid(sid) + own_inserts;
}

bool Pdt::IsStableDeleted(int64_t sid) const {
  const PdtDelta* d = FindDelta(sid);
  return d != nullptr && d->del_stable;
}

Result<Pdt::Locator> Pdt::Locate(int64_t rid) const {
  if (rid < 0 || rid >= visible_rows()) {
    return Status::OutOfRange("rid " + std::to_string(rid) +
                              " outside visible image of " +
                              std::to_string(visible_rows()) + " rows");
  }
  // Binary search the anchor sid: largest sid with StartRid(sid) <= rid.
  int64_t lo = 0, hi = base_rows_;  // sid range is [0, base_rows]
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo + 1) / 2;
    if (StartRid(mid) <= rid) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  // Slots anchored at `lo`: inserts first, then the stable row (if any).
  int64_t offset = rid - StartRid(lo);
  const PdtDelta* d = FindDelta(lo);
  const int64_t n_ins = d ? static_cast<int64_t>(d->inserts.size()) : 0;
  // StartRid is constant across sids with no visible slots; advance to the
  // anchor that actually owns this offset.
  int64_t sid = lo;
  while (true) {
    const PdtDelta* dd = (sid == lo) ? d : FindDelta(sid);
    const int64_t ins =
        dd ? static_cast<int64_t>(dd->inserts.size()) : 0;
    const bool stable_visible =
        sid < base_rows_ && !(dd && dd->del_stable);
    const int64_t slots = ins + (stable_visible ? 1 : 0);
    if (offset < slots) {
      if (offset < ins) {
        Locator loc;
        loc.is_insert = true;
        loc.sid = sid;
        loc.index = static_cast<int>(offset);
        loc.iid = dd->inserts[offset].iid;
        return loc;
      }
      Locator loc;
      loc.is_insert = false;
      loc.sid = sid;
      return loc;
    }
    offset -= slots;
    sid++;
    if (sid > base_rows_) {
      return Status::Internal("pdt locate overran sid space");
    }
  }
  (void)n_ins;
}

Result<uint64_t> Pdt::InsertAt(int64_t rid, std::vector<Value> row) {
  InsertedRow ins;
  ins.iid = NextIid();
  ins.values = std::move(row);
  const uint64_t iid = ins.iid;
  if (rid == visible_rows()) {  // append
    X100_RETURN_IF_ERROR(InsertAtSid(base_rows_, std::move(ins)));
    return iid;
  }
  Locator loc;
  X100_ASSIGN_OR_RETURN(loc, Locate(rid));
  // New row takes the located slot's position. When displacing an own
  // insert, record the ordering constraint so commit replay (which appends
  // in list order) reproduces the same sequence.
  if (loc.is_insert) {
    const InsertedRow* target = GetOwnInsert(loc.iid);
    ins.before_iid = (target != nullptr && target->before_iid != 0)
                         ? target->before_iid
                         : loc.iid;
  }
  X100_RETURN_IF_ERROR(InsertAtSid(loc.sid, std::move(ins),
                                   loc.is_insert ? loc.index : -1));
  return iid;
}

Status Pdt::InsertAtSid(int64_t sid, InsertedRow row, int at_index) {
  if (sid < 0 || sid > base_rows_) {
    return Status::OutOfRange("insert sid out of range");
  }
  PdtDelta& d = DeltaAt(sid);
  iid_sid_[row.iid] = sid;
  // Honor an explicit position, else a before_iid ordering constraint
  // (commit replay of stacked inserts), else append.
  int pos = -1;
  if (at_index >= 0 && at_index <= static_cast<int>(d.inserts.size())) {
    pos = at_index;
  } else if (row.before_iid != 0) {
    for (int i = 0; i < static_cast<int>(d.inserts.size()); i++) {
      if (d.inserts[i].iid == row.before_iid) {
        pos = i;
        break;
      }
    }
  }
  if (pos < 0 || pos >= static_cast<int>(d.inserts.size())) {
    d.inserts.push_back(std::move(row));
  } else {
    d.inserts.insert(d.inserts.begin() + pos, std::move(row));
  }
  ins_counts_.Add(sid, 1);
  return Status::OK();
}

const InsertedRow* Pdt::GetOwnInsert(uint64_t iid) const {
  auto it = iid_sid_.find(iid);
  if (it == iid_sid_.end()) return nullptr;
  const PdtDelta* d = FindDelta(it->second);
  if (d == nullptr) return nullptr;
  for (const InsertedRow& r : d->inserts) {
    if (r.iid == iid) return &r;
  }
  return nullptr;
}

Status Pdt::DeleteAt(int64_t rid) {
  Locator loc;
  X100_ASSIGN_OR_RETURN(loc, Locate(rid));
  if (loc.is_insert) return DeleteOwnInsert(loc.iid);
  return DeleteStable(loc.sid);
}

Status Pdt::DeleteStable(int64_t sid) {
  if (sid < 0 || sid >= base_rows_) {
    return Status::OutOfRange("delete sid out of range");
  }
  PdtDelta& d = DeltaAt(sid);
  if (d.del_stable) {
    return Status::InvalidArgument("stable row already deleted");
  }
  d.del_stable = true;
  d.mods.clear();  // mods of a deleted row are moot
  del_counts_.Add(sid, 1);
  return Status::OK();
}

Status Pdt::DeleteOwnInsert(uint64_t iid) {
  auto it = iid_sid_.find(iid);
  if (it == iid_sid_.end()) {
    return Status::NotFound("insert iid not in this layer");
  }
  const int64_t sid = it->second;
  PdtDelta& d = DeltaAt(sid);
  auto pos = std::find_if(d.inserts.begin(), d.inserts.end(),
                          [&](const InsertedRow& r) { return r.iid == iid; });
  if (pos == d.inserts.end()) return Status::Internal("iid index stale");
  d.inserts.erase(pos);
  iid_sid_.erase(it);
  ins_counts_.Add(sid, -1);
  if (d.inserts.empty() && !d.del_stable && d.mods.empty()) {
    by_sid_.erase(sid);
  }
  return Status::OK();
}

Status Pdt::ModifyAt(int64_t rid, int col, Value v) {
  Locator loc;
  X100_ASSIGN_OR_RETURN(loc, Locate(rid));
  if (loc.is_insert) return ModifyOwnInsert(loc.iid, col, std::move(v));
  return ModifyStable(loc.sid, col, std::move(v));
}

Status Pdt::ModifyStable(int64_t sid, int col, Value v) {
  if (sid < 0 || sid >= base_rows_) {
    return Status::OutOfRange("modify sid out of range");
  }
  PdtDelta& d = DeltaAt(sid);
  if (d.del_stable) return Status::InvalidArgument("row is deleted");
  d.mods[col] = std::move(v);
  return Status::OK();
}

Status Pdt::ModifyOwnInsert(uint64_t iid, int col, Value v) {
  auto it = iid_sid_.find(iid);
  if (it == iid_sid_.end()) {
    return Status::NotFound("insert iid not in this layer");
  }
  PdtDelta& d = DeltaAt(it->second);
  for (InsertedRow& r : d.inserts) {
    if (r.iid == iid) {
      if (col < 0 || col >= static_cast<int>(r.values.size())) {
        return Status::OutOfRange("modify column out of range");
      }
      r.values[col] = std::move(v);
      return Status::OK();
    }
  }
  return Status::Internal("iid index stale");
}

void Pdt::DeleteLowerInsert(uint64_t iid) {
  deleted_iids_.insert(iid);
  mod_iids_.erase(iid);
}

void Pdt::ModifyLowerInsert(uint64_t iid, int col, Value v) {
  mod_iids_[iid][col] = std::move(v);
}

void Pdt::ForEachDelta(
    int64_t lo, int64_t hi,
    const std::function<void(int64_t, const PdtDelta&)>& fn) const {
  for (auto it = by_sid_.lower_bound(lo); it != by_sid_.end() && it->first < hi;
       ++it) {
    fn(it->first, it->second);
  }
}

std::unique_ptr<Pdt> Pdt::Clone() const {
  auto copy = std::make_unique<Pdt>(base_rows_);
  copy->by_sid_ = by_sid_;
  copy->ins_counts_ = ins_counts_;
  copy->del_counts_ = del_counts_;
  copy->deleted_iids_ = deleted_iids_;
  copy->mod_iids_ = mod_iids_;
  copy->iid_sid_ = iid_sid_;
  return copy;
}

}  // namespace x100
